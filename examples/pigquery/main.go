// Incremental data-flow query processing (paper §5): a Pig-lite script
// compiled to a pipeline of MapReduce jobs and executed incrementally
// with multi-level contraction trees.
//
// The query joins a page-view stream against a static user→region table,
// aggregates time-spent per region, and keeps the busiest pages — three
// chained MapReduce stages. Stage 1 runs on a rotating tree; later
// stages reuse their sub-computations through content fingerprints.
//
// Run with: go run ./examples/pigquery
package main

import (
	"fmt"
	"log"

	"slider"
	"slider/internal/workload"
)

const query = `
raw = LOAD 'events' AS (user, action, page, timespent, revenue);
engaged = FILTER raw BY action == 'view' AND timespent > 30;
joined = JOIN engaged BY user, 'users' BY user;
grouped = GROUP joined BY page;
stats = FOREACH grouped GENERATE group AS page, COUNT(*) AS views, AVG(timespent) AS avgtime;
busy = FILTER stats BY views >= 3;
ordered = ORDER busy BY views DESC;
top = LIMIT ordered 8;
STORE top INTO 'busiest_pages';
`

func main() {
	gen := workload.NewPigMix(workload.PigMixConfig{
		Seed: 5, Users: 300, Pages: 120, RowsPerSplit: 400,
	})
	tblSchema, tblRows := gen.UserTable()
	table := &slider.QueryTable{Schema: tblSchema}
	for _, r := range tblRows {
		table.Rows = append(table.Rows, slider.Row(r))
	}

	script, err := slider.ParseQuery(query)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := slider.CompileQuery(script, map[string]*slider.QueryTable{"users": table}, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query compiles to %d pipelined MapReduce job(s):", len(plan.Stages))
	for _, st := range plan.Stages {
		fmt.Printf(" [%s]", st.Name)
	}
	fmt.Println()

	pl, err := slider.NewPipeline(plan, slider.PipelineConfig{
		Mode: slider.Fixed, BucketSplits: 2, WindowBuckets: 10,
	})
	if err != nil {
		log.Fatal(err)
	}

	res, err := pl.Initial(gen.Range(0, 20))
	if err != nil {
		log.Fatal(err)
	}
	printTop("initial window", res)

	next := 20
	for slide := 1; slide <= 3; slide++ {
		res, err = pl.Advance(2, gen.Range(next, next+2))
		if err != nil {
			log.Fatal(err)
		}
		next += 2
		c := res.Report.Counters
		fmt.Printf("\nslide %d: work %v | stage-1 maps %d | later-stage maps run %d, reused %d\n",
			slide, res.Report.Work.Round(1000), res.StageReports[0].Counters.MapTasks,
			c.MapTasks-res.StageReports[0].Counters.MapTasks, c.MapTasksReused)
		printTop(fmt.Sprintf("window after slide %d", slide), res)
	}
}

func printTop(label string, res *slider.PipelineResult) {
	fmt.Printf("%s — busiest pages %v:\n", label, res.Schema)
	for _, row := range res.Rows {
		fmt.Printf("  %-8v views=%-4v avgtime=%.1f\n", row[0], row[1], row[2].(float64))
	}
}
