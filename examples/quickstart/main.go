// Quickstart: incremental word counting over a fixed-width sliding
// window.
//
// A Slider job is an ordinary, non-incremental MapReduce program — the
// word-count below contains no incremental logic whatsoever. Slider's
// rotating contraction tree (§4.1 of the paper) updates the output when
// the window slides, at a cost logarithmic in the window size.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strconv"
	"strings"

	"slider"
)

// sum is both the Combiner and the Reducer: associative, commutative.
func sum(_ string, values []slider.Value) slider.Value {
	var total int64
	for _, v := range values {
		total += v.(int64)
	}
	return total
}

func main() {
	job := &slider.Job{
		Name:       "wordcount",
		Partitions: 2,
		Map: func(rec slider.Record, emit slider.Emit) error {
			for _, w := range strings.Fields(rec.(string)) {
				emit(strings.ToLower(w), int64(1))
			}
			return nil
		},
		Combine:     sum,
		Reduce:      sum,
		Commutative: true, // required for Fixed (rotating-tree) mode
	}

	// A window of 4 buckets × 1 split: every Advance drops the oldest
	// split and appends a new one.
	rt, err := slider.New(job, slider.Config{
		Mode:          slider.Fixed,
		BucketSplits:  1,
		WindowBuckets: 4,
	})
	if err != nil {
		log.Fatal(err)
	}

	mkSplit := func(id int, lines ...string) slider.Split {
		records := make([]slider.Record, len(lines))
		for i, l := range lines {
			records[i] = l
		}
		return slider.Split{ID: "day-" + strconv.Itoa(id), Records: records}
	}

	res, err := rt.Initial([]slider.Split{
		mkSplit(0, "the quick brown fox"),
		mkSplit(1, "jumps over the lazy dog"),
		mkSplit(2, "the dog barks"),
		mkSplit(3, "the fox runs"),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("initial window:")
	show(res.Output, "the", "fox", "dog", "cat")

	// Slide: day 0 falls out, day 4 arrives. Only the new split is
	// mapped; the contraction tree recombines log(N) nodes.
	res, err = rt.Advance(1, []slider.Split{
		mkSplit(4, "the cat and the fox nap"),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nafter sliding out day 0 and in day 4:")
	show(res.Output, "the", "fox", "dog", "cat")
	fmt.Printf("\nincremental update: %d map task(s) run, %d combiner call(s), work %v\n",
		res.Report.Counters.MapTasks, res.Report.Counters.CombineCalls, res.Report.Work)
}

func show(out slider.Output, words ...string) {
	for _, w := range words {
		if v, ok := out[w]; ok {
			fmt.Printf("  %-6s %d\n", w, v)
		} else {
			fmt.Printf("  %-6s -\n", w)
		}
	}
}
