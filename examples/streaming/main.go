// Streaming drivers: push records, get windowed outputs.
//
// The stream layer sits on top of the Slider runtime and removes all
// split/window bookkeeping from application code. This example runs the
// same anomaly-ish metric (error-rate per service) through both drivers:
//
//   - a CountWindow that slides every 2 splits over the last 8, and
//   - a TimeWindow covering 4 minutes sliding each minute, where the
//     per-minute data volume fluctuates (variable-width underneath).
//
// Run with: go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"slider"
)

// logLine is one synthetic service-log record.
type logLine struct {
	Service string
	Error   bool
}

// errorRateJob counts requests and errors per service; Reduce emits the
// error count (keys carry the service and kind).
func errorRateJob() *slider.Job {
	sum := func(_ string, values []slider.Value) slider.Value {
		var total int64
		for _, v := range values {
			total += v.(int64)
		}
		return total
	}
	return &slider.Job{
		Name:       "error-rate",
		Partitions: 2,
		Map: func(rec slider.Record, emit slider.Emit) error {
			l := rec.(logLine)
			emit("req:"+l.Service, int64(1))
			if l.Error {
				emit("err:"+l.Service, int64(1))
			}
			return nil
		},
		Combine:     sum,
		Reduce:      sum,
		Commutative: true,
	}
}

func rate(out slider.Output, service string) float64 {
	req, _ := out["req:"+service].(int64)
	if req == 0 {
		return 0
	}
	err, _ := out["err:"+service].(int64)
	return 100 * float64(err) / float64(req)
}

func main() {
	rng := rand.New(rand.NewSource(4))
	services := []string{"api", "auth", "search"}

	fmt.Println("== count-based window (8 splits, slide 2) ==")
	cw, err := slider.NewCountWindow(slider.CountWindowConfig{
		Job:             errorRateJob(),
		RecordsPerSplit: 50,
		WindowSplits:    8,
		SlideSplits:     2,
	}, func(o slider.WindowOutput) error {
		fmt.Printf("splits [%d..%d): api=%.1f%% auth=%.1f%% search=%.1f%% errors\n",
			o.WindowStart, o.WindowEnd,
			rate(o.Result.Output, "api"), rate(o.Result.Output, "auth"),
			rate(o.Result.Output, "search"))
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 700; i++ {
		svc := services[rng.Intn(len(services))]
		// auth degrades midway through the stream.
		degraded := svc == "auth" && i > 350
		if err := cw.Push(logLine{Service: svc, Error: degraded && rng.Float64() < 0.3 || rng.Float64() < 0.02}); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("\n== time-based window (4 min, slide 1 min, bursty volume) ==")
	tw, err := slider.NewTimeWindow(slider.TimeWindowConfig{
		Job:             errorRateJob(),
		Window:          4 * time.Minute,
		Slide:           time.Minute,
		RecordsPerSplit: 40,
	}, func(o slider.WindowOutput) error {
		start := time.Unix(0, o.WindowStart).UTC().Format("15:04")
		end := time.Unix(0, o.WindowEnd).UTC().Format("15:04")
		fmt.Printf("[%s, %s): api=%.1f%% auth=%.1f%% errors (update work %v)\n",
			start, end, rate(o.Result.Output, "api"), rate(o.Result.Output, "auth"),
			o.Result.Report.Work.Round(1000))
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	epoch := time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)
	for minute := 0; minute < 9; minute++ {
		// Bursty traffic: volume varies 40–200 records per minute.
		volume := 40 + rng.Intn(160)
		for i := 0; i < volume; i++ {
			svc := services[rng.Intn(len(services))]
			rec := slider.TimedRecord{
				At: epoch.Add(time.Duration(minute)*time.Minute +
					time.Duration(i)*time.Second/4),
				Record: logLine{Service: svc, Error: rng.Float64() < 0.05},
			}
			if err := tw.Push(rec); err != nil {
				log.Fatal(err)
			}
		}
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
}
