// Akamai NetSession log auditing (paper §8.3): variable-width windowing.
//
// Hybrid-CDN clients upload tamper-evident logs; a PeerReview-style audit
// recomputes every log's hash chain and aggregates violations per client
// group. The window covers one month (four weeks) and slides weekly, but
// the amount of data per week depends on how many clients were online to
// upload — a variable-width window (folding contraction trees, §3.1).
//
// Run with: go run ./examples/netsession
package main

import (
	"fmt"
	"log"

	"slider"
	"slider/internal/apps"
	"slider/internal/workload"
)

func main() {
	gen := workload.NewNetSession(workload.NetSessionConfig{
		Seed: 3, Clients: 3000, LogsPerSplit: 40, EntriesPerLog: 250, TamperRate: 0.03,
	})
	job := apps.NetSessionAudit(4, 32)
	rt, err := slider.New(job, slider.Config{Mode: slider.Variable})
	if err != nil {
		log.Fatal(err)
	}

	const fullWeek = 6 // splits when 100% of clients upload
	uploadPct := []float64{1.0, 1.0, 1.0, 1.0, 0.9, 0.75, 0.85, 1.0}

	// First month: weeks 1–4.
	var window []slider.Split
	weekSizes := make([]int, 0, len(uploadPct))
	idx := 0
	for week := 0; week < 4; week++ {
		ws := gen.WeekSplits(idx, week+1, fullWeek, uploadPct[week])
		idx += len(ws)
		weekSizes = append(weekSizes, len(ws))
		window = append(window, ws...)
	}
	res, err := rt.Initial(window)
	if err != nil {
		log.Fatal(err)
	}
	report(4, res)

	// Slide weekly: drop the oldest week, add the newest (whose size
	// depends on client availability).
	for week := 4; week < len(uploadPct); week++ {
		add := gen.WeekSplits(idx, week+1, fullWeek, uploadPct[week])
		idx += len(add)
		drop := weekSizes[week-4]
		weekSizes = append(weekSizes, len(add))
		res, err = rt.Advance(drop, add)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  (week %d: %.0f%% clients online → %d splits in, %d out, work %v)\n",
			week+1, uploadPct[week]*100, len(add), drop, res.Report.Work.Round(1000))
		report(week+1, res)
	}
}

func report(throughWeek int, res *slider.RunResult) {
	var logs, entries, violations int64
	for _, v := range res.Output {
		s := v.(*apps.AuditSum)
		logs += s.Logs
		entries += s.Entries
		violations += s.Violations
	}
	fmt.Printf("audit through week %d: %d logs, %d chain entries verified, %d violation(s)\n",
		throughWeek, logs, entries, violations)
}
