// Glasnost measurement-server monitoring (paper §8.2): a 3-month window
// of network test runs sliding monthly.
//
// For every Glasnost measurement server the job computes the median
// across test runs of the per-run minimum RTT — the distance between the
// server and the users directed to it. Month volumes fluctuate, so the
// window is variable-width in records even though it is fixed in time;
// the folding contraction tree (§3.1) handles that directly.
//
// Run with: go run ./examples/glasnost
package main

import (
	"fmt"
	"log"
	"sort"

	"slider"
	"slider/internal/apps"
	"slider/internal/workload"
)

func main() {
	gen := workload.NewGlasnost(workload.GlasnostConfig{
		Seed: 11, Servers: 6, RunsPerSplit: 400, SplitsPerMonth: 4,
	})
	job := apps.GlasnostMonitor(4)
	rt, err := slider.New(job, slider.Config{Mode: slider.Variable})
	if err != nil {
		log.Fatal(err)
	}

	// Initial window: months 0–2 (Jan–Mar).
	var window []slider.Split
	for m := 0; m < 3; m++ {
		window = append(window, gen.MonthSplitsVar(m)...)
	}
	res, err := rt.Initial(window)
	if err != nil {
		log.Fatal(err)
	}
	months := []string{"Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep"}
	printMedians("Jan-Mar", res.Output)

	// Slide month by month: drop the oldest month, add the newest.
	for slide := 0; slide < 6; slide++ {
		drop := len(gen.MonthSplitsVar(slide))
		add := gen.MonthSplitsVar(slide + 3)
		res, err = rt.Advance(drop, add)
		if err != nil {
			log.Fatal(err)
		}
		label := months[slide+1] + "-" + months[slide+3]
		fmt.Printf("  (update: dropped %d splits, added %d, work %v)\n",
			drop, len(add), res.Report.Work.Round(1000))
		printMedians(label, res.Output)
	}
}

func printMedians(window string, out slider.Output) {
	keys := apps.SortedKeys(out)
	fmt.Printf("%s median min-RTT per server:", window)
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %s=%.0fms", k, out[k].(float64))
	}
	fmt.Println()
}
