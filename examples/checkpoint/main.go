// Checkpointing and crash recovery: a sliding word-count whose driver
// "crashes" mid-stream and resumes from a replicated checkpoint store.
//
// Slider's runtime state (the window bookkeeping plus every contraction
// tree) serializes through Runtime.Checkpoint; slider.Restore rebuilds
// an equivalent runtime that continues the window where it left off.
// The checkpoint store writes replicated, checksummed, atomically-renamed
// files — a corrupted replica falls back to the survivor.
//
// Run with: go run ./examples/checkpoint
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"strings"

	"slider"
	"slider/internal/workload"
)

func wordCount() *slider.Job {
	sum := func(_ string, values []slider.Value) slider.Value {
		var total int64
		for _, v := range values {
			total += v.(int64)
		}
		return total
	}
	return &slider.Job{
		Name:       "wordcount",
		Partitions: 4,
		Map: func(rec slider.Record, emit slider.Emit) error {
			for _, w := range strings.Fields(rec.(string)) {
				emit(w, int64(1))
			}
			return nil
		},
		Combine:     sum,
		Reduce:      sum,
		Commutative: true,
	}
}

func main() {
	dir, err := os.MkdirTemp("", "slider-checkpoints-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	store, err := slider.NewCheckpointStore(dir, 2)
	if err != nil {
		log.Fatal(err)
	}

	cfg := slider.Config{Mode: slider.Fixed, BucketSplits: 2, WindowBuckets: 8}
	gen := workload.NewText(workload.TextConfig{
		Seed: 9, LinesPerSplit: 50, WordsPerLine: 10, Vocabulary: 800, ZipfS: 1.2,
	})

	// Phase 1: a driver processes the stream and checkpoints each run.
	rt, err := slider.New(wordCount(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := rt.Initial(gen.Range(0, 16)); err != nil {
		log.Fatal(err)
	}
	next := 16
	for slide := 1; slide <= 3; slide++ {
		res, err := rt.Advance(2, gen.Range(next, next+2))
		if err != nil {
			log.Fatal(err)
		}
		next += 2
		var buf bytes.Buffer
		if err := rt.Checkpoint(&buf); err != nil {
			log.Fatal(err)
		}
		if err := store.Save("latest", buf.Bytes()); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("slide %d: %d distinct words, window [%d..%d), checkpoint saved (%d bytes)\n",
			slide, len(res.Output), rt.WindowLo(), next, buf.Len())
	}

	// The driver "crashes" here; one checkpoint replica is even corrupted
	// on disk.
	fmt.Println("\n-- driver crash; corrupting checkpoint replica 0 --")
	if err := store.CorruptReplica("latest", 0); err != nil {
		log.Fatal(err)
	}

	// Phase 2: a fresh driver restores from the surviving replica and
	// keeps sliding as if nothing happened.
	var frame []byte
	if err := store.Load("latest", &frame); err != nil {
		log.Fatal(err)
	}
	restored, err := slider.Restore(wordCount(), cfg, bytes.NewReader(frame))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored: window [%d..), %d live splits\n", restored.WindowLo(), restored.Live())

	res, err := restored.Advance(2, gen.Range(next, next+2))
	if err != nil {
		log.Fatal(err)
	}
	next += 2

	// Prove the restored runtime is equivalent: recompute the same
	// window from scratch and compare a few hot words.
	window := gen.Range(next-16, next)
	scratch, err := slider.RunScratch(wordCount(), window, 0, slider.NewRecorder())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nafter resuming, incremental vs scratch on the same window:")
	shown := 0
	for word, v := range res.Output {
		if shown == 5 {
			break
		}
		if v.(int64) < 20 {
			continue
		}
		fmt.Printf("  %-10s incremental=%-5d scratch=%-5d\n", word, v, scratch[word])
		if v.(int64) != scratch[word].(int64) {
			log.Fatalf("MISMATCH for %q", word)
		}
		shown++
	}
	fmt.Println("outputs agree — recovery preserved the window exactly")
}
