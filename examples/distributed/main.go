// Distributed map execution with task-level fault tolerance.
//
// Three workers (in-process here; normally separate slider-worker
// processes or machines) serve the map phase of a sliding word count
// over TCP. Mid-stream one worker dies; the pool re-executes its tasks
// on the survivors and the window's results are unaffected — MapReduce's
// fault model, inherited by Slider.
//
// Run with: go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"strings"

	"slider"
	"slider/internal/workload"
)

func wordCount() *slider.Job {
	sum := func(_ string, values []slider.Value) slider.Value {
		var total int64
		for _, v := range values {
			total += v.(int64)
		}
		return total
	}
	return &slider.Job{
		Name:       "wordcount",
		Partitions: 4,
		Map: func(rec slider.Record, emit slider.Emit) error {
			for _, w := range strings.Fields(rec.(string)) {
				emit(w, int64(1))
			}
			return nil
		},
		Combine:     sum,
		Reduce:      sum,
		Commutative: true,
	}
}

func main() {
	// A shared registry: in production each slider-worker binary
	// registers the same jobs by name.
	registry := &slider.JobRegistry{}
	if err := registry.Register("wordcount", wordCount); err != nil {
		log.Fatal(err)
	}
	var workers []*slider.Worker
	var addrs []string
	for i := 0; i < 3; i++ {
		w, err := slider.NewWorker(fmt.Sprintf("worker-%d", i), "127.0.0.1:0", registry)
		if err != nil {
			log.Fatal(err)
		}
		defer w.Close()
		workers = append(workers, w)
		addrs = append(addrs, w.Addr())
		fmt.Printf("started %s on %s\n", fmt.Sprintf("worker-%d", i), w.Addr())
	}

	pool, err := slider.NewWorkerPool("wordcount", addrs)
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()

	rt, err := slider.New(wordCount(), slider.Config{
		Mode: slider.Fixed, BucketSplits: 2, WindowBuckets: 8,
		MapRunner: pool, // ← map tasks now run on the workers
	})
	if err != nil {
		log.Fatal(err)
	}

	gen := workload.NewText(workload.TextConfig{
		Seed: 12, LinesPerSplit: 100, WordsPerLine: 10, Vocabulary: 2000, ZipfS: 1.2,
	})
	res, err := rt.Initial(gen.Range(0, 16))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninitial window mapped remotely: %d distinct words\n", len(res.Output))
	for i, w := range workers {
		fmt.Printf("  worker-%d executed %d map task(s)\n", i, w.Served())
	}

	next := 16
	for slide := 1; slide <= 4; slide++ {
		if slide == 2 {
			fmt.Println("\n-- killing worker-0 mid-stream --")
			workers[0].Close()
		}
		res, err = rt.Advance(2, gen.Range(next, next+2))
		if err != nil {
			log.Fatal(err)
		}
		next += 2
		fmt.Printf("slide %d: %d distinct words, %d live worker(s), %d retried task(s) so far\n",
			slide, len(res.Output), pool.LiveWorkers(), pool.Retries())
	}

	// Correctness despite the failure: compare with a local scratch run.
	window := gen.Range(next-16, next)
	want, err := slider.RunScratch(wordCount(), window, 0, slider.NewRecorder())
	if err != nil {
		log.Fatal(err)
	}
	for k, v := range want {
		if res.Output[k].(int64) != v.(int64) {
			log.Fatalf("MISMATCH for %q", k)
		}
	}
	fmt.Println("\nfinal window agrees with local recomputation — failure was invisible")
}
