// Twitter information propagation (paper §8.1): append-only windowing.
//
// The job builds, per URL, the information propagation tree — a user who
// posts a URL after an account they follow posted it is attached under
// the earliest such spreader — and reports Krackhardt-style statistics
// (posts, edges, roots, depth). Each week's tweets are appended to the
// window; the coalescing contraction tree (§4.2) folds them into the
// history with a single combiner pass over the delta.
//
// Run with: go run ./examples/twitter
package main

import (
	"fmt"
	"log"
	"sort"

	"slider"
	"slider/internal/apps"
	"slider/internal/workload"
)

func main() {
	tw := workload.NewTwitter(workload.TwitterConfig{
		Seed: 7, Users: 1200, MeanFollows: 10, URLs: 150, TweetsPerSplit: 250,
	})
	job := apps.TwitterPropagation(4, tw.Graph())

	rt, err := slider.New(job, slider.Config{
		Mode:            slider.Append,
		SplitProcessing: true, // pre-combine in the background between weeks
	})
	if err != nil {
		log.Fatal(err)
	}

	// The long historical interval (the paper's Mar'06–Jun'09 crawl).
	const history = 40
	res, err := rt.Initial(tw.Range(0, history))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("history: %d tweet splits, %d URLs tracked, work %v\n",
		history, len(res.Output), res.Report.Work.Round(1000))

	next := history
	for week := 1; week <= 4; week++ {
		add := tw.Range(next, next+2) // ~5% of the history per week
		next += 2
		res, err = rt.Advance(0, add)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("week %d appended: update work %v (background %v)\n",
			week, res.Report.Work.Round(1000), res.Background.Work.Round(1000))
	}

	// The most widely propagated URLs of the final window.
	type urlStats struct {
		url   string
		stats apps.PropStats
	}
	var all []urlStats
	for url, v := range res.Output {
		all = append(all, urlStats{url, v.(apps.PropStats)})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].stats.Edges > all[j].stats.Edges })
	fmt.Println("\ntop URLs by propagation edges:")
	fmt.Printf("%-8s %8s %8s %8s %8s\n", "url", "posts", "edges", "roots", "depth")
	for i, u := range all {
		if i == 5 {
			break
		}
		s := u.stats
		fmt.Printf("%-8s %8d %8d %8d %8d\n", u.url, s.Posts, s.Edges, s.Roots, s.Depth)
	}
}
