// Benchmarks regenerating the paper's evaluation (§7–§8): one testing.B
// benchmark per figure and table, each wrapping the corresponding runner
// of internal/bench at Quick scale and reporting the headline quantity
// (speedup, overhead, or saving) via b.ReportMetric. Run the full-scale
// versions with cmd/slider-bench.
package slider_test

import (
	"io"
	"testing"

	"slider/internal/bench"
	"slider/internal/sliderrt"
)

// quickApps returns a representative app pair (one compute-intensive,
// one data-intensive) for per-iteration benchmark loops.
func quickApps(b *testing.B, s bench.Scale) []bench.App {
	b.Helper()
	var out []bench.App
	for _, a := range bench.MicroApps(s) {
		if a.Name == "K-Means" || a.Name == "Matrix" {
			out = append(out, a)
		}
	}
	return out
}

// BenchmarkFigure7 regenerates the Slider-vs-scratch speedup grid
// (Figure 7) and reports the 5%-change fixed-width work speedup.
func BenchmarkFigure7(b *testing.B) {
	s := bench.Quick()
	apps := quickApps(b, s)
	var speedup float64
	for i := 0; i < b.N; i++ {
		sweep, err := bench.RunSweep(s, apps, []int{5, 25})
		if err != nil {
			b.Fatal(err)
		}
		if c, ok := sweep.Find("K-Means", sliderrt.Fixed, 5); ok {
			speedup = c.WorkSpeedupVsScratch()
		}
	}
	b.ReportMetric(speedup, "work-speedup-5pct")
}

// BenchmarkFigure8 regenerates the Slider-vs-strawman grid (Figure 8).
func BenchmarkFigure8(b *testing.B) {
	s := bench.Quick()
	apps := quickApps(b, s)
	var speedup float64
	for i := 0; i < b.N; i++ {
		cell, err := bench.RunCell(s, apps[1], sliderrt.Fixed, 5)
		if err != nil {
			b.Fatal(err)
		}
		speedup = cell.WorkSpeedupVsStrawman()
	}
	b.ReportMetric(speedup, "work-speedup-vs-strawman")
}

// BenchmarkFigure9 regenerates the execution breakdown (Figure 9),
// reporting Slider's contraction+reduce work as a fraction of vanilla
// reduce work.
func BenchmarkFigure9(b *testing.B) {
	s := bench.Quick()
	apps := quickApps(b, s)
	var frac float64
	for i := 0; i < b.N; i++ {
		cell, err := bench.RunCell(s, apps[1], sliderrt.Fixed, 5)
		if err != nil {
			b.Fatal(err)
		}
		h := cell.ScratchReport.PhaseWork[3] // reduce
		sc := cell.SliderReport.PhaseWork[2] + cell.SliderReport.PhaseWork[3]
		if h > 0 {
			frac = float64(sc) / float64(h)
		}
	}
	b.ReportMetric(100*frac, "contract+reduce-%of-vanilla")
}

// BenchmarkFigure10 regenerates the query-processing speedups.
func BenchmarkFigure10(b *testing.B) {
	s := bench.Quick()
	var work float64
	for i := 0; i < b.N; i++ {
		results, _, err := bench.Figure10(s)
		if err != nil {
			b.Fatal(err)
		}
		work = results[1].WorkSpeedup // L1, fixed-width
	}
	b.ReportMetric(work, "query-work-speedup")
}

// BenchmarkFigure11 regenerates the split-processing measurements.
func BenchmarkFigure11(b *testing.B) {
	s := bench.Quick()
	apps := quickApps(b, s)
	var fg float64
	for i := 0; i < b.N; i++ {
		res, _, err := bench.Figure11(s, apps[:1])
		if err != nil {
			b.Fatal(err)
		}
		fg = res[sliderrt.Fixed][0].Foreground
	}
	b.ReportMetric(fg, "foreground-normalized")
}

// BenchmarkFigure12 regenerates the randomized-folding-tree comparison.
func BenchmarkFigure12(b *testing.B) {
	s := bench.Quick()
	apps := bench.MicroApps(s)
	var gain float64
	for i := 0; i < b.N; i++ {
		results, _, err := bench.Figure12(s, apps)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if r.App == "Matrix" && r.RemovePct == 50 {
				gain = r.WorkSpeedup
			}
		}
	}
	b.ReportMetric(gain, "randomized-gain-50pct")
}

// BenchmarkFigure13 regenerates the initial-run overheads.
func BenchmarkFigure13(b *testing.B) {
	s := bench.Quick()
	apps := quickApps(b, s)
	var ovh float64
	for i := 0; i < b.N; i++ {
		cell, err := bench.RunCell(s, apps[1], sliderrt.Variable, 5)
		if err != nil {
			b.Fatal(err)
		}
		base := float64(cell.VanillaInitReport.Work)
		if base > 0 {
			ovh = 100 * (float64(cell.SliderInitReport.Work) - base) / base
		}
	}
	b.ReportMetric(ovh, "init-work-overhead-%")
}

// BenchmarkTable1 regenerates the scheduler comparison.
func BenchmarkTable1(b *testing.B) {
	s := bench.Quick()
	apps := quickApps(b, s)
	var norm float64
	for i := 0; i < b.N; i++ {
		results, _, err := bench.Table1(s, apps[:1])
		if err != nil {
			b.Fatal(err)
		}
		norm = results[0].Normalized
	}
	b.ReportMetric(norm, "hybrid-normalized-runtime")
}

// BenchmarkTable2 regenerates the in-memory-caching saving.
func BenchmarkTable2(b *testing.B) {
	s := bench.Quick()
	apps := quickApps(b, s)
	var saving float64
	for i := 0; i < b.N; i++ {
		results, _, err := bench.Table2(s, apps[:1])
		if err != nil {
			b.Fatal(err)
		}
		saving = results[0].ReductionPct
	}
	b.ReportMetric(saving, "read-time-saving-%")
}

// BenchmarkTable3 regenerates the Glasnost case study.
func BenchmarkTable3(b *testing.B) {
	benchCaseStudy(b, bench.Table3)
}

// BenchmarkTable4 regenerates the Twitter case study.
func BenchmarkTable4(b *testing.B) {
	benchCaseStudy(b, bench.Table4)
}

// BenchmarkTable5 regenerates the NetSession case study.
func BenchmarkTable5(b *testing.B) {
	benchCaseStudy(b, bench.Table5)
}

func benchCaseStudy(b *testing.B, run func(bench.Scale) ([]bench.CaseStudyRow, string, error)) {
	b.Helper()
	s := bench.Quick()
	var speedup float64
	for i := 0; i < b.N; i++ {
		rows, _, err := run(s)
		if err != nil {
			b.Fatal(err)
		}
		var total float64
		for _, r := range rows {
			total += r.WorkSpeedup
		}
		speedup = total / float64(len(rows))
	}
	b.ReportMetric(speedup, "avg-work-speedup")
}

// BenchmarkAblationBucket regenerates the bucket-width ablation.
func BenchmarkAblationBucket(b *testing.B) {
	s := bench.Quick()
	var app bench.App
	for _, a := range bench.MicroApps(s) {
		if a.Name == "Matrix" {
			app = a
		}
	}
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.AblationBucket(s, app); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRebuild regenerates the rebuild-factor ablation.
func BenchmarkAblationRebuild(b *testing.B) {
	s := bench.Quick()
	var app bench.App
	for _, a := range bench.MicroApps(s) {
		if a.Name == "Matrix" {
			app = a
		}
	}
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.AblationRebuild(s, app); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullRunQuick exercises the whole experiment driver end to end
// (what cmd/slider-bench does), at quick scale, discarding the output.
func BenchmarkFullRunQuick(b *testing.B) {
	if testing.Short() {
		b.Skip("full run is long")
	}
	s := bench.Quick()
	for i := 0; i < b.N; i++ {
		if err := bench.Run(io.Discard, s, []string{"fig10", "fig11", "table1", "table2"}); err != nil {
			b.Fatal(err)
		}
	}
}
