// Package slider is a Go implementation of Slider, the incremental
// sliding-window analytics system of Bhatotia, Acar, Junqueira and
// Rodrigues (ACM Middleware 2014).
//
// Slider lets you write an ordinary, non-incremental MapReduce job — a
// Map function, an associative Combine function, and a Reduce function —
// and then run it over a sliding window of input splits. When the window
// slides, Slider updates the output incrementally using self-adjusting
// contraction trees: balanced trees of Combiner sub-computations through
// which only the changed paths are recomputed, so an update costs work
// proportional to the delta (with a logarithmic dependence on window
// size) instead of the whole window.
//
// # Quick start
//
//	job := &slider.Job{
//	    Name: "wordcount",
//	    Map: func(rec slider.Record, emit slider.Emit) error {
//	        for _, w := range strings.Fields(rec.(string)) {
//	            emit(w, int64(1))
//	        }
//	        return nil
//	    },
//	    Combine: sum, Reduce: sum, Commutative: true,
//	}
//	rt, _ := slider.New(job, slider.Config{Mode: slider.Fixed,
//	    BucketSplits: 2, WindowBuckets: 8})
//	res, _ := rt.Initial(first16Splits)
//	res, _ = rt.Advance(2, next2Splits) // incremental update
//
// Three window modes select the contraction tree (§3–§4 of the paper):
// Append (coalescing trees), Fixed (rotating trees with optional split
// processing), and Variable (folding trees, or randomized folding trees
// with Config.Randomized). Config.Engine = Strawman selects the
// memoization-only baseline the paper evaluates against.
//
// The query layer compiles Pig-Latin-like scripts into pipelines of
// MapReduce jobs executed incrementally with multi-level trees (§5); see
// ParseQuery, CompileQuery, and NewPipeline.
package slider

import (
	"io"

	"slider/internal/cluster"
	"slider/internal/dist"
	"slider/internal/mapreduce"
	"slider/internal/memo"
	"slider/internal/metrics"
	"slider/internal/obs"
	"slider/internal/persist"
	"slider/internal/pig"
	"slider/internal/scheduler"
	"slider/internal/sliderrt"
	"slider/internal/stream"
)

// Core job model (see internal/mapreduce).
type (
	// Job is a non-incremental MapReduce program.
	Job = mapreduce.Job
	// Split is one unit of map-side input with a stable identity.
	Split = mapreduce.Split
	// Record is one input record.
	Record = mapreduce.Record
	// Value is an intermediate or final value.
	Value = mapreduce.Value
	// Emit is the map-side emission callback.
	Emit = mapreduce.Emit
	// Output is the job's final key→value result.
	Output = mapreduce.Output
	// Payload is the contraction-phase key→value map.
	Payload = mapreduce.Payload
)

// Runtime configuration and execution (see internal/sliderrt).
type (
	// Config configures a Runtime.
	Config = sliderrt.Config
	// Mode selects the sliding-window variant.
	Mode = sliderrt.Mode
	// Engine selects self-adjusting trees or the strawman baseline.
	Engine = sliderrt.Engine
	// Backend names the aggregation structure behind the reduce phase;
	// the default BackendAuto resolves the cheapest legal structure from
	// the window mode and the combiner's declared properties.
	Backend = sliderrt.Backend
	// Runtime drives initial and incremental runs.
	Runtime = sliderrt.Runtime
	// RunResult is the outcome of one run.
	RunResult = sliderrt.RunResult
)

// Window modes and engines.
const (
	// Append grows the window monotonically (coalescing trees, §4.2).
	Append = sliderrt.Append
	// Fixed slides a constant-width window (rotating trees, §4.1).
	Fixed = sliderrt.Fixed
	// Variable allows arbitrary shrink/grow (folding trees, §3).
	Variable = sliderrt.Variable
	// SelfAdjusting is the default engine.
	SelfAdjusting = sliderrt.SelfAdjusting
	// Strawman is the memoization-only baseline engine (§2).
	Strawman = sliderrt.Strawman
)

// Aggregation backends (Config.Backend).
const (
	// BackendAuto resolves the cheapest legal backend for the query.
	BackendAuto = sliderrt.BackendAuto
	// BackendDaba is the worst-case O(1) in-order aggregator for plain
	// fixed-width windows (no commutativity required).
	BackendDaba = sliderrt.BackendDaba
	// BackendRotating is the rotating contraction tree of §4.1.
	BackendRotating = sliderrt.BackendRotating
	// BackendCoalescing is the append-only coalescing tree of §4.2.
	BackendCoalescing = sliderrt.BackendCoalescing
	// BackendFolding is the folding tree of §3.1.
	BackendFolding = sliderrt.BackendFolding
	// BackendRandomizedFolding is the randomized folding tree of §3.2.
	BackendRandomizedFolding = sliderrt.BackendRandomizedFolding
	// BackendStrawman is the memoization-only baseline structure.
	BackendStrawman = sliderrt.BackendStrawman
	// BackendFingerTree is the out-of-order aggregator (FiBA-style):
	// fixed-mode windows with late arrivals under Config.AllowedLateness
	// and bulk evict/insert at O(K + log w) combines.
	BackendFingerTree = sliderrt.BackendFingerTree
)

// ParseBackend parses a backend name as printed by Backend.String
// ("auto", "daba", "rotating", ...) — the daemons' -backend flag.
func ParseBackend(s string) (Backend, error) { return sliderrt.ParseBackend(s) }

// Sentinel errors callers are expected to test with errors.Is.
var (
	// ErrBadMode reports an invalid Config (mode/knob combination).
	ErrBadMode = sliderrt.ErrBadMode
	// ErrBadBackend reports an explicit Config.Backend the window mode or
	// job cannot legally run on (e.g. any non-finger-tree backend combined
	// with AllowedLateness > 0).
	ErrBadBackend = sliderrt.ErrBadBackend
	// ErrTooLate reports a Runtime.AdvanceLate arrival behind the
	// effective watermark: lateness beyond Config.AllowedLateness, or a
	// target bucket sequence below Config.Watermark.
	ErrTooLate = sliderrt.ErrTooLate
)

// SwitchPolicyConfig configures ContractQuantileSwitchPolicy.
type SwitchPolicyConfig = sliderrt.SwitchPolicyConfig

// ContractQuantileSwitchPolicy builds a Config.SwitchHook that moves a
// Fixed-mode runtime between the daba and rotating backends when the
// per-slide contract-phase latency quantile crosses its thresholds for
// several consecutive slides (hysteresis). Pair it with Config.Obs.
func ContractQuantileSwitchPolicy(cfg SwitchPolicyConfig) (func(cur Backend, contract HistogramSnapshot) Backend, error) {
	return sliderrt.ContractQuantileSwitchPolicy(cfg)
}

// ParseSwitchPolicy parses the daemons' -switch-policy flag syntax
// ("p95:high=20ms,low=5ms,n=3") into a ready Config.SwitchHook; an empty
// string yields a nil hook (policy disabled).
func ParseSwitchPolicy(s string) (func(cur Backend, contract HistogramSnapshot) Backend, error) {
	return sliderrt.ParseSwitchPolicy(s)
}

// New returns a Runtime executing job under cfg.
func New(job *Job, cfg Config) (*Runtime, error) { return sliderrt.New(job, cfg) }

// Restore reconstructs a Runtime from a checkpoint written by
// Runtime.Checkpoint. The job and configuration must match the
// checkpointed runtime's. Custom Combine value types must have been
// registered with RegisterValueType before checkpointing and restoring.
func Restore(job *Job, cfg Config, r io.Reader) (*Runtime, error) {
	return sliderrt.Restore(job, cfg, r)
}

// RegisterValueType makes a custom application value type serializable
// for checkpointing (Runtime.Checkpoint / Restore), e.g.
// slider.RegisterValueType(&MyAccumulator{}).
func RegisterValueType(v any) { persist.RegisterType(v) }

// CheckpointStore is a replicated, checksummed, atomic file store for
// checkpoints and other durable state; reads fall back across replicas on
// corruption.
type CheckpointStore = persist.FileStore

// NewCheckpointStore opens (creating if needed) a checkpoint store rooted
// at dir with the given replication factor.
func NewCheckpointStore(dir string, replicas int) (*CheckpointStore, error) {
	return persist.NewFileStore(dir, replicas)
}

// RunScratch executes the job non-incrementally over a full window — the
// recompute-from-scratch baseline.
func RunScratch(job *Job, window []Split, parallelism int, rec *Recorder) (Output, error) {
	return mapreduce.RunScratch(job, window, parallelism, rec)
}

// CheckJob property-tests a job's combiner contract (associativity,
// declared commutativity, non-mutation, alias-free results) against real
// sample splits. Run it in a test before trusting a new job to the
// incremental runtime — especially before setting Config.Parallelism > 1,
// which relies on the purity/alias-freedom contract.
func CheckJob(job *Job, samples []Split) error {
	return mapreduce.CheckJob(job, samples)
}

// Measurement and simulation (see internal/metrics, internal/cluster,
// internal/scheduler).
type (
	// Recorder accumulates per-task costs during a run.
	Recorder = metrics.Recorder
	// Report is an immutable work summary.
	Report = metrics.Report
	// ClusterConfig describes the simulated cluster.
	ClusterConfig = cluster.Config
	// ClusterResult is a simulated end-to-end execution.
	ClusterResult = cluster.Result
	// SchedulerPolicy decides task placement.
	SchedulerPolicy = cluster.Policy
	// MemoConfig configures the memoization layer.
	MemoConfig = memo.Config
	// MemoStore is the fault-tolerant memoization layer.
	MemoStore = memo.Store
)

// Scheduling policies (§6, Table 1).
var (
	// BaselinePolicy mimics stock Hadoop scheduling.
	BaselinePolicy SchedulerPolicy = scheduler.Baseline{}
	// MemoAwarePolicy places tasks with their memoized state.
	MemoAwarePolicy SchedulerPolicy = scheduler.MemoAware{}
	// HybridPolicy is memoization-aware with straggler mitigation.
	HybridPolicy SchedulerPolicy = scheduler.Hybrid{}
)

// NewRecorder returns an empty work recorder.
func NewRecorder() *Recorder { return metrics.NewRecorder() }

// DefaultClusterConfig mirrors the paper's 24-worker testbed.
func DefaultClusterConfig() ClusterConfig { return cluster.DefaultConfig() }

// DefaultMemoConfig returns the default memoization configuration.
func DefaultMemoConfig() MemoConfig { return memo.DefaultConfig() }

// Simulate computes the end-to-end running time of a run's recorded tasks
// on the simulated cluster under the given policy.
func Simulate(cfg ClusterConfig, report Report, policy SchedulerPolicy) ClusterResult {
	return cluster.NewSimulator(cfg).Run(report.Tasks, policy)
}

// Query processing (§5; see internal/pig).
type (
	// QueryScript is a parsed Pig-lite script.
	QueryScript = pig.Script
	// QueryPlan is a compiled pipeline of MapReduce stages.
	QueryPlan = pig.Plan
	// QueryTable is a static side relation for replicated joins.
	QueryTable = pig.Table
	// Row is one query tuple.
	Row = pig.Row
	// RowSchema names a relation's columns.
	RowSchema = pig.Schema
	// Pipeline executes a plan incrementally over a sliding window.
	Pipeline = pig.Pipeline
	// PipelineConfig configures incremental query execution.
	PipelineConfig = pig.PipelineConfig
	// PipelineResult is the outcome of one pipeline run.
	PipelineResult = pig.PipelineResult
)

// Distributed map execution (see internal/dist): worker processes serve
// map tasks over TCP; a client pool plugs into Config.MapRunner with
// automatic re-execution of tasks from failed workers.
type (
	// Worker serves map tasks for registered jobs over TCP.
	Worker = dist.Worker
	// WorkerPool dispatches map tasks across workers and implements
	// the Config.MapRunner hook.
	WorkerPool = dist.Pool
	// WorkerPoolConfig tunes a pool's fault tolerance, tracing, and
	// stats federation (see NewWorkerPoolConfig).
	WorkerPoolConfig = dist.PoolConfig
	// WorkerObs bundles a worker's batch tracer, fault counters, and
	// per-phase latency histograms; install one with Worker.SetObs to
	// make the worker answer Stats RPCs and stitch spans into the
	// pool's slide traces.
	WorkerObs = dist.WorkerObs
	// JobRegistry maps job names to factories on both sides of the
	// wire.
	JobRegistry = dist.Registry
	// NodeStats is one worker's self-reported counters and histograms,
	// as federated by the pool's Stats polling.
	NodeStats = metrics.NodeStats
	// ClusterStats is the pool's latest federated view of every live
	// worker; Merged folds it into cluster-level totals.
	ClusterStats = metrics.ClusterStats
	// WindowStats is a concurrent-read-safe snapshot of the runtime's
	// out-of-order window gauges (see Runtime.WindowStats).
	WindowStats = sliderrt.WindowStats
)

// RegisterJob binds a job factory to a name in the process-wide registry
// (jobs travel by name: both driver and workers must register the same
// factory under the same name).
func RegisterJob(name string, factory func() *Job) error {
	return dist.RegisterJob(name, factory)
}

// NewWorker starts a map-task worker listening on addr ("host:0" picks
// an ephemeral port). A nil registry uses the process-wide one.
func NewWorker(name, addr string, registry *JobRegistry) (*Worker, error) {
	return dist.NewWorker(name, addr, registry)
}

// NewWorkerPool connects to worker addresses for the named job; assign
// the result to Config.MapRunner to run the map phase remotely.
func NewWorkerPool(jobName string, addrs []string) (*WorkerPool, error) {
	return dist.NewPool(jobName, addrs)
}

// NewWorkerPoolConfig is NewWorkerPool with explicit fault-tolerance,
// tracing, and stats-federation configuration.
func NewWorkerPoolConfig(jobName string, addrs []string, cfg WorkerPoolConfig) (*WorkerPool, error) {
	return dist.NewPoolConfig(jobName, addrs, cfg)
}

// NewWorkerObs returns a worker instrumentation bundle (batch span
// tracer, fault counters, per-phase histograms) for Worker.SetObs.
func NewWorkerObs() *WorkerObs { return dist.NewWorkerObs() }

// Observability (see internal/metrics, internal/obs): per-slide latency
// histograms, span traces, fault-event counters, and the introspection
// HTTP server that exposes them.
type (
	// SlideObs bundles a runtime's latency histograms and span tracer;
	// assign one to Config.Obs to instrument every slide.
	SlideObs = metrics.SlideObs
	// Tracer records slides as ring-buffered span trees.
	Tracer = metrics.Tracer
	// TraceMode selects how many slides the tracer records.
	TraceMode = metrics.TraceMode
	// Histogram is a fixed-bucket, mergeable latency histogram.
	Histogram = metrics.Histogram
	// HistogramSnapshot is an immutable copy of a Histogram's counts;
	// Config.SwitchHook receives one for the contract phase.
	HistogramSnapshot = metrics.HistogramSnapshot
	// FaultStats is a snapshot of fault-tolerance event counters and
	// RPC latency quantiles.
	FaultStats = metrics.FaultStats
	// FaultRecorder accumulates fault-tolerance events; share one
	// between Config.Faults and the worker pool.
	FaultRecorder = metrics.FaultRecorder
	// TreeSnapshot is an immutable structural snapshot of the runtime's
	// contraction trees (see Runtime.TreeSnapshot, /debug/tree).
	TreeSnapshot = sliderrt.TreeSnapshot
	// ObsServer is the introspection HTTP server (/metrics,
	// /debug/pprof, /debug/slides, /debug/tree).
	ObsServer = obs.Server
	// ObsConfig wires an ObsServer's data sources.
	ObsConfig = obs.Config
)

// Trace modes.
const (
	// TraceFull records every slide.
	TraceFull = metrics.TraceFull
	// TraceSampled records one slide in every N.
	TraceSampled = metrics.TraceSampled
	// TraceOff records nothing (histograms still populate).
	TraceOff = metrics.TraceOff
)

// NewSlideObs returns an instrumentation bundle with a full-recording
// tracer; assign it to Config.Obs.
func NewSlideObs() *SlideObs { return metrics.NewSlideObs() }

// StartObsServer serves the introspection endpoints on addr for the
// sources in cfg (":0" picks a port; any source may be nil).
func StartObsServer(addr string, cfg ObsConfig) (*ObsServer, error) {
	return obs.Start(addr, cfg)
}

// StartObsServerForRuntime serves the introspection endpoints wired to
// everything rt exposes (histograms, traces, faults, tree snapshots,
// memo stats).
func StartObsServerForRuntime(addr string, rt *Runtime) (*ObsServer, error) {
	return obs.StartForRuntime(addr, rt)
}

// Streaming drivers (see internal/stream): push records, get windowed
// outputs.
type (
	// CountWindowConfig configures a count-based sliding window driver.
	CountWindowConfig = stream.CountConfig
	// CountWindow forms splits from pushed records and slides a
	// fixed-length window automatically.
	CountWindow = stream.CountWindow
	// TimeWindowConfig configures a time-based sliding window driver.
	TimeWindowConfig = stream.TimeConfig
	// TimeWindow slides a fixed-duration window over timestamped
	// records (data volume per period may vary).
	TimeWindow = stream.TimeWindow
	// TimedRecord is one timestamped record for a TimeWindow.
	TimedRecord = stream.TimedRecord
	// WindowOutput delivers one run's results to a window sink.
	WindowOutput = stream.Output
	// WindowSink consumes window outputs.
	WindowSink = stream.Sink
)

// NewCountWindow returns a count-based streaming driver.
func NewCountWindow(cfg CountWindowConfig, sink WindowSink) (*CountWindow, error) {
	return stream.NewCountWindow(cfg, sink)
}

// NewTimeWindow returns a time-based streaming driver.
func NewTimeWindow(cfg TimeWindowConfig, sink WindowSink) (*TimeWindow, error) {
	return stream.NewTimeWindow(cfg, sink)
}

// ParseQuery parses a Pig-lite script.
func ParseQuery(src string) (*QueryScript, error) { return pig.Parse(src) }

// CompileQuery compiles a script into a pipeline of MapReduce stages.
func CompileQuery(script *QueryScript, tables map[string]*QueryTable, partitions int) (*QueryPlan, error) {
	return pig.Compile(script, tables, partitions)
}

// NewPipeline prepares incremental execution of a compiled plan.
func NewPipeline(plan *QueryPlan, cfg PipelineConfig) (*Pipeline, error) {
	return pig.NewPipeline(plan, cfg)
}

// RunQueryScratch executes a plan non-incrementally over a window.
func RunQueryScratch(plan *QueryPlan, window []Split, rec *Recorder) ([]Row, RowSchema, error) {
	return pig.RunScratch(plan, window, rec)
}
