// Command slider-worker serves Slider map tasks over TCP for the
// built-in demo jobs, so multiple processes (or machines) can share one
// sliding-window computation's map phase.
//
// Usage:
//
//	slider-worker -addr 127.0.0.1:7070 &
//	slider-worker -addr 127.0.0.1:7071 &
//	slider-demo -workers 127.0.0.1:7070,127.0.0.1:7071
//
// Jobs are identified by name; this binary registers "wordcount" (the
// job slider-demo runs) and "stream-wordcount" (the normalized variant
// slider-stream runs, so a stream driver with -workers can farm its map
// phase out to these processes). Embedders register their own jobs with
// slider.RegisterJob in their own worker binaries.
//
// With -obs-addr set the worker also serves its own observability
// endpoints: /metrics (self stats: tasks served, per-phase latency
// histograms, fault counters) and /debug/trace (recent batch traces as
// Chrome trace JSON). The same instrumentation makes the worker answer
// the pool's Stats RPCs, feeding cluster-level federation on the
// driver's /metrics.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"slider"
)

func wordCount() *slider.Job {
	sum := func(_ string, values []slider.Value) slider.Value {
		var total int64
		for _, v := range values {
			total += v.(int64)
		}
		return total
	}
	return &slider.Job{
		Name:       "wordcount",
		Partitions: 4,
		Map: func(rec slider.Record, emit slider.Emit) error {
			for _, w := range strings.Fields(rec.(string)) {
				emit(w, int64(1))
			}
			return nil
		},
		Combine:     sum,
		Reduce:      sum,
		Commutative: true,
	}
}

// streamWordCount is slider-stream's normalized word count; the factory
// here must match the one in cmd/slider-stream byte-for-byte semantics
// (jobs travel by name, the Map function does not cross the wire).
func streamWordCount() *slider.Job {
	sum := func(_ string, values []slider.Value) slider.Value {
		var total int64
		for _, v := range values {
			total += v.(int64)
		}
		return total
	}
	return &slider.Job{
		Name:       "stream-wordcount",
		Partitions: 4,
		Map: func(rec slider.Record, emit slider.Emit) error {
			for _, w := range strings.Fields(rec.(string)) {
				emit(strings.ToLower(strings.Trim(w, ".,;:!?\"'()[]")), int64(1))
			}
			return nil
		},
		Combine:     sum,
		Reduce:      sum,
		Commutative: true,
	}
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "slider-worker:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("slider-worker", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "listen address")
	name := fs.String("name", "", "worker name (default: the listen address)")
	obsAddr := fs.String("obs-addr", "", "serve /metrics and /debug/pprof on this address (empty = no server)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	registry := &slider.JobRegistry{}
	if err := registry.Register("wordcount", wordCount); err != nil {
		return err
	}
	if err := registry.Register("stream-wordcount", streamWordCount); err != nil {
		return err
	}

	label := *name
	if label == "" {
		label = *addr
	}
	worker, err := slider.NewWorker(label, *addr, registry)
	if err != nil {
		return err
	}
	fmt.Printf("slider-worker %q serving %v on %s\n", label, registry.Names(), worker.Addr())
	if *obsAddr != "" {
		// Instrumentation rides the obs flag: without it the batch
		// handler stays a zero-allocation no-op; with it the worker
		// records batch span trees, answers the pool's Stats RPCs, and
		// stitches its spans into the driver's slide traces.
		obs := slider.NewWorkerObs()
		worker.SetObs(obs)
		srv, err := slider.StartObsServer(*obsAddr, slider.ObsConfig{
			Node:   worker.StatsSnapshot,
			Tracer: obs.Tracer,
			Fault:  obs.Faults,
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("slider-worker %q: obs endpoints on http://%s/\n", label, srv.Addr())
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Printf("slider-worker %q: served %d map task(s), shutting down\n", label, worker.Served())
	return worker.Close()
}
