package main

import (
	"testing"

	"slider"
)

func TestWordCountJobContract(t *testing.T) {
	job := wordCount()
	samples := []slider.Split{{
		ID:      "s0",
		Records: []slider.Record{"a a b", "a b c c"},
	}}
	if err := slider.CheckJob(job, samples); err != nil {
		t.Fatal(err)
	}
}

func TestWorkerServesAndShutsDown(t *testing.T) {
	registry := &slider.JobRegistry{}
	if err := registry.Register("wordcount", wordCount); err != nil {
		t.Fatal(err)
	}
	worker, err := slider.NewWorker("t", "127.0.0.1:0", registry)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := slider.NewWorkerPool("wordcount", []string{worker.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	results, err := pool.RunMap(wordCount(), []slider.Split{
		{ID: "s0", Records: []slider.Record{"x y x"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Records != 1 {
		t.Fatalf("results = %+v", results)
	}
	if worker.Served() != 1 {
		t.Fatalf("served = %d", worker.Served())
	}
	if err := worker.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWorkerMapOutput(t *testing.T) {
	job := wordCount()
	var total int64
	out, err := slider.RunScratch(job, []slider.Split{
		{ID: "s0", Records: []slider.Record{"go go gopher"}},
	}, 0, slider.NewRecorder())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out {
		total += v.(int64)
	}
	if total != 3 || out["go"].(int64) != 2 {
		t.Fatalf("out = %v", out)
	}
}
