// Command slider-demo runs a word-count job over a sliding window of
// synthetic text in any window mode and prints, for every slide, the
// incremental-update cost next to the recompute-from-scratch cost — a
// live demonstration of the paper's headline result.
//
// Usage:
//
//	slider-demo [-mode A|F|V] [-window N] [-delta D] [-slides K] [-split]
//	            [-workers addr1,addr2]
//
// With -workers, the map phase executes on remote slider-worker
// processes serving the "wordcount" job.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"slider"
	"slider/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "slider-demo:", err)
		os.Exit(1)
	}
}

func wordCount() *slider.Job {
	sum := func(_ string, values []slider.Value) slider.Value {
		var total int64
		for _, v := range values {
			total += v.(int64)
		}
		return total
	}
	return &slider.Job{
		Name:       "wordcount",
		Partitions: 4,
		Map: func(rec slider.Record, emit slider.Emit) error {
			line, ok := rec.(string)
			if !ok {
				return fmt.Errorf("record %T is not a string", rec)
			}
			for _, w := range strings.Fields(line) {
				emit(w, int64(1))
			}
			return nil
		},
		Combine:     sum,
		Reduce:      sum,
		Commutative: true,
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("slider-demo", flag.ContinueOnError)
	modeFlag := fs.String("mode", "F", "window mode: A (append), F (fixed), V (variable)")
	window := fs.Int("window", 40, "window size in splits")
	delta := fs.Int("delta", 4, "splits per slide")
	slides := fs.Int("slides", 5, "number of incremental slides")
	split := fs.Bool("split", false, "enable split processing (A and F modes)")
	backendName := fs.String("backend", "auto", "aggregation backend: auto, daba, rotating, coalescing, folding, randomized-folding, strawman, fingertree")
	lateness := fs.Int("lateness", 0, "accepted bucket lateness for out-of-order arrivals (F mode; >0 selects the fingertree backend)")
	workerList := fs.String("workers", "", "comma-separated slider-worker addresses for remote maps")
	if err := fs.Parse(args); err != nil {
		return err
	}
	backend, err := slider.ParseBackend(*backendName)
	if err != nil {
		return err
	}

	var mode slider.Mode
	switch *modeFlag {
	case "A":
		mode = slider.Append
	case "F":
		mode = slider.Fixed
	case "V":
		mode = slider.Variable
	default:
		return fmt.Errorf("unknown mode %q", *modeFlag)
	}
	cfg := slider.Config{Mode: mode, SplitProcessing: *split, Backend: backend, AllowedLateness: *lateness}
	if *workerList != "" {
		pool, err := slider.NewWorkerPool("wordcount", strings.Split(*workerList, ","))
		if err != nil {
			return err
		}
		defer pool.Close()
		cfg.MapRunner = pool
		fmt.Printf("map phase on %d remote worker(s)\n", pool.LiveWorkers())
	}
	if mode == slider.Fixed {
		if (*window)%(*delta) != 0 {
			return fmt.Errorf("fixed mode needs window %% delta == 0")
		}
		cfg.BucketSplits = *delta
		cfg.WindowBuckets = *window / *delta
	}

	gen := workload.NewText(workload.TextConfig{
		Seed: 1, LinesPerSplit: 200, WordsPerLine: 12, Vocabulary: 5000, ZipfS: 1.2,
	})
	rt, err := slider.New(wordCount(), cfg)
	if err != nil {
		return err
	}
	windowSplits := gen.Range(0, *window)
	res, err := rt.Initial(windowSplits)
	if err != nil {
		return err
	}
	fmt.Printf("initial run: %d splits, %d distinct words, work=%v\n",
		*window, len(res.Output), res.Report.Work.Round(1000))

	next := *window
	for i := 1; i <= *slides; i++ {
		drop := *delta
		if mode == slider.Append {
			drop = 0
		}
		add := gen.Range(next, next+*delta)
		next += *delta
		res, err := rt.Advance(drop, add)
		if err != nil {
			return err
		}
		windowSplits = append(windowSplits[drop:], add...)

		rec := slider.NewRecorder()
		if _, err := slider.RunScratch(wordCount(), windowSplits, 0, rec); err != nil {
			return err
		}
		scratch := rec.Snapshot()
		line := fmt.Sprintf("slide %d: slider work=%-12v scratch work=%-12v speedup=%.1fx",
			i, res.Report.Work.Round(1000), scratch.Work.Round(1000),
			float64(scratch.Work)/float64(res.Report.Work))
		if *split {
			line += fmt.Sprintf("  (background %v)", res.Background.Work.Round(1000))
		}
		fmt.Println(line)
	}
	return nil
}
