package main

import "testing"

func TestRunSmallWindow(t *testing.T) {
	if err := run([]string{"-mode", "F", "-window", "4", "-delta", "2", "-slides", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAppendWithSplitProcessing(t *testing.T) {
	if err := run([]string{"-mode", "A", "-window", "3", "-delta", "1", "-slides", "1", "-split"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunVariable(t *testing.T) {
	if err := run([]string{"-mode", "V", "-window", "4", "-delta", "1", "-slides", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-mode", "Z"}); err == nil {
		t.Fatal("bad mode accepted")
	}
	if err := run([]string{"-mode", "F", "-window", "5", "-delta", "2"}); err == nil {
		t.Fatal("non-divisible fixed window accepted")
	}
	if err := run([]string{"-workers", "127.0.0.1:1"}); err == nil {
		t.Fatal("dead worker pool accepted")
	}
}
