// Command slider-bench regenerates the paper's evaluation tables and
// figures (§7–§8) from the Go reproduction.
//
// Usage:
//
//	slider-bench [-scale quick|full] [-exp all|fig7,table3,...] [-out file]
//
// Experiment names: fig7 fig8 fig9 fig10 fig11 fig12 fig13 table1 table2
// table3 table4 table5 ablation backends.
//
// -backends-json writes the DABA-vs-rotating head-to-head sweep (the
// "backends" experiment) as a standalone JSON document (BENCH_daba.json).
//
// -payload-json writes the gob-vs-flat payload codec head-to-head (the
// "payload" experiment) as JSON (BENCH_payload.json).
//
// -ooo-json writes the finger-tree bulk-vs-sequential sweep (the
// "outoforder" experiment) as JSON (BENCH_ooo.json).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"slider/internal/bench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "slider-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("slider-bench", flag.ContinueOnError)
	scaleName := fs.String("scale", "full", "experiment scale: quick or full")
	expList := fs.String("exp", "all", "comma-separated experiments, or 'all': "+strings.Join(bench.Experiments, " "))
	outPath := fs.String("out", "", "write results to this file instead of stdout")
	jsonPath := fs.String("json", "", "also write a machine-readable JSON record to this file")
	backendsJSON := fs.String("backends-json", "", "write the backends head-to-head sweep as JSON to this file")
	payloadJSON := fs.String("payload-json", "", "write the payload codec head-to-head as JSON to this file")
	oooJSON := fs.String("ooo-json", "", "write the out-of-order bulk-vs-sequential sweep as JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var scale bench.Scale
	switch *scaleName {
	case "quick":
		scale = bench.Quick()
	case "full":
		scale = bench.Full()
	default:
		return fmt.Errorf("unknown scale %q (want quick or full)", *scaleName)
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}

	var selected []string
	if *expList != "all" {
		selected = strings.Split(*expList, ",")
	}
	start := time.Now()
	fmt.Fprintf(out, "slider-bench: scale=%s experiments=%s\n\n", *scaleName, *expList)
	if err := bench.Run(out, scale, selected); err != nil {
		return err
	}
	fmt.Fprintf(out, "total benchmark time: %v\n", time.Since(start).Round(time.Millisecond))
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := bench.RunJSON(f, scale, *scaleName); err != nil {
			return err
		}
		fmt.Fprintf(out, "JSON record written to %s\n", *jsonPath)
	}
	if *backendsJSON != "" {
		f, err := os.Create(*backendsJSON)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := bench.WriteBackendsJSON(f, scale); err != nil {
			return err
		}
		fmt.Fprintf(out, "backends JSON written to %s\n", *backendsJSON)
	}
	if *payloadJSON != "" {
		f, err := os.Create(*payloadJSON)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := bench.WritePayloadJSON(f, scale); err != nil {
			return err
		}
		fmt.Fprintf(out, "payload JSON written to %s\n", *payloadJSON)
	}
	if *oooJSON != "" {
		f, err := os.Create(*oooJSON)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := bench.WriteOOOJSON(f, scale); err != nil {
			return err
		}
		fmt.Fprintf(out, "out-of-order JSON written to %s\n", *oooJSON)
	}
	return nil
}
