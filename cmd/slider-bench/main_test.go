package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSelectedExperiment(t *testing.T) {
	out := filepath.Join(t.TempDir(), "res.txt")
	if err := run([]string{"-scale", "quick", "-exp", "fig12", "-out", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Figure 12") {
		t.Fatalf("output missing experiment:\n%s", data)
	}
}

func TestRunJSONRecord(t *testing.T) {
	if testing.Short() {
		t.Skip("full quick JSON run")
	}
	jsonPath := filepath.Join(t.TempDir(), "res.json")
	out := filepath.Join(t.TempDir(), "res.txt")
	if err := run([]string{"-scale", "quick", "-exp", "fig12", "-out", out, "-json", jsonPath}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if decoded["scale"] != "quick" {
		t.Fatalf("scale = %v", decoded["scale"])
	}
}

func TestRunRejectsBadScale(t *testing.T) {
	if err := run([]string{"-scale", "huge"}); err == nil {
		t.Fatal("bad scale accepted")
	}
}
