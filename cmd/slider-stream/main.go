// Command slider-stream runs an incremental sliding word count over
// lines read from stdin: a live demonstration of the record-oriented
// streaming driver on arbitrary input.
//
// Usage:
//
//	tail -f app.log | slider-stream -split 100 -window 20 -slide 5 -top 10
//
// Every slide prints the window's top words and the update's cost. With
// -slide 0 the window is append-only.
//
// With -workers the map phase runs remotely on slider-worker processes
// (which register the same "stream-wordcount" job), the periodic stats
// line grows a cluster section federated from the workers' Stats RPCs,
// and the obs server's /metrics exposes per-worker and cluster-level
// series next to the driver's own.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"slider"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "slider-stream:", err)
		os.Exit(1)
	}
}

func wordCount() *slider.Job {
	sum := func(_ string, values []slider.Value) slider.Value {
		var total int64
		for _, v := range values {
			total += v.(int64)
		}
		return total
	}
	return &slider.Job{
		Name:       "stream-wordcount",
		Partitions: 4,
		Map: func(rec slider.Record, emit slider.Emit) error {
			for _, w := range strings.Fields(rec.(string)) {
				emit(strings.ToLower(strings.Trim(w, ".,;:!?\"'()[]")), int64(1))
			}
			return nil
		},
		Combine:     sum,
		Reduce:      sum,
		Commutative: true,
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("slider-stream", flag.ContinueOnError)
	split := fs.Int("split", 100, "lines per split")
	window := fs.Int("window", 20, "window length in splits")
	slide := fs.Int("slide", 5, "slide width in splits (0 = append-only)")
	top := fs.Int("top", 10, "words to print per window")
	backendName := fs.String("backend", "auto", "aggregation backend: auto, daba, rotating, coalescing, folding, randomized-folding, strawman, fingertree")
	lateness := fs.Int("lateness", 0, "accepted bucket lateness for out-of-order arrivals (>0 selects the fingertree backend)")
	switchPolicy := fs.String("switch-policy", "", "live backend-switch policy over the contract-phase latency, e.g. p95:high=20ms,low=5ms,n=3 (fixed windows only; empty = off)")
	obsAddr := fs.String("obs-addr", "", "serve /metrics, /debug/pprof, /debug/slides, /debug/tree and /debug/trace on this address (empty = no server)")
	statsEvery := fs.Int("stats", 10, "print a runtime stats line every N windows (0 = never)")
	workerAddrs := fs.String("workers", "", "comma-separated slider-worker addresses to run the map phase on (empty = in-process)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	backend, err := slider.ParseBackend(*backendName)
	if err != nil {
		return err
	}
	switchHook, err := slider.ParseSwitchPolicy(*switchPolicy)
	if err != nil {
		return err
	}

	// Instrument every slide so the stats line (and the obs server, when
	// enabled) has latency and memo data. Span tracing stays off unless
	// someone can actually look at the traces.
	so := slider.NewSlideObs()
	if *obsAddr == "" {
		so.Tracer.SetMode(slider.TraceOff, 0)
	}

	// With -workers the map phase runs on remote slider-worker processes.
	// The pool shares the runtime's fault recorder and tracer so retries,
	// hedges, and the workers' own span trees all land in one place, and
	// polls every worker's Stats RPC to keep a federated cluster view.
	faults := &slider.FaultRecorder{}
	var pool *slider.WorkerPool
	if *workerAddrs != "" {
		pool, err = slider.NewWorkerPoolConfig("stream-wordcount",
			strings.Split(*workerAddrs, ","), slider.WorkerPoolConfig{
				Hedge:         true,
				StatsInterval: time.Second,
				Faults:        faults,
				Tracer:        so.Tracer,
			})
		if err != nil {
			return err
		}
		defer pool.Close()
	}

	var cw *slider.CountWindow
	runNo := 0
	sink := func(o slider.WindowOutput) error {
		runNo++
		type wc struct {
			word  string
			count int64
		}
		words := make([]wc, 0, len(o.Result.Output))
		for w, v := range o.Result.Output {
			words = append(words, wc{w, v.(int64)})
		}
		sort.Slice(words, func(i, j int) bool {
			if words[i].count != words[j].count {
				return words[i].count > words[j].count
			}
			return words[i].word < words[j].word
		})
		fmt.Printf("window #%d [splits %d..%d): %d distinct words, update work %v\n",
			runNo, o.WindowStart, o.WindowEnd, len(words), o.Result.Report.Work.Round(1000))
		for i, w := range words {
			if i == *top {
				break
			}
			fmt.Printf("  %6d  %s\n", w.count, w.word)
		}
		if *statsEvery > 0 && runNo%*statsEvery == 0 {
			ms := cw.Runtime().Store().Stats()
			hitRatio := 0.0
			if ms.Hits+ms.Misses > 0 {
				hitRatio = float64(ms.Hits) / float64(ms.Hits+ms.Misses)
			}
			faultLine := "none"
			if fsnap := cw.Runtime().FaultRecorder().Snapshot(); fsnap != (slider.FaultStats{}) {
				faultLine = fsnap.String()
			}
			fmt.Printf("stats: slides=%d backend=%v memo-hit=%.1f%% slide-p95=%v faults: %s\n",
				runNo, cw.Runtime().Backend(), 100*hitRatio, so.Slide.Quantile(0.95), faultLine)
			if pool != nil {
				fmt.Printf("stats: %s\n", pool.ClusterStats())
			}
		}
		return nil
	}

	rtCfg := slider.Config{Obs: so, Backend: backend, SwitchHook: switchHook,
		AllowedLateness: *lateness, Faults: faults}
	if pool != nil {
		rtCfg.MapRunner = pool
	}
	cw, err = slider.NewCountWindow(slider.CountWindowConfig{
		Job:             wordCount(),
		RecordsPerSplit: *split,
		WindowSplits:    *window,
		SlideSplits:     *slide,
		Config:          rtCfg,
	}, sink)
	if err != nil {
		return err
	}
	if *obsAddr != "" {
		srv, err := slider.StartObsServerForRuntime(*obsAddr, cw.Runtime())
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("obs: serving introspection endpoints on http://%s/\n", srv.Addr())
	}

	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1024*1024), 1024*1024)
	for scanner.Scan() {
		if err := cw.Push(scanner.Text()); err != nil {
			return err
		}
	}
	if err := scanner.Err(); err != nil {
		return err
	}
	if runNo == 0 {
		fmt.Printf("stream ended before the first window filled (%d splits needed)\n", *window)
	}
	return nil
}
