// Command pigq runs a Pig-lite query incrementally over a sliding window
// of the synthetic page-views stream, demonstrating the multi-level
// query processing of §5.
//
// Usage:
//
//	pigq [-query file.pig] [-input data.tsv] [-mode A|F|V] [-window N]
//	     [-slides K] [-delta D]
//
// With no -query, a built-in top-regions-by-time query runs over the
// synthetic page-views stream. With -input, rows come from a TSV file
// whose columns match the query's LOAD schema (numeric-looking fields
// are parsed as numbers). After each slide the query's output rows and
// the incremental work savings are printed.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"slider"
	"slider/internal/workload"
)

const defaultQuery = `
raw = LOAD 'events' AS (user, action, page, timespent, revenue);
views = FILTER raw BY action == 'view';
joined = JOIN views BY user, 'users' BY user;
grouped = GROUP joined BY region;
agg = FOREACH grouped GENERATE group AS region, COUNT(*) AS views, SUM(timespent) AS total;
ordered = ORDER agg BY total DESC;
STORE ordered INTO 'top_regions';
`

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pigq:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pigq", flag.ContinueOnError)
	queryPath := fs.String("query", "", "path to a Pig-lite script (default: built-in query)")
	inputPath := fs.String("input", "", "TSV file of input rows (default: synthetic page views)")
	modeFlag := fs.String("mode", "F", "window mode: A (append), F (fixed), V (variable)")
	window := fs.Int("window", 20, "window size in splits")
	slides := fs.Int("slides", 3, "number of incremental slides to run")
	delta := fs.Int("delta", 2, "splits added (and, except in A mode, dropped) per slide")
	rowsPerSplit := fs.Int("rows", 100, "rows per split when reading -input")
	explain := fs.Bool("explain", false, "print the compiled pipeline and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	src := defaultQuery
	if *queryPath != "" {
		data, err := os.ReadFile(*queryPath)
		if err != nil {
			return err
		}
		src = string(data)
	}
	var mode slider.Mode
	switch *modeFlag {
	case "A":
		mode = slider.Append
	case "F":
		mode = slider.Fixed
	case "V":
		mode = slider.Variable
	default:
		return fmt.Errorf("unknown mode %q", *modeFlag)
	}

	gen := workload.NewPigMix(workload.DefaultPigMixConfig())
	tblSchema, tblRows := gen.UserTable()
	table := &slider.QueryTable{Schema: tblSchema}
	for _, r := range tblRows {
		table.Rows = append(table.Rows, slider.Row(r))
	}

	script, err := slider.ParseQuery(src)
	if err != nil {
		return err
	}
	plan, err := slider.CompileQuery(script, map[string]*slider.QueryTable{"users": table}, 4)
	if err != nil {
		return err
	}

	if *explain {
		fmt.Print(plan.Describe())
		return nil
	}
	source := gen.Range
	if *inputPath != "" {
		source, err = tsvSource(*inputPath, len(plan.LoadSchema), *rowsPerSplit)
		if err != nil {
			return err
		}
	}
	fmt.Printf("compiled %d MapReduce stage(s):", len(plan.Stages))
	for _, st := range plan.Stages {
		fmt.Printf(" [%s]", st.Name)
	}
	fmt.Println()

	cfg := slider.PipelineConfig{Mode: mode}
	if mode == slider.Fixed {
		cfg.BucketSplits = *delta
		cfg.WindowBuckets = *window / *delta
		if (*window)%(*delta) != 0 {
			return fmt.Errorf("fixed mode needs window %% delta == 0")
		}
	}
	pl, err := slider.NewPipeline(plan, cfg)
	if err != nil {
		return err
	}

	res, err := pl.Initial(source(0, *window))
	if err != nil {
		return err
	}
	printRows("initial window", res)

	next := *window
	for i := 1; i <= *slides; i++ {
		drop := *delta
		if mode == slider.Append {
			drop = 0
		}
		add := source(next, next+*delta)
		next += *delta
		res, err := pl.Advance(drop, add)
		if err != nil {
			return err
		}
		printRows(fmt.Sprintf("slide %d (drop %d, add %d)", i, drop, *delta), res)
		c := res.Report.Counters
		fmt.Printf("  work: %v | map tasks run %d, reused %d | combines %d\n\n",
			res.Report.Work.Round(1000), c.MapTasks, c.MapTasksReused, c.CombineCalls)
	}
	return nil
}

// tsvSource loads a TSV file and serves it as numbered splits. Fields
// that parse as numbers become float64; everything else stays a string.
func tsvSource(path string, columns, rowsPerSplit int) (func(lo, hi int) []slider.Split, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rows []slider.Row
	scanner := bufio.NewScanner(f)
	scanner.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := scanner.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) != columns {
			return nil, fmt.Errorf("%s:%d: %d fields, query's LOAD schema has %d",
				path, lineNo, len(fields), columns)
		}
		row := make(slider.Row, len(fields))
		for i, field := range fields {
			if n, err := strconv.ParseFloat(field, 64); err == nil {
				row[i] = n
			} else {
				row[i] = field
			}
		}
		rows = append(rows, row)
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	total := (len(rows) + rowsPerSplit - 1) / rowsPerSplit
	return func(lo, hi int) []slider.Split {
		var out []slider.Split
		for i := lo; i < hi; i++ {
			// Past end of file: recycle rows so slides keep flowing,
			// keeping a stream-position-unique split identity.
			idx := i % total
			start := idx * rowsPerSplit
			end := start + rowsPerSplit
			if end > len(rows) {
				end = len(rows)
			}
			records := make([]slider.Record, 0, end-start)
			for _, r := range rows[start:end] {
				records = append(records, r)
			}
			out = append(out, slider.Split{
				ID:      fmt.Sprintf("tsv-%d", i),
				Records: records,
			})
		}
		return out
	}, nil
}

func printRows(label string, res *slider.PipelineResult) {
	fmt.Printf("%s → %d row(s) %v\n", label, len(res.Rows), res.Schema)
	for i, r := range res.Rows {
		if i == 10 {
			fmt.Printf("  ... (%d more)\n", len(res.Rows)-10)
			break
		}
		fmt.Print("  ")
		for _, v := range r {
			fmt.Printf("%v\t", v)
		}
		fmt.Println()
	}
}
