package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTSV(t *testing.T, lines string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "events.tsv")
	if err := os.WriteFile(path, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestTSVSource(t *testing.T) {
	path := writeTSV(t, "u1\tview\tp1\t40\t0\nu2\tclick\tp2\t10\t5.5\n\nu3\tview\tp1\t7\t0\n")
	source, err := tsvSource(path, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	splits := source(0, 2)
	if len(splits) != 2 {
		t.Fatalf("splits = %d", len(splits))
	}
	if len(splits[0].Records) != 2 || len(splits[1].Records) != 1 {
		t.Fatalf("split sizes = %d, %d", len(splits[0].Records), len(splits[1].Records))
	}
	row := splits[0].Records[1].([]any)
	if row[0] != "u2" || row[3].(float64) != 10 || row[4].(float64) != 5.5 {
		t.Fatalf("row = %v", row)
	}
	// Recycling past EOF keeps unique split IDs.
	more := source(2, 4)
	if more[0].ID == splits[0].ID {
		t.Fatal("recycled split reuses an identity")
	}
}

func TestTSVSourceFieldMismatch(t *testing.T) {
	path := writeTSV(t, "only\ttwo\n")
	if _, err := tsvSource(path, 5, 2); err == nil {
		t.Fatal("field-count mismatch accepted")
	}
}

func TestTSVSourceMissingFile(t *testing.T) {
	if _, err := tsvSource("/nonexistent/x.tsv", 5, 2); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRunBuiltinQuery(t *testing.T) {
	if err := run([]string{"-window", "6", "-delta", "2", "-mode", "F", "-slides", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithTSVInput(t *testing.T) {
	var lines string
	for i := 0; i < 40; i++ {
		lines += "u1\tview\tp1\t40\t0\nu2\tview\tp2\t50\t0\n"
	}
	path := writeTSV(t, lines)
	if err := run([]string{"-input", path, "-window", "4", "-delta", "1",
		"-mode", "V", "-slides", "2", "-rows", "10"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-mode", "Z"}); err == nil {
		t.Fatal("bad mode accepted")
	}
	if err := run([]string{"-mode", "F", "-window", "5", "-delta", "2"}); err == nil {
		t.Fatal("non-divisible fixed window accepted")
	}
	if err := run([]string{"-query", "/nonexistent.pig"}); err == nil {
		t.Fatal("missing query file accepted")
	}
}
