package slider_test

import (
	"fmt"
	"strconv"
	"strings"

	"slider"
)

func sum(_ string, values []slider.Value) slider.Value {
	var total int64
	for _, v := range values {
		total += v.(int64)
	}
	return total
}

func lines(id int, text ...string) slider.Split {
	records := make([]slider.Record, len(text))
	for i, l := range text {
		records[i] = l
	}
	return slider.Split{ID: "ex" + strconv.Itoa(id), Records: records}
}

// Example runs a word count over a fixed-width sliding window and slides
// it once: only the new split is mapped, and the contraction tree updates
// the counts incrementally.
func Example() {
	job := &slider.Job{
		Name: "wordcount",
		Map: func(rec slider.Record, emit slider.Emit) error {
			for _, w := range strings.Fields(rec.(string)) {
				emit(w, int64(1))
			}
			return nil
		},
		Combine:     sum,
		Reduce:      sum,
		Commutative: true,
	}
	rt, err := slider.New(job, slider.Config{
		Mode: slider.Fixed, BucketSplits: 1, WindowBuckets: 3,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	res, _ := rt.Initial([]slider.Split{
		lines(0, "go go"),
		lines(1, "go gopher"),
		lines(2, "gopher"),
	})
	fmt.Println("go:", res.Output["go"], "gopher:", res.Output["gopher"])

	res, _ = rt.Advance(1, []slider.Split{lines(3, "gopher gopher")})
	fmt.Println("go:", res.Output["go"], "gopher:", res.Output["gopher"])
	// Output:
	// go: 3 gopher: 2
	// go: 1 gopher: 4
}

// ExampleNew_appendOnly shows the append-only mode: the window grows
// monotonically and every append costs a single combiner pass over the
// delta (coalescing contraction tree).
func ExampleNew_appendOnly() {
	job := &slider.Job{
		Name: "sum",
		Map: func(rec slider.Record, emit slider.Emit) error {
			emit("total", rec.(int64))
			return nil
		},
		Combine: sum,
		Reduce:  sum,
	}
	rt, _ := slider.New(job, slider.Config{Mode: slider.Append})
	ints := func(id int, vs ...int64) slider.Split {
		records := make([]slider.Record, len(vs))
		for i, v := range vs {
			records[i] = v
		}
		return slider.Split{ID: "n" + strconv.Itoa(id), Records: records}
	}
	res, _ := rt.Initial([]slider.Split{ints(0, 1, 2, 3)})
	fmt.Println(res.Output["total"])
	res, _ = rt.Advance(0, []slider.Split{ints(1, 10)})
	fmt.Println(res.Output["total"])
	// Output:
	// 6
	// 16
}

// ExampleParseQuery compiles a Pig-lite script to a MapReduce pipeline
// and prints its plan.
func ExampleParseQuery() {
	script, err := slider.ParseQuery(`
		ev  = LOAD 'events' AS (user, n);
		big = FILTER ev BY n >= 10;
		g   = GROUP big BY user;
		agg = FOREACH g GENERATE group AS user, SUM(n) AS total;
		o   = ORDER agg BY total DESC;
		top = LIMIT o 3;
		STORE top INTO 'out';
	`)
	if err != nil {
		fmt.Println(err)
		return
	}
	plan, err := slider.CompileQuery(script, nil, 2)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Print(plan.Describe())
	// Output:
	// pipeline of 2 MapReduce stage(s), input [user n]:
	//   stage 1: group(user) [filter] → [user total]
	//   stage 2: order(total)+limit(3) → [user total]
	//   store into "out"
}

// ExampleNewCountWindow streams records through an automatically managed
// sliding window.
func ExampleNewCountWindow() {
	job := &slider.Job{
		Name: "count",
		Map: func(rec slider.Record, emit slider.Emit) error {
			emit(rec.(string), int64(1))
			return nil
		},
		Combine:     sum,
		Reduce:      sum,
		Commutative: true,
	}
	cw, _ := slider.NewCountWindow(slider.CountWindowConfig{
		Job:             job,
		RecordsPerSplit: 2,
		WindowSplits:    2,
		SlideSplits:     1,
	}, func(o slider.WindowOutput) error {
		fmt.Printf("window [%d,%d): a=%v\n", o.WindowStart, o.WindowEnd, o.Result.Output["a"])
		return nil
	})
	for i := 0; i < 6; i++ {
		_ = cw.Push("a")
	}
	// Output:
	// window [0,2): a=4
	// window [1,3): a=4
}
