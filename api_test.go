package slider_test

import (
	"strconv"
	"strings"
	"testing"

	"slider"
)

// sumValues is the combiner/reducer of the API tests.
func sumValues(_ string, values []slider.Value) slider.Value {
	var total int64
	for _, v := range values {
		total += v.(int64)
	}
	return total
}

func apiJob() *slider.Job {
	return &slider.Job{
		Name:       "wordcount",
		Partitions: 2,
		Map: func(rec slider.Record, emit slider.Emit) error {
			for _, w := range strings.Fields(rec.(string)) {
				emit(w, int64(1))
			}
			return nil
		},
		Combine:     sumValues,
		Reduce:      sumValues,
		Commutative: true,
	}
}

func textSplit(id int, text string) slider.Split {
	return slider.Split{ID: "s" + strconv.Itoa(id), Records: []slider.Record{text}}
}

func TestPublicAPIEndToEnd(t *testing.T) {
	rt, err := slider.New(apiJob(), slider.Config{
		Mode:          slider.Fixed,
		BucketSplits:  1,
		WindowBuckets: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Initial([]slider.Split{
		textSplit(0, "a b"),
		textSplit(1, "b c"),
		textSplit(2, "c d"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output["b"].(int64) != 2 || res.Output["d"].(int64) != 1 {
		t.Fatalf("initial output = %v", res.Output)
	}
	res, err = rt.Advance(1, []slider.Split{textSplit(3, "d d")})
	if err != nil {
		t.Fatal(err)
	}
	// Window is now {b c, c d, d d}.
	if _, ok := res.Output["a"]; ok {
		t.Fatal("dropped split still visible")
	}
	if res.Output["d"].(int64) != 3 {
		t.Fatalf("d = %v", res.Output["d"])
	}

	// The simulated cluster turns the run's tasks into a makespan.
	sim := slider.Simulate(slider.DefaultClusterConfig(), res.Report, slider.HybridPolicy)
	if sim.Makespan <= 0 {
		t.Fatal("no makespan")
	}
	baseline := slider.Simulate(slider.DefaultClusterConfig(), res.Report, slider.BaselinePolicy)
	if baseline.Makespan <= 0 {
		t.Fatal("no baseline makespan")
	}
}

func TestPublicAPIScratchAgreement(t *testing.T) {
	window := []slider.Split{
		textSplit(0, "x y"),
		textSplit(1, "y z z"),
	}
	out, err := slider.RunScratch(apiJob(), window, 0, slider.NewRecorder())
	if err != nil {
		t.Fatal(err)
	}
	if out["z"].(int64) != 2 {
		t.Fatalf("out = %v", out)
	}
}

func TestPublicAPIQueryPipeline(t *testing.T) {
	script, err := slider.ParseQuery(`
ev = LOAD 'events' AS (user, n);
g = GROUP ev BY user;
agg = FOREACH g GENERATE group AS user, SUM(n) AS total;
o = ORDER agg BY total DESC;
STORE o INTO 'out';
`)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := slider.CompileQuery(script, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := slider.NewPipeline(plan, slider.PipelineConfig{Mode: slider.Append})
	if err != nil {
		t.Fatal(err)
	}
	mkSplit := func(id int, rows ...slider.Row) slider.Split {
		records := make([]slider.Record, len(rows))
		for i, r := range rows {
			records[i] = r
		}
		return slider.Split{ID: "q" + strconv.Itoa(id), Records: records}
	}
	res, err := pl.Initial([]slider.Split{
		mkSplit(0, slider.Row{"alice", 2.0}, slider.Row{"bob", 1.0}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0] != "alice" {
		t.Fatalf("rows = %v", res.Rows)
	}
	res, err = pl.Advance(0, []slider.Split{
		mkSplit(1, slider.Row{"bob", 5.0}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != "bob" || res.Rows[0][1].(float64) != 6 {
		t.Fatalf("rows after append = %v", res.Rows)
	}

	// Scratch agreement through the public API.
	want, _, err := slider.RunQueryScratch(plan, []slider.Split{
		mkSplit(0, slider.Row{"alice", 2.0}, slider.Row{"bob", 1.0}),
		mkSplit(1, slider.Row{"bob", 5.0}),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(res.Rows) {
		t.Fatalf("scratch rows = %v", want)
	}
}

func TestPublicAPIStrawmanEngine(t *testing.T) {
	rt, err := slider.New(apiJob(), slider.Config{Mode: slider.Variable, Engine: slider.Strawman})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Initial([]slider.Split{textSplit(0, "a"), textSplit(1, "b")}); err != nil {
		t.Fatal(err)
	}
	res, err := rt.Advance(1, []slider.Split{textSplit(2, "c")})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Output["a"]; ok {
		t.Fatal("strawman engine kept a dropped split")
	}
}
