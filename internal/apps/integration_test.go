package apps

import (
	"math"
	"testing"

	"slider/internal/mapreduce"
	"slider/internal/memo"
	"slider/internal/sliderrt"
	"slider/internal/workload"
)

// integration drives a job through the Slider runtime in every window
// mode and checks each incremental output against recomputation from
// scratch — the end-to-end transparency guarantee, per application.

func approxValue(a, b mapreduce.Value) bool {
	switch x := a.(type) {
	case float64:
		y, ok := b.(float64)
		return ok && math.Abs(x-y) <= 1e-9*math.Max(1, math.Max(math.Abs(x), math.Abs(y)))
	case []float64:
		y, ok := b.([]float64)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if !approxValue(x[i], y[i]) {
				return false
			}
		}
		return true
	default:
		return mapreduce.Fingerprint(a) == mapreduce.Fingerprint(b)
	}
}

func assertSameOutput(t *testing.T, label string, got, want mapreduce.Output) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d keys, want %d", label, len(got), len(want))
	}
	for k, wv := range want {
		gv, ok := got[k]
		if !ok {
			t.Fatalf("%s: missing key %q", label, k)
		}
		if !approxValue(gv, wv) {
			t.Fatalf("%s: key %q: %v != %v", label, k, gv, wv)
		}
	}
}

// driveApp runs initial + three slides in the given mode.
func driveApp(t *testing.T, name string, job *mapreduce.Job, gen func(lo, hi int) []mapreduce.Split, mode sliderrt.Mode) {
	t.Helper()
	memoCfg := memo.DefaultConfig()
	memoCfg.Nodes = 4
	cfg := sliderrt.Config{Mode: mode, Memo: memoCfg}
	if mode == sliderrt.Fixed {
		cfg.BucketSplits = 2
		cfg.WindowBuckets = 4
	}
	rt, err := sliderrt.New(job, cfg)
	if err != nil {
		t.Fatalf("%s/%v: %v", name, mode, err)
	}
	window := gen(0, 8)
	res, err := rt.Initial(window)
	if err != nil {
		t.Fatalf("%s/%v initial: %v", name, mode, err)
	}
	want, err := mapreduce.RunScratch(job, window, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameOutput(t, name+"/initial", res.Output, want)

	next := 8
	for slide := 0; slide < 3; slide++ {
		drop := 2
		if mode == sliderrt.Append {
			drop = 0
		}
		add := gen(next, next+2)
		next += 2
		res, err := rt.Advance(drop, add)
		if err != nil {
			t.Fatalf("%s/%v slide %d: %v", name, mode, slide, err)
		}
		window = append(window[drop:], add...)
		want, err := mapreduce.RunScratch(job, window, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		assertSameOutput(t, name+"/slide", res.Output, want)
	}
}

func TestAllMicroAppsAllModes(t *testing.T) {
	text := workload.NewText(workload.TextConfig{
		Seed: 5, LinesPerSplit: 10, WordsPerLine: 8, Vocabulary: 300, ZipfS: 1.2,
	})
	points := workload.NewPoints(workload.PointsConfig{Seed: 5, PointsPerSplit: 40, Dim: 12})
	cases := []struct {
		name string
		job  func() *mapreduce.Job
		gen  func(lo, hi int) []mapreduce.Split
	}{
		{"HCT", func() *mapreduce.Job { return HCT(3) }, text.Range},
		{"Matrix", func() *mapreduce.Job { return Matrix(3) }, text.Range},
		{"subStr", func() *mapreduce.Job { return SubStr(3) }, text.Range},
		{"K-Means", func() *mapreduce.Job { return KMeans(3, 6, 12, 9) }, points.Range},
		{"KNN", func() *mapreduce.Job { return KNN(3, 5, points.QueryPoints(5)) }, points.Range},
	}
	for _, c := range cases {
		for _, mode := range []sliderrt.Mode{sliderrt.Append, sliderrt.Fixed, sliderrt.Variable} {
			driveApp(t, c.name, c.job(), c.gen, mode)
		}
	}
}

func TestCaseStudyAppsIncremental(t *testing.T) {
	tw := workload.NewTwitter(workload.TwitterConfig{
		Seed: 6, Users: 300, MeanFollows: 6, URLs: 40, TweetsPerSplit: 60,
	})
	driveApp(t, "twitter", TwitterPropagation(3, tw.Graph()), tw.Range, sliderrt.Append)

	gl := workload.NewGlasnost(workload.GlasnostConfig{
		Seed: 6, Servers: 4, RunsPerSplit: 40, SplitsPerMonth: 2,
	})
	glGen := func(lo, hi int) []mapreduce.Split {
		out := make([]mapreduce.Split, 0, hi-lo)
		for i := lo; i < hi; i++ {
			out = append(out, gl.Split(i))
		}
		return out
	}
	driveApp(t, "glasnost", GlasnostMonitor(3), glGen, sliderrt.Variable)

	ns := workload.NewNetSession(workload.NetSessionConfig{
		Seed: 6, Clients: 500, LogsPerSplit: 10, EntriesPerLog: 50, TamperRate: 0.1,
	})
	nsGen := func(lo, hi int) []mapreduce.Split {
		out := make([]mapreduce.Split, 0, hi-lo)
		for i := lo; i < hi; i++ {
			out = append(out, ns.Split(i, i/4))
		}
		return out
	}
	driveApp(t, "netsession", NetSessionAudit(3, 16), nsGen, sliderrt.Variable)
}
