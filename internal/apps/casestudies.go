package apps

import (
	"fmt"
	"sort"
	"strconv"

	"slider/internal/mapreduce"
	"slider/internal/workload"
)

// Post is one (user, time) URL posting inside a PostList.
type Post struct {
	// User posted the URL.
	User int32
	// Time is the posting timestamp.
	Time int64
}

// PostList is a time-sorted list of postings of one URL. Merging two
// lists is a sorted merge — associative and commutative (ties broken by
// user ID), so it works with every contraction tree.
type PostList struct {
	// Posts is sorted by (Time, User).
	Posts []Post
}

var (
	_ mapreduce.Sizer         = (*PostList)(nil)
	_ mapreduce.Fingerprinter = (*PostList)(nil)
)

// postLess orders posts by (Time, User).
func postLess(a, b Post) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	return a.User < b.User
}

// Merge returns a fresh sorted union of the two lists.
func (l *PostList) Merge(other *PostList) *PostList {
	out := &PostList{Posts: make([]Post, 0, len(l.Posts)+len(other.Posts))}
	i, j := 0, 0
	for i < len(l.Posts) || j < len(other.Posts) {
		switch {
		case i == len(l.Posts):
			out.Posts = append(out.Posts, other.Posts[j])
			j++
		case j == len(other.Posts):
			out.Posts = append(out.Posts, l.Posts[i])
			i++
		case postLess(l.Posts[i], other.Posts[j]):
			out.Posts = append(out.Posts, l.Posts[i])
			i++
		default:
			out.Posts = append(out.Posts, other.Posts[j])
			j++
		}
	}
	return out
}

// SizeBytes implements mapreduce.Sizer.
func (l *PostList) SizeBytes() int64 { return int64(16*len(l.Posts)) + 24 }

// Fingerprint implements mapreduce.Fingerprinter.
func (l *PostList) Fingerprint() uint64 {
	h := uint64(14695981039346656037)
	for _, p := range l.Posts {
		x := uint64(p.Time)<<32 ^ uint64(uint32(p.User))
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= 1099511628211
			x >>= 8
		}
	}
	return h
}

// PropStats is the per-URL output of the propagation-tree analysis:
// Krackhardt-style hierarchy statistics of the information propagation
// tree (§8.1).
type PropStats struct {
	// Posts is the number of postings of the URL in the window.
	Posts int
	// Edges is the number of spreader→receiver edges.
	Edges int
	// Roots is the number of independent introduction points.
	Roots int
	// Depth is the maximum propagation-chain depth.
	Depth int
}

// TwitterPropagation builds information propagation trees for URLs posted
// on Twitter (§8.1): a receiver who posts a URL after an account they
// follow posted it is attached under the earliest such spreader.
func TwitterPropagation(partitions int, graph *workload.FollowGraph) *mapreduce.Job {
	return &mapreduce.Job{
		Name:       "twitter-propagation",
		Partitions: partitions,
		Map: func(rec mapreduce.Record, emit mapreduce.Emit) error {
			tw, ok := rec.(workload.Tweet)
			if !ok {
				return fmt.Errorf("twitter: record %T is not a Tweet", rec)
			}
			emit("url"+strconv.Itoa(int(tw.URL)), &PostList{Posts: []Post{{User: tw.User, Time: tw.Time}}})
			return nil
		},
		Combine: func(_ string, values []mapreduce.Value) mapreduce.Value {
			acc := values[0].(*PostList)
			for _, v := range values[1:] {
				acc = acc.Merge(v.(*PostList))
			}
			return acc
		},
		Reduce: func(_ string, values []mapreduce.Value) mapreduce.Value {
			acc := values[0].(*PostList)
			for _, v := range values[1:] {
				acc = acc.Merge(v.(*PostList))
			}
			return buildPropagationTree(graph, acc)
		},
		Commutative: true,
	}
}

// buildPropagationTree attaches each poster to its earliest-posting
// followee and extracts tree statistics.
func buildPropagationTree(graph *workload.FollowGraph, posts *PostList) PropStats {
	stats := PropStats{Posts: len(posts.Posts)}
	depth := make(map[int32]int, len(posts.Posts))
	seenAt := make([]Post, 0, len(posts.Posts))
	for _, p := range posts.Posts {
		if _, dup := depth[p.User]; dup {
			continue
		}
		parentDepth := -1
		for _, earlier := range seenAt {
			if earlier.Time >= p.Time {
				break
			}
			if graph.Follows(p.User, earlier.User) {
				parentDepth = depth[earlier.User]
				break // earliest spreader wins
			}
		}
		if parentDepth >= 0 {
			stats.Edges++
			depth[p.User] = parentDepth + 1
		} else {
			stats.Roots++
			depth[p.User] = 0
		}
		if d := depth[p.User]; d > stats.Depth {
			stats.Depth = d
		}
		seenAt = append(seenAt, p)
	}
	return stats
}

// RTTHist is a millisecond-bucketed histogram of per-run minimum RTTs for
// one measurement server (§8.2). Histogram union is associative and
// commutative.
type RTTHist struct {
	// Buckets maps ms buckets to run counts.
	Buckets map[int32]int64
}

var (
	_ mapreduce.Sizer         = (*RTTHist)(nil)
	_ mapreduce.Fingerprinter = (*RTTHist)(nil)
)

// Merge returns a fresh histogram union.
func (h *RTTHist) Merge(other *RTTHist) *RTTHist {
	out := &RTTHist{Buckets: make(map[int32]int64, len(h.Buckets)+len(other.Buckets))}
	for b, c := range h.Buckets {
		out.Buckets[b] = c
	}
	for b, c := range other.Buckets {
		out.Buckets[b] += c
	}
	return out
}

// Median returns the histogram's median bucket value in ms.
func (h *RTTHist) Median() float64 {
	var total int64
	keys := make([]int32, 0, len(h.Buckets))
	for b, c := range h.Buckets {
		keys = append(keys, b)
		total += c
	}
	if total == 0 {
		return 0
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var cum int64
	for _, b := range keys {
		cum += h.Buckets[b]
		if cum*2 >= total {
			return float64(b)
		}
	}
	return float64(keys[len(keys)-1])
}

// SizeBytes implements mapreduce.Sizer.
func (h *RTTHist) SizeBytes() int64 { return int64(16*len(h.Buckets)) + 48 }

// Fingerprint implements mapreduce.Fingerprinter.
func (h *RTTHist) Fingerprint() uint64 {
	keys := make([]int32, 0, len(h.Buckets))
	for b := range h.Buckets {
		keys = append(keys, b)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	acc := uint64(14695981039346656037)
	for _, b := range keys {
		x := uint64(uint32(b))<<32 ^ uint64(h.Buckets[b])
		for i := 0; i < 8; i++ {
			acc ^= x & 0xff
			acc *= 1099511628211
			x >>= 8
		}
	}
	return acc
}

// GlasnostMonitor computes, per measurement server, the median across
// test runs of the per-run minimum RTT (§8.2): the effectiveness measure
// of Glasnost's server selection.
func GlasnostMonitor(partitions int) *mapreduce.Job {
	return &mapreduce.Job{
		Name:       "glasnost-monitor",
		Partitions: partitions,
		Map: func(rec mapreduce.Record, emit mapreduce.Emit) error {
			run, ok := rec.(workload.TestRun)
			if !ok {
				return fmt.Errorf("glasnost: record %T is not a TestRun", rec)
			}
			bucket := int32(run.MinRTTMs + 0.5)
			emit("server"+strconv.Itoa(int(run.Server)),
				&RTTHist{Buckets: map[int32]int64{bucket: 1}})
			return nil
		},
		Combine: func(_ string, values []mapreduce.Value) mapreduce.Value {
			acc := values[0].(*RTTHist)
			for _, v := range values[1:] {
				acc = acc.Merge(v.(*RTTHist))
			}
			return acc
		},
		Reduce: func(_ string, values []mapreduce.Value) mapreduce.Value {
			acc := values[0].(*RTTHist)
			for _, v := range values[1:] {
				acc = acc.Merge(v.(*RTTHist))
			}
			return acc.Median()
		},
		Commutative: true,
	}
}

// AuditSum accumulates PeerReview-style audit results for a group of
// clients (§8.3).
type AuditSum struct {
	// Logs is the number of log chunks audited.
	Logs int64
	// Entries is the number of hash-chain entries verified.
	Entries int64
	// Violations counts chunks whose hash chain failed verification.
	Violations int64
}

var (
	_ mapreduce.Sizer         = (*AuditSum)(nil)
	_ mapreduce.Fingerprinter = (*AuditSum)(nil)
)

// Add returns a fresh sum.
func (a *AuditSum) Add(b *AuditSum) *AuditSum {
	return &AuditSum{
		Logs:       a.Logs + b.Logs,
		Entries:    a.Entries + b.Entries,
		Violations: a.Violations + b.Violations,
	}
}

// SizeBytes implements mapreduce.Sizer.
func (a *AuditSum) SizeBytes() int64 { return 24 }

// Fingerprint implements mapreduce.Fingerprinter.
func (a *AuditSum) Fingerprint() uint64 {
	x := uint64(a.Logs)*0x9e3779b97f4a7c15 ^ uint64(a.Entries)*1099511628211 ^ uint64(a.Violations)
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	return x ^ (x >> 27)
}

// NetSessionAudit verifies the tamper-evident hash chains of hybrid-CDN
// client logs and aggregates audit verdicts per client group (§8.3).
func NetSessionAudit(partitions, clientGroups int) *mapreduce.Job {
	if clientGroups <= 0 {
		clientGroups = 64
	}
	return &mapreduce.Job{
		Name:       "netsession-audit",
		Partitions: partitions,
		Map: func(rec mapreduce.Record, emit mapreduce.Emit) error {
			log, ok := rec.(workload.ClientLog)
			if !ok {
				return fmt.Errorf("netsession: record %T is not a ClientLog", rec)
			}
			var prev uint64
			violated := false
			for i, e := range log.Entries {
				prev = workload.ChainStep(prev, i)
				if e != prev {
					violated = true
					prev = e // resynchronize, as a real auditor would
				}
			}
			sum := &AuditSum{Logs: 1, Entries: int64(len(log.Entries))}
			if violated {
				sum.Violations = 1
			}
			emit("group"+strconv.Itoa(int(log.Client)%clientGroups), sum)
			return nil
		},
		Combine: func(_ string, values []mapreduce.Value) mapreduce.Value {
			acc := values[0].(*AuditSum)
			for _, v := range values[1:] {
				acc = acc.Add(v.(*AuditSum))
			}
			return acc
		},
		Reduce: func(_ string, values []mapreduce.Value) mapreduce.Value {
			acc := values[0].(*AuditSum)
			for _, v := range values[1:] {
				acc = acc.Add(v.(*AuditSum))
			}
			return acc
		},
		Commutative: true,
	}
}
