package apps

import (
	"math/rand"
	"testing"
	"testing/quick"

	"slider/internal/mapreduce"
	"slider/internal/workload"
)

func runScratch(t *testing.T, job *mapreduce.Job, splits []mapreduce.Split) mapreduce.Output {
	t.Helper()
	out, err := mapreduce.RunScratch(job, splits, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestHCTCountsWords(t *testing.T) {
	job := HCT(2)
	splits := []mapreduce.Split{{ID: "s0", Records: []mapreduce.Record{"aa bbb aa", "cccc"}}}
	out := runScratch(t, job, splits)
	if got := out["len:2"].(int64); got != 2 {
		t.Fatalf("len:2 = %d, want 2", got)
	}
	if got := out["len:3"].(int64); got != 1 {
		t.Fatalf("len:3 = %d, want 1", got)
	}
	if got := out["first:a"].(int64); got != 2 {
		t.Fatalf("first:a = %d, want 2", got)
	}
}

func TestMatrixPairs(t *testing.T) {
	job := Matrix(2)
	splits := []mapreduce.Split{{ID: "s0", Records: []mapreduce.Record{"a b c"}}}
	out := runScratch(t, job, splits)
	// Pairs within distance 2: (a,b), (a,c), (b,c).
	for _, k := range []string{"a|b", "a|c", "b|c"} {
		if got := out[k].(int64); got != 1 {
			t.Fatalf("%s = %d, want 1", k, got)
		}
	}
	if len(out) != 3 {
		t.Fatalf("got %d pairs, want 3", len(out))
	}
}

func TestMatrixKeyNormalization(t *testing.T) {
	job := Matrix(1)
	splits := []mapreduce.Split{{ID: "s0", Records: []mapreduce.Record{"b a", "a b"}}}
	out := runScratch(t, job, splits)
	if got := out["a|b"].(int64); got != 2 {
		t.Fatalf("a|b = %d, want 2 (keys must be order-normalized)", got)
	}
}

func TestSubStrWindows(t *testing.T) {
	job := SubStr(1)
	splits := []mapreduce.Split{{ID: "s0", Records: []mapreduce.Record{"abcde abcd xyz"}}}
	out := runScratch(t, job, splits)
	if got := out["abcd"].(int64); got != 2 {
		t.Fatalf("abcd = %d, want 2", got)
	}
	if got := out["bcde"].(int64); got != 1 {
		t.Fatalf("bcde = %d, want 1", got)
	}
	if _, ok := out["xyz"]; ok {
		t.Fatal("3-letter word should emit nothing")
	}
}

func TestKMeansAssignsAllPoints(t *testing.T) {
	gen := workload.NewPoints(workload.PointsConfig{Seed: 2, PointsPerSplit: 100, Dim: 10})
	job := KMeans(2, 5, 10, 99)
	splits := gen.Range(0, 4)
	// Count assigned points across centroids by re-reducing with Count.
	results, err := mapreduce.Executor{}.RunMapTasks(job, splits, nil)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, r := range results {
		for _, p := range r.Parts {
			for _, v := range p {
				total += v.(*CentroidAcc).Count
			}
		}
	}
	if total != 400 {
		t.Fatalf("assigned %d points, want 400", total)
	}
	out := runScratch(t, job, splits)
	for k, v := range out {
		mean := v.([]float64)
		if len(mean) != 10 {
			t.Fatalf("centroid %s has dim %d", k, len(mean))
		}
		for _, c := range mean {
			if c < 0 || c > 1 {
				t.Fatalf("centroid %s coordinate %f outside the unit cube hull", k, c)
			}
		}
	}
}

func TestCentroidAddDoesNotMutate(t *testing.T) {
	a := &CentroidAcc{Sum: []float64{1, 2}, Count: 1}
	b := &CentroidAcc{Sum: []float64{3, 4}, Count: 2}
	c := a.Add(b)
	if a.Sum[0] != 1 || b.Sum[0] != 3 {
		t.Fatal("Add mutated an input")
	}
	if c.Sum[0] != 4 || c.Sum[1] != 6 || c.Count != 3 {
		t.Fatalf("c = %+v", c)
	}
}

func TestKNNFindsNearest(t *testing.T) {
	queries := [][]float64{{0, 0}, {1, 1}}
	job := KNN(1, 2, queries)
	splits := []mapreduce.Split{{ID: "s0", Records: []mapreduce.Record{
		[]float64{0.1, 0.1},
		[]float64{0.9, 0.9},
		[]float64{0.5, 0.5},
		[]float64{0.05, 0.0},
	}}}
	out := runScratch(t, job, splits)
	q0 := out["q0"].(*Neighbors)
	if len(q0.List) != 2 {
		t.Fatalf("q0 has %d neighbors, want 2", len(q0.List))
	}
	// Nearest to origin are (0.05,0) then (0.1,0.1).
	if q0.List[0].Dist >= q0.List[1].Dist {
		t.Fatal("neighbors not sorted by distance")
	}
	if q0.List[1].Dist > 0.03 {
		t.Fatalf("q0 second neighbor dist %f, wrong points kept", q0.List[1].Dist)
	}
}

func TestNeighborsMergeProperties(t *testing.T) {
	gen := func(rng *rand.Rand) *Neighbors {
		// Build the way the map side does: merge singletons, so the
		// sorted-and-capped invariant holds.
		n := &Neighbors{K: 4}
		cnt := rng.Intn(5)
		for i := 0; i < cnt; i++ {
			single := &Neighbors{K: 4, List: []Neighbor{{
				Dist: float64(rng.Intn(20)), ID: uint64(rng.Intn(100)),
			}}}
			n = n.Merge(single)
		}
		return n
	}
	equal := func(a, b *Neighbors) bool {
		if len(a.List) != len(b.List) {
			return false
		}
		for i := range a.List {
			if a.List[i] != b.List[i] {
				return false
			}
		}
		return true
	}
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := gen(rng), gen(rng), gen(rng)
		// Commutativity and associativity.
		if !equal(a.Merge(b), b.Merge(a)) {
			return false
		}
		return equal(a.Merge(b).Merge(c), a.Merge(b.Merge(c)))
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPostListMergeProperties(t *testing.T) {
	gen := func(rng *rand.Rand) *PostList {
		// Build by merging singletons, as the map side does, so the
		// time-sorted invariant holds.
		l := &PostList{}
		cnt := rng.Intn(5)
		for i := 0; i < cnt; i++ {
			single := &PostList{Posts: []Post{{
				User: int32(rng.Intn(50)), Time: int64(rng.Intn(30)),
			}}}
			l = l.Merge(single)
		}
		return l
	}
	equal := func(a, b *PostList) bool {
		if len(a.Posts) != len(b.Posts) {
			return false
		}
		for i := range a.Posts {
			if a.Posts[i] != b.Posts[i] {
				return false
			}
		}
		return true
	}
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := gen(rng), gen(rng), gen(rng)
		if !equal(a.Merge(b), b.Merge(a)) {
			return false
		}
		return equal(a.Merge(b).Merge(c), a.Merge(b.Merge(c)))
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTwitterPropagationSmallGraph(t *testing.T) {
	// Build a tiny controlled scenario through the workload generator's
	// graph type via tweets: user 1 follows user 0 (preferential
	// attachment guarantees it with high probability for user 1).
	tw := workload.NewTwitter(workload.TwitterConfig{Seed: 8, Users: 10, MeanFollows: 4, URLs: 3, TweetsPerSplit: 10})
	g := tw.Graph()
	var follower, followee int32 = -1, -1
	for u := int32(1); u < 10 && follower < 0; u++ {
		for v := int32(0); v < u; v++ {
			if g.Follows(u, v) {
				follower, followee = u, v
				break
			}
		}
	}
	if follower < 0 {
		t.Fatal("no follow edge in tiny graph")
	}
	job := TwitterPropagation(1, g)
	splits := []mapreduce.Split{{ID: "s0", Records: []mapreduce.Record{
		workload.Tweet{User: followee, URL: 1, Time: 1},
		workload.Tweet{User: follower, URL: 1, Time: 2},
	}}}
	out := runScratch(t, job, splits)
	stats := out["url1"].(PropStats)
	if stats.Posts != 2 || stats.Edges != 1 || stats.Roots != 1 || stats.Depth != 1 {
		t.Fatalf("stats = %+v, want 2 posts, 1 edge, 1 root, depth 1", stats)
	}
}

func TestTwitterPropagationIndependentPosts(t *testing.T) {
	tw := workload.NewTwitter(workload.TwitterConfig{Seed: 8, Users: 10, MeanFollows: 2, URLs: 3, TweetsPerSplit: 10})
	g := tw.Graph()
	// Two users who do NOT follow each other.
	var a, b int32 = -1, -1
	for u := int32(0); u < 10 && a < 0; u++ {
		for v := int32(0); v < 10; v++ {
			if u != v && !g.Follows(u, v) && !g.Follows(v, u) {
				a, b = u, v
				break
			}
		}
	}
	if a < 0 {
		t.Skip("fully connected tiny graph")
	}
	job := TwitterPropagation(1, g)
	splits := []mapreduce.Split{{ID: "s0", Records: []mapreduce.Record{
		workload.Tweet{User: a, URL: 2, Time: 1},
		workload.Tweet{User: b, URL: 2, Time: 2},
	}}}
	out := runScratch(t, job, splits)
	stats := out["url2"].(PropStats)
	if stats.Roots != 2 || stats.Edges != 0 {
		t.Fatalf("stats = %+v, want 2 roots, 0 edges", stats)
	}
}

func TestRTTHistMedian(t *testing.T) {
	h := &RTTHist{Buckets: map[int32]int64{10: 3, 20: 1, 30: 1}}
	if m := h.Median(); m != 10 {
		t.Fatalf("median = %f, want 10", m)
	}
	h2 := &RTTHist{Buckets: map[int32]int64{10: 1, 20: 1}}
	if m := h2.Median(); m != 10 {
		t.Fatalf("median = %f, want 10 (lower of even split)", m)
	}
	empty := &RTTHist{Buckets: map[int32]int64{}}
	if m := empty.Median(); m != 0 {
		t.Fatalf("empty median = %f", m)
	}
}

func TestGlasnostMonitorMedians(t *testing.T) {
	gen := workload.NewGlasnost(workload.GlasnostConfig{Seed: 4, Servers: 3, RunsPerSplit: 200, SplitsPerMonth: 1})
	job := GlasnostMonitor(2)
	out := runScratch(t, job, gen.MonthRange(0, 3))
	if len(out) != 3 {
		t.Fatalf("got %d servers, want 3", len(out))
	}
	// Servers have increasing base RTT (20 + 15·server); medians must
	// preserve that ordering.
	m0 := out["server0"].(float64)
	m2 := out["server2"].(float64)
	if m0 >= m2 {
		t.Fatalf("median(server0)=%f should be below median(server2)=%f", m0, m2)
	}
}

func TestNetSessionAuditDetectsTampering(t *testing.T) {
	cfg := workload.DefaultNetSessionConfig()
	cfg.TamperRate = 0.5
	cfg.LogsPerSplit = 100
	gen := workload.NewNetSession(cfg)
	job := NetSessionAudit(2, 8)
	out := runScratch(t, job, []mapreduce.Split{gen.Split(0, 0), gen.Split(1, 0)})
	var logs, violations int64
	for _, v := range out {
		s := v.(*AuditSum)
		logs += s.Logs
		violations += s.Violations
	}
	if logs != 200 {
		t.Fatalf("audited %d logs, want 200", logs)
	}
	frac := float64(violations) / float64(logs)
	if frac < 0.3 || frac > 0.7 {
		t.Fatalf("violation fraction %f far from tamper rate 0.5", frac)
	}
}

func TestSortedKeys(t *testing.T) {
	out := mapreduce.Output{"b": 1, "a": 2, "c": 3}
	keys := SortedKeys(out)
	if keys[0] != "a" || keys[2] != "c" {
		t.Fatalf("keys = %v", keys)
	}
}
