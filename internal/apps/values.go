// Package apps implements the paper's micro-benchmark applications (§7.1:
// K-Means, KNN, HCT, Matrix, subStr) and the three real-world case
// studies (§8: Twitter information propagation, Glasnost monitoring,
// Akamai NetSession accountability) as ordinary non-incremental MapReduce
// jobs — exactly the programs a Slider user would write.
package apps

import (
	"math"

	"slider/internal/mapreduce"
)

// CentroidAcc accumulates the vector sum and count of the points assigned
// to one K-Means centroid.
type CentroidAcc struct {
	// Sum is the per-dimension sum of assigned points.
	Sum []float64
	// Count is the number of assigned points.
	Count int64
}

var (
	_ mapreduce.Sizer         = (*CentroidAcc)(nil)
	_ mapreduce.Fingerprinter = (*CentroidAcc)(nil)
)

// Add returns a fresh accumulator holding a + b (inputs unmodified, as
// required by the contraction trees).
func (a *CentroidAcc) Add(b *CentroidAcc) *CentroidAcc {
	out := &CentroidAcc{Sum: make([]float64, len(a.Sum)), Count: a.Count + b.Count}
	copy(out.Sum, a.Sum)
	for i, v := range b.Sum {
		out.Sum[i] += v
	}
	return out
}

// SizeBytes implements mapreduce.Sizer.
func (a *CentroidAcc) SizeBytes() int64 { return int64(8*len(a.Sum)) + 16 }

// Fingerprint implements mapreduce.Fingerprinter.
func (a *CentroidAcc) Fingerprint() uint64 {
	h := uint64(14695981039346656037)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= 1099511628211
			x >>= 8
		}
	}
	mix(uint64(a.Count))
	for _, v := range a.Sum {
		mix(math.Float64bits(v))
	}
	return h
}

// Mean returns the centroid implied by the accumulator.
func (a *CentroidAcc) Mean() []float64 {
	out := make([]float64, len(a.Sum))
	if a.Count == 0 {
		return out
	}
	for i, v := range a.Sum {
		out[i] = v / float64(a.Count)
	}
	return out
}

// Neighbor is one candidate nearest neighbor.
type Neighbor struct {
	// Dist is the squared Euclidean distance to the query point.
	Dist float64
	// ID identifies the data point.
	ID uint64
}

// Neighbors is a size-capped ascending-distance neighbor list. Merging two
// lists keeps the k smallest, which is associative and commutative (ties
// broken by ID), as rotating trees require.
type Neighbors struct {
	// K is the capacity (number of neighbors kept).
	K int
	// List holds at most K neighbors sorted by (Dist, ID).
	List []Neighbor
}

var (
	_ mapreduce.Sizer         = (*Neighbors)(nil)
	_ mapreduce.Fingerprinter = (*Neighbors)(nil)
)

// less orders neighbors by (Dist, ID).
func less(a, b Neighbor) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.ID < b.ID
}

// Merge returns a fresh list holding the k nearest of a ∪ b.
func (a *Neighbors) Merge(b *Neighbors) *Neighbors {
	k := a.K
	if b.K > k {
		k = b.K
	}
	out := &Neighbors{K: k, List: make([]Neighbor, 0, k)}
	i, j := 0, 0
	for len(out.List) < k && (i < len(a.List) || j < len(b.List)) {
		switch {
		case i == len(a.List):
			out.List = append(out.List, b.List[j])
			j++
		case j == len(b.List):
			out.List = append(out.List, a.List[i])
			i++
		case less(a.List[i], b.List[j]):
			out.List = append(out.List, a.List[i])
			i++
		default:
			out.List = append(out.List, b.List[j])
			j++
		}
	}
	return out
}

// SizeBytes implements mapreduce.Sizer.
func (a *Neighbors) SizeBytes() int64 { return int64(16*len(a.List)) + 32 }

// Fingerprint implements mapreduce.Fingerprinter.
func (a *Neighbors) Fingerprint() uint64 {
	h := uint64(14695981039346656037)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= 1099511628211
			x >>= 8
		}
	}
	mix(uint64(a.K))
	for _, n := range a.List {
		mix(math.Float64bits(n.Dist))
		mix(n.ID)
	}
	return h
}
