package apps

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"slider/internal/mapreduce"
)

// sumJob returns the shared Combine/Reduce pair for int64-count jobs.
func sumValues(_ string, values []mapreduce.Value) mapreduce.Value {
	var sum int64
	for _, v := range values {
		sum += v.(int64)
	}
	return sum
}

// HCT is the histogram-based computation of §7.1 (data-intensive): it
// histograms word lengths and initial characters over the text window.
func HCT(partitions int) *mapreduce.Job {
	return &mapreduce.Job{
		Name:       "HCT",
		Partitions: partitions,
		Map: func(rec mapreduce.Record, emit mapreduce.Emit) error {
			line, ok := rec.(string)
			if !ok {
				return fmt.Errorf("HCT: record %T is not a string", rec)
			}
			for _, w := range strings.Fields(line) {
				emit("len:"+strconv.Itoa(len(w)), int64(1))
				emit("first:"+w[:1], int64(1))
			}
			return nil
		},
		Combine:     sumValues,
		Reduce:      sumValues,
		Commutative: true,
	}
}

// Matrix is the word co-occurrence matrix computation of §7.1
// (data-intensive): it counts ordered-normalized word pairs co-occurring
// within a distance of two positions on a line.
func Matrix(partitions int) *mapreduce.Job {
	return &mapreduce.Job{
		Name:       "Matrix",
		Partitions: partitions,
		Map: func(rec mapreduce.Record, emit mapreduce.Emit) error {
			line, ok := rec.(string)
			if !ok {
				return fmt.Errorf("Matrix: record %T is not a string", rec)
			}
			words := strings.Fields(line)
			for i := range words {
				for j := i + 1; j < len(words) && j <= i+2; j++ {
					a, b := words[i], words[j]
					if a > b {
						a, b = b, a
					}
					emit(a+"|"+b, int64(1))
				}
			}
			return nil
		},
		Combine:     sumValues,
		Reduce:      sumValues,
		Commutative: true,
	}
}

// SubStr is the frequently-occurring substring computation of §7.1
// (data-intensive): it counts all substrings of length 4 of every word.
func SubStr(partitions int) *mapreduce.Job {
	const n = 4
	return &mapreduce.Job{
		Name:       "subStr",
		Partitions: partitions,
		Map: func(rec mapreduce.Record, emit mapreduce.Emit) error {
			line, ok := rec.(string)
			if !ok {
				return fmt.Errorf("subStr: record %T is not a string", rec)
			}
			for _, w := range strings.Fields(line) {
				for i := 0; i+n <= len(w); i++ {
					emit(w[i:i+n], int64(1))
				}
			}
			return nil
		},
		Combine:     sumValues,
		Reduce:      sumValues,
		Commutative: true,
	}
}

// KMeans is the K-Means clustering micro-benchmark of §7.1
// (compute-intensive): one Lloyd iteration per job over fixed seed
// centroids; the map side performs the k×dim distance computations and
// the reduce side averages the per-centroid accumulators.
func KMeans(partitions, k, dim int, seed int64) *mapreduce.Job {
	centroids := randomPoints(seed, k, dim)
	return &mapreduce.Job{
		Name:       "K-Means",
		Partitions: partitions,
		Map: func(rec mapreduce.Record, emit mapreduce.Emit) error {
			pt, ok := rec.([]float64)
			if !ok {
				return fmt.Errorf("K-Means: record %T is not a point", rec)
			}
			best, bestD := 0, sqDist(pt, centroids[0])
			for c := 1; c < len(centroids); c++ {
				if d := sqDist(pt, centroids[c]); d < bestD {
					best, bestD = c, d
				}
			}
			sum := make([]float64, len(pt))
			copy(sum, pt)
			emit("c"+strconv.Itoa(best), &CentroidAcc{Sum: sum, Count: 1})
			return nil
		},
		Combine: func(_ string, values []mapreduce.Value) mapreduce.Value {
			acc := values[0].(*CentroidAcc)
			for _, v := range values[1:] {
				acc = acc.Add(v.(*CentroidAcc))
			}
			return acc
		},
		Reduce: func(_ string, values []mapreduce.Value) mapreduce.Value {
			acc := values[0].(*CentroidAcc)
			for _, v := range values[1:] {
				acc = acc.Add(v.(*CentroidAcc))
			}
			return acc.Mean()
		},
		Commutative: true,
	}
}

// KNN is the K-nearest-neighbors micro-benchmark of §7.1
// (compute-intensive): for each of a fixed set of query points it finds
// the k nearest data points in the window.
func KNN(partitions, k int, queries [][]float64) *mapreduce.Job {
	return &mapreduce.Job{
		Name:       "KNN",
		Partitions: partitions,
		Map: func(rec mapreduce.Record, emit mapreduce.Emit) error {
			pt, ok := rec.([]float64)
			if !ok {
				return fmt.Errorf("KNN: record %T is not a point", rec)
			}
			id := pointID(pt)
			for q, query := range queries {
				d := sqDist(pt, query)
				emit("q"+strconv.Itoa(q), &Neighbors{K: k, List: []Neighbor{{Dist: d, ID: id}}})
			}
			return nil
		},
		Combine: func(_ string, values []mapreduce.Value) mapreduce.Value {
			acc := values[0].(*Neighbors)
			for _, v := range values[1:] {
				acc = acc.Merge(v.(*Neighbors))
			}
			return acc
		},
		Reduce: func(_ string, values []mapreduce.Value) mapreduce.Value {
			acc := values[0].(*Neighbors)
			for _, v := range values[1:] {
				acc = acc.Merge(v.(*Neighbors))
			}
			return acc
		},
		Commutative: true,
	}
}

// sqDist returns the squared Euclidean distance.
func sqDist(a, b []float64) float64 {
	var d float64
	for i := range a {
		diff := a[i] - b[i]
		d += diff * diff
	}
	return d
}

// pointID derives a stable identity from a point's coordinates.
func pointID(pt []float64) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range pt {
		bits := uint64(int64(v * (1 << 30)))
		for i := 0; i < 8; i++ {
			h ^= bits & 0xff
			h *= 1099511628211
			bits >>= 8
		}
	}
	return h
}

// randomPoints draws n fixed points from the unit cube.
func randomPoints(seed int64, n, dim int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		pt := make([]float64, dim)
		for d := range pt {
			pt[d] = rng.Float64()
		}
		out[i] = pt
	}
	return out
}

// SortedKeys returns a job output's keys in sorted order (test helper and
// example-friendly formatting).
func SortedKeys(out mapreduce.Output) []string {
	keys := make([]string, 0, len(out))
	for k := range out {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
