package dist

import (
	"strings"
	"testing"
	"time"

	"slider/internal/metrics"
	"slider/internal/persist"
)

// TestTracePropagation runs a real batch over TCP with tracing on at
// both ends and checks the slide's span tree now crosses the process
// boundary: the pool's rpc attempt span contains the worker's stitched
// batch tree (decode, map+combine, encode), every stitched span lies
// inside the attempt's own bounds, and the worker retained its own copy
// keyed by the slide ID.
func TestTracePropagation(t *testing.T) {
	workers, addrs, _ := newCluster(t, 1)
	workers[0].SetObs(NewWorkerObs())

	tracer := metrics.NewTracer(8)
	pool, err := NewPoolConfig("dist-wordcount", addrs, PoolConfig{Tracer: tracer, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	slide := tracer.StartSlide(41, "slide 41")
	tracer.SetActive(slide)
	if _, err := pool.RunMap(testJob(), textSplits(0, 3)); err != nil {
		t.Fatal(err)
	}
	tracer.SetActive(nil)
	slide.End()

	text := tracer.Find(41).Format()
	for _, want := range []string{"rpc " + addrs[0], "w0 dist-wordcount", "split 0", "decode", "map+combine", "encode"} {
		if !strings.Contains(text, want) {
			t.Fatalf("slide trace missing %q:\n%s", want, text)
		}
	}

	// Worker kept its own ring entry under the same slide ID, annotated
	// with the propagated trace context.
	wtrace := workers[0].Obs().Tracer.Find(41)
	if wtrace == nil {
		t.Fatal("worker ring has no span for slide 41")
	}
	if !strings.Contains(wtrace.Format(), "trace ") {
		t.Fatalf("worker span missing trace-context event:\n%s", wtrace.Format())
	}
}

// TestTracePropagationRetry kills a worker mid-batch and checks both the
// failed and the successful attempt appear as separate rpc spans.
func TestTracePropagationRetry(t *testing.T) {
	workers, addrs, _ := newCluster(t, 2)
	workers[0].Faults().InjectCrash()

	tracer := metrics.NewTracer(8)
	tracer.SetActive(tracer.StartSlide(1, "slide 1"))
	pool, err := NewPoolConfig("dist-wordcount", addrs, PoolConfig{Tracer: tracer, Seed: 1,
		BackoffBase: time.Millisecond, BreakerCooldown: 5 * time.Millisecond, HealthInterval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	if _, err := pool.RunMap(testJob(), textSplits(0, 4)); err != nil {
		t.Fatal(err)
	}
	slide := tracer.Active()
	tracer.SetActive(nil)
	slide.End()

	text := slide.Format()
	if strings.Count(text, "rpc ") < 2 {
		t.Fatalf("expected at least two rpc attempt spans (failure + retry):\n%s", text)
	}
	if !strings.Contains(text, "failed after") {
		t.Fatalf("failed attempt not annotated:\n%s", text)
	}
}

// TestStatsRPCFederation pulls worker stats through the real RPC and
// checks the pool's merged cluster view exactly matches what each worker
// reports about itself.
func TestStatsRPCFederation(t *testing.T) {
	workers, addrs, _ := newCluster(t, 3)
	for _, w := range workers {
		w.SetObs(NewWorkerObs())
	}
	pool, err := NewPoolConfig("dist-wordcount", addrs, PoolConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	for round := 0; round < 3; round++ {
		if _, err := pool.RunMap(testJob(), textSplits(round*6, round*6+6)); err != nil {
			t.Fatal(err)
		}
	}
	pool.PollStats()

	cs := pool.ClusterStats()
	if len(cs.Workers) != 3 {
		t.Fatalf("federated %d workers, want 3", len(cs.Workers))
	}
	merged := cs.Merged()

	var wantServed int64
	var wantBatch metrics.HistogramSnapshot
	for i, w := range workers {
		direct := w.StatsSnapshot()
		wantServed += direct.Served
		b, ok := direct.Hist("batch")
		if !ok {
			t.Fatalf("worker %d has no batch histogram", i)
		}
		wantBatch = wantBatch.Add(b)
	}
	if merged.Served != wantServed || merged.Served != 18 {
		t.Fatalf("merged served = %d, want %d (and 18 total splits ran)", merged.Served, wantServed)
	}
	got, ok := merged.Hist("batch")
	if !ok {
		t.Fatal("merged stats missing batch histogram")
	}
	if got != wantBatch {
		t.Fatalf("merged batch histogram differs from sum of per-worker snapshots:\n got %+v\nwant %+v", got, wantBatch)
	}
	for _, name := range []string{"decode", "map", "encode"} {
		h, ok := merged.Hist(name)
		if !ok || h.Count == 0 {
			t.Fatalf("merged %s histogram missing or empty (ok=%v count=%d)", name, ok, h.Count)
		}
	}
	if !strings.Contains(cs.String(), "3 workers") {
		t.Fatalf("cluster string = %q", cs.String())
	}
}

// TestStatsLoopPolls checks the background poller populates the cache
// without an explicit PollStats call.
func TestStatsLoopPolls(t *testing.T) {
	workers, addrs, _ := newCluster(t, 1)
	workers[0].SetObs(NewWorkerObs())
	pool, err := NewPoolConfig("dist-wordcount", addrs, PoolConfig{Seed: 1, StatsInterval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if _, err := pool.RunMap(testJob(), textSplits(0, 2)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if cs := pool.ClusterStats(); len(cs.Workers) == 1 && cs.Workers[0].Served == 2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats loop never federated the worker: %+v", pool.ClusterStats())
		}
		time.Sleep(time.Millisecond)
	}
}

// encodeSplitsForReq builds a traced MapRequest directly (no network) so
// allocation counts are deterministic.
func encodeSplitsForReq(t testing.TB, traced bool) MapRequest {
	t.Helper()
	req := MapRequest{JobName: "dist-wordcount", Trace: traced, TraceID: 7, SlideID: 3, ParentSpan: "rpc x"}
	for _, s := range textSplits(0, 2) {
		frame, err := persist.EncodeSplit(s)
		if err != nil {
			t.Fatal(err)
		}
		req.SplitFrames = append(req.SplitFrames, frame)
	}
	return req
}

// TestWorkerNoObsZeroAllocDelta is the satellite guarantee: with no
// observability bundle installed, a traced request allocates exactly as
// much as an untraced one on the RunMap hot path — the instrumentation
// is pure nil checks.
func TestWorkerNoObsZeroAllocDelta(t *testing.T) {
	if raceEnabled {
		t.Skip("AllocsPerRun is nondeterministic under the race detector")
	}
	workers, _, _ := newCluster(t, 1)
	svc := &workerService{w: workers[0]}
	run := func(req MapRequest) func() {
		return func() {
			var resp MapResponse
			if err := svc.RunMap(req, &resp); err != nil {
				t.Fatal(err)
			}
		}
	}
	base := testing.AllocsPerRun(50, run(encodeSplitsForReq(t, false)))
	traced := testing.AllocsPerRun(50, run(encodeSplitsForReq(t, true)))
	if delta := traced - base; delta != 0 {
		t.Fatalf("traced request allocates %.1f more than untraced with no obs installed (base %.1f)", delta, base)
	}
	// Sanity: with a bundle installed the same traced request must
	// actually record spans (the zero above is the no-op path, not a
	// dead one).
	workers[0].SetObs(NewWorkerObs())
	var resp MapResponse
	if err := svc.RunMap(encodeSplitsForReq(t, true), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Spans) == 0 {
		t.Fatal("obs-enabled worker returned no spans for a traced request")
	}
}

// BenchmarkWorkerRunMapNoObs measures the RPC hot path with tracing
// requested but no bundle installed (the -obs-addr-unset deployment);
// compare against BenchmarkWorkerRunMapObs to see the tracing cost.
func BenchmarkWorkerRunMapNoObs(b *testing.B) {
	benchmarkWorkerRunMap(b, false)
}

// BenchmarkWorkerRunMapObs is the same path with a bundle installed and
// spans recorded.
func BenchmarkWorkerRunMapObs(b *testing.B) {
	benchmarkWorkerRunMap(b, true)
}

func benchmarkWorkerRunMap(b *testing.B, obs bool) {
	reg := &Registry{}
	if err := reg.Register("dist-wordcount", testJob); err != nil {
		b.Fatal(err)
	}
	w, err := NewWorker("bench", "127.0.0.1:0", reg)
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	if obs {
		w.SetObs(NewWorkerObs())
	}
	svc := &workerService{w: w}
	req := encodeSplitsForReq(b, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var resp MapResponse
		if err := svc.RunMap(req, &resp); err != nil {
			b.Fatal(err)
		}
	}
}
