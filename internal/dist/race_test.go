//go:build race

package dist

// raceEnabled reports whether the race detector is on; allocation-count
// assertions are skipped under it (the detector's shadow allocations
// make testing.AllocsPerRun nondeterministic).
const raceEnabled = true
