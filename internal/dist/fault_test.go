package dist

import (
	"errors"
	"testing"
	"time"

	"slider/internal/mapreduce"
	"slider/internal/memo"
	"slider/internal/metrics"
	"slider/internal/sliderrt"
)

// blockyCluster starts n workers serving a job whose map blocks on gate
// whenever a record equals "block"; every handler entering the blocked
// path signals entered first. This gives tests deterministic control
// over where and for how long a batch is stuck.
func blockyCluster(t *testing.T, n int, gate chan struct{}, entered chan struct{}) ([]*Worker, []string) {
	t.Helper()
	reg := &Registry{}
	job := func() *mapreduce.Job {
		sum := func(_ string, values []mapreduce.Value) mapreduce.Value {
			var total int64
			for _, v := range values {
				total += v.(int64)
			}
			return total
		}
		return &mapreduce.Job{
			Name:       "blocky",
			Partitions: 1,
			Map: func(rec mapreduce.Record, emit mapreduce.Emit) error {
				if rec.(string) == "block" {
					entered <- struct{}{}
					<-gate
				}
				emit(rec.(string), int64(1))
				return nil
			},
			Combine:     sum,
			Reduce:      sum,
			Commutative: true,
		}
	}
	if err := reg.Register("blocky", job); err != nil {
		t.Fatal(err)
	}
	var workers []*Worker
	var addrs []string
	for i := 0; i < n; i++ {
		w, err := NewWorker("b"+string(rune('0'+i)), "127.0.0.1:0", reg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { w.Close() })
		workers = append(workers, w)
		addrs = append(addrs, w.Addr())
	}
	return workers, addrs
}

func blockyJob() *mapreduce.Job {
	j := testJob()
	j.Name = "blocky"
	j.Partitions = 1
	return j
}

func blockySplits() []mapreduce.Split {
	return []mapreduce.Split{
		{ID: "ok", Records: []mapreduce.Record{"alpha beta"}},
		{ID: "stuck", Records: []mapreduce.Record{"block"}},
	}
}

// TestRedialsGatedByBackoff is the reconnect-stampede regression test: a
// worker that is dead at pool construction must not be redialled on
// every batch. Revival attempts are gated by the worker's breaker and
// jittered backoff, so a burst of batches against a dead host performs
// at most a couple of redials.
func TestRedialsGatedByBackoff(t *testing.T) {
	workers, addrs, _ := newCluster(t, 2)
	workers[1].Kill()
	pool, err := NewPoolConfig("dist-wordcount", addrs, PoolConfig{
		BackoffBase:    250 * time.Millisecond,
		BackoffMax:     2 * time.Second,
		HealthInterval: -1, // isolate on-demand revival
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	for i := 0; i < 20; i++ {
		if _, err := pool.RunMap(testJob(), textSplits(i, i+2)); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	// 20 batches in well under one backoff window: the dead host saw at
	// most the construction-time dial plus one gated redial, not one per
	// batch.
	if redials := pool.FaultStats().Redials; redials > 2 {
		t.Fatalf("dead worker was redialled %d times across 20 batches (stampede)", redials)
	}
}

// TestMidBatchWorkerLossSalvagesCompletedSplits kills the workers one by
// one while a batch is in flight. The pool must give up with an
// *IncompleteError that carries exactly the splits that completed —
// counted once each, never duplicated by the in-flight batches that died
// with their workers.
func TestMidBatchWorkerLossSalvagesCompletedSplits(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	entered := make(chan struct{}, 8)
	workers, addrs := blockyCluster(t, 2, gate, entered)
	pool, err := NewPoolConfig("blocky", addrs, PoolConfig{
		TaskTimeout:    -1, // the kill, not a deadline, fails the call
		BackoffBase:    2 * time.Millisecond,
		BackoffMax:     30 * time.Millisecond,
		HealthInterval: -1,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	type runResult struct {
		results []mapreduce.MapResult
		err     error
	}
	doneC := make(chan runResult, 1)
	go func() {
		results, err := pool.RunMap(blockyJob(), blockySplits())
		doneC <- runResult{results, err}
	}()

	// Round 1: split "ok" completes on worker 0; split "stuck" blocks on
	// worker 1. Kill worker 1 mid-batch.
	<-entered
	workers[1].Kill()
	// Round 2: "stuck" is re-queued onto worker 0, and blocks again. Kill
	// worker 0 mid-batch too.
	<-entered
	workers[0].Kill()

	var res runResult
	select {
	case res = <-doneC:
	case <-time.After(10 * time.Second):
		t.Fatal("RunMap did not give up after losing every worker")
	}
	if res.err == nil {
		t.Fatal("RunMap succeeded with every worker dead")
	}
	if !errors.Is(res.err, ErrNoWorkers) {
		t.Fatalf("err = %v, want ErrNoWorkers", res.err)
	}
	var inc *IncompleteError
	if !errors.As(res.err, &inc) {
		t.Fatalf("err %T does not carry partial results", res.err)
	}
	results, done := inc.Completed()
	if len(done) != 2 || !done[0] || done[1] {
		t.Fatalf("done = %v, want exactly the first split salvaged", done)
	}
	if results[0].SplitID != "ok" || results[0].Records != 1 {
		t.Fatalf("salvaged result = %+v", results[0])
	}
	if got := pool.Retries(); got < 2 {
		t.Fatalf("retries = %d, want one per mid-batch kill", got)
	}
}

// TestHedgeRescuesSlowWorker arms a delay on the worker holding the only
// pending split; the pool must hedge the split onto the idle worker and
// take its (fast) result instead of waiting out the delay.
func TestHedgeRescuesSlowWorker(t *testing.T) {
	workers, addrs, _ := newCluster(t, 2)
	pool, err := NewPoolConfig("dist-wordcount", addrs, PoolConfig{
		TaskTimeout: 5 * time.Second, // hedge, not the deadline, must win
		Hedge:       true,
		HedgeMin:    5 * time.Millisecond,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	// Warm-up: two splits land one per worker (latency samples, and the
	// round-robin cursor returns to worker 0).
	if _, err := pool.RunMap(testJob(), textSplits(0, 2)); err != nil {
		t.Fatal(err)
	}
	const delay = time.Second
	workers[0].Faults().InjectDelay(delay)
	start := time.Now()
	results, err := pool.RunMap(testJob(), textSplits(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if len(results) != 1 || results[0].SplitID != "d2" {
		t.Fatalf("results = %+v", results)
	}
	st := pool.FaultStats()
	if st.HedgesLaunched == 0 {
		t.Fatal("no hedge launched against the slow worker")
	}
	if st.HedgesWon == 0 {
		t.Fatal("hedge launched but its result was not used")
	}
	if elapsed >= delay/2 {
		t.Fatalf("batch took %v: the hedge did not cut the delay short", elapsed)
	}
}

// TestRetryBudgetExhausted drives a split that can never finish (its map
// blocks forever) against a small retry budget: every attempt dies at
// the task deadline, and once the budget is spent the pool reports
// ErrRetryBudget — workers are still alive, so this is flapping, not
// total loss — while salvaging the split that did complete.
func TestRetryBudgetExhausted(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	entered := make(chan struct{}, 8)
	_, addrs := blockyCluster(t, 2, gate, entered)
	pool, err := NewPoolConfig("blocky", addrs, PoolConfig{
		TaskTimeout:    30 * time.Millisecond,
		RetryBudget:    2,
		BackoffBase:    40 * time.Millisecond, // between-round sleep covers the redial backoff
		BackoffMax:     200 * time.Millisecond,
		HealthInterval: 5 * time.Millisecond, // revives deadline-failed (but alive) workers
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	_, err = pool.RunMap(blockyJob(), blockySplits())
	if err == nil {
		t.Fatal("RunMap succeeded although one split can never finish")
	}
	if !errors.Is(err, ErrRetryBudget) && !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("err = %v, want a budget/no-workers give-up", err)
	}
	var inc *IncompleteError
	if !errors.As(err, &inc) {
		t.Fatalf("err %T does not carry partial results", err)
	}
	if _, done := inc.Completed(); !done[0] || done[1] {
		t.Fatalf("done = %v, want the completable split salvaged", done)
	}
	st := pool.FaultStats()
	if st.DeadlinesExpired == 0 {
		t.Fatal("no task deadline expired")
	}
	if st.BudgetExhausted == 0 {
		t.Fatal("budget exhaustion not recorded")
	}
}

// TestCorruptResponseRetriedElsewhere: a corrupted payload frame must be
// caught by the checksummed codec, counted, and the affected splits
// re-executed on another worker — the batch still succeeds and the
// results match a local execution.
func TestCorruptResponseRetriedElsewhere(t *testing.T) {
	workers, addrs, _ := newCluster(t, 2)
	pool, err := NewPoolConfig("dist-wordcount", addrs, PoolConfig{
		BackoffBase: 2 * time.Millisecond,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	workers[0].Faults().InjectCorrupt()
	workers[1].Faults().InjectCorrupt()
	splits := textSplits(0, 6)
	remote, err := pool.RunMap(testJob(), splits)
	if err != nil {
		t.Fatal(err)
	}
	local, err := mapreduce.Executor{}.RunMap(testJob(), splits)
	if err != nil {
		t.Fatal(err)
	}
	for i := range remote {
		if remote[i].SplitID != local[i].SplitID {
			t.Fatalf("result %d out of order: %s", i, remote[i].SplitID)
		}
		for p := range remote[i].Parts {
			if mapreduce.FingerprintPayload(remote[i].Parts[p]) !=
				mapreduce.FingerprintPayload(local[i].Parts[p]) {
				t.Fatalf("payload %d/%d differs from local execution", i, p)
			}
		}
	}
	if st := pool.FaultStats(); st.CorruptFrames == 0 {
		t.Fatal("corruption went undetected")
	}
}

// TestWorkerRevivesThroughBreaker walks one worker through the full
// breaker cycle: failures open it, the background health checker probes
// it half-open, and a successful probe closes it again once the worker
// is restarted on the same address.
func TestWorkerRevivesThroughBreaker(t *testing.T) {
	workers, addrs, _ := newCluster(t, 2)
	pool, err := NewPoolConfig("dist-wordcount", addrs, PoolConfig{
		BackoffBase:      2 * time.Millisecond,
		BreakerThreshold: 1, // first failure opens the breaker
		BreakerCooldown:  5 * time.Millisecond,
		HealthInterval:   5 * time.Millisecond,
		Seed:             1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	workers[1].Kill()
	if _, err := pool.RunMap(testJob(), textSplits(0, 4)); err != nil {
		t.Fatalf("batch after kill: %v", err)
	}
	if pool.LiveWorkers() != 1 {
		t.Fatalf("live = %d after kill", pool.LiveWorkers())
	}

	reg := &Registry{}
	if err := reg.Register("dist-wordcount", testJob); err != nil {
		t.Fatal(err)
	}
	var revived *Worker
	deadline := time.Now().Add(5 * time.Second)
	for revived == nil {
		if revived, err = NewWorker("w1b", addrs[1], reg); err != nil {
			if time.Now().After(deadline) {
				t.Fatalf("could not rebind %s: %v", addrs[1], err)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	t.Cleanup(func() { revived.Close() })

	for pool.LiveWorkers() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("health checker never revived the worker; faults: %s", pool.FaultStats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := pool.FaultStats()
	if st.BreakerOpened == 0 || st.BreakerHalfOpen == 0 || st.BreakerClosed == 0 {
		t.Fatalf("breaker did not cycle open→half-open→closed: %s", st)
	}
	if _, err := pool.RunMap(testJob(), textSplits(4, 8)); err != nil {
		t.Fatalf("batch after revival: %v", err)
	}
	if revived.Served() == 0 {
		t.Fatal("revived worker was never assigned work")
	}
}

// TestRuntimeLocalFallback is the top rung of the degradation ladder: a
// slide whose remote map phase loses every worker must still succeed by
// re-executing the missing splits in-process, and the result must match
// recomputation from scratch.
func TestRuntimeLocalFallback(t *testing.T) {
	workers, addrs, _ := newCluster(t, 2)
	rec := &metrics.FaultRecorder{}
	pool, err := NewPoolConfig("dist-wordcount", addrs, PoolConfig{
		BackoffBase:    2 * time.Millisecond,
		BackoffMax:     30 * time.Millisecond,
		HealthInterval: -1,
		Faults:         rec,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	memoCfg := memo.DefaultConfig()
	memoCfg.Nodes = 4
	rt, err := sliderrt.New(testJob(), sliderrt.Config{
		Mode: sliderrt.Fixed, BucketSplits: 2, WindowBuckets: 4,
		Memo:      memoCfg,
		MapRunner: pool,
		Faults:    rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	window := textSplits(0, 8)
	if _, err := rt.Initial(window); err != nil {
		t.Fatal(err)
	}
	for _, w := range workers {
		w.Kill()
	}
	add := textSplits(8, 10)
	res, err := rt.Advance(2, add)
	if err != nil {
		t.Fatalf("advance with every worker dead: %v", err)
	}
	window = append(window[2:], add...)
	want, err := mapreduce.RunScratch(testJob(), window, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != len(want) {
		t.Fatalf("output sizes differ: %d vs %d", len(res.Output), len(want))
	}
	for k, v := range want {
		if res.Output[k].(int64) != v.(int64) {
			t.Fatalf("key %q: %v vs %v", k, res.Output[k], v)
		}
	}
	if st := rt.FaultStats(); st.LocalFallbacks == 0 {
		t.Fatalf("degraded slide not recorded: %s", st)
	}
}

// TestRuntimeLocalFallbackDisabled: with the fallback rung switched off,
// losing every worker must surface ErrNoWorkers to the caller.
func TestRuntimeLocalFallbackDisabled(t *testing.T) {
	workers, addrs, _ := newCluster(t, 2)
	pool, err := NewPoolConfig("dist-wordcount", addrs, PoolConfig{
		BackoffBase:    2 * time.Millisecond,
		BackoffMax:     30 * time.Millisecond,
		HealthInterval: -1,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	memoCfg := memo.DefaultConfig()
	memoCfg.Nodes = 4
	rt, err := sliderrt.New(testJob(), sliderrt.Config{
		Mode: sliderrt.Fixed, BucketSplits: 2, WindowBuckets: 4,
		Memo:                 memoCfg,
		MapRunner:            pool,
		DisableLocalFallback: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Initial(textSplits(0, 8)); err != nil {
		t.Fatal(err)
	}
	for _, w := range workers {
		w.Kill()
	}
	if _, err := rt.Advance(2, textSplits(8, 10)); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("err = %v, want ErrNoWorkers", err)
	}
}
