package dist

import (
	"slider/internal/metrics"
)

// This file is the worker-side observability bundle. A Worker with no
// bundle installed (the default, and what running slider-worker without
// -obs-addr gets) records nothing: the batch handler's instrumentation is
// a nil pointer load plus nil-safe span calls, with zero allocations —
// the property TestWorkerNoObsZeroAllocDelta pins down. Installing a
// bundle (Worker.SetObs) turns on the per-batch span ring that trace
// propagation exports and the histograms the Stats RPC federates.

// DefaultWorkerTraceCapacity is the worker batch-span ring size.
const DefaultWorkerTraceCapacity = 128

// WorkerObs bundles a worker's observability state: a bounded span ring
// for batch traces plus the fault counters and per-phase latency
// histograms the Stats RPC exports for federation.
type WorkerObs struct {
	// Tracer retains the last batches' span trees (decode, map+combine,
	// encode per split). Batch spans are keyed by the originating slide ID.
	Tracer *metrics.Tracer
	// Faults records worker-side fault events (a request frame failing
	// its checksum counts as a corrupt frame).
	Faults *metrics.FaultRecorder
	// Batch, Decode, Map, Encode are per-phase latency histograms; Map
	// includes the fused map-side combine. Mergeable with any other
	// metrics.Histogram, which is what the pool's federation loop does.
	Batch  *metrics.Histogram
	Decode *metrics.Histogram
	Map    *metrics.Histogram
	Encode *metrics.Histogram
}

// NewWorkerObs returns a ready-to-install bundle.
func NewWorkerObs() *WorkerObs {
	return &WorkerObs{
		Tracer: metrics.NewTracer(DefaultWorkerTraceCapacity),
		Faults: &metrics.FaultRecorder{},
		Batch:  &metrics.Histogram{},
		Decode: &metrics.Histogram{},
		Map:    &metrics.Histogram{},
		Encode: &metrics.Histogram{},
	}
}

// histSnapshots exports the bundle's histograms in their stable wire
// order ("batch", "decode", "map", "encode").
func (o *WorkerObs) histSnapshots() []metrics.NamedSnapshot {
	if o == nil {
		return nil
	}
	return []metrics.NamedSnapshot{
		{Name: "batch", Snap: o.Batch.Snapshot()},
		{Name: "decode", Snap: o.Decode.Snapshot()},
		{Name: "map", Snap: o.Map.Snapshot()},
		{Name: "encode", Snap: o.Encode.Snapshot()},
	}
}

// SetObs installs (or, with nil, removes) the worker's observability
// bundle. Safe to call while batches run; in-flight batches keep the
// bundle they loaded at entry.
func (w *Worker) SetObs(o *WorkerObs) { w.obs.Store(o) }

// Obs returns the installed observability bundle, or nil.
func (w *Worker) Obs() *WorkerObs { return w.obs.Load() }

// StatsSnapshot exports the worker's federation snapshot: identity, work
// count, fault counters, and per-phase histograms — the Stats RPC's
// payload, also usable in-process.
func (w *Worker) StatsSnapshot() metrics.NodeStats {
	out := metrics.NodeStats{Node: w.name, Served: w.Served()}
	if o := w.obs.Load(); o != nil {
		out.Faults = o.Faults.Snapshot()
		out.Hists = o.histSnapshots()
	}
	return out
}

// StatsArgs is the (empty) Stats RPC request.
type StatsArgs struct{}

// StatsReply is one worker's federation snapshot in wire form.
type StatsReply struct {
	// Worker identifies the responding worker.
	Worker string
	// Served counts map tasks executed since the worker started.
	Served int64
	// Faults is the worker's fault-counter snapshot.
	Faults metrics.FaultStats
	// Hists holds the worker's per-phase latency histograms
	// ("batch", "decode", "map", "encode"); empty with no obs installed.
	Hists []metrics.NamedSnapshot
}

// Stats answers the metrics-federation poll with the worker's current
// snapshot.
func (s *workerService) Stats(_ StatsArgs, reply *StatsReply) error {
	snap := s.w.StatsSnapshot()
	reply.Worker = snap.Node
	reply.Served = snap.Served
	reply.Faults = snap.Faults
	reply.Hists = snap.Hists
	return nil
}
