package dist

import (
	"errors"
	"fmt"
	"net/rpc"
	"sync"
	"time"

	"slider/internal/mapreduce"
	"slider/internal/persist"
)

// ErrNoWorkers is returned when every worker is unreachable.
var ErrNoWorkers = errors.New("dist: no live workers")

// Pool dispatches map tasks across a set of workers and implements the
// runtime's MapRunner hook (sliderrt.Config.MapRunner). Splits are
// spread round-robin; when a worker fails mid-batch its splits are
// re-executed on the survivors (map tasks are deterministic and
// side-effect-free, so re-execution is always safe — the MapReduce fault
// model). A failed worker is retried on later batches, so transient
// outages heal.
type Pool struct {
	jobName string

	mu      sync.Mutex
	workers []*poolWorker
	next    int
	// Retries counts splits that were re-executed after a worker error.
	retries int64
}

type poolWorker struct {
	addr   string
	client *rpc.Client
	down   bool
}

// NewPool connects to the given worker addresses for the named job. At
// least one worker must be reachable; unreachable ones are marked down
// and retried lazily.
func NewPool(jobName string, addrs []string) (*Pool, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("dist: pool needs at least one worker address")
	}
	p := &Pool{jobName: jobName}
	live := 0
	for _, addr := range addrs {
		w := &poolWorker{addr: addr}
		if client, err := rpc.Dial("tcp", addr); err == nil {
			w.client = client
			live++
		} else {
			w.down = true
		}
		p.workers = append(p.workers, w)
	}
	if live == 0 {
		p.Close()
		return nil, ErrNoWorkers
	}
	return p, nil
}

// Close releases all connections.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, w := range p.workers {
		if w.client != nil {
			w.client.Close()
			w.client = nil
		}
		w.down = true
	}
}

// Retries reports how many splits were re-executed after worker
// failures.
func (p *Pool) Retries() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.retries
}

// LiveWorkers reports how many workers are currently considered up.
func (p *Pool) LiveWorkers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, w := range p.workers {
		if !w.down {
			n++
		}
	}
	return n
}

// pick returns the next live worker, redialing down ones lazily.
func (p *Pool) pick() (*poolWorker, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for tries := 0; tries < len(p.workers); tries++ {
		w := p.workers[p.next%len(p.workers)]
		p.next++
		if w.down {
			client, err := rpc.Dial("tcp", w.addr)
			if err != nil {
				continue
			}
			w.client = client
			w.down = false
		}
		return w, nil
	}
	return nil, ErrNoWorkers
}

// markDown flags a worker after an RPC failure.
func (p *Pool) markDown(w *poolWorker) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if w.client != nil {
		w.client.Close()
		w.client = nil
	}
	w.down = true
}

// RunMap implements mapreduce.MapRunner: it executes the splits on the
// worker pool and returns results in split order. Each round assigns
// every unfinished split round-robin to a live worker and issues one
// batched RPC per worker, in parallel; a failed worker's whole batch is
// simply left unfinished for the next round on the survivors.
func (p *Pool) RunMap(job *mapreduce.Job, splits []mapreduce.Split) ([]mapreduce.MapResult, error) {
	if job.Name != p.jobName {
		return nil, fmt.Errorf("dist: pool serves job %q, got %q", p.jobName, job.Name)
	}
	frames := make([][]byte, len(splits))
	for i := range splits {
		frame, err := persist.Encode(splits[i])
		if err != nil {
			return nil, err
		}
		frames[i] = frame
	}
	results := make([]mapreduce.MapResult, len(splits))
	done := make([]bool, len(splits))
	remaining := len(splits)
	for attempt := 0; remaining > 0; attempt++ {
		if attempt > 2*len(p.workers)+2 {
			return nil, fmt.Errorf("dist: %d split(s) unrunnable after %d rounds: %w",
				remaining, attempt, ErrNoWorkers)
		}
		// Assign unfinished splits round-robin across live workers.
		batches := make(map[*poolWorker][]int)
		for i := range splits {
			if done[i] {
				continue
			}
			w, err := p.pick()
			if err != nil {
				return nil, err
			}
			batches[w] = append(batches[w], i)
		}
		// One batched RPC per worker, in parallel.
		type outcome struct {
			w       *poolWorker
			indices []int
			resp    MapResponse
			err     error
		}
		outcomes := make(chan outcome, len(batches))
		for w, indices := range batches {
			go func(w *poolWorker, indices []int) {
				req := MapRequest{JobName: p.jobName, SplitFrames: make([][]byte, 0, len(indices))}
				for _, i := range indices {
					req.SplitFrames = append(req.SplitFrames, frames[i])
				}
				var resp MapResponse
				err := w.client.Call("Slider.RunMap", req, &resp)
				outcomes <- outcome{w: w, indices: indices, resp: resp, err: err}
			}(w, indices)
		}
		for range batches {
			o := <-outcomes
			if o.err != nil {
				p.markDown(o.w)
				p.mu.Lock()
				p.retries += int64(len(o.indices))
				p.mu.Unlock()
				continue
			}
			if len(o.resp.Results) != len(o.indices) {
				return nil, fmt.Errorf("dist: worker %s returned %d results for %d splits",
					o.resp.Worker, len(o.resp.Results), len(o.indices))
			}
			for k, i := range o.indices {
				decoded, err := decodeResult(o.resp.Results[k], job.NumPartitions())
				if err != nil {
					return nil, err
				}
				results[i] = decoded
				done[i] = true
				remaining--
			}
		}
	}
	return results, nil
}

// decodeResult converts a wire result back to a mapreduce.MapResult.
func decodeResult(r MapResult, partitions int) (mapreduce.MapResult, error) {
	if len(r.PartFrames) != partitions {
		return mapreduce.MapResult{}, fmt.Errorf(
			"dist: result for split %s has %d partitions, want %d",
			r.SplitID, len(r.PartFrames), partitions)
	}
	out := mapreduce.MapResult{
		SplitID: r.SplitID,
		Parts:   make([]mapreduce.Payload, partitions),
		Cost:    time.Duration(r.CostNs),
		Bytes:   r.Bytes,
		Records: r.Records,
	}
	for i, frame := range r.PartFrames {
		var p mapreduce.Payload
		if err := persist.Decode(frame, &p); err != nil {
			return mapreduce.MapResult{}, err
		}
		out.Parts[i] = p
	}
	return out, nil
}

// Ping probes a worker address directly (diagnostics and tests).
func Ping(addr string) (PingReply, error) {
	client, err := rpc.Dial("tcp", addr)
	if err != nil {
		return PingReply{}, err
	}
	defer client.Close()
	var reply PingReply
	err = client.Call("Slider.Ping", PingArgs{}, &reply)
	return reply, err
}
