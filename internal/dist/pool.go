package dist

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"net/rpc"
	"sort"
	"sync"
	"time"

	"slider/internal/mapreduce"
	"slider/internal/metrics"
	"slider/internal/persist"
)

// ErrNoWorkers is returned when every worker is unreachable.
var ErrNoWorkers = errors.New("dist: no live workers")

// ErrRetryBudget is returned when a batch exhausted its per-batch retry
// budget before every split completed (some workers were still live, so
// the cause is flapping or slowness rather than total loss).
var ErrRetryBudget = errors.New("dist: retry budget exhausted")

// ErrDeadline marks an RPC abandoned at its per-task deadline.
var ErrDeadline = errors.New("dist: task deadline exceeded")

// IncompleteError reports a RunMap batch that could not finish remotely.
// It carries the splits that did complete, so callers can salvage them:
// sliderrt's local fallback re-executes only the missing splits
// in-process. Err is the underlying cause (ErrNoWorkers or
// ErrRetryBudget); errors.Is sees through it.
type IncompleteError struct {
	// Results holds one slot per requested split, in split order; only
	// slots with Done[i] true are valid.
	Results []mapreduce.MapResult
	// Done marks which splits completed before the pool gave up. A split
	// is marked at most once (first result wins), so salvaged results are
	// never double-counted.
	Done []bool
	// Err is the underlying cause.
	Err error
}

func (e *IncompleteError) Error() string {
	done := 0
	for _, d := range e.Done {
		if d {
			done++
		}
	}
	return fmt.Sprintf("dist: batch incomplete (%d/%d splits done): %v", done, len(e.Done), e.Err)
}

func (e *IncompleteError) Unwrap() error { return e.Err }

// Completed returns the salvageable results. It implements the
// partial-result carrier interface sliderrt's local fallback looks for.
func (e *IncompleteError) Completed() ([]mapreduce.MapResult, []bool) { return e.Results, e.Done }

// PoolConfig tunes the pool's fault-tolerance machinery. The zero value
// selects the documented defaults; negative durations/counts disable the
// corresponding mechanism where noted.
type PoolConfig struct {
	// DialTimeout bounds every TCP connect (initial and redial).
	// Default 2s.
	DialTimeout time.Duration
	// TaskTimeout is the per-task deadline for one batched map RPC; an
	// expired call is abandoned, its connection closed, and its splits
	// re-executed elsewhere. Default 30s; negative disables deadlines.
	TaskTimeout time.Duration
	// RetryBudget caps, per RunMap batch, how many split re-executions
	// (failure retries plus hedges) and failed redials may be spent
	// before the pool reports a partial result. Default 4×splits+8;
	// negative removes the cap.
	RetryBudget int
	// BackoffBase and BackoffMax shape the jittered exponential backoff
	// applied to failed workers (redial gating) and between failed
	// rounds. Defaults 25ms and 2s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BreakerThreshold is the number of consecutive failures that opens
	// a worker's circuit breaker. Default 3.
	BreakerThreshold int
	// BreakerCooldown is the initial open→half-open delay; it doubles on
	// every failed probe, capped at BackoffMax. Default 250ms.
	BreakerCooldown time.Duration
	// HealthInterval is the background health-checker period: open
	// workers whose cooldown elapsed are probed with Ping and revived on
	// success. Default 500ms; negative disables the checker (workers
	// still revive on demand, gated by the same breaker state).
	HealthInterval time.Duration
	// StatsInterval is the metrics-federation poll period: the pool pulls
	// every live worker's Stats snapshot (fault counters plus per-phase
	// latency histograms) and caches it for ClusterStats, which /metrics
	// renders with per-worker labels and cluster aggregates. Default 1s;
	// negative disables polling (PollStats still works on demand).
	StatsInterval time.Duration
	// Hedge enables speculative execution: when a round's in-flight work
	// has been outstanding longer than the HedgeQuantile of recent batch
	// latencies (and at least HedgeMin), the still-pending splits are
	// duplicated on an idle live worker. First result wins — safe
	// because map tasks are deterministic and side-effect-free.
	Hedge bool
	// HedgeQuantile is the latency quantile that arms a hedge.
	// Default 0.95.
	HedgeQuantile float64
	// HedgeMin is the floor below which no hedge fires (also the
	// threshold used before any latency samples exist). Default 20ms.
	HedgeMin time.Duration
	// Faults receives the pool's fault-tolerance event counters; nil
	// allocates a private recorder (see Pool.FaultStats). Share one
	// recorder with sliderrt.Config.Faults to see the whole degradation
	// ladder in a single snapshot.
	Faults *metrics.FaultRecorder
	// Tracer, when non-nil, lets the pool attach events (retries, hedges,
	// budget exhaustion) to the currently active slide span
	// (metrics.Tracer.Active), correlating fault handling with the slide
	// that suffered it. Share the runtime's tracer
	// (sliderrt.Config.Obs.Tracer).
	Tracer *metrics.Tracer
	// Seed fixes the backoff-jitter RNG (tests); 0 seeds from the clock.
	Seed int64
}

func (c *PoolConfig) normalize() {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.TaskTimeout == 0 {
		c.TaskTimeout = 30 * time.Second
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 25 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 2 * time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 250 * time.Millisecond
	}
	if c.HealthInterval == 0 {
		c.HealthInterval = 500 * time.Millisecond
	}
	if c.StatsInterval == 0 {
		c.StatsInterval = time.Second
	}
	if c.HedgeQuantile <= 0 || c.HedgeQuantile >= 1 {
		c.HedgeQuantile = 0.95
	}
	if c.HedgeMin <= 0 {
		c.HedgeMin = 20 * time.Millisecond
	}
	if c.Faults == nil {
		c.Faults = &metrics.FaultRecorder{}
	}
	if c.Seed == 0 {
		c.Seed = time.Now().UnixNano()
	}
}

// Pool dispatches map tasks across a set of workers and implements the
// runtime's MapRunner hook (sliderrt.Config.MapRunner). Splits are spread
// round-robin; every RPC carries a per-task deadline; a failed worker's
// splits are re-executed on the survivors (map tasks are deterministic
// and side-effect-free, so re-execution is always safe — the MapReduce
// fault model). Down workers revive through a per-worker circuit breaker
// (closed → open → half-open) with jittered exponential backoff, probed
// on demand and by a background health checker, so a dead host never
// sees a reconnect stampede. Optionally the pool hedges slow rounds by
// duplicating still-pending splits on an idle worker; the first result
// wins. When a batch cannot finish remotely the pool returns an
// *IncompleteError carrying the splits that did complete.
type Pool struct {
	jobName string
	cfg     PoolConfig
	faults  *metrics.FaultRecorder
	tracer  *metrics.Tracer

	mu      sync.Mutex
	workers []*poolWorker
	next    int
	// retries counts splits that were re-queued after a worker error.
	retries int64
	rng     *rand.Rand
	closed  bool

	healthStop chan struct{}
	healthWG   sync.WaitGroup

	// statsMu guards the federation cache (latest Stats snapshot per
	// worker address), written by the stats poller and read by
	// ClusterStats — deliberately separate from mu so a scrape never
	// contends with batch dispatch.
	statsMu sync.Mutex
	stats   map[string]metrics.NodeStats
}

type poolWorker struct {
	addr     string
	client   *rpc.Client
	down     bool
	probing  bool // a revival attempt is in flight
	inflight int  // outstanding batches (hedges target idle workers)
	brk      breaker
}

// NewPool connects to the given worker addresses for the named job with
// the default configuration. At least one worker must be reachable;
// unreachable ones are marked down and revived through the breaker.
func NewPool(jobName string, addrs []string) (*Pool, error) {
	return NewPoolConfig(jobName, addrs, PoolConfig{})
}

// NewPoolConfig is NewPool with explicit fault-tolerance tuning.
func NewPoolConfig(jobName string, addrs []string, cfg PoolConfig) (*Pool, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("dist: pool needs at least one worker address")
	}
	cfg.normalize()
	p := &Pool{
		jobName: jobName,
		cfg:     cfg,
		faults:  cfg.Faults,
		tracer:  cfg.Tracer,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		stats:   make(map[string]metrics.NodeStats),
	}
	live := 0
	now := time.Now()
	for _, addr := range addrs {
		w := &poolWorker{addr: addr}
		if client, err := p.dial(addr); err == nil {
			w.client = client
			live++
		} else {
			w.down = true
			w.brk.onFailure(now, p.brkCfg(), p.rng)
		}
		p.workers = append(p.workers, w)
	}
	if live == 0 {
		p.Close()
		return nil, ErrNoWorkers
	}
	if cfg.HealthInterval > 0 || cfg.StatsInterval > 0 {
		p.healthStop = make(chan struct{})
	}
	if cfg.HealthInterval > 0 {
		p.healthWG.Add(1)
		go p.healthLoop()
	}
	if cfg.StatsInterval > 0 {
		p.healthWG.Add(1)
		go p.statsLoop()
	}
	return p, nil
}

// dial connects to one worker with the configured timeout.
func (p *Pool) dial(addr string) (*rpc.Client, error) {
	conn, err := net.DialTimeout("tcp", addr, p.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	return rpc.NewClient(conn), nil
}

func (p *Pool) brkCfg() breakerConfig {
	return breakerConfig{
		threshold:   p.cfg.BreakerThreshold,
		baseBackoff: p.cfg.BackoffBase,
		maxBackoff:  p.cfg.BackoffMax,
		cooldown:    p.cfg.BreakerCooldown,
	}
}

// Close releases all connections and stops the health checker.
func (p *Pool) Close() {
	p.mu.Lock()
	alreadyClosed := p.closed
	p.closed = true
	for _, w := range p.workers {
		if w.client != nil {
			w.client.Close()
			w.client = nil
		}
		w.down = true
	}
	p.mu.Unlock()
	if !alreadyClosed && p.healthStop != nil {
		close(p.healthStop)
		p.healthWG.Wait()
	}
}

// Retries reports how many splits were re-queued after worker failures.
func (p *Pool) Retries() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.retries
}

// LiveWorkers reports how many workers are currently considered up.
func (p *Pool) LiveWorkers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, w := range p.workers {
		if !w.down {
			n++
		}
	}
	return n
}

// FaultStats snapshots the pool's fault-tolerance event counters.
func (p *Pool) FaultStats() metrics.FaultStats { return p.faults.Snapshot() }

// healthLoop is the background health checker: it periodically probes
// down workers whose breaker cooldown has elapsed with the Ping RPC and
// revives them on success, driving the open → half-open → closed cycle
// even while no batches run.
func (p *Pool) healthLoop() {
	defer p.healthWG.Done()
	ticker := time.NewTicker(p.cfg.HealthInterval)
	defer ticker.Stop()
	for {
		select {
		case <-p.healthStop:
			return
		case <-ticker.C:
			p.probeDown()
		}
	}
}

// statsLoop is the metrics-federation poller: it periodically pulls
// every live worker's Stats snapshot into the ClusterStats cache.
func (p *Pool) statsLoop() {
	defer p.healthWG.Done()
	ticker := time.NewTicker(p.cfg.StatsInterval)
	defer ticker.Stop()
	for {
		select {
		case <-p.healthStop:
			return
		case <-ticker.C:
			p.PollStats()
		}
	}
}

// PollStats pulls a Stats snapshot from every live worker right now and
// caches it for ClusterStats. A worker that fails to answer keeps its
// previous snapshot; stats failures never trip the breaker — liveness is
// the health checker's and the RunMap path's job, and poisoning a worker
// over a monitoring RPC would let observability degrade the work.
func (p *Pool) PollStats() {
	type target struct {
		addr   string
		client *rpc.Client
	}
	var targets []target
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	for _, w := range p.workers {
		if !w.down && w.client != nil {
			targets = append(targets, target{addr: w.addr, client: w.client})
		}
	}
	p.mu.Unlock()
	for _, t := range targets {
		var reply StatsReply
		call := t.client.Go("Slider.Stats", StatsArgs{}, &reply, make(chan *rpc.Call, 1))
		timer := time.NewTimer(p.cfg.DialTimeout)
		select {
		case c := <-call.Done:
			timer.Stop()
			if c.Error != nil {
				continue
			}
		case <-timer.C:
			continue
		}
		p.statsMu.Lock()
		p.stats[t.addr] = metrics.NodeStats{
			Node:   reply.Worker,
			Addr:   t.addr,
			Served: reply.Served,
			Faults: reply.Faults,
			Hists:  reply.Hists,
		}
		p.statsMu.Unlock()
	}
}

// ClusterStats returns the pool's federated view of its workers: the
// latest Stats snapshot per worker address, ordered by address. Fold it
// with Merged() for cluster aggregates.
func (p *Pool) ClusterStats() metrics.ClusterStats {
	p.statsMu.Lock()
	addrs := make([]string, 0, len(p.stats))
	for addr := range p.stats {
		addrs = append(addrs, addr)
	}
	sort.Strings(addrs)
	out := metrics.ClusterStats{Workers: make([]metrics.NodeStats, 0, len(addrs))}
	for _, addr := range addrs {
		out.Workers = append(out.Workers, p.stats[addr])
	}
	p.statsMu.Unlock()
	return out
}

// probeDown pings every down worker the breaker allows and revives the
// responsive ones.
func (p *Pool) probeDown() {
	now := time.Now()
	var cands []*poolWorker
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	for _, w := range p.workers {
		if w.down && !w.probing && w.brk.allow(now) {
			if w.brk.probe() {
				p.faults.BreakerHalfOpen.Add(1)
			}
			w.probing = true
			cands = append(cands, w)
		}
	}
	p.mu.Unlock()
	for _, w := range cands {
		_, err := pingAddr(w.addr, p.cfg.DialTimeout)
		var client *rpc.Client
		if err == nil {
			client, err = p.dial(w.addr)
		}
		p.settleProbe(w, client, err)
	}
}

// settleProbe installs the result of one revival attempt.
func (p *Pool) settleProbe(w *poolWorker, client *rpc.Client, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	w.probing = false
	if p.closed {
		if client != nil {
			client.Close()
		}
		return
	}
	if err != nil {
		if client != nil {
			client.Close()
		}
		if w.brk.onFailure(time.Now(), p.brkCfg(), p.rng) {
			p.faults.BreakerOpened.Add(1)
		}
		return
	}
	if w.client != nil {
		w.client.Close()
	}
	w.client = client
	w.down = false
	if w.brk.onSuccess() {
		p.faults.BreakerClosed.Add(1)
	}
}

// ensureLive redials down workers whose breaker/backoff state permits a
// contact attempt right now — revival on demand, stampede-proof because
// each failure pushes the worker's next eligible contact further out.
// Failed redials charge the batch's retry budget when one is supplied.
// It returns how many redials were attempted and how many workers are
// live afterwards.
func (p *Pool) ensureLive(budget *int) (attempted, live int) {
	now := time.Now()
	var cands []*poolWorker
	p.mu.Lock()
	for _, w := range p.workers {
		if !w.down {
			live++
			continue
		}
		if w.probing || !w.brk.allow(now) {
			continue
		}
		if w.brk.probe() {
			p.faults.BreakerHalfOpen.Add(1)
		}
		w.probing = true
		cands = append(cands, w)
	}
	p.mu.Unlock()
	for _, w := range cands {
		attempted++
		p.faults.Redials.Add(1)
		client, err := p.dial(w.addr)
		if err != nil && budget != nil {
			*budget--
		}
		p.settleProbe(w, client, err)
		if err == nil {
			live++
		}
	}
	return attempted, live
}

// batchAssign is one worker's share of a round.
type batchAssign struct {
	w       *poolWorker
	client  *rpc.Client
	indices []int
}

// assign spreads the unfinished splits round-robin across live workers.
func (p *Pool) assign(done []bool) []*batchAssign {
	p.mu.Lock()
	defer p.mu.Unlock()
	var live []*poolWorker
	for _, w := range p.workers {
		if !w.down && w.client != nil {
			live = append(live, w)
		}
	}
	if len(live) == 0 {
		return nil
	}
	byWorker := make(map[*poolWorker]*batchAssign, len(live))
	var out []*batchAssign
	for i := range done {
		if done[i] {
			continue
		}
		w := live[p.next%len(live)]
		p.next++
		a := byWorker[w]
		if a == nil {
			a = &batchAssign{w: w, client: w.client}
			byWorker[w] = a
			out = append(out, a)
		}
		a.indices = append(a.indices, i)
	}
	for _, a := range out {
		a.w.inflight++
	}
	return out
}

// hedgeAssign duplicates the round's still-pending splits onto an idle
// live worker (one that has no batch in flight), or returns nil when no
// such worker exists or nothing is pending.
func (p *Pool) hedgeAssign(done []bool) *batchAssign {
	var pending []int
	for i, d := range done {
		if !d {
			pending = append(pending, i)
		}
	}
	if len(pending) == 0 {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, w := range p.workers {
		if !w.down && w.client != nil && w.inflight == 0 {
			w.inflight++
			return &batchAssign{w: w, client: w.client, indices: pending}
		}
	}
	return nil
}

// batchOutcome is one completed (or failed) batch RPC.
type batchOutcome struct {
	a       *batchAssign
	resp    MapResponse
	err     error
	fatal   bool // application-level error: do not retry
	elapsed time.Duration
	hedge   bool
}

// launch issues one batch RPC asynchronously. The sender records the
// transport outcome against the worker (breaker, latency) itself, so a
// late result still heals or trips state even if the collector has moved
// on; outcomes is buffered, so abandoned senders never block.
//
// When a slide span is active, each launch — original, retry, or hedge —
// gets its own attempt span under it carrying the trace context to the
// worker, and a successful response's worker spans are stitched in
// anchored at the pool-observed send time and clamped to the observed
// RPC window (clock skew cannot move them outside the attempt).
func (p *Pool) launch(a *batchAssign, frames [][]byte, outcomes chan<- batchOutcome, hedge bool) {
	req := MapRequest{JobName: p.jobName, SplitFrames: make([][]byte, 0, len(a.indices))}
	for _, i := range a.indices {
		req.SplitFrames = append(req.SplitFrames, frames[i])
	}
	var attempt *metrics.Span
	if parent := p.span(); parent != nil {
		label := "rpc " + a.w.addr
		if hedge {
			label += " (hedge)"
		}
		attempt = parent.Child(label)
		attempt.Event("%d splits", len(a.indices))
		req.Trace = true
		req.TraceID = attempt.TraceID()
		req.SlideID = attempt.SlideID()
		req.ParentSpan = label
	}
	go func() {
		start := time.Now()
		var resp MapResponse
		err := p.call(a.client, req, &resp)
		elapsed := time.Since(start)
		p.mu.Lock()
		a.w.inflight--
		p.mu.Unlock()
		fatal := false
		if err == nil {
			p.noteSuccess(a.w, elapsed)
			metrics.StitchWireSpans(attempt, resp.Spans, start, elapsed)
		} else if _, ok := err.(rpc.ServerError); ok {
			// The worker answered: transport is healthy, the job itself
			// failed (unknown job, map error). Deterministic — re-running
			// elsewhere cannot help.
			fatal = true
			attempt.Event("rejected: %v", err)
		} else {
			p.failContact(a.w, a.client)
			attempt.Event("failed after %v: %v", elapsed.Round(time.Millisecond), err)
		}
		attempt.End()
		outcomes <- batchOutcome{a: a, resp: resp, err: err, fatal: fatal, elapsed: elapsed, hedge: hedge}
	}()
}

// call performs one RPC under the per-task deadline.
func (p *Pool) call(client *rpc.Client, req MapRequest, resp *MapResponse) error {
	if p.cfg.TaskTimeout <= 0 {
		return client.Call("Slider.RunMap", req, resp)
	}
	call := client.Go("Slider.RunMap", req, resp, make(chan *rpc.Call, 1))
	timer := time.NewTimer(p.cfg.TaskTimeout)
	defer timer.Stop()
	select {
	case c := <-call.Done:
		return c.Error
	case <-timer.C:
		p.faults.DeadlinesExpired.Add(1)
		// The reply may still arrive on this connection; failContact
		// closes it so a late result cannot be misattributed.
		return fmt.Errorf("%w (%v)", ErrDeadline, p.cfg.TaskTimeout)
	}
}

// noteSuccess heals the worker's breaker and records the batch latency
// into the shared fault recorder's RPC histogram (the hedging quantile's
// sample source, exported via FaultStats).
func (p *Pool) noteSuccess(w *poolWorker, elapsed time.Duration) {
	p.faults.RPCLatency.Observe(elapsed)
	p.mu.Lock()
	defer p.mu.Unlock()
	if w.brk.onSuccess() {
		p.faults.BreakerClosed.Add(1)
	}
}

// span returns the slide span the pool should attach events to, or nil
// when no tracer is configured or no slide is active (Span methods are
// nil-safe, so callers annotate unconditionally).
func (p *Pool) span() *metrics.Span { return p.tracer.Active() }

// failContact poisons the worker after a transport-level failure: the
// connection is closed, the worker marked down, and its breaker backs
// off. A stale client (already replaced by a redial) is ignored.
func (p *Pool) failContact(w *poolWorker, client *rpc.Client) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if w.client != client {
		return
	}
	if w.client != nil {
		w.client.Close()
		w.client = nil
	}
	w.down = true
	if w.brk.onFailure(time.Now(), p.brkCfg(), p.rng) {
		p.faults.BreakerOpened.Add(1)
	}
}

// hedgeThreshold returns how long a round may be outstanding before a
// hedge fires: the configured quantile of observed batch latencies,
// floored at HedgeMin.
func (p *Pool) hedgeThreshold() time.Duration {
	th := p.faults.RPCLatency.Quantile(p.cfg.HedgeQuantile)
	if th < p.cfg.HedgeMin {
		th = p.cfg.HedgeMin
	}
	return th
}

// RunMap implements mapreduce.MapRunner: it executes the splits on the
// worker pool and returns results in split order. Each round assigns
// every unfinished split round-robin to a live worker and issues one
// batched, deadline-bounded RPC per worker in parallel; failed batches
// are re-executed on survivors, slow rounds are hedged on idle workers,
// and when the pool cannot finish (all workers dead, or the retry budget
// exhausted) it returns an *IncompleteError carrying the completed
// splits so the caller can degrade gracefully.
func (p *Pool) RunMap(job *mapreduce.Job, splits []mapreduce.Split) ([]mapreduce.MapResult, error) {
	if job.Name != p.jobName {
		return nil, fmt.Errorf("dist: pool serves job %q, got %q", p.jobName, job.Name)
	}
	frames := make([][]byte, len(splits))
	for i := range splits {
		frame, err := persist.EncodeSplit(splits[i])
		if err != nil {
			return nil, err
		}
		frames[i] = frame
	}
	results := make([]mapreduce.MapResult, len(splits))
	done := make([]bool, len(splits))
	remaining := len(splits)
	budget := p.cfg.RetryBudget
	switch {
	case budget < 0:
		budget = math.MaxInt
	case budget == 0:
		budget = 4*len(splits) + 8
	}
	partial := func(cause error) error {
		doneCount := 0
		for _, d := range done {
			if d {
				doneCount++
			}
		}
		p.span().Event("pool: batch incomplete (%d/%d splits done): %v", doneCount, len(done), cause)
		return &IncompleteError{Results: results, Done: done, Err: cause}
	}
	var idleSlept time.Duration
	for round := 0; remaining > 0; round++ {
		attempted, live := p.ensureLive(&budget)
		assigns := p.assign(done)
		if len(assigns) == 0 {
			// Nobody is assignable. If a revival was just attempted and
			// everyone is still dead, fail fast — the caller's local
			// fallback beats waiting, and the background health checker
			// keeps probing for the next batch. Otherwise wait out the
			// shortest backoff once, bounded so a batch never stalls.
			if live == 0 && (attempted > 0 || !p.anyRevivalPending()) {
				return nil, partial(ErrNoWorkers)
			}
			if budget <= 0 {
				p.faults.BudgetExhausted.Add(1)
				return nil, partial(p.deadCause())
			}
			wait := p.nextRevival(time.Now())
			if wait < time.Millisecond {
				wait = time.Millisecond
			}
			if idleSlept += wait; idleSlept > p.cfg.BackoffMax {
				return nil, partial(ErrNoWorkers)
			}
			time.Sleep(wait)
			continue
		}
		outcomes := make(chan batchOutcome, len(assigns)+1)
		inflight := 0
		for _, a := range assigns {
			p.launch(a, frames, outcomes, false)
			inflight++
		}
		var hedgeC <-chan time.Time
		var hedgeTimer *time.Timer
		if p.cfg.Hedge {
			hedgeTimer = time.NewTimer(p.hedgeThreshold())
			hedgeC = hedgeTimer.C
		}
		roundFailures := 0
		for inflight > 0 && remaining > 0 {
			select {
			case o := <-outcomes:
				inflight--
				newDone, err := p.absorb(o, job, results, done, &remaining, &budget, &roundFailures)
				if err != nil {
					if hedgeTimer != nil {
						hedgeTimer.Stop()
					}
					return nil, err
				}
				if o.hedge && newDone > 0 {
					p.faults.HedgesWon.Add(1)
					p.span().Event("pool: hedge won %d splits", newDone)
				}
			case <-hedgeC:
				hedgeC = nil // at most one hedge per round
				if a := p.hedgeAssign(done); a != nil {
					p.faults.HedgesLaunched.Add(1)
					p.span().Event("pool: hedge launched on %s (%d splits)", a.w.addr, len(a.indices))
					budget -= len(a.indices)
					p.launch(a, frames, outcomes, true)
					inflight++
				}
			}
		}
		if hedgeTimer != nil {
			hedgeTimer.Stop()
		}
		if remaining == 0 {
			break
		}
		if budget <= 0 {
			p.faults.BudgetExhausted.Add(1)
			return nil, partial(p.deadCause())
		}
		if roundFailures > 0 {
			time.Sleep(p.roundBackoff(round + 1))
		}
	}
	return results, nil
}

// roundBackoff draws the between-rounds backoff delay with the pool's
// RNG held under the lock (rand.Rand is not safe for concurrent use —
// the health checker shares it).
func (p *Pool) roundBackoff(attempt int) time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	return backoffDelay(p.cfg.BackoffBase, p.cfg.BackoffMax, attempt, p.rng)
}

// absorb folds one batch outcome into the result set and returns how
// many splits it newly completed. First result wins: a split already
// completed (by a hedge twin or an earlier round) is never re-counted,
// so results cannot be double-counted when workers die mid-batch.
func (p *Pool) absorb(o batchOutcome, job *mapreduce.Job, results []mapreduce.MapResult, done []bool, remaining, budget, roundFailures *int) (int, error) {
	if o.fatal {
		return 0, fmt.Errorf("dist: worker rejected batch: %w", o.err)
	}
	if o.err != nil {
		p.span().Event("pool: batch on %s failed after %v: %v", o.a.w.addr, o.elapsed.Round(time.Millisecond), o.err)
		p.requeue(o.a.indices, done, budget)
		*roundFailures++
		return 0, nil
	}
	if len(o.resp.Results) != len(o.a.indices) {
		return 0, fmt.Errorf("dist: worker %s returned %d results for %d splits",
			o.resp.Worker, len(o.resp.Results), len(o.a.indices))
	}
	newDone := 0
	for k, i := range o.a.indices {
		if done[i] {
			continue // hedge twin or earlier round already delivered it
		}
		decoded, err := decodeResult(o.resp.Results[k], job.NumPartitions())
		if err != nil {
			// Corrupted frame: the node produced garbage — treat it as a
			// worker failure and re-execute the rest of the batch
			// elsewhere (the checksummed codec caught it; never compute
			// on corrupt data).
			p.faults.CorruptFrames.Add(1)
			p.failContact(o.a.w, o.a.client)
			p.requeue(o.a.indices[k:], done, budget)
			*roundFailures++
			return newDone, nil
		}
		results[i] = decoded
		done[i] = true
		*remaining--
		newDone++
	}
	return newDone, nil
}

// requeue charges the retry accounting for a failed batch's still-undone
// splits (they will be re-executed in a later round).
func (p *Pool) requeue(indices []int, done []bool, budget *int) {
	n := 0
	for _, i := range indices {
		if !done[i] {
			n++
		}
	}
	if n == 0 {
		return
	}
	p.mu.Lock()
	p.retries += int64(n)
	p.mu.Unlock()
	p.faults.Retries.Add(int64(n))
	*budget -= n
}

// deadCause distinguishes total worker loss from budget exhaustion.
func (p *Pool) deadCause() error {
	if p.LiveWorkers() == 0 {
		return ErrNoWorkers
	}
	return ErrRetryBudget
}

// anyRevivalPending reports whether some down worker could become
// eligible for a revival attempt later (i.e. waiting can help).
func (p *Pool) anyRevivalPending() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, w := range p.workers {
		if w.down {
			return true
		}
	}
	return false
}

// nextRevival returns how long until the earliest down worker becomes
// eligible for a revival attempt.
func (p *Pool) nextRevival(now time.Time) time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	best := p.cfg.BackoffMax
	for _, w := range p.workers {
		if !w.down || w.probing {
			continue
		}
		if d := w.brk.until.Sub(now); d < best {
			best = d
		}
	}
	if best < 0 {
		best = 0
	}
	return best
}

// decodeResult converts a wire result back to a mapreduce.MapResult.
func decodeResult(r MapResult, partitions int) (mapreduce.MapResult, error) {
	if len(r.PartFrames) != partitions {
		return mapreduce.MapResult{}, fmt.Errorf(
			"dist: result for split %s has %d partitions, want %d",
			r.SplitID, len(r.PartFrames), partitions)
	}
	out := mapreduce.MapResult{
		SplitID: r.SplitID,
		Parts:   make([]mapreduce.Payload, partitions),
		Cost:    time.Duration(r.CostNs),
		Bytes:   r.Bytes,
		Records: r.Records,
	}
	for i, frame := range r.PartFrames {
		p, err := persist.DecodePayload(frame)
		if err != nil {
			return mapreduce.MapResult{}, err
		}
		out.Parts[i] = p
	}
	return out, nil
}

// Ping probes a worker address directly (diagnostics and tests).
func Ping(addr string) (PingReply, error) {
	return pingAddr(addr, 2*time.Second)
}

// pingAddr is Ping with an explicit connect + call deadline.
func pingAddr(addr string, timeout time.Duration) (PingReply, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return PingReply{}, err
	}
	client := rpc.NewClient(conn)
	defer client.Close()
	var reply PingReply
	call := client.Go("Slider.Ping", PingArgs{}, &reply, make(chan *rpc.Call, 1))
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case c := <-call.Done:
		return reply, c.Error
	case <-timer.C:
		return PingReply{}, fmt.Errorf("dist: ping %s: %w", addr, ErrDeadline)
	}
}
