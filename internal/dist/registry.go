// Package dist adds real distributed map execution to Slider: worker
// processes serve map tasks over TCP (net/rpc + gob), and a client-side
// pool implements the runtime's MapRunner hook with round-robin
// dispatch, failure detection, and automatic re-execution of tasks from
// failed workers on the survivors — the task-level fault tolerance model
// of MapReduce that the paper's system inherits from Hadoop.
//
// Because functions cannot travel over the wire, jobs are distributed by
// *name*: both the driver and every worker register the same job factory
// under the same name (the moral equivalent of shipping the job jar in
// Hadoop). Record and value types inside splits and payloads cross the
// wire via gob; custom types register once with persist.RegisterType.
package dist

import (
	"fmt"
	"sort"
	"sync"

	"slider/internal/mapreduce"
)

// Registry maps job names to factories. A zero Registry is ready to use.
// Registry is safe for concurrent use.
type Registry struct {
	mu   sync.RWMutex
	jobs map[string]func() *mapreduce.Job
}

// defaultRegistry serves RegisterJob / lookupJob.
var defaultRegistry Registry

// Register binds a job factory to a name in this registry.
func (r *Registry) Register(name string, factory func() *mapreduce.Job) error {
	if name == "" || factory == nil {
		return fmt.Errorf("dist: empty job name or nil factory")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.jobs == nil {
		r.jobs = make(map[string]func() *mapreduce.Job)
	}
	if _, dup := r.jobs[name]; dup {
		return fmt.Errorf("dist: job %q already registered", name)
	}
	r.jobs[name] = factory
	return nil
}

// Lookup instantiates the named job.
func (r *Registry) Lookup(name string) (*mapreduce.Job, error) {
	r.mu.RLock()
	factory, ok := r.jobs[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("dist: unknown job %q", name)
	}
	job := factory()
	if err := job.Validate(); err != nil {
		return nil, err
	}
	return job, nil
}

// Names returns the registered job names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.jobs))
	for n := range r.jobs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RegisterJob binds a job factory to a name in the process-wide registry
// used by Worker and Pool defaults.
func RegisterJob(name string, factory func() *mapreduce.Job) error {
	return defaultRegistry.Register(name, factory)
}
