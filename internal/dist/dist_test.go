package dist

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"slider/internal/mapreduce"
	"slider/internal/memo"
	"slider/internal/sliderrt"
)

// testJob is the wordcount used across the dist tests, registered once
// under a unique name per registry.
func testJob() *mapreduce.Job {
	sum := func(_ string, values []mapreduce.Value) mapreduce.Value {
		var total int64
		for _, v := range values {
			total += v.(int64)
		}
		return total
	}
	return &mapreduce.Job{
		Name:       "dist-wordcount",
		Partitions: 3,
		Map: func(rec mapreduce.Record, emit mapreduce.Emit) error {
			for _, w := range strings.Fields(rec.(string)) {
				emit(w, int64(1))
			}
			return nil
		},
		Combine:     sum,
		Reduce:      sum,
		Commutative: true,
	}
}

// newCluster starts n workers sharing one registry and returns them with
// their addresses.
func newCluster(t *testing.T, n int) ([]*Worker, []string, *Registry) {
	t.Helper()
	reg := &Registry{}
	if err := reg.Register("dist-wordcount", testJob); err != nil {
		t.Fatal(err)
	}
	var workers []*Worker
	var addrs []string
	for i := 0; i < n; i++ {
		w, err := NewWorker(fmt.Sprintf("w%d", i), "127.0.0.1:0", reg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { w.Close() })
		workers = append(workers, w)
		addrs = append(addrs, w.Addr())
	}
	return workers, addrs, reg
}

func textSplits(lo, hi int) []mapreduce.Split {
	out := make([]mapreduce.Split, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, mapreduce.Split{
			ID: "d" + strconv.Itoa(i),
			Records: []mapreduce.Record{
				"alpha beta alpha",
				"beta gamma " + strconv.Itoa(i),
			},
		})
	}
	return out
}

func TestRegistry(t *testing.T) {
	reg := &Registry{}
	if err := reg.Register("", testJob); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := reg.Register("j", nil); err == nil {
		t.Fatal("nil factory accepted")
	}
	if err := reg.Register("j", testJob); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("j", testJob); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if _, err := reg.Lookup("nope"); err == nil {
		t.Fatal("unknown job looked up")
	}
	job, err := reg.Lookup("j")
	if err != nil || job.Name != "dist-wordcount" {
		t.Fatalf("lookup: %v %v", job, err)
	}
	if names := reg.Names(); len(names) != 1 || names[0] != "j" {
		t.Fatalf("names = %v", names)
	}
}

func TestPing(t *testing.T) {
	_, addrs, _ := newCluster(t, 1)
	reply, err := Ping(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	if reply.Worker != "w0" || len(reply.Jobs) != 1 {
		t.Fatalf("reply = %+v", reply)
	}
	if _, err := Ping("127.0.0.1:1"); err == nil {
		t.Fatal("ping to dead address succeeded")
	}
}

func TestPoolRunMapMatchesLocal(t *testing.T) {
	_, addrs, _ := newCluster(t, 3)
	pool, err := NewPool("dist-wordcount", addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	splits := textSplits(0, 9)
	remote, err := pool.RunMap(testJob(), splits)
	if err != nil {
		t.Fatal(err)
	}
	local, err := mapreduce.Executor{}.RunMap(testJob(), splits)
	if err != nil {
		t.Fatal(err)
	}
	if len(remote) != len(local) {
		t.Fatalf("result counts differ: %d vs %d", len(remote), len(local))
	}
	for i := range remote {
		if remote[i].SplitID != local[i].SplitID {
			t.Fatalf("result %d out of order: %s", i, remote[i].SplitID)
		}
		if remote[i].Records != local[i].Records {
			t.Fatalf("record counts differ for %s", remote[i].SplitID)
		}
		for p := range remote[i].Parts {
			if mapreduce.FingerprintPayload(remote[i].Parts[p]) !=
				mapreduce.FingerprintPayload(local[i].Parts[p]) {
				t.Fatalf("payload %d/%d differs from local execution", i, p)
			}
		}
	}
}

func TestPoolSpreadsLoad(t *testing.T) {
	workers, addrs, _ := newCluster(t, 3)
	pool, err := NewPool("dist-wordcount", addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if _, err := pool.RunMap(testJob(), textSplits(0, 9)); err != nil {
		t.Fatal(err)
	}
	for i, w := range workers {
		if w.Served() == 0 {
			t.Fatalf("worker %d served nothing", i)
		}
	}
}

func TestPoolSurvivesWorkerFailure(t *testing.T) {
	workers, addrs, _ := newCluster(t, 3)
	pool, err := NewPool("dist-wordcount", addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if _, err := pool.RunMap(testJob(), textSplits(0, 3)); err != nil {
		t.Fatal(err)
	}
	// Kill one worker; the next batch must still complete, re-executing
	// its splits on survivors.
	if err := workers[1].Close(); err != nil {
		t.Fatal(err)
	}
	results, err := pool.RunMap(testJob(), textSplits(3, 12))
	if err != nil {
		t.Fatalf("run after worker failure: %v", err)
	}
	if len(results) != 9 {
		t.Fatalf("got %d results", len(results))
	}
	if pool.Retries() == 0 {
		t.Fatal("no retries recorded despite a dead worker")
	}
	if pool.LiveWorkers() != 2 {
		t.Fatalf("live workers = %d, want 2", pool.LiveWorkers())
	}
}

func TestPoolAllWorkersDead(t *testing.T) {
	workers, addrs, _ := newCluster(t, 2)
	pool, err := NewPool("dist-wordcount", addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	for _, w := range workers {
		w.Close()
	}
	if _, err := pool.RunMap(testJob(), textSplits(0, 2)); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("err = %v, want ErrNoWorkers", err)
	}
}

func TestPoolRejectsWrongJob(t *testing.T) {
	_, addrs, _ := newCluster(t, 1)
	pool, err := NewPool("dist-wordcount", addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	other := testJob()
	other.Name = "other"
	if _, err := pool.RunMap(other, textSplits(0, 1)); err == nil {
		t.Fatal("wrong job name accepted")
	}
}

func TestPoolNoAddresses(t *testing.T) {
	if _, err := NewPool("j", nil); err == nil {
		t.Fatal("empty address list accepted")
	}
	if _, err := NewPool("j", []string{"127.0.0.1:1"}); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("err = %v, want ErrNoWorkers", err)
	}
}

func TestWorkerRejectsUnknownJob(t *testing.T) {
	_, addrs, reg := newCluster(t, 1)
	_ = reg
	pool, err := NewPool("never-registered", addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	job := testJob()
	job.Name = "never-registered"
	if _, err := pool.RunMap(job, textSplits(0, 1)); err == nil {
		t.Fatal("unknown job executed")
	}
}

// TestRuntimeWithRemoteMaps runs a full sliding-window job whose map
// phase executes on remote workers, and checks the output against
// recomputation from scratch — distributed execution must be invisible
// to correctness.
func TestRuntimeWithRemoteMaps(t *testing.T) {
	workers, addrs, _ := newCluster(t, 3)
	pool, err := NewPool("dist-wordcount", addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	memoCfg := memo.DefaultConfig()
	memoCfg.Nodes = 4
	rt, err := sliderrt.New(testJob(), sliderrt.Config{
		Mode: sliderrt.Fixed, BucketSplits: 2, WindowBuckets: 4,
		Memo:      memoCfg,
		MapRunner: pool,
	})
	if err != nil {
		t.Fatal(err)
	}
	window := textSplits(0, 8)
	if _, err := rt.Initial(window); err != nil {
		t.Fatal(err)
	}
	// Kill a worker between runs: the slide must still succeed.
	workers[0].Close()
	add := textSplits(8, 10)
	res, err := rt.Advance(2, add)
	if err != nil {
		t.Fatal(err)
	}
	window = append(window[2:], add...)
	want, err := mapreduce.RunScratch(testJob(), window, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != len(want) {
		t.Fatalf("output sizes differ: %d vs %d", len(res.Output), len(want))
	}
	for k, v := range want {
		if res.Output[k].(int64) != v.(int64) {
			t.Fatalf("key %q: %v vs %v", k, res.Output[k], v)
		}
	}
}
