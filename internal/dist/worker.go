package dist

import (
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"sync/atomic"
	"time"

	"slider/internal/mapreduce"
	"slider/internal/metrics"
	"slider/internal/persist"
)

// MapRequest is one remote map-task batch: the named job applied to a
// set of splits. Splits travel as checksummed frames (persist.Encode) so
// the worker detects corruption instead of computing on garbage.
type MapRequest struct {
	// JobName selects the job from the worker's registry.
	JobName string
	// SplitFrames holds one encoded mapreduce.Split per task.
	SplitFrames [][]byte
	// Trace asks the worker to record and return spans for this batch
	// (set when the pool itself is tracing the owning slide). A worker
	// with no observability bundle installed ignores it.
	Trace bool
	// TraceID and SlideID propagate the owning slide's trace context so
	// worker-retained spans are correlatable with the pool's trace even
	// when the response is lost.
	TraceID uint64
	SlideID uint64
	// ParentSpan names the pool-side span this batch hangs under
	// (diagnostics; e.g. "rpc 127.0.0.1:7001 (hedge)").
	ParentSpan string
}

// MapResult mirrors mapreduce.MapResult in wire-friendly form.
type MapResult struct {
	SplitID    string
	PartFrames [][]byte // one encoded Payload per reduce partition
	CostNs     int64
	Bytes      int64
	Records    int64
}

// MapResponse carries the batch's results.
type MapResponse struct {
	Results []MapResult
	// Worker identifies the responding worker (diagnostics).
	Worker string
	// Spans carries the worker's span tree for this batch in wire form
	// (offsets/durations only — no absolute timestamps, so clock skew
	// cannot leak; see metrics.StitchWireSpans). Empty unless the request
	// set Trace and the worker has an observability bundle.
	Spans []metrics.WireSpan
}

// PingArgs/PingReply implement the health probe.
type PingArgs struct{}

// PingReply reports the worker's identity and registered jobs.
type PingReply struct {
	Worker string
	Jobs   []string
}

// WorkerFaults holds one-shot fault injections armed by tests and the
// simulation harness. Each armed fault fires on the worker's next RunMap
// batch and then disarms itself, so a single injection perturbs exactly
// one batch — which keeps deterministic chaos traces replayable.
type WorkerFaults struct {
	mu      sync.Mutex
	delay   time.Duration // delay the next response
	drop    bool          // hang up without delivering the next response
	corrupt bool          // corrupt a payload frame in the next response
	crash   bool          // crash the worker mid-batch
}

// InjectDelay arms a one-shot response delay.
func (f *WorkerFaults) InjectDelay(d time.Duration) {
	f.mu.Lock()
	f.delay = d
	f.mu.Unlock()
}

// InjectDrop arms a one-shot dropped response: the batch is computed but
// every connection is closed before the reply is delivered.
func (f *WorkerFaults) InjectDrop() {
	f.mu.Lock()
	f.drop = true
	f.mu.Unlock()
}

// InjectCorrupt arms a one-shot frame corruption: a byte is flipped in
// the first result's payload frame, which the client's checksummed codec
// must catch.
func (f *WorkerFaults) InjectCorrupt() {
	f.mu.Lock()
	f.corrupt = true
	f.mu.Unlock()
}

// InjectCrash arms a one-shot mid-batch crash: the worker dies (Kill)
// after computing the first split of the batch, before replying.
func (f *WorkerFaults) InjectCrash() {
	f.mu.Lock()
	f.crash = true
	f.mu.Unlock()
}

// take consumes every armed fault.
func (f *WorkerFaults) take() (delay time.Duration, drop, corrupt, crash bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delay, drop, corrupt, crash = f.delay, f.drop, f.corrupt, f.crash
	f.delay, f.drop, f.corrupt, f.crash = 0, false, false, false
	return
}

// Worker serves map tasks over TCP. Create with NewWorker, stop with
// Close.
type Worker struct {
	name     string
	registry *Registry
	listener net.Listener
	faults   WorkerFaults
	obs      atomic.Pointer[WorkerObs]

	mu     sync.Mutex
	served int64
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// NewWorker starts a worker listening on addr (use "127.0.0.1:0" for an
// ephemeral port). A nil registry uses the process-wide one.
func NewWorker(name, addr string, registry *Registry) (*Worker, error) {
	if registry == nil {
		registry = &defaultRegistry
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dist: worker listen: %w", err)
	}
	w := &Worker{name: name, registry: registry, listener: ln, conns: make(map[net.Conn]struct{})}
	srv := rpc.NewServer()
	if err := srv.RegisterName("Slider", &workerService{w: w}); err != nil {
		ln.Close()
		return nil, fmt.Errorf("dist: worker register: %w", err)
	}
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			w.mu.Lock()
			if w.closed {
				w.mu.Unlock()
				conn.Close()
				return
			}
			w.conns[conn] = struct{}{}
			w.mu.Unlock()
			w.wg.Add(1)
			go func() {
				defer w.wg.Done()
				srv.ServeConn(conn)
				w.mu.Lock()
				delete(w.conns, conn)
				w.mu.Unlock()
			}()
		}
	}()
	return w, nil
}

// Addr returns the worker's listen address.
func (w *Worker) Addr() string { return w.listener.Addr().String() }

// Faults exposes the worker's fault-injection switchboard.
func (w *Worker) Faults() *WorkerFaults { return &w.faults }

// Served returns the number of map tasks this worker has executed.
func (w *Worker) Served() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.served
}

// Close stops the worker: the listener and every open connection are
// shut down (in-flight calls fail on the client, which re-executes them
// elsewhere), and all serving goroutines are waited for.
func (w *Worker) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	conns := make([]net.Conn, 0, len(w.conns))
	for c := range w.conns {
		conns = append(conns, c)
	}
	w.mu.Unlock()
	err := w.listener.Close()
	for _, c := range conns {
		c.Close()
	}
	w.wg.Wait()
	return err
}

// Kill abruptly stops the worker without waiting for in-flight handlers
// — the crash path. Unlike Close it is safe to call from inside a
// handler (Close would deadlock on its own WaitGroup). Connections are
// closed before returning, so a handler that Kills its worker can never
// deliver its reply: the client always observes a transport failure.
func (w *Worker) Kill() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	conns := make([]net.Conn, 0, len(w.conns))
	for c := range w.conns {
		conns = append(conns, c)
	}
	w.mu.Unlock()
	w.listener.Close()
	for _, c := range conns {
		c.Close()
	}
}

// dropConns closes every open connection but leaves the worker running
// (the dropped-response fault: clients see a transport error and must
// reconnect, which the healthy worker accepts).
func (w *Worker) dropConns() {
	w.mu.Lock()
	conns := make([]net.Conn, 0, len(w.conns))
	for c := range w.conns {
		conns = append(conns, c)
	}
	w.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// workerService is the RPC surface (kept separate so Worker's exported
// methods don't have to satisfy net/rpc's signature rules).
type workerService struct {
	w *Worker
}

// RunMap executes a batch of map tasks for a registered job. Armed
// one-shot faults (WorkerFaults) fire here: crash kills the worker after
// the first split, drop computes everything but hangs up before
// replying, corrupt flips a byte in a payload frame, delay stalls the
// response.
//
// With an observability bundle installed the handler records a span tree
// (decode, map+combine, encode per split) into the worker's own ring and
// — when the request asks for tracing — ships it back in resp.Spans for
// the pool to stitch. With no bundle every instrumentation line below is
// a nil check: the batch span is nil, Span methods are nil-receiver
// no-ops, and the histogram branches are skipped, adding zero
// allocations to the hot path (TestWorkerNoObsZeroAllocDelta).
func (s *workerService) RunMap(req MapRequest, resp *MapResponse) error {
	delay, drop, corrupt, crash := s.w.faults.take()
	job, err := s.w.registry.Lookup(req.JobName)
	if err != nil {
		return err
	}
	obs := s.w.obs.Load()
	batchStart := time.Now()
	var batch *metrics.Span
	if obs != nil && req.Trace {
		batch = obs.Tracer.StartSlide(req.SlideID, fmt.Sprintf("%s %s ×%d", s.w.name, req.JobName, len(req.SplitFrames)))
		batch.Event("trace %d parent %q", req.TraceID, req.ParentSpan)
	}
	resp.Worker = s.w.name
	resp.Results = make([]MapResult, 0, len(req.SplitFrames))
	for idx, frame := range req.SplitFrames {
		if crash && idx == 1 {
			// Mid-batch crash: one split computed, nothing delivered.
			// Kill closes the connection first, so the error below never
			// reaches the client — it sees a transport failure.
			s.w.Kill()
			return fmt.Errorf("dist: worker %s: injected crash", s.w.name)
		}
		var sp *metrics.Span
		if batch != nil {
			sp = batch.Child(fmt.Sprintf("split %d", idx))
		}
		// Zero-copy decode: record strings alias the request frame, which
		// stays alive (and unmodified) for the duration of the map task.
		decStart := time.Now()
		dec := sp.Child("decode")
		split, err := persist.DecodeSplitZeroCopy(frame)
		dec.End()
		if err != nil {
			if obs != nil {
				obs.Faults.CorruptFrames.Add(1)
			}
			sp.Event("decode failed: %v", err)
			batch.End()
			return fmt.Errorf("dist: worker %s: %w", s.w.name, err)
		}
		if obs != nil {
			obs.Decode.Observe(time.Since(decStart))
		}
		// The map-side combiner is fused into the map task's emit path, so
		// this one span covers both (there is no separate combine pass).
		mc := sp.Child("map+combine")
		start := time.Now()
		result, err := mapreduce.RunMapTask(job, split)
		mc.End()
		if err != nil {
			batch.End()
			return fmt.Errorf("dist: worker %s: %w", s.w.name, err)
		}
		if obs != nil {
			obs.Map.Observe(time.Since(start))
		}
		encStart := time.Now()
		enc := sp.Child("encode")
		parts := make([][]byte, len(result.Parts))
		for i, p := range result.Parts {
			if parts[i], err = persist.EncodePayload(p); err != nil {
				enc.End()
				batch.End()
				return fmt.Errorf("dist: worker %s: %w", s.w.name, err)
			}
		}
		enc.End()
		sp.End()
		if obs != nil {
			obs.Encode.Observe(time.Since(encStart))
		}
		resp.Results = append(resp.Results, MapResult{
			SplitID:    result.SplitID,
			PartFrames: parts,
			CostNs:     int64(time.Since(start)),
			Bytes:      result.Bytes,
			Records:    result.Records,
		})
		s.w.mu.Lock()
		s.w.served++
		s.w.mu.Unlock()
	}
	if obs != nil {
		obs.Batch.Observe(time.Since(batchStart))
	}
	if batch != nil {
		batch.End()
		resp.Spans = metrics.ExportWireSpans(batch)
	}
	if crash && len(req.SplitFrames) <= 1 {
		// Single-split batch: crash after compute, before the reply.
		s.w.Kill()
		return fmt.Errorf("dist: worker %s: injected crash", s.w.name)
	}
	if corrupt && len(resp.Results) > 0 && len(resp.Results[0].PartFrames) > 0 {
		if frame := resp.Results[0].PartFrames[0]; len(frame) > 0 {
			frame[len(frame)/2] ^= 0xFF
		}
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	if drop {
		// Hang up before the reply is written; the healthy worker keeps
		// accepting reconnects.
		s.w.dropConns()
		return fmt.Errorf("dist: worker %s: injected drop", s.w.name)
	}
	return nil
}

// Ping answers the health probe.
func (s *workerService) Ping(_ PingArgs, reply *PingReply) error {
	reply.Worker = s.w.name
	reply.Jobs = s.w.registry.Names()
	return nil
}
