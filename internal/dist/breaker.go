package dist

import (
	"math/rand"
	"time"
)

// breakerState is one of the classic circuit-breaker states. A worker's
// breaker decides whether the pool may send it work (closed), must leave
// it alone while a cooldown elapses (open), or may issue exactly one
// probe to test recovery (half-open).
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// String names the state (diagnostics).
func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is the per-worker circuit-breaker and backoff state. It is not
// self-locking: the owning Pool's mutex guards every access, which keeps
// the state machine trivial. Failures below the threshold still push the
// next contact attempt out by a jittered exponential backoff, so even a
// closed breaker never produces a reconnect stampede.
type breaker struct {
	state    breakerState
	failures int           // consecutive failures
	until    time.Time     // earliest next contact (dial or probe)
	cooldown time.Duration // current open-state cooldown (doubles per re-open)
}

// breakerConfig is the slice of PoolConfig the breaker consumes.
type breakerConfig struct {
	threshold   int
	baseBackoff time.Duration
	maxBackoff  time.Duration
	cooldown    time.Duration
}

// allow reports whether the worker may be contacted now: closed breakers
// outside their backoff window always may; open breakers only once the
// cooldown has elapsed (the contact then counts as the half-open probe).
func (b *breaker) allow(now time.Time) bool {
	return now.After(b.until) || now.Equal(b.until)
}

// probe transitions an open breaker to half-open for one contact attempt.
// Returns true when this contact is a half-open probe (for accounting).
func (b *breaker) probe() bool {
	if b.state == breakerOpen {
		b.state = breakerHalfOpen
		return true
	}
	return false
}

// onSuccess resets the breaker after a successful contact. Returns true
// when this closed a previously open/half-open breaker.
func (b *breaker) onSuccess() bool {
	reopened := b.state != breakerClosed
	b.state = breakerClosed
	b.failures = 0
	b.until = time.Time{}
	b.cooldown = 0
	return reopened
}

// onFailure records a failed contact: the next attempt is pushed out by a
// jittered exponential backoff, and once the consecutive-failure count
// reaches the threshold (or a half-open probe fails) the breaker opens.
// Returns true when this transition newly opened the breaker.
func (b *breaker) onFailure(now time.Time, cfg breakerConfig, rng *rand.Rand) bool {
	b.failures++
	opened := false
	if b.state == breakerHalfOpen || (b.state == breakerClosed && b.failures >= cfg.threshold) {
		if b.cooldown == 0 {
			b.cooldown = cfg.cooldown
		} else {
			b.cooldown *= 2
			if b.cooldown > cfg.maxBackoff {
				b.cooldown = cfg.maxBackoff
			}
		}
		opened = b.state != breakerOpen
		b.state = breakerOpen
		b.until = now.Add(jitter(b.cooldown, rng))
		return opened
	}
	b.until = now.Add(backoffDelay(cfg.baseBackoff, cfg.maxBackoff, b.failures, rng))
	return false
}

// backoffDelay returns the attempt-th exponential backoff delay with
// ±25% jitter: base·2^(attempt−1), capped at max.
func backoffDelay(base, max time.Duration, attempt int, rng *rand.Rand) time.Duration {
	if base <= 0 {
		base = time.Millisecond
	}
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return jitter(d, rng)
}

// jitter spreads a delay uniformly over [0.75d, 1.25d] so synchronized
// clients (or a fleet of pools) do not reconnect in lockstep.
func jitter(d time.Duration, rng *rand.Rand) time.Duration {
	if d <= 0 || rng == nil {
		return d
	}
	spread := int64(d) / 2
	if spread <= 0 {
		return d
	}
	return time.Duration(int64(d)*3/4 + rng.Int63n(spread))
}
