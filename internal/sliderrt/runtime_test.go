package sliderrt

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"slider/internal/mapreduce"
	"slider/internal/memo"
)

// wordCountJob is a classic associative+commutative job used across the
// runtime tests.
func wordCountJob() *mapreduce.Job {
	return &mapreduce.Job{
		Name:       "wordcount",
		Partitions: 3,
		Map: func(rec mapreduce.Record, emit mapreduce.Emit) error {
			line, ok := rec.(string)
			if !ok {
				return fmt.Errorf("record %T is not a string", rec)
			}
			for _, w := range strings.Fields(line) {
				emit(w, int64(1))
			}
			return nil
		},
		Combine: func(_ string, values []mapreduce.Value) mapreduce.Value {
			var sum int64
			for _, v := range values {
				sum += v.(int64)
			}
			return sum
		},
		Reduce: func(_ string, values []mapreduce.Value) mapreduce.Value {
			var sum int64
			for _, v := range values {
				sum += v.(int64)
			}
			return sum
		},
		Commutative: true,
	}
}

// genSplits produces deterministic text splits with IDs starting at id0.
func genSplits(id0, n, linesPer int, seed int64) []mapreduce.Split {
	rng := rand.New(rand.NewSource(seed + int64(id0)))
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	splits := make([]mapreduce.Split, n)
	for i := range splits {
		records := make([]mapreduce.Record, linesPer)
		for j := range records {
			var sb strings.Builder
			for k := 0; k < 6; k++ {
				sb.WriteString(words[rng.Intn(len(words))])
				sb.WriteByte(' ')
			}
			records[j] = sb.String()
		}
		splits[i] = mapreduce.Split{ID: "s" + strconv.Itoa(id0+i), Records: records}
	}
	return splits
}

func wantSameOutput(t *testing.T, got, want mapreduce.Output) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("output has %d keys, want %d", len(got), len(want))
	}
	for k, wv := range want {
		gv, ok := got[k]
		if !ok {
			t.Fatalf("missing key %q", k)
		}
		if gv.(int64) != wv.(int64) {
			t.Fatalf("key %q: got %d, want %d", k, gv.(int64), wv.(int64))
		}
	}
}

func scratch(t *testing.T, job *mapreduce.Job, window []mapreduce.Split) mapreduce.Output {
	t.Helper()
	out, err := mapreduce.RunScratch(job, window, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func testMemoConfig() memo.Config {
	cfg := memo.DefaultConfig()
	cfg.Nodes = 4
	return cfg
}

// driveAndCheck runs a slide schedule through the runtime and checks every
// output against recomputation from scratch.
func driveAndCheck(t *testing.T, cfg Config, initial int, slides [](struct{ drop, add int })) {
	t.Helper()
	job := wordCountJob()
	cfg.Memo = testMemoConfig()
	rt, err := New(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	window := genSplits(0, initial, 4, 7)
	next := initial
	res, err := rt.Initial(window)
	if err != nil {
		t.Fatal(err)
	}
	wantSameOutput(t, res.Output, scratch(t, job, window))

	for i, s := range slides {
		add := genSplits(next, s.add, 4, 7)
		next += s.add
		res, err := rt.Advance(s.drop, add)
		if err != nil {
			t.Fatalf("slide %d: %v", i, err)
		}
		window = append(window[s.drop:], add...)
		wantSameOutput(t, res.Output, scratch(t, job, window))
		if rt.Live() != len(window) {
			t.Fatalf("slide %d: live=%d want %d", i, rt.Live(), len(window))
		}
	}
}

type slide = struct{ drop, add int }

func TestAppendMode(t *testing.T) {
	driveAndCheck(t, Config{Mode: Append}, 6, []slide{{0, 2}, {0, 1}, {0, 4}})
}

func TestAppendModeSplitProcessing(t *testing.T) {
	driveAndCheck(t, Config{Mode: Append, SplitProcessing: true}, 6, []slide{{0, 2}, {0, 1}, {0, 4}})
}

func TestFixedMode(t *testing.T) {
	cfg := Config{Mode: Fixed, BucketSplits: 2, WindowBuckets: 4}
	driveAndCheck(t, cfg, 8, []slide{{2, 2}, {2, 2}, {4, 4}, {2, 2}})
}

func TestFixedModeSplitProcessing(t *testing.T) {
	cfg := Config{Mode: Fixed, BucketSplits: 2, WindowBuckets: 4, SplitProcessing: true}
	driveAndCheck(t, cfg, 8, []slide{{2, 2}, {2, 2}, {2, 2}, {4, 4}, {2, 2}})
}

func TestVariableModeFolding(t *testing.T) {
	cfg := Config{Mode: Variable}
	driveAndCheck(t, cfg, 8, []slide{{3, 1}, {0, 5}, {6, 2}, {1, 0}, {5, 3}})
}

func TestVariableModeRandomized(t *testing.T) {
	cfg := Config{Mode: Variable, Randomized: true, Seed: 11}
	driveAndCheck(t, cfg, 8, []slide{{3, 1}, {0, 5}, {6, 2}, {1, 0}, {5, 3}})
}

func TestStrawmanEngineAllModes(t *testing.T) {
	for _, mode := range []Mode{Append, Fixed, Variable} {
		cfg := Config{Mode: mode, Engine: Strawman, BucketSplits: 2, WindowBuckets: 4}
		slides := []slide{{2, 2}, {2, 2}}
		if mode == Append {
			slides = []slide{{0, 2}, {0, 3}}
		}
		if mode == Variable {
			slides = []slide{{3, 1}, {0, 4}}
		}
		driveAndCheck(t, cfg, 8, slides)
	}
}

func TestAdvanceShapeValidation(t *testing.T) {
	job := wordCountJob()
	rt, err := New(job, Config{Mode: Append, Memo: testMemoConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Advance(0, genSplits(0, 1, 2, 1)); err != ErrNotInitial {
		t.Fatalf("advance before initial: err = %v", err)
	}
	if _, err := rt.Initial(genSplits(0, 4, 2, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Initial(genSplits(4, 4, 2, 1)); err != ErrReinitialize {
		t.Fatalf("double initial: err = %v", err)
	}
	if _, err := rt.Advance(1, genSplits(8, 1, 2, 1)); err == nil {
		t.Fatal("append mode accepted a drop")
	}

	fixed, err := New(job, Config{Mode: Fixed, BucketSplits: 2, WindowBuckets: 2, Memo: testMemoConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fixed.Initial(genSplits(0, 3, 2, 1)); err == nil {
		t.Fatal("fixed mode accepted a partial initial window")
	}
	if _, err := fixed.Initial(genSplits(0, 4, 2, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := fixed.Advance(1, genSplits(4, 1, 2, 1)); err == nil {
		t.Fatal("fixed mode accepted a non-bucket slide")
	}
	if _, err := fixed.Advance(2, genSplits(4, 3, 2, 1)); err == nil {
		t.Fatal("fixed mode accepted drop != add")
	}
}

func TestRotatingRequiresCommutativity(t *testing.T) {
	job := wordCountJob()
	job.Commutative = false
	// Auto selection routes a non-commutative Fixed-mode job to the
	// in-order DABA backend, which accepts it.
	rt, err := New(job, Config{Mode: Fixed, BucketSplits: 1, WindowBuckets: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Backend() != BackendDaba {
		t.Fatalf("auto backend for non-commutative Fixed job = %v, want daba", rt.Backend())
	}
	// Explicitly requesting the rotating tree must fail: its circular
	// buckets re-order window age relative to tree position.
	if _, err := New(job, Config{Mode: Fixed, Backend: BackendRotating, BucketSplits: 1, WindowBuckets: 2}); !errors.Is(err, ErrBadBackend) {
		t.Fatalf("non-commutative job routed to rotating tree: err = %v, want ErrBadBackend", err)
	}
	// Split processing implies the rotating tree, so auto must also fail.
	if _, err := New(job, Config{Mode: Fixed, SplitProcessing: true, BucketSplits: 1, WindowBuckets: 2}); !errors.Is(err, ErrBadBackend) {
		t.Fatalf("non-commutative job accepted for split processing: err = %v, want ErrBadBackend", err)
	}
	// The strawman engine preserves order, so it must accept it.
	if _, err := New(job, Config{Mode: Fixed, Engine: Strawman, BucketSplits: 1, WindowBuckets: 2}); err != nil {
		t.Fatal(err)
	}
}

func TestBackendSelectionMatrix(t *testing.T) {
	commutative := wordCountJob()
	cases := []struct {
		name string
		cfg  Config
		want Backend
		fail bool
	}{
		{"fixed-auto", Config{Mode: Fixed, BucketSplits: 1, WindowBuckets: 2}, BackendDaba, false},
		{"fixed-split-auto", Config{Mode: Fixed, SplitProcessing: true, BucketSplits: 1, WindowBuckets: 2}, BackendRotating, false},
		{"fixed-rotating-override", Config{Mode: Fixed, Backend: BackendRotating, BucketSplits: 1, WindowBuckets: 2}, BackendRotating, false},
		{"fixed-daba-override", Config{Mode: Fixed, Backend: BackendDaba, BucketSplits: 1, WindowBuckets: 2}, BackendDaba, false},
		{"fixed-daba-split", Config{Mode: Fixed, Backend: BackendDaba, SplitProcessing: true, BucketSplits: 1, WindowBuckets: 2}, 0, true},
		{"fixed-folding", Config{Mode: Fixed, Backend: BackendFolding, BucketSplits: 1, WindowBuckets: 2}, 0, true},
		{"append-auto", Config{Mode: Append}, BackendCoalescing, false},
		{"append-daba", Config{Mode: Append, Backend: BackendDaba}, 0, true},
		{"variable-auto", Config{Mode: Variable}, BackendFolding, false},
		{"variable-randomized", Config{Mode: Variable, Randomized: true}, BackendRandomizedFolding, false},
		{"variable-randomized-override", Config{Mode: Variable, Backend: BackendRandomizedFolding}, BackendRandomizedFolding, false},
		{"variable-conflict", Config{Mode: Variable, Randomized: true, Backend: BackendFolding}, 0, true},
		{"variable-daba", Config{Mode: Variable, Backend: BackendDaba}, 0, true},
		{"strawman", Config{Mode: Fixed, Engine: Strawman, BucketSplits: 1, WindowBuckets: 2}, BackendStrawman, false},
		{"strawman-daba", Config{Mode: Fixed, Engine: Strawman, Backend: BackendDaba, BucketSplits: 1, WindowBuckets: 2}, 0, true},
	}
	for _, tc := range cases {
		tc.cfg.Memo = testMemoConfig()
		rt, err := New(commutative, tc.cfg)
		if tc.fail {
			if !errors.Is(err, ErrBadBackend) {
				t.Errorf("%s: err = %v, want ErrBadBackend", tc.name, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if rt.Backend() != tc.want {
			t.Errorf("%s: backend = %v, want %v", tc.name, rt.Backend(), tc.want)
		}
	}
}

func TestIncrementalWorkBeatsScratchWork(t *testing.T) {
	job := wordCountJob()
	cfg := Config{Mode: Fixed, BucketSplits: 2, WindowBuckets: 16, Memo: testMemoConfig()}
	rt, err := New(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	window := genSplits(0, 32, 50, 3)
	if _, err := rt.Initial(window); err != nil {
		t.Fatal(err)
	}
	add := genSplits(32, 2, 50, 3)
	res, err := rt.Advance(2, add)
	if err != nil {
		t.Fatal(err)
	}
	window = append(window[2:], add...)

	// Scratch re-maps every split; Slider maps only the 2 new ones.
	c := res.Report.Counters
	if c.MapTasks != 2 {
		t.Fatalf("incremental run executed %d map tasks, want 2", c.MapTasks)
	}
	rec := newRecorder(t, job, window)
	if rec.MapTasks != 32 {
		t.Fatalf("scratch executed %d map tasks, want 32", rec.MapTasks)
	}
}

func newRecorder(t *testing.T, job *mapreduce.Job, window []mapreduce.Split) (c struct{ MapTasks int64 }) {
	t.Helper()
	res, err := mapreduce.Executor{}.RunMapTasks(job, window, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.MapTasks = int64(len(res))
	return c
}

func TestSplitProcessingShiftsWorkToBackground(t *testing.T) {
	job := wordCountJob()
	mkRT := func(split bool) *Runtime {
		// Pin the rotating tree on both sides: the comparison is split
		// processing vs. in-place rotation, not vs. the DABA fast path
		// auto selection would pick for the non-split config.
		rt, err := New(job, Config{
			Mode: Fixed, Backend: BackendRotating, BucketSplits: 2, WindowBuckets: 8,
			SplitProcessing: split, Memo: testMemoConfig(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rt.Initial(genSplits(0, 16, 30, 5)); err != nil {
			t.Fatal(err)
		}
		return rt
	}
	plain := mkRT(false)
	split := mkRT(true)
	add := genSplits(16, 2, 30, 5)
	pr, err := plain.Advance(2, add)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := split.Advance(2, add)
	if err != nil {
		t.Fatal(err)
	}
	wantSameOutput(t, sr.Output, pr.Output)
	if sr.Background.Work == 0 {
		t.Fatal("split mode recorded no background work")
	}
	if pr.Background.Work != 0 {
		t.Fatal("plain mode recorded background work")
	}
	// Foreground contraction merges: split mode does exactly 1 merge per
	// partition; plain mode does height merges per partition.
	if sr.TreeStats.Merges >= pr.TreeStats.Merges {
		t.Fatalf("split foreground merges (%d) should be below plain (%d)",
			sr.TreeStats.Merges, pr.TreeStats.Merges)
	}
}

func TestGCReclaimsOutOfWindowState(t *testing.T) {
	job := wordCountJob()
	rt, err := New(job, Config{Mode: Fixed, BucketSplits: 1, WindowBuckets: 4, Memo: testMemoConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Initial(genSplits(0, 4, 5, 9)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := rt.Advance(1, genSplits(4+i, 1, 5, 9)); err != nil {
			t.Fatal(err)
		}
	}
	st := rt.Store().Stats()
	if st.Evicted == 0 {
		t.Fatal("GC never evicted out-of-window map outputs")
	}
	// Only the live window's map outputs and the per-partition root-path
	// entries remain.
	want := int64(4 + rt.parts)
	if st.Entries > want {
		t.Fatalf("store holds %d entries, want ≤ %d (window + partitions)", st.Entries, want)
	}
}

func TestNodeFailureDoesNotAffectOutput(t *testing.T) {
	job := wordCountJob()
	rt, err := New(job, Config{Mode: Variable, Memo: testMemoConfig()})
	if err != nil {
		t.Fatal(err)
	}
	window := genSplits(0, 8, 5, 13)
	if _, err := rt.Initial(window); err != nil {
		t.Fatal(err)
	}
	// Crash every node's RAM: reads fall back to replicas; output of the
	// next incremental run must be unaffected.
	for n := 0; n < 4; n++ {
		rt.Store().FailNode(n)
		rt.Store().RecoverNode(n)
	}
	add := genSplits(8, 2, 5, 13)
	res, err := rt.Advance(3, add)
	if err != nil {
		t.Fatal(err)
	}
	window = append(window[3:], add...)
	wantSameOutput(t, res.Output, scratch(t, job, window))
}

func TestSpaceAccountingGrowsWithWindow(t *testing.T) {
	job := wordCountJob()
	small, err := New(job, Config{Mode: Variable, Memo: testMemoConfig()})
	if err != nil {
		t.Fatal(err)
	}
	big, err := New(job, Config{Mode: Variable, Memo: testMemoConfig()})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := small.Initial(genSplits(0, 4, 10, 21))
	if err != nil {
		t.Fatal(err)
	}
	rb, err := big.Initial(genSplits(0, 32, 10, 21))
	if err != nil {
		t.Fatal(err)
	}
	if rb.SpaceBytes <= rs.SpaceBytes {
		t.Fatalf("space for 32 splits (%d) should exceed 4 splits (%d)", rb.SpaceBytes, rs.SpaceBytes)
	}
}

func TestConfigValidation(t *testing.T) {
	job := wordCountJob()
	if _, err := New(job, Config{}); err != ErrBadMode {
		t.Fatalf("missing mode: err = %v", err)
	}
	if _, err := New(job, Config{Mode: Fixed}); err != ErrBadBuckets {
		t.Fatalf("missing buckets: err = %v", err)
	}
	if _, err := New(nil, Config{Mode: Append}); err == nil {
		t.Fatal("nil job accepted")
	}
}

func TestRuntimeStats(t *testing.T) {
	job := wordCountJob()
	rt, err := New(job, Config{Mode: Variable, Memo: testMemoConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if s := rt.Stats(); s.Runs != 0 {
		t.Fatalf("fresh runtime reports %d runs", s.Runs)
	}
	if _, err := rt.Initial(genSplits(0, 4, 4, 7)); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Advance(1, genSplits(4, 2, 4, 7)); err != nil {
		t.Fatal(err)
	}
	s := rt.Stats()
	if s.Runs != 2 {
		t.Fatalf("runs = %d, want 2", s.Runs)
	}
	if s.LiveSplits != 5 || s.WindowLo != 1 {
		t.Fatalf("window bookkeeping: %+v", s)
	}
	if s.TreeStats.Merges == 0 {
		t.Fatal("no tree work recorded")
	}
	if s.Memo.Entries == 0 {
		t.Fatal("no memoized entries")
	}
}

func TestUserDefinedGCPolicy(t *testing.T) {
	job := wordCountJob()
	cfg := Config{
		Mode: Variable,
		Memo: testMemoConfig(),
		// Aggressive policy: evict every memoized map output.
		GCPolicy: func(key string, _, _ uint64, _ int64) bool {
			return len(key) > 4 && key[:4] == "map:"
		},
	}
	rt, err := New(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	window := genSplits(0, 6, 4, 7)
	if _, err := rt.Initial(window); err != nil {
		t.Fatal(err)
	}
	add := genSplits(6, 2, 4, 7)
	res, err := rt.Advance(2, add)
	if err != nil {
		t.Fatal(err)
	}
	window = append(window[2:], add...)
	// Correctness is unaffected (GC only evicts memoized state)…
	wantSameOutput(t, res.Output, scratch(t, job, window))
	// …and the aggressive policy leaves no map outputs resident; only the
	// per-partition root-path entries survive.
	if n := rt.Store().Stats().Entries; n != int64(rt.parts) {
		t.Fatalf("store holds %d entries after aggressive GC, want %d", n, rt.parts)
	}
}
