package sliderrt

import "sync/atomic"

// This file is the out-of-order observability surface. The Runtime is
// not safe for concurrent use, but /metrics scrapes from an arbitrary
// goroutine — so the bucket-ledger gauges are published into atomics at
// the points where the ledger is quiescent (slide end, checkpoint
// restore) and the late-arrival counters are atomics outright. A scrape
// therefore always sees a consistent post-slide view and never races a
// slide mutating bucketSizes in place.

// WindowStats is a concurrent-read-safe snapshot of the window's
// out-of-order state.
type WindowStats struct {
	// LiveBuckets is the bucket-ledger width: live window buckets,
	// including late-inserted ones (0 for in-order backends, which keep
	// no ledger).
	LiveBuckets int
	// WatermarkLag is how many buckets the effective watermark
	// max(Config.Watermark, bucketSeq−AllowedLateness) trails the newest
	// in-order bucket — the width of the region still open to late
	// arrivals. 0 for in-order backends.
	WatermarkLag uint64
	// LateAccepts counts AdvanceLate calls that landed a late bucket.
	LateAccepts int64
	// LateRejects counts late arrivals refused with ErrTooLate (behind
	// the effective watermark or deeper than AllowedLateness).
	LateRejects int64
}

// windowGauges holds the published values (see file comment).
type windowGauges struct {
	liveBuckets  atomic.Int64
	watermarkLag atomic.Int64
	lateAccepts  atomic.Int64
	lateRejects  atomic.Int64
}

// publishWindowGauges republishes the ledger-derived gauges; called only
// while the ledger is quiescent.
func (rt *Runtime) publishWindowGauges() {
	rt.gauges.liveBuckets.Store(int64(len(rt.bucketSizes)))
	var lag uint64
	if rt.backend == BackendFingerTree {
		eff := rt.cfg.Watermark
		if rt.bucketSeq > uint64(rt.cfg.AllowedLateness) {
			if floor := rt.bucketSeq - uint64(rt.cfg.AllowedLateness); floor > eff {
				eff = floor
			}
		}
		if rt.bucketSeq > eff {
			lag = rt.bucketSeq - eff
		}
	}
	rt.gauges.watermarkLag.Store(int64(lag))
}

// WindowStats returns the out-of-order window gauges. Safe to call
// concurrently with running slides (values are as of the last completed
// slide or restore).
func (rt *Runtime) WindowStats() WindowStats {
	return WindowStats{
		LiveBuckets:  int(rt.gauges.liveBuckets.Load()),
		WatermarkLag: uint64(rt.gauges.watermarkLag.Load()),
		LateAccepts:  rt.gauges.lateAccepts.Load(),
		LateRejects:  rt.gauges.lateRejects.Load(),
	}
}
