package sliderrt

import (
	"testing"

	"slider/internal/mapreduce"
)

// parallelCases enumerates one configuration per tree type, so the
// parallel contraction engine is exercised end-to-end on every window
// mode: coalescing (Append), rotating (Fixed, with and without split
// processing), folding and randomized folding (Variable), and the
// strawman baseline.
func parallelCases() map[string]Config {
	return map[string]Config{
		"append":      {Mode: Append},
		"fixed":       {Mode: Fixed, BucketSplits: 2, WindowBuckets: 8},
		"fixed-split": {Mode: Fixed, BucketSplits: 2, WindowBuckets: 8, SplitProcessing: true},
		"variable":    {Mode: Variable},
		"randomized":  {Mode: Variable, Randomized: true, Seed: 7},
		"strawman":    {Mode: Variable, Engine: Strawman},
	}
}

// runWorkload drives one Initial plus several Advances at the given
// parallelism and returns the fingerprint of every run's output.
func runWorkload(t *testing.T, cfg Config, par int) []uint64 {
	t.Helper()
	cfg.Parallelism = par
	rt, err := New(wordCountJob(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	window := 16
	res, err := rt.Initial(genSplits(0, window, 4, 99))
	if err != nil {
		t.Fatal(err)
	}
	fps := []uint64{mapreduce.FingerprintPayload(mapreduce.Payload(res.Output))}
	next := window
	for step := 0; step < 4; step++ {
		drop, add := 2, 2
		if cfg.Mode == Append {
			drop = 0
		}
		res, err := rt.Advance(drop, genSplits(next, add, 4, 99))
		if err != nil {
			t.Fatal(err)
		}
		next += add
		fps = append(fps, mapreduce.FingerprintPayload(mapreduce.Payload(res.Output)))
	}
	return fps
}

// TestRuntimeParallelismEquivalence checks the user-visible contract of
// the parallel contraction engine: for every tree type, runs at
// Parallelism 1 and Parallelism 8 produce byte-identical outputs
// (fingerprint equality on every run, not just the last). With
// `go test -race` this also drives every tree's concurrent combines,
// shard merging, and the atomic combine counters under the detector.
func TestRuntimeParallelismEquivalence(t *testing.T) {
	for name, cfg := range parallelCases() {
		t.Run(name, func(t *testing.T) {
			seq := runWorkload(t, cfg, 1)
			par := runWorkload(t, cfg, 8)
			if len(seq) != len(par) {
				t.Fatalf("run counts diverge: %d vs %d", len(seq), len(par))
			}
			for i := range seq {
				if seq[i] != par[i] {
					t.Fatalf("run %d: parallel output fingerprint %x, sequential %x", i, par[i], seq[i])
				}
			}
		})
	}
}

// TestRuntimeParallelismCounters checks the deterministic work counters
// are independent of the worker count: combiner calls and recomputed
// nodes must not depend on how the work was scheduled.
func TestRuntimeParallelismCounters(t *testing.T) {
	for name, cfg := range parallelCases() {
		t.Run(name, func(t *testing.T) {
			counters := func(par int) (int64, int64) {
				c := cfg
				c.Parallelism = par
				rt, err := New(wordCountJob(), c)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := rt.Initial(genSplits(0, 16, 4, 5)); err != nil {
					t.Fatal(err)
				}
				drop := 2
				if c.Mode == Append {
					drop = 0
				}
				res, err := rt.Advance(drop, genSplits(16, 2, 4, 5))
				if err != nil {
					t.Fatal(err)
				}
				return res.Report.Counters.CombineCalls, res.TreeStats.NodesRecomputed
			}
			seqCombines, seqNodes := counters(1)
			parCombines, parNodes := counters(8)
			if seqCombines != parCombines {
				t.Fatalf("combine calls diverge: seq %d, par %d", seqCombines, parCombines)
			}
			if seqNodes != parNodes {
				t.Fatalf("recomputed nodes diverge: seq %d, par %d", seqNodes, parNodes)
			}
		})
	}
}

// TestTreeParallelismBudget pins the budget split between partition
// workers and intra-tree workers.
func TestTreeParallelismBudget(t *testing.T) {
	cases := []struct {
		par, parts, want int
	}{
		{8, 2, 4},   // budget left over: trees share it
		{8, 8, 1},   // partitions exhaust the budget
		{2, 8, 1},   // more partitions than budget
		{9, 2, 4},   // integer division
		{1, 1, 1},   // sequential
		{16, 1, 16}, // one partition gets everything
	}
	for _, tc := range cases {
		job := wordCountJob()
		job.Partitions = tc.parts
		rt, err := New(job, Config{Mode: Variable, Parallelism: tc.par})
		if err != nil {
			t.Fatal(err)
		}
		if got := rt.treeParallelism(); got != tc.want {
			t.Fatalf("par=%d parts=%d: treeParallelism = %d, want %d", tc.par, tc.parts, got, tc.want)
		}
	}
}
