package sliderrt

import (
	"strings"
	"testing"

	"slider/internal/metrics"
)

// TestObsInstrumentsSlides runs an observed window and checks every
// instrument fires: slide IDs on results, one observation per run in the
// end-to-end and per-phase histograms, memo read/write latencies, and a
// complete span tree per slide.
func TestObsInstrumentsSlides(t *testing.T) {
	job := wordCountJob()
	obs := metrics.NewSlideObs()
	rt, err := New(job, Config{Mode: Variable, Memo: testMemoConfig(), Obs: obs})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Initial(genSplits(0, 6, 4, 7))
	if err != nil {
		t.Fatal(err)
	}
	if res.SlideID != 1 {
		t.Fatalf("initial SlideID = %d, want 1", res.SlideID)
	}
	const slides = 4
	next := 6
	for i := 0; i < slides; i++ {
		res, err = rt.Advance(1, genSplits(next, 1, 4, 7))
		if err != nil {
			t.Fatal(err)
		}
		next++
		if want := uint64(i + 2); res.SlideID != want {
			t.Fatalf("slide %d SlideID = %d, want %d", i, res.SlideID, want)
		}
	}

	runs := int64(slides + 1)
	if got := obs.Slide.Count(); got != runs {
		t.Errorf("slide histogram count = %d, want %d", got, runs)
	}
	for _, nh := range obs.All() {
		switch nh.Phase {
		case "map", "contract", "reduce":
			if got := nh.Hist.Count(); got != runs {
				t.Errorf("%s phase count = %d, want %d", nh.Phase, got, runs)
			}
		}
	}
	if obs.MemoRead.Count() == 0 || obs.MemoWrite.Count() == 0 {
		t.Errorf("memo latency not observed: reads=%d writes=%d",
			obs.MemoRead.Count(), obs.MemoWrite.Count())
	}

	if got := obs.Tracer.Committed(); got != runs {
		t.Fatalf("tracer committed %d slides, want %d", got, runs)
	}
	spans := obs.Tracer.Recent(1)
	if len(spans) != 1 || spans[0].ID != uint64(runs) {
		t.Fatalf("Recent(1) = %v", spans)
	}
	out := spans[0].Format()
	for _, want := range []string{"map phase", "contract phase", "reduce phase", "partition 0", "slide: drop=1 add=1", "shape: "} {
		if !strings.Contains(out, want) {
			t.Errorf("span trace missing %q:\n%s", want, out)
		}
	}
	if spans[0].Degraded() {
		t.Errorf("healthy slide marked degraded:\n%s", out)
	}
	if obs.Tracer.Active() != nil {
		t.Error("active span not cleared after slide")
	}
}

// TestObsDegradedSlideTrace fails every memo node mid-stream and checks
// the fault-diff attribution: the slide that had to recompute memoized
// state is marked degraded and carries the fault-event delta.
func TestObsDegradedSlideTrace(t *testing.T) {
	job := wordCountJob()
	obs := metrics.NewSlideObs()
	rt, err := New(job, Config{Mode: Variable, Memo: testMemoConfig(), Obs: obs})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Initial(genSplits(0, 6, 4, 7)); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < testMemoConfig().Nodes; n++ {
		rt.Store().FailNode(n)
	}
	if _, err := rt.Advance(1, genSplits(6, 1, 4, 7)); err != nil {
		t.Fatal(err)
	}
	if rt.FaultStats().MemoRecomputes == 0 {
		t.Fatal("expected memo recomputes with every node down")
	}
	spans := obs.Tracer.Recent(1)
	if len(spans) != 1 {
		t.Fatal("degraded slide not recorded")
	}
	if !spans[0].Degraded() {
		t.Fatalf("slide with recomputes not marked degraded:\n%s", spans[0].Format())
	}
	out := spans[0].Format()
	if !strings.Contains(out, "faults: memo-recomputes=") {
		t.Fatalf("trace missing fault delta:\n%s", out)
	}
	if !strings.Contains(out, "[DEGRADED]") {
		t.Fatalf("format missing degraded mark:\n%s", out)
	}
}

// TestTreeSnapshotPublish covers the request-flag protocol: a snapshot
// appears after the first slide, goes stale while nobody polls, and
// refreshes on the slide after a poll.
func TestTreeSnapshotPublish(t *testing.T) {
	job := wordCountJob()
	rt, err := New(job, Config{Mode: Fixed, BucketSplits: 2, WindowBuckets: 4, Memo: testMemoConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if rt.TreeSnapshot() != nil {
		t.Fatal("snapshot before any slide")
	}
	if _, err := rt.Initial(genSplits(0, 8, 4, 7)); err != nil {
		t.Fatal(err)
	}
	// The poll above left a pending request, so the initial run published.
	snap := rt.TreeSnapshot()
	if snap == nil || snap.SlideID != 1 {
		t.Fatalf("snapshot after initial = %+v", snap)
	}
	if snap.Mode != "F" || snap.Variant != "daba" {
		t.Fatalf("snapshot mode/variant = %q/%q", snap.Mode, snap.Variant)
	}
	if len(snap.Partitions) != job.Partitions {
		t.Fatalf("%d partition shapes, want %d", len(snap.Partitions), job.Partitions)
	}
	if snap.Live != 8 || snap.Fingerprint == 0 {
		t.Fatalf("snapshot = %+v", snap)
	}

	// That poll requested a refresh; the next slide publishes slide 2.
	if _, err := rt.Advance(2, genSplits(8, 2, 4, 7)); err != nil {
		t.Fatal(err)
	}
	// No poll happened since publishing: a further slide must NOT rebuild.
	if _, err := rt.Advance(2, genSplits(10, 2, 4, 7)); err != nil {
		t.Fatal(err)
	}
	snap = rt.TreeSnapshot()
	if snap.SlideID != 2 {
		t.Fatalf("unpolled snapshot advanced to slide %d, want stale slide 2", snap.SlideID)
	}
	// Now a request is pending again: the next slide refreshes.
	if _, err := rt.Advance(2, genSplits(12, 2, 4, 7)); err != nil {
		t.Fatal(err)
	}
	if snap = rt.TreeSnapshot(); snap.SlideID != 4 {
		t.Fatalf("snapshot after poll = slide %d, want 4", snap.SlideID)
	}
	if snap.MemoHits == 0 {
		t.Fatal("no memo hits after three slides")
	}
	if r := snap.HitRatio(); r <= 0 || r > 1 {
		t.Fatalf("hit ratio = %v", r)
	}
}

// TestTreeSnapshotFingerprintAgrees: two runtimes that processed the same
// window report the same fingerprint — the sim harness's differential
// oracle, exposed to operators.
func TestTreeSnapshotFingerprintAgrees(t *testing.T) {
	job := wordCountJob()
	run := func() *TreeSnapshot {
		rt, err := New(job, Config{Mode: Variable, Memo: testMemoConfig()})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rt.Initial(genSplits(0, 6, 4, 7)); err != nil {
			t.Fatal(err)
		}
		if _, err := rt.Advance(2, genSplits(6, 2, 4, 7)); err != nil {
			t.Fatal(err)
		}
		snap := rt.TreeSnapshot()
		if snap == nil {
			t.Fatal("no snapshot")
		}
		return snap
	}
	a, b := run(), run()
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("fingerprints disagree: %016x vs %016x", a.Fingerprint, b.Fingerprint)
	}
	// A different window disagrees (with overwhelming probability).
	rt, err := New(job, Config{Mode: Variable, Memo: testMemoConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Initial(genSplits(0, 6, 4, 99)); err != nil {
		t.Fatal(err)
	}
	if c := rt.TreeSnapshot(); c.Fingerprint == a.Fingerprint {
		t.Fatal("different windows fingerprint equal")
	}
}

// TestObsNilIsInert: with Config.Obs unset the runtime still stamps slide
// IDs and publishes tree snapshots, and nothing panics.
func TestObsNilIsInert(t *testing.T) {
	rt, err := New(wordCountJob(), Config{Mode: Variable, Memo: testMemoConfig()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Initial(genSplits(0, 4, 4, 7))
	if err != nil {
		t.Fatal(err)
	}
	if res.SlideID != 1 {
		t.Fatalf("SlideID = %d, want 1", res.SlideID)
	}
	if rt.Observability() != nil {
		t.Fatal("Observability non-nil without Config.Obs")
	}
	if rt.TreeSnapshot() == nil {
		t.Fatal("tree snapshot unavailable without Obs")
	}
}

// TestObsSampledSlides: with 1-in-2 sampling, half the slides commit
// traces but every slide still lands in the histograms.
func TestObsSampledSlides(t *testing.T) {
	obs := metrics.NewSlideObs()
	obs.Tracer.SetMode(metrics.TraceSampled, 2)
	rt, err := New(wordCountJob(), Config{Mode: Variable, Memo: testMemoConfig(), Obs: obs})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Initial(genSplits(0, 4, 4, 7)); err != nil {
		t.Fatal(err)
	}
	next := 4
	for i := 0; i < 5; i++ {
		if _, err := rt.Advance(1, genSplits(next, 1, 4, 7)); err != nil {
			t.Fatal(err)
		}
		next++
	}
	if got := obs.Slide.Count(); got != 6 {
		t.Fatalf("histogram count = %d, want 6 (sampling must not skip histograms)", got)
	}
	if got := obs.Tracer.Committed(); got != 3 {
		t.Fatalf("committed traces = %d, want 3 (1-in-2 of 6)", got)
	}
}
