package sliderrt

import (
	"reflect"
	"sync"

	"slider/internal/mapreduce"
)

// payloadSizes memoizes mapreduce.PayloadBytes per payload identity.
//
// Contraction trees hand the same immutable payload maps back run after
// run: spaceBytes walks every memoized tree node at the end of every run,
// and each run's root payloads are sized several times (contraction-task
// accounting, the state-read charge, reduce input bytes). Without a
// cache, all of that re-measures payloads that cannot have changed —
// O(window state) of pure recomputation per run. With it, an unchanged
// payload is measured once and then looked up by the identity of its map.
//
// Identity and safety: the cache keys on the payload map's pointer
// (maps are reference types; the pointer is stable for the map's
// lifetime) TOGETHER WITH its length. Each entry retains the payload
// itself, so the address cannot be recycled for a different map while
// its entry is live — a bare uintptr key without the pinned reference
// could go stale after a GC cycle. The length guards against the common
// in-place mutation a pointer-only key would miss: a caller that clears
// and refills the same map (pooled reuse) leaves the address unchanged
// but almost always changes the entry count, so the (pointer, len) pair
// misses and re-measures, and the stale entry for the old length ages
// out at the next prune.
//
// LIMITATION: the composite key is hardening, not a mutation detector.
// Refilling a map in place with the SAME number of entries but
// different-sized keys or values leaves both key components unchanged
// and serves the stale size until the entry is pruned. That usage
// violates the payload immutability contract the runtime already
// requires (CheckJob property-tests it: payloads handed to the combiner
// must never be mutated afterward), so the cache does not attempt to
// detect it — a caller needing in-place reuse must allocate fresh maps
// instead. prune() drops every entry not used since the previous prune,
// bounding the cache to roughly the live window; the runtime prunes
// once per run after the whole-state walk.
//
// The cache is safe for concurrent use: partition workers size their
// roots concurrently under forEachPartition.
type payloadSizes struct {
	mu   sync.Mutex
	cur  map[sizeKey]sizeEntry
	seen map[sizeKey]struct{}
}

// sizeKey identifies one payload generation: the map's address plus its
// entry count at measurement time.
type sizeKey struct {
	ptr uintptr
	n   int
}

type sizeEntry struct {
	p     Payload // pins the map so its address cannot be reused
	bytes int64
}

func newPayloadSizes() *payloadSizes {
	return &payloadSizes{
		cur:  make(map[sizeKey]sizeEntry),
		seen: make(map[sizeKey]struct{}),
	}
}

// bytes returns PayloadBytes(job, p), served from the cache when p was
// measured before, and marks the entry as live for the next prune.
func (c *payloadSizes) bytes(job *mapreduce.Job, p Payload) int64 {
	if len(p) == 0 {
		return 0
	}
	key := sizeKey{ptr: reflect.ValueOf(p).Pointer(), n: len(p)}
	c.mu.Lock()
	if e, ok := c.cur[key]; ok {
		c.seen[key] = struct{}{}
		c.mu.Unlock()
		return e.bytes
	}
	c.mu.Unlock()
	n := mapreduce.PayloadBytes(job, p)
	c.mu.Lock()
	c.cur[key] = sizeEntry{p: p, bytes: n}
	c.seen[key] = struct{}{}
	c.mu.Unlock()
	return n
}

// prune evicts entries not used since the previous prune. The runtime
// calls it after each run's whole-state walk, so everything still
// reachable from a tree was just marked and survives.
func (c *payloadSizes) prune() {
	c.mu.Lock()
	for key := range c.cur {
		if _, ok := c.seen[key]; !ok {
			delete(c.cur, key)
		}
	}
	c.seen = make(map[sizeKey]struct{}, len(c.cur))
	c.mu.Unlock()
}

// len reports the number of cached payload sizes (for tests).
func (c *payloadSizes) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.cur)
}
