package sliderrt

import (
	"testing"
	"time"

	"slider/internal/mapreduce"
	"slider/internal/metrics"
)

// benchmarkSlides measures steady-state Advance latency with the given
// instrumentation bundle (nil = the Config.Obs-unset path).
func benchmarkSlides(b *testing.B, obs *metrics.SlideObs) {
	job := wordCountJob()
	rt, err := New(job, Config{Mode: Variable, Memo: testMemoConfig(), Obs: obs})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := rt.Initial(genSplits(0, 8, 4, 7)); err != nil {
		b.Fatal(err)
	}
	adds := make([][]mapreduce.Split, b.N)
	for i := range adds {
		adds[i] = genSplits(8+i, 1, 4, 7)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Advance(1, adds[i]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSlideObsNone(b *testing.B) { benchmarkSlides(b, nil) }

func BenchmarkSlideObsOff(b *testing.B) {
	obs := metrics.NewSlideObs()
	obs.Tracer.SetMode(metrics.TraceOff, 0)
	benchmarkSlides(b, obs)
}

func BenchmarkSlideObsSampled(b *testing.B) {
	obs := metrics.NewSlideObs()
	obs.Tracer.SetMode(metrics.TraceSampled, 16)
	benchmarkSlides(b, obs)
}

func BenchmarkSlideObsFull(b *testing.B) { benchmarkSlides(b, metrics.NewSlideObs()) }

// TestObsOffOverhead pins the acceptance bound: with tracing off, the
// instrumented slide path (histogram observations, nil-span checks, the
// snapshot request check) must cost < 2% over running with no Obs at all.
// Min-of-k timing over interleaved rounds suppresses scheduler noise.
func TestObsOffOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped in -short")
	}
	job := wordCountJob()
	const slides = 200
	initial := genSplits(0, 8, 4, 7)
	adds := make([][]mapreduce.Split, slides)
	for i := range adds {
		adds[i] = genSplits(8+i, 1, 4, 7)
	}

	run := func(obs *metrics.SlideObs) time.Duration {
		rt, err := New(job, Config{Mode: Variable, Memo: testMemoConfig(), Obs: obs})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rt.Initial(initial); err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		for i := 0; i < slides; i++ {
			if _, err := rt.Advance(1, adds[i]); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}
	offObs := func() *metrics.SlideObs {
		o := metrics.NewSlideObs()
		o.Tracer.SetMode(metrics.TraceOff, 0)
		return o
	}

	run(nil) // warm-up: page in code and memo structures
	run(offObs())
	measure := func(rounds int) (none, off time.Duration) {
		none, off = time.Duration(1<<62), time.Duration(1<<62)
		for r := 0; r < rounds; r++ { // interleaved so drift hits both arms
			if d := run(nil); d < none {
				none = d
			}
			if d := run(offObs()); d < off {
				off = d
			}
		}
		return none, off
	}
	none, off := measure(5)
	ratio := float64(off) / float64(none)
	if ratio > 1.02 {
		// One retry with more rounds before declaring a regression: a
		// single noisy run must not fail CI, a real regression will.
		none, off = measure(10)
		ratio = float64(off) / float64(none)
	}
	t.Logf("obs-off overhead: none=%v off=%v ratio=%.4f", none, off, ratio)
	if ratio > 1.02 {
		t.Fatalf("tracing-off overhead %.2f%% exceeds the 2%% budget (none=%v off=%v)",
			(ratio-1)*100, none, off)
	}
}
