package sliderrt

import (
	"testing"
	"time"

	"slider/internal/mapreduce"
	"slider/internal/metrics"
)

// obsBenchBackends are the backend configurations the tracing-off
// overhead bound is pinned on: the Variable-mode folding tree (the
// original pin), the Fixed-mode O(1) DABA fast path, the rotating
// contraction tree, and the out-of-order finger tree. Each returns a
// fresh Config because New mutates some knobs in place.
func obsBenchBackends() []struct {
	name string
	cfg  func() Config
} {
	return []struct {
		name string
		cfg  func() Config
	}{
		{"folding", func() Config {
			return Config{Mode: Variable, Memo: testMemoConfig()}
		}},
		{"daba", func() Config {
			return Config{Mode: Fixed, BucketSplits: 1, WindowBuckets: 8, Memo: testMemoConfig()}
		}},
		{"rotating", func() Config {
			return Config{Mode: Fixed, Backend: BackendRotating, BucketSplits: 1, WindowBuckets: 8, Memo: testMemoConfig()}
		}},
		{"fingertree", func() Config {
			return Config{Mode: Fixed, BucketSplits: 1, WindowBuckets: 8, AllowedLateness: 1, Memo: testMemoConfig()}
		}},
	}
}

// benchmarkSlides measures steady-state Advance latency on cfg with the
// given instrumentation bundle (nil = the Config.Obs-unset path).
func benchmarkSlides(b *testing.B, cfg Config, obs *metrics.SlideObs) {
	job := wordCountJob()
	cfg.Obs = obs
	rt, err := New(job, cfg)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := rt.Initial(genSplits(0, 8, 4, 7)); err != nil {
		b.Fatal(err)
	}
	adds := make([][]mapreduce.Split, b.N)
	for i := range adds {
		adds[i] = genSplits(8+i, 1, 4, 7)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Advance(1, adds[i]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSlideObs runs <backend>/<level> sub-benchmarks over every
// pinned backend and instrumentation level.
func BenchmarkSlideObs(b *testing.B) {
	offObs := func() *metrics.SlideObs {
		o := metrics.NewSlideObs()
		o.Tracer.SetMode(metrics.TraceOff, 0)
		return o
	}
	sampledObs := func() *metrics.SlideObs {
		o := metrics.NewSlideObs()
		o.Tracer.SetMode(metrics.TraceSampled, 16)
		return o
	}
	for _, be := range obsBenchBackends() {
		be := be
		b.Run(be.name, func(b *testing.B) {
			b.Run("None", func(b *testing.B) { benchmarkSlides(b, be.cfg(), nil) })
			b.Run("Off", func(b *testing.B) { benchmarkSlides(b, be.cfg(), offObs()) })
			b.Run("Sampled", func(b *testing.B) { benchmarkSlides(b, be.cfg(), sampledObs()) })
			b.Run("Full", func(b *testing.B) { benchmarkSlides(b, be.cfg(), metrics.NewSlideObs()) })
		})
	}
}

// TestObsOffOverhead pins the acceptance bound on every backend: with
// tracing off, the instrumented slide path (histogram observations,
// nil-span checks, the snapshot request check) must cost < 2% over
// running with no Obs at all. Min-of-k timing over interleaved rounds
// suppresses scheduler noise.
func TestObsOffOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped in -short")
	}
	job := wordCountJob()
	const slides = 400
	initial := genSplits(0, 8, 4, 7)
	adds := make([][]mapreduce.Split, slides)
	for i := range adds {
		adds[i] = genSplits(8+i, 1, 4, 7)
	}

	for _, be := range obsBenchBackends() {
		be := be
		t.Run(be.name, func(t *testing.T) {
			run := func(obs *metrics.SlideObs) time.Duration {
				cfg := be.cfg()
				cfg.Obs = obs
				rt, err := New(job, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := rt.Initial(initial); err != nil {
					t.Fatal(err)
				}
				start := time.Now()
				for i := 0; i < slides; i++ {
					if _, err := rt.Advance(1, adds[i]); err != nil {
						t.Fatal(err)
					}
				}
				return time.Since(start)
			}
			offObs := func() *metrics.SlideObs {
				o := metrics.NewSlideObs()
				o.Tracer.SetMode(metrics.TraceOff, 0)
				return o
			}

			run(nil) // warm-up: page in code and memo structures
			run(offObs())
			measure := func(rounds int) (none, off time.Duration) {
				none, off = time.Duration(1<<62), time.Duration(1<<62)
				for r := 0; r < rounds; r++ { // interleaved so drift hits both arms
					if d := run(nil); d < none {
						none = d
					}
					if d := run(offObs()); d < off {
						off = d
					}
				}
				return none, off
			}
			none, off := measure(5)
			ratio := float64(off) / float64(none)
			for retries := 0; ratio > 1.02 && retries < 2; retries++ {
				// Retry with more rounds before declaring a regression: a
				// noisy run must not fail CI, a real regression will keep
				// reproducing.
				none, off = measure(10)
				ratio = float64(off) / float64(none)
			}
			t.Logf("%s obs-off overhead: none=%v off=%v ratio=%.4f", be.name, none, off, ratio)
			if ratio > 1.02 {
				t.Fatalf("%s: tracing-off overhead %.2f%% exceeds the 2%% budget (none=%v off=%v)",
					be.name, (ratio-1)*100, none, off)
			}
		})
	}
}
