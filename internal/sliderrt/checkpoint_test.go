package sliderrt

import (
	"bytes"
	"strings"
	"testing"

	"slider/internal/persist"
)

// checkpointRoundTrip drives a runtime halfway through a slide schedule,
// checkpoints it, restores into a fresh runtime, finishes the schedule on
// both, and requires identical outputs.
func checkpointRoundTrip(t *testing.T, cfg Config, initial int, firstHalf, secondHalf []slide) {
	t.Helper()
	job := wordCountJob()
	cfg.Memo = testMemoConfig()
	original, err := New(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	window := genSplits(0, initial, 4, 7)
	next := initial
	if _, err := original.Initial(window); err != nil {
		t.Fatal(err)
	}
	for _, s := range firstHalf {
		add := genSplits(next, s.add, 4, 7)
		next += s.add
		if _, err := original.Advance(s.drop, add); err != nil {
			t.Fatal(err)
		}
		window = append(window[s.drop:], add...)
	}

	var buf bytes.Buffer
	if err := original.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(wordCountJob(), cfg, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Live() != original.Live() || restored.WindowLo() != original.WindowLo() {
		t.Fatalf("window bookkeeping mismatch: live %d/%d lo %d/%d",
			restored.Live(), original.Live(), restored.WindowLo(), original.WindowLo())
	}

	for i, s := range secondHalf {
		add := genSplits(next, s.add, 4, 7)
		next += s.add
		origRes, err := original.Advance(s.drop, add)
		if err != nil {
			t.Fatalf("original slide %d: %v", i, err)
		}
		restRes, err := restored.Advance(s.drop, add)
		if err != nil {
			t.Fatalf("restored slide %d: %v", i, err)
		}
		window = append(window[s.drop:], add...)
		wantSameOutput(t, restRes.Output, origRes.Output)
		wantSameOutput(t, restRes.Output, scratch(t, job, window))
	}
}

func TestCheckpointAppend(t *testing.T) {
	checkpointRoundTrip(t, Config{Mode: Append}, 4,
		[]slide{{0, 2}, {0, 1}}, []slide{{0, 3}, {0, 2}})
}

func TestCheckpointAppendSplitProcessing(t *testing.T) {
	checkpointRoundTrip(t, Config{Mode: Append, SplitProcessing: true}, 4,
		[]slide{{0, 2}}, []slide{{0, 1}, {0, 2}})
}

func TestCheckpointFixed(t *testing.T) {
	cfg := Config{Mode: Fixed, BucketSplits: 2, WindowBuckets: 4}
	checkpointRoundTrip(t, cfg, 8,
		[]slide{{2, 2}, {2, 2}}, []slide{{2, 2}, {4, 4}})
}

func TestCheckpointFixedSplitProcessing(t *testing.T) {
	cfg := Config{Mode: Fixed, BucketSplits: 2, WindowBuckets: 4, SplitProcessing: true}
	checkpointRoundTrip(t, cfg, 8,
		[]slide{{2, 2}}, []slide{{2, 2}, {2, 2}})
}

func TestCheckpointVariableFolding(t *testing.T) {
	checkpointRoundTrip(t, Config{Mode: Variable}, 8,
		[]slide{{3, 1}, {0, 5}}, []slide{{6, 2}, {1, 0}})
}

func TestCheckpointVariableRandomized(t *testing.T) {
	checkpointRoundTrip(t, Config{Mode: Variable, Randomized: true, Seed: 11}, 8,
		[]slide{{3, 1}}, []slide{{0, 5}, {6, 2}})
}

func TestCheckpointStrawman(t *testing.T) {
	checkpointRoundTrip(t, Config{Mode: Variable, Engine: Strawman}, 8,
		[]slide{{3, 1}}, []slide{{0, 4}})
}

func TestCheckpointBeforeInitial(t *testing.T) {
	rt, err := New(wordCountJob(), Config{Mode: Append, Memo: testMemoConfig()})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rt.Checkpoint(&buf); err != ErrNotInitial {
		t.Fatalf("err = %v, want ErrNotInitial", err)
	}
}

func TestRestoreConfigMismatch(t *testing.T) {
	job := wordCountJob()
	cfg := Config{Mode: Append, Memo: testMemoConfig()}
	rt, err := New(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Initial(genSplits(0, 4, 4, 7)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rt.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	wrong := Config{Mode: Variable, Memo: testMemoConfig()}
	if _, err := Restore(wordCountJob(), wrong, bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("mode mismatch accepted")
	}

	// Partition-count mismatch.
	otherJob := wordCountJob()
	otherJob.Partitions = 5
	if _, err := Restore(otherJob, cfg, bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("partition mismatch accepted")
	}
}

func TestRestoreCorruptData(t *testing.T) {
	job := wordCountJob()
	cfg := Config{Mode: Append, Memo: testMemoConfig()}
	rt, err := New(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Initial(genSplits(0, 4, 4, 7)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rt.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)-1] ^= 0xff
	if _, err := Restore(wordCountJob(), cfg, bytes.NewReader(data)); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
	if _, err := Restore(wordCountJob(), cfg, strings.NewReader("junk")); err == nil {
		t.Fatal("junk checkpoint accepted")
	}
}

// TestRestoreLegacyFixedCheckpointIntoDaba replays the pre-backend
// checkpoint layout: version-1 frames with no Backend field decode as
// BackendAuto, and their Fixed-mode Buckets are in rotating leaf-position
// order with a Victim cursor marking the oldest bucket. An auto config
// now resolves those restores to the DABA backend, which expects window
// order — the buckets must be rotated by Victim first, or every later
// slide evicts the wrong bucket and silently corrupts the aggregate.
func TestRestoreLegacyFixedCheckpointIntoDaba(t *testing.T) {
	job := wordCountJob()
	cfg := Config{Mode: Fixed, BucketSplits: 2, WindowBuckets: 4, Memo: testMemoConfig()}
	rotCfg := cfg
	rotCfg.Backend = BackendRotating
	original, err := New(job, rotCfg)
	if err != nil {
		t.Fatal(err)
	}
	window := genSplits(0, 8, 4, 7)
	next := 8
	if _, err := original.Initial(window); err != nil {
		t.Fatal(err)
	}
	// Three one-bucket slides leave the rotating victim cursor at 3: a
	// legacy frame restored without rotation is maximally mis-ordered.
	for _, s := range []slide{{2, 2}, {2, 2}, {2, 2}} {
		add := genSplits(next, s.add, 4, 7)
		next += s.add
		if _, err := original.Advance(s.drop, add); err != nil {
			t.Fatal(err)
		}
		window = append(window[s.drop:], add...)
	}

	var buf bytes.Buffer
	if err := original.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	var st checkpointState
	if err := persist.Decode(buf.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Backend != BackendRotating {
		t.Fatalf("checkpoint backend = %v, want %v", st.Backend, BackendRotating)
	}
	victims := 0
	for _, pc := range st.Partitions {
		if pc.Victim != 0 {
			victims++
		}
	}
	if victims == 0 {
		t.Fatal("test needs a nonzero victim cursor to exercise the rotation")
	}
	// A pre-backend frame has no Backend field, which gob decodes as the
	// zero value: BackendAuto.
	st.Backend = BackendAuto
	frame, err := persist.Encode(st)
	if err != nil {
		t.Fatal(err)
	}

	restored, err := Restore(wordCountJob(), cfg, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	if got := restored.Backend(); got != BackendDaba {
		t.Fatalf("restored backend = %v, want %v", got, BackendDaba)
	}
	for i, s := range []slide{{2, 2}, {2, 2}, {4, 4}, {2, 2}} {
		add := genSplits(next, s.add, 4, 7)
		next += s.add
		res, err := restored.Advance(s.drop, add)
		if err != nil {
			t.Fatalf("restored slide %d: %v", i, err)
		}
		window = append(window[s.drop:], add...)
		wantSameOutput(t, res.Output, scratch(t, job, window))
	}
}

// TestRestoreLegacyVictimOutOfRange rejects a legacy frame whose Victim
// cursor does not address a bucket instead of restoring a garbled window.
func TestRestoreLegacyVictimOutOfRange(t *testing.T) {
	job := wordCountJob()
	cfg := Config{Mode: Fixed, BucketSplits: 2, WindowBuckets: 4, Memo: testMemoConfig()}
	rotCfg := cfg
	rotCfg.Backend = BackendRotating
	rt, err := New(job, rotCfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Initial(genSplits(0, 8, 4, 7)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rt.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	var st checkpointState
	if err := persist.Decode(buf.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	st.Backend = BackendAuto
	for p := range st.Partitions {
		buckets, err := persist.DecodePayloadSet(st.Partitions[p].FlatBuckets)
		if err != nil {
			t.Fatal(err)
		}
		st.Partitions[p].Victim = len(buckets)
	}
	frame, err := persist.Encode(st)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(wordCountJob(), cfg, bytes.NewReader(frame)); err == nil {
		t.Fatal("out-of-range victim accepted")
	}
}

func TestRestoredRuntimeRejectsReinitialize(t *testing.T) {
	job := wordCountJob()
	cfg := Config{Mode: Append, Memo: testMemoConfig()}
	rt, err := New(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Initial(genSplits(0, 4, 4, 7)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rt.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(wordCountJob(), cfg, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := restored.Initial(genSplits(99, 4, 4, 7)); err != ErrReinitialize {
		t.Fatalf("err = %v, want ErrReinitialize", err)
	}
}
