// Package sliderrt is the Slider runtime: it drives a user's
// non-incremental MapReduce job through initial and incremental sliding
// window runs, wiring the self-adjusting contraction trees of
// internal/core into the reduce phase, memoizing state in the
// fault-tolerant cache of internal/memo, and recording measured task
// costs for the cluster simulator.
//
// The runtime implements Algorithm 1 of the paper: new input is handled
// by fresh map tasks, the delta (−δ, +δ) is propagated through the
// contraction tree of each reduce partition, and the window is adjusted
// for the next run.
package sliderrt

import (
	"errors"
	"fmt"

	"slider/internal/mapreduce"
	"slider/internal/memo"
	"slider/internal/metrics"
)

// Mode selects the sliding-window variant, which in turn selects the
// contraction-tree data structure (§3–§4).
type Mode int

// Window modes.
const (
	// Append is the append-only (bulk-appended) mode: the window only
	// grows. Uses coalescing contraction trees (§4.2).
	Append Mode = iota + 1
	// Fixed is the fixed-width mode: every slide drops exactly as many
	// splits as it adds. Served by the DABA Lite O(1) queue or the
	// rotating contraction tree (§4.1) — see Backend.
	Fixed
	// Variable is the general mode: the window may shrink and grow by
	// arbitrary, different amounts. Uses folding trees (§3.1) or
	// randomized folding trees (§3.2).
	Variable
)

// String returns the mode letter used in the paper's figures.
func (m Mode) String() string {
	switch m {
	case Append:
		return "A"
	case Fixed:
		return "F"
	case Variable:
		return "V"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Engine selects between the self-adjusting contraction trees and the
// memoization-only strawman baseline of §2 (compared in Figure 8).
type Engine int

// Engines.
const (
	// SelfAdjusting uses the window-appropriate self-adjusting tree.
	SelfAdjusting Engine = iota + 1
	// Strawman uses the memoized balanced binary tree of §2.
	Strawman
)

// Config configures a Runtime.
type Config struct {
	// Mode is the sliding-window variant. Required.
	Mode Mode
	// Engine selects self-adjusting trees (default) or the strawman.
	Engine Engine
	// Randomized switches Variable mode to the randomized folding tree
	// of §3.2.
	Randomized bool
	// Backend overrides the automatic backend selection (see the Backend
	// type's selection matrix). The zero value, BackendAuto, resolves to
	// the cheapest structure legal for the mode and the job's declared
	// combiner properties — for fixed-width in-order windows without
	// split processing that is the DABA Lite O(1) aggregator. An
	// explicit backend incompatible with the mode or combiner makes New
	// fail with ErrBadBackend.
	Backend Backend
	// SwitchHook, when set on a Fixed-mode runtime, is consulted after
	// every completed slide with the current backend and a snapshot of
	// the contract-phase latency histogram (Obs.Contract; zero-valued
	// when Obs is nil). Returning a different backend asks the runtime
	// to switch live between BackendDaba and BackendRotating; the window
	// state carries over and the switch is skipped when the target is
	// illegal for the job. Any other return value is ignored.
	SwitchHook func(cur Backend, contract metrics.HistogramSnapshot) Backend
	// SplitProcessing enables the background pre-processing of §4 for
	// Append and Fixed modes.
	SplitProcessing bool
	// AllowedLateness admits out-of-order arrivals on Fixed-mode windows:
	// a late record may land up to AllowedLateness buckets behind the
	// newest bucket (AdvanceLate). Any positive value marks the job
	// out-of-order and routes backend selection to the finger tree — the
	// only structure whose window a late record can enter mid-sequence —
	// so an explicit conflicting Backend fails with ErrBadBackend.
	// Arrivals older than the allowance are refused with ErrTooLate: the
	// effective low watermark is max(Watermark, newest bucket sequence −
	// AllowedLateness).
	AllowedLateness int
	// Watermark is the initial low watermark in bucket sequence numbers
	// (buckets ever appended, starting at 0): late records destined for a
	// bucket position below it are refused with ErrTooLate even when they
	// are within AllowedLateness. Zero — the default — trusts
	// AllowedLateness alone.
	Watermark uint64
	// BucketSplits is w, the number of splits per bucket (Fixed mode).
	BucketSplits int
	// WindowBuckets is N, the number of buckets in the window (Fixed
	// mode). The window thus holds N×w splits.
	WindowBuckets int
	// RebuildFactor is the folding tree's rebalance trigger (§3.2);
	// 0 uses the default, negative disables rebuilding.
	RebuildFactor int
	// Parallelism bounds the run's total worker budget: concurrent map
	// tasks, concurrent partition updates, and — when partitions don't
	// exhaust the budget — the intra-tree workers of the parallel
	// contraction engine that recompute one tree level's independent
	// combines concurrently (0 = GOMAXPROCS). Combiners must be pure
	// and alias-free (see mapreduce.CheckJob) for any setting > 1.
	Parallelism int
	// Seed fixes the randomized tree's coin flips.
	Seed uint64
	// Memo configures the memoization layer; zero value uses defaults.
	Memo memo.Config
	// MapRunner overrides where map tasks execute (default: the
	// in-process parallel executor). Set it to a dist.Pool to run map
	// tasks on remote workers.
	MapRunner mapreduce.MapRunner
	// GCPolicy, when set, runs after the automatic out-of-window
	// collection on every slide and may evict additional memoized
	// entries (the paper's "more aggressive user-defined policy", §6).
	// Return true to evict the entry.
	GCPolicy func(key string, lo, hi uint64, size int64) bool
	// DisableLocalFallback turns off the degradation rung that
	// re-executes a map batch in-process when the remote MapRunner cannot
	// finish it (all workers dead or retry budget exhausted). Default
	// off: the runtime degrades rather than failing the slide. Set it
	// only to surface pool failures directly (testing hard-failure
	// handling).
	DisableLocalFallback bool
	// Faults receives the runtime's degradation event counters
	// (local fallbacks, memo recomputes). Share one recorder with
	// dist.PoolConfig.Faults so the whole degradation ladder — remote →
	// retry → hedge → local → recompute — lands in a single snapshot.
	// Nil allocates a private recorder (see Runtime.FaultStats).
	Faults *metrics.FaultRecorder
	// Obs, when set, instruments every slide: end-to-end and per-phase
	// latency histograms, memo read/write latency, and span traces
	// (subject to Obs.Tracer's mode). Nil — the default — disables the
	// instrumentation path entirely. Hand the same bundle to the obs
	// HTTP server to introspect the runtime live.
	Obs *metrics.SlideObs
}

// Validation errors.
var (
	ErrBadMode      = errors.New("sliderrt: invalid or missing window mode")
	ErrBadBackend   = errors.New("sliderrt: backend incompatible with the window mode or combiner")
	ErrBadBuckets   = errors.New("sliderrt: Fixed mode requires positive BucketSplits and WindowBuckets")
	ErrBadAdvance   = errors.New("sliderrt: advance shape does not match the window mode")
	ErrNotInitial   = errors.New("sliderrt: Advance before Initial")
	ErrReinitialize = errors.New("sliderrt: Initial called twice")
	ErrTooLate      = errors.New("sliderrt: arrival behind the watermark")
)

// validate normalizes and checks the configuration.
func (c *Config) validate() error {
	switch c.Mode {
	case Append, Variable:
		if c.AllowedLateness > 0 {
			return fmt.Errorf("%w: AllowedLateness applies to Fixed-mode windows only", ErrBadMode)
		}
	case Fixed:
		if c.BucketSplits <= 0 || c.WindowBuckets <= 0 {
			return ErrBadBuckets
		}
		if c.AllowedLateness < 0 {
			return fmt.Errorf("%w: negative AllowedLateness", ErrBadMode)
		}
	default:
		return ErrBadMode
	}
	if c.Engine == 0 {
		c.Engine = SelfAdjusting
	}
	if c.Memo.Nodes == 0 {
		c.Memo = memo.DefaultConfig()
	}
	if c.Faults == nil {
		c.Faults = &metrics.FaultRecorder{}
	}
	return nil
}
