package sliderrt

import (
	"testing"
	"time"

	"slider/internal/metrics"
)

// observeN records n copies of d and returns the cumulative snapshot.
func observeN(h *metrics.Histogram, n int, d time.Duration) metrics.HistogramSnapshot {
	for i := 0; i < n; i++ {
		h.Observe(d)
	}
	return h.Snapshot()
}

func TestContractQuantilePolicyHysteresis(t *testing.T) {
	hook, err := ContractQuantileSwitchPolicy(SwitchPolicyConfig{
		High:        10 * time.Millisecond,
		Low:         1 * time.Millisecond,
		Consecutive: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var h metrics.Histogram

	// One hot slide is not enough: the streak must reach Consecutive.
	if got := hook(BackendRotating, observeN(&h, 4, 50*time.Millisecond)); got != BackendRotating {
		t.Fatalf("switched after one hot slide: %v", got)
	}
	if got := hook(BackendRotating, observeN(&h, 4, 50*time.Millisecond)); got != BackendDaba {
		t.Fatalf("second consecutive hot slide should switch to daba, got %v", got)
	}

	// Mid-band slides hold the current backend and reset streaks. The
	// quantile reports bucket upper bounds, so 3ms lands ≈4.1ms — inside
	// (1ms, 10ms).
	if got := hook(BackendDaba, observeN(&h, 4, 3*time.Millisecond)); got != BackendDaba {
		t.Fatalf("mid-band slide moved the backend: %v", got)
	}

	// Cool slides below Low for Consecutive slides switch back. 100ns
	// observations land in bucket 0 (≤1µs ≤ Low).
	if got := hook(BackendDaba, observeN(&h, 4, 100*time.Nanosecond)); got != BackendDaba {
		t.Fatalf("switched after one cool slide: %v", got)
	}
	if got := hook(BackendDaba, observeN(&h, 4, 100*time.Nanosecond)); got != BackendRotating {
		t.Fatalf("second consecutive cool slide should switch to rotating, got %v", got)
	}

	// A slide with no new samples (idle tick) holds everything.
	if got := hook(BackendRotating, h.Snapshot()); got != BackendRotating {
		t.Fatalf("sample-free slide moved the backend: %v", got)
	}
}

func TestContractQuantilePolicyStreakReset(t *testing.T) {
	hook, err := ContractQuantileSwitchPolicy(SwitchPolicyConfig{
		High:        10 * time.Millisecond,
		Low:         1 * time.Millisecond,
		Consecutive: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var h metrics.Histogram
	// hot, cool, hot: the opposing crossing resets the hot streak, so the
	// second hot slide must not switch.
	hook(BackendRotating, observeN(&h, 4, 50*time.Millisecond))
	hook(BackendRotating, observeN(&h, 4, 100*time.Nanosecond))
	if got := hook(BackendRotating, observeN(&h, 4, 50*time.Millisecond)); got != BackendRotating {
		t.Fatalf("interrupted streak still switched: %v", got)
	}
}

func TestSwitchPolicyConfigValidation(t *testing.T) {
	if _, err := ContractQuantileSwitchPolicy(SwitchPolicyConfig{}); err == nil {
		t.Fatal("missing high threshold accepted")
	}
	if _, err := ContractQuantileSwitchPolicy(SwitchPolicyConfig{High: time.Second, Low: 2 * time.Second}); err == nil {
		t.Fatal("low ≥ high accepted")
	}
	if _, err := ContractQuantileSwitchPolicy(SwitchPolicyConfig{High: time.Second, Quantile: 1.5}); err == nil {
		t.Fatal("quantile outside (0,1) accepted")
	}
}

func TestParseSwitchPolicy(t *testing.T) {
	hook, err := ParseSwitchPolicy("p95:high=20ms,low=5ms,n=3")
	if err != nil || hook == nil {
		t.Fatalf("valid policy rejected: %v", err)
	}
	if hook, err := ParseSwitchPolicy(""); err != nil || hook != nil {
		t.Fatalf("empty policy should return a nil hook (err=%v, nil=%v)", err, hook == nil)
	}
	for _, bad := range []string{
		"p95",                  // no options
		"q95:high=20ms",        // bad quantile prefix
		"p0:high=20ms",         // quantile out of range
		"p95:high=nope",        // bad duration
		"p95:low=5ms",          // missing high
		"p95:high=20ms,n=x",    // bad count
		"p95:high=20ms,zzz=1",  // unknown option
		"p95:high=20ms,low=1h", // low ≥ high
	} {
		if _, err := ParseSwitchPolicy(bad); err == nil {
			t.Errorf("ParseSwitchPolicy(%q) accepted", bad)
		}
	}
}

// TestLiveSwitchUnderPolicy drives a real Fixed-mode runtime with the
// quantile policy wired as its SwitchHook and verifies both live
// transitions: a floor-level High threshold sees every slide as hot and
// moves rotating→daba; a ceiling-level Low sees every slide as cool and
// moves daba→rotating. Outputs must stay correct across both rebuilds.
func TestLiveSwitchUnderPolicy(t *testing.T) {
	job := wordCountJob()
	obs := metrics.NewSlideObs()
	obs.Tracer.SetMode(metrics.TraceOff, 0)
	// 1ns high: the contract quantile (≥1µs bucket bound) always crosses.
	hot, err := ContractQuantileSwitchPolicy(SwitchPolicyConfig{High: time.Nanosecond, Consecutive: 2})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Mode: Fixed, BucketSplits: 2, WindowBuckets: 4,
		Backend:    BackendRotating,
		SwitchHook: hot,
		Obs:        obs,
		Memo:       testMemoConfig(),
	}
	rt, err := New(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	window := genSplits(0, 8, 4, 7)
	next := 8
	if _, err := rt.Initial(window); err != nil {
		t.Fatal(err)
	}
	if rt.Backend() != BackendRotating {
		t.Fatalf("initial backend %v", rt.Backend())
	}
	sawDaba := false
	for i := 0; i < 4; i++ {
		add := genSplits(next, 2, 4, 7)
		next += 2
		res, err := rt.Advance(2, add)
		if err != nil {
			t.Fatalf("slide %d: %v", i, err)
		}
		window = append(window[2:], add...)
		wantSameOutput(t, res.Output, scratch(t, job, window))
		if rt.Backend() == BackendDaba {
			sawDaba = true
		}
	}
	if !sawDaba {
		t.Fatal("policy never switched rotating→daba under a floor threshold")
	}

	// Swap in a cool policy: huge thresholds make every slide a Low
	// crossing, pulling the runtime back to the rotating tree.
	cool, err := ContractQuantileSwitchPolicy(SwitchPolicyConfig{High: 2 * time.Hour, Low: time.Hour, Consecutive: 2})
	if err != nil {
		t.Fatal(err)
	}
	rt.cfg.SwitchHook = cool
	sawRotating := false
	for i := 0; i < 4; i++ {
		add := genSplits(next, 2, 4, 7)
		next += 2
		res, err := rt.Advance(2, add)
		if err != nil {
			t.Fatalf("cool slide %d: %v", i, err)
		}
		window = append(window[2:], add...)
		wantSameOutput(t, res.Output, scratch(t, job, window))
		if rt.Backend() == BackendRotating {
			sawRotating = true
		}
	}
	if !sawRotating {
		t.Fatal("policy never switched daba→rotating under a ceiling threshold")
	}
}
