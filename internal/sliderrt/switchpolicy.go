package sliderrt

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"slider/internal/metrics"
)

// SwitchPolicyConfig configures ContractQuantileSwitchPolicy, the
// hysteresis policy over the contract-phase latency histogram.
type SwitchPolicyConfig struct {
	// Quantile is the per-slide latency quantile the policy watches
	// (0.95 when zero).
	Quantile float64
	// High is the pressure threshold: when the per-slide contract
	// quantile sits at or above it for Consecutive slides, the policy
	// asks for BackendDaba (the O(1)-per-slide structure). Required.
	High time.Duration
	// Low is the relief threshold: when the quantile sits at or below it
	// for Consecutive slides, the policy asks for BackendRotating (the
	// log-depth tree, the only Fixed-mode structure that supports split
	// processing and parallel intra-tree combines). Defaults to High/4.
	// The band between Low and High is the hysteresis gap: inside it the
	// policy holds the current backend, so latency noise around a single
	// threshold cannot make the runtime thrash.
	Low time.Duration
	// Consecutive is how many successive slides must cross a threshold
	// before the policy moves (3 when zero). Slides that produce no
	// contract samples (an idle tick) reset neither counter.
	Consecutive int
}

func (c *SwitchPolicyConfig) normalize() error {
	if c.High <= 0 {
		return fmt.Errorf("sliderrt: switch policy needs a positive high threshold, got %v", c.High)
	}
	if c.Quantile == 0 {
		c.Quantile = 0.95
	}
	if c.Quantile <= 0 || c.Quantile >= 1 {
		return fmt.Errorf("sliderrt: switch policy quantile %v outside (0,1)", c.Quantile)
	}
	if c.Low == 0 {
		c.Low = c.High / 4
	}
	if c.Low < 0 || c.Low >= c.High {
		return fmt.Errorf("sliderrt: switch policy low threshold %v must be in [0, high=%v)", c.Low, c.High)
	}
	if c.Consecutive == 0 {
		c.Consecutive = 3
	}
	if c.Consecutive < 0 {
		return fmt.Errorf("sliderrt: switch policy needs a positive consecutive count, got %d", c.Consecutive)
	}
	return nil
}

// ContractQuantileSwitchPolicy builds a Config.SwitchHook that moves a
// Fixed-mode runtime between its two backends based on observed contract
// pressure: sustained high per-slide latency quantiles switch to the
// DABA O(1) aggregator, sustained low quantiles switch back to the
// rotating tree. The hook keeps the previous histogram snapshot and
// diffs it each slide (HistogramSnapshot.Sub), so every decision is made
// on that slide's samples alone, not the lifetime distribution.
//
// The returned hook carries per-runtime state; build one per Runtime
// and pair it with a Config.Obs bundle — without Obs the contract
// histogram is always empty and the hook never fires.
func ContractQuantileSwitchPolicy(cfg SwitchPolicyConfig) (func(cur Backend, contract metrics.HistogramSnapshot) Backend, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	var prev metrics.HistogramSnapshot
	hi, lo := 0, 0
	return func(cur Backend, contract metrics.HistogramSnapshot) Backend {
		delta := contract.Sub(prev)
		prev = contract
		if delta.Count <= 0 {
			return cur // no samples this slide: hold state, hold counters
		}
		q := delta.Quantile(cfg.Quantile)
		switch {
		case q >= cfg.High:
			hi, lo = hi+1, 0
		case q <= cfg.Low:
			lo, hi = lo+1, 0
		default:
			hi, lo = 0, 0 // hysteresis band: decay both streaks
		}
		if hi >= cfg.Consecutive && cur != BackendDaba {
			hi, lo = 0, 0
			return BackendDaba
		}
		if lo >= cfg.Consecutive && cur != BackendRotating {
			hi, lo = 0, 0
			return BackendRotating
		}
		return cur
	}, nil
}

// ParseSwitchPolicy parses the daemons' -switch-policy flag syntax into
// a ready SwitchHook:
//
//	pQQ:high=DUR[,low=DUR][,n=N]
//
// e.g. "p95:high=20ms,low=5ms,n=3" or "p99:high=1s". The leading pQQ
// names the watched quantile (p50…p99); low defaults to high/4 and n to
// 3. An empty string returns a nil hook (policy disabled).
func ParseSwitchPolicy(s string) (func(cur Backend, contract metrics.HistogramSnapshot) Backend, error) {
	if s == "" {
		return nil, nil
	}
	head, rest, ok := strings.Cut(s, ":")
	if !ok || !strings.HasPrefix(head, "p") {
		return nil, fmt.Errorf("sliderrt: switch policy %q: want pQQ:high=DUR[,low=DUR][,n=N]", s)
	}
	pct, err := strconv.Atoi(head[1:])
	if err != nil || pct <= 0 || pct >= 100 {
		return nil, fmt.Errorf("sliderrt: switch policy %q: bad quantile %q", s, head)
	}
	cfg := SwitchPolicyConfig{Quantile: float64(pct) / 100}
	for _, kv := range strings.Split(rest, ",") {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("sliderrt: switch policy %q: bad option %q", s, kv)
		}
		switch key {
		case "high", "low":
			d, err := time.ParseDuration(val)
			if err != nil {
				return nil, fmt.Errorf("sliderrt: switch policy %q: %v", s, err)
			}
			if key == "high" {
				cfg.High = d
			} else {
				cfg.Low = d
			}
		case "n":
			n, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("sliderrt: switch policy %q: bad count %q", s, val)
			}
			cfg.Consecutive = n
		default:
			return nil, fmt.Errorf("sliderrt: switch policy %q: unknown option %q", s, key)
		}
	}
	return ContractQuantileSwitchPolicy(cfg)
}
