package sliderrt

import "testing"

// TestMemoUnavailableDegradesToRecompute fails a partition-state key's
// home node and every persistent replica, then slides the window: the
// memoized root-path read comes back memo.ErrUnavailable, the runtime
// degrades to recomputation (counted, and charged to the cost model),
// and the slide output still matches recomputation from scratch. After
// RecoverNode the entry is readable again and memo hits resume.
func TestMemoUnavailableDegradesToRecompute(t *testing.T) {
	job := wordCountJob()
	memoCfg := testMemoConfig()
	memoCfg.Replicas = 2
	rt, err := New(job, Config{Mode: Variable, Memo: memoCfg})
	if err != nil {
		t.Fatal(err)
	}

	window := genSplits(0, 8, 4, 7)
	next := 8
	if _, err := rt.Initial(window); err != nil {
		t.Fatal(err)
	}
	advance := func() *RunResult {
		t.Helper()
		add := genSplits(next, 2, 4, 7)
		next += 2
		res, err := rt.Advance(2, add)
		if err != nil {
			t.Fatalf("advance: %v", err)
		}
		window = append(window[2:], add...)
		wantSameOutput(t, res.Output, scratch(t, job, window))
		return res
	}

	// Healthy slide: the partition-state reads must all hit.
	advance()
	if n := rt.FaultStats().MemoRecomputes; n != 0 {
		t.Fatalf("healthy slide recorded %d memo recomputes", n)
	}

	// Take down partition 0's state entirely: its key's home node plus
	// both replicas (home+1, home+2 — the store's placement rule).
	store := rt.Store()
	home := store.HomeNode("part:0")
	nodes := memoCfg.Nodes
	failed := []int{home, (home + 1) % nodes, (home + 2) % nodes}
	for _, n := range failed {
		store.FailNode(n)
	}

	advance()
	recomputes := rt.FaultStats().MemoRecomputes
	if recomputes == 0 {
		t.Fatal("full-replica failure did not trigger a recompute")
	}
	if store.Stats().Unavailable == 0 {
		t.Fatal("store never reported an unavailable read")
	}

	for _, n := range failed {
		store.RecoverNode(n)
	}
	// First slide after recovery reads the surviving persistent replica
	// (a miss, with read-repair); no new recomputes.
	advance()
	if n := rt.FaultStats().MemoRecomputes; n != recomputes {
		t.Fatalf("recomputes grew to %d after recovery", n)
	}
	// Read-repair restored the in-memory copy: the next slide's state
	// read is a memory hit again.
	hits := store.Stats().Hits
	advance()
	if store.Stats().Hits <= hits {
		t.Fatal("memo hits did not resume after recovery")
	}
}

// TestMemoRecomputeChargesCostModel: the degraded read must charge the
// re-materialized state to the write-cost model rather than silently
// dropping the I/O (Table 2 accounting stays honest under faults).
func TestMemoRecomputeChargesCostModel(t *testing.T) {
	job := wordCountJob()
	rt, err := New(job, Config{Mode: Variable, Memo: testMemoConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Initial(genSplits(0, 6, 4, 7)); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < testMemoConfig().Nodes; n++ {
		rt.Store().FailNode(n)
	}
	before := rt.Store().Stats().WriteTimeNs
	if _, err := rt.Advance(1, genSplits(6, 1, 4, 7)); err != nil {
		t.Fatalf("advance with every memo node down: %v", err)
	}
	if rt.FaultStats().MemoRecomputes == 0 {
		t.Fatal("no recompute recorded with every node down")
	}
	if rt.Store().Stats().WriteTimeNs <= before {
		t.Fatal("recompute did not charge the write-cost model")
	}
}
