package sliderrt

import (
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"slider/internal/core"
	"slider/internal/mapreduce"
	"slider/internal/memo"
	"slider/internal/metrics"
	"slider/internal/persist"
)

// Payload aliases the contraction-phase payload type.
type Payload = mapreduce.Payload

// RunResult is the outcome of one run (initial or incremental).
type RunResult struct {
	// Output is the job's final key→value output for the window.
	Output mapreduce.Output
	// Report carries the foreground work and task list of the run.
	Report metrics.Report
	// Background carries the background pre-processing work of split
	// mode (empty when split processing is disabled).
	Background metrics.Report
	// TreeStats is the contraction-tree work performed on the
	// foreground (critical) path of this run.
	TreeStats core.Stats
	// TreeStatsBackground is the contraction-tree work performed by the
	// background pre-processing step (split mode only).
	TreeStatsBackground core.Stats
	// SpaceBytes is the memoized state resident after the run
	// (tree payloads plus cached map outputs).
	SpaceBytes int64
	// ReadTimeNs is the simulated time spent reading memoized state
	// during this run.
	ReadTimeNs int64
	// SlideID is the 1-based sequence number of this run (1 = initial),
	// the correlation key for span traces and tree snapshots.
	SlideID uint64
}

// Runtime drives one job over a sliding window. It is not safe for
// concurrent use; runs are sequential by design (each run's trees feed
// the next).
type Runtime struct {
	job     *mapreduce.Job
	cfg     Config
	backend Backend // resolved aggregation backend (may live-switch)
	store   *memo.Store
	parts   int
	faults  *metrics.FaultRecorder

	seq      uint64 // next split sequence number
	windowLo uint64 // sequence number of the oldest live split
	live     int    // live splits in the window
	runs     int64  // completed runs
	started  bool

	// combines[p] counts combiner invocations inside partition p's
	// merges; partitions update their own counter, so the contraction
	// phase can run partitions concurrently.
	combines []int64

	coal   []*core.CoalescingTree[Payload]
	rot    []*core.RotatingTree[Payload]
	daba   []*core.DabaLite[Payload]
	fold   []*core.FoldingTree[Payload]
	rnd    []*core.RandomizedFoldingTree[Payload]
	straw  []*core.StrawmanTree[Payload]
	finger []*core.FingerTree[Payload]
	leaves [][]core.Item[Payload] // strawman window leaves per partition

	// Out-of-order (finger-tree) bucket ledger: splits per live bucket in
	// window order, oldest first — late buckets may be narrower than w —
	// plus the in-order bucket clock (buckets ever appended at the window
	// edge; late inserts do not advance it). The clock drives the
	// effective watermark max(cfg.Watermark, bucketSeq−AllowedLateness).
	bucketSizes []int
	bucketSeq   uint64
	oooEvict    int // buckets the in-flight Advance evicts (partition goroutines read only)

	// Fixed+split: per-partition buckets awaiting background install.
	pendingBuckets []Payload
	hasPending     bool

	// treeSnap is the immutable tree snapshot served to concurrent
	// readers (/debug/tree); snapReq asks the next slide to refresh it.
	treeSnap atomic.Pointer[TreeSnapshot]
	snapReq  atomic.Bool

	// gauges holds the concurrent-read-safe out-of-order window gauges
	// (see window_stats.go).
	gauges windowGauges
}

// New returns a runtime for the job under the given configuration.
func New(job *mapreduce.Job, cfg Config) (*Runtime, error) {
	if err := job.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	backend, err := cfg.resolveBackend(job)
	if err != nil {
		return nil, err
	}
	rt := &Runtime{
		job:     job,
		cfg:     cfg,
		backend: backend,
		store:   memo.NewStore(cfg.Memo),
		parts:   job.NumPartitions(),
		faults:  cfg.Faults,
	}
	if cfg.Obs != nil {
		rt.store.SetLatencyObservers(&cfg.Obs.MemoRead, &cfg.Obs.MemoWrite)
	}
	return rt, nil
}

// mergeFor returns partition p's merge function: it combines two payloads
// in window order and counts combiner calls into p's own counter. The
// counter updates are atomic because the parallel contraction engine may
// run several of one partition's merges concurrently; MergeOrdered is
// pure and alias-free, so the merges themselves are safe.
func (rt *Runtime) mergeFor(p int) core.MergeFunc[Payload] {
	counter := &rt.combines[p]
	return func(a, b Payload) Payload {
		out, c := mapreduce.MergeOrdered(rt.job, a, b)
		atomic.AddInt64(counter, c)
		return out
	}
}

// kmergeFor returns partition p's K-way merge function: it merges any
// number of payloads in a single pass in window order and counts combiner
// calls into p's own counter (atomically — ReduceOrderedK may run several
// of one partition's leaf batches concurrently).
func (rt *Runtime) kmergeFor(p int) core.KMergeFunc[Payload] {
	counter := &rt.combines[p]
	return func(items []Payload) Payload {
		out, c := mapreduce.MergeOrderedK(rt.job, items...)
		atomic.AddInt64(counter, c)
		return out
	}
}

// foldPayloads merges payloads left to right into one using partition p's
// K-way merge — the fold-up of newly arrived splits into C′ for
// coalescing appends and rotating-bucket formation. These fold-ups are
// not memoized tree nodes, so they need not preserve binary fingerprints:
// they batch through MergeOrderedK, which allocates one output map and
// issues one multi-argument Combine per key instead of len(ps)−1
// intermediate maps. Batch boundaries are fixed (see kMergeLeafWidth), so
// outputs and combine counts are identical at any worker count.
func (rt *Runtime) foldPayloads(p int, ps []Payload) Payload {
	if len(ps) == 0 {
		return mapreduce.EmptyPayload()
	}
	out, _ := core.ReduceOrderedK(rt.treeParallelism(), rt.kmergeFor(p), ps)
	return out
}

// partNode returns the machine holding partition p's memoized state.
func (rt *Runtime) partNode(p int) int {
	return rt.store.HomeNode("part:" + strconv.Itoa(p))
}

// mapAdds runs map tasks for new splits with input locality, memoizes
// their outputs (charging the layer's write cost into each task), and
// returns the per-split results.
func (rt *Runtime) mapAdds(splits []mapreduce.Split, rec *metrics.Recorder) ([]mapreduce.MapResult, error) {
	base := rt.seq
	runner := rt.cfg.MapRunner
	if runner == nil {
		runner = mapreduce.Executor{Parallelism: rt.parallelism()}
	}
	results, err := runner.RunMap(rt.job, splits)
	if err != nil {
		results, err = rt.salvageMap(splits, err)
		if err != nil {
			return nil, err
		}
	}
	var counters metrics.Counters
	for i, r := range results {
		id := base + uint64(i)
		// Memoized map outputs live as flat bytes, not as live Go maps: one
		// payload-set blob per split keeps the memo layer's resident state
		// off the GC scan path. The entry's accounted size stays r.Bytes
		// (the cost-model estimate), independent of the encoding.
		var stored any = r.Parts
		if blob, err := persist.EncodePayloadSet(r.Parts); err == nil {
			stored = blob
		}
		writeNs := rt.store.Put("map:"+r.SplitID, stored, r.Bytes, id, id)
		rec.RecordTask(metrics.Task{
			Phase:         metrics.PhaseMap,
			Cost:          r.Cost + time.Duration(writeNs),
			InputBytes:    r.Bytes,
			PreferredNode: int(id % uint64(rt.cfg.Memo.Nodes)),
		})
		counters.MapTasks++
		counters.MapRecords += r.Records
		counters.WriteTime += writeNs
	}
	rec.Add(counters)
	rt.seq += uint64(len(splits))
	rt.live += len(splits)
	return results, nil
}

// partialResult is the carrier interface a failing MapRunner may
// implement (dist's IncompleteError does) to hand back the splits that
// did complete before it gave up. Declared here so sliderrt stays
// independent of the dist package.
type partialResult interface {
	Completed() ([]mapreduce.MapResult, []bool)
}

// salvageMap is the local-fallback rung of the degradation ladder: when
// the remote MapRunner cannot finish a batch — all workers dead or the
// retry budget exhausted, signalled by an error carrying partial results
// — the missing splits are re-executed in-process instead of failing the
// slide. Map tasks are deterministic and side-effect-free, so mixing
// remote and local results is safe; splits the pool did complete are
// kept as-is, never recomputed or double-counted. Errors that carry no
// partial results (bad job, map-function failure) are not retryable and
// pass through.
func (rt *Runtime) salvageMap(splits []mapreduce.Split, runErr error) ([]mapreduce.MapResult, error) {
	var pr partialResult
	if rt.cfg.DisableLocalFallback || !errors.As(runErr, &pr) {
		return nil, runErr
	}
	rt.faults.LocalFallbacks.Add(1)
	results := make([]mapreduce.MapResult, len(splits))
	missing := make([]mapreduce.Split, 0, len(splits))
	missingIdx := make([]int, 0, len(splits))
	got, done := pr.Completed()
	for i := range splits {
		if i < len(done) && done[i] {
			results[i] = got[i]
		} else {
			missing = append(missing, splits[i])
			missingIdx = append(missingIdx, i)
		}
	}
	local := mapreduce.Executor{Parallelism: rt.parallelism()}
	fallback, err := local.RunMap(rt.job, missing)
	if err != nil {
		return nil, err
	}
	for k, i := range missingIdx {
		results[i] = fallback[k]
	}
	return results, nil
}

func (rt *Runtime) parallelism() int {
	if rt.cfg.Parallelism > 0 {
		return rt.cfg.Parallelism
	}
	return 0
}

// treeParallelism splits the Parallelism budget between the two levels
// of contraction concurrency: forEachPartition runs up to min(par,
// partitions) partition workers, and each partition's tree gets the
// remaining budget for its intra-tree (level-by-level) combines, so the
// total worker count stays bounded by the configured knob. With more
// partitions than budget the trees run sequentially, exactly as before.
func (rt *Runtime) treeParallelism() int {
	par := rt.cfg.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	partWorkers := rt.parts
	if partWorkers > par {
		return 1
	}
	return par / partWorkers
}

// Initial performs the initial run over the first window (§3: all input
// data items are new; the contraction trees are built from scratch).
func (rt *Runtime) Initial(splits []mapreduce.Split) (*RunResult, error) {
	if rt.started {
		return nil, ErrReinitialize
	}
	if rt.cfg.Mode == Fixed {
		want := rt.cfg.BucketSplits * rt.cfg.WindowBuckets
		if len(splits) != want {
			return nil, fmt.Errorf("%w: Fixed initial window needs %d splits, got %d", ErrBadAdvance, want, len(splits))
		}
	}
	if len(splits) == 0 {
		return nil, fmt.Errorf("%w: initial window is empty", ErrBadAdvance)
	}
	rec := metrics.NewRecorder()
	bg := metrics.NewRecorder()
	rt.store.ResetReadStats()
	so := rt.beginSlide("initial")
	defer so.abort()

	baseSeq := rt.seq
	mapPh := so.phase("map")
	results, err := rt.mapAdds(splits, rec)
	if err != nil {
		return nil, err
	}
	mapPh.end()
	rt.allocTrees()
	statsBefore := rt.treeStats()

	contractPh := so.phase("contract")
	roots := make([][]Payload, rt.parts)
	if err := rt.forEachPartition(func(p int) error {
		start := time.Now()
		ps := partitionSpan(contractPh.span, p)
		treeBefore := rt.partitionTreeStats(p)
		payloads := partPayloads(results, p)
		switch rt.backend {
		case BackendStrawman:
			rt.leaves[p] = makeItems(baseSeq, payloads)
			rt.straw[p].Build(rt.leaves[p])
			if root, ok := rt.straw[p].Root(); ok {
				roots[p] = []Payload{root}
			}
		case BackendCoalescing:
			c1 := rt.foldPayloads(p, payloads)
			root := rt.coal[p].Append(c1)
			roots[p] = []Payload{root}
		case BackendDaba:
			buckets := rt.formBuckets(p, payloads)
			if err := rt.daba[p].Init(buckets); err != nil {
				return err
			}
			if root, ok := rt.daba[p].Root(); ok {
				roots[p] = []Payload{root}
			}
		case BackendFingerTree:
			buckets := rt.formBuckets(p, payloads)
			if err := rt.finger[p].Init(buckets); err != nil {
				return err
			}
			if root, ok := rt.finger[p].Root(); ok {
				roots[p] = []Payload{root}
			}
		case BackendRotating:
			buckets := rt.formBuckets(p, payloads)
			if err := rt.rot[p].Init(buckets); err != nil {
				return err
			}
			if root, ok := rt.rot[p].Root(); ok {
				roots[p] = []Payload{root}
			}
		case BackendRandomizedFolding:
			rt.rnd[p].Init(makeItems(baseSeq, payloads))
			if root, ok := rt.rnd[p].Root(); ok {
				roots[p] = []Payload{root}
			}
		default:
			rt.fold[p].Init(payloads)
			if root, ok := rt.fold[p].Root(); ok {
				roots[p] = []Payload{root}
			}
		}
		// The initial run materializes every tree node into the
		// memoization layer — the paper's Figure 13 overhead — and
		// registers the partition's root-path entry that every later
		// slide reads back (chargeStateRead).
		writeNs := rt.store.ChargeWrite(rt.partitionTreeBytes(p))
		writeNs += rt.putPartState(p, roots[p])
		rt.recordContraction(rec, p, time.Since(start)+time.Duration(writeNs), roots[p])
		rt.endPartitionSpan(ps, p, treeBefore)
		return nil
	}); err != nil {
		return nil, err
	}
	contractPh.end()

	reducePh := so.phase("reduce")
	out := rt.reduceAll(rec, roots)
	reducePh.end()
	statsFg := rt.treeStats()
	rt.recordTreeCounters(rec, statsDelta(statsBefore, statsFg))

	// Split processing: pave the way for the first incremental run.
	if rt.cfg.SplitProcessing && rt.cfg.Mode == Fixed && rt.cfg.Engine == SelfAdjusting {
		bgSpan := so.span.Child("background")
		for p := 0; p < rt.parts; p++ {
			start := time.Now()
			if err := rt.rot[p].PrepareBackground(); err != nil {
				return nil, err
			}
			bg.RecordTask(metrics.Task{
				Phase:         metrics.PhaseContraction,
				Cost:          time.Since(start),
				PreferredNode: rt.partNode(p),
			})
		}
		bgSpan.End()
	}

	if rt.backend == BackendFingerTree {
		rt.bucketSizes = make([]int, rt.cfg.WindowBuckets)
		for i := range rt.bucketSizes {
			rt.bucketSizes[i] = rt.cfg.BucketSplits
		}
		rt.bucketSeq = uint64(rt.cfg.WindowBuckets)
	}
	rt.started = true
	res := rt.finish(out, rec, bg, statsBefore)
	res.TreeStats = statsDelta(statsBefore, statsFg)
	res.TreeStatsBackground = statsDelta(statsFg, rt.treeStats())
	so.finish(res)
	return res, nil
}

// Advance performs an incremental run: drop oldest splits, add new ones.
//
//   - Append mode: drop must be 0.
//   - Fixed mode: drop must equal len(add), both a positive multiple of
//     the bucket width w.
//   - Variable mode: any combination.
func (rt *Runtime) Advance(drop int, add []mapreduce.Split) (*RunResult, error) {
	if !rt.started {
		return nil, ErrNotInitial
	}
	if err := rt.checkAdvance(drop, len(add)); err != nil {
		return nil, err
	}
	if rt.backend == BackendFingerTree {
		// drop must consume whole oldest buckets of the ledger (late
		// buckets may be narrower than w, so the count is not drop/w).
		k, err := rt.evictBucketCount(drop)
		if err != nil {
			return nil, err
		}
		rt.oooEvict = k
	}
	rec := metrics.NewRecorder()
	bg := metrics.NewRecorder()
	rt.store.ResetReadStats()
	statsBefore := rt.treeStats()
	so := rt.beginSlide("advance")
	defer so.abort()
	so.span.Event("slide: drop=%d add=%d", drop, len(add))

	baseSeq := rt.seq
	mapPh := so.phase("map")
	results, err := rt.mapAdds(add, rec)
	if err != nil {
		return nil, err
	}
	mapPh.end()
	rt.windowLo += uint64(drop)
	rt.live -= drop

	rt.pendingBuckets = make([]Payload, rt.parts)
	// A single-bucket slide in Fixed+split mode takes the pre-combined
	// foreground path; the decision is uniform across partitions and
	// made here so partition goroutines only read it.
	rt.hasPending = rt.cfg.Mode == Fixed && rt.cfg.Engine == SelfAdjusting &&
		rt.cfg.SplitProcessing && len(add) == rt.cfg.BucketSplits
	contractPh := so.phase("contract")
	roots := make([][]Payload, rt.parts)
	if err := rt.forEachPartition(func(p int) error {
		start := time.Now()
		ps := partitionSpan(contractPh.span, p)
		treeBefore := rt.partitionTreeStats(p)
		payloads := partPayloads(results, p)
		var err error
		roots[p], err = rt.advancePartition(p, drop, baseSeq, payloads)
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		// Read last run's memoized root-path state, then rewrite the
		// recomputed nodes: one new root for append-only windows, roughly
		// twice the root payload for a log-depth path. An unreadable
		// entry — every replica down, or evicted — makes chargeStateRead
		// degrade to recomputation instead of failing the slide.
		rt.chargeStateRead(p, roots[p])
		writeNs := rt.putPartState(p, roots[p])
		rt.recordContraction(rec, p, elapsed+time.Duration(writeNs), roots[p])
		rt.endPartitionSpan(ps, p, treeBefore)
		return nil
	}); err != nil {
		return nil, err
	}
	contractPh.end()
	if rt.backend == BackendFingerTree {
		w := rt.cfg.BucketSplits
		rt.bucketSizes = append(rt.bucketSizes[:0], rt.bucketSizes[rt.oooEvict:]...)
		for i := 0; i < len(add)/w; i++ {
			rt.bucketSizes = append(rt.bucketSizes, w)
		}
		rt.bucketSeq += uint64(len(add) / w)
	}

	reducePh := so.phase("reduce")
	out := rt.reduceAll(rec, roots)
	reducePh.end()
	statsFg := rt.treeStats()
	rt.recordTreeCounters(rec, statsDelta(statsBefore, statsFg))
	bgSpan := so.span.Child("background")
	rt.runBackground(bg)
	bgSpan.End()
	rt.store.GC(rt.windowLo)
	if rt.cfg.GCPolicy != nil {
		rt.store.GCFunc(rt.cfg.GCPolicy)
	}
	res := rt.finish(out, rec, bg, statsBefore)
	res.TreeStatsBackground = statsDelta(statsFg, rt.treeStats())
	res.TreeStats = statsDelta(statsBefore, statsFg)
	so.finish(res)
	// After the slide's stats deltas are sealed: a backend switch here
	// resets tree counters, and the next Advance reads a fresh baseline.
	rt.maybeSwitchBackend()
	return res, nil
}

// AdvanceLate lands late-arriving splits in the window without sliding
// it: the records form one new bucket inserted `lateness` buckets
// behind the newest live bucket (lateness 0 appends at the window's
// newest edge, lateness len(buckets) at its oldest), and only the
// affected root path of each partition's finger tree is re-contracted —
// O(log w) combines, not a rebuild. Requires the finger-tree backend
// (Config.AllowedLateness routes selection there); arrivals behind the
// effective watermark — later than AllowedLateness buckets, or destined
// below Config.Watermark on the bucket-sequence clock — are refused
// with ErrTooLate, and the window is left untouched.
func (rt *Runtime) AdvanceLate(lateness int, late []mapreduce.Split) (*RunResult, error) {
	if !rt.started {
		return nil, ErrNotInitial
	}
	if rt.backend != BackendFingerTree {
		return nil, fmt.Errorf("%w: late arrivals require the finger-tree backend (set Config.AllowedLateness)", ErrBadBackend)
	}
	if len(late) == 0 {
		return nil, fmt.Errorf("%w: late advance of zero splits", ErrBadAdvance)
	}
	if lateness < 0 || lateness > len(rt.bucketSizes) {
		return nil, fmt.Errorf("%w: lateness=%d with %d live buckets", ErrBadAdvance, lateness, len(rt.bucketSizes))
	}
	if lateness > rt.cfg.AllowedLateness {
		rt.gauges.lateRejects.Add(1)
		return nil, fmt.Errorf("%w: lateness %d exceeds AllowedLateness %d", ErrTooLate, lateness, rt.cfg.AllowedLateness)
	}
	// Saturating: a lateness deeper than the in-order clock (possible when
	// late buckets outnumber in-order ones) targets sequence 0, it must
	// not wrap around and sail past the watermark.
	target := uint64(0)
	if uint64(lateness) <= rt.bucketSeq {
		target = rt.bucketSeq - uint64(lateness)
	}
	if target < rt.cfg.Watermark {
		rt.gauges.lateRejects.Add(1)
		return nil, fmt.Errorf("%w: bucket sequence %d is below watermark %d", ErrTooLate, target, rt.cfg.Watermark)
	}
	rec := metrics.NewRecorder()
	bg := metrics.NewRecorder()
	rt.store.ResetReadStats()
	statsBefore := rt.treeStats()
	so := rt.beginSlide("late")
	defer so.abort()
	so.span.Event("late: lateness=%d add=%d", lateness, len(late))

	mapPh := so.phase("map")
	results, err := rt.mapAdds(late, rec)
	if err != nil {
		return nil, err
	}
	mapPh.end()

	pos := len(rt.bucketSizes) - lateness
	contractPh := so.phase("contract")
	roots := make([][]Payload, rt.parts)
	if err := rt.forEachPartition(func(p int) error {
		start := time.Now()
		ps := partitionSpan(contractPh.span, p)
		treeBefore := rt.partitionTreeStats(p)
		payloads := partPayloads(results, p)
		bucket := rt.foldPayloads(p, payloads)
		if err := rt.finger[p].InsertAt(pos, bucket); err != nil {
			return err
		}
		if root, ok := rt.finger[p].Root(); ok {
			roots[p] = []Payload{root}
		}
		elapsed := time.Since(start)
		rt.chargeStateRead(p, roots[p])
		writeNs := rt.putPartState(p, roots[p])
		rt.recordContraction(rec, p, elapsed+time.Duration(writeNs), roots[p])
		rt.endPartitionSpan(ps, p, treeBefore)
		return nil
	}); err != nil {
		return nil, err
	}
	contractPh.end()
	// The late bucket joins the window's bucket ledger at its position;
	// the in-order bucket clock does not advance, so the watermark holds.
	rt.bucketSizes = append(rt.bucketSizes, 0)
	copy(rt.bucketSizes[pos+1:], rt.bucketSizes[pos:])
	rt.bucketSizes[pos] = len(late)

	reducePh := so.phase("reduce")
	out := rt.reduceAll(rec, roots)
	reducePh.end()
	statsFg := rt.treeStats()
	rt.recordTreeCounters(rec, statsDelta(statsBefore, statsFg))
	rt.gauges.lateAccepts.Add(1)
	res := rt.finish(out, rec, bg, statsBefore)
	res.TreeStats = statsDelta(statsBefore, statsFg)
	so.finish(res)
	return res, nil
}

// evictBucketCount maps a drop expressed in splits onto the bucket
// ledger: the number of whole oldest buckets whose sizes sum to exactly
// drop. A drop that cuts a bucket in half is ErrBadAdvance — buckets
// are the finger tree's eviction unit.
func (rt *Runtime) evictBucketCount(drop int) (int, error) {
	n, sum := 0, 0
	for _, sz := range rt.bucketSizes {
		if sum >= drop {
			break
		}
		sum += sz
		n++
	}
	if sum != drop {
		return 0, fmt.Errorf("%w: drop=%d does not align with whole window buckets", ErrBadAdvance, drop)
	}
	return n, nil
}

// recordTreeCounters transfers a run's contraction-tree node work into
// the recorder's counters (previously only available via TreeStats).
func (rt *Runtime) recordTreeCounters(rec *metrics.Recorder, d core.Stats) {
	rec.Add(metrics.Counters{
		NodesComputed: d.NodesRecomputed,
		NodesReused:   d.NodesReused,
	})
}

// statsDelta returns after − before.
func statsDelta(before, after core.Stats) core.Stats {
	return core.Stats{
		Merges:          after.Merges - before.Merges,
		NodesRecomputed: after.NodesRecomputed - before.NodesRecomputed,
		NodesReused:     after.NodesReused - before.NodesReused,
	}
}

// advancePartition updates one partition's tree and returns the payloads
// the final reduce consumes.
func (rt *Runtime) advancePartition(p, drop int, baseSeq uint64, payloads []Payload) ([]Payload, error) {
	if rt.backend == BackendStrawman {
		rt.leaves[p] = append(rt.leaves[p][:0], rt.leaves[p][drop:]...)
		rt.leaves[p] = append(rt.leaves[p], makeItems(baseSeq, payloads)...)
		rt.straw[p].Build(rt.leaves[p])
		if root, ok := rt.straw[p].Root(); ok {
			return []Payload{root}, nil
		}
		return nil, nil
	}
	switch rt.cfg.Mode {
	case Append:
		cNew := rt.foldPayloads(p, payloads)
		if rt.cfg.SplitProcessing {
			return rt.coal[p].AppendSplit(cNew), nil
		}
		return []Payload{rt.coal[p].Append(cNew)}, nil
	case Fixed:
		buckets := rt.formBuckets(p, payloads)
		if rt.backend == BackendFingerTree {
			// Bulk path: one split for the K evicted buckets, one
			// build+join for the K new ones — O(K + log w) combines
			// instead of K root-path slides.
			if err := rt.finger[p].BulkEvict(rt.oooEvict); err != nil {
				return nil, err
			}
			if err := rt.finger[p].BulkInsert(buckets); err != nil {
				return nil, err
			}
			if root, ok := rt.finger[p].Root(); ok {
				return []Payload{root}, nil
			}
			return nil, nil
		}
		if rt.backend == BackendDaba {
			// O(1) in-order fast path: each bucket slide costs a bounded
			// constant number of combines, independent of WindowBuckets.
			for _, b := range buckets {
				if err := rt.daba[p].Slide(b); err != nil {
					return nil, err
				}
			}
			if root, ok := rt.daba[p].Root(); ok {
				return []Payload{root}, nil
			}
			return nil, nil
		}
		if rt.hasPending {
			fg, err := rt.rot[p].RotateForeground(buckets[0])
			if err != nil {
				return nil, err
			}
			rt.pendingBuckets[p] = buckets[0]
			return []Payload{fg}, nil
		}
		for _, b := range buckets {
			if err := rt.rot[p].Rotate(b); err != nil {
				return nil, err
			}
		}
		if rt.cfg.SplitProcessing {
			// Multi-bucket slides fall back to in-place rotation;
			// re-prepare so the next single-bucket slide stays fast.
			if err := rt.rot[p].PrepareBackground(); err != nil {
				return nil, err
			}
		}
		if root, ok := rt.rot[p].Root(); ok {
			return []Payload{root}, nil
		}
		return nil, nil
	default: // Variable
		if rt.backend == BackendRandomizedFolding {
			if err := rt.rnd[p].Slide(drop, makeItems(baseSeq, payloads)); err != nil {
				return nil, err
			}
			if root, ok := rt.rnd[p].Root(); ok {
				return []Payload{root}, nil
			}
			return nil, nil
		}
		if err := rt.fold[p].Slide(drop, payloads); err != nil {
			return nil, err
		}
		if root, ok := rt.fold[p].Root(); ok {
			return []Payload{root}, nil
		}
		return nil, nil
	}
}

// runBackground performs the deferred background pre-processing of split
// mode, recording its cost separately (Figure 11).
func (rt *Runtime) runBackground(bg *metrics.Recorder) {
	if !rt.cfg.SplitProcessing || rt.cfg.Engine == Strawman {
		return
	}
	switch rt.cfg.Mode {
	case Append:
		for p := 0; p < rt.parts; p++ {
			start := time.Now()
			rt.coal[p].Background()
			bg.RecordTask(metrics.Task{
				Phase:         metrics.PhaseContraction,
				Cost:          time.Since(start),
				PreferredNode: rt.partNode(p),
			})
		}
	case Fixed:
		if !rt.hasPending {
			return
		}
		for p := 0; p < rt.parts; p++ {
			start := time.Now()
			// Background installs the bucket and pre-combines for the
			// next slide.
			if err := rt.rot[p].Background(rt.pendingBuckets[p]); err != nil {
				return
			}
			bg.RecordTask(metrics.Task{
				Phase:         metrics.PhaseContraction,
				Cost:          time.Since(start),
				PreferredNode: rt.partNode(p),
			})
		}
		rt.pendingBuckets = nil
		rt.hasPending = false
	}
}

// reduceAll applies the final Reduce per partition, timed as reduce tasks.
func (rt *Runtime) reduceAll(rec *metrics.Recorder, roots [][]Payload) mapreduce.Output {
	out := make(mapreduce.Output)
	for p := 0; p < rt.parts; p++ {
		start := time.Now()
		partOut, calls := mapreduce.ReducePayload(rt.job, roots[p])
		var bytes int64
		for _, r := range roots[p] {
			bytes += mapreduce.PayloadBytes(rt.job, r)
		}
		rec.RecordTask(metrics.Task{
			Phase:         metrics.PhaseReduce,
			Cost:          time.Since(start),
			InputBytes:    bytes,
			PreferredNode: rt.partNode(p),
		})
		rec.Add(metrics.Counters{ReduceCalls: calls})
		for k, v := range partOut {
			out[k] = v
		}
	}
	return out
}

// recordContraction records one contraction task, transferring the
// partition's merge counter into the recorder.
func (rt *Runtime) recordContraction(rec *metrics.Recorder, p int, cost time.Duration, roots []Payload) {
	var bytes int64
	for _, r := range roots {
		bytes += mapreduce.PayloadBytes(rt.job, r)
	}
	rec.RecordTask(metrics.Task{
		Phase:         metrics.PhaseContraction,
		Cost:          cost,
		InputBytes:    bytes,
		PreferredNode: rt.partNode(p),
	})
	rec.Add(metrics.Counters{CombineCalls: atomic.SwapInt64(&rt.combines[p], 0)})
}

// rootPathBytes estimates the memoized root-path state a partition's
// update reads and rewrites: one root payload for append-only windows,
// roughly twice the root payload for a log-depth path.
func (rt *Runtime) rootPathBytes(roots []Payload) int64 {
	var bytes int64
	for _, r := range roots {
		bytes += mapreduce.PayloadBytes(rt.job, r)
	}
	if rt.cfg.Mode != Append {
		bytes *= 2
	}
	return bytes
}

// putPartState memoizes partition p's root-path state under its "part:"
// key, placed on the partition's home node with the configured replicas.
// Every subsequent slide reads the entry back through chargeStateRead,
// so node failures and GC evictions exercise the recompute path. Returns
// the simulated write time.
func (rt *Runtime) putPartState(p int, roots []Payload) int64 {
	bytes := rt.rootPathBytes(roots)
	if bytes == 0 {
		return 0
	}
	// The root-path state is stored as one flat payload-set blob — real
	// bytes a failover could restore from — rather than a placeholder; the
	// accounted size stays the root-path estimate the cost model charges.
	var stored any
	if blob, err := persist.EncodePayloadSet(roots); err == nil {
		stored = blob
	}
	return rt.store.Put("part:"+strconv.Itoa(p), stored, bytes, rt.windowLo, rt.seq)
}

// chargeStateRead reads partition p's memoized root-path state through
// the shim I/O layer (Table 2's read-time accounting). When the entry is
// unreadable — its home node and every replica failed
// (memo.ErrUnavailable), or it was garbage-collected (memo.ErrNotFound)
// — the update degrades to recomputation: the contraction trees hold the
// state in memory, so the slide still succeeds; the re-materialization
// is charged to the cost model and the event counted.
func (rt *Runtime) chargeStateRead(p int, roots []Payload) {
	bytes := rt.rootPathBytes(roots)
	if bytes == 0 {
		return
	}
	if _, err := rt.store.Get("part:"+strconv.Itoa(p), rt.partNode(p)); err != nil {
		rt.faults.MemoRecomputes.Add(1)
		rt.store.ChargeWrite(bytes)
	}
}

// checkAdvance validates the slide shape against the mode.
func (rt *Runtime) checkAdvance(drop, add int) error {
	switch rt.cfg.Mode {
	case Append:
		if drop != 0 {
			return fmt.Errorf("%w: append-only windows cannot drop (drop=%d)", ErrBadAdvance, drop)
		}
		if add == 0 {
			return fmt.Errorf("%w: append of zero splits", ErrBadAdvance)
		}
	case Fixed:
		w := rt.cfg.BucketSplits
		if rt.cfg.Engine == Strawman {
			if drop != add {
				return fmt.Errorf("%w: fixed-width windows need drop == add (got %d, %d)", ErrBadAdvance, drop, add)
			}
			return nil
		}
		if rt.backend == BackendFingerTree {
			// The out-of-order window may drift: bulk evictions and bulk
			// insertions need not balance. Adds still arrive in whole
			// buckets of w; drops must consume whole oldest buckets of the
			// ledger, which Advance checks against the bucket sizes.
			if drop == 0 && add == 0 {
				return fmt.Errorf("%w: empty advance", ErrBadAdvance)
			}
			if add%w != 0 {
				return fmt.Errorf("%w: finger-tree adds arrive in whole buckets of w (w=%d, got add=%d)", ErrBadAdvance, w, add)
			}
			return nil
		}
		if drop != add || add == 0 || add%w != 0 {
			return fmt.Errorf("%w: fixed-width slides need drop == add == k×w (w=%d, got drop=%d add=%d)", ErrBadAdvance, w, drop, add)
		}
	case Variable:
		if drop < 0 || drop > rt.live {
			return fmt.Errorf("%w: drop=%d with %d live splits", ErrBadAdvance, drop, rt.live)
		}
	}
	return nil
}

// formBuckets groups partition p's per-split payloads into buckets of w
// splits each.
func (rt *Runtime) formBuckets(p int, payloads []Payload) []Payload {
	w := rt.cfg.BucketSplits
	buckets := make([]Payload, 0, (len(payloads)+w-1)/w)
	for i := 0; i < len(payloads); i += w {
		end := i + w
		if end > len(payloads) {
			end = len(payloads)
		}
		buckets = append(buckets, rt.foldPayloads(p, payloads[i:end]))
	}
	return buckets
}

// forEachPartition runs fn(p) for every partition, concurrently up to the
// configured parallelism, and returns the first error. Each partition
// touches only its own tree, counter, and result slots.
func (rt *Runtime) forEachPartition(fn func(p int) error) error {
	par := rt.cfg.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > rt.parts {
		par = rt.parts
	}
	if par <= 1 {
		for p := 0; p < rt.parts; p++ {
			if err := fn(p); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, rt.parts)
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for p := 0; p < rt.parts; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			errs[p] = fn(p)
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// allocTrees instantiates the per-partition trees for the configuration,
// each wired to its share of the parallelism budget so partition-level
// and intra-tree concurrency compose. Coalescing trees have no internal
// levels (their fold-up of new splits is parallelized in foldPayloads).
func (rt *Runtime) allocTrees() {
	n := rt.parts
	treePar := rt.treeParallelism()
	rt.combines = make([]int64, n)
	// Drop any previous backend's structures: allocTrees also re-homes
	// the runtime on a live backend switch.
	rt.coal, rt.rot, rt.daba, rt.fold, rt.rnd = nil, nil, nil, nil, nil
	rt.straw, rt.finger, rt.leaves = nil, nil, nil
	switch rt.backend {
	case BackendStrawman:
		rt.straw = make([]*core.StrawmanTree[Payload], n)
		rt.leaves = make([][]core.Item[Payload], n)
		for p := range rt.straw {
			rt.straw[p] = core.NewStrawman(rt.mergeFor(p))
			rt.straw[p].SetParallelism(treePar)
		}
	case BackendCoalescing:
		rt.coal = make([]*core.CoalescingTree[Payload], n)
		for p := range rt.coal {
			rt.coal[p] = core.NewCoalescing(rt.mergeFor(p))
		}
	case BackendDaba:
		rt.daba = make([]*core.DabaLite[Payload], n)
		for p := range rt.daba {
			rt.daba[p] = core.NewDaba(rt.mergeFor(p), rt.cfg.WindowBuckets)
		}
	case BackendFingerTree:
		rt.finger = make([]*core.FingerTree[Payload], n)
		for p := range rt.finger {
			rt.finger[p] = core.NewFingerTree(rt.mergeFor(p))
		}
	case BackendRotating:
		rt.rot = make([]*core.RotatingTree[Payload], n)
		for p := range rt.rot {
			rt.rot[p] = core.NewRotating(rt.mergeFor(p), rt.cfg.WindowBuckets)
			rt.rot[p].SetParallelism(treePar)
		}
	case BackendRandomizedFolding:
		rt.rnd = make([]*core.RandomizedFoldingTree[Payload], n)
		for p := range rt.rnd {
			rt.rnd[p] = core.NewRandomizedFolding(rt.mergeFor(p), rt.cfg.Seed+uint64(p)+1)
			rt.rnd[p].SetParallelism(treePar)
		}
	default: // BackendFolding
		rt.fold = make([]*core.FoldingTree[Payload], n)
		factor := rt.cfg.RebuildFactor
		for p := range rt.fold {
			opts := []core.FoldingOption[Payload]{core.WithParallelism[Payload](treePar)}
			if factor < 0 {
				opts = append(opts, core.WithRebuildFactor[Payload](0))
			} else if factor > 0 {
				opts = append(opts, core.WithRebuildFactor[Payload](factor))
			}
			rt.fold[p] = core.NewFolding(rt.mergeFor(p), opts...)
		}
	}
}

// partitionTreeBytes sums the payload bytes materialized by partition p's
// tree.
func (rt *Runtime) partitionTreeBytes(p int) int64 {
	var total int64
	count := func(pl Payload) { total += mapreduce.PayloadBytes(rt.job, pl) }
	switch {
	case rt.straw != nil:
		rt.straw[p].ForEachPayload(count)
	case rt.coal != nil:
		rt.coal[p].ForEachPayload(count)
	case rt.rot != nil:
		rt.rot[p].ForEachPayload(count)
	case rt.daba != nil:
		rt.daba[p].ForEachPayload(count)
	case rt.finger != nil:
		rt.finger[p].ForEachPayload(count)
	case rt.rnd != nil:
		rt.rnd[p].ForEachPayload(count)
	case rt.fold != nil:
		rt.fold[p].ForEachPayload(count)
	}
	return total
}

// treeStats sums the work counters across all partitions' trees.
func (rt *Runtime) treeStats() core.Stats {
	var total core.Stats
	addStats := func(s core.Stats) {
		total.Merges += s.Merges
		total.NodesRecomputed += s.NodesRecomputed
		total.NodesReused += s.NodesReused
	}
	for _, t := range rt.coal {
		addStats(t.Stats())
	}
	for _, t := range rt.rot {
		addStats(t.Stats())
	}
	for _, t := range rt.daba {
		addStats(t.Stats())
	}
	for _, t := range rt.finger {
		addStats(t.Stats())
	}
	for _, t := range rt.fold {
		addStats(t.Stats())
	}
	for _, t := range rt.rnd {
		addStats(t.Stats())
	}
	for _, t := range rt.straw {
		addStats(t.Stats())
	}
	return total
}

// spaceBytes sums all memoized state: tree payloads plus cached map
// outputs. The walk re-measures payloads with mapreduce.PayloadBytes —
// arithmetic over entries, no allocation — which replaced the retired
// identity-keyed size cache (see DESIGN.md §14): the byte-shaped state
// paths carry explicit lengths now, so live maps are only ever sized
// here and in the per-slide root-path estimates.
func (rt *Runtime) spaceBytes() int64 {
	var total int64
	count := func(p Payload) { total += mapreduce.PayloadBytes(rt.job, p) }
	for _, t := range rt.coal {
		t.ForEachPayload(count)
	}
	for _, t := range rt.rot {
		t.ForEachPayload(count)
	}
	for _, t := range rt.daba {
		t.ForEachPayload(count)
	}
	for _, t := range rt.finger {
		t.ForEachPayload(count)
	}
	for _, t := range rt.fold {
		t.ForEachPayload(count)
	}
	for _, t := range rt.rnd {
		t.ForEachPayload(count)
	}
	for _, t := range rt.straw {
		t.ForEachPayload(count)
	}
	total += rt.store.Stats().Bytes
	return total
}

// finish assembles the RunResult. Callers overwrite TreeStats /
// TreeStatsBackground with precise foreground/background deltas.
func (rt *Runtime) finish(out mapreduce.Output, rec, bg *metrics.Recorder, before core.Stats) *RunResult {
	rt.runs++
	rt.publishWindowGauges()
	return &RunResult{
		Output:     out,
		Report:     rec.Snapshot(),
		Background: bg.Snapshot(),
		TreeStats:  statsDelta(before, rt.treeStats()),
		SpaceBytes: rt.spaceBytes(),
		ReadTimeNs: rt.store.Stats().ReadTimeNs,
	}
}

// partPayloads extracts partition p's payload from each map result.
func partPayloads(results []mapreduce.MapResult, p int) []Payload {
	out := make([]Payload, len(results))
	for i, r := range results {
		out[i] = r.Parts[p]
	}
	return out
}

// makeItems pairs payloads with their split sequence IDs.
func makeItems(base uint64, payloads []Payload) []core.Item[Payload] {
	items := make([]core.Item[Payload], len(payloads))
	for i, p := range payloads {
		items[i] = core.Item[Payload]{ID: base + uint64(i), Payload: p}
	}
	return items
}

// Store exposes the memoization layer (for fault injection in tests and
// the Table 2 experiment).
func (rt *Runtime) Store() *memo.Store { return rt.store }

// MapRunner returns the configured map-task runner, or nil when map
// tasks run in-process. The obs server type-asserts it for cluster
// metrics federation (a dist.Pool implements ClusterStats).
func (rt *Runtime) MapRunner() mapreduce.MapRunner { return rt.cfg.MapRunner }

// FaultStats snapshots the degradation event counters (shared with the
// dist pool when Config.Faults is).
func (rt *Runtime) FaultStats() metrics.FaultStats { return rt.faults.Snapshot() }

// Live returns the number of splits currently in the window.
func (rt *Runtime) Live() int { return rt.live }

// WindowLo returns the sequence number of the oldest live split.
func (rt *Runtime) WindowLo() uint64 { return rt.windowLo }

// RuntimeStats summarizes a runtime's cumulative activity across runs.
type RuntimeStats struct {
	// Runs is the number of completed runs (initial + incremental).
	Runs int64
	// LiveSplits is the current window length in splits.
	LiveSplits int
	// WindowLo is the sequence number of the oldest live split.
	WindowLo uint64
	// TreeStats is the cumulative contraction-tree work.
	TreeStats core.Stats
	// Memo is the memoization layer's snapshot.
	Memo memo.Stats
}

// Stats returns a snapshot of the runtime's cumulative activity.
func (rt *Runtime) Stats() RuntimeStats {
	return RuntimeStats{
		Runs:       rt.runs,
		LiveSplits: rt.live,
		WindowLo:   rt.windowLo,
		TreeStats:  rt.treeStats(),
		Memo:       rt.store.Stats(),
	}
}
