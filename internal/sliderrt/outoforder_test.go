package sliderrt

import (
	"bytes"
	"errors"
	"testing"

	"slider/internal/mapreduce"
)

// oooConfig is the canonical out-of-order Fixed config the tests drive:
// auto backend selection routed to the finger tree by AllowedLateness.
func oooConfig(par int) Config {
	return Config{
		Mode:            Fixed,
		BucketSplits:    2,
		WindowBuckets:   5,
		AllowedLateness: 3,
		Parallelism:     par,
		Memo:            testMemoConfig(),
	}
}

// oooHarness drives one out-of-order runtime against a flat split-window
// model, tracking the bucket ledger exactly as the runtime does.
type oooHarness struct {
	t      *testing.T
	job    *mapreduce.Job
	rt     *Runtime
	window []mapreduce.Split
	sizes  []int // splits per bucket, oldest first
	next   int
}

func newOOOHarness(t *testing.T, cfg Config) *oooHarness {
	t.Helper()
	h := &oooHarness{t: t, job: wordCountJob()}
	rt, err := New(h.job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.rt = rt
	n := cfg.BucketSplits * cfg.WindowBuckets
	h.window = genSplits(0, n, 4, 7)
	h.next = n
	res, err := rt.Initial(h.window)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.WindowBuckets; i++ {
		h.sizes = append(h.sizes, cfg.BucketSplits)
	}
	wantSameOutput(t, res.Output, scratch(t, h.job, h.window))
	return h
}

func (h *oooHarness) take(n int) []mapreduce.Split {
	s := genSplits(h.next, n, 4, 7)
	h.next += n
	return s
}

func (h *oooHarness) check(res *RunResult) {
	h.t.Helper()
	wantSameOutput(h.t, res.Output, scratch(h.t, h.job, h.window))
}

// slide advances by dropBuckets whole buckets and addBuckets fresh ones.
func (h *oooHarness) slide(dropBuckets, addBuckets int) {
	h.t.Helper()
	drop := 0
	for _, sz := range h.sizes[:dropBuckets] {
		drop += sz
	}
	w := h.rt.cfg.BucketSplits
	add := h.take(addBuckets * w)
	res, err := h.rt.Advance(drop, add)
	if err != nil {
		h.t.Fatalf("Advance(drop=%d, add=%d): %v", drop, len(add), err)
	}
	h.window = append(h.window[drop:], add...)
	h.sizes = append(h.sizes[dropBuckets:], make([]int, addBuckets)...)
	for i := len(h.sizes) - addBuckets; i < len(h.sizes); i++ {
		h.sizes[i] = w
	}
	h.check(res)
}

// late lands n late splits `lateness` buckets behind the newest.
func (h *oooHarness) late(lateness, n int) {
	h.t.Helper()
	late := h.take(n)
	res, err := h.rt.AdvanceLate(lateness, late)
	if err != nil {
		h.t.Fatalf("AdvanceLate(%d): %v", lateness, err)
	}
	pos := len(h.window)
	for i := len(h.sizes) - lateness; i < len(h.sizes); i++ {
		pos -= h.sizes[i]
	}
	h.window = append(h.window[:pos:pos], append(append([]mapreduce.Split{}, late...), h.window[pos:]...)...)
	bpos := len(h.sizes) - lateness
	h.sizes = append(h.sizes[:bpos:bpos], append([]int{n}, h.sizes[bpos:]...)...)
	h.check(res)
}

func TestResolveBackendOutOfOrder(t *testing.T) {
	job := wordCountJob()
	mk := func(mut func(*Config)) (*Runtime, error) {
		cfg := oooConfig(1)
		mut(&cfg)
		return New(job, cfg)
	}

	rt, err := mk(func(c *Config) {})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Backend() != BackendFingerTree {
		t.Fatalf("AllowedLateness>0 resolved to %v, want fingertree", rt.Backend())
	}

	// Every explicit non-fingertree backend is an illegal override for an
	// out-of-order job.
	for _, b := range []Backend{BackendDaba, BackendRotating, BackendCoalescing,
		BackendFolding, BackendRandomizedFolding} {
		if _, err := mk(func(c *Config) { c.Backend = b }); !errors.Is(err, ErrBadBackend) {
			t.Fatalf("out-of-order + explicit %v: err = %v, want ErrBadBackend", b, err)
		}
	}
	if _, err := mk(func(c *Config) { c.SplitProcessing = true }); !errors.Is(err, ErrBadBackend) {
		t.Fatalf("out-of-order + split processing: err = %v, want ErrBadBackend", err)
	}

	// Explicit fingertree is legal for an in-order Fixed job too.
	rt, err = mk(func(c *Config) { c.AllowedLateness = 0; c.Backend = BackendFingerTree })
	if err != nil {
		t.Fatal(err)
	}
	if rt.Backend() != BackendFingerTree {
		t.Fatalf("explicit fingertree resolved to %v", rt.Backend())
	}

	// AllowedLateness is a Fixed-mode knob.
	for _, mode := range []Mode{Append, Variable} {
		if _, err := mk(func(c *Config) { c.Mode = mode; c.BucketSplits = 0; c.WindowBuckets = 0 }); !errors.Is(err, ErrBadMode) {
			t.Fatalf("AllowedLateness in %v mode: err = %v, want ErrBadMode", mode, err)
		}
	}
}

// TestOutOfOrderOracle drives slides, late arrivals, bulk evictions, and
// bulk insertions through the finger-tree runtime, checking every output
// against recomputation from scratch at parallelism 1, 4, and 8.
func TestOutOfOrderOracle(t *testing.T) {
	for _, par := range []int{1, 4, 8} {
		h := newOOOHarness(t, oooConfig(par))
		h.slide(1, 1)            // plain slide
		h.late(1, 1)             // one split, one bucket behind the newest
		h.late(3, 2)             // deeper: two splits, three buckets back
		h.slide(2, 2)            // evicts the oldest two buckets
		h.late(0, 1)             // lateness 0: lands at the newest edge
		h.slide(3, 1)            // shrinks the window (bulk evict heavy)
		h.slide(0, 2)            // pure bulk insert (window grows back)
		h.slide(1, 1)            // and a normal slide to finish
		if got := h.rt.Live(); got != len(h.window) {
			t.Fatalf("par %d: Live = %d, model %d", par, got, len(h.window))
		}
	}
}

// TestOutOfOrderBulkBound asserts the tentpole's cost claim at the
// runtime layer: a K-bucket advance costs O(K + log w) combines per
// partition, with no K·log w cross term.
func TestOutOfOrderBulkBound(t *testing.T) {
	cfg := oooConfig(1)
	cfg.WindowBuckets = 64
	h := newOOOHarness(t, cfg)
	h.slide(1, 1) // settle
	for _, k := range []int{4, 16, 32} {
		before := h.rt.Stats().TreeStats.Merges
		h.slide(k, k)
		got := h.rt.Stats().TreeStats.Merges - before
		// Per partition: ≤ c·(K + log w) tree combines; the runtime also
		// folds each new bucket's w splits (K·(w−1) combines) and merges
		// K map outputs, so budget those separately.
		parts := int64(h.job.Partitions)
		w := int64(cfg.BucketSplits)
		bound := parts * (8*int64(k)*w + 16*7 + 32) // log2(64)+1 = 7
		if got > bound {
			t.Fatalf("K=%d: %d merges, bound %d (K+log w, no cross term)", k, got, bound)
		}
	}
}

func TestAdvanceLateRefusals(t *testing.T) {
	h := newOOOHarness(t, oooConfig(1))

	// Beyond the lateness allowance: the effective watermark refuses it.
	if _, err := h.rt.AdvanceLate(4, h.take(1)); !errors.Is(err, ErrTooLate) {
		t.Fatalf("lateness 4 > allowance 3: err = %v, want ErrTooLate", err)
	}
	// Below the configured low watermark, even within the allowance.
	cfg := oooConfig(1)
	cfg.Watermark = 4 // buckets 0..4 are sealed; newest is seq 4
	h2 := newOOOHarness(t, cfg)
	if _, err := h2.rt.AdvanceLate(2, h2.take(1)); !errors.Is(err, ErrTooLate) {
		t.Fatalf("target seq 3 < watermark 4: err = %v, want ErrTooLate", err)
	}
	if _, err := h2.rt.AdvanceLate(0, h2.take(1)); err != nil {
		t.Fatalf("lateness 0 at the watermark edge: %v", err)
	}

	// Late arrivals need the finger-tree backend.
	inOrder := Config{Mode: Fixed, BucketSplits: 2, WindowBuckets: 5, Memo: testMemoConfig()}
	rt, err := New(wordCountJob(), inOrder)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Initial(genSplits(0, 10, 4, 7)); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AdvanceLate(1, genSplits(10, 1, 4, 7)); !errors.Is(err, ErrBadBackend) {
		t.Fatalf("AdvanceLate on daba backend: err = %v, want ErrBadBackend", err)
	}

	// A drop that cuts a bucket in half is refused.
	if _, err := h.rt.Advance(1, h.take(2)); !errors.Is(err, ErrBadAdvance) {
		t.Fatalf("misaligned drop: err = %v, want ErrBadAdvance", err)
	}
}

// TestFingerTreeCheckpointRoundTrip checkpoints an out-of-order window —
// including late, narrow buckets — and restores it at parallelism 1, 4,
// and 8: StateFingerprint must be preserved bit-for-bit across the
// round-trip, and the restored runtime must keep answering correctly
// through further slides and late arrivals.
func TestFingerTreeCheckpointRoundTrip(t *testing.T) {
	for _, par := range []int{1, 4, 8} {
		h := newOOOHarness(t, oooConfig(par))
		h.slide(1, 1)
		h.late(2, 1)
		h.late(1, 3)

		var buf bytes.Buffer
		if err := h.rt.Checkpoint(&buf); err != nil {
			t.Fatalf("par %d: checkpoint: %v", par, err)
		}
		fpBefore := h.rt.StateFingerprint()

		restored, err := Restore(h.job, oooConfig(par), bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("par %d: restore: %v", par, err)
		}
		if restored.Backend() != BackendFingerTree {
			t.Fatalf("par %d: restored backend %v", par, restored.Backend())
		}
		if got := restored.StateFingerprint(); got != fpBefore {
			t.Fatalf("par %d: StateFingerprint changed across restore: %#x → %#x", par, fpBefore, got)
		}

		// The restored runtime continues the window where it left off.
		h.rt = restored
		h.slide(2, 1)
		h.late(1, 2)
		h.slide(1, 2)
	}
}

// TestFingerTreeCheckpointCrossParRestore: a checkpoint written at one
// parallelism restores at another with the same logical fingerprint.
func TestFingerTreeCheckpointCrossParRestore(t *testing.T) {
	h := newOOOHarness(t, oooConfig(4))
	h.slide(1, 1)
	h.late(2, 2)
	var buf bytes.Buffer
	if err := h.rt.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	fp := h.rt.StateFingerprint()
	restored, err := Restore(h.job, oooConfig(8), bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := restored.StateFingerprint(); got != fp {
		t.Fatalf("cross-par restore fingerprint: %#x → %#x", fp, got)
	}
	h.rt = restored
	h.slide(1, 1)
}

// TestRestoreFingerTreeConflictingBackend is the regression test for the
// refusal path: a FingerTree checkpoint restored under an explicit
// conflicting Config.Backend must fail with ErrBadBackend, in both
// directions.
func TestRestoreFingerTreeConflictingBackend(t *testing.T) {
	h := newOOOHarness(t, oooConfig(1))
	h.slide(1, 1)
	var buf bytes.Buffer
	if err := h.rt.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}

	// FingerTree checkpoint, explicit in-order daba config.
	cfg := Config{Mode: Fixed, BucketSplits: 2, WindowBuckets: 5,
		Backend: BackendDaba, Memo: testMemoConfig()}
	if _, err := Restore(h.job, cfg, bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrBadBackend) {
		t.Fatalf("fingertree checkpoint + explicit daba: err = %v, want ErrBadBackend", err)
	}
	// FingerTree checkpoint, out-of-order config pinned to rotating.
	cfg = oooConfig(1)
	cfg.Backend = BackendRotating
	if _, err := Restore(h.job, cfg, bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrBadBackend) {
		t.Fatalf("fingertree checkpoint + explicit rotating: err = %v, want ErrBadBackend", err)
	}

	// Daba checkpoint, out-of-order (auto→fingertree) config: refused too
	// — the checkpoint's backend cannot serve an out-of-order window.
	inOrder := Config{Mode: Fixed, BucketSplits: 2, WindowBuckets: 5, Memo: testMemoConfig()}
	rt, err := New(h.job, inOrder)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Initial(genSplits(0, 10, 4, 7)); err != nil {
		t.Fatal(err)
	}
	var dabaBuf bytes.Buffer
	if err := rt.Checkpoint(&dabaBuf); err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(h.job, oooConfig(1), bytes.NewReader(dabaBuf.Bytes())); err == nil {
		t.Fatal("daba checkpoint restored into an out-of-order config: want error")
	}

	// An auto in-order config follows a fingertree checkpoint's backend.
	auto := Config{Mode: Fixed, BucketSplits: 2, WindowBuckets: 5, Memo: testMemoConfig()}
	restored, err := Restore(h.job, auto, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Backend() != BackendFingerTree {
		t.Fatalf("auto restore followed checkpoint to %v, want fingertree", restored.Backend())
	}
}
