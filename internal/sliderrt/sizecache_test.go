package sliderrt

import (
	"sync"
	"testing"

	"slider/internal/mapreduce"
)

// TestPayloadSizesCachesAndPrunes checks the identity-keyed size cache:
// hits return the memoized measurement, re-measured payloads are marked
// live, and prune evicts exactly the entries untouched since the last
// prune.
func TestPayloadSizesCachesAndPrunes(t *testing.T) {
	job := wordCountJob()
	c := newPayloadSizes()

	a := mapreduce.Payload{"alpha": int64(3)}
	b := mapreduce.Payload{"beta": int64(1), "gamma": int64(2)}

	wantA := mapreduce.PayloadBytes(job, a)
	wantB := mapreduce.PayloadBytes(job, b)
	if got := c.bytes(job, a); got != wantA {
		t.Fatalf("bytes(a) = %d, want %d", got, wantA)
	}
	if got := c.bytes(job, b); got != wantB {
		t.Fatalf("bytes(b) = %d, want %d", got, wantB)
	}
	if got := c.bytes(job, a); got != wantA {
		t.Fatalf("cached bytes(a) = %d, want %d", got, wantA)
	}
	if c.len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.len())
	}

	// Empty payloads are never cached: they cost nothing to size and the
	// shared sentinel would otherwise pin one entry forever.
	if got := c.bytes(job, nil); got != 0 {
		t.Fatalf("bytes(nil) = %d, want 0", got)
	}
	if got := c.bytes(job, mapreduce.EmptyPayload()); got != 0 {
		t.Fatalf("bytes(sentinel) = %d, want 0", got)
	}
	if c.len() != 2 {
		t.Fatalf("cache holds %d entries after empty lookups, want 2", c.len())
	}

	// First prune: both entries were touched this generation and survive.
	c.prune()
	if c.len() != 2 {
		t.Fatalf("cache holds %d entries after prune, want 2", c.len())
	}

	// Touch only a this generation; the next prune must evict b.
	if got := c.bytes(job, a); got != wantA {
		t.Fatalf("bytes(a) after prune = %d, want %d", got, wantA)
	}
	c.prune()
	if c.len() != 1 {
		t.Fatalf("cache holds %d entries after selective prune, want 1", c.len())
	}
	if got := c.bytes(job, a); got != wantA {
		t.Fatalf("surviving bytes(a) = %d, want %d", got, wantA)
	}
}

// TestPayloadSizesConcurrent hammers one cache from many goroutines
// (partition workers size their roots concurrently) under -race.
func TestPayloadSizesConcurrent(t *testing.T) {
	job := wordCountJob()
	c := newPayloadSizes()
	payloads := make([]mapreduce.Payload, 16)
	want := make([]int64, len(payloads))
	for i := range payloads {
		payloads[i] = mapreduce.Payload{"k": int64(i), "k2": int64(i * i)}
		want[i] = mapreduce.PayloadBytes(job, payloads[i])
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 50; r++ {
				for i, p := range payloads {
					if got := c.bytes(job, p); got != want[i] {
						panic("wrong cached size")
					}
				}
				if r%10 == 0 {
					c.prune()
				}
			}
		}()
	}
	wg.Wait()
	if c.len() > len(payloads) {
		t.Fatalf("cache holds %d entries, want ≤ %d", c.len(), len(payloads))
	}
}

// TestPayloadSizesPooledReuse is the aliasing repro for the stale-size
// bug: an object pool that recycles a payload's backing map in place
// (clear, refill) keeps the map's address, so a pointer-only cache key
// keeps serving the size measured before the reuse. The (pointer, len)
// composite key must miss on the recycled generation and re-measure.
func TestPayloadSizesPooledReuse(t *testing.T) {
	job := wordCountJob()
	c := newPayloadSizes()

	p := mapreduce.Payload{"alpha": int64(1), "beta": int64(2)}
	before := mapreduce.PayloadBytes(job, p)
	if got := c.bytes(job, p); got != before {
		t.Fatalf("bytes before reuse = %d, want %d", got, before)
	}

	// Recycle the same map in place, as a pool would: same address, new
	// contents with a different entry count.
	for k := range p {
		delete(p, k)
	}
	p["a-much-longer-key-after-reuse"] = int64(7)
	p["second"] = int64(8)
	p["third"] = int64(9)

	after := mapreduce.PayloadBytes(job, p)
	if after == before {
		t.Fatal("test needs the recycled payload to have a different size")
	}
	if got := c.bytes(job, p); got != after {
		t.Fatalf("bytes after pooled reuse = %d (stale), want %d", got, after)
	}

	// The stale entry for the old generation ages out: after two prunes
	// with only the new generation touched, one entry remains.
	c.prune()
	if got := c.bytes(job, p); got != after {
		t.Fatalf("bytes after prune = %d, want %d", got, after)
	}
	c.prune()
	if c.len() != 1 {
		t.Fatalf("cache holds %d entries, want 1 after stale generation aged out", c.len())
	}
}
