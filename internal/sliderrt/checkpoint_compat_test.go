package sliderrt

import (
	"bytes"
	"testing"

	"slider/internal/persist"
)

// downgradeToV1 rewrites a current checkpoint frame into the version-1
// layout: payload state moved back into the legacy gob map fields, flat
// byte fields absent, Version 1. This is byte-for-byte what a pre-flat
// writer produced (gob omits nil fields from the stream), so restoring it
// exercises the real upgrade path.
func downgradeToV1(t *testing.T, frame []byte) []byte {
	t.Helper()
	var st checkpointState
	if err := persist.Decode(frame, &st); err != nil {
		t.Fatal(err)
	}
	if st.Version != checkpointVersion {
		t.Fatalf("seed checkpoint version %d, want %d", st.Version, checkpointVersion)
	}
	for p := range st.Partitions {
		pc := &st.Partitions[p]
		var err error
		if pc.HasRoot {
			if pc.Root, err = persist.DecodePayload(pc.FlatRoot); err != nil {
				t.Fatal(err)
			}
		}
		if pc.HasPending {
			if pc.Pending, err = persist.DecodePayload(pc.FlatPending); err != nil {
				t.Fatal(err)
			}
		}
		if pc.FlatBuckets != nil {
			if pc.Buckets, err = persist.DecodePayloadSet(pc.FlatBuckets); err != nil {
				t.Fatal(err)
			}
		}
		if pc.FlatLeaves != nil {
			if pc.LeafPayloads, err = persist.DecodePayloadSet(pc.FlatLeaves); err != nil {
				t.Fatal(err)
			}
		}
		pc.FlatRoot, pc.FlatPending, pc.FlatBuckets, pc.FlatLeaves = nil, nil, nil, nil
	}
	st.Version = 1
	out, err := persist.Encode(st)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// v1RoundTrip checkpoints a driven runtime, downgrades the frame to the
// version-1 layout, restores it, and requires the restored runtime to
// match both the original and a from-scratch oracle over further slides.
func v1RoundTrip(t *testing.T, cfg Config, initial int, firstHalf, secondHalf []slide) {
	t.Helper()
	job := wordCountJob()
	cfg.Memo = testMemoConfig()
	original, err := New(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	window := genSplits(0, initial, 4, 7)
	next := initial
	if _, err := original.Initial(window); err != nil {
		t.Fatal(err)
	}
	for _, s := range firstHalf {
		add := genSplits(next, s.add, 4, 7)
		next += s.add
		if _, err := original.Advance(s.drop, add); err != nil {
			t.Fatal(err)
		}
		window = append(window[s.drop:], add...)
	}

	var buf bytes.Buffer
	if err := original.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(wordCountJob(), cfg, bytes.NewReader(downgradeToV1(t, buf.Bytes())))
	if err != nil {
		t.Fatal(err)
	}

	for i, s := range secondHalf {
		add := genSplits(next, s.add, 4, 7)
		next += s.add
		origRes, err := original.Advance(s.drop, add)
		if err != nil {
			t.Fatalf("original slide %d: %v", i, err)
		}
		restRes, err := restored.Advance(s.drop, add)
		if err != nil {
			t.Fatalf("restored slide %d: %v", i, err)
		}
		window = append(window[s.drop:], add...)
		wantSameOutput(t, restRes.Output, origRes.Output)
		wantSameOutput(t, restRes.Output, scratch(t, job, window))
	}
}

func TestRestoreV1Append(t *testing.T) {
	v1RoundTrip(t, Config{Mode: Append}, 4,
		[]slide{{0, 2}, {0, 1}}, []slide{{0, 3}, {0, 2}})
}

func TestRestoreV1Fixed(t *testing.T) {
	cfg := Config{Mode: Fixed, BucketSplits: 2, WindowBuckets: 4}
	v1RoundTrip(t, cfg, 8,
		[]slide{{2, 2}, {2, 2}}, []slide{{2, 2}, {4, 4}})
}

func TestRestoreV1VariableFolding(t *testing.T) {
	v1RoundTrip(t, Config{Mode: Variable}, 8,
		[]slide{{3, 1}, {0, 5}}, []slide{{6, 2}, {1, 0}})
}

func TestRestoreV1Strawman(t *testing.T) {
	v1RoundTrip(t, Config{Mode: Variable, Engine: Strawman}, 8,
		[]slide{{3, 1}}, []slide{{0, 4}})
}

// TestRestoreV1LegacyVictimIntoDaba is the deepest compatibility path: a
// true version-1 frame (live map payloads) written by the rotating tree
// before backends existed — Backend absent (gob zero = BackendAuto),
// Buckets in leaf-position order, nonzero Victim. Restoring under an auto
// config must decode the v1 maps AND rotate the buckets into window order
// for the DABA aggregator, or later slides evict the wrong bucket.
func TestRestoreV1LegacyVictimIntoDaba(t *testing.T) {
	job := wordCountJob()
	cfg := Config{Mode: Fixed, BucketSplits: 2, WindowBuckets: 4, Memo: testMemoConfig()}
	rotCfg := cfg
	rotCfg.Backend = BackendRotating
	original, err := New(job, rotCfg)
	if err != nil {
		t.Fatal(err)
	}
	window := genSplits(0, 8, 4, 7)
	next := 8
	if _, err := original.Initial(window); err != nil {
		t.Fatal(err)
	}
	for _, s := range []slide{{2, 2}, {2, 2}, {2, 2}} {
		add := genSplits(next, s.add, 4, 7)
		next += s.add
		if _, err := original.Advance(s.drop, add); err != nil {
			t.Fatal(err)
		}
		window = append(window[s.drop:], add...)
	}

	var buf bytes.Buffer
	if err := original.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	v1 := downgradeToV1(t, buf.Bytes())
	var st checkpointState
	if err := persist.Decode(v1, &st); err != nil {
		t.Fatal(err)
	}
	victims := 0
	for _, pc := range st.Partitions {
		if pc.Victim != 0 {
			victims++
		}
	}
	if victims == 0 {
		t.Fatal("test needs a nonzero victim cursor to exercise the rotation")
	}
	st.Backend = BackendAuto // pre-backend writers had no Backend field
	frame, err := persist.Encode(st)
	if err != nil {
		t.Fatal(err)
	}

	restored, err := Restore(wordCountJob(), cfg, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	if got := restored.Backend(); got != BackendDaba {
		t.Fatalf("restored backend = %v, want %v", got, BackendDaba)
	}
	for i, s := range []slide{{2, 2}, {2, 2}, {4, 4}, {2, 2}} {
		add := genSplits(next, s.add, 4, 7)
		next += s.add
		res, err := restored.Advance(s.drop, add)
		if err != nil {
			t.Fatalf("restored slide %d: %v", i, err)
		}
		window = append(window[s.drop:], add...)
		wantSameOutput(t, res.Output, scratch(t, job, window))
	}
}

// TestStateFingerprint pins the canonical-hash contract: identical
// logical state fingerprints identically across independent runtimes and
// parallelism levels, a checkpoint/restore round trip preserves the
// fingerprint, and advancing the window changes it.
func TestStateFingerprint(t *testing.T) {
	cfg := Config{Mode: Fixed, BucketSplits: 2, WindowBuckets: 4, Memo: testMemoConfig()}
	build := func(par int) *Runtime {
		c := cfg
		c.Parallelism = par
		rt, err := New(wordCountJob(), c)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rt.Initial(genSplits(0, 8, 4, 7)); err != nil {
			t.Fatal(err)
		}
		if _, err := rt.Advance(2, genSplits(8, 2, 4, 7)); err != nil {
			t.Fatal(err)
		}
		return rt
	}
	a, b := build(1), build(4)
	if a.StateFingerprint() != b.StateFingerprint() {
		t.Fatalf("identical state fingerprints differ: %#x vs %#x (par 1 vs 4)",
			a.StateFingerprint(), b.StateFingerprint())
	}

	var buf bytes.Buffer
	if err := a.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(wordCountJob(), cfg, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if restored.StateFingerprint() != a.StateFingerprint() {
		t.Fatalf("restore changed the fingerprint: %#x vs %#x",
			restored.StateFingerprint(), a.StateFingerprint())
	}

	if _, err := a.Advance(2, genSplits(10, 2, 4, 7)); err != nil {
		t.Fatal(err)
	}
	if a.StateFingerprint() == b.StateFingerprint() {
		t.Fatal("advancing the window did not change the fingerprint")
	}
}

// TestRestoreRejectsFutureVersion keeps the version gate honest.
func TestRestoreRejectsFutureVersion(t *testing.T) {
	job := wordCountJob()
	cfg := Config{Mode: Append, Memo: testMemoConfig()}
	rt, err := New(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Initial(genSplits(0, 4, 4, 7)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rt.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	var st checkpointState
	if err := persist.Decode(buf.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	st.Version = checkpointVersion + 1
	frame, err := persist.Encode(st)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(wordCountJob(), cfg, bytes.NewReader(frame)); err == nil {
		t.Fatal("future checkpoint version accepted")
	}
}
