package sliderrt

import (
	"fmt"
	"io"

	"slider/internal/core"
	"slider/internal/mapreduce"
	"slider/internal/persist"
)

// checkpointVersion guards the on-disk format. Version 2 carries payload
// state as flat byte blobs (internal/flatenc via persist frames) inside
// the gob-framed metadata; version 1 carried live Payload maps and is
// still restorable — gob tolerates the missing flat fields, and Restore
// dispatches on Version per partition.
const checkpointVersion = 2

// checkpointState is the serialized form of a Runtime between runs: the
// window bookkeeping plus, per partition, the minimal tree state from
// which the contraction structure is rebuilt on restore.
type checkpointState struct {
	Version    int
	Mode       Mode
	Engine     Engine
	Randomized bool
	// Backend records the resolved aggregation backend: it decides how a
	// Fixed-mode partition's Buckets are interpreted (window order for
	// daba, leaf-position order plus Victim for rotating) and lets a
	// live-switched runtime resume on the structure it was using.
	// Zero (BackendAuto, pre-backend checkpoints) defers to resolution.
	Backend       Backend
	BucketSplits  int
	WindowBuckets int
	Seq           uint64
	WindowLo      uint64
	Live          int
	Parts         int
	// Finger-tree (out-of-order) window ledger: splits per live bucket in
	// window order, and the in-order bucket clock the watermark is
	// computed from. Nil/zero for every other backend — gob tolerates the
	// absent fields, so the format stays version 2.
	BucketSizes []int
	BucketSeq   uint64
	Partitions  []partCheckpoint
}

// partCheckpoint holds one partition's tree state. Exactly one field
// group is populated, matching the runtime's mode and engine.
//
// Version 1 checkpoints carried payloads in the gob-encoded map fields
// (Root, Pending, Buckets, LeafPayloads); version 2 writes the same state
// as flat frames in the Flat* fields and leaves the map fields nil. Both
// decode through the same struct: gob silently skips fields absent from
// the stream.
type partCheckpoint struct {
	// Append mode (coalescing tree).
	Root       Payload // v1 only
	HasRoot    bool
	Pending    Payload // v1 only
	HasPending bool
	// Fixed mode (rotating or daba buckets).
	Buckets []Payload // v1 only
	Victim  int
	Filled  bool
	// Variable mode and the strawman engine (leaf sequences).
	LeafIDs      []uint64
	LeafPayloads []Payload // v1 only
	// Version 2 flat state: payload frames (persist.EncodePayload) and
	// payload-set frames (persist.EncodePayloadSet).
	FlatRoot    []byte
	FlatPending []byte
	FlatBuckets []byte
	FlatLeaves  []byte
}

// Checkpoint serializes the runtime's window state so that processing can
// resume after a driver crash or restart (Restore). Application value
// types stored in payloads must be registered with persist.RegisterType
// first. Checkpointing between runs captures a consistent state: split
// processing's background step always completes within Advance.
func (rt *Runtime) Checkpoint(w io.Writer) error {
	if !rt.started {
		return ErrNotInitial
	}
	st := checkpointState{
		Version:       checkpointVersion,
		Mode:          rt.cfg.Mode,
		Engine:        rt.cfg.Engine,
		Randomized:    rt.cfg.Randomized,
		Backend:       rt.backend,
		BucketSplits:  rt.cfg.BucketSplits,
		WindowBuckets: rt.cfg.WindowBuckets,
		Seq:           rt.seq,
		WindowLo:      rt.windowLo,
		Live:          rt.live,
		Parts:         rt.parts,
		Partitions:    make([]partCheckpoint, rt.parts),
	}
	if rt.backend == BackendFingerTree {
		st.BucketSizes = append([]int(nil), rt.bucketSizes...)
		st.BucketSeq = rt.bucketSeq
	}
	for p := 0; p < rt.parts; p++ {
		pc := &st.Partitions[p]
		var err error
		switch {
		case rt.cfg.Engine == Strawman:
			var leafPayloads []Payload
			for _, leaf := range rt.leaves[p] {
				pc.LeafIDs = append(pc.LeafIDs, leaf.ID)
				leafPayloads = append(leafPayloads, leaf.Payload)
			}
			pc.FlatLeaves, err = persist.EncodePayloadSet(leafPayloads)
		case rt.cfg.Mode == Append:
			var root, pending Payload
			root, pc.HasRoot = rt.coal[p].Root()
			pending, pc.HasPending = rt.coal[p].PendingPayload()
			if pc.HasRoot {
				if pc.FlatRoot, err = persist.EncodePayload(root); err != nil {
					break
				}
			}
			if pc.HasPending {
				pc.FlatPending, err = persist.EncodePayload(pending)
			}
		case rt.cfg.Mode == Fixed:
			var buckets []Payload
			switch rt.backend {
			case BackendDaba:
				buckets, pc.Filled = rt.daba[p].BucketPayloads()
			case BackendFingerTree:
				buckets, pc.Filled = rt.finger[p].BucketPayloads()
			default:
				buckets, pc.Filled = rt.rot[p].BucketPayloads()
				pc.Victim = rt.rot[p].Victim()
			}
			pc.FlatBuckets, err = persist.EncodePayloadSet(buckets)
		case rt.cfg.Randomized:
			var leafPayloads []Payload
			for _, item := range rt.rnd[p].Items() {
				pc.LeafIDs = append(pc.LeafIDs, item.ID)
				leafPayloads = append(leafPayloads, item.Payload)
			}
			pc.FlatLeaves, err = persist.EncodePayloadSet(leafPayloads)
		default:
			pc.FlatLeaves, err = persist.EncodePayloadSet(rt.fold[p].Payloads())
		}
		if err != nil {
			return fmt.Errorf("sliderrt: checkpoint partition %d: %w", p, err)
		}
	}
	frame, err := persist.Encode(st)
	if err != nil {
		return fmt.Errorf("sliderrt: checkpoint: %w", err)
	}
	if _, err := w.Write(frame); err != nil {
		return fmt.Errorf("sliderrt: checkpoint write: %w", err)
	}
	return nil
}

// rootPayload returns the partition's coalescing root, version-dispatched:
// flat frame for v2, live map for v1.
func (pc *partCheckpoint) rootPayload(version int) (Payload, error) {
	if version < 2 {
		return pc.Root, nil
	}
	if !pc.HasRoot {
		return nil, nil
	}
	return persist.DecodePayload(pc.FlatRoot)
}

// pendingPayload returns the partition's pending coalescing payload.
func (pc *partCheckpoint) pendingPayload(version int) (Payload, error) {
	if version < 2 {
		return pc.Pending, nil
	}
	if !pc.HasPending {
		return nil, nil
	}
	return persist.DecodePayload(pc.FlatPending)
}

// bucketPayloads returns the partition's Fixed-mode buckets.
func (pc *partCheckpoint) bucketPayloads(version int) ([]Payload, error) {
	if version < 2 {
		return pc.Buckets, nil
	}
	return persist.DecodePayloadSet(pc.FlatBuckets)
}

// leafPayloadList returns the partition's leaf payload sequence.
func (pc *partCheckpoint) leafPayloadList(version int) ([]Payload, error) {
	if version < 2 {
		return pc.LeafPayloads, nil
	}
	return persist.DecodePayloadSet(pc.FlatLeaves)
}

// Restore reconstructs a runtime from a checkpoint produced by
// Checkpoint. The job and configuration must match the checkpointed
// runtime's (mode, engine, and bucket geometry are verified). The
// contraction trees are rebuilt from the persisted leaf state; the next
// Advance continues the window where the checkpoint left it.
func Restore(job *mapreduce.Job, cfg Config, r io.Reader) (*Runtime, error) {
	frame, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("sliderrt: restore read: %w", err)
	}
	var st checkpointState
	if err := persist.Decode(frame, &st); err != nil {
		return nil, fmt.Errorf("sliderrt: restore: %w", err)
	}
	if st.Version < 1 || st.Version > checkpointVersion {
		return nil, fmt.Errorf("sliderrt: restore: unsupported checkpoint version %d", st.Version)
	}
	rt, err := New(job, cfg)
	if err != nil {
		return nil, err
	}
	if rt.cfg.Mode != st.Mode || rt.cfg.Engine != st.Engine || rt.cfg.Randomized != st.Randomized {
		return nil, fmt.Errorf("sliderrt: restore: configuration mismatch (checkpoint %v/%v, config %v/%v)",
			st.Mode, st.Engine, rt.cfg.Mode, rt.cfg.Engine)
	}
	if rt.cfg.Mode == Fixed &&
		(rt.cfg.BucketSplits != st.BucketSplits || rt.cfg.WindowBuckets != st.WindowBuckets) {
		return nil, fmt.Errorf("sliderrt: restore: bucket geometry mismatch")
	}
	if st.Parts != rt.parts {
		return nil, fmt.Errorf("sliderrt: restore: partition count mismatch (checkpoint %d, job %d)",
			st.Parts, rt.parts)
	}
	if st.Backend != BackendAuto && st.Backend != rt.backend {
		// The checkpointed runtime ran a different backend than this
		// configuration resolves to (pinned writer, or a live switch
		// before the checkpoint). An explicit conflicting override is an
		// error; under BackendAuto the restore follows the checkpoint,
		// subject to the same property gates as New.
		if cfg.Backend != BackendAuto {
			return nil, fmt.Errorf("%w: restore: backend mismatch (checkpoint %v, config %v)",
				ErrBadBackend, st.Backend, rt.backend)
		}
		probe := rt.cfg
		probe.Backend = st.Backend
		if _, err := probe.resolveBackend(job); err != nil {
			return nil, fmt.Errorf("sliderrt: restore: %w", err)
		}
		rt.backend = st.Backend
	}
	rt.allocTrees()
	for p := 0; p < rt.parts; p++ {
		pc := &st.Partitions[p]
		switch {
		case rt.cfg.Engine == Strawman:
			leafPayloads, err := pc.leafPayloadList(st.Version)
			if err != nil {
				return nil, fmt.Errorf("sliderrt: restore partition %d: %w", p, err)
			}
			items := make([]core.Item[Payload], len(leafPayloads))
			for i := range leafPayloads {
				items[i] = core.Item[Payload]{ID: pc.LeafIDs[i], Payload: leafPayloads[i]}
			}
			rt.leaves[p] = items
			rt.straw[p].Build(items)
		case rt.cfg.Mode == Append:
			root, err := pc.rootPayload(st.Version)
			if err != nil {
				return nil, fmt.Errorf("sliderrt: restore partition %d: %w", p, err)
			}
			pending, err := pc.pendingPayload(st.Version)
			if err != nil {
				return nil, fmt.Errorf("sliderrt: restore partition %d: %w", p, err)
			}
			rt.coal[p].Restore(root, pc.HasRoot, pending, pc.HasPending)
		case rt.cfg.Mode == Fixed:
			if !pc.Filled {
				return nil, fmt.Errorf("sliderrt: restore: partition %d window not filled", p)
			}
			buckets, err := pc.bucketPayloads(st.Version)
			if err != nil {
				return nil, fmt.Errorf("sliderrt: restore partition %d: %w", p, err)
			}
			if rt.backend == BackendDaba {
				bs := buckets
				if st.Backend == BackendAuto && pc.Victim != 0 {
					// Pre-backend checkpoints (Backend unrecorded, gob
					// zero) were written by the rotating tree: Buckets are
					// in leaf-position order and Victim marks the oldest
					// bucket. Rotate into the window order the DABA
					// aggregator expects; post-backend daba frames record
					// a concrete Backend and leave Victim zero.
					if pc.Victim < 0 || pc.Victim >= len(bs) {
						return nil, fmt.Errorf("sliderrt: restore partition %d: victim %d out of range [0,%d)",
							p, pc.Victim, len(bs))
					}
					bs = append(append(make([]Payload, 0, len(bs)), bs[pc.Victim:]...), bs[:pc.Victim]...)
				}
				if err := rt.daba[p].Restore(bs); err != nil {
					return nil, fmt.Errorf("sliderrt: restore partition %d: %w", p, err)
				}
				break
			}
			if rt.backend == BackendFingerTree {
				bs := buckets
				if st.Backend == BackendAuto && pc.Victim != 0 {
					// Pre-backend rotating frames: leaf-position order with
					// Victim marking the oldest bucket — rotate into window
					// order, as on the DABA restore path.
					if pc.Victim < 0 || pc.Victim >= len(bs) {
						return nil, fmt.Errorf("sliderrt: restore partition %d: victim %d out of range [0,%d)",
							p, pc.Victim, len(bs))
					}
					bs = append(append(make([]Payload, 0, len(bs)), bs[pc.Victim:]...), bs[:pc.Victim]...)
				}
				if err := rt.finger[p].Restore(bs); err != nil {
					return nil, fmt.Errorf("sliderrt: restore partition %d: %w", p, err)
				}
				break
			}
			if err := rt.rot[p].RestoreAt(buckets, pc.Victim); err != nil {
				return nil, fmt.Errorf("sliderrt: restore partition %d: %w", p, err)
			}
			if rt.cfg.SplitProcessing {
				if err := rt.rot[p].PrepareBackground(); err != nil {
					return nil, err
				}
			}
		case rt.cfg.Randomized:
			leafPayloads, err := pc.leafPayloadList(st.Version)
			if err != nil {
				return nil, fmt.Errorf("sliderrt: restore partition %d: %w", p, err)
			}
			items := make([]core.Item[Payload], len(leafPayloads))
			for i := range leafPayloads {
				items[i] = core.Item[Payload]{ID: pc.LeafIDs[i], Payload: leafPayloads[i]}
			}
			rt.rnd[p].Init(items)
		default:
			leafPayloads, err := pc.leafPayloadList(st.Version)
			if err != nil {
				return nil, fmt.Errorf("sliderrt: restore partition %d: %w", p, err)
			}
			rt.fold[p].Init(leafPayloads)
		}
	}
	rt.seq = st.Seq
	rt.windowLo = st.WindowLo
	rt.live = st.Live
	if rt.backend == BackendFingerTree {
		if len(st.BucketSizes) > 0 {
			rt.bucketSizes = append([]int(nil), st.BucketSizes...)
			rt.bucketSeq = st.BucketSeq
		} else {
			// Checkpoint written by an in-order backend (or pre-ledger
			// frame): the window is WindowBuckets uniform buckets of w.
			rt.bucketSizes = make([]int, st.WindowBuckets)
			for i := range rt.bucketSizes {
				rt.bucketSizes[i] = st.BucketSplits
			}
			rt.bucketSeq = uint64(st.WindowBuckets)
		}
	}
	rt.publishWindowGauges()
	rt.started = true
	return rt, nil
}
