package sliderrt

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"slider/internal/mapreduce"
	"slider/internal/metrics"
)

// concatJob is associative but NOT commutative: it joins every line in
// window order, so any backend that re-orders buckets relative to
// window age produces a different string. Only order-preserving
// backends (DABA, strawman) may serve it in Fixed mode.
func concatJob() *mapreduce.Job {
	join := func(values []mapreduce.Value) mapreduce.Value {
		var sb strings.Builder
		for i, v := range values {
			if i > 0 {
				sb.WriteByte('|')
			}
			sb.WriteString(v.(string))
		}
		return sb.String()
	}
	return &mapreduce.Job{
		Name:       "concat",
		Partitions: 2,
		Map: func(rec mapreduce.Record, emit mapreduce.Emit) error {
			line, ok := rec.(string)
			if !ok {
				return fmt.Errorf("record %T is not a string", rec)
			}
			emit("seq", line)
			return nil
		},
		Combine:     func(_ string, values []mapreduce.Value) mapreduce.Value { return join(values) },
		Reduce:      func(_ string, values []mapreduce.Value) mapreduce.Value { return join(values) },
		Commutative: false,
	}
}

// TestDabaServesNonCommutativeFixedWindow is the capability the DABA
// backend unlocks: a fixed-width window over a non-commutative combiner,
// previously rejected outright, now runs incrementally and matches
// from-scratch recomputation (which processes splits strictly in window
// order) on every slide.
func TestDabaServesNonCommutativeFixedWindow(t *testing.T) {
	job := concatJob()
	rt, err := New(job, Config{Mode: Fixed, BucketSplits: 2, WindowBuckets: 4, Memo: testMemoConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if rt.Backend() != BackendDaba {
		t.Fatalf("backend = %v, want daba", rt.Backend())
	}
	window := genSplits(0, 8, 3, 11)
	next := 8
	res, err := rt.Initial(window)
	if err != nil {
		t.Fatal(err)
	}
	check := func(res *RunResult) {
		t.Helper()
		want, err := mapreduce.RunScratch(job, window, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Output["seq"]; got != want["seq"] {
			t.Fatalf("window concatenation diverged:\n got %v\nwant %v", got, want["seq"])
		}
	}
	check(res)
	for i := 0; i < 10; i++ {
		k := 1 + i%2 // alternate 1- and 2-bucket slides
		add := genSplits(next, 2*k, 3, 11)
		next += 2 * k
		res, err := rt.Advance(2*k, add)
		if err != nil {
			t.Fatalf("slide %d: %v", i, err)
		}
		window = append(window[2*k:], add...)
		check(res)
	}
}

// TestDabaBeatsRotatingMergeCount pins both Fixed-mode backends on the
// same schedule and checks the headline asymptotics: DABA's foreground
// merges per slide are a small constant, strictly below the rotating
// tree's log-depth root path at a wide window.
func TestDabaBeatsRotatingMergeCount(t *testing.T) {
	job := wordCountJob()
	run := func(backend Backend) int64 {
		cfg := Config{Mode: Fixed, Backend: backend, BucketSplits: 1, WindowBuckets: 64, Memo: testMemoConfig()}
		rt, err := New(job, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rt.Initial(genSplits(0, 64, 4, 5)); err != nil {
			t.Fatal(err)
		}
		var merges int64
		for i := 0; i < 8; i++ {
			res, err := rt.Advance(1, genSplits(64+i, 1, 4, 5))
			if err != nil {
				t.Fatal(err)
			}
			merges += res.TreeStats.Merges
		}
		return merges
	}
	daba := run(BackendDaba)
	rotating := run(BackendRotating)
	if daba >= rotating {
		t.Fatalf("daba merges (%d) should be below rotating (%d) at window 64", daba, rotating)
	}
	// Worst case ≤ 6 combines per bucket slide per partition.
	if max := int64(8 * 6 * job.Partitions); daba > max {
		t.Fatalf("daba merges (%d) exceed the constant bound %d", daba, max)
	}
}

// TestBackendLiveSwitch drives the SwitchHook across the legal Fixed-mode
// pair in both directions, checking outputs against scratch throughout,
// and that a checkpoint taken after a switch restores onto the switched
// backend under BackendAuto.
func TestBackendLiveSwitch(t *testing.T) {
	job := wordCountJob()
	var want Backend = BackendDaba
	hookCalls := 0
	cfg := Config{
		Mode: Fixed, BucketSplits: 2, WindowBuckets: 4, Memo: testMemoConfig(),
		Obs: metrics.NewSlideObs(),
		SwitchHook: func(cur Backend, contract metrics.HistogramSnapshot) Backend {
			hookCalls++
			return want
		},
	}
	rt, err := New(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	window := genSplits(0, 8, 4, 7)
	next := 8
	if _, err := rt.Initial(window); err != nil {
		t.Fatal(err)
	}
	advance := func() {
		t.Helper()
		add := genSplits(next, 2, 4, 7)
		next += 2
		res, err := rt.Advance(2, add)
		if err != nil {
			t.Fatal(err)
		}
		window = append(window[2:], add...)
		wantSameOutput(t, res.Output, scratch(t, job, window))
	}
	advance()
	if rt.Backend() != BackendDaba || hookCalls == 0 {
		t.Fatalf("backend = %v after %d hook calls, want daba", rt.Backend(), hookCalls)
	}
	want = BackendRotating
	advance() // hook fires at the end: switch happens after this slide
	if rt.Backend() != BackendRotating {
		t.Fatalf("backend = %v, want rotating after switch", rt.Backend())
	}
	advance() // a full slide on the rotating tree

	// A checkpoint taken now records the switched backend; restore under
	// BackendAuto must follow it.
	var buf bytes.Buffer
	if err := rt.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	checkpointWindow := append([]mapreduce.Split{}, window...)
	restoreCfg := cfg
	restoreCfg.SwitchHook = nil
	restored, err := Restore(wordCountJob(), restoreCfg, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if restored.Backend() != BackendRotating {
		t.Fatalf("restored backend = %v, want rotating from checkpoint", restored.Backend())
	}

	want = BackendDaba
	advance() // switch back
	if rt.Backend() != BackendDaba {
		t.Fatalf("backend = %v, want daba after switch back", rt.Backend())
	}
	advance()

	// The restored runtime (no hook) stays rotating and agrees with the
	// scratch oracle when it resumes from the checkpointed window.
	restWindow := checkpointWindow
	add := genSplits(next, 2, 4, 7)
	res, err := restored.Advance(2, add)
	if err != nil {
		t.Fatal(err)
	}
	restWindow = append(restWindow[2:], add...)
	wantSameOutput(t, res.Output, scratch(t, job, restWindow))
	if restored.Backend() != BackendRotating {
		t.Fatalf("restored runtime switched without a hook: %v", restored.Backend())
	}
}

// TestBackendLiveSwitchRefusesIllegalTarget: a non-commutative job may
// never be switched onto the rotating tree, whatever the hook says.
func TestBackendLiveSwitchRefusesIllegalTarget(t *testing.T) {
	job := concatJob()
	cfg := Config{
		Mode: Fixed, BucketSplits: 1, WindowBuckets: 4, Memo: testMemoConfig(),
		SwitchHook: func(Backend, metrics.HistogramSnapshot) Backend { return BackendRotating },
	}
	rt, err := New(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Initial(genSplits(0, 4, 2, 3)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := rt.Advance(1, genSplits(4+i, 1, 2, 3)); err != nil {
			t.Fatal(err)
		}
	}
	if rt.Backend() != BackendDaba {
		t.Fatalf("non-commutative job switched to %v", rt.Backend())
	}
}

// TestCheckpointFixedRotatingPinned keeps rotating-tree checkpoint
// coverage now that plain Fixed mode resolves to DABA.
func TestCheckpointFixedRotatingPinned(t *testing.T) {
	cfg := Config{Mode: Fixed, Backend: BackendRotating, BucketSplits: 2, WindowBuckets: 4}
	checkpointRoundTrip(t, cfg, 8, []slide{{2, 2}}, []slide{{2, 2}, {4, 4}})
}

// TestRestoreBackendMismatch: an explicit override that contradicts the
// checkpointed backend is refused rather than silently reinterpreting
// the persisted buckets.
func TestRestoreBackendMismatch(t *testing.T) {
	job := wordCountJob()
	cfg := Config{Mode: Fixed, BucketSplits: 2, WindowBuckets: 4, Memo: testMemoConfig()}
	rt, err := New(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Initial(genSplits(0, 8, 4, 7)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rt.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Backend = BackendRotating
	if _, err := Restore(wordCountJob(), bad, bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("daba checkpoint restored under an explicit rotating override")
	}
}
