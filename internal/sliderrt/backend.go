package sliderrt

import (
	"fmt"

	"slider/internal/mapreduce"
	"slider/internal/metrics"
)

// Backend names the aggregation structure behind a runtime's reduce
// phase. The window mode picks the family (§3–§4); the backend picks
// the concrete structure inside it. BackendAuto — the default — lets
// the selection layer resolve the cheapest legal structure for the
// query: combiner properties (from the job declaration, property-tested
// by mapreduce.CheckJob) plus window pattern.
//
// The selection matrix:
//
//	Mode      SplitProcessing  Commutative  → backend
//	Fixed     no               any          → BackendDaba (O(1)/slide)
//	Fixed + AllowedLateness>0: any          → BackendFingerTree
//	                                          (O(K + log w) bulk/late ops)
//	Fixed     yes              yes          → BackendRotating (O(log N))
//	Fixed     yes              no           → error
//	Append    —                any          → BackendCoalescing
//	Variable  —                any          → BackendFolding
//	                                          (BackendRandomizedFolding
//	                                          with Config.Randomized)
//	Engine Strawman              any        → BackendStrawman
//
// An explicit Backend overrides the auto pick but is still validated
// against the mode and the combiner: a non-commutative combiner can
// never be routed to the rotating tree (its circular buckets re-order
// window age relative to tree position), and the DABA backend — strictly
// in-order — never requires commutativity but cannot serve split
// processing or variable-width windows. Out-of-order jobs (a positive
// Config.AllowedLateness) require the finger tree: it is the only
// backend whose window is a searchable structure a late record can land
// in the middle of, so any other explicit backend is ErrBadBackend.
type Backend int

// Backends.
const (
	// BackendAuto resolves to the cheapest legal backend for the query.
	BackendAuto Backend = iota
	// BackendDaba is the DABA Lite worst-case O(1) in-order aggregator
	// (fixed-width windows; associative combiner suffices).
	BackendDaba
	// BackendRotating is the rotating contraction tree of §4.1
	// (fixed-width windows; requires a commutative combiner; the only
	// backend supporting split processing in Fixed mode).
	BackendRotating
	// BackendCoalescing is the append-only coalescing tree of §4.2.
	BackendCoalescing
	// BackendFolding is the folding tree of §3.1 (variable windows).
	BackendFolding
	// BackendRandomizedFolding is the randomized folding tree of §3.2.
	BackendRandomizedFolding
	// BackendStrawman is the memoization-only baseline of §2.
	BackendStrawman
	// BackendFingerTree is the FiBA-style finger-tree aggregator for
	// out-of-order fixed-width windows: late records land at their true
	// window position (InsertAt) and K-bucket evictions/insertions cost
	// O(K + log w) combines (BulkEvict/BulkInsert). The only backend
	// serving jobs with Config.AllowedLateness > 0; also legal as an
	// explicit choice for in-order Fixed jobs. Appended after the
	// original six so persisted checkpoint backend values stay stable.
	BackendFingerTree
)

// String names the backend as it appears in flags and logs.
func (b Backend) String() string {
	switch b {
	case BackendAuto:
		return "auto"
	case BackendDaba:
		return "daba"
	case BackendRotating:
		return "rotating"
	case BackendCoalescing:
		return "coalescing"
	case BackendFolding:
		return "folding"
	case BackendRandomizedFolding:
		return "randomized-folding"
	case BackendStrawman:
		return "strawman"
	case BackendFingerTree:
		return "fingertree"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

// ParseBackend parses a backend name as printed by String (the daemons'
// -backend flag).
func ParseBackend(s string) (Backend, error) {
	for _, b := range []Backend{BackendAuto, BackendDaba, BackendRotating,
		BackendCoalescing, BackendFolding, BackendRandomizedFolding, BackendStrawman,
		BackendFingerTree} {
		if s == b.String() {
			return b, nil
		}
	}
	return 0, fmt.Errorf("sliderrt: unknown backend %q", s)
}

// resolveBackend maps the configuration and the job's declared combiner
// properties to a concrete backend, validating an explicit override
// against both. It normalizes Config.Randomized when the randomized
// backend is chosen explicitly, so downstream consumers (checkpoints)
// see a consistent flag.
func (c *Config) resolveBackend(job *mapreduce.Job) (Backend, error) {
	if c.Engine == Strawman {
		switch c.Backend {
		case BackendAuto, BackendStrawman:
			return BackendStrawman, nil
		}
		return 0, fmt.Errorf("%w: engine Strawman cannot run backend %v", ErrBadBackend, c.Backend)
	}
	switch c.Mode {
	case Append:
		switch c.Backend {
		case BackendAuto, BackendCoalescing:
			return BackendCoalescing, nil
		}
		return 0, fmt.Errorf("%w: Append mode requires the coalescing backend, not %v", ErrBadBackend, c.Backend)
	case Variable:
		switch c.Backend {
		case BackendAuto:
			if c.Randomized {
				return BackendRandomizedFolding, nil
			}
			return BackendFolding, nil
		case BackendFolding:
			if c.Randomized {
				return 0, fmt.Errorf("%w: Config.Randomized conflicts with explicit backend %v", ErrBadBackend, c.Backend)
			}
			return BackendFolding, nil
		case BackendRandomizedFolding:
			c.Randomized = true
			return BackendRandomizedFolding, nil
		}
		return 0, fmt.Errorf("%w: Variable mode requires a folding backend, not %v", ErrBadBackend, c.Backend)
	case Fixed:
		if c.AllowedLateness > 0 {
			// Out-of-order job: late records must land mid-window, which
			// only the finger tree's searchable structure supports.
			if c.SplitProcessing {
				return 0, fmt.Errorf("%w: split processing is a rotating-tree feature; out-of-order windows use the finger tree", ErrBadBackend)
			}
			switch c.Backend {
			case BackendAuto, BackendFingerTree:
				return BackendFingerTree, nil
			}
			return 0, fmt.Errorf("%w: out-of-order windows (AllowedLateness=%d) require the finger-tree backend, not %v", ErrBadBackend, c.AllowedLateness, c.Backend)
		}
		switch c.Backend {
		case BackendAuto:
			if c.SplitProcessing {
				// Split processing pre-combines a bucket's tree siblings —
				// a rotating-tree feature.
				if !job.Commutative {
					return 0, fmt.Errorf("%w: job %q: split processing needs the rotating tree, which requires a commutative combiner", ErrBadBackend, job.Name)
				}
				return BackendRotating, nil
			}
			// Fixed-width, in-order, no split processing: the O(1) fast
			// path. In-order aggregation never re-orders buckets, so a
			// non-commutative (merely associative) combiner is fine.
			return BackendDaba, nil
		case BackendDaba:
			if c.SplitProcessing {
				return 0, fmt.Errorf("%w: split processing is a rotating-tree feature; the DABA backend does not support it", ErrBadBackend)
			}
			return BackendDaba, nil
		case BackendRotating:
			if !job.Commutative {
				return 0, fmt.Errorf("%w: job %q: rotating trees require a commutative combiner", ErrBadBackend, job.Name)
			}
			return BackendRotating, nil
		case BackendFingerTree:
			// Legal for in-order fixed windows too: order-preserving, so an
			// associative combiner suffices; split processing stays a
			// rotating-tree feature.
			if c.SplitProcessing {
				return 0, fmt.Errorf("%w: split processing is a rotating-tree feature; the finger-tree backend does not support it", ErrBadBackend)
			}
			return BackendFingerTree, nil
		}
		return 0, fmt.Errorf("%w: Fixed mode requires the daba, rotating, or fingertree backend, not %v", ErrBadBackend, c.Backend)
	}
	return 0, ErrBadMode
}

// Backend reports the resolved — possibly live-switched — backend.
func (rt *Runtime) Backend() Backend { return rt.backend }

// maybeSwitchBackend consults the live-switch hook at the end of a
// completed slide. The hook sees the current backend and a snapshot of
// the contract-phase latency histogram (PR 5's obs layer) and returns
// the backend it wants; the runtime follows it only across the legal
// Fixed-mode pair (daba ↔ rotating, subject to the same property gates
// as resolveBackend) and rebuilds the partition structures in place
// from their raw buckets. Running after the slide's stats deltas are
// taken keeps per-run TreeStats exact: the next slide reads a fresh
// baseline.
func (rt *Runtime) maybeSwitchBackend() {
	hook := rt.cfg.SwitchHook
	if hook == nil || rt.cfg.Mode != Fixed || rt.cfg.Engine != SelfAdjusting || rt.hasPending {
		return
	}
	var contract metrics.HistogramSnapshot
	if o := rt.cfg.Obs; o != nil {
		contract = o.Contract.Snapshot()
	}
	want := hook(rt.backend, contract)
	if want == rt.backend || (want != BackendDaba && want != BackendRotating) {
		return
	}
	c2 := rt.cfg
	c2.Backend = want
	if _, err := c2.resolveBackend(rt.job); err != nil {
		return // illegal target (non-commutative combiner, split mode): stay put
	}
	rt.rebuildFixedBackend(want)
}

// rebuildFixedBackend re-homes every partition's window onto the target
// Fixed-mode backend, carrying the raw buckets over in window order
// (oldest first). Tree work counters restart with the rebuild, exactly
// as on a checkpoint restore.
func (rt *Runtime) rebuildFixedBackend(want Backend) {
	buckets := make([][]Payload, rt.parts)
	for p := 0; p < rt.parts; p++ {
		switch rt.backend {
		case BackendDaba:
			bs, ok := rt.daba[p].BucketPayloads()
			if !ok {
				return
			}
			buckets[p] = bs
		case BackendRotating:
			bs, ok := rt.rot[p].BucketPayloads()
			if !ok {
				return
			}
			// Leaf-position order → window order: the victim is the
			// oldest bucket.
			v := rt.rot[p].Victim()
			buckets[p] = append(append([]Payload{}, bs[v:]...), bs[:v]...)
		default:
			return
		}
	}
	rt.backend = want
	rt.allocTrees()
	for p := 0; p < rt.parts; p++ {
		switch want {
		case BackendDaba:
			if err := rt.daba[p].Restore(buckets[p]); err != nil {
				panic(fmt.Sprintf("sliderrt: backend switch rebuild: %v", err))
			}
		case BackendRotating:
			// Window-order buckets with victim 0: leaf 0 holds the
			// oldest bucket and is replaced by the next slide.
			if err := rt.rot[p].RestoreAt(buckets[p], 0); err != nil {
				panic(fmt.Sprintf("sliderrt: backend switch rebuild: %v", err))
			}
		}
	}
	rt.snapReq.Store(true)
}
