package sliderrt

import (
	"strconv"
	"time"

	"slider/internal/core"
	"slider/internal/mapreduce"
	"slider/internal/metrics"
)

// This file is the runtime's observability surface: per-slide latency
// histograms and span traces (Config.Obs), plus the atomically published
// contraction-tree snapshot behind the obs server's /debug/tree. The
// Runtime itself is not safe for concurrent use, so nothing here lets an
// HTTP goroutine touch live trees: readers get immutable snapshots
// swapped in at slide boundaries.

// TreeSnapshot is an immutable structural snapshot of the runtime's
// contraction trees, published at the end of a slide. It is what
// /debug/tree serves: the §3 shape invariants (height, per-level node
// population), the memoization hit ratio, and the window fingerprint,
// all safe to read while the next slide runs.
type TreeSnapshot struct {
	// SlideID identifies the slide that published this snapshot (1 =
	// initial run).
	SlideID uint64
	// Mode is the window mode letter ("A", "F", "V").
	Mode string
	// Variant names the contraction-tree kind in use.
	Variant string
	// Partitions holds one shape per reduce partition.
	Partitions []core.TreeShape
	// Live is the number of live splits in the window; WindowLo the
	// sequence number of the oldest.
	Live     int
	WindowLo uint64
	// MemoHits/MemoMisses are the memoization layer's read counters for
	// the slide that published the snapshot (the runtime resets read
	// stats at the start of every run).
	MemoHits   int64
	MemoMisses int64
	// Fingerprint is an order-dependent combination of every partition
	// tree's payload fingerprint — two runtimes that processed the same
	// window agree on it (the sim harness's differential-oracle check,
	// made visible to operators).
	Fingerprint uint64
}

// HitRatio returns the memoization hit ratio in [0, 1] (0 when no reads
// have happened).
func (s *TreeSnapshot) HitRatio() float64 {
	if s == nil || s.MemoHits+s.MemoMisses == 0 {
		return 0
	}
	return float64(s.MemoHits) / float64(s.MemoHits+s.MemoMisses)
}

// TreeSnapshot returns the latest published tree snapshot (nil before
// the first slide completes) and requests a fresh one: the runtime
// re-publishes at the end of the next slide. Safe to call from any
// goroutine — repeated polling (the /debug/tree endpoint) therefore
// stays at most one slide stale while costing the slide path nothing
// beyond one atomic check.
func (rt *Runtime) TreeSnapshot() *TreeSnapshot {
	rt.snapReq.Store(true)
	return rt.treeSnap.Load()
}

// Observability returns the installed instrumentation bundle (nil when
// the runtime runs unobserved).
func (rt *Runtime) Observability() *metrics.SlideObs { return rt.cfg.Obs }

// FaultRecorder returns the runtime's fault-event recorder (shared with
// the dist pool when Config.Faults is).
func (rt *Runtime) FaultRecorder() *metrics.FaultRecorder { return rt.faults }

// publishTreeSnapshot swaps in a fresh snapshot when one was requested
// (or none exists yet). Called at the end of every slide from the
// runtime's own goroutine, where walking live trees is safe.
func (rt *Runtime) publishTreeSnapshot() {
	requested := rt.snapReq.Swap(false)
	if !requested && rt.treeSnap.Load() != nil {
		return
	}
	rt.treeSnap.Store(rt.buildTreeSnapshot())
}

// buildTreeSnapshot walks every partition tree for its shape and payload
// fingerprint. O(materialized nodes) — runs only when a snapshot was
// requested.
func (rt *Runtime) buildTreeSnapshot() *TreeSnapshot {
	snap := &TreeSnapshot{
		SlideID:  uint64(rt.runs),
		Mode:     rt.cfg.Mode.String(),
		Live:     rt.live,
		WindowLo: rt.windowLo,
	}
	ms := rt.store.Stats()
	snap.MemoHits, snap.MemoMisses = ms.Hits, ms.Misses
	pfp := mapreduce.FingerprintPayload
	add := func(shape core.TreeShape, fp uint64) {
		snap.Partitions = append(snap.Partitions, shape)
		snap.Fingerprint = snap.Fingerprint*0x9e3779b97f4a7c15 + fp
	}
	switch {
	case rt.straw != nil:
		for _, t := range rt.straw {
			add(t.Shape(), t.FingerprintWith(pfp))
		}
	case rt.coal != nil:
		for _, t := range rt.coal {
			add(t.Shape(), t.FingerprintWith(pfp))
		}
	case rt.rot != nil:
		for _, t := range rt.rot {
			add(t.Shape(), t.FingerprintWith(pfp))
		}
	case rt.daba != nil:
		for _, t := range rt.daba {
			add(t.Shape(), t.FingerprintWith(pfp))
		}
	case rt.finger != nil:
		for _, t := range rt.finger {
			add(t.Shape(), t.FingerprintWith(pfp))
		}
	case rt.rnd != nil:
		for _, t := range rt.rnd {
			add(t.Shape(), t.FingerprintWith(pfp))
		}
	case rt.fold != nil:
		for _, t := range rt.fold {
			add(t.Shape(), t.FingerprintWith(pfp))
		}
	}
	if len(snap.Partitions) > 0 {
		snap.Variant = snap.Partitions[0].Variant
	}
	return snap
}

// slideObs carries one slide's instrumentation state: the root span, the
// fault-counter baseline, and the end-to-end clock. With Config.Obs nil
// every method degenerates to nil checks.
type slideObs struct {
	rt     *Runtime
	span   *metrics.Span
	start  time.Time
	before metrics.FaultStats
	ended  bool
}

// beginSlide opens the slide's root span (subject to the tracer's
// sampling), publishes it as the active span for cross-cutting
// components (the dist pool), and snapshots the fault counters so the
// slide's degradation events can be attributed to it by difference.
func (rt *Runtime) beginSlide(label string) slideObs {
	s := slideObs{rt: rt, start: time.Now()}
	if o := rt.cfg.Obs; o != nil {
		s.span = o.Tracer.StartSlide(uint64(rt.runs)+1, label)
		o.Tracer.SetActive(s.span)
		if s.span != nil {
			s.before = rt.faults.Snapshot()
		}
	}
	return s
}

// phaseObs times one phase of a slide.
type phaseObs struct {
	span  *metrics.Span
	hist  *metrics.Histogram
	start time.Time
}

// phase opens a phase sub-span and selects the phase's latency
// histogram ("map", "contract", "reduce").
func (s *slideObs) phase(name string) phaseObs {
	p := phaseObs{start: time.Now(), span: s.span.Child(name + " phase")}
	if o := s.rt.cfg.Obs; o != nil {
		switch name {
		case "map":
			p.hist = &o.Map
		case "contract":
			p.hist = &o.Contract
		case "reduce":
			p.hist = &o.Reduce
		}
	}
	return p
}

// end closes the phase: one histogram observation plus the sub-span.
func (p phaseObs) end() {
	if p.hist != nil {
		p.hist.Observe(time.Since(p.start))
	}
	p.span.End()
}

// partitionSpan opens one partition's sub-span under a phase span, with
// no formatting cost when tracing is off.
func partitionSpan(parent *metrics.Span, p int) *metrics.Span {
	if parent == nil {
		return nil
	}
	return parent.Child("partition " + strconv.Itoa(p))
}

// endPartitionSpan annotates a partition span with the tree work and
// shape the partition's update produced, then closes it. before is the
// partition tree's stats at span start. No-op (and no tree walk) when
// the span was not recorded.
func (rt *Runtime) endPartitionSpan(ps *metrics.Span, p int, before core.Stats) {
	if ps == nil {
		return
	}
	d := statsDelta(before, rt.partitionTreeStats(p))
	ps.Event("tree: merges=%d recomputed=%d reused=%d", d.Merges, d.NodesRecomputed, d.NodesReused)
	sh := rt.partitionTreeShape(p)
	ps.Event("shape: %s height=%d live=%d nodes=%d levels=%v", sh.Variant, sh.Height, sh.Live, sh.Nodes, sh.Levels)
	ps.End()
}

// partitionTreeStats returns partition p's own tree work counters.
func (rt *Runtime) partitionTreeStats(p int) core.Stats {
	switch {
	case rt.straw != nil:
		return rt.straw[p].Stats()
	case rt.coal != nil:
		return rt.coal[p].Stats()
	case rt.rot != nil:
		return rt.rot[p].Stats()
	case rt.daba != nil:
		return rt.daba[p].Stats()
	case rt.finger != nil:
		return rt.finger[p].Stats()
	case rt.rnd != nil:
		return rt.rnd[p].Stats()
	case rt.fold != nil:
		return rt.fold[p].Stats()
	}
	return core.Stats{}
}

// partitionTreeShape returns partition p's structural snapshot.
func (rt *Runtime) partitionTreeShape(p int) core.TreeShape {
	switch {
	case rt.straw != nil:
		return rt.straw[p].Shape()
	case rt.coal != nil:
		return rt.coal[p].Shape()
	case rt.rot != nil:
		return rt.rot[p].Shape()
	case rt.daba != nil:
		return rt.daba[p].Shape()
	case rt.finger != nil:
		return rt.finger[p].Shape()
	case rt.rnd != nil:
		return rt.rnd[p].Shape()
	case rt.fold != nil:
		return rt.fold[p].Shape()
	}
	return core.TreeShape{}
}

// finish completes a successful slide: the end-to-end histogram
// observation, the fault-delta annotation (marking the slide degraded
// when any degradation-path event fired during it), the span commit,
// and the tree-snapshot publish. It also stamps the slide ID onto the
// result.
func (s *slideObs) finish(res *RunResult) {
	s.ended = true
	res.SlideID = uint64(s.rt.runs)
	o := s.rt.cfg.Obs
	if o != nil {
		o.Slide.Observe(time.Since(s.start))
		o.Tracer.SetActive(nil)
	}
	if s.span != nil {
		d := s.rt.faults.Snapshot().Sub(s.before)
		if d.Degraded() {
			s.span.MarkDegraded()
		}
		d.EachCounter(func(name string, v int64) {
			if v != 0 {
				s.span.Event("faults: %s=%d", name, v)
			}
		})
		s.span.End()
	}
	s.rt.publishTreeSnapshot()
}

// abort closes the slide's span on an error return (deferred; a no-op
// after finish).
func (s *slideObs) abort() {
	if s.ended {
		return
	}
	s.ended = true
	if o := s.rt.cfg.Obs; o != nil {
		o.Tracer.SetActive(nil)
	}
	if s.span != nil {
		s.span.Event("slide aborted with error")
		s.span.End()
	}
}
