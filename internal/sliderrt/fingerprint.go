package sliderrt

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"

	"slider/internal/core"
)

// StateFingerprint returns a canonical hash of the runtime's window
// state — the same state Checkpoint persists: per-partition tree
// payloads plus the window bookkeeping. Payload maps are hashed in
// sorted-key order, so two runtimes holding identical logical state
// fingerprint identically regardless of map iteration order, codec
// framing, or the parallelism they were computed at. Harnesses use it
// to assert that checkpoint/restore round-trips and parallelism changes
// preserve state bit-for-bit at the logical level; it is not a wire
// format and may change between releases.
func (rt *Runtime) StateFingerprint() uint64 {
	h := fnv.New64a()
	var scratch [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		h.Write(scratch[:])
	}
	str := func(s string) {
		u64(uint64(len(s)))
		h.Write([]byte(s))
	}
	payload := func(p Payload) {
		keys := make([]string, 0, len(p))
		for k := range p {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		u64(uint64(len(keys)))
		for _, k := range keys {
			str(k)
			str(fmt.Sprintf("%T:%v", p[k], p[k]))
		}
	}
	payloads := func(ps []Payload) {
		u64(uint64(len(ps)))
		for _, p := range ps {
			payload(p)
		}
	}
	items := func(list []core.Item[Payload]) {
		u64(uint64(len(list)))
		for _, it := range list {
			u64(it.ID)
			payload(it.Payload)
		}
	}

	u64(rt.seq)
	u64(rt.windowLo)
	u64(uint64(rt.live))
	u64(uint64(rt.backend))
	for p := 0; p < rt.parts; p++ {
		switch {
		case rt.cfg.Engine == Strawman:
			items(rt.leaves[p])
		case rt.cfg.Mode == Append:
			root, hasRoot := rt.coal[p].Root()
			pending, hasPending := rt.coal[p].PendingPayload()
			if hasRoot {
				payload(root)
			} else {
				u64(0)
			}
			if hasPending {
				payload(pending)
			} else {
				u64(0)
			}
		case rt.cfg.Mode == Fixed:
			var buckets []Payload
			var filled bool
			switch rt.backend {
			case BackendDaba:
				buckets, filled = rt.daba[p].BucketPayloads()
			case BackendFingerTree:
				buckets, filled = rt.finger[p].BucketPayloads()
				if p == 0 {
					// The bucket ledger and watermark clock are part of the
					// logical window state (shared across partitions, so
					// hashed once).
					u64(uint64(len(rt.bucketSizes)))
					for _, sz := range rt.bucketSizes {
						u64(uint64(sz))
					}
					u64(rt.bucketSeq)
				}
			default:
				buckets, filled = rt.rot[p].BucketPayloads()
				u64(uint64(rt.rot[p].Victim()))
			}
			if filled {
				u64(1)
			} else {
				u64(0)
			}
			payloads(buckets)
		case rt.cfg.Randomized:
			items(rt.rnd[p].Items())
		default:
			payloads(rt.fold[p].Payloads())
		}
	}
	return h.Sum64()
}
