package sliderrt

import (
	"bytes"
	"testing"
)

// Checkpoint/restore under Parallelism > 1: the engine guarantees outputs
// and work counters are independent of the worker count, so checkpoints
// written by a parallel runtime must restore and continue exactly like
// their sequential counterparts — across every mode and engine.

func TestCheckpointParallelAppend(t *testing.T) {
	checkpointRoundTrip(t, Config{Mode: Append, Parallelism: 4}, 4,
		[]slide{{0, 2}, {0, 3}}, []slide{{0, 1}, {0, 4}})
}

func TestCheckpointParallelAppendSplitProcessing(t *testing.T) {
	checkpointRoundTrip(t, Config{Mode: Append, SplitProcessing: true, Parallelism: 4}, 4,
		[]slide{{0, 2}}, []slide{{0, 1}, {0, 2}})
}

func TestCheckpointParallelFixed(t *testing.T) {
	cfg := Config{Mode: Fixed, BucketSplits: 2, WindowBuckets: 4, Parallelism: 4}
	checkpointRoundTrip(t, cfg, 8,
		[]slide{{2, 2}, {2, 2}}, []slide{{2, 2}, {4, 4}})
}

func TestCheckpointParallelFixedSplitProcessing(t *testing.T) {
	cfg := Config{Mode: Fixed, BucketSplits: 2, WindowBuckets: 4, SplitProcessing: true, Parallelism: 4}
	checkpointRoundTrip(t, cfg, 8,
		[]slide{{2, 2}}, []slide{{2, 2}, {2, 2}})
}

func TestCheckpointParallelVariableFolding(t *testing.T) {
	checkpointRoundTrip(t, Config{Mode: Variable, Parallelism: 4}, 8,
		[]slide{{3, 1}, {0, 5}}, []slide{{6, 2}, {1, 0}})
}

func TestCheckpointParallelVariableRandomized(t *testing.T) {
	checkpointRoundTrip(t, Config{Mode: Variable, Randomized: true, Seed: 11, Parallelism: 4}, 8,
		[]slide{{3, 1}}, []slide{{0, 5}, {6, 2}})
}

func TestCheckpointParallelStrawman(t *testing.T) {
	checkpointRoundTrip(t, Config{Mode: Variable, Engine: Strawman, Parallelism: 4}, 8,
		[]slide{{3, 1}}, []slide{{0, 4}})
}

// TestCheckpointCrossParallelism writes a checkpoint with a parallel
// runtime and restores it at Parallelism 1 and 4: parallelism is an
// execution knob, not persistent state, so the restored runtimes must
// produce identical outputs AND identical work counters as they continue
// — and match both the writer's output and a from-scratch run.
func TestCheckpointCrossParallelism(t *testing.T) {
	job := wordCountJob()
	cfg := Config{Mode: Variable, Parallelism: 4, Memo: testMemoConfig()}
	writer, err := New(job, cfg)
	if err != nil {
		t.Fatal(err)
	}
	window := genSplits(0, 8, 4, 7)
	if _, err := writer.Initial(window); err != nil {
		t.Fatal(err)
	}
	if _, err := writer.Advance(3, genSplits(8, 2, 4, 7)); err != nil {
		t.Fatal(err)
	}
	window = append(window[3:], genSplits(8, 2, 4, 7)...)

	var buf bytes.Buffer
	if err := writer.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}

	restoredAt := func(par int) *Runtime {
		readCfg := cfg
		readCfg.Parallelism = par
		rt, err := Restore(wordCountJob(), readCfg, bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("restore at par %d: %v", par, err)
		}
		return rt
	}
	rest1 := restoredAt(1)
	rest4 := restoredAt(4)

	adds := genSplits(10, 3, 4, 7)
	origRes, err := writer.Advance(2, adds)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := rest1.Advance(2, adds)
	if err != nil {
		t.Fatal(err)
	}
	res4, err := rest4.Advance(2, adds)
	if err != nil {
		t.Fatal(err)
	}
	window = append(window[2:], adds...)
	wantSameOutput(t, res1.Output, origRes.Output)
	wantSameOutput(t, res4.Output, origRes.Output)
	wantSameOutput(t, res1.Output, scratch(t, job, window))
	if res1.TreeStats != res4.TreeStats {
		t.Fatalf("restored-at-par-1 TreeStats %+v != restored-at-par-4 %+v (work counters must not depend on parallelism)",
			res1.TreeStats, res4.TreeStats)
	}
}
