// Package workload generates the deterministic synthetic datasets used by
// the experiments, substituting for the paper's proprietary inputs
// (Wikipedia text, the Twitter crawl, Glasnost packet traces, Akamai
// NetSession logs — see DESIGN.md §2 for the substitution rationale).
//
// Every generator is a pure function of (seed, split index): regenerating
// the same split always yields identical records, which is what lets the
// benchmark harness compare incremental runs against recomputation from
// scratch over the same window.
package workload

import (
	"math/rand"
	"strconv"
	"strings"

	"slider/internal/mapreduce"
)

// splitRNG returns a deterministic RNG for one split of one stream.
func splitRNG(seed int64, stream string, index int) *rand.Rand {
	h := int64(1469598103934665603)
	for _, b := range []byte(stream) {
		h ^= int64(b)
		h *= 1099511628211
	}
	return rand.New(rand.NewSource(seed ^ h ^ (int64(index)+1)*0x9e3779b9))
}

// TextConfig parameterizes the synthetic text corpus (the Wikipedia
// substitute for the data-intensive apps HCT, Matrix, and subStr).
type TextConfig struct {
	// Seed fixes the corpus.
	Seed int64
	// LinesPerSplit is the number of lines per input split.
	LinesPerSplit int
	// WordsPerLine is the line length in words.
	WordsPerLine int
	// Vocabulary is the number of distinct words.
	Vocabulary int
	// ZipfS is the Zipf skew (must be > 1; ~1.2 resembles natural text).
	ZipfS float64
}

// DefaultTextConfig returns a moderate corpus suitable for tests and the
// benchmark harness.
func DefaultTextConfig() TextConfig {
	return TextConfig{Seed: 42, LinesPerSplit: 40, WordsPerLine: 12, Vocabulary: 2000, ZipfS: 1.2}
}

// Text generates splits of Zipf-distributed text lines.
type Text struct {
	cfg   TextConfig
	vocab []string
}

// NewText builds a text generator with a materialized vocabulary.
func NewText(cfg TextConfig) *Text {
	if cfg.Vocabulary <= 0 {
		cfg.Vocabulary = 1000
	}
	if cfg.LinesPerSplit <= 0 {
		cfg.LinesPerSplit = 40
	}
	if cfg.WordsPerLine <= 0 {
		cfg.WordsPerLine = 12
	}
	if cfg.ZipfS <= 1 {
		cfg.ZipfS = 1.2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	vocab := make([]string, cfg.Vocabulary)
	letters := "abcdefghijklmnopqrstuvwxyz"
	seen := make(map[string]bool, cfg.Vocabulary)
	for i := range vocab {
		for {
			n := 3 + rng.Intn(8)
			var sb strings.Builder
			for j := 0; j < n; j++ {
				sb.WriteByte(letters[rng.Intn(len(letters))])
			}
			w := sb.String()
			if !seen[w] {
				seen[w] = true
				vocab[i] = w
				break
			}
		}
	}
	return &Text{cfg: cfg, vocab: vocab}
}

// Split returns text split i.
func (t *Text) Split(i int) mapreduce.Split {
	rng := splitRNG(t.cfg.Seed, "text", i)
	zipf := rand.NewZipf(rng, t.cfg.ZipfS, 1, uint64(len(t.vocab)-1))
	records := make([]mapreduce.Record, t.cfg.LinesPerSplit)
	for l := range records {
		var sb strings.Builder
		for w := 0; w < t.cfg.WordsPerLine; w++ {
			if w > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(t.vocab[zipf.Uint64()])
		}
		records[l] = sb.String()
	}
	return mapreduce.Split{ID: "text-" + strconv.Itoa(i), Records: records}
}

// Range returns splits [lo, hi).
func (t *Text) Range(lo, hi int) []mapreduce.Split {
	out := make([]mapreduce.Split, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, t.Split(i))
	}
	return out
}

// PointsConfig parameterizes the synthetic point cloud used by the
// compute-intensive apps (K-Means, KNN): points sampled uniformly from a
// unit cube, as in §7.1.
type PointsConfig struct {
	// Seed fixes the point stream.
	Seed int64
	// PointsPerSplit is the number of points per input split.
	PointsPerSplit int
	// Dim is the dimensionality (the paper uses 50).
	Dim int
}

// DefaultPointsConfig mirrors the paper's 50-dimensional unit cube.
func DefaultPointsConfig() PointsConfig {
	return PointsConfig{Seed: 42, PointsPerSplit: 200, Dim: 50}
}

// Points generates splits of unit-cube points.
type Points struct {
	cfg PointsConfig
}

// NewPoints builds a point generator.
func NewPoints(cfg PointsConfig) *Points {
	if cfg.PointsPerSplit <= 0 {
		cfg.PointsPerSplit = 200
	}
	if cfg.Dim <= 0 {
		cfg.Dim = 50
	}
	return &Points{cfg: cfg}
}

// Dim returns the point dimensionality.
func (p *Points) Dim() int { return p.cfg.Dim }

// Split returns point split i.
func (p *Points) Split(i int) mapreduce.Split {
	rng := splitRNG(p.cfg.Seed, "points", i)
	records := make([]mapreduce.Record, p.cfg.PointsPerSplit)
	for j := range records {
		pt := make([]float64, p.cfg.Dim)
		for d := range pt {
			pt[d] = rng.Float64()
		}
		records[j] = pt
	}
	return mapreduce.Split{ID: "pts-" + strconv.Itoa(i), Records: records}
}

// Range returns splits [lo, hi).
func (p *Points) Range(lo, hi int) []mapreduce.Split {
	out := make([]mapreduce.Split, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, p.Split(i))
	}
	return out
}

// QueryPoints returns k fixed query points (for KNN) drawn from the same
// cube with a separate stream.
func (p *Points) QueryPoints(k int) [][]float64 {
	rng := splitRNG(p.cfg.Seed, "queries", 0)
	out := make([][]float64, k)
	for i := range out {
		pt := make([]float64, p.cfg.Dim)
		for d := range pt {
			pt[d] = rng.Float64()
		}
		out[i] = pt
	}
	return out
}
