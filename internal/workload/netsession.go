package workload

import (
	"strconv"

	"slider/internal/mapreduce"
)

// ClientLog is one record of the NetSession case study (§8.3): a
// tamper-evident log chunk uploaded by one hybrid-CDN client, to be
// audited PeerReview-style by recomputing its hash chain.
type ClientLog struct {
	// Client identifies the uploading client.
	Client uint32
	// Week is the activity week the chunk covers.
	Week int
	// Entries is the hash chain: Entries[i] must equal
	// chain(Entries[i-1], i) for an untampered log.
	Entries []uint64
}

// ChainStep computes one step of the tamper-evident hash chain. The audit
// job recomputes it for every entry.
func ChainStep(prev uint64, i int) uint64 {
	x := prev ^ (uint64(i+1) * 0x9e3779b97f4a7c15)
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NetSessionConfig parameterizes the synthetic CDN accountability logs,
// the substitute for Akamai's NetSession traces (§8.3).
type NetSessionConfig struct {
	// Seed fixes the log stream.
	Seed int64
	// Clients is the client population.
	Clients int
	// LogsPerSplit is the number of log chunks per input split.
	LogsPerSplit int
	// EntriesPerLog is the hash-chain length per chunk.
	EntriesPerLog int
	// TamperRate is the fraction of chunks with a corrupted chain.
	TamperRate float64
}

// DefaultNetSessionConfig returns a laptop-scale log workload.
func DefaultNetSessionConfig() NetSessionConfig {
	return NetSessionConfig{Seed: 42, Clients: 5000, LogsPerSplit: 60, EntriesPerLog: 200, TamperRate: 0.02}
}

// NetSession generates weekly client-log splits. The number of splits per
// week varies with the fraction of clients online to upload — the
// variable-width window driver of Table 5.
type NetSession struct {
	cfg NetSessionConfig
}

// NewNetSession returns a log generator.
func NewNetSession(cfg NetSessionConfig) *NetSession {
	if cfg.Clients <= 0 {
		cfg.Clients = 1000
	}
	if cfg.LogsPerSplit <= 0 {
		cfg.LogsPerSplit = 60
	}
	if cfg.EntriesPerLog <= 0 {
		cfg.EntriesPerLog = 200
	}
	return &NetSession{cfg: cfg}
}

// Split returns log split i, attributed to the given week.
func (n *NetSession) Split(i, week int) mapreduce.Split {
	rng := splitRNG(n.cfg.Seed, "netsession", i)
	records := make([]mapreduce.Record, n.cfg.LogsPerSplit)
	for j := range records {
		entries := make([]uint64, n.cfg.EntriesPerLog)
		var prev uint64
		for e := range entries {
			prev = ChainStep(prev, e)
			entries[e] = prev
		}
		if rng.Float64() < n.cfg.TamperRate {
			// Corrupt one entry mid-chain.
			entries[rng.Intn(len(entries))] ^= 0xdead
		}
		records[j] = ClientLog{
			Client:  uint32(rng.Intn(n.cfg.Clients)),
			Week:    week,
			Entries: entries,
		}
	}
	return mapreduce.Split{ID: "nslog-" + strconv.Itoa(i), Records: records}
}

// WeekSplits returns the splits for one week given the fraction of
// clients online to upload (uploadPct in [0,1]): fewer uploads, fewer
// splits — a variable-width window.
func (n *NetSession) WeekSplits(firstIndex, week, fullSplits int, uploadPct float64) []mapreduce.Split {
	count := int(float64(fullSplits)*uploadPct + 0.5)
	if count < 1 {
		count = 1
	}
	out := make([]mapreduce.Split, 0, count)
	for i := 0; i < count; i++ {
		out = append(out, n.Split(firstIndex+i, week))
	}
	return out
}
