package workload

import (
	"math/rand"
	"sort"
	"strconv"

	"slider/internal/mapreduce"
)

// Tweet is one record of the Twitter case study (§8.1): a user posting a
// URL at a point in time.
type Tweet struct {
	// User is the posting user's ID.
	User int32
	// URL indexes the posted link.
	URL int32
	// Time is a monotonically increasing logical timestamp.
	Time int64
}

// FollowGraph is the static follower graph the propagation-tree analysis
// consults: Follows[u] lists the users u follows, sorted ascending.
type FollowGraph struct {
	follows [][]int32
}

// Users returns the number of users.
func (g *FollowGraph) Users() int { return len(g.follows) }

// Follows reports whether a follows b.
func (g *FollowGraph) Follows(a, b int32) bool {
	if int(a) >= len(g.follows) {
		return false
	}
	list := g.follows[a]
	i := sort.Search(len(list), func(i int) bool { return list[i] >= b })
	return i < len(list) && list[i] == b
}

// FollowCount returns the out-degree of user u.
func (g *FollowGraph) FollowCount(u int32) int {
	if int(u) >= len(g.follows) {
		return 0
	}
	return len(g.follows[u])
}

// TwitterConfig parameterizes the synthetic Twitter workload, the
// substitute for the crawl of [38] (54M users / 1.7B tweets): a
// preferential-attachment follower graph and a Zipf-popularity URL
// stream.
type TwitterConfig struct {
	// Seed fixes the graph and the tweet stream.
	Seed int64
	// Users is the number of user accounts.
	Users int
	// MeanFollows is the average out-degree.
	MeanFollows int
	// URLs is the size of the URL pool.
	URLs int
	// TweetsPerSplit is the number of tweets per input split.
	TweetsPerSplit int
}

// DefaultTwitterConfig returns a laptop-scale Twitter workload.
func DefaultTwitterConfig() TwitterConfig {
	return TwitterConfig{Seed: 42, Users: 2000, MeanFollows: 12, URLs: 400, TweetsPerSplit: 300}
}

// Twitter generates the follower graph and append-only tweet splits.
type Twitter struct {
	cfg   TwitterConfig
	graph *FollowGraph
}

// NewTwitter materializes the follower graph (preferential attachment:
// early users accumulate more followers, mirroring real social graphs).
func NewTwitter(cfg TwitterConfig) *Twitter {
	if cfg.Users <= 0 {
		cfg.Users = 1000
	}
	if cfg.MeanFollows <= 0 {
		cfg.MeanFollows = 10
	}
	if cfg.URLs <= 0 {
		cfg.URLs = 200
	}
	if cfg.TweetsPerSplit <= 0 {
		cfg.TweetsPerSplit = 300
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	follows := make([][]int32, cfg.Users)
	for u := 1; u < cfg.Users; u++ {
		n := 1 + rng.Intn(2*cfg.MeanFollows)
		if max := (u + 1) / 2; n > max {
			// A user can only follow accounts that already exist, and
			// the quadratic attachment bias makes collecting nearly all
			// early accounts slow — cap the out-degree for early users.
			n = max
		}
		seen := map[int32]bool{int32(u): true}
		list := make([]int32, 0, n)
		for len(list) < n {
			// Preferential attachment: quadratic bias toward low IDs.
			f := rng.Float64()
			target := int32(f * f * float64(u))
			if !seen[target] {
				seen[target] = true
				list = append(list, target)
			}
		}
		sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
		follows[u] = list
	}
	return &Twitter{cfg: cfg, graph: &FollowGraph{follows: follows}}
}

// Graph returns the follower graph consulted by the analysis job.
func (t *Twitter) Graph() *FollowGraph { return t.graph }

// Split returns tweet split i. Timestamps increase with the split index,
// making the stream naturally append-only.
func (t *Twitter) Split(i int) mapreduce.Split {
	rng := splitRNG(t.cfg.Seed, "tweets", i)
	zipf := rand.NewZipf(rng, 1.3, 1, uint64(t.cfg.URLs-1))
	records := make([]mapreduce.Record, t.cfg.TweetsPerSplit)
	base := int64(i) * int64(t.cfg.TweetsPerSplit)
	for j := range records {
		records[j] = Tweet{
			User: int32(rng.Intn(t.cfg.Users)),
			URL:  int32(zipf.Uint64()),
			Time: base + int64(j),
		}
	}
	return mapreduce.Split{ID: "tweets-" + strconv.Itoa(i), Records: records}
}

// Range returns splits [lo, hi).
func (t *Twitter) Range(lo, hi int) []mapreduce.Split {
	out := make([]mapreduce.Split, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, t.Split(i))
	}
	return out
}
