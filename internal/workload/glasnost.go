package workload

import (
	"math"
	"strconv"

	"slider/internal/mapreduce"
)

// TestRun is one record of the Glasnost case study (§8.2): one
// measurement run against one measurement server, reduced to the minimum
// RTT observed in its packet trace (the paper computes this min from the
// pcap; our generator emits it directly — see DESIGN.md §2).
type TestRun struct {
	// Server identifies the measurement server.
	Server int16
	// MinRTTMs is the run's minimum round-trip time in milliseconds.
	MinRTTMs float64
}

// GlasnostConfig parameterizes the synthetic measurement trace.
type GlasnostConfig struct {
	// Seed fixes the trace.
	Seed int64
	// Servers is the number of measurement servers.
	Servers int
	// RunsPerSplit is the number of test runs per input split.
	RunsPerSplit int
	// SplitsPerMonth is how many splits one month of data occupies.
	SplitsPerMonth int
}

// DefaultGlasnostConfig returns a laptop-scale Glasnost trace.
func DefaultGlasnostConfig() GlasnostConfig {
	return GlasnostConfig{Seed: 42, Servers: 8, RunsPerSplit: 150, SplitsPerMonth: 4}
}

// Glasnost generates monthly measurement-trace splits. RTT distributions
// are lognormal per server with a slow seasonal drift, so medians move
// month over month (which is what the monitoring analysis watches).
type Glasnost struct {
	cfg GlasnostConfig
}

// NewGlasnost returns a trace generator.
func NewGlasnost(cfg GlasnostConfig) *Glasnost {
	if cfg.Servers <= 0 {
		cfg.Servers = 8
	}
	if cfg.RunsPerSplit <= 0 {
		cfg.RunsPerSplit = 150
	}
	if cfg.SplitsPerMonth <= 0 {
		cfg.SplitsPerMonth = 4
	}
	return &Glasnost{cfg: cfg}
}

// SplitsPerMonth returns the number of splits per calendar month.
func (g *Glasnost) SplitsPerMonth() int { return g.cfg.SplitsPerMonth }

// Split returns trace split i.
func (g *Glasnost) Split(i int) mapreduce.Split {
	rng := splitRNG(g.cfg.Seed, "glasnost", i)
	month := i / g.cfg.SplitsPerMonth
	records := make([]mapreduce.Record, g.cfg.RunsPerSplit)
	for j := range records {
		server := int16(rng.Intn(g.cfg.Servers))
		// Base distance per server plus a seasonal drift and lognormal
		// user-access jitter.
		base := 20 + 15*float64(server)
		drift := 5 * math.Sin(float64(month)/3)
		jitter := math.Exp(rng.NormFloat64()*0.5) * 10
		records[j] = TestRun{Server: server, MinRTTMs: base + drift + jitter}
	}
	return mapreduce.Split{ID: "glasnost-" + strconv.Itoa(i), Records: records}
}

// MonthSplitCount returns how many splits month m contributes in the
// variable-volume trace: measurement volume fluctuates month to month
// (the paper's Table 3 shows 27–51% window change), which we reproduce
// with a deterministic per-month factor of 0.5×–1.5× the base volume.
func (g *Glasnost) MonthSplitCount(m int) int {
	h := splitmix(uint64(m) ^ uint64(g.cfg.Seed))
	factor := 0.5 + float64(h%1024)/1024.0 // [0.5, 1.5)
	n := int(float64(g.cfg.SplitsPerMonth)*factor + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}

// splitmix is a small avalanche hash for deterministic month volumes.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// MonthSplitsVar returns month m's splits in the variable-volume trace,
// using globally contiguous split indices.
func (g *Glasnost) MonthSplitsVar(m int) []mapreduce.Split {
	first := 0
	for i := 0; i < m; i++ {
		first += g.MonthSplitCount(i)
	}
	count := g.MonthSplitCount(m)
	out := make([]mapreduce.Split, 0, count)
	for i := 0; i < count; i++ {
		out = append(out, g.Split(first+i))
	}
	return out
}

// MonthRange returns the splits covering months [loMonth, hiMonth).
func (g *Glasnost) MonthRange(loMonth, hiMonth int) []mapreduce.Split {
	lo := loMonth * g.cfg.SplitsPerMonth
	hi := hiMonth * g.cfg.SplitsPerMonth
	out := make([]mapreduce.Split, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, g.Split(i))
	}
	return out
}
