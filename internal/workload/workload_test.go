package workload

import (
	"testing"

	"slider/internal/mapreduce"
)

func sameSplit(a, b mapreduce.Split) bool {
	if a.ID != b.ID || len(a.Records) != len(b.Records) {
		return false
	}
	for i := range a.Records {
		switch x := a.Records[i].(type) {
		case string:
			if x != b.Records[i].(string) {
				return false
			}
		case []float64:
			y := b.Records[i].([]float64)
			for d := range x {
				if x[d] != y[d] {
					return false
				}
			}
		case Tweet:
			if x != b.Records[i].(Tweet) {
				return false
			}
		case TestRun:
			if x != b.Records[i].(TestRun) {
				return false
			}
		case ClientLog:
			y := b.Records[i].(ClientLog)
			if x.Client != y.Client || len(x.Entries) != len(y.Entries) {
				return false
			}
		}
	}
	return true
}

func TestTextDeterministic(t *testing.T) {
	g1 := NewText(DefaultTextConfig())
	g2 := NewText(DefaultTextConfig())
	for _, i := range []int{0, 1, 17, 1000} {
		if !sameSplit(g1.Split(i), g2.Split(i)) {
			t.Fatalf("split %d differs across generator instances", i)
		}
	}
	if sameSplit(g1.Split(3), g1.Split(4)) {
		t.Fatal("distinct splits are identical")
	}
}

func TestTextShape(t *testing.T) {
	cfg := TextConfig{Seed: 1, LinesPerSplit: 7, WordsPerLine: 5, Vocabulary: 100, ZipfS: 1.5}
	g := NewText(cfg)
	s := g.Split(0)
	if len(s.Records) != 7 {
		t.Fatalf("lines = %d, want 7", len(s.Records))
	}
	if got := g.Range(2, 5); len(got) != 3 || got[0].ID != "text-2" {
		t.Fatalf("range misbehaved: %v", got[0].ID)
	}
}

func TestPointsInUnitCube(t *testing.T) {
	g := NewPoints(PointsConfig{Seed: 1, PointsPerSplit: 50, Dim: 10})
	s := g.Split(3)
	if len(s.Records) != 50 {
		t.Fatalf("points = %d", len(s.Records))
	}
	for _, r := range s.Records {
		pt := r.([]float64)
		if len(pt) != 10 {
			t.Fatalf("dim = %d", len(pt))
		}
		for _, v := range pt {
			if v < 0 || v >= 1 {
				t.Fatalf("coordinate %f outside unit cube", v)
			}
		}
	}
	if len(g.QueryPoints(5)) != 5 {
		t.Fatal("query points")
	}
}

func TestPointsDeterministic(t *testing.T) {
	g1 := NewPoints(DefaultPointsConfig())
	g2 := NewPoints(DefaultPointsConfig())
	if !sameSplit(g1.Split(9), g2.Split(9)) {
		t.Fatal("point split not deterministic")
	}
}

func TestTwitterGraph(t *testing.T) {
	tw := NewTwitter(TwitterConfig{Seed: 3, Users: 500, MeanFollows: 8, URLs: 50, TweetsPerSplit: 100})
	g := tw.Graph()
	if g.Users() != 500 {
		t.Fatalf("users = %d", g.Users())
	}
	// Preferential attachment: user 0 (oldest) should be followed far
	// more often than a late user.
	followersOf := func(target int32) int {
		n := 0
		for u := int32(0); u < 500; u++ {
			if g.Follows(u, target) {
				n++
			}
		}
		return n
	}
	if followersOf(0) <= followersOf(450) {
		t.Fatalf("no preferential attachment: followers(0)=%d followers(450)=%d",
			followersOf(0), followersOf(450))
	}
	// Follow lists must be queryable and self-loops absent.
	for u := int32(1); u < 20; u++ {
		if g.Follows(u, u) {
			t.Fatalf("user %d follows itself", u)
		}
	}
}

func TestTwitterTweetsAppendOnly(t *testing.T) {
	tw := NewTwitter(DefaultTwitterConfig())
	s0 := tw.Split(0)
	s1 := tw.Split(1)
	last := s0.Records[len(s0.Records)-1].(Tweet).Time
	first := s1.Records[0].(Tweet).Time
	if first <= last {
		t.Fatalf("timestamps not monotone across splits: %d then %d", last, first)
	}
}

func TestGlasnostMonths(t *testing.T) {
	g := NewGlasnost(GlasnostConfig{Seed: 5, Servers: 4, RunsPerSplit: 20, SplitsPerMonth: 3})
	splits := g.MonthRange(0, 2)
	if len(splits) != 6 {
		t.Fatalf("splits = %d, want 6", len(splits))
	}
	for _, s := range splits {
		for _, r := range s.Records {
			run := r.(TestRun)
			if run.MinRTTMs <= 0 || run.Server < 0 || run.Server >= 4 {
				t.Fatalf("bad run %+v", run)
			}
		}
	}
}

func TestNetSessionUploadScaling(t *testing.T) {
	n := NewNetSession(DefaultNetSessionConfig())
	full := n.WeekSplits(0, 1, 8, 1.0)
	partial := n.WeekSplits(8, 2, 8, 0.75)
	if len(full) != 8 {
		t.Fatalf("full week = %d splits", len(full))
	}
	if len(partial) != 6 {
		t.Fatalf("75%% week = %d splits, want 6", len(partial))
	}
}

func TestNetSessionChainsVerify(t *testing.T) {
	cfg := DefaultNetSessionConfig()
	cfg.TamperRate = 0
	n := NewNetSession(cfg)
	s := n.Split(0, 0)
	for _, r := range s.Records {
		log := r.(ClientLog)
		var prev uint64
		for i, e := range log.Entries {
			prev = ChainStep(prev, i)
			if e != prev {
				t.Fatal("untampered chain failed verification")
			}
		}
	}
}

func TestNetSessionTampering(t *testing.T) {
	cfg := DefaultNetSessionConfig()
	cfg.TamperRate = 1.0
	n := NewNetSession(cfg)
	s := n.Split(0, 0)
	tampered := 0
	for _, r := range s.Records {
		log := r.(ClientLog)
		var prev uint64
		for i, e := range log.Entries {
			prev = ChainStep(prev, i)
			if e != prev {
				tampered++
				break
			}
		}
	}
	if tampered != len(s.Records) {
		t.Fatalf("tampered = %d of %d", tampered, len(s.Records))
	}
}

func TestPigMixShape(t *testing.T) {
	g := NewPigMix(PigMixConfig{Seed: 2, Users: 50, Pages: 20, RowsPerSplit: 30})
	if got := g.Schema(); len(got) != 5 || got[0] != "user" {
		t.Fatalf("schema = %v", got)
	}
	s := g.Split(0)
	if len(s.Records) != 30 {
		t.Fatalf("rows = %d", len(s.Records))
	}
	for _, r := range s.Records {
		row := r.([]any)
		if len(row) != 5 {
			t.Fatalf("row width %d", len(row))
		}
		action := row[1].(string)
		revenue := row[4].(float64)
		if action != "purchase" && revenue != 0 {
			t.Fatalf("non-purchase with revenue: %v", row)
		}
		if action == "purchase" && revenue <= 0 {
			t.Fatalf("purchase without revenue: %v", row)
		}
	}
	if got := g.Range(1, 4); len(got) != 3 || got[0].ID != "pigmix-1" {
		t.Fatalf("range = %v", got[0].ID)
	}
}

func TestPigMixDeterministic(t *testing.T) {
	a := NewPigMix(DefaultPigMixConfig()).Split(5)
	b := NewPigMix(DefaultPigMixConfig()).Split(5)
	if len(a.Records) != len(b.Records) {
		t.Fatal("lengths differ")
	}
	for i := range a.Records {
		ra, rb := a.Records[i].([]any), b.Records[i].([]any)
		for j := range ra {
			if ra[j] != rb[j] {
				t.Fatalf("record %d field %d differs", i, j)
			}
		}
	}
}

func TestPigMixUserTable(t *testing.T) {
	g := NewPigMix(PigMixConfig{Seed: 3, Users: 40, Pages: 10, RowsPerSplit: 10})
	schema, rows := g.UserTable()
	if len(schema) != 2 || schema[1] != "region" {
		t.Fatalf("schema = %v", schema)
	}
	if len(rows) != 40 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[7][0].(string) != "u7" {
		t.Fatalf("row 7 = %v", rows[7])
	}
}

func TestGlasnostVariableMonths(t *testing.T) {
	g := NewGlasnost(GlasnostConfig{Seed: 9, Servers: 3, RunsPerSplit: 10, SplitsPerMonth: 6})
	// Deterministic and within [0.5, 1.5]× the base volume.
	sawVariation := false
	for m := 0; m < 12; m++ {
		n := g.MonthSplitCount(m)
		if n != g.MonthSplitCount(m) {
			t.Fatal("month split count not deterministic")
		}
		if n < 3 || n > 9 {
			t.Fatalf("month %d has %d splits, outside [3,9]", m, n)
		}
		if n != 6 {
			sawVariation = true
		}
		if got := g.MonthSplitsVar(m); len(got) != n {
			t.Fatalf("month %d: %d splits, want %d", m, len(got), n)
		}
	}
	if !sawVariation {
		t.Fatal("no month-to-month volume variation")
	}
	// Consecutive months use contiguous, non-overlapping split indexes.
	m0 := g.MonthSplitsVar(0)
	m1 := g.MonthSplitsVar(1)
	if m0[len(m0)-1].ID == m1[0].ID {
		t.Fatal("months overlap")
	}
}

func TestPointsDim(t *testing.T) {
	g := NewPoints(PointsConfig{Seed: 1, PointsPerSplit: 5, Dim: 7})
	if g.Dim() != 7 {
		t.Fatalf("dim = %d", g.Dim())
	}
}

func TestGeneratorDefaults(t *testing.T) {
	// Zero-valued configs normalize rather than panic.
	if s := NewText(TextConfig{}).Split(0); len(s.Records) == 0 {
		t.Fatal("text defaults")
	}
	if s := NewPoints(PointsConfig{}).Split(0); len(s.Records) == 0 {
		t.Fatal("points defaults")
	}
	if s := NewPigMix(PigMixConfig{}).Split(0); len(s.Records) == 0 {
		t.Fatal("pigmix defaults")
	}
	if s := NewGlasnost(GlasnostConfig{}).Split(0); len(s.Records) == 0 {
		t.Fatal("glasnost defaults")
	}
	if s := NewNetSession(NetSessionConfig{}).Split(0, 0); len(s.Records) == 0 {
		t.Fatal("netsession defaults")
	}
	tw := NewTwitter(TwitterConfig{})
	if tw.Graph().Users() == 0 {
		t.Fatal("twitter defaults")
	}
	if tw.Graph().FollowCount(1) < 0 {
		t.Fatal("follow count")
	}
	if tw.Graph().Follows(99999, 0) {
		t.Fatal("out-of-range user follows someone")
	}
}
