package workload

import (
	"math/rand"
	"strconv"

	"slider/internal/mapreduce"
)

// PigMixConfig parameterizes the synthetic page-views dataset used by the
// PigMix-style query-processing benchmark (§7.3, Figure 10).
type PigMixConfig struct {
	// Seed fixes the dataset.
	Seed int64
	// Users is the distinct user population.
	Users int
	// Pages is the distinct page population.
	Pages int
	// RowsPerSplit is the number of page-view events per input split.
	RowsPerSplit int
}

// DefaultPigMixConfig returns a laptop-scale page-views stream.
func DefaultPigMixConfig() PigMixConfig {
	return PigMixConfig{Seed: 42, Users: 500, Pages: 200, RowsPerSplit: 300}
}

// PigMix generates page-view event splits with schema
// (user, action, page, timespent, revenue) plus a static user→region
// table for replicated joins.
type PigMix struct {
	cfg PigMixConfig
}

// NewPigMix returns a page-views generator.
func NewPigMix(cfg PigMixConfig) *PigMix {
	if cfg.Users <= 0 {
		cfg.Users = 500
	}
	if cfg.Pages <= 0 {
		cfg.Pages = 200
	}
	if cfg.RowsPerSplit <= 0 {
		cfg.RowsPerSplit = 300
	}
	return &PigMix{cfg: cfg}
}

// Schema returns the event schema as LOADed by the queries.
func (p *PigMix) Schema() []string {
	return []string{"user", "action", "page", "timespent", "revenue"}
}

var pigmixActions = []string{"view", "view", "view", "click", "click", "purchase"}

// Split returns event split i.
func (p *PigMix) Split(i int) mapreduce.Split {
	rng := splitRNG(p.cfg.Seed, "pigmix", i)
	zipfUser := rand.NewZipf(rng, 1.2, 1, uint64(p.cfg.Users-1))
	zipfPage := rand.NewZipf(rng, 1.3, 1, uint64(p.cfg.Pages-1))
	records := make([]mapreduce.Record, p.cfg.RowsPerSplit)
	for j := range records {
		action := pigmixActions[rng.Intn(len(pigmixActions))]
		revenue := 0.0
		if action == "purchase" {
			revenue = 1 + 99*rng.Float64()
		}
		records[j] = []any{
			"u" + strconv.FormatUint(zipfUser.Uint64(), 10),
			action,
			"p" + strconv.FormatUint(zipfPage.Uint64(), 10),
			float64(1 + rng.Intn(300)),
			revenue,
		}
	}
	return mapreduce.Split{ID: "pigmix-" + strconv.Itoa(i), Records: records}
}

// Range returns splits [lo, hi).
func (p *PigMix) Range(lo, hi int) []mapreduce.Split {
	out := make([]mapreduce.Split, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, p.Split(i))
	}
	return out
}

// UserTable returns the static user→region side table for replicated
// joins: schema (user, region).
func (p *PigMix) UserTable() (schema []string, rows [][]any) {
	rng := rand.New(rand.NewSource(p.cfg.Seed ^ 0x7ab1e))
	regions := []string{"na", "eu", "ap", "sa"}
	rows = make([][]any, p.cfg.Users)
	for u := range rows {
		rows[u] = []any{"u" + strconv.Itoa(u), regions[rng.Intn(len(regions))]}
	}
	return []string{"user", "region"}, rows
}
