package obs

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"slider/internal/dist"
	"slider/internal/mapreduce"
	"slider/internal/memo"
	"slider/internal/metrics"
	"slider/internal/sliderrt"
)

func obsTestJob() *mapreduce.Job {
	sum := func(_ string, values []mapreduce.Value) mapreduce.Value {
		var total int64
		for _, v := range values {
			total += v.(int64)
		}
		return total
	}
	return &mapreduce.Job{
		Name:       "obs-wordcount",
		Partitions: 2,
		Map: func(rec mapreduce.Record, emit mapreduce.Emit) error {
			for _, w := range strings.Fields(rec.(string)) {
				emit(w, int64(1))
			}
			return nil
		},
		Combine:     sum,
		Reduce:      sum,
		Commutative: true,
	}
}

func obsTestSplits(id0, n int) []mapreduce.Split {
	words := []string{"alpha", "beta", "gamma", "delta"}
	out := make([]mapreduce.Split, n)
	for i := range out {
		recs := make([]mapreduce.Record, 3)
		for j := range recs {
			recs[j] = words[(id0+i+j)%len(words)] + " " + words[(id0+i)%len(words)]
		}
		out[i] = mapreduce.Split{ID: "o" + strconv.Itoa(id0+i), Records: recs}
	}
	return out
}

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d\n%s", url, resp.StatusCode, body)
	}
	return string(body)
}

// metricValue extracts the value of a plain (label-free suffix) sample
// line from an exposition body.
func metricValue(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, name+" ") {
			v, err := strconv.ParseFloat(strings.TrimPrefix(line, name+" "), 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, body)
	return 0
}

// TestServerEndpointsLive drives an observed runtime through healthy and
// degraded slides — remote map with the workers killed mid-stream, memo
// nodes failed — and asserts all four endpoint families serve live data:
// populated Prometheus histograms and fault counters, a degraded slide's
// span trace with its fault events, the tree snapshot, and pprof.
func TestServerEndpointsLive(t *testing.T) {
	reg := &dist.Registry{}
	if err := reg.Register("obs-wordcount", obsTestJob); err != nil {
		t.Fatal(err)
	}
	var workers []*dist.Worker
	var addrs []string
	for i := 0; i < 2; i++ {
		w, err := dist.NewWorker(fmt.Sprintf("w%d", i), "127.0.0.1:0", reg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { w.Close() })
		workers = append(workers, w)
		addrs = append(addrs, w.Addr())
	}

	so := metrics.NewSlideObs()
	faults := &metrics.FaultRecorder{}
	pool, err := dist.NewPoolConfig("obs-wordcount", addrs, dist.PoolConfig{
		Faults: faults,
		Tracer: so.Tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	memoCfg := memo.DefaultConfig()
	memoCfg.Nodes = 4
	rt, err := sliderrt.New(obsTestJob(), sliderrt.Config{
		Mode:      sliderrt.Variable,
		Memo:      memoCfg,
		MapRunner: pool,
		Faults:    faults,
		Obs:       so,
	})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := rt.Initial(obsTestSplits(0, 6)); err != nil {
		t.Fatal(err)
	}
	next := 6
	if _, err := rt.Advance(1, obsTestSplits(next, 1)); err != nil {
		t.Fatal(err)
	}
	next++
	// Chaos: every worker dies and every memo node fails. The next slide
	// must degrade (local map fallback + memo recomputes) yet succeed.
	for _, w := range workers {
		w.Kill()
	}
	for n := 0; n < memoCfg.Nodes; n++ {
		rt.Store().FailNode(n)
	}
	if _, err := rt.Advance(1, obsTestSplits(next, 1)); err != nil {
		t.Fatalf("degraded slide failed outright: %v", err)
	}
	next++
	// Recover the memo nodes and run two more slides: the first re-reads
	// persistent replicas (misses with read-repair), the second hits the
	// in-memory cache again — so the hit-ratio gauges are live. Map stays
	// on the local-fallback path (the workers remain dead).
	for n := 0; n < memoCfg.Nodes; n++ {
		rt.Store().RecoverNode(n)
	}
	for i := 0; i < 2; i++ {
		if _, err := rt.Advance(1, obsTestSplits(next, 1)); err != nil {
			t.Fatal(err)
		}
		next++
	}
	if rt.Store().Stats().Hits == 0 {
		t.Fatal("post-recovery slide produced no memo hits")
	}
	fs := faults.Snapshot()
	if fs.LocalFallbacks == 0 || fs.MemoRecomputes == 0 {
		t.Fatalf("chaos slide did not degrade: %s", fs)
	}

	srv, err := StartForRuntime("127.0.0.1:0", rt)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	// /metrics: populated histogram families and fault counters.
	m := get(t, base+"/metrics")
	if got := metricValue(t, m, "slider_slide_seconds_count"); got != 5 {
		t.Errorf("slider_slide_seconds_count = %v, want 5", got)
	}
	for _, phase := range []string{"map", "contract", "reduce"} {
		want := `slider_phase_seconds_count{phase="` + phase + `"} 5`
		if !strings.Contains(m, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	for _, name := range []string{"slider_memo_read_seconds_count", "slider_memo_write_seconds_count",
		"slider_rpc_batch_seconds_count", "slider_memo_hits_total"} {
		if metricValue(t, m, name) == 0 {
			t.Errorf("%s is zero", name)
		}
	}
	if !strings.Contains(m, `slider_fault_events_total{event="local-fallbacks"} `+
		strconv.FormatInt(fs.LocalFallbacks, 10)) {
		t.Errorf("/metrics missing local-fallbacks counter:\n%s", m)
	}
	if metricValue(t, m, "slider_memo_hit_ratio") <= 0 {
		t.Error("memo hit ratio not positive")
	}
	if !strings.Contains(m, `slider_slide_seconds_bucket{le="+Inf"} 5`) {
		t.Error("/metrics missing +Inf bucket")
	}

	// /debug/slides: the degraded slide's span trace with fault events.
	slides := get(t, base+"/debug/slides?n=5")
	for _, want := range []string{"slide 5", "[DEGRADED]", "faults: local-fallbacks=",
		"faults: memo-recomputes=", "map phase", "contract phase"} {
		if !strings.Contains(slides, want) {
			t.Errorf("/debug/slides missing %q:\n%s", want, slides)
		}
	}
	slowest := get(t, base+"/debug/slides?slowest=1")
	if !strings.Contains(slowest, "slowest") || !strings.Contains(slowest, "slide ") {
		t.Errorf("slowest view malformed:\n%s", slowest)
	}

	// /debug/tree: the snapshot is stale until a poll-then-slide cycle, so
	// poll once, slide, and poll again for live data.
	get(t, base+"/debug/tree")
	if _, err := rt.Advance(1, obsTestSplits(next, 1)); err != nil {
		t.Fatal(err)
	}
	tree := get(t, base+"/debug/tree")
	for _, want := range []string{"variant: folding", "slide: 6", "partition 0:", "partition 1:",
		"memo:", "fingerprint:"} {
		if !strings.Contains(tree, want) {
			t.Errorf("/debug/tree missing %q:\n%s", want, tree)
		}
	}

	// /debug/pprof and the index.
	if p := get(t, base+"/debug/pprof/"); !strings.Contains(p, "goroutine") {
		t.Error("pprof index missing goroutine profile")
	}
	if idx := get(t, base+"/"); !strings.Contains(idx, "/debug/tree") {
		t.Error("index page missing endpoint links")
	}
}

// TestServerEmptyConfig: a server with no sources (the worker daemon's
// configuration) still serves every endpoint without panicking.
func TestServerEmptyConfig(t *testing.T) {
	srv, err := Start("127.0.0.1:0", Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()
	if m := get(t, base+"/metrics"); strings.Contains(m, "slider_slide_seconds") {
		t.Errorf("sourceless /metrics has slide data:\n%s", m)
	}
	if s := get(t, base+"/debug/slides"); !strings.Contains(s, "no tracer configured") {
		t.Errorf("/debug/slides = %q", s)
	}
	if tr := get(t, base+"/debug/tree"); !strings.Contains(tr, "no tree source configured") {
		t.Errorf("/debug/tree = %q", tr)
	}
	get(t, base+"/debug/pprof/")
}
