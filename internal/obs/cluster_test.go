package obs

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"slider/internal/dist"
	"slider/internal/metrics"
	"slider/internal/sliderrt"
)

// labeledValue extracts one labeled sample's value from an exposition
// body (exact prefix match on "name{labels} ").
func labeledValue(t *testing.T, body, sample string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, sample+" ") {
			v, err := strconv.ParseFloat(strings.TrimPrefix(line, sample+" "), 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("sample %s not found in:\n%s", sample, body)
	return 0
}

// TestClusterObservability is the end-to-end acceptance check: a real
// 3-worker TCP cluster under chaos (injected delays forcing hedges), a
// pool-driven runtime, and obs servers on the pool and every worker.
// It asserts a single slide's /debug/trace export contains stitched
// spans from all three workers plus a hedged attempt, that the pool's
// federated cluster totals exactly equal the sum of what each worker
// reports on its own /metrics endpoint, and that the trace export
// parses as well-formed Chrome trace JSON.
func TestClusterObservability(t *testing.T) {
	reg := &dist.Registry{}
	if err := reg.Register("obs-wordcount", obsTestJob); err != nil {
		t.Fatal(err)
	}
	var workers []*dist.Worker
	var addrs []string
	for i := 0; i < 3; i++ {
		w, err := dist.NewWorker(fmt.Sprintf("w%d", i), "127.0.0.1:0", reg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { w.Close() })
		w.SetObs(dist.NewWorkerObs())
		workers = append(workers, w)
		addrs = append(addrs, w.Addr())
	}

	so := metrics.NewSlideObs()
	faults := &metrics.FaultRecorder{}
	pool, err := dist.NewPoolConfig("obs-wordcount", addrs, dist.PoolConfig{
		TaskTimeout:     time.Second,
		BackoffBase:     2 * time.Millisecond,
		BreakerCooldown: 5 * time.Millisecond,
		HealthInterval:  5 * time.Millisecond,
		StatsInterval:   5 * time.Millisecond,
		Hedge:           true,
		HedgeMin:        20 * time.Millisecond,
		Faults:          faults,
		Tracer:          so.Tracer,
		Seed:            1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	rt, err := sliderrt.New(obsTestJob(), sliderrt.Config{
		Mode:      sliderrt.Variable,
		MapRunner: pool,
		Faults:    faults,
		Obs:       so,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Initial(obsTestSplits(0, 6)); err != nil {
		t.Fatal(err)
	}
	next := 6

	// Chaos slides: delay one worker past the hedge threshold (but under
	// the task deadline) so a hedge fires onto an idle worker while the
	// delayed original still completes and stitches its spans — giving
	// one slide spans from all three workers plus a hedged attempt.
	// Hedging is timing-dependent, so retry with a fresh slide until one
	// shows the full picture.
	workerMark := func(i int) string { return fmt.Sprintf("w%d obs-wordcount", i) }
	fullTrace := func(text string) bool {
		if !strings.Contains(text, "(hedge)") {
			return false
		}
		for i := range workers {
			if !strings.Contains(text, workerMark(i)) {
				return false
			}
		}
		return true
	}
	var chaosSlide uint64
	for attempt := 0; attempt < 10 && chaosSlide == 0; attempt++ {
		workers[attempt%3].Faults().InjectDelay(60 * time.Millisecond)
		if _, err := rt.Advance(6, obsTestSplits(next, 6)); err != nil {
			t.Fatal(err)
		}
		next += 6
		// The delayed attempt's spans stitch when its RPC completes, which
		// may be after the slide committed — poll briefly.
		slide := so.Tracer.Recent(1)[0]
		for deadline := time.Now().Add(2 * time.Second); time.Now().Before(deadline); {
			if fullTrace(slide.Format()) {
				chaosSlide = slide.ID
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	if chaosSlide == 0 {
		t.Fatalf("no slide collected spans from all workers plus a hedge; faults: %s", faults.Snapshot())
	}
	if faults.Snapshot().HedgesLaunched == 0 {
		t.Fatal("hedge counter did not move")
	}

	// Quiesce, then federate: the pool's merged totals must exactly equal
	// what the workers report about themselves.
	var cs metrics.ClusterStats
	var merged metrics.NodeStats
	for deadline := time.Now().Add(5 * time.Second); ; {
		pool.PollStats()
		cs = pool.ClusterStats()
		merged = cs.Merged()
		var direct int64
		for _, w := range workers {
			direct += w.Served()
		}
		if len(cs.Workers) == 3 && merged.Served == direct && merged.Served > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("federated served=%d never matched workers' own %d (%d workers federated)",
				merged.Served, direct, len(cs.Workers))
		}
		time.Sleep(5 * time.Millisecond)
	}
	var batchSum metrics.HistogramSnapshot
	for _, n := range cs.Workers {
		b, ok := n.Hist("batch")
		if !ok {
			t.Fatalf("federated snapshot for %s has no batch histogram", n.Node)
		}
		batchSum = batchSum.Add(b)
	}
	if got, _ := merged.Hist("batch"); got != batchSum {
		t.Fatalf("merged batch histogram != sum of per-worker snapshots:\n got %+v\nwant %+v", got, batchSum)
	}

	// Obs servers: one on the pool's runtime (cluster view auto-wired
	// from the MapRunner), one per worker (self view).
	poolSrv, err := StartForRuntime("127.0.0.1:0", rt)
	if err != nil {
		t.Fatal(err)
	}
	defer poolSrv.Close()
	var workerURLs []string
	for _, w := range workers {
		w := w
		srv, err := Start("127.0.0.1:0", Config{
			Node:   w.StatsSnapshot,
			Tracer: w.Obs().Tracer,
			Fault:  w.Obs().Faults,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		workerURLs = append(workerURLs, "http://"+srv.Addr())
	}

	// Scrape the pool: cluster aggregates plus per-worker labeled series.
	pm := get(t, "http://"+poolSrv.Addr()+"/metrics")
	clusterServed := labeledValue(t, pm, "slider_cluster_served_total")
	if got := labeledValue(t, pm, "slider_cluster_workers"); got != 3 {
		t.Fatalf("slider_cluster_workers = %v, want 3", got)
	}
	// Scrape each worker and check the federation sums line up across
	// processes: pool per-worker label == worker's own scrape, and the
	// cluster total == the sum of the worker scrapes.
	var scrapedSum float64
	for i, u := range workerURLs {
		wm := get(t, u+"/metrics")
		sample := fmt.Sprintf("slider_worker_served_total{worker=%q}", fmt.Sprintf("w%d", i))
		own := labeledValue(t, wm, sample)
		if fed := labeledValue(t, pm, sample); fed != own {
			t.Fatalf("pool federated %s=%v but the worker reports %v", sample, fed, own)
		}
		if cnt := labeledValue(t, wm, fmt.Sprintf("slider_worker_batch_seconds_count{worker=%q}", fmt.Sprintf("w%d", i))); cnt == 0 {
			t.Fatalf("worker %d batch histogram empty on its own endpoint", i)
		}
		scrapedSum += own
	}
	if scrapedSum != clusterServed {
		t.Fatalf("cluster served %v != sum of worker scrapes %v", clusterServed, scrapedSum)
	}
	var batchTotal int64
	for _, c := range batchSum.Counts {
		batchTotal += c
	}
	if cnt := labeledValue(t, pm, "slider_cluster_batch_seconds_count"); cnt != float64(batchTotal) {
		t.Fatalf("slider_cluster_batch_seconds_count = %v, want %d", cnt, batchTotal)
	}
	// Out-of-order gauges are exposed even for in-order backends (zero).
	for _, name := range []string{"slider_window_live_buckets", "slider_window_watermark_lag_buckets"} {
		labeledValue(t, pm, name)
	}

	// /debug/trace: the chaos slide parses as Chrome trace JSON and holds
	// spans from every worker plus the hedged attempt.
	body := get(t, fmt.Sprintf("http://%s/debug/trace?slide=%d", poolSrv.Addr(), chaosSlide))
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/debug/trace is not valid JSON: %v\n%s", err, body)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("/debug/trace has no events")
	}
	var names []string
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" && ev.Ph != "i" && ev.Ph != "M" {
			t.Fatalf("unexpected trace event phase %q", ev.Ph)
		}
		names = append(names, ev.Name)
	}
	all := strings.Join(names, "\n")
	for i := range workers {
		if !strings.Contains(all, workerMark(i)) {
			t.Fatalf("trace export missing worker %d spans:\n%s", i, all)
		}
	}
	if !strings.Contains(all, "(hedge)") {
		t.Fatalf("trace export missing hedged attempt:\n%s", all)
	}

	// The worker's own /debug/trace (its batch ring) also exports.
	wt := get(t, workerURLs[0]+"/debug/trace")
	if !json.Valid([]byte(wt)) {
		t.Fatalf("worker /debug/trace is not valid JSON:\n%s", wt)
	}
}
