// Package obs is the introspection HTTP server: it mounts Prometheus
// metrics, pprof, recent slide traces, and the live contraction-tree
// snapshot for a running Slider process. Every data source is optional —
// a worker daemon mounts it with nothing but pprof, a stream driver
// hands it the runtime's full observability bundle.
//
// Endpoints:
//
//	/                 index
//	/metrics          Prometheus text exposition
//	/debug/pprof/     Go runtime profiles
//	/debug/slides     recent slide span traces (?n=, ?slowest=1)
//	/debug/trace      one slide's span tree as Chrome trace-event JSON (?slide=N)
//	/debug/tree       live contraction-tree snapshot
//
// With cluster sources wired (a dist.Pool driving remote workers),
// /metrics additionally exposes per-worker labeled families federated
// over the Stats RPC plus their cluster aggregates, and /debug/trace
// exports include the stitched worker spans.
package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"slider/internal/memo"
	"slider/internal/metrics"
	"slider/internal/sliderrt"
)

// Config wires the server's data sources. Any field may be nil; the
// corresponding sections simply disappear from the output.
type Config struct {
	// Slide is the runtime's instrumentation bundle (histograms + span
	// tracer) — the source for /metrics latency families and
	// /debug/slides.
	Slide *metrics.SlideObs
	// Fault is the shared fault-event recorder (counters + RPC latency).
	Fault *metrics.FaultRecorder
	// Tree supplies the latest contraction-tree snapshot (and, as a side
	// effect of how the runtime implements it, requests a refresh).
	// Typically sliderrt's (*Runtime).TreeSnapshot.
	Tree func() *sliderrt.TreeSnapshot
	// Memo supplies live memoization-layer counters (hit ratio in
	// /metrics). Typically a closure over (*memo.Store).Stats.
	Memo func() memo.Stats
	// Tracer overrides the span source for /debug/slides and /debug/trace
	// (default Slide.Tracer). A worker daemon, which has no SlideObs,
	// points this at its WorkerObs tracer to expose batch traces.
	Tracer *metrics.Tracer
	// Window supplies the out-of-order window gauges (watermark lag,
	// bucket-ledger width, late accept/reject counters). Typically
	// (*sliderrt.Runtime).WindowStats.
	Window func() sliderrt.WindowStats
	// Cluster supplies the pool's federated per-worker stats; /metrics
	// renders them as slider_worker_* families labeled by worker plus
	// slider_cluster_* aggregates. Typically (*dist.Pool).ClusterStats.
	Cluster func() metrics.ClusterStats
	// Node supplies this process's own federation snapshot (a worker
	// daemon exporting the same slider_worker_* families about itself,
	// so a scrape of the worker matches the pool's federated view).
	Node func() metrics.NodeStats
}

// Server is a running introspection HTTP server.
type Server struct {
	cfg Config
	ln  net.Listener
	srv *http.Server
}

// Start listens on addr (e.g. "127.0.0.1:6060"; ":0" picks a port) and
// serves the introspection endpoints until Close.
func Start(addr string, cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{cfg: cfg, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/slides", s.handleSlides)
	mux.HandleFunc("/debug/trace", s.handleTrace)
	mux.HandleFunc("/debug/tree", s.handleTree)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return s, nil
}

// StartForRuntime starts a server wired to everything a runtime exposes,
// including the cluster-stats source when the runtime's MapRunner is a
// dist.Pool (or anything else exposing ClusterStats).
func StartForRuntime(addr string, rt *sliderrt.Runtime) (*Server, error) {
	cfg := Config{
		Slide:  rt.Observability(),
		Fault:  rt.FaultRecorder(),
		Tree:   rt.TreeSnapshot,
		Memo:   func() memo.Stats { return rt.Store().Stats() },
		Window: rt.WindowStats,
	}
	if c, ok := rt.MapRunner().(interface {
		ClusterStats() metrics.ClusterStats
	}); ok {
		cfg.Cluster = c.ClusterStats
	}
	return Start(addr, cfg)
}

// tracer resolves the span source: the explicit override, else the slide
// bundle's tracer.
func (s *Server) tracer() *metrics.Tracer {
	if s.cfg.Tracer != nil {
		return s.cfg.Tracer
	}
	if s.cfg.Slide != nil {
		return s.cfg.Slide.Tracer
	}
	return nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the listener.
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, `<html><head><title>slider obs</title></head><body>
<h1>slider introspection</h1>
<ul>
<li><a href="/metrics">/metrics</a> — Prometheus text exposition</li>
<li><a href="/debug/slides">/debug/slides</a> — recent slide span traces (<a href="/debug/slides?slowest=1">slowest</a>)</li>
<li><a href="/debug/trace">/debug/trace</a> — slide trace as Chrome trace-event JSON (?slide=N; load in Perfetto)</li>
<li><a href="/debug/tree">/debug/tree</a> — live contraction-tree snapshot</li>
<li><a href="/debug/pprof/">/debug/pprof/</a> — Go runtime profiles</li>
</ul>
</body></html>
`)
}

// handleSlides dumps recent slide traces as flame summaries, newest
// first. ?n= bounds the count (default 10); ?slowest=1 orders by
// duration instead of recency.
func (s *Server) handleSlides(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	tr := s.tracer()
	if tr == nil {
		fmt.Fprintln(w, "no tracer configured")
		return
	}
	n := 10
	if v, err := strconv.Atoi(r.URL.Query().Get("n")); err == nil && v > 0 {
		n = v
	}
	var spans []*metrics.Span
	if r.URL.Query().Get("slowest") != "" {
		spans = tr.Slowest(n)
		fmt.Fprintf(w, "slowest %d of the retained slides (tracer mode %s, %d slides recorded)\n\n",
			len(spans), tr.Mode(), tr.Committed())
	} else {
		spans = tr.Recent(n)
		fmt.Fprintf(w, "most recent %d slides (tracer mode %s, %d slides recorded)\n\n",
			len(spans), tr.Mode(), tr.Committed())
	}
	if len(spans) == 0 {
		fmt.Fprintln(w, "no slides recorded yet")
		return
	}
	for _, sp := range spans {
		fmt.Fprint(w, sp.Format())
		fmt.Fprintln(w)
	}
}

// handleTrace exports one slide's full span tree — pool phases plus the
// stitched per-attempt worker spans — as Chrome trace-event JSON,
// loadable in Perfetto or chrome://tracing. ?slide=N selects the slide;
// without it the most recently recorded slide is exported.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	tr := s.tracer()
	if tr == nil {
		http.Error(w, "no tracer configured", http.StatusNotFound)
		return
	}
	var root *metrics.Span
	if q := r.URL.Query().Get("slide"); q != "" {
		id, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			http.Error(w, "bad slide id: "+q, http.StatusBadRequest)
			return
		}
		if root = tr.Find(id); root == nil {
			http.Error(w, fmt.Sprintf("slide %d not retained (ring keeps the most recent slides)", id), http.StatusNotFound)
			return
		}
	} else if recent := tr.Recent(1); len(recent) > 0 {
		root = recent[0]
	} else {
		http.Error(w, "no slides recorded yet", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", fmt.Sprintf("inline; filename=%q", fmt.Sprintf("slide-%d-trace.json", root.SlideID())))
	if err := metrics.WriteChromeTrace(w, root); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleTree renders the latest contraction-tree snapshot.
func (s *Server) handleTree(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.cfg.Tree == nil {
		fmt.Fprintln(w, "no tree source configured")
		return
	}
	snap := s.cfg.Tree()
	if snap == nil {
		fmt.Fprintln(w, "no slide completed yet")
		return
	}
	fmt.Fprintf(w, "variant: %s (mode %s)\n", snap.Variant, snap.Mode)
	fmt.Fprintf(w, "slide: %d\n", snap.SlideID)
	fmt.Fprintf(w, "window: %d live splits, oldest seq %d\n", snap.Live, snap.WindowLo)
	fmt.Fprintf(w, "memo: %d hits, %d misses (hit ratio %.3f)\n", snap.MemoHits, snap.MemoMisses, snap.HitRatio())
	fmt.Fprintf(w, "fingerprint: %016x\n", snap.Fingerprint)
	for p, sh := range snap.Partitions {
		fmt.Fprintf(w, "partition %d: height=%d live=%d nodes=%d", p, sh.Height, sh.Live, sh.Nodes)
		if sh.Levels != nil {
			fmt.Fprintf(w, " levels=%v", sh.Levels)
		}
		fmt.Fprintln(w)
	}
}

// handleMetrics renders the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if o := s.cfg.Slide; o != nil {
		phaseHeader := false
		for _, nh := range o.All() {
			name := "slider_" + nh.Name + "_seconds"
			if nh.Name == "phase" {
				// One # TYPE header for the whole per-phase family; the
				// exposition format forbids repeating it per label series.
				if !phaseHeader {
					fmt.Fprintf(w, "# TYPE %s histogram\n", name)
					phaseHeader = true
				}
				writeHistogramSeries(w, name, `phase="`+nh.Phase+`"`, nh.Hist.Snapshot())
			} else {
				writeHistogram(w, name, "", nh.Hist.Snapshot())
			}
		}
	}
	if f := s.cfg.Fault; f != nil {
		snap := f.Snapshot()
		fmt.Fprintln(w, "# HELP slider_fault_events_total Fault-tolerance events by kind.")
		fmt.Fprintln(w, "# TYPE slider_fault_events_total counter")
		snap.EachCounter(func(name string, v int64) {
			fmt.Fprintf(w, "slider_fault_events_total{event=%q} %d\n", name, v)
		})
		writeHistogram(w, "slider_rpc_batch_seconds", "", snap.RPCLatency)
	}
	if s.cfg.Memo != nil {
		ms := s.cfg.Memo()
		fmt.Fprintln(w, "# TYPE slider_memo_hits_total counter")
		fmt.Fprintf(w, "slider_memo_hits_total %d\n", ms.Hits)
		fmt.Fprintln(w, "# TYPE slider_memo_misses_total counter")
		fmt.Fprintf(w, "slider_memo_misses_total %d\n", ms.Misses)
		fmt.Fprintln(w, "# TYPE slider_memo_hit_ratio gauge")
		ratio := 0.0
		if ms.Hits+ms.Misses > 0 {
			ratio = float64(ms.Hits) / float64(ms.Hits+ms.Misses)
		}
		fmt.Fprintf(w, "slider_memo_hit_ratio %g\n", ratio)
		fmt.Fprintln(w, "# TYPE slider_memo_resident_bytes gauge")
		fmt.Fprintf(w, "slider_memo_resident_bytes %d\n", ms.Bytes)
		fmt.Fprintln(w, "# TYPE slider_memo_entries gauge")
		fmt.Fprintf(w, "slider_memo_entries %d\n", ms.Entries)
	}
	if s.cfg.Tree != nil {
		if snap := s.cfg.Tree(); snap != nil {
			fmt.Fprintln(w, "# TYPE slider_slides_total counter")
			fmt.Fprintf(w, "slider_slides_total %d\n", snap.SlideID)
			fmt.Fprintln(w, "# TYPE slider_window_live_splits gauge")
			fmt.Fprintf(w, "slider_window_live_splits %d\n", snap.Live)
		}
	}
	if s.cfg.Window != nil {
		ws := s.cfg.Window()
		fmt.Fprintln(w, "# HELP slider_window_live_buckets Bucket-ledger width: live window buckets including late inserts (0 for in-order backends).")
		fmt.Fprintln(w, "# TYPE slider_window_live_buckets gauge")
		fmt.Fprintf(w, "slider_window_live_buckets %d\n", ws.LiveBuckets)
		fmt.Fprintln(w, "# HELP slider_window_watermark_lag_buckets How many buckets the effective watermark trails the newest in-order bucket.")
		fmt.Fprintln(w, "# TYPE slider_window_watermark_lag_buckets gauge")
		fmt.Fprintf(w, "slider_window_watermark_lag_buckets %d\n", ws.WatermarkLag)
		fmt.Fprintln(w, "# HELP slider_late_arrivals_total AdvanceLate outcomes: accepted late buckets vs ErrTooLate rejections.")
		fmt.Fprintln(w, "# TYPE slider_late_arrivals_total counter")
		fmt.Fprintf(w, "slider_late_arrivals_total{result=\"accept\"} %d\n", ws.LateAccepts)
		fmt.Fprintf(w, "slider_late_arrivals_total{result=\"reject\"} %d\n", ws.LateRejects)
	}
	if s.cfg.Cluster != nil {
		cs := s.cfg.Cluster()
		if len(cs.Workers) > 0 {
			writeWorkerFamilies(w, cs.Workers)
			m := cs.Merged()
			fmt.Fprintln(w, "# HELP slider_cluster_workers Workers with a federated stats snapshot.")
			fmt.Fprintln(w, "# TYPE slider_cluster_workers gauge")
			fmt.Fprintf(w, "slider_cluster_workers %d\n", len(cs.Workers))
			fmt.Fprintln(w, "# TYPE slider_cluster_served_total counter")
			fmt.Fprintf(w, "slider_cluster_served_total %d\n", m.Served)
			fmt.Fprintln(w, "# TYPE slider_cluster_fault_events_total counter")
			m.Faults.EachCounter(func(name string, v int64) {
				fmt.Fprintf(w, "slider_cluster_fault_events_total{event=%q} %d\n", name, v)
			})
			for _, h := range m.Hists {
				writeHistogram(w, "slider_cluster_"+h.Name+"_seconds", "", h.Snap)
			}
		}
	}
	if s.cfg.Node != nil {
		writeWorkerFamilies(w, []metrics.NodeStats{s.cfg.Node()})
	}
}

// writeWorkerFamilies renders per-worker labeled families — served
// counts, fault counters, and per-phase latency histograms — emitting
// each family's # TYPE exactly once across all worker label series (the
// exposition format forbids repeating it).
func writeWorkerFamilies(w http.ResponseWriter, nodes []metrics.NodeStats) {
	fmt.Fprintln(w, "# HELP slider_worker_served_total Map tasks executed, by worker (federated over the Stats RPC).")
	fmt.Fprintln(w, "# TYPE slider_worker_served_total counter")
	for _, n := range nodes {
		fmt.Fprintf(w, "slider_worker_served_total{worker=%q} %d\n", n.Node, n.Served)
	}
	fmt.Fprintln(w, "# TYPE slider_worker_fault_events_total counter")
	for _, n := range nodes {
		n.Faults.EachCounter(func(name string, v int64) {
			fmt.Fprintf(w, "slider_worker_fault_events_total{worker=%q,event=%q} %d\n", n.Node, name, v)
		})
	}
	// Histogram family names in first-seen order across the nodes.
	var famOrder []string
	seen := map[string]bool{}
	for _, n := range nodes {
		for _, h := range n.Hists {
			if !seen[h.Name] {
				seen[h.Name] = true
				famOrder = append(famOrder, h.Name)
			}
		}
	}
	for _, fam := range famOrder {
		name := "slider_worker_" + fam + "_seconds"
		fmt.Fprintf(w, "# TYPE %s histogram\n", name)
		for _, n := range nodes {
			if snap, ok := n.Hist(fam); ok {
				writeHistogramSeries(w, name, `worker="`+n.Node+`"`, snap)
			}
		}
	}
}

// writeHistogram renders one fixed-bucket latency histogram in the
// Prometheus exposition format: the family's # TYPE header followed by
// one label series.
func writeHistogram(w http.ResponseWriter, name, label string, snap metrics.HistogramSnapshot) {
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	writeHistogramSeries(w, name, label, snap)
}

// writeHistogramSeries renders one histogram label series without the
// # TYPE header (families with several label series — per-phase,
// per-worker — emit the header once and call this per series):
// cumulative le buckets in seconds, then _sum and _count. The count is
// the bucket total, so the series is always self-consistent even
// against in-flight recordings.
func writeHistogramSeries(w http.ResponseWriter, name, label string, snap metrics.HistogramSnapshot) {
	sep := func(extra string) string {
		switch {
		case label == "" && extra == "":
			return ""
		case label == "":
			return "{" + extra + "}"
		case extra == "":
			return "{" + label + "}"
		default:
			return "{" + label + "," + extra + "}"
		}
	}
	var cum int64
	for i, c := range snap.Counts {
		cum += c
		le := strconv.FormatFloat(metrics.HistogramUpperBound(i).Seconds(), 'g', -1, 64)
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, sep(`le="`+le+`"`), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, sep(`le="+Inf"`), cum)
	fmt.Fprintf(w, "%s_sum%s %g\n", name, sep(""), time.Duration(snap.SumNs).Seconds())
	fmt.Fprintf(w, "%s_count%s %d\n", name, sep(""), cum)
}
