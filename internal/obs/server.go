// Package obs is the introspection HTTP server: it mounts Prometheus
// metrics, pprof, recent slide traces, and the live contraction-tree
// snapshot for a running Slider process. Every data source is optional —
// a worker daemon mounts it with nothing but pprof, a stream driver
// hands it the runtime's full observability bundle.
//
// Endpoints:
//
//	/                 index
//	/metrics          Prometheus text exposition
//	/debug/pprof/     Go runtime profiles
//	/debug/slides     recent slide span traces (?n=, ?slowest=1)
//	/debug/tree       live contraction-tree snapshot
package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"slider/internal/memo"
	"slider/internal/metrics"
	"slider/internal/sliderrt"
)

// Config wires the server's data sources. Any field may be nil; the
// corresponding sections simply disappear from the output.
type Config struct {
	// Slide is the runtime's instrumentation bundle (histograms + span
	// tracer) — the source for /metrics latency families and
	// /debug/slides.
	Slide *metrics.SlideObs
	// Fault is the shared fault-event recorder (counters + RPC latency).
	Fault *metrics.FaultRecorder
	// Tree supplies the latest contraction-tree snapshot (and, as a side
	// effect of how the runtime implements it, requests a refresh).
	// Typically sliderrt's (*Runtime).TreeSnapshot.
	Tree func() *sliderrt.TreeSnapshot
	// Memo supplies live memoization-layer counters (hit ratio in
	// /metrics). Typically a closure over (*memo.Store).Stats.
	Memo func() memo.Stats
}

// Server is a running introspection HTTP server.
type Server struct {
	cfg Config
	ln  net.Listener
	srv *http.Server
}

// Start listens on addr (e.g. "127.0.0.1:6060"; ":0" picks a port) and
// serves the introspection endpoints until Close.
func Start(addr string, cfg Config) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{cfg: cfg, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/slides", s.handleSlides)
	mux.HandleFunc("/debug/tree", s.handleTree)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return s, nil
}

// StartForRuntime starts a server wired to everything a runtime exposes.
func StartForRuntime(addr string, rt *sliderrt.Runtime) (*Server, error) {
	return Start(addr, Config{
		Slide: rt.Observability(),
		Fault: rt.FaultRecorder(),
		Tree:  rt.TreeSnapshot,
		Memo:  func() memo.Stats { return rt.Store().Stats() },
	})
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and releases the listener.
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, `<html><head><title>slider obs</title></head><body>
<h1>slider introspection</h1>
<ul>
<li><a href="/metrics">/metrics</a> — Prometheus text exposition</li>
<li><a href="/debug/slides">/debug/slides</a> — recent slide span traces (<a href="/debug/slides?slowest=1">slowest</a>)</li>
<li><a href="/debug/tree">/debug/tree</a> — live contraction-tree snapshot</li>
<li><a href="/debug/pprof/">/debug/pprof/</a> — Go runtime profiles</li>
</ul>
</body></html>
`)
}

// handleSlides dumps recent slide traces as flame summaries, newest
// first. ?n= bounds the count (default 10); ?slowest=1 orders by
// duration instead of recency.
func (s *Server) handleSlides(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.cfg.Slide == nil || s.cfg.Slide.Tracer == nil {
		fmt.Fprintln(w, "no tracer configured")
		return
	}
	tr := s.cfg.Slide.Tracer
	n := 10
	if v, err := strconv.Atoi(r.URL.Query().Get("n")); err == nil && v > 0 {
		n = v
	}
	var spans []*metrics.Span
	if r.URL.Query().Get("slowest") != "" {
		spans = tr.Slowest(n)
		fmt.Fprintf(w, "slowest %d of the retained slides (tracer mode %s, %d slides recorded)\n\n",
			len(spans), tr.Mode(), tr.Committed())
	} else {
		spans = tr.Recent(n)
		fmt.Fprintf(w, "most recent %d slides (tracer mode %s, %d slides recorded)\n\n",
			len(spans), tr.Mode(), tr.Committed())
	}
	if len(spans) == 0 {
		fmt.Fprintln(w, "no slides recorded yet")
		return
	}
	for _, sp := range spans {
		fmt.Fprint(w, sp.Format())
		fmt.Fprintln(w)
	}
}

// handleTree renders the latest contraction-tree snapshot.
func (s *Server) handleTree(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.cfg.Tree == nil {
		fmt.Fprintln(w, "no tree source configured")
		return
	}
	snap := s.cfg.Tree()
	if snap == nil {
		fmt.Fprintln(w, "no slide completed yet")
		return
	}
	fmt.Fprintf(w, "variant: %s (mode %s)\n", snap.Variant, snap.Mode)
	fmt.Fprintf(w, "slide: %d\n", snap.SlideID)
	fmt.Fprintf(w, "window: %d live splits, oldest seq %d\n", snap.Live, snap.WindowLo)
	fmt.Fprintf(w, "memo: %d hits, %d misses (hit ratio %.3f)\n", snap.MemoHits, snap.MemoMisses, snap.HitRatio())
	fmt.Fprintf(w, "fingerprint: %016x\n", snap.Fingerprint)
	for p, sh := range snap.Partitions {
		fmt.Fprintf(w, "partition %d: height=%d live=%d nodes=%d", p, sh.Height, sh.Live, sh.Nodes)
		if sh.Levels != nil {
			fmt.Fprintf(w, " levels=%v", sh.Levels)
		}
		fmt.Fprintln(w)
	}
}

// handleMetrics renders the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if o := s.cfg.Slide; o != nil {
		for _, nh := range o.All() {
			name := "slider_" + nh.Name + "_seconds"
			if nh.Name == "phase" {
				writeHistogram(w, name, `phase="`+nh.Phase+`"`, nh.Hist.Snapshot())
			} else {
				writeHistogram(w, name, "", nh.Hist.Snapshot())
			}
		}
	}
	if f := s.cfg.Fault; f != nil {
		snap := f.Snapshot()
		fmt.Fprintln(w, "# HELP slider_fault_events_total Fault-tolerance events by kind.")
		fmt.Fprintln(w, "# TYPE slider_fault_events_total counter")
		snap.EachCounter(func(name string, v int64) {
			fmt.Fprintf(w, "slider_fault_events_total{event=%q} %d\n", name, v)
		})
		writeHistogram(w, "slider_rpc_batch_seconds", "", snap.RPCLatency)
	}
	if s.cfg.Memo != nil {
		ms := s.cfg.Memo()
		fmt.Fprintln(w, "# TYPE slider_memo_hits_total counter")
		fmt.Fprintf(w, "slider_memo_hits_total %d\n", ms.Hits)
		fmt.Fprintln(w, "# TYPE slider_memo_misses_total counter")
		fmt.Fprintf(w, "slider_memo_misses_total %d\n", ms.Misses)
		fmt.Fprintln(w, "# TYPE slider_memo_hit_ratio gauge")
		ratio := 0.0
		if ms.Hits+ms.Misses > 0 {
			ratio = float64(ms.Hits) / float64(ms.Hits+ms.Misses)
		}
		fmt.Fprintf(w, "slider_memo_hit_ratio %g\n", ratio)
		fmt.Fprintln(w, "# TYPE slider_memo_resident_bytes gauge")
		fmt.Fprintf(w, "slider_memo_resident_bytes %d\n", ms.Bytes)
		fmt.Fprintln(w, "# TYPE slider_memo_entries gauge")
		fmt.Fprintf(w, "slider_memo_entries %d\n", ms.Entries)
	}
	if s.cfg.Tree != nil {
		if snap := s.cfg.Tree(); snap != nil {
			fmt.Fprintln(w, "# TYPE slider_slides_total counter")
			fmt.Fprintf(w, "slider_slides_total %d\n", snap.SlideID)
			fmt.Fprintln(w, "# TYPE slider_window_live_splits gauge")
			fmt.Fprintf(w, "slider_window_live_splits %d\n", snap.Live)
		}
	}
}

// writeHistogram renders one fixed-bucket latency histogram in the
// Prometheus exposition format: cumulative le buckets in seconds, then
// _sum and _count. The count is the bucket total, so the series is
// always self-consistent even against in-flight recordings.
func writeHistogram(w http.ResponseWriter, name, label string, snap metrics.HistogramSnapshot) {
	sep := func(extra string) string {
		switch {
		case label == "" && extra == "":
			return ""
		case label == "":
			return "{" + extra + "}"
		case extra == "":
			return "{" + label + "}"
		default:
			return "{" + label + "," + extra + "}"
		}
	}
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	var cum int64
	for i, c := range snap.Counts {
		cum += c
		le := strconv.FormatFloat(metrics.HistogramUpperBound(i).Seconds(), 'g', -1, 64)
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, sep(`le="`+le+`"`), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, sep(`le="+Inf"`), cum)
	fmt.Fprintf(w, "%s_sum%s %g\n", name, sep(""), time.Duration(snap.SumNs).Seconds())
	fmt.Fprintf(w, "%s_count%s %d\n", name, sep(""), cum)
}
