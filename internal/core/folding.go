package core

// fnode is a node of a folding contraction tree. Leaves hold map-task
// payloads; internal nodes hold combined payloads. A node is void when no
// live payload exists below it (§3.1).
type fnode[T any] struct {
	payload T
	void    bool
	leaf    bool
	left    *fnode[T]
	right   *fnode[T]
	parent  *fnode[T]
}

// FoldingTree is the self-adjusting folding contraction tree of §3.1. It
// supports variable-width window slides: shrink on the left, grow on the
// right, by arbitrary (and different) amounts. The tree is a complete
// binary tree whose height tracks ⌈log2 M⌉ for the current number of leaf
// slots; void leaves pad the structure. Growing joins a fresh complete
// subtree of equal size under a new root (height+1); once the entire left
// half of the leaves is void, the right child is promoted to root
// (height−1).
//
// FoldingTree is not safe for concurrent use.
type FoldingTree[T any] struct {
	merge  MergeFunc[T]
	root   *fnode[T]
	height int
	leaves []*fnode[T]
	start  int // first live leaf slot
	end    int // one past the last live leaf slot
	// rebuildFactor triggers a from-scratch rebalance when the slot
	// count exceeds rebuildFactor × live leaves (§3.2's "initial run"
	// rebalancing fallback for rare drastic shrinks).
	rebuildFactor int
	// par bounds the worker pool recomputing one frontier level; 1 runs
	// sequentially. Nodes within a level have disjoint children, so
	// their combines are independent.
	par   int
	stats Stats
}

// FoldingOption customizes a FoldingTree.
type FoldingOption[T any] func(*FoldingTree[T])

// WithRebuildFactor sets the slots/live ratio beyond which the tree is
// rebuilt from scratch. factor ≤ 0 disables rebuilding. The paper suggests
// constants like 8 or 16.
func WithRebuildFactor[T any](factor int) FoldingOption[T] {
	return func(t *FoldingTree[T]) { t.rebuildFactor = factor }
}

// WithParallelism sets the number of workers recomputing each frontier
// level during propagation (1 = sequential). The merge function must be
// pure and alias-free to run with par > 1.
func WithParallelism[T any](par int) FoldingOption[T] {
	return func(t *FoldingTree[T]) { t.par = normalizeParallelism(par) }
}

// NewFolding returns an empty folding tree using merge to combine
// payloads.
func NewFolding[T any](merge MergeFunc[T], opts ...FoldingOption[T]) *FoldingTree[T] {
	t := &FoldingTree[T]{merge: merge, rebuildFactor: 8, par: 1}
	for _, opt := range opts {
		opt(t)
	}
	return t
}

// SetParallelism bounds the worker pool used for level-by-level
// recomputation (1 = sequential). Safe to change between operations.
func (t *FoldingTree[T]) SetParallelism(par int) { t.par = normalizeParallelism(par) }

// Init performs the initial run (§3): it constructs a complete binary tree
// of height ⌈log2 M⌉ over the given payloads, padding with void leaves.
func (t *FoldingTree[T]) Init(payloads []T) {
	t.root = nil
	t.leaves = nil
	t.start, t.end, t.height = 0, 0, 0
	if len(payloads) == 0 {
		return
	}
	t.height = ceilLog2(len(payloads))
	t.root, t.leaves = buildComplete[T](t.height)
	for i, p := range payloads {
		t.leaves[i].payload = p
		t.leaves[i].void = false
	}
	t.end = len(payloads)
	t.computeAll(t.root)
}

// buildComplete builds an all-void complete binary tree with 2^height
// leaves and returns its root and leaves in left-to-right order.
func buildComplete[T any](height int) (*fnode[T], []*fnode[T]) {
	leaves := make([]*fnode[T], 0, 1<<height)
	var build func(h int) *fnode[T]
	build = func(h int) *fnode[T] {
		n := &fnode[T]{void: true}
		if h == 0 {
			n.leaf = true
			leaves = append(leaves, n)
			return n
		}
		n.left = build(h - 1)
		n.right = build(h - 1)
		n.left.parent = n
		n.right.parent = n
		return n
	}
	return build(height), leaves
}

// computeAll recomputes every internal node below n, as in an initial
// run: level by level from the deepest internal nodes upward, each level
// over the worker pool (a level's nodes have disjoint children).
func (t *FoldingTree[T]) computeAll(n *fnode[T]) {
	if n == nil || n.leaf {
		return
	}
	var levels [][]*fnode[T]
	cur := []*fnode[T]{n}
	for len(cur) > 0 {
		var next []*fnode[T]
		for _, m := range cur {
			if !m.left.leaf {
				next = append(next, m.left, m.right)
			}
		}
		levels = append(levels, cur)
		cur = next
	}
	for d := len(levels) - 1; d >= 0; d-- {
		lvl := levels[d]
		parallelFor(t.par, len(lvl), &t.stats, func(i int, shard *Stats) {
			t.recomputeNode(lvl[i], shard)
		})
	}
}

// recomputeNode recombines an internal node from its children, counting
// work into st (a per-worker shard under parallel recomputation — the
// tree's own counters must never be mutated concurrently). A node with a
// single live child passes that child's payload through without a
// combiner call.
func (t *FoldingTree[T]) recomputeNode(n *fnode[T], st *Stats) {
	l, r := n.left, n.right
	switch {
	case l.void && r.void:
		var zero T
		n.payload = zero
		n.void = true
	case l.void:
		n.payload = r.payload
		n.void = false
	case r.void:
		n.payload = l.payload
		n.void = false
	default:
		n.payload = t.merge(l.payload, r.payload)
		n.void = false
		st.Merges++
	}
	st.NodesRecomputed++
}

// Slide moves the window: the oldest drop leaves are removed and the add
// payloads are appended on the right. Either side may be zero; the two
// amounts may differ (variable-width windows). It returns ErrUnderflow if
// drop exceeds the number of live leaves.
func (t *FoldingTree[T]) Slide(drop int, add []T) error {
	if drop < 0 {
		return ErrUnderflow
	}
	if drop > t.Live() {
		return ErrUnderflow
	}
	dirty := make(map[*fnode[T]]struct{})

	// Drop the oldest leaves by marking them void.
	for i := 0; i < drop; i++ {
		leaf := t.leaves[t.start]
		leaf.void = true
		var zero T
		leaf.payload = zero
		dirty[leaf] = struct{}{}
		t.start++
	}
	if t.start == t.end {
		// Window fully drained: restart from scratch with the adds.
		t.Init(add)
		return nil
	}

	// Fold: while the entire left half of the leaves is void, promote
	// the right child to root (height−1).
	for t.height > 0 && t.start >= len(t.leaves)/2 {
		half := len(t.leaves) / 2
		t.root = t.root.right
		t.root.parent = nil
		t.leaves = t.leaves[half:]
		t.start -= half
		t.end -= half
		t.height--
	}

	// Insert new payloads into void slots on the right, unfolding
	// (joining a same-size complete subtree under a new root) when the
	// slots run out.
	for _, p := range add {
		if t.end == len(t.leaves) {
			t.unfold()
		}
		leaf := t.leaves[t.end]
		leaf.payload = p
		leaf.void = false
		dirty[leaf] = struct{}{}
		t.end++
	}

	t.propagate(dirty)

	// Rare-case rebalance: if the structure is much larger than the
	// live window, rebuild from scratch (§3.2's fallback strategy).
	if t.rebuildFactor > 0 {
		live := t.Live()
		if live > 0 && len(t.leaves) > t.rebuildFactor*live {
			t.rebuild()
		}
	}
	return nil
}

// unfold doubles the leaf capacity by joining a fresh all-void complete
// subtree of equal size under a new root.
func (t *FoldingTree[T]) unfold() {
	if t.root == nil {
		t.height = 0
		t.root, t.leaves = buildComplete[T](0)
		return
	}
	sibling, newLeaves := buildComplete[T](t.height)
	newRoot := &fnode[T]{left: t.root, right: sibling, void: true}
	t.root.parent = newRoot
	sibling.parent = newRoot
	t.root = newRoot
	t.leaves = append(t.leaves, newLeaves...)
	t.height++
}

// propagate recomputes the internal nodes on all leaf→root paths of the
// dirty leaves, level by level (children before parents). All leaves sit
// at the same depth of the complete tree, so each frontier holds nodes
// of a single level with pairwise-disjoint children — the level's
// combines run concurrently over the worker pool. Leaves whose subtree
// was discarded by folding no longer reach the root and are skipped.
func (t *FoldingTree[T]) propagate(dirty map[*fnode[T]]struct{}) {
	var frontier []*fnode[T]
	seen := make(map[*fnode[T]]struct{}, len(dirty))
	for leaf := range dirty {
		if !t.reachesRoot(leaf) {
			continue
		}
		if p := leaf.parent; p != nil {
			if _, ok := seen[p]; !ok {
				seen[p] = struct{}{}
				frontier = append(frontier, p)
			}
		}
	}
	for len(frontier) > 0 {
		parallelFor(t.par, len(frontier), &t.stats, func(i int, shard *Stats) {
			t.recomputeNode(frontier[i], shard)
		})
		next := frontier[:0:0]
		nextSeen := make(map[*fnode[T]]struct{}, len(frontier))
		for _, n := range frontier {
			if p := n.parent; p != nil {
				if _, ok := nextSeen[p]; !ok {
					nextSeen[p] = struct{}{}
					next = append(next, p)
				}
			}
		}
		frontier = next
	}
}

// rebuild reconstructs a minimal-height tree from the live payloads, as an
// initial run would.
func (t *FoldingTree[T]) rebuild() {
	live := make([]T, 0, t.Live())
	for i := t.start; i < t.end; i++ {
		live = append(live, t.leaves[i].payload)
	}
	t.Init(live)
}

// reachesRoot reports whether walking parent pointers from n arrives at
// the current root (false for nodes in folded-away subtrees).
func (t *FoldingTree[T]) reachesRoot(n *fnode[T]) bool {
	for n.parent != nil {
		n = n.parent
	}
	return n == t.root
}

// Root returns the combined payload of the whole window, or false when the
// window is empty.
func (t *FoldingTree[T]) Root() (T, bool) {
	if t.root == nil || t.root.void {
		var zero T
		return zero, false
	}
	return t.root.payload, true
}

// Live returns the number of live (non-void) leaves.
func (t *FoldingTree[T]) Live() int { return t.end - t.start }

// Slots returns the total number of leaf slots (live + void).
func (t *FoldingTree[T]) Slots() int { return len(t.leaves) }

// Height returns the current tree height (edges from root to leaf).
func (t *FoldingTree[T]) Height() int {
	if t.root == nil {
		return 0
	}
	return t.height
}

// Stats returns the accumulated work counters.
func (t *FoldingTree[T]) Stats() Stats { return t.stats }

// ResetStats clears the work counters (typically between runs).
func (t *FoldingTree[T]) ResetStats() { t.stats = Stats{} }

// Payloads returns the live payloads in window order (oldest first).
// It is primarily useful for testing and debugging.
func (t *FoldingTree[T]) Payloads() []T {
	out := make([]T, 0, t.Live())
	for i := t.start; i < t.end; i++ {
		out = append(out, t.leaves[i].payload)
	}
	return out
}

// NodeCount returns the number of non-void nodes currently materialized,
// used for space accounting (Figure 13c).
func (t *FoldingTree[T]) NodeCount() int {
	var count func(n *fnode[T]) int
	count = func(n *fnode[T]) int {
		if n == nil {
			return 0
		}
		c := 0
		if !n.void {
			c = 1
		}
		return c + count(n.left) + count(n.right)
	}
	return count(t.root)
}

// ForEachPayload visits every non-void node payload (space accounting).
func (t *FoldingTree[T]) ForEachPayload(fn func(T)) {
	var walk func(n *fnode[T])
	walk = func(n *fnode[T]) {
		if n == nil {
			return
		}
		if !n.void {
			fn(n.payload)
		}
		walk(n.left)
		walk(n.right)
	}
	walk(t.root)
}
