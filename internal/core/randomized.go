package core

// RandomizedFoldingTree is the randomized folding tree of §3.2: a
// skip-list-style contraction tree whose expected height tracks
// log2(current window size) regardless of how drastically the window
// grows or shrinks.
//
// Nodes at each level are grouped probabilistically: every node starts a
// new group with probability 1/2, decided by a deterministic hash of the
// node's stable identity (the leaf ID of its leftmost descendant) and the
// level — exactly the coin flips of Pugh's skip lists, so the structure is
// history-independent: the grouping of surviving elements never depends on
// past inserts or deletes, and only nodes on paths from changed leaves to
// the root are recomputed.
//
// The tree is rebuilt structurally on every slide (cheap integer hashing),
// but node *payloads* are reused through a memo table keyed by each
// node's child-identity signature, so combiner work is proportional to the
// delta times the expected height.
//
// RandomizedFoldingTree is not safe for concurrent use.
type RandomizedFoldingTree[T any] struct {
	merge  MergeFunc[T]
	seed   uint64
	leaves []Item[T]
	memo   map[uint64]T
	rootP  T
	hasP   bool
	height int
	par    int // worker pool bound for per-level group combines
	stats  Stats
}

// Item is a leaf of a randomized folding tree: a stable identity plus its
// payload. IDs must be unique among live leaves and must not be reused for
// different content.
type Item[T any] struct {
	// ID is the leaf's stable identity (e.g. the split sequence number).
	ID uint64
	// Payload is the leaf's combined map output.
	Payload T
}

// NewRandomizedFolding returns an empty randomized folding tree. The seed
// fixes the coin flips, making runs reproducible.
func NewRandomizedFolding[T any](merge MergeFunc[T], seed uint64) *RandomizedFoldingTree[T] {
	return &RandomizedFoldingTree[T]{
		merge: merge,
		seed:  seed,
		memo:  make(map[uint64]T),
		par:   1,
	}
}

// SetParallelism bounds the worker pool combining one level's groups
// concurrently (1 = sequential). Groups of a level cover disjoint node
// ranges and only read the previous build's memo table, so their
// combines are independent; the merge must be pure and alias-free to
// run with par > 1. The structure and payloads are identical at any
// parallelism.
func (t *RandomizedFoldingTree[T]) SetParallelism(par int) { t.par = normalizeParallelism(par) }

// Init performs the initial run over the given leaves.
func (t *RandomizedFoldingTree[T]) Init(items []Item[T]) {
	t.leaves = append(t.leaves[:0], items...)
	t.build()
}

// Slide drops the oldest `drop` leaves and appends `add` on the right,
// then updates the tree. Only payloads on changed paths are recombined.
func (t *RandomizedFoldingTree[T]) Slide(drop int, add []Item[T]) error {
	if drop < 0 || drop > len(t.leaves) {
		return ErrUnderflow
	}
	t.leaves = append(t.leaves[drop:], add...)
	t.build()
	return nil
}

// splitmix64 is the avalanche mix used for coin flips and signatures.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// boundary reports whether the node with identity id starts a new group at
// the given level (a fair coin derived from seed, id, and level).
func (t *RandomizedFoldingTree[T]) boundary(id uint64, level int) bool {
	return splitmix64(t.seed^splitmix64(id+uint64(level)*0x9e3779b97f4a7c15))&1 == 1
}

// rnode is one node during a build: its identity (leftmost leaf ID), its
// signature (hash of its child signatures), and its payload.
type rnode[T any] struct {
	id      uint64
	sig     uint64
	payload T
}

// build reconstructs the level structure over the current leaves, reusing
// memoized payloads for unchanged nodes.
func (t *RandomizedFoldingTree[T]) build() {
	if len(t.leaves) == 0 {
		var zero T
		t.rootP, t.hasP = zero, false
		t.height = 0
		t.memo = make(map[uint64]T)
		return
	}
	nextMemo := make(map[uint64]T, len(t.memo))
	cur := make([]rnode[T], len(t.leaves))
	for i, leaf := range t.leaves {
		sig := splitmix64(leaf.ID ^ 0xabcdef12345678)
		cur[i] = rnode[T]{id: leaf.ID, sig: sig, payload: leaf.Payload}
		nextMemo[sig] = leaf.Payload
	}
	height := 0
	for len(cur) > 1 {
		next := t.buildLevel(cur, height, nextMemo)
		if len(next) == len(cur) {
			// Pathological all-heads level: force a single group so
			// the construction terminates.
			forced := t.makeGroup(cur, height, &t.stats)
			nextMemo[forced.sig] = forced.payload
			next = []rnode[T]{forced}
		}
		cur = next
		height++
	}
	t.rootP, t.hasP = cur[0].payload, true
	t.height = height
	t.memo = nextMemo
}

// buildLevel groups the nodes of one level into the nodes of the next.
// The boundary scan is cheap integer hashing and runs sequentially; the
// groups it yields cover disjoint slices of cur and read only the
// previous build's (frozen) memo table, so their combines run
// concurrently over the worker pool. Memo inserts happen afterwards on
// one goroutine.
func (t *RandomizedFoldingTree[T]) buildLevel(cur []rnode[T], level int, memo map[uint64]T) []rnode[T] {
	bounds := make([]int, 1, (len(cur)+1)/2+1)
	bounds[0] = 0
	for i := 1; i < len(cur); i++ {
		if t.boundary(cur[i].id, level) {
			bounds = append(bounds, i)
		}
	}
	bounds = append(bounds, len(cur))
	next := make([]rnode[T], len(bounds)-1)
	parallelFor(t.par, len(next), &t.stats, func(i int, shard *Stats) {
		next[i] = t.makeGroup(cur[bounds[i]:bounds[i+1]], level, shard)
	})
	for _, n := range next {
		// Singleton groups keep their signature so higher levels can
		// still reuse them; combined groups memoize the fresh payload.
		memo[n.sig] = n.payload
	}
	return next
}

// makeGroup builds one next-level node from a group of nodes, reusing the
// prior build's memoized payload when the group's child signature is
// unchanged. It reads only frozen state (the group slice and t.memo) and
// counts work into st, so a level's groups may be built concurrently.
func (t *RandomizedFoldingTree[T]) makeGroup(group []rnode[T], level int, st *Stats) rnode[T] {
	if len(group) == 1 {
		// Singleton groups pass through without a combine.
		return group[0]
	}
	sig := splitmix64(uint64(level) ^ 0x51ed270b)
	for _, g := range group {
		sig = splitmix64(sig ^ g.sig)
	}
	node := rnode[T]{id: group[0].id, sig: sig}
	if payload, ok := t.memo[sig]; ok {
		node.payload = payload
		st.NodesReused++
	} else {
		payload := group[0].payload
		for _, g := range group[1:] {
			payload = t.merge(payload, g.payload)
			st.Merges++
		}
		node.payload = payload
		st.NodesRecomputed++
	}
	return node
}

// Root returns the combined payload of the window.
func (t *RandomizedFoldingTree[T]) Root() (T, bool) {
	if !t.hasP {
		var zero T
		return zero, false
	}
	return t.rootP, true
}

// Live returns the number of live leaves.
func (t *RandomizedFoldingTree[T]) Live() int { return len(t.leaves) }

// Height returns the number of levels above the leaves in the last build.
func (t *RandomizedFoldingTree[T]) Height() int { return t.height }

// Stats returns the accumulated work counters.
func (t *RandomizedFoldingTree[T]) Stats() Stats { return t.stats }

// ResetStats clears the work counters.
func (t *RandomizedFoldingTree[T]) ResetStats() { t.stats = Stats{} }

// NodeCount returns the number of memoized payloads retained (space
// accounting for Figure 13c).
func (t *RandomizedFoldingTree[T]) NodeCount() int { return len(t.memo) }

// ForEachPayload visits every memoized node payload (space accounting).
func (t *RandomizedFoldingTree[T]) ForEachPayload(fn func(T)) {
	for _, p := range t.memo {
		fn(p)
	}
}

// Items returns the live leaves in window order (checkpointing support).
// Restoring via Init rebuilds an identical structure because the tree's
// shape depends only on leaf identities, not on history.
func (t *RandomizedFoldingTree[T]) Items() []Item[T] {
	out := make([]Item[T], len(t.leaves))
	copy(out, t.leaves)
	return out
}
