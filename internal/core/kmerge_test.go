package core

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// TestReduceOrderedKOrderAndDeterminism checks the K-way reduction
// preserves window order (string concatenation is associative but not
// commutative) and makes exactly the same kmerge calls — same count,
// same batch widths — at every parallelism. Batch boundaries come from
// the fixed leaf width, never from the worker count, so memoizable
// combine counts stay worker-independent.
func TestReduceOrderedKOrderAndDeterminism(t *testing.T) {
	for _, n := range []int{0, 1, 2, 63, 64, 65, 200, 64*64 + 7} {
		items := make([]string, n)
		for i := range items {
			items[i] = fmt.Sprintf("[%d]", i)
		}
		want := strings.Join(items, "")

		type runStats struct {
			calls  int64
			widths map[int]int64
		}
		run := func(par int) (string, bool, runStats) {
			var calls atomic.Int64
			var widths [kMergeLeafWidth + 1]atomic.Int64
			kmerge := func(batch []string) string {
				calls.Add(1)
				widths[len(batch)].Add(1)
				return strings.Join(batch, "")
			}
			got, ok := ReduceOrderedK(par, kmerge, items)
			rs := runStats{calls: calls.Load(), widths: map[int]int64{}}
			for w := range widths {
				if c := widths[w].Load(); c != 0 {
					rs.widths[w] = c
				}
			}
			return got, ok, rs
		}

		got1, ok1, rs1 := run(1)
		if ok1 != (n > 0) {
			t.Fatalf("n=%d: ok=%v", n, ok1)
		}
		if n > 0 && got1 != want {
			t.Fatalf("n=%d par=1: order violated", n)
		}
		for _, par := range []int{2, 8} {
			got, ok, rs := run(par)
			if ok != ok1 || got != got1 {
				t.Fatalf("n=%d par=%d: result diverges from par=1", n, par)
			}
			if rs.calls != rs1.calls {
				t.Fatalf("n=%d par=%d: %d kmerge calls, par=1 made %d", n, par, rs.calls, rs1.calls)
			}
			for w, c := range rs1.widths {
				if rs.widths[w] != c {
					t.Fatalf("n=%d par=%d: width-%d batches %d, par=1 made %d", n, par, w, rs.widths[w], c)
				}
			}
		}
		// Single items are passed through, never wrapped in a 1-wide merge.
		if rs1.widths[1] != 0 {
			t.Fatalf("n=%d: %d single-item kmerge calls, want 0", n, rs1.widths[1])
		}
	}
}
