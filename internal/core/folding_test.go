package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// concat is an associative, non-commutative merge: any ordering mistake in
// a tree shows up as a wrong root.
func concat(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	return out
}

// seqPayloads builds singleton payloads [lo, hi).
func seqPayloads(lo, hi int) [][]int {
	out := make([][]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, []int{i})
	}
	return out
}

func wantSeq(t *testing.T, got []int, lo, hi int) {
	t.Helper()
	if len(got) != hi-lo {
		t.Fatalf("root has %d elements, want %d (window [%d,%d))", len(got), hi-lo, lo, hi)
	}
	for i, v := range got {
		if v != lo+i {
			t.Fatalf("root[%d] = %d, want %d", i, v, lo+i)
		}
	}
}

func TestFoldingInitialRun(t *testing.T) {
	for _, m := range []int{1, 2, 3, 4, 5, 7, 8, 9, 16, 31, 33, 100} {
		tr := NewFolding(concat)
		tr.Init(seqPayloads(0, m))
		root, ok := tr.Root()
		if !ok {
			t.Fatalf("m=%d: empty root", m)
		}
		wantSeq(t, root, 0, m)
		if h, want := tr.Height(), ceilLog2(m); h != want {
			t.Errorf("m=%d: height %d, want %d", m, h, want)
		}
		if tr.Live() != m {
			t.Errorf("m=%d: live %d", m, tr.Live())
		}
	}
}

func TestFoldingEmptyInit(t *testing.T) {
	tr := NewFolding(concat)
	tr.Init(nil)
	if _, ok := tr.Root(); ok {
		t.Fatal("empty tree should have no root")
	}
	if tr.Live() != 0 {
		t.Fatalf("live = %d, want 0", tr.Live())
	}
}

func TestFoldingAppendGrows(t *testing.T) {
	tr := NewFolding(concat)
	tr.Init(seqPayloads(0, 3))
	// One void slot (capacity 4): first append fills it.
	if err := tr.Slide(0, seqPayloads(3, 4)); err != nil {
		t.Fatal(err)
	}
	if tr.Height() != 2 {
		t.Fatalf("height after filling = %d, want 2", tr.Height())
	}
	// Next append must unfold to height 3 (Figure 2, T2).
	if err := tr.Slide(0, seqPayloads(4, 5)); err != nil {
		t.Fatal(err)
	}
	if tr.Height() != 3 {
		t.Fatalf("height after unfold = %d, want 3", tr.Height())
	}
	root, _ := tr.Root()
	wantSeq(t, root, 0, 5)
}

func TestFoldingDropShrinks(t *testing.T) {
	tr := NewFolding(concat, WithRebuildFactor[[]int](0))
	tr.Init(seqPayloads(0, 8))
	if tr.Height() != 3 {
		t.Fatalf("height = %d, want 3", tr.Height())
	}
	// Dropping the left half promotes the right child (Figure 2, T3).
	if err := tr.Slide(4, nil); err != nil {
		t.Fatal(err)
	}
	if tr.Height() != 2 {
		t.Fatalf("height after fold = %d, want 2", tr.Height())
	}
	root, _ := tr.Root()
	wantSeq(t, root, 4, 8)
}

func TestFoldingFigure2Scenario(t *testing.T) {
	// Reproduces the worked example of Figure 2: T1 init {0,1,2},
	// T2 add {3,4}, T3 add {5,6,7} remove {1,2,3}.
	tr := NewFolding(concat, WithRebuildFactor[[]int](0))
	tr.Init(seqPayloads(0, 3))
	if tr.Height() != 2 {
		t.Fatalf("T1 height = %d, want 2", tr.Height())
	}
	if err := tr.Slide(0, seqPayloads(3, 5)); err != nil {
		t.Fatal(err)
	}
	if tr.Height() != 3 {
		t.Fatalf("T2 height = %d, want 3", tr.Height())
	}
	// The example drops 0 first (T2 shows node 0 already removed at T3's
	// start in the text's running window [1..4] + adds); we follow the
	// caption: add 3 then remove 3 oldest of {0,1,2,3,4}.
	if err := tr.Slide(3, seqPayloads(5, 8)); err != nil {
		t.Fatal(err)
	}
	root, _ := tr.Root()
	wantSeq(t, root, 3, 8)
}

func TestFoldingUnderflow(t *testing.T) {
	tr := NewFolding(concat)
	tr.Init(seqPayloads(0, 4))
	if err := tr.Slide(5, nil); err != ErrUnderflow {
		t.Fatalf("err = %v, want ErrUnderflow", err)
	}
	if err := tr.Slide(-1, nil); err != ErrUnderflow {
		t.Fatalf("err = %v, want ErrUnderflow", err)
	}
}

func TestFoldingDrainAndRefill(t *testing.T) {
	tr := NewFolding(concat)
	tr.Init(seqPayloads(0, 4))
	if err := tr.Slide(4, seqPayloads(4, 6)); err != nil {
		t.Fatal(err)
	}
	root, ok := tr.Root()
	if !ok {
		t.Fatal("no root after refill")
	}
	wantSeq(t, root, 4, 6)

	// Drain to empty with no refill.
	if err := tr.Slide(2, nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := tr.Root(); ok {
		t.Fatal("drained tree should have no root")
	}
	// And grow again from empty.
	if err := tr.Slide(0, seqPayloads(6, 9)); err != nil {
		t.Fatal(err)
	}
	root, _ = tr.Root()
	wantSeq(t, root, 6, 9)
}

func TestFoldingRebuildFactor(t *testing.T) {
	tr := NewFolding(concat, WithRebuildFactor[[]int](4))
	tr.Init(seqPayloads(0, 64))
	// Shrink to 2 live leaves that straddle the root so folding cannot
	// reduce the height; the rebuild factor must kick in.
	if err := tr.Slide(31, nil); err != nil {
		t.Fatal(err)
	}
	// live=33, slots=64: fine. Now drop 31 more -> live=2.
	if err := tr.Slide(31, nil); err != nil {
		t.Fatal(err)
	}
	if tr.Live() != 2 {
		t.Fatalf("live = %d, want 2", tr.Live())
	}
	if tr.Slots() > 4*tr.Live() {
		t.Fatalf("slots = %d live = %d: rebuild did not trigger", tr.Slots(), tr.Live())
	}
	if tr.Height() != 1 {
		t.Fatalf("height = %d, want 1 after rebuild", tr.Height())
	}
	root, _ := tr.Root()
	wantSeq(t, root, 62, 64)
}

func TestFoldingNoRebuildWhenDisabled(t *testing.T) {
	tr := NewFolding(concat, WithRebuildFactor[[]int](0))
	tr.Init(seqPayloads(0, 64))
	if err := tr.Slide(62, nil); err != nil {
		t.Fatal(err)
	}
	root, _ := tr.Root()
	wantSeq(t, root, 62, 64)
	// 2 live leaves in the right half of a 64-slot tree: folding can
	// reach 32 slots at best; with the right-most leaves it stays put.
	if tr.Slots() < 2 {
		t.Fatalf("slots = %d", tr.Slots())
	}
}

func TestFoldingIncrementalWorkIsLogarithmic(t *testing.T) {
	const m = 1 << 12
	tr := NewFolding(concat)
	tr.Init(seqPayloads(0, m))
	tr.ResetStats()
	if err := tr.Slide(1, seqPayloads(m, m+1)); err != nil {
		t.Fatal(err)
	}
	s := tr.Stats()
	// One drop + one add touch at most ~2·height paths plus the unfold
	// join; far below the ~m merges of a from-scratch run.
	maxMerges := int64(4 * (tr.Height() + 1))
	if s.Merges > maxMerges {
		t.Fatalf("merges = %d, want ≤ %d (height %d)", s.Merges, maxMerges, tr.Height())
	}
}

// TestFoldingPropertyRandomSlides drives random slide sequences and checks
// the root against a reference window after every step.
func TestFoldingPropertyRandomSlides(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := NewFolding(concat)
		m := 1 + rng.Intn(40)
		tr.Init(seqPayloads(0, m))
		lo, hi := 0, m
		for step := 0; step < 30; step++ {
			drop := rng.Intn(hi - lo + 1)
			add := rng.Intn(20)
			if err := tr.Slide(drop, seqPayloads(hi, hi+add)); err != nil {
				t.Logf("seed %d step %d: %v", seed, step, err)
				return false
			}
			lo += drop
			hi += add
			root, ok := tr.Root()
			if lo == hi {
				if ok {
					t.Logf("seed %d step %d: expected empty root", seed, step)
					return false
				}
				continue
			}
			if !ok || len(root) != hi-lo {
				t.Logf("seed %d step %d: root size %d want %d", seed, step, len(root), hi-lo)
				return false
			}
			for i, v := range root {
				if v != lo+i {
					t.Logf("seed %d step %d: root[%d]=%d want %d", seed, step, i, v, lo+i)
					return false
				}
			}
			if want := ceilLog2(tr.Slots()); tr.Slots() > 0 && tr.Height() != want {
				t.Logf("seed %d step %d: height %d want %d (slots %d)", seed, step, tr.Height(), want, tr.Slots())
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFoldingStatsReset(t *testing.T) {
	tr := NewFolding(concat)
	tr.Init(seqPayloads(0, 8))
	if tr.Stats().Merges == 0 {
		t.Fatal("initial run performed no merges")
	}
	tr.ResetStats()
	if s := tr.Stats(); s.Merges != 0 || s.NodesRecomputed != 0 {
		t.Fatalf("stats not reset: %+v", s)
	}
}

func TestFoldingNodeCount(t *testing.T) {
	tr := NewFolding(concat)
	tr.Init(seqPayloads(0, 4))
	// 4 leaves + 2 internals + root = 7 non-void nodes.
	if n := tr.NodeCount(); n != 7 {
		t.Fatalf("node count = %d, want 7", n)
	}
}
