package core

import (
	"math/rand"
	"reflect"
	"testing"
)

// concatMerge is deliberately non-commutative: it appends b after a, so
// any backend that re-orders buckets relative to window age produces a
// detectably different sequence.
func concatMerge(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

// dabaOracle folds the live raw values left to right.
func dabaOracle(live [][]int) []int {
	if len(live) == 0 {
		return nil
	}
	out := append([]int{}, live[0]...)
	for _, v := range live[1:] {
		out = append(out, v...)
	}
	return out
}

func checkDabaRoot(t *testing.T, d *DabaLite[[]int], live [][]int, step int) {
	t.Helper()
	want := dabaOracle(live)
	got, ok := d.Root()
	if len(live) == 0 {
		if ok {
			t.Fatalf("step %d: Root ok on empty queue, got %v", step, got)
		}
		return
	}
	if !ok {
		t.Fatalf("step %d: Root not ok with %d live buckets", step, len(live))
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("step %d: Root = %v, want %v (order-preserving left fold)", step, got, want)
	}
}

// TestDabaDifferentialVsLeftFold drives random push/evict sequences
// against a naive left fold with a non-commutative combiner, checking
// the aggregate after every operation and the worst-case combiner-call
// bounds (≤3 per push, ≤2 per evict, ≤1 per query).
func TestDabaDifferentialVsLeftFold(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 8, 13, 32} {
		rng := rand.New(rand.NewSource(int64(n) * 7919))
		d := NewDaba(concatMerge, n)
		var live [][]int
		next := 0
		for step := 0; step < 2000; step++ {
			doPush := len(live) == 0 || (len(live) < n && rng.Intn(2) == 0)
			before := d.Stats().Merges
			if doPush {
				v := []int{next}
				next++
				d.push(v)
				live = append(live, v)
				if got := d.Stats().Merges - before; got > 3 {
					t.Fatalf("n=%d step %d: push cost %d merges, worst case is 3", n, step, got)
				}
			} else {
				if err := d.evict(); err != nil {
					t.Fatalf("n=%d step %d: evict: %v", n, step, err)
				}
				live = live[1:]
				if got := d.Stats().Merges - before; got > 2 {
					t.Fatalf("n=%d step %d: evict cost %d merges, worst case is 2", n, step, got)
				}
			}
			before = d.Stats().Merges
			checkDabaRoot(t, d, live, step)
			if got := d.Stats().Merges - before; got > 1 {
				t.Fatalf("n=%d step %d: query cost %d merges, worst case is 1", n, step, got)
			}
			if d.Len() != len(live) {
				t.Fatalf("n=%d step %d: Len = %d, want %d", n, step, d.Len(), len(live))
			}
		}
	}
}

// TestDabaSlide exercises the Init + Slide surface the runtime uses:
// constant combiner work per slide at every window size.
func TestDabaSlide(t *testing.T) {
	for _, n := range []int{1, 2, 4, 7, 64, 256} {
		d := NewDaba(concatMerge, n)
		if err := d.Slide([]int{0}); err != ErrWindowNotFull {
			t.Fatalf("n=%d: Slide before Init: err = %v, want ErrWindowNotFull", n, err)
		}
		if err := d.Init(make([][]int, n+1)); err != ErrWindowNotFull {
			t.Fatalf("n=%d: Init with %d buckets: err = %v, want ErrWindowNotFull", n, n+1, err)
		}
		var live [][]int
		for i := 0; i < n; i++ {
			live = append(live, []int{i})
		}
		if err := d.Init(live); err != nil {
			t.Fatalf("n=%d: Init: %v", n, err)
		}
		checkDabaRoot(t, d, live, -1)
		for step := 0; step < 200; step++ {
			v := []int{n + step}
			before := d.Stats().Merges
			if err := d.Slide(v); err != nil {
				t.Fatalf("n=%d step %d: Slide: %v", n, step, err)
			}
			if got := d.Stats().Merges - before; got > 5 {
				t.Fatalf("n=%d step %d: slide cost %d merges, worst case is 5", n, step, got)
			}
			live = append(live[1:], v)
			checkDabaRoot(t, d, live, step)
		}
	}
}

// TestDabaBucketPayloadsAndRestore checks that BucketPayloads returns
// the raw buckets in window order and that a restored aggregator
// matches a fresh one built from the same checkpoint: same root, same
// fingerprint, same (rebuild-only) stats.
func TestDabaBucketPayloadsAndRestore(t *testing.T) {
	n := 6
	d := NewDaba(concatMerge, n)
	var live [][]int
	for i := 0; i < n; i++ {
		live = append(live, []int{i})
	}
	if err := d.Init(live); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 17; i++ {
		v := []int{n + i}
		if err := d.Slide(v); err != nil {
			t.Fatal(err)
		}
		live = append(live[1:], v)
	}
	got, ok := d.BucketPayloads()
	if !ok || !reflect.DeepEqual(got, live) {
		t.Fatalf("BucketPayloads = %v, %v; want %v in window order", got, ok, live)
	}

	fp := func(p []int) uint64 {
		h := uint64(0x12345)
		for _, v := range p {
			h = fpMix(h, uint64(v))
		}
		return h
	}
	inPlace := d
	if err := inPlace.Restore(got); err != nil {
		t.Fatal(err)
	}
	fresh := NewDaba(concatMerge, n)
	if err := fresh.Restore(got); err != nil {
		t.Fatal(err)
	}
	if inPlace.Stats() != fresh.Stats() {
		t.Fatalf("restored stats diverge: in-place %+v, fresh %+v", inPlace.Stats(), fresh.Stats())
	}
	if inPlace.FingerprintWith(fp) != fresh.FingerprintWith(fp) {
		t.Fatal("restored fingerprints diverge between in-place and fresh restore")
	}
	checkDabaRoot(t, fresh, live, -1)
}

// TestDabaFingerprintTracksState checks that the fingerprint is
// deterministic across replicas with identical histories and changes
// when the window contents change.
func TestDabaFingerprintTracksState(t *testing.T) {
	fp := func(p []int) uint64 {
		h := uint64(0x9dc5)
		for _, v := range p {
			h = fpMix(h, uint64(v))
		}
		return h
	}
	build := func(vals []int) *DabaLite[[]int] {
		d := NewDaba(concatMerge, 4)
		var buckets [][]int
		for _, v := range vals[:4] {
			buckets = append(buckets, []int{v})
		}
		if err := d.Init(buckets); err != nil {
			t.Fatal(err)
		}
		for _, v := range vals[4:] {
			if err := d.Slide([]int{v}); err != nil {
				t.Fatal(err)
			}
		}
		return d
	}
	a := build([]int{1, 2, 3, 4, 5, 6})
	b := build([]int{1, 2, 3, 4, 5, 6})
	c := build([]int{1, 2, 3, 4, 5, 7})
	if a.FingerprintWith(fp) != b.FingerprintWith(fp) {
		t.Fatal("identical histories fingerprint differently")
	}
	if a.FingerprintWith(fp) == c.FingerprintWith(fp) {
		t.Fatal("different window contents fingerprint identically")
	}
}

// TestDabaShape checks the structural snapshot surface.
func TestDabaShape(t *testing.T) {
	d := NewDaba(concatMerge, 3)
	s := d.Shape()
	if s.Variant != "daba" || s.Live != 0 || s.Height != 0 {
		t.Fatalf("empty shape = %+v", s)
	}
	if err := d.Init([][]int{{1}, {2}, {3}}); err != nil {
		t.Fatal(err)
	}
	s = d.Shape()
	if s.Variant != "daba" || s.Live != 3 || s.Height != 0 || s.Nodes != d.NodeCount() {
		t.Fatalf("filled shape = %+v (NodeCount %d)", s, d.NodeCount())
	}
	if len(s.Levels) != 1 || s.Levels[0] != 3 {
		t.Fatalf("Levels = %v, want [3]", s.Levels)
	}
}
