// Package core implements self-adjusting contraction trees, the primary
// contribution of "Slider: Incremental Sliding Window Analytics"
// (Middleware 2014, §2–§4).
//
// A contraction tree structures the reduce-side aggregation of a
// data-parallel job as a shallow balanced tree of Combiner applications.
// Leaves hold the outputs of map tasks (or buckets of them); internal
// nodes hold the combined payload of their children. When the sliding
// window moves, only the nodes on paths from changed leaves to the root
// are recomputed, so the update work is proportional to the delta with
// only a logarithmic dependence on the window size.
//
// The package provides the paper's full family of trees:
//
//   - FoldingTree (§3.1): variable-width windows; folds/unfolds complete
//     subtrees to track ⌈log2 M⌉ height.
//   - RandomizedFoldingTree (§3.2): skip-list-style probabilistic
//     grouping; expected log height even under drastic window shrinks.
//   - RotatingTree (§4.1): fixed-width windows; circular buckets with a
//     static balanced tree and optional split processing.
//   - CoalescingTree (§4.2): append-only windows with optional split
//     processing.
//   - StrawmanTree (§2): the memoization-only balanced tree used as the
//     evaluation baseline.
//
// Trees are generic over the payload type T. Payloads are treated as
// immutable values: merge functions must return fresh payloads and never
// mutate their arguments, because nodes share payloads across runs.
package core

import "errors"

// MergeFunc combines two payloads in window order (a precedes b). It must
// be associative; rotating trees additionally require commutativity.
type MergeFunc[T any] func(a, b T) T

// Stats counts the work a tree performed. Merge invocations are the
// paper's unit of contraction work; node counts separate recomputation
// from reuse.
type Stats struct {
	// Merges is the number of merge (combiner) invocations.
	Merges int64
	// NodesRecomputed counts internal nodes whose payload was rebuilt
	// (including pass-through nodes that copy a single child).
	NodesRecomputed int64
	// NodesReused counts internal nodes reused without recomputation.
	NodesReused int64
}

// add accumulates s2 into s.
func (s *Stats) add(s2 Stats) {
	s.Merges += s2.Merges
	s.NodesRecomputed += s2.NodesRecomputed
	s.NodesReused += s2.NodesReused
}

// Common errors returned by tree operations.
var (
	// ErrEmpty is returned when an operation needs a non-empty tree.
	ErrEmpty = errors.New("core: contraction tree is empty")
	// ErrUnderflow is returned when a slide removes more leaves than
	// the window holds.
	ErrUnderflow = errors.New("core: slide removes more items than the window contains")
	// ErrNotPrepared is returned when a split-processing foreground
	// step runs without its background pre-processing step.
	ErrNotPrepared = errors.New("core: background pre-processing has not run")
	// ErrWindowNotFull is returned when a rotating tree is asked to
	// rotate before the initial window has filled.
	ErrWindowNotFull = errors.New("core: rotating window is not full yet")
	// ErrPartitionMismatch is returned when a multi-level compute
	// function yields the wrong number of per-partition payloads.
	ErrPartitionMismatch = errors.New("core: compute returned wrong partition count")
)

// ceilLog2 returns ⌈log2 n⌉ for n ≥ 1.
func ceilLog2(n int) int {
	if n <= 1 {
		return 0
	}
	h := 0
	for size := 1; size < n; size <<= 1 {
		h++
	}
	return h
}

// ceilPow2 returns the smallest power of two ≥ n (n ≥ 1).
func ceilPow2(n int) int {
	return 1 << ceilLog2(n)
}
