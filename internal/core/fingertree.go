package core

// FingerTree is the seventh aggregator backend: an out-of-order
// sliding-window aggregator in the FiBA style ("Optimal and General
// Out-of-Order Sliding-Window Aggregation", and its bulk-operation
// successor "Out-of-Order Sliding-Window Aggregation with Efficient
// Bulk Evictions and Insertions"). Where the five contraction trees and
// DABA Lite all assume FIFO arrival — the only mutations are "evict the
// oldest, append the newest" — the finger tree keeps the window as a
// balanced search tree ordered by window position, so three extra
// operations become cheap:
//
//	InsertAt(pos, v)  — land a late record at its true position,
//	                    recombining only the root path: O(log w)
//	BulkEvict(k)      — drop the k oldest buckets in one split:
//	                    O(log w), not k single evictions
//	BulkInsert(vs)    — append K buckets in one build+join:
//	                    O(K + log w), not K·O(log w)
//
// The concrete structure is a treap (randomized BST, split/join-based)
// rather than a B-tree: every node carries one bucket payload and the
// cached aggregate of its subtree in window order
// (merge(left.agg, val, right.agg), at most two combiner calls to
// recompute), so the window aggregate is the root's cached aggregate —
// zero combines per query. Split and join touch one root-to-leaf path
// each and recompute only the aggregates on that path, which is exactly
// the "incremental re-contraction of the affected root path" the FiBA
// papers describe; expected path length is O(log w).
//
// Determinism: node priorities are not random. They are splitmix64
// hashes of a monotone insertion counter, so two trees that execute the
// same operation sequence — at any parallelism, on any host — have
// bit-identical shape, and FingerprintWith is reproducible across
// replicas. Init and Restore reset the counter, so a restored tree is
// identical to a freshly restored one (the parity the simulation
// harness asserts on every checkpoint).
//
// Like the other backends the merge function only needs to be
// associative: aggregates are always combined in window order.
//
// FingerTree is not safe for concurrent use.
type FingerTree[T any] struct {
	merge MergeFunc[T]
	root  *tnode[T]
	ctr   uint64 // monotone priority counter (deterministic treap shape)
	bug   Buggify
	stats Stats
}

// tnode is one treap node: a single window bucket plus the cached
// aggregate of the subtree rooted here, in window order.
type tnode[T any] struct {
	left, right *tnode[T]
	val         T // this bucket's payload
	agg         T // merge(left.agg, val, right.agg)
	size        int
	prio        uint64
}

// NewFingerTree returns an empty finger-tree aggregator. Unlike the
// fixed-capacity backends it has no preset width: the window grows and
// shrinks with the operations applied to it.
func NewFingerTree[T any](merge MergeFunc[T]) *FingerTree[T] {
	return &FingerTree[T]{merge: merge}
}

// SetParallelism is a no-op: every operation touches one root path with
// strict sequential dependencies. Present so the runtime can treat all
// backends uniformly.
func (t *FingerTree[T]) SetParallelism(par int) {}

// SetBuggify installs fault-injection points (simulation harness
// self-tests only).
func (t *FingerTree[T]) SetBuggify(b Buggify) { t.bug = b }

func (t *FingerTree[T]) nextPrio() uint64 {
	t.ctr++
	return splitmix64(t.ctr)
}

func tsize[T any](n *tnode[T]) int {
	if n == nil {
		return 0
	}
	return n.size
}

// pull recomputes n's size and cached aggregate from its children: at
// most two combiner calls, counted as one node recompute.
func (t *FingerTree[T]) pull(n *tnode[T]) {
	n.size = 1 + tsize(n.left) + tsize(n.right)
	n.agg = n.val
	if n.left != nil {
		n.agg = t.merge(n.left.agg, n.agg)
		t.stats.Merges++
	}
	if n.right != nil {
		n.agg = t.merge(n.agg, n.right.agg)
		t.stats.Merges++
	}
	t.stats.NodesRecomputed++
}

// split cuts n into (a, b) where a holds the first k buckets in window
// order and b the rest, recomputing aggregates only along the cut path.
func (t *FingerTree[T]) split(n *tnode[T], k int) (*tnode[T], *tnode[T]) {
	if n == nil {
		return nil, nil
	}
	if ls := tsize(n.left); k <= ls {
		a, rest := t.split(n.left, k)
		n.left = rest
		t.pull(n)
		return a, n
	} else {
		rest, b := t.split(n.right, k-ls-1)
		n.right = rest
		t.pull(n)
		return n, b
	}
}

// join concatenates two treaps (every bucket of a precedes every bucket
// of b in window order), recomputing aggregates along the merge path.
func (t *FingerTree[T]) join(a, b *tnode[T]) *tnode[T] {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if a.prio > b.prio {
		a.right = t.join(a.right, b)
		t.pull(a)
		return a
	}
	b.left = t.join(a, b.left)
	t.pull(b)
	return b
}

// build constructs a treap over vs in window order in O(K): a
// Cartesian-tree construction over the freshly drawn priorities via the
// rightmost-spine stack, then one bottom-up aggregate pass.
func (t *FingerTree[T]) build(vs []T) *tnode[T] {
	var spine []*tnode[T] // rightmost path, root at index 0
	for _, v := range vs {
		n := &tnode[T]{val: v, prio: t.nextPrio()}
		var last *tnode[T]
		for len(spine) > 0 && spine[len(spine)-1].prio < n.prio {
			last = spine[len(spine)-1]
			spine = spine[:len(spine)-1]
		}
		n.left = last
		if len(spine) > 0 {
			spine[len(spine)-1].right = n
		}
		spine = append(spine, n)
	}
	if len(spine) == 0 {
		return nil
	}
	root := spine[0]
	t.pullAll(root)
	return root
}

// pullAll recomputes sizes and aggregates bottom-up over a freshly
// built subtree.
func (t *FingerTree[T]) pullAll(n *tnode[T]) {
	if n == nil {
		return
	}
	t.pullAll(n.left)
	t.pullAll(n.right)
	t.pull(n)
}

// Init performs the initial run: it installs the window's buckets in
// window order, oldest first, resetting the deterministic priority
// stream so equal bucket sequences always produce equal tree shapes.
func (t *FingerTree[T]) Init(buckets []T) error {
	t.root = nil
	t.ctr = 0
	t.root = t.build(buckets)
	return nil
}

// Slide evicts the oldest bucket and inserts bucket as the newest — the
// in-order fast path, two root-path walks: O(log w) combines.
func (t *FingerTree[T]) Slide(bucket T) error {
	if t.root == nil {
		return ErrEmpty
	}
	if err := t.evictOldest(1); err != nil {
		return err
	}
	return t.BulkInsert([]T{bucket})
}

// InsertAt inserts v as a new bucket at window position pos (0 = oldest,
// Len() = newest): one split and two joins along the affected root path,
// O(log w) combines. This is the late-record landing operation: the
// runtime maps a record that arrived behind the watermark to its true
// window position and re-contracts only that path.
func (t *FingerTree[T]) InsertAt(pos int, v T) error {
	if pos < 0 || pos > t.Len() {
		return ErrUnderflow
	}
	a, b := t.split(t.root, pos)
	n := &tnode[T]{val: v, prio: t.nextPrio()}
	t.pull(n)
	t.root = t.join(t.join(a, n), b)
	return nil
}

// BulkEvict drops the k oldest buckets in one split — O(log w) combines
// regardless of k, against k·O(log w) for k single-bucket evictions.
func (t *FingerTree[T]) BulkEvict(k int) error {
	if t.bug&BuggifyFingerBulkEvictOffByOne != 0 && k > 1 {
		k-- // injected off-by-one: leaves the oldest bucket live
	}
	return t.evictOldest(k)
}

func (t *FingerTree[T]) evictOldest(k int) error {
	if k < 0 || k > t.Len() {
		return ErrUnderflow
	}
	if k == 0 {
		return nil
	}
	_, b := t.split(t.root, k)
	t.root = b
	return nil
}

// BulkInsert appends vs as the K newest buckets in one build-and-join —
// O(K + log w) combines, against K·O(log w) for K single appends.
func (t *FingerTree[T]) BulkInsert(vs []T) error {
	if len(vs) == 0 {
		return nil
	}
	sub := t.build(vs)
	t.root = t.join(t.root, sub)
	return nil
}

// Root returns the combined payload of the whole window: the root's
// cached aggregate, zero combiner calls.
func (t *FingerTree[T]) Root() (T, bool) {
	if t.root == nil {
		var zero T
		return zero, false
	}
	return t.root.agg, true
}

// Len returns the number of live buckets.
func (t *FingerTree[T]) Len() int { return tsize(t.root) }

// Buckets returns the number of live buckets (the finger tree has no
// fixed capacity; its width is whatever the window currently holds).
func (t *FingerTree[T]) Buckets() int { return t.Len() }

// Height returns the treap depth in edges (expected O(log w) by the
// deterministic priority stream's uniformity).
func (t *FingerTree[T]) Height() int {
	var depth func(n *tnode[T]) int
	depth = func(n *tnode[T]) int {
		if n == nil {
			return 0
		}
		l, r := depth(n.left), depth(n.right)
		if l < r {
			l = r
		}
		return l + 1
	}
	d := depth(t.root)
	if d == 0 {
		return 0
	}
	return d - 1
}

// Stats returns the accumulated work counters.
func (t *FingerTree[T]) Stats() Stats { return t.stats }

// ResetStats clears the work counters.
func (t *FingerTree[T]) ResetStats() { t.stats = Stats{} }

// NodeCount returns the number of materialized payloads: one bucket
// value and one cached aggregate per node.
func (t *FingerTree[T]) NodeCount() int { return 2 * t.Len() }

// ForEachPayload visits every materialized payload (space accounting):
// each node's bucket value and cached aggregate.
func (t *FingerTree[T]) ForEachPayload(fn func(T)) {
	var walk func(n *tnode[T])
	walk = func(n *tnode[T]) {
		if n == nil {
			return
		}
		walk(n.left)
		fn(n.val)
		fn(n.agg)
		walk(n.right)
	}
	walk(t.root)
}

// BucketPayloads returns the raw bucket payloads in window order,
// oldest first (checkpointing support). The second return mirrors the
// fixed-width backends' "window filled" flag; a finger tree window is
// its own definition of full, so it reports true whenever non-empty.
func (t *FingerTree[T]) BucketPayloads() ([]T, bool) {
	if t.root == nil {
		return nil, false
	}
	out := make([]T, 0, t.Len())
	var walk func(n *tnode[T])
	walk = func(n *tnode[T]) {
		if n == nil {
			return
		}
		walk(n.left)
		out = append(out, n.val)
		walk(n.right)
	}
	walk(t.root)
	return out, true
}

// Restore reinstates a checkpointed window from its raw buckets in
// window order, oldest first. Work counters and the priority stream
// restart from zero, so a restored aggregator's shape, fingerprint, and
// Stats match a fresh one restored from the same checkpoint.
func (t *FingerTree[T]) Restore(buckets []T) error {
	t.stats = Stats{}
	return t.Init(buckets)
}
