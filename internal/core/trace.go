package core

// This file is the tracing surface the deterministic simulation harness
// (internal/sim) drives the trees through: structure fingerprints that
// must be bit-identical across parallelism levels, and FoundationDB-style
// buggify points that let the harness's own acceptance tests inject a
// targeted bug and prove the differential oracle catches it.

// Buggify is a bitmask of fault-injection points. All points are off by
// default; the simulation harness enables one to verify that its checks
// detect the resulting divergence. Production code must never set these.
type Buggify uint32

// Buggify points.
const (
	// BuggifyNone disables fault injection.
	BuggifyNone Buggify = 0
	// BuggifyRotatingDropSibling drops the last collected sibling from
	// rotating split pre-processing (PrepareBackground), i.e. it elides
	// one pairwise merge from the pre-combined payload I — a plausible
	// "optimization" bug whose only symptom is a wrong foreground root.
	BuggifyRotatingDropSibling Buggify = 1 << iota
	// BuggifyFingerBulkEvictOffByOne makes FingerTree.BulkEvict(k) evict
	// k−1 buckets when k > 1 — the classic bulk-boundary off-by-one whose
	// only symptom is a stale oldest bucket lingering in the aggregate.
	BuggifyFingerBulkEvictOffByOne
)

// SetBuggify installs fault-injection points on a rotating tree (for the
// simulation harness's self-tests only).
func (t *RotatingTree[T]) SetBuggify(b Buggify) { t.bug = b }

// fpMix folds x into h with a splitmix64 avalanche step, the common
// combiner of the fingerprint walks below.
func fpMix(h, x uint64) uint64 {
	return splitmix64(h ^ splitmix64(x))
}

// fpBool folds a flag into h on distinct constants so that (true, 0) and
// (false, anything) never collide.
func fpBool(h uint64, b bool) uint64 {
	if b {
		return fpMix(h, 0x9e3779b97f4a7c15)
	}
	return fpMix(h, 0x2545f4914f6cdd1d)
}

// FingerprintWith hashes the tree's materialized structure and payloads
// deterministically: shape, voidness, live-window bounds, and every
// payload via fp, in a fixed depth-first order. Two folding trees that
// went through the same operations — at any parallelism — fingerprint
// identically.
func (t *FoldingTree[T]) FingerprintWith(fp func(T) uint64) uint64 {
	h := uint64(0x6c62272e07bb0142)
	h = fpMix(h, uint64(t.height))
	h = fpMix(h, uint64(t.start))
	h = fpMix(h, uint64(t.end))
	var walk func(n *fnode[T]) uint64
	walk = func(n *fnode[T]) uint64 {
		if n == nil {
			return 0x555555
		}
		nh := fpBool(0x1000193, n.void)
		nh = fpBool(nh, n.leaf)
		if !n.void {
			nh = fpMix(nh, fp(n.payload))
		}
		nh = fpMix(nh, walk(n.left))
		nh = fpMix(nh, walk(n.right))
		return nh
	}
	return fpMix(h, walk(t.root))
}

// FingerprintWith hashes the rotating tree's heap array in index order,
// plus the rotation cursor and the split-processing intermediate payload.
func (t *RotatingTree[T]) FingerprintWith(fp func(T) uint64) uint64 {
	h := uint64(0x6c62272e07bb0143)
	h = fpMix(h, uint64(t.victim))
	h = fpBool(h, t.filled)
	for i := range t.nodes {
		h = fpBool(h, t.nodes[i].void)
		if !t.nodes[i].void {
			h = fpMix(h, fp(t.nodes[i].payload))
		}
	}
	h = fpBool(h, t.preOK)
	if t.preOK && t.preHas {
		h = fpMix(h, fp(t.pre))
	}
	return h
}

// FingerprintWith hashes the DABA Lite aggregator: the cursor offsets
// relative to the front (restore-friendly: absolute positions reset on
// rebuild), the running sums, and both rings over the live range in
// window order. Two aggregators that went through the same operations
// fingerprint identically.
func (t *DabaLite[T]) FingerprintWith(fp func(T) uint64) uint64 {
	h := uint64(0x6c62272e07bb0147)
	h = fpMix(h, uint64(t.n))
	h = fpBool(h, t.filled)
	h = fpMix(h, t.l-t.f)
	h = fpMix(h, t.r-t.f)
	h = fpMix(h, t.a-t.f)
	h = fpMix(h, t.b-t.f)
	h = fpMix(h, t.e-t.f)
	h = fpBool(h, t.hasMid)
	if t.hasMid {
		h = fpMix(h, fp(t.midSum))
	}
	h = fpBool(h, t.hasBack)
	if t.hasBack {
		h = fpMix(h, fp(t.backSum))
	}
	for i := t.f; i != t.e; i++ {
		h = fpMix(h, fp(t.q[t.slot(i)]))
		h = fpMix(h, fp(t.raw[t.slot(i)]))
	}
	return h
}

// FingerprintWith hashes the finger tree's full treap structure — node
// priorities, bucket payloads, and cached aggregates in a fixed
// depth-first order. Priorities come from the deterministic counter
// stream, so two trees that executed the same operation sequence — at
// any parallelism — fingerprint identically, and a restored tree
// matches a freshly restored one.
func (t *FingerTree[T]) FingerprintWith(fp func(T) uint64) uint64 {
	h := uint64(0x6c62272e07bb0148)
	h = fpMix(h, t.ctr)
	var walk func(n *tnode[T]) uint64
	walk = func(n *tnode[T]) uint64 {
		if n == nil {
			return 0x555555
		}
		nh := fpMix(0x1000193, n.prio)
		nh = fpMix(nh, fp(n.val))
		nh = fpMix(nh, fp(n.agg))
		nh = fpMix(nh, walk(n.left))
		nh = fpMix(nh, walk(n.right))
		return nh
	}
	return fpMix(h, walk(t.root))
}

// FingerprintWith hashes the coalescing tree's root and pending payloads.
func (c *CoalescingTree[T]) FingerprintWith(fp func(T) uint64) uint64 {
	h := uint64(0x6c62272e07bb0144)
	h = fpBool(h, c.hasRoot)
	if c.hasRoot {
		h = fpMix(h, fp(c.root))
	}
	h = fpBool(h, c.hasPend)
	if c.hasPend {
		h = fpMix(h, fp(c.pending))
	}
	return h
}

// FingerprintWith hashes the randomized folding tree: the live leaf
// sequence in window order, the root, and the memo table. Memo entries
// are folded with an order-independent XOR because map iteration order is
// not deterministic; each entry is avalanche-mixed first, so the XOR still
// distinguishes differing entry sets.
func (t *RandomizedFoldingTree[T]) FingerprintWith(fp func(T) uint64) uint64 {
	h := uint64(0x6c62272e07bb0145)
	h = fpMix(h, uint64(t.height))
	for _, leaf := range t.leaves {
		h = fpMix(h, leaf.ID)
		h = fpMix(h, fp(leaf.Payload))
	}
	h = fpBool(h, t.hasP)
	if t.hasP {
		h = fpMix(h, fp(t.rootP))
	}
	var memoXor uint64
	for sig, p := range t.memo {
		memoXor ^= splitmix64(fpMix(sig, fp(p)))
	}
	return fpMix(h, memoXor)
}

// FingerprintWith hashes the strawman tree's root and memo table (the
// memo XOR-folded, order-independently, as for the randomized tree).
func (t *StrawmanTree[T]) FingerprintWith(fp func(T) uint64) uint64 {
	h := uint64(0x6c62272e07bb0146)
	h = fpBool(h, t.hasP)
	if t.hasP {
		h = fpMix(h, fp(t.rootP))
	}
	var memoXor uint64
	for key, p := range t.memo {
		memoXor ^= splitmix64(fpMix(fpMix(key.left, key.right), fp(p)))
	}
	return fpMix(h, memoXor)
}
