package core

import (
	"strconv"
	"testing"
)

// mergeCounts is a realistic payload merge: map union with sums, like a
// word-count combiner over ~64 hot keys.
func mergeCounts(a, b map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		out[k] += v
	}
	return out
}

func countPayload(i int) map[string]int64 {
	p := make(map[string]int64, 16)
	for j := 0; j < 16; j++ {
		p["key"+strconv.Itoa((i+j)%64)] = int64(i)
	}
	return p
}

func countPayloads(lo, hi int) []map[string]int64 {
	out := make([]map[string]int64, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, countPayload(i))
	}
	return out
}

func BenchmarkFoldingSlide(b *testing.B) {
	for _, size := range []int{64, 1024} {
		b.Run(strconv.Itoa(size), func(b *testing.B) {
			tr := NewFolding(mergeCounts)
			tr.Init(countPayloads(0, size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := tr.Slide(1, countPayloads(size+i, size+i+1)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkRotatingRotate(b *testing.B) {
	for _, size := range []int{64, 1024} {
		b.Run(strconv.Itoa(size), func(b *testing.B) {
			tr := NewRotating(mergeCounts, size)
			if err := tr.Init(countPayloads(0, size)); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := tr.Rotate(countPayload(size + i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkRotatingForeground(b *testing.B) {
	tr := NewRotating(mergeCounts, 256)
	if err := tr.Init(countPayloads(0, 256)); err != nil {
		b.Fatal(err)
	}
	if err := tr.PrepareBackground(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.RotateForeground(countPayload(256 + i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoalescingAppend(b *testing.B) {
	tr := NewCoalescing(mergeCounts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Append(countPayload(i))
	}
}

func BenchmarkRandomizedSlide(b *testing.B) {
	for _, size := range []int{64, 1024} {
		b.Run(strconv.Itoa(size), func(b *testing.B) {
			tr := NewRandomizedFolding(mergeCounts, 42)
			items := make([]Item[map[string]int64], size)
			for i := range items {
				items[i] = Item[map[string]int64]{ID: uint64(i), Payload: countPayload(i)}
			}
			tr.Init(items)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id := uint64(size + i)
				add := []Item[map[string]int64]{{ID: id, Payload: countPayload(size + i)}}
				if err := tr.Slide(1, add); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkStrawmanShift(b *testing.B) {
	// The strawman's Θ(window) re-pairing cost per slide — contrast with
	// BenchmarkFoldingSlide.
	for _, size := range []int{64, 1024} {
		b.Run(strconv.Itoa(size), func(b *testing.B) {
			tr := NewStrawman(mergeCounts)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				items := make([]Item[map[string]int64], size)
				for j := range items {
					items[j] = Item[map[string]int64]{ID: uint64(i + j), Payload: countPayload(i + j)}
				}
				tr.Build(items)
			}
		})
	}
}

// Parallel-contraction benchmarks: the same workload at Parallelism 1
// and 4, so multicore hardware (e.g. CI runners) shows the level-by-level
// worker pool's wall-clock speedup. On a single-CPU machine the par=4
// runs should match par=1 within scheduling noise, never regress badly.

func parLevels() []int { return []int{1, 4} }

func BenchmarkParallelFoldingInit(b *testing.B) {
	for _, par := range parLevels() {
		b.Run("par"+strconv.Itoa(par), func(b *testing.B) {
			payloads := countPayloads(0, 1024)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr := NewFolding(mergeCounts, WithParallelism[map[string]int64](par))
				tr.Init(payloads)
			}
		})
	}
}

func BenchmarkParallelFoldingWideSlide(b *testing.B) {
	// A wide delta dirties many leaves, giving each tree level real
	// intra-level parallelism (single-split slides touch one path only).
	const size, delta = 1024, 64
	for _, par := range parLevels() {
		b.Run("par"+strconv.Itoa(par), func(b *testing.B) {
			tr := NewFolding(mergeCounts, WithParallelism[map[string]int64](par))
			tr.Init(countPayloads(0, size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lo := size + i*delta
				if err := tr.Slide(delta, countPayloads(lo, lo+delta)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkParallelStrawmanBuild(b *testing.B) {
	const size = 1024
	for _, par := range parLevels() {
		b.Run("par"+strconv.Itoa(par), func(b *testing.B) {
			tr := NewStrawman(mergeCounts)
			tr.SetParallelism(par)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				items := make([]Item[map[string]int64], size)
				for j := range items {
					items[j] = Item[map[string]int64]{ID: uint64(i + j), Payload: countPayload(i + j)}
				}
				tr.Build(items)
			}
		})
	}
}

func BenchmarkParallelRotatingPrepare(b *testing.B) {
	const size = 256
	for _, par := range parLevels() {
		b.Run("par"+strconv.Itoa(par), func(b *testing.B) {
			tr := NewRotating(mergeCounts, size)
			tr.SetParallelism(par)
			if err := tr.Init(countPayloads(0, size)); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := tr.PrepareBackground(); err != nil {
					b.Fatal(err)
				}
				if _, err := tr.RotateForeground(countPayload(size + i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkParallelRandomizedInit(b *testing.B) {
	const size = 1024
	for _, par := range parLevels() {
		b.Run("par"+strconv.Itoa(par), func(b *testing.B) {
			items := make([]Item[map[string]int64], size)
			for i := range items {
				items[i] = Item[map[string]int64]{ID: uint64(i), Payload: countPayload(i)}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr := NewRandomizedFolding(mergeCounts, 42)
				tr.SetParallelism(par)
				tr.Init(items)
			}
		})
	}
}
