package core

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// TestParallelForShardsAndOrder checks the worker pool visits every index
// exactly once and merges per-worker stats into the total.
func TestParallelForShardsAndOrder(t *testing.T) {
	for _, par := range []int{0, 1, 2, 7, 64} {
		const n = 100
		hits := make([]int32, n)
		var total Stats
		parallelFor(par, n, &total, func(i int, shard *Stats) {
			hits[i]++
			shard.Merges++
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("par=%d: index %d visited %d times", par, i, h)
			}
		}
		if total.Merges != n {
			t.Fatalf("par=%d: merged stats = %d, want %d", par, total.Merges, n)
		}
	}
}

// TestReduceOrderedMatchesSequential checks the balanced parallel
// reduction returns the sequential left fold's result (associative
// merge) with the same merge count, for every length and parallelism.
func TestReduceOrderedMatchesSequential(t *testing.T) {
	for n := 0; n <= 33; n++ {
		items := make([][]int, n)
		for i := range items {
			items[i] = []int{i}
		}
		var seqStats Stats
		want, wantOK := reduceOrdered(1, multiset, items, &seqStats)
		for _, par := range []int{2, 3, 8} {
			var parStats Stats
			got, ok := reduceOrdered(par, multiset, items, &parStats)
			if ok != wantOK || !reflect.DeepEqual(sorted(got), sorted(want)) {
				t.Fatalf("n=%d par=%d: result diverges", n, par)
			}
			if parStats.Merges != seqStats.Merges {
				t.Fatalf("n=%d par=%d: merges %d, want %d", n, par, parStats.Merges, seqStats.Merges)
			}
		}
	}
}

func sorted(s []int) []int {
	out := append([]int(nil), s...)
	sort.Ints(out)
	return out
}

// runSchedule drives one randomized variable-width slide schedule through
// every tree type at the given parallelism and returns each root. The
// schedule depends only on the seed, so two calls with different
// parallelism see identical inputs.
func runSchedule(t *testing.T, seed int64, par int) map[string][]int {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := 4 + rng.Intn(28)

	fold := NewFolding(multiset, WithParallelism[[]int](par))
	fold.Init(seqPayloads(0, n))
	rnd := NewRandomizedFolding(multiset, uint64(seed)+17)
	rnd.SetParallelism(par)
	rnd.Init(seqItems(0, n))
	straw := NewStrawman(multiset)
	straw.SetParallelism(par)
	straw.Build(seqItems(0, n))
	rot := NewRotating(multiset, n)
	rot.SetParallelism(par)
	if err := rot.Init(seqPayloads(0, n)); err != nil {
		t.Fatal(err)
	}
	if err := rot.PrepareBackground(); err != nil {
		t.Fatal(err)
	}

	lo, hi := 0, n
	for step := 0; step < 12; step++ {
		drop := rng.Intn(hi - lo)
		grow := 1 + rng.Intn(6)
		if err := fold.Slide(drop, seqPayloads(hi, hi+grow)); err != nil {
			t.Fatal(err)
		}
		if err := rnd.Slide(drop, seqItems(hi, hi+grow)); err != nil {
			t.Fatal(err)
		}
		lo += drop
		hi += grow
		straw.Build(seqItems(lo, hi))
		// The rotating tree needs fixed-width slides; feed it its own
		// single-bucket rotation per step (plus split-mode halves).
		if _, err := rot.RotateForeground(seqPayloads(hi, hi+1)[0]); err != nil {
			t.Fatal(err)
		}
		if err := rot.Background(seqPayloads(hi, hi+1)[0]); err != nil {
			t.Fatal(err)
		}
	}

	roots := make(map[string][]int)
	for name, get := range map[string]func() ([]int, bool){
		"folding":    fold.Root,
		"randomized": rnd.Root,
		"strawman":   straw.Root,
		"rotating":   rot.Root,
	} {
		root, ok := get()
		if !ok {
			t.Fatalf("%s: no root after schedule (seed %d)", name, seed)
		}
		roots[name] = sorted(root)
	}
	return roots
}

// TestParallelSequentialEquivalence is the property check of the parallel
// contraction engine: for random slide schedules, every tree's root under
// parallel recomputation is identical to the sequential root. Run with
// `go test -race` this also exercises the engine for data races.
func TestParallelSequentialEquivalence(t *testing.T) {
	property := func(seed int64) bool {
		seq := runSchedule(t, seed, 1)
		for _, par := range []int{2, 4} {
			par1 := runSchedule(t, seed, par)
			for name, want := range seq {
				if !reflect.DeepEqual(par1[name], want) {
					t.Logf("seed %d par %d: %s root diverges", seed, par, name)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestParallelStatsMatchSequential pins the engine's work accounting:
// per-worker shards must merge to exactly the sequential counters (the
// recomputed node set does not depend on the worker count).
func TestParallelStatsMatchSequential(t *testing.T) {
	build := func(par int) (Stats, Stats, Stats) {
		fold := NewFolding(multiset, WithParallelism[[]int](par))
		fold.Init(seqPayloads(0, 100))
		if err := fold.Slide(30, seqPayloads(100, 140)); err != nil {
			t.Fatal(err)
		}
		straw := NewStrawman(multiset)
		straw.SetParallelism(par)
		straw.Build(seqItems(0, 100))
		straw.Build(seqItems(5, 105))
		rnd := NewRandomizedFolding(multiset, 42)
		rnd.SetParallelism(par)
		rnd.Init(seqItems(0, 100))
		if err := rnd.Slide(10, seqItems(100, 120)); err != nil {
			t.Fatal(err)
		}
		return fold.Stats(), straw.Stats(), rnd.Stats()
	}
	f1, s1, r1 := build(1)
	f4, s4, r4 := build(4)
	if f1 != f4 {
		t.Fatalf("folding stats diverge: seq %+v par %+v", f1, f4)
	}
	if s1 != s4 {
		t.Fatalf("strawman stats diverge: seq %+v par %+v", s1, s4)
	}
	if r1 != r4 {
		t.Fatalf("randomized stats diverge: seq %+v par %+v", r1, r4)
	}
}

// TestRotatingParallelInitAndPrepare pins the rotating tree's parallel
// paths: Init's level build and PrepareBackground's balanced pre-combine
// agree with the sequential tree on payload and merge counts.
func TestRotatingParallelInitAndPrepare(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16, 33} {
		seq := NewRotating(multiset, n)
		par := NewRotating(multiset, n)
		par.SetParallelism(4)
		if err := seq.Init(seqPayloads(0, n)); err != nil {
			t.Fatal(err)
		}
		if err := par.Init(seqPayloads(0, n)); err != nil {
			t.Fatal(err)
		}
		sr, _ := seq.Root()
		pr, _ := par.Root()
		if !reflect.DeepEqual(sorted(sr), sorted(pr)) {
			t.Fatalf("n=%d: parallel Init root diverges", n)
		}
		if seq.Stats() != par.Stats() {
			t.Fatalf("n=%d: Init stats diverge: %+v vs %+v", n, seq.Stats(), par.Stats())
		}
		if err := seq.PrepareBackground(); err != nil {
			t.Fatal(err)
		}
		if err := par.PrepareBackground(); err != nil {
			t.Fatal(err)
		}
		if seq.Stats().Merges != par.Stats().Merges {
			t.Fatalf("n=%d: PrepareBackground merges diverge", n)
		}
		sf, err := seq.RotateForeground(seqPayloads(n, n+1)[0])
		if err != nil {
			t.Fatal(err)
		}
		pf, err := par.RotateForeground(seqPayloads(n, n+1)[0])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sorted(sf), sorted(pf)) {
			t.Fatalf("n=%d: foreground result diverges", n)
		}
	}
}
