package core

// StrawmanTree is the memoization-only contraction tree of §2: a balanced
// binary tree rebuilt over the current leaf sequence on every run, with
// node payloads memoized by the identities of their two children.
//
// Map outputs are reused through leaf identities, but because a window
// slide shifts every leaf's position, almost all internal pairings change
// and the combine work per run is Θ(window) — the linear-in-window
// behaviour the paper ascribes to Incoop/Nectar-style systems (§9). It is
// the baseline that Figure 8 compares the self-adjusting trees against,
// and the change-propagation structure used by multi-level query stages
// whose input changes land at arbitrary positions (§5).
//
// StrawmanTree is not safe for concurrent use.
type StrawmanTree[T any] struct {
	merge MergeFunc[T]
	memo  map[strawKey]T
	rootP T
	hasP  bool
	stats Stats
}

// strawKey identifies an internal node by its two children's identities.
type strawKey struct {
	left, right uint64
}

// NewStrawman returns an empty strawman tree.
func NewStrawman[T any](merge MergeFunc[T]) *StrawmanTree[T] {
	return &StrawmanTree[T]{merge: merge, memo: make(map[strawKey]T)}
}

// Build (re)constructs the balanced tree over the given leaves, reusing
// memoized node payloads where both children are unchanged, and returns
// whether the tree is non-empty. Entries untouched by this build are
// garbage collected.
func (t *StrawmanTree[T]) Build(leaves []Item[T]) bool {
	if len(leaves) == 0 {
		var zero T
		t.rootP, t.hasP = zero, false
		t.memo = make(map[strawKey]T)
		return false
	}
	nextMemo := make(map[strawKey]T, len(t.memo))
	cur := make([]rnode[T], len(leaves))
	for i, leaf := range leaves {
		cur[i] = rnode[T]{id: leaf.ID, sig: splitmix64(leaf.ID ^ 0x6a09e667f3bcc908), payload: leaf.Payload}
	}
	for len(cur) > 1 {
		next := make([]rnode[T], 0, (len(cur)+1)/2)
		for i := 0; i < len(cur); i += 2 {
			if i+1 == len(cur) {
				next = append(next, cur[i])
				continue
			}
			l, r := cur[i], cur[i+1]
			key := strawKey{left: l.sig, right: r.sig}
			node := rnode[T]{id: l.id, sig: splitmix64(l.sig ^ splitmix64(r.sig))}
			if payload, ok := t.memo[key]; ok {
				node.payload = payload
				t.stats.NodesReused++
			} else if payload, ok := nextMemo[key]; ok {
				node.payload = payload
				t.stats.NodesReused++
			} else {
				node.payload = t.merge(l.payload, r.payload)
				t.stats.Merges++
				t.stats.NodesRecomputed++
			}
			nextMemo[key] = node.payload
			next = append(next, node)
		}
		cur = next
	}
	t.rootP, t.hasP = cur[0].payload, true
	t.memo = nextMemo
	return true
}

// Root returns the combined payload of the last Build.
func (t *StrawmanTree[T]) Root() (T, bool) {
	if !t.hasP {
		var zero T
		return zero, false
	}
	return t.rootP, true
}

// Stats returns the accumulated work counters.
func (t *StrawmanTree[T]) Stats() Stats { return t.stats }

// ResetStats clears the work counters.
func (t *StrawmanTree[T]) ResetStats() { t.stats = Stats{} }

// NodeCount returns the number of memoized payloads retained.
func (t *StrawmanTree[T]) NodeCount() int { return len(t.memo) }

// ForEachPayload visits every memoized node payload (space accounting).
func (t *StrawmanTree[T]) ForEachPayload(fn func(T)) {
	for _, p := range t.memo {
		fn(p)
	}
}
