package core

// StrawmanTree is the memoization-only contraction tree of §2: a balanced
// binary tree rebuilt over the current leaf sequence on every run, with
// node payloads memoized by the identities of their two children.
//
// Map outputs are reused through leaf identities, but because a window
// slide shifts every leaf's position, almost all internal pairings change
// and the combine work per run is Θ(window) — the linear-in-window
// behaviour the paper ascribes to Incoop/Nectar-style systems (§9). It is
// the baseline that Figure 8 compares the self-adjusting trees against,
// and the change-propagation structure used by multi-level query stages
// whose input changes land at arbitrary positions (§5).
//
// StrawmanTree is not safe for concurrent use.
type StrawmanTree[T any] struct {
	merge MergeFunc[T]
	memo  map[strawKey]T
	rootP T
	hasP  bool
	live  int // leaves of the last Build (shape introspection)
	par   int // worker pool bound for per-level pair combines
	stats Stats
}

// strawKey identifies an internal node by its two children's identities.
type strawKey struct {
	left, right uint64
}

// NewStrawman returns an empty strawman tree.
func NewStrawman[T any](merge MergeFunc[T]) *StrawmanTree[T] {
	return &StrawmanTree[T]{merge: merge, memo: make(map[strawKey]T), par: 1}
}

// SetParallelism bounds the worker pool combining one level's pairs
// concurrently (1 = sequential). The merge must be pure and alias-free
// to run with par > 1. Results and work counters are identical at any
// parallelism.
func (t *StrawmanTree[T]) SetParallelism(par int) { t.par = normalizeParallelism(par) }

// Build (re)constructs the balanced tree over the given leaves, reusing
// memoized node payloads where both children are unchanged, and returns
// whether the tree is non-empty. Entries untouched by this build are
// garbage collected.
func (t *StrawmanTree[T]) Build(leaves []Item[T]) bool {
	t.live = len(leaves)
	if len(leaves) == 0 {
		var zero T
		t.rootP, t.hasP = zero, false
		t.memo = make(map[strawKey]T)
		return false
	}
	nextMemo := make(map[strawKey]T, len(t.memo))
	cur := make([]rnode[T], len(leaves))
	for i, leaf := range leaves {
		cur[i] = rnode[T]{id: leaf.ID, sig: splitmix64(leaf.ID ^ 0x6a09e667f3bcc908), payload: leaf.Payload}
	}
	for len(cur) > 1 {
		cur = t.buildLevel(cur, nextMemo)
	}
	t.rootP, t.hasP = cur[0].payload, true
	t.memo = nextMemo
	return true
}

// buildLevel pairs one level's nodes into the next. A sequential
// classification pass resolves every pair against the previous build's
// memo and this build's accumulating memo (nextMemo); only the genuinely
// missing combines — all independent — run over the worker pool. The
// produced payloads, memo contents, and work counters match the
// sequential order exactly: a key that appears twice in one level is
// combined once and reused on its later occurrences.
func (t *StrawmanTree[T]) buildLevel(cur []rnode[T], nextMemo map[strawKey]T) []rnode[T] {
	next := make([]rnode[T], 0, (len(cur)+1)/2)
	type job struct{ l, r int } // cur indices of a pair to combine
	var jobs []job
	jobOf := make(map[strawKey]int) // key → index into jobs
	// fill[i] routes pair i of this level to its payload source: ≥ 0 is
	// a job index, −1 means the payload was resolved from a memo table.
	fill := make([]int, 0, (len(cur)+1)/2)
	for i := 0; i+1 < len(cur); i += 2 {
		l, r := cur[i], cur[i+1]
		key := strawKey{left: l.sig, right: r.sig}
		node := rnode[T]{id: l.id, sig: splitmix64(l.sig ^ splitmix64(r.sig))}
		if payload, ok := t.memo[key]; ok {
			node.payload = payload
			t.stats.NodesReused++
			nextMemo[key] = payload
			fill = append(fill, -1)
		} else if payload, ok := nextMemo[key]; ok {
			node.payload = payload
			t.stats.NodesReused++
			fill = append(fill, -1)
		} else if j, ok := jobOf[key]; ok {
			// A duplicate pair earlier in this level already scheduled
			// the combine; reuse its result, as the sequential pass
			// would have via nextMemo.
			t.stats.NodesReused++
			fill = append(fill, j)
		} else {
			jobOf[key] = len(jobs)
			jobs = append(jobs, job{l: i, r: i + 1})
			t.stats.Merges++
			t.stats.NodesRecomputed++
			fill = append(fill, len(jobs)-1)
		}
		next = append(next, node)
	}
	computed := make([]T, len(jobs))
	parallelFor(t.par, len(jobs), &t.stats, func(i int, _ *Stats) {
		computed[i] = t.merge(cur[jobs[i].l].payload, cur[jobs[i].r].payload)
	})
	for i := range fill {
		if j := fill[i]; j >= 0 {
			next[i].payload = computed[j]
			key := strawKey{left: cur[2*i].sig, right: cur[2*i+1].sig}
			nextMemo[key] = computed[j]
		}
	}
	if len(cur)%2 == 1 {
		next = append(next, cur[len(cur)-1])
	}
	return next
}

// Root returns the combined payload of the last Build.
func (t *StrawmanTree[T]) Root() (T, bool) {
	if !t.hasP {
		var zero T
		return zero, false
	}
	return t.rootP, true
}

// Stats returns the accumulated work counters.
func (t *StrawmanTree[T]) Stats() Stats { return t.stats }

// ResetStats clears the work counters.
func (t *StrawmanTree[T]) ResetStats() { t.stats = Stats{} }

// NodeCount returns the number of memoized payloads retained.
func (t *StrawmanTree[T]) NodeCount() int { return len(t.memo) }

// ForEachPayload visits every memoized node payload (space accounting).
func (t *StrawmanTree[T]) ForEachPayload(fn func(T)) {
	for _, p := range t.memo {
		fn(p)
	}
}
