package core

import (
	"errors"
	"testing"
)

// mlCompute builds a 2-partition payload set for a numbered input.
func mlCompute(i int) ([][]int, error) {
	return [][]int{{i}, {i * 10}}, nil
}

func TestMultiLevelComputesAndAggregates(t *testing.T) {
	ml := NewMultiLevel(concat, 2)
	roots, ok, err := ml.Run([]uint64{100, 200, 300}, mlCompute)
	if err != nil {
		t.Fatal(err)
	}
	if !ok[0] || !ok[1] {
		t.Fatal("missing roots")
	}
	wantSeq(t, roots[0], 0, 3)
	if len(roots[1]) != 3 || roots[1][2] != 20 {
		t.Fatalf("partition 1 root = %v", roots[1])
	}
	s := ml.Stats()
	if s.InputsComputed != 3 || s.InputsReused != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestMultiLevelReusesUnchangedInputs(t *testing.T) {
	ml := NewMultiLevel(concat, 1)
	compute := func(i int) ([][]int, error) { return [][]int{{i}}, nil }
	if _, _, err := ml.Run([]uint64{1, 2, 3, 4}, compute); err != nil {
		t.Fatal(err)
	}
	// Change only input 2 (fingerprint 99): exactly one compute.
	before := ml.Stats()
	boom := errors.New("computed a reused input")
	_, _, err := ml.Run([]uint64{1, 99, 3, 4}, func(i int) ([][]int, error) {
		if i != 1 {
			return nil, boom
		}
		return [][]int{{42}}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	d := ml.Stats()
	if d.InputsComputed-before.InputsComputed != 1 {
		t.Fatalf("computed %d inputs, want 1", d.InputsComputed-before.InputsComputed)
	}
	if d.InputsReused-before.InputsReused != 3 {
		t.Fatalf("reused %d inputs, want 3", d.InputsReused-before.InputsReused)
	}
}

func TestMultiLevelDuplicateFingerprints(t *testing.T) {
	ml := NewMultiLevel(concat, 1)
	calls := 0
	roots, ok, err := ml.Run([]uint64{7, 7, 7}, func(i int) ([][]int, error) {
		calls++
		return [][]int{{int(1)}}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("identical inputs computed %d times, want 1", calls)
	}
	if !ok[0] || len(roots[0]) != 3 {
		t.Fatalf("root = %v", roots[0])
	}
}

func TestMultiLevelMemoGC(t *testing.T) {
	ml := NewMultiLevel(concat, 1)
	compute := func(i int) ([][]int, error) { return [][]int{{i}}, nil }
	if _, _, err := ml.Run([]uint64{1, 2, 3}, compute); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ml.Run([]uint64{4, 5}, compute); err != nil {
		t.Fatal(err)
	}
	if n := ml.MemoEntries(); n != 2 {
		t.Fatalf("memo holds %d entries, want 2 (generational GC)", n)
	}
}

func TestMultiLevelEmptyRun(t *testing.T) {
	ml := NewMultiLevel(concat, 2)
	roots, ok, err := ml.Run(nil, mlCompute)
	if err != nil {
		t.Fatal(err)
	}
	if ok[0] || ok[1] {
		t.Fatalf("empty run produced roots: %v", roots)
	}
}

func TestMultiLevelComputeError(t *testing.T) {
	ml := NewMultiLevel(concat, 1)
	boom := errors.New("boom")
	if _, _, err := ml.Run([]uint64{1}, func(int) ([][]int, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestMultiLevelPartitionMismatch(t *testing.T) {
	ml := NewMultiLevel(concat, 3)
	_, _, err := ml.Run([]uint64{1}, func(int) ([][]int, error) {
		return [][]int{{1}}, nil // 1 partition instead of 3
	})
	if !errors.Is(err, ErrPartitionMismatch) {
		t.Fatalf("err = %v, want ErrPartitionMismatch", err)
	}
}

func TestMultiLevelTreeReuse(t *testing.T) {
	// Unchanged runs must reuse strawman subtrees: zero merges on the
	// second pass.
	ml := NewMultiLevel(concat, 1)
	compute := func(i int) ([][]int, error) { return [][]int{{i}}, nil }
	fps := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	if _, _, err := ml.Run(fps, compute); err != nil {
		t.Fatal(err)
	}
	before := ml.TreeStats()
	if _, _, err := ml.Run(fps, compute); err != nil {
		t.Fatal(err)
	}
	after := ml.TreeStats()
	if after.Merges != before.Merges {
		t.Fatalf("identical rerun performed %d merges", after.Merges-before.Merges)
	}
}
