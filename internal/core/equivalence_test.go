package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// TestTreeEquivalenceFixedWidth drives the same fixed-width slide
// schedule through every tree that supports it and checks they agree on
// the window multiset — the cross-implementation oracle.
func TestTreeEquivalenceFixedWidth(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12) // buckets

		rot := NewRotating(multiset, n)
		if err := rot.Init(seqPayloads(0, n)); err != nil {
			return false
		}
		fold := NewFolding(multiset)
		fold.Init(seqPayloads(0, n))
		rnd := NewRandomizedFolding(multiset, uint64(seed)+3)
		rnd.Init(seqItems(0, n))
		straw := NewStrawman(multiset)
		straw.Build(seqItems(0, n))

		lo, hi := 0, n
		for step := 0; step < 25; step++ {
			add := seqPayloads(hi, hi+1)
			addItems := seqItems(hi, hi+1)
			if err := rot.Rotate(add[0]); err != nil {
				return false
			}
			if err := fold.Slide(1, add); err != nil {
				return false
			}
			if err := rnd.Slide(1, addItems); err != nil {
				return false
			}
			lo++
			hi++
			straw.Build(seqItems(lo, hi))

			want := make([]int, 0, n)
			for v := lo; v < hi; v++ {
				want = append(want, v)
			}
			for name, tree := range map[string]interface{ root() ([]int, bool) }{
				"rotating":   rootFn(rot.Root),
				"folding":    rootFn(fold.Root),
				"randomized": rootFn(rnd.Root),
				"strawman":   rootFn(straw.Root),
			} {
				got, ok := tree.root()
				if !ok {
					t.Logf("seed %d step %d: %s has no root", seed, step, name)
					return false
				}
				g := append([]int(nil), got...)
				sort.Ints(g)
				if len(g) != len(want) {
					t.Logf("seed %d step %d: %s size %d want %d", seed, step, name, len(g), len(want))
					return false
				}
				for i := range g {
					if g[i] != want[i] {
						t.Logf("seed %d step %d: %s diverges at %d", seed, step, name, i)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// rootFn adapts a tree's Root method to a common shape.
type rootFn func() ([]int, bool)

func (f rootFn) root() ([]int, bool) { return f() }
