package core

// RotatingTree is the rotating contraction tree for fixed-width sliding
// windows (§4.1). The window holds N buckets (each bucket combines the w
// splits of one slide); the buckets are the leaves of a static balanced
// binary tree organized as a circular list. A slide replaces the oldest
// bucket with the new one and recomputes only the leaf's root path —
// log2(N) combiner calls.
//
// Because rotation re-orders bucket age relative to tree position, the
// merge function must be commutative in addition to associative.
//
// Split processing (§4): PrepareBackground pre-combines the sibling
// payloads along the next victim's root path into a single intermediate
// payload I; the next foreground update then needs a single merge of the
// new bucket with I before the final Reduce.
//
// RotatingTree is not safe for concurrent use.
type RotatingTree[T any] struct {
	merge  MergeFunc[T]
	n      int // buckets in the window
	pad    int // leaf slots (n rounded up to a power of two)
	height int
	nodes  []rtnode[T] // heap layout: root at 0, leaves at pad-1 .. 2·pad-2
	victim int         // bucket position to be replaced by the next slide
	filled bool
	pre    T    // pre-combined siblings along victim's root path
	preOK  bool // PrepareBackground has run for the current victim
	preHas bool // pre holds a payload (false only for N == 1)
	par    int  // worker pool bound for level-parallel recomputation
	bug    Buggify
	stats  Stats
}

type rtnode[T any] struct {
	payload T
	void    bool
}

// NewRotating returns a rotating tree for a window of n buckets.
func NewRotating[T any](merge MergeFunc[T], n int) *RotatingTree[T] {
	if n < 1 {
		n = 1
	}
	pad := ceilPow2(n)
	return &RotatingTree[T]{
		merge:  merge,
		n:      n,
		pad:    pad,
		height: ceilLog2(pad),
		nodes:  make([]rtnode[T], 2*pad-1),
		victim: 0,
		par:    1,
	}
}

// SetParallelism bounds the worker pool used by Init's level-by-level
// build and PrepareBackground's balanced pre-combine (1 = sequential).
// The merge must be pure and alias-free to run with par > 1; rotating
// trees already require it to be associative and commutative.
func (t *RotatingTree[T]) SetParallelism(par int) { t.par = normalizeParallelism(par) }

// Init performs the initial run: it installs the first full window of
// buckets (len(buckets) must equal N) and builds the balanced tree with
// pairwise combiner applications.
func (t *RotatingTree[T]) Init(buckets []T) error {
	if len(buckets) != t.n {
		return ErrWindowNotFull
	}
	for i := range t.nodes {
		var zero T
		t.nodes[i] = rtnode[T]{payload: zero, void: true}
	}
	for i, b := range buckets {
		leaf := t.leafIndex(i)
		t.nodes[leaf] = rtnode[T]{payload: b}
	}
	// Build level by level from the deepest internal row upward; the
	// heap nodes of one level [2^d−1, 2^{d+1}−2] have disjoint children,
	// so each level recomputes concurrently over the worker pool.
	for d := t.height - 1; d >= 0; d-- {
		first := (1 << d) - 1
		width := 1 << d
		parallelFor(t.par, width, &t.stats, func(i int, shard *Stats) {
			t.recomputeNode(first+i, shard)
		})
	}
	t.victim = 0
	t.filled = true
	t.preOK = false
	return nil
}

// leafIndex maps a bucket position to its heap index.
func (t *RotatingTree[T]) leafIndex(pos int) int { return t.pad - 1 + pos }

// recomputeNode recombines heap node i from its children, counting work
// into st (a per-worker shard under parallel recomputation).
func (t *RotatingTree[T]) recomputeNode(i int, st *Stats) {
	l, r := 2*i+1, 2*i+2
	ln, rn := t.nodes[l], t.nodes[r]
	switch {
	case ln.void && rn.void:
		var zero T
		t.nodes[i] = rtnode[T]{payload: zero, void: true}
	case ln.void:
		t.nodes[i] = rtnode[T]{payload: rn.payload}
	case rn.void:
		t.nodes[i] = rtnode[T]{payload: ln.payload}
	default:
		t.nodes[i] = rtnode[T]{payload: t.merge(ln.payload, rn.payload)}
		st.Merges++
	}
	st.NodesRecomputed++
}

// Rotate replaces the oldest bucket with b and updates the root path
// (foreground-only mode, Figure 4a).
func (t *RotatingTree[T]) Rotate(b T) error {
	if !t.filled {
		return ErrWindowNotFull
	}
	i := t.leafIndex(t.victim)
	t.nodes[i] = rtnode[T]{payload: b}
	// The root path has one node per level — inherently sequential.
	for i > 0 {
		i = (i - 1) / 2
		t.recomputeNode(i, &t.stats)
	}
	t.victim = (t.victim + 1) % t.n
	t.preOK = false
	return nil
}

// PrepareBackground pre-combines all sibling payloads along the next
// victim's root path (the payload I of Figure 4b). It is the background
// pre-processing step of split mode and must be called before
// RotateForeground.
func (t *RotatingTree[T]) PrepareBackground() error {
	if !t.filled {
		return ErrWindowNotFull
	}
	i := t.leafIndex(t.victim)
	sibs := make([]T, 0, t.height)
	for i > 0 {
		sib := i - 1
		if i%2 == 1 { // i is a left child; sibling is to the right
			sib = i + 1
		}
		if !t.nodes[sib].void {
			sibs = append(sibs, t.nodes[sib].payload)
		}
		i = (i - 1) / 2
	}
	if t.bug&BuggifyRotatingDropSibling != 0 && len(sibs) > 1 {
		// Fault injection (simulation-harness self-test): elide one
		// pairwise merge from the pre-combined payload.
		sibs = sibs[:len(sibs)-1]
	}
	// Pre-combine the collected siblings; the balanced parallel
	// reduction re-associates, which the required associative +
	// commutative merge permits, with the same merge count.
	t.pre, t.preHas = reduceOrdered(t.par, t.merge, sibs, &t.stats)
	t.preOK = true
	return nil
}

// RotateForeground performs the foreground step of split mode: it merges
// the new bucket with the pre-combined payload I and returns the window's
// combined result without touching the tree. Call Background afterwards
// (off the critical path) to install the bucket and prepare the next run.
func (t *RotatingTree[T]) RotateForeground(b T) (T, error) {
	if !t.preOK {
		var zero T
		return zero, ErrNotPrepared
	}
	if !t.preHas {
		return b, nil
	}
	t.stats.Merges++
	return t.merge(b, t.pre), nil
}

// Background installs the bucket handed to the last RotateForeground into
// the tree, recomputes its root path, and pre-combines for the next slide.
// It is the background half of split mode.
func (t *RotatingTree[T]) Background(b T) error {
	if err := t.Rotate(b); err != nil {
		return err
	}
	return t.PrepareBackground()
}

// Root returns the combined payload of the whole window.
func (t *RotatingTree[T]) Root() (T, bool) {
	if !t.filled || t.nodes[0].void {
		var zero T
		return zero, false
	}
	return t.nodes[0].payload, true
}

// Buckets returns the number of buckets in the window.
func (t *RotatingTree[T]) Buckets() int { return t.n }

// Height returns the tree height.
func (t *RotatingTree[T]) Height() int { return t.height }

// Victim returns the position of the bucket the next slide replaces.
func (t *RotatingTree[T]) Victim() int { return t.victim }

// Stats returns the accumulated work counters.
func (t *RotatingTree[T]) Stats() Stats { return t.stats }

// ResetStats clears the work counters.
func (t *RotatingTree[T]) ResetStats() { t.stats = Stats{} }

// NodeCount returns the number of non-void materialized nodes (space
// accounting for Figure 13c).
func (t *RotatingTree[T]) NodeCount() int {
	c := 0
	for i := range t.nodes {
		if !t.nodes[i].void {
			c++
		}
	}
	if t.preOK && t.preHas {
		c++
	}
	return c
}

// ForEachPayload visits every non-void node payload (space accounting).
func (t *RotatingTree[T]) ForEachPayload(fn func(T)) {
	for i := range t.nodes {
		if !t.nodes[i].void {
			fn(t.nodes[i].payload)
		}
	}
	if t.preOK && t.preHas {
		fn(t.pre)
	}
}

// BucketPayloads returns the current bucket payloads in leaf-position
// order (checkpointing support). It returns nil before the window fills.
func (t *RotatingTree[T]) BucketPayloads() ([]T, bool) {
	if !t.filled {
		return nil, false
	}
	out := make([]T, t.n)
	for i := 0; i < t.n; i++ {
		out[i] = t.nodes[t.leafIndex(i)].payload
	}
	return out, true
}

// RestoreAt reinstates a checkpointed window: the buckets in leaf-position
// order plus the next victim position. The internal nodes are recombined.
// Work counters restart from zero (plus the rebuild itself), so a restored
// tree's Stats match a fresh tree restored from the same checkpoint.
func (t *RotatingTree[T]) RestoreAt(buckets []T, victim int) error {
	if victim < 0 || victim >= t.n {
		return ErrWindowNotFull
	}
	t.stats = Stats{}
	if err := t.Init(buckets); err != nil {
		return err
	}
	t.victim = victim
	return nil
}
