package core

// MultiLevel implements the later-stage machinery of the paper's
// multi-level trees (§5). Stages after the first in a pipelined query see
// input changes at arbitrary positions, not at window ends, so they
// cannot use the sliding-window trees; instead each stage
//
//  1. addresses its inputs by content fingerprint, reusing the memoized
//     computation (e.g. a map task's output) for any input whose
//     fingerprint is unchanged since the previous run, and
//  2. aggregates the per-input results through per-partition strawman
//     trees whose leaf identities are those fingerprints — so unchanged
//     input pairs reuse their combined subtrees, and changes propagate
//     along O(log n) paths.
//
// The memo is generational: entries not referenced by the current run are
// dropped, bounding state to the live inputs.
//
// MultiLevel is not safe for concurrent use.
type MultiLevel[T any] struct {
	parts int
	memo  map[uint64][]T
	straw []*StrawmanTree[T]
	stats MultiLevelStats
}

// MultiLevelStats counts one or more runs' reuse behaviour.
type MultiLevelStats struct {
	// InputsComputed counts inputs whose compute function ran.
	InputsComputed int64
	// InputsReused counts inputs served from the fingerprint memo.
	InputsReused int64
}

// NewMultiLevel returns an empty multi-level stage aggregating into
// `partitions` strawman trees with the given merge function.
func NewMultiLevel[T any](merge MergeFunc[T], partitions int) *MultiLevel[T] {
	if partitions < 1 {
		partitions = 1
	}
	m := &MultiLevel[T]{
		parts: partitions,
		memo:  make(map[uint64][]T),
		straw: make([]*StrawmanTree[T], partitions),
	}
	for i := range m.straw {
		m.straw[i] = NewStrawman(merge)
	}
	return m
}

// Run executes one stage pass over content-addressed inputs. fps[i] is
// input i's content fingerprint; compute(i) produces input i's
// per-partition payloads (len == Partitions()) and runs only for
// fingerprints absent from the memo. It returns each partition's root
// payload (ok reports presence).
func (m *MultiLevel[T]) Run(fps []uint64, compute func(i int) ([]T, error)) ([]T, []bool, error) {
	nextMemo := make(map[uint64][]T, len(fps))
	leaves := make([][]Item[T], m.parts)
	for i, fp := range fps {
		payloads, ok := m.memo[fp]
		if !ok {
			payloads, ok = nextMemo[fp]
		}
		if ok {
			m.stats.InputsReused++
		} else {
			var err error
			payloads, err = compute(i)
			if err != nil {
				return nil, nil, err
			}
			if len(payloads) != m.parts {
				return nil, nil, ErrPartitionMismatch
			}
			m.stats.InputsComputed++
		}
		nextMemo[fp] = payloads
		for p := 0; p < m.parts; p++ {
			leaves[p] = append(leaves[p], Item[T]{ID: fp, Payload: payloads[p]})
		}
	}
	m.memo = nextMemo

	roots := make([]T, m.parts)
	ok := make([]bool, m.parts)
	for p := 0; p < m.parts; p++ {
		m.straw[p].Build(leaves[p])
		roots[p], ok[p] = m.straw[p].Root()
	}
	return roots, ok, nil
}

// Partitions returns the stage's reduce parallelism.
func (m *MultiLevel[T]) Partitions() int { return m.parts }

// Stats returns the cumulative reuse counters.
func (m *MultiLevel[T]) Stats() MultiLevelStats { return m.stats }

// TreeStats sums the underlying strawman trees' work counters.
func (m *MultiLevel[T]) TreeStats() Stats {
	var total Stats
	for _, t := range m.straw {
		total.add(t.Stats())
	}
	return total
}

// MemoEntries returns the number of memoized inputs retained.
func (m *MultiLevel[T]) MemoEntries() int { return len(m.memo) }
