package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStrawmanBuild(t *testing.T) {
	for _, m := range []int{1, 2, 3, 5, 8, 17, 64} {
		tr := NewStrawman(concat)
		if !tr.Build(seqItems(0, m)) {
			t.Fatalf("m=%d: build reported empty", m)
		}
		root, ok := tr.Root()
		if !ok {
			t.Fatalf("m=%d: no root", m)
		}
		wantSeq(t, root, 0, m)
	}
}

func TestStrawmanEmpty(t *testing.T) {
	tr := NewStrawman(concat)
	if tr.Build(nil) {
		t.Fatal("empty build should report false")
	}
	if _, ok := tr.Root(); ok {
		t.Fatal("empty tree should have no root")
	}
}

func TestStrawmanFullReuseOnIdenticalRebuild(t *testing.T) {
	tr := NewStrawman(concat)
	tr.Build(seqItems(0, 32))
	tr.ResetStats()
	tr.Build(seqItems(0, 32))
	s := tr.Stats()
	if s.Merges != 0 {
		t.Fatalf("identical rebuild performed %d merges, want 0", s.Merges)
	}
	if s.NodesReused == 0 {
		t.Fatal("identical rebuild reused nothing")
	}
}

func TestStrawmanShiftBreaksReuse(t *testing.T) {
	// The strawman's defining weakness (§2, §9): a slide shifts leaf
	// positions, re-pairing everything, so merge work is Θ(window).
	const n = 1 << 10
	tr := NewStrawman(concat)
	tr.Build(seqItems(0, n))
	tr.ResetStats()
	tr.Build(seqItems(1, n+1)) // slide by one
	s := tr.Stats()
	if s.Merges < int64(n)/2 {
		t.Fatalf("merges = %d after a shift; strawman should recompute Θ(n)", s.Merges)
	}
}

func TestStrawmanAppendOnlyReusesPrefix(t *testing.T) {
	// Pure appends keep even-aligned pairs intact: reuse should be high.
	const n = 1 << 10
	tr := NewStrawman(concat)
	tr.Build(seqItems(0, n))
	tr.ResetStats()
	tr.Build(seqItems(0, n+2))
	s := tr.Stats()
	if s.Merges > 64 {
		t.Fatalf("merges = %d after aligned append, want O(log n)", s.Merges)
	}
}

func TestStrawmanMemoGC(t *testing.T) {
	tr := NewStrawman(concat)
	tr.Build(seqItems(0, 64))
	before := tr.NodeCount()
	// A disjoint window leaves nothing to reuse; the memo must not
	// accumulate entries from both generations.
	tr.Build(seqItems(1000, 1064))
	after := tr.NodeCount()
	if after > before+4 {
		t.Fatalf("memo grew from %d to %d; generational GC broken", before, after)
	}
}

// TestStrawmanPropertyOrdering checks root ordering for random windows.
func TestStrawmanPropertyOrdering(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := NewStrawman(concat)
		lo := rng.Intn(100)
		hi := lo + 1 + rng.Intn(100)
		for step := 0; step < 10; step++ {
			tr.Build(seqItems(lo, hi))
			root, ok := tr.Root()
			if !ok || len(root) != hi-lo {
				return false
			}
			for i, v := range root {
				if v != lo+i {
					return false
				}
			}
			lo += rng.Intn(3)
			hi += rng.Intn(5)
			if lo >= hi {
				hi = lo + 1
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCeilLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 16: 4, 17: 5, 1024: 10}
	for n, want := range cases {
		if got := ceilLog2(n); got != want {
			t.Errorf("ceilLog2(%d) = %d, want %d", n, got, want)
		}
	}
	if got := ceilPow2(5); got != 8 {
		t.Errorf("ceilPow2(5) = %d, want 8", got)
	}
	if got := ceilPow2(8); got != 8 {
		t.Errorf("ceilPow2(8) = %d, want 8", got)
	}
}
