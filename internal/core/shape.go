package core

// TreeShape is a structural snapshot of one contraction tree, taken for
// live introspection (the obs server's /debug/tree): the §3 shape
// invariants — height tracking ⌈log2 M⌉, void padding, per-level node
// population — rendered as plain numbers an operator can read while the
// system runs.
type TreeShape struct {
	// Variant names the tree kind ("folding", "rotating", ...).
	Variant string
	// Height is the tree height in edges (0 for a single node).
	Height int
	// Live is the number of live leaves/buckets in the window.
	Live int
	// Nodes is the number of materialized (non-void) node payloads.
	Nodes int
	// Levels holds the materialized-node count per level, root first —
	// only for variants with an explicit stratified structure (folding,
	// rotating); nil for the memo-table variants.
	Levels []int
}

// Shape returns the folding tree's structural snapshot.
func (t *FoldingTree[T]) Shape() TreeShape {
	s := TreeShape{Variant: "folding", Height: t.Height(), Live: t.Live()}
	if t.root == nil {
		return s
	}
	cur := []*fnode[T]{t.root}
	for len(cur) > 0 {
		var next []*fnode[T]
		level := 0
		for _, n := range cur {
			if !n.void {
				level++
			}
			if n.left != nil {
				next = append(next, n.left, n.right)
			}
		}
		s.Levels = append(s.Levels, level)
		s.Nodes += level
		cur = next
	}
	return s
}

// Shape returns the rotating tree's structural snapshot.
func (t *RotatingTree[T]) Shape() TreeShape {
	s := TreeShape{Variant: "rotating", Height: t.height}
	if t.filled {
		s.Live = t.n
	}
	for d := 0; d <= t.height; d++ {
		first := (1 << d) - 1
		width := 1 << d
		level := 0
		for i := first; i < first+width && i < len(t.nodes); i++ {
			if !t.nodes[i].void {
				level++
			}
		}
		s.Levels = append(s.Levels, level)
		s.Nodes += level
	}
	if t.preOK && t.preHas {
		s.Nodes++
	}
	return s
}

// Shape returns the DABA Lite aggregator's structural snapshot (height
// 0: a flat ring of per-bucket aggregates, no tree).
func (t *DabaLite[T]) Shape() TreeShape {
	s := TreeShape{Variant: "daba", Live: t.Len(), Nodes: t.NodeCount()}
	if s.Live > 0 {
		s.Levels = []int{s.Live}
	}
	return s
}

// Shape returns the finger tree's structural snapshot: a balanced
// search tree over the window buckets, one materialized value and one
// cached aggregate per node. Nodes are not stratified by level (treap
// depth varies per node), so Levels is nil.
func (t *FingerTree[T]) Shape() TreeShape {
	return TreeShape{
		Variant: "fingertree",
		Height:  t.Height(),
		Live:    t.Len(),
		Nodes:   t.NodeCount(),
	}
}

// Shape returns the coalescing accumulator's structural snapshot (height
// 0: the window collapses to at most a root and a pending payload).
func (c *CoalescingTree[T]) Shape() TreeShape {
	s := TreeShape{Variant: "coalescing", Nodes: c.NodeCount()}
	if c.hasRoot {
		s.Live = 1
		s.Levels = []int{1}
	}
	return s
}

// Shape returns the randomized folding tree's structural snapshot. The
// memoized payloads are keyed by signature, not stratified by level, so
// Levels is nil; Height is the expected-log2 height of the last build.
func (t *RandomizedFoldingTree[T]) Shape() TreeShape {
	return TreeShape{
		Variant: "randomized-folding",
		Height:  t.height,
		Live:    len(t.leaves),
		Nodes:   len(t.memo),
	}
}

// Shape returns the strawman tree's structural snapshot: the balanced
// tree over the last Build's leaves, with the memo table as its node
// population.
func (t *StrawmanTree[T]) Shape() TreeShape {
	s := TreeShape{Variant: "strawman", Live: t.live, Nodes: len(t.memo)}
	if t.live > 1 {
		s.Height = ceilLog2(t.live)
	}
	return s
}
