package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func seqItems(lo, hi int) []Item[[]int] {
	out := make([]Item[[]int], 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, Item[[]int]{ID: uint64(i), Payload: []int{i}})
	}
	return out
}

func TestRandomizedInit(t *testing.T) {
	for _, m := range []int{1, 2, 3, 5, 8, 16, 100} {
		tr := NewRandomizedFolding(concat, 42)
		tr.Init(seqItems(0, m))
		root, ok := tr.Root()
		if !ok {
			t.Fatalf("m=%d: no root", m)
		}
		wantSeq(t, root, 0, m)
		if tr.Live() != m {
			t.Fatalf("m=%d: live %d", m, tr.Live())
		}
	}
}

func TestRandomizedEmpty(t *testing.T) {
	tr := NewRandomizedFolding(concat, 42)
	tr.Init(nil)
	if _, ok := tr.Root(); ok {
		t.Fatal("empty tree should have no root")
	}
	if err := tr.Slide(0, seqItems(0, 3)); err != nil {
		t.Fatal(err)
	}
	root, _ := tr.Root()
	wantSeq(t, root, 0, 3)
}

func TestRandomizedSlide(t *testing.T) {
	tr := NewRandomizedFolding(concat, 42)
	tr.Init(seqItems(0, 16))
	if err := tr.Slide(2, seqItems(16, 18)); err != nil {
		t.Fatal(err)
	}
	root, _ := tr.Root()
	wantSeq(t, root, 2, 18)
}

func TestRandomizedUnderflow(t *testing.T) {
	tr := NewRandomizedFolding(concat, 42)
	tr.Init(seqItems(0, 4))
	if err := tr.Slide(5, nil); err != ErrUnderflow {
		t.Fatalf("err = %v, want ErrUnderflow", err)
	}
}

func TestRandomizedExpectedHeight(t *testing.T) {
	// Expected height is log2(n); check it stays within a generous
	// constant factor across seeds.
	const n = 1 << 12
	for seed := uint64(1); seed <= 5; seed++ {
		tr := NewRandomizedFolding(concat, seed)
		tr.Init(seqItems(0, n))
		h := tr.Height()
		if h < 6 || h > 40 {
			t.Fatalf("seed %d: height %d out of expected range for n=%d", seed, h, n)
		}
	}
}

func TestRandomizedHeightDropsWithWindow(t *testing.T) {
	// The §3.2 scenario: shrink the window from n to a tiny remainder;
	// the randomized tree's height must track the *current* size.
	const n = 1 << 10
	tr := NewRandomizedFolding(concat, 7)
	tr.Init(seqItems(0, n))
	tall := tr.Height()
	if err := tr.Slide(n-4, nil); err != nil {
		t.Fatal(err)
	}
	if tr.Height() >= tall {
		t.Fatalf("height %d did not drop from %d after shrinking to 4 leaves", tr.Height(), tall)
	}
	if tr.Height() > 6 {
		t.Fatalf("height %d too large for 4 leaves", tr.Height())
	}
	root, _ := tr.Root()
	wantSeq(t, root, n-4, n)
}

func TestRandomizedReuseOnUnchangedSuffix(t *testing.T) {
	// Sliding by a small delta must reuse most interior payloads: the
	// merge count per slide should be near the height, not the size.
	const n = 1 << 12
	tr := NewRandomizedFolding(concat, 99)
	tr.Init(seqItems(0, n))
	tr.ResetStats()
	if err := tr.Slide(1, seqItems(n, n+1)); err != nil {
		t.Fatal(err)
	}
	s := tr.Stats()
	// Group sizes are geometric; paths from two changed leaves touch
	// O(height) groups of expected size 2. Allow a wide margin.
	if s.Merges > 40*int64(tr.Height()+1) {
		t.Fatalf("merges = %d for a 1-in-%d slide (height %d): no reuse?", s.Merges, n, tr.Height())
	}
	if s.NodesReused == 0 {
		t.Fatal("no nodes reused on a tiny slide")
	}
}

func TestRandomizedDeterministicAcrossRebuilds(t *testing.T) {
	// Two trees with the same seed and the same final window must agree
	// on structure (height) and root payload, regardless of history —
	// the skip-list history-independence property.
	a := NewRandomizedFolding(concat, 5)
	a.Init(seqItems(0, 64))
	if err := a.Slide(32, seqItems(64, 80)); err != nil {
		t.Fatal(err)
	}

	b := NewRandomizedFolding(concat, 5)
	b.Init(seqItems(32, 80))

	ra, _ := a.Root()
	rb, _ := b.Root()
	if len(ra) != len(rb) {
		t.Fatalf("root sizes differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("roots differ at %d", i)
		}
	}
	if a.Height() != b.Height() {
		t.Fatalf("heights differ: %d vs %d (structure is history-dependent)", a.Height(), b.Height())
	}
}

// TestRandomizedPropertyRandomSlides drives random slides and checks the
// root ordering invariant.
func TestRandomizedPropertyRandomSlides(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := NewRandomizedFolding(concat, uint64(seed)+1)
		m := 1 + rng.Intn(40)
		tr.Init(seqItems(0, m))
		lo, hi := 0, m
		for step := 0; step < 25; step++ {
			drop := rng.Intn(hi - lo + 1)
			add := rng.Intn(15)
			if err := tr.Slide(drop, seqItems(hi, hi+add)); err != nil {
				return false
			}
			lo += drop
			hi += add
			root, ok := tr.Root()
			if lo == hi {
				if ok {
					return false
				}
				continue
			}
			if !ok || len(root) != hi-lo {
				return false
			}
			for i, v := range root {
				if v != lo+i {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
