package core

import (
	"testing"
	"testing/quick"
)

func TestCoalescingAppend(t *testing.T) {
	tr := NewCoalescing(concat)
	if _, ok := tr.Root(); ok {
		t.Fatal("empty tree should have no root")
	}
	root := tr.Append([]int{0})
	wantSeq(t, root, 0, 1)
	root = tr.Append([]int{1})
	wantSeq(t, root, 0, 2)
	root = tr.Append([]int{2})
	wantSeq(t, root, 0, 3)
	if s := tr.Stats(); s.Merges != 2 {
		t.Fatalf("merges = %d, want 2 (one per append after the first)", s.Merges)
	}
}

func TestCoalescingSplitProcessing(t *testing.T) {
	tr := NewCoalescing(concat)
	union := tr.AppendSplit([]int{0})
	if len(union) != 1 {
		t.Fatalf("first split append union has %d payloads, want 1", len(union))
	}
	if !tr.Pending() {
		t.Fatal("append should be pending")
	}
	tr.Background()
	if tr.Pending() {
		t.Fatal("background did not clear pending")
	}
	root, _ := tr.Root()
	wantSeq(t, root, 0, 1)

	union = tr.AppendSplit([]int{1})
	if len(union) != 2 {
		t.Fatalf("union has %d payloads, want 2 (old root + C')", len(union))
	}
	// The union, concatenated, must be the full window even before the
	// background step runs.
	joined := concat(union[0], union[1])
	wantSeq(t, joined, 0, 2)
	tr.Background()
	root, _ = tr.Root()
	wantSeq(t, root, 0, 2)
}

func TestCoalescingForegroundIsZeroMerges(t *testing.T) {
	tr := NewCoalescing(concat)
	tr.Append([]int{0})
	tr.ResetStats()
	tr.AppendSplit([]int{1})
	if s := tr.Stats(); s.Merges != 0 {
		t.Fatalf("foreground merges = %d, want 0", s.Merges)
	}
	tr.Background()
	if s := tr.Stats(); s.Merges != 1 {
		t.Fatalf("after background merges = %d, want 1", s.Merges)
	}
}

func TestCoalescingPendingAutoFold(t *testing.T) {
	// Appending without running Background must still produce a correct
	// window: the pending payload is folded in automatically.
	tr := NewCoalescing(concat)
	tr.AppendSplit([]int{0})
	root := tr.Append([]int{1})
	wantSeq(t, root, 0, 2)

	tr2 := NewCoalescing(concat)
	tr2.AppendSplit([]int{0})
	union := tr2.AppendSplit([]int{1})
	joined := union[0]
	for _, u := range union[1:] {
		joined = concat(joined, u)
	}
	wantSeq(t, joined, 0, 2)
}

// TestCoalescingPropertyEquivalence: split mode and plain mode produce the
// same window for any append sequence.
func TestCoalescingPropertyEquivalence(t *testing.T) {
	property := func(sizes []uint8) bool {
		if len(sizes) == 0 {
			return true
		}
		plain := NewCoalescing(concat)
		split := NewCoalescing(concat)
		next := 0
		for _, s := range sizes {
			k := int(s%5) + 1
			payload := make([]int, 0, k)
			for i := 0; i < k; i++ {
				payload = append(payload, next)
				next++
			}
			plain.Append(payload)
			union := split.AppendSplit(payload)
			joined := union[0]
			for _, u := range union[1:] {
				joined = concat(joined, u)
			}
			split.Background()
			pr, _ := plain.Root()
			sr, _ := split.Root()
			if len(pr) != len(sr) || len(pr) != len(joined) {
				return false
			}
			for i := range pr {
				if pr[i] != sr[i] || pr[i] != joined[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCoalescingNodeCount(t *testing.T) {
	tr := NewCoalescing(concat)
	if tr.NodeCount() != 0 {
		t.Fatal("empty tree should hold no payloads")
	}
	tr.Append([]int{0})
	if tr.NodeCount() != 1 {
		t.Fatalf("node count = %d, want 1", tr.NodeCount())
	}
	tr.AppendSplit([]int{1})
	if tr.NodeCount() != 2 {
		t.Fatalf("node count with pending = %d, want 2", tr.NodeCount())
	}
	tr.Background()
	if tr.NodeCount() != 1 {
		t.Fatalf("node count after background = %d, want 1", tr.NodeCount())
	}
}

// TestCoalescingRestoreResetsStats: a restored tree must be
// indistinguishable from a fresh tree restored from the same checkpoint —
// in particular, Restore must not carry over the pre-crash run's work
// counters or pending-payload bookkeeping (NodeCount).
func TestCoalescingRestoreResetsStats(t *testing.T) {
	tr := NewCoalescing(concat)
	for i := 0; i < 5; i++ {
		tr.Append([]int{i})
	}
	if s := tr.Stats(); s.Merges == 0 {
		t.Fatal("expected nonzero pre-checkpoint work")
	}
	root, hasRoot := tr.Root()
	pending, hasPend := tr.PendingPayload()

	// In-place restore (the crash-recovery path restores into whatever
	// tree instance the runtime allocated).
	tr.Restore(root, hasRoot, pending, hasPend)
	fresh := NewCoalescing(concat)
	fresh.Restore(root, hasRoot, pending, hasPend)

	if got, want := tr.Stats(), fresh.Stats(); got != want {
		t.Fatalf("restored stats %+v != fresh-restored stats %+v", got, want)
	}
	if got := tr.Stats(); got != (Stats{}) {
		t.Fatalf("restore kept pre-crash counters: %+v", got)
	}
	if got, want := tr.NodeCount(), fresh.NodeCount(); got != want {
		t.Fatalf("restored NodeCount %d != fresh-restored %d", got, want)
	}

	// Both trees must behave identically from here on.
	a := tr.Append([]int{5})
	b := fresh.Append([]int{5})
	wantSeq(t, a, 0, 6)
	wantSeq(t, b, 0, 6)
	if tr.Stats() != fresh.Stats() {
		t.Fatalf("post-restore appends diverge: %+v vs %+v", tr.Stats(), fresh.Stats())
	}
}

// TestCoalescingRestoreWithPending restores a checkpoint taken between a
// split-mode append and its background fold.
func TestCoalescingRestoreWithPending(t *testing.T) {
	tr := NewCoalescing(concat)
	tr.Append([]int{0})
	tr.AppendSplit([]int{1}) // pending C′, no background yet
	root, hasRoot := tr.Root()
	pending, hasPend := tr.PendingPayload()
	if !hasPend {
		t.Fatal("expected a pending payload")
	}

	fresh := NewCoalescing(concat)
	fresh.Restore(root, hasRoot, pending, hasPend)
	if fresh.NodeCount() != 2 {
		t.Fatalf("NodeCount = %d, want 2 (root + pending)", fresh.NodeCount())
	}
	fresh.Background()
	got, ok := fresh.Root()
	if !ok {
		t.Fatal("no root after background fold")
	}
	wantSeq(t, got, 0, 2)
	if s := fresh.Stats(); s.Merges != 1 {
		t.Fatalf("merges = %d, want exactly the background fold", s.Merges)
	}
}
