package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// multiset is a commutative merge: element union with counts, checked
// order-insensitively (rotating trees require commutativity, §4.1).
func multiset(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	return out
}

func wantMultiset(t *testing.T, got []int, want []int) {
	t.Helper()
	g := append([]int(nil), got...)
	w := append([]int(nil), want...)
	sort.Ints(g)
	sort.Ints(w)
	if len(g) != len(w) {
		t.Fatalf("root has %d elements, want %d", len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("root multiset mismatch at %d: %d vs %d", i, g[i], w[i])
		}
	}
}

func TestRotatingInit(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 8, 13, 16} {
		tr := NewRotating(multiset, n)
		if err := tr.Init(seqPayloads(0, n)); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		root, ok := tr.Root()
		if !ok {
			t.Fatalf("n=%d: no root", n)
		}
		want := make([]int, n)
		for i := range want {
			want[i] = i
		}
		wantMultiset(t, root, want)
		if h, wantH := tr.Height(), ceilLog2(ceilPow2(n)); h != wantH {
			t.Errorf("n=%d: height %d, want %d", n, h, wantH)
		}
	}
}

func TestRotatingInitWrongSize(t *testing.T) {
	tr := NewRotating(multiset, 4)
	if err := tr.Init(seqPayloads(0, 3)); err != ErrWindowNotFull {
		t.Fatalf("err = %v, want ErrWindowNotFull", err)
	}
}

func TestRotatingBeforeInit(t *testing.T) {
	tr := NewRotating(multiset, 4)
	if err := tr.Rotate([]int{9}); err != ErrWindowNotFull {
		t.Fatalf("Rotate err = %v, want ErrWindowNotFull", err)
	}
	if err := tr.PrepareBackground(); err != ErrWindowNotFull {
		t.Fatalf("PrepareBackground err = %v, want ErrWindowNotFull", err)
	}
	if _, ok := tr.Root(); ok {
		t.Fatal("uninitialized tree should have no root")
	}
}

func TestRotatingSlides(t *testing.T) {
	const n = 4
	tr := NewRotating(multiset, n)
	if err := tr.Init(seqPayloads(0, n)); err != nil {
		t.Fatal(err)
	}
	for next := n; next < n+10; next++ {
		if err := tr.Rotate([]int{next}); err != nil {
			t.Fatal(err)
		}
		root, _ := tr.Root()
		want := make([]int, 0, n)
		for v := next - n + 1; v <= next; v++ {
			want = append(want, v)
		}
		wantMultiset(t, root, want)
	}
}

func TestRotatingWorkIsLogarithmic(t *testing.T) {
	const n = 1024
	tr := NewRotating(multiset, n)
	if err := tr.Init(seqPayloads(0, n)); err != nil {
		t.Fatal(err)
	}
	tr.ResetStats()
	if err := tr.Rotate([]int{n}); err != nil {
		t.Fatal(err)
	}
	if s := tr.Stats(); s.Merges != int64(tr.Height()) {
		t.Fatalf("merges = %d, want exactly height %d", s.Merges, tr.Height())
	}
}

func TestRotatingSplitProcessing(t *testing.T) {
	const n = 8
	tr := NewRotating(multiset, n)
	if err := tr.Init(seqPayloads(0, n)); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.RotateForeground([]int{n}); err != ErrNotPrepared {
		t.Fatalf("foreground without background: err = %v, want ErrNotPrepared", err)
	}
	if err := tr.PrepareBackground(); err != nil {
		t.Fatal(err)
	}
	for next := n; next < n+2*n; next++ {
		fg, err := tr.RotateForeground([]int{next})
		if err != nil {
			t.Fatal(err)
		}
		want := make([]int, 0, n)
		for v := next - n + 1; v <= next; v++ {
			want = append(want, v)
		}
		wantMultiset(t, fg, want)
		if err := tr.Background([]int{next}); err != nil {
			t.Fatal(err)
		}
		// After background, the tree root must agree with the
		// foreground answer.
		root, _ := tr.Root()
		wantMultiset(t, root, want)
	}
}

func TestRotatingForegroundIsOneMerge(t *testing.T) {
	const n = 256
	tr := NewRotating(multiset, n)
	if err := tr.Init(seqPayloads(0, n)); err != nil {
		t.Fatal(err)
	}
	if err := tr.PrepareBackground(); err != nil {
		t.Fatal(err)
	}
	tr.ResetStats()
	if _, err := tr.RotateForeground([]int{n}); err != nil {
		t.Fatal(err)
	}
	if s := tr.Stats(); s.Merges != 1 {
		t.Fatalf("foreground merges = %d, want 1", s.Merges)
	}
}

func TestRotatingSingleBucket(t *testing.T) {
	tr := NewRotating(multiset, 1)
	if err := tr.Init(seqPayloads(0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := tr.PrepareBackground(); err != nil {
		t.Fatal(err)
	}
	fg, err := tr.RotateForeground([]int{7})
	if err != nil {
		t.Fatal(err)
	}
	wantMultiset(t, fg, []int{7})
	if err := tr.Background([]int{7}); err != nil {
		t.Fatal(err)
	}
	root, _ := tr.Root()
	wantMultiset(t, root, []int{7})
}

// TestRotatingPropertyRandom checks window contents across random numbers
// of rotations for random bucket counts.
func TestRotatingPropertyRandom(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		tr := NewRotating(multiset, n)
		if err := tr.Init(seqPayloads(0, n)); err != nil {
			return false
		}
		next := n
		for step := 0; step < 40; step++ {
			if err := tr.Rotate([]int{next}); err != nil {
				return false
			}
			next++
			root, ok := tr.Root()
			if !ok {
				return false
			}
			want := make([]int, 0, n)
			for v := next - n; v < next; v++ {
				want = append(want, v)
			}
			g := append([]int(nil), root...)
			sort.Ints(g)
			if len(g) != len(want) {
				return false
			}
			for i := range g {
				if g[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRotatingVictimAdvances(t *testing.T) {
	tr := NewRotating(multiset, 3)
	if err := tr.Init(seqPayloads(0, 3)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if got, want := tr.Victim(), i%3; got != want {
			t.Fatalf("step %d: victim = %d, want %d", i, got, want)
		}
		if err := tr.Rotate([]int{100 + i}); err != nil {
			t.Fatal(err)
		}
	}
}
