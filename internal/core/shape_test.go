package core

import (
	"testing"
)

func TestFoldingShape(t *testing.T) {
	tr := NewFolding(concat)
	if s := tr.Shape(); s.Variant != "folding" || s.Nodes != 0 || s.Levels != nil {
		t.Fatalf("empty shape = %+v", s)
	}
	tr.Init(seqPayloads(0, 8))
	s := tr.Shape()
	if s.Variant != "folding" || s.Live != 8 || s.Height != 3 {
		t.Fatalf("shape = %+v", s)
	}
	// A full power-of-two window has a perfect tree: 1, 2, 4, 8 per level.
	want := []int{1, 2, 4, 8}
	if len(s.Levels) != len(want) {
		t.Fatalf("levels = %v, want %v", s.Levels, want)
	}
	total := 0
	for i, l := range s.Levels {
		if l != want[i] {
			t.Fatalf("levels = %v, want %v", s.Levels, want)
		}
		total += l
	}
	if s.Nodes != total {
		t.Fatalf("Nodes %d != level sum %d", s.Nodes, total)
	}
	// Dropping leaves voids nodes: materialized counts shrink, the live
	// count tracks the window.
	if err := tr.Slide(3, nil); err != nil {
		t.Fatal(err)
	}
	s = tr.Shape()
	if s.Live != 5 {
		t.Fatalf("live after drop = %d, want 5", s.Live)
	}
	if s.Levels[len(s.Levels)-1] != 5 {
		t.Fatalf("leaf level %v, want 5 live leaves", s.Levels)
	}
}

func TestRotatingShape(t *testing.T) {
	tr := NewRotating(concat, 4)
	if err := tr.Init(seqPayloads(0, 4)); err != nil {
		t.Fatal(err)
	}
	s := tr.Shape()
	if s.Variant != "rotating" || s.Live != 4 || s.Height != 2 {
		t.Fatalf("shape = %+v", s)
	}
	if len(s.Levels) != 3 || s.Levels[0] != 1 || s.Levels[2] != 4 {
		t.Fatalf("levels = %v", s.Levels)
	}
	if err := tr.Rotate([]int{4}); err != nil {
		t.Fatal(err)
	}
	if s = tr.Shape(); s.Live != 4 {
		t.Fatalf("live after rotate = %d, want 4 (fixed width)", s.Live)
	}
}

func TestCoalescingShape(t *testing.T) {
	tr := NewCoalescing(concat)
	if s := tr.Shape(); s.Variant != "coalescing" || s.Live != 0 {
		t.Fatalf("empty shape = %+v", s)
	}
	tr.Append([]int{1})
	tr.Append([]int{2})
	tr.Background()
	s := tr.Shape()
	if s.Live != 1 || s.Nodes == 0 {
		t.Fatalf("shape = %+v, want a materialized root", s)
	}
}

func TestRandomizedFoldingShape(t *testing.T) {
	tr := NewRandomizedFolding[[]int](concat, 42)
	tr.Init(seqItems(0, 16))
	s := tr.Shape()
	if s.Variant != "randomized-folding" || s.Live != 16 {
		t.Fatalf("shape = %+v", s)
	}
	if s.Nodes == 0 || s.Height == 0 {
		t.Fatalf("shape = %+v, want materialized memo nodes and height", s)
	}
	if s.Levels != nil {
		t.Fatalf("randomized tree has no stratified levels, got %v", s.Levels)
	}
}

func TestStrawmanShape(t *testing.T) {
	tr := NewStrawman[[]int](concat)
	tr.Build(seqItems(0, 8))
	s := tr.Shape()
	if s.Variant != "strawman" || s.Live != 8 || s.Height != 3 {
		t.Fatalf("shape = %+v", s)
	}
	if s.Nodes == 0 {
		t.Fatalf("strawman memo empty after build")
	}
}
