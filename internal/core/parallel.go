package core

import (
	"sync"
	"sync/atomic"
)

// This file is the parallel contraction engine: level-by-level
// recomputation of dirty tree regions over a bounded worker pool.
//
// Every contraction tree recomputes nodes in frontier levels whose
// members have pairwise-disjoint children, so the combines of one level
// are independent and can run concurrently — the same DAG-parallelism
// that SWAG-style sliding-window aggregators exploit. Correctness
// requires the merge function to be pure and alias-free: it must not
// mutate its arguments and must return a payload that shares no mutable
// state with them (mapreduce.MergeOrdered guarantees this for the
// runtime's payloads, and mapreduce.CheckJob verifies a job's combiner).
//
// Work counters are never shared between workers: each worker owns a
// private Stats shard, merged into the tree's totals after the pool
// drains, so the engine is race-free even under `go test -race`.

// parallelFor runs fn(i, shard) for every i in [0, n), spread over at
// most par workers pulling indices from a shared atomic cursor (work
// stealing, since merge costs are data-dependent and uneven). Each
// worker gets its own Stats shard; shards are merged into total once all
// workers finish. par ≤ 1 (or a single item) degrades to a plain inline
// loop writing total directly, preserving the exact sequential behavior.
func parallelFor(par, n int, total *Stats, fn func(i int, shard *Stats)) {
	if n <= 0 {
		return
	}
	if par > n {
		par = n
	}
	if par <= 1 {
		for i := 0; i < n; i++ {
			fn(i, total)
		}
		return
	}
	shards := make([]Stats, par)
	var cursor int64
	var wg sync.WaitGroup
	wg.Add(par)
	for w := 0; w < par; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&cursor, 1)) - 1
				if i >= n {
					return
				}
				fn(i, &shards[w])
			}
		}(w)
	}
	wg.Wait()
	for i := range shards {
		total.add(shards[i])
	}
}

// reduceOrdered folds items into a single payload, preserving
// left-to-right order. With par ≤ 1 it is a plain left fold; otherwise
// it combines adjacent pairs in parallel rounds (a balanced reduction),
// which yields the same result for any associative merge and performs
// exactly len(items)−1 merge calls either way. Merge counts accumulate
// into total via per-worker shards.
func reduceOrdered[T any](par int, merge MergeFunc[T], items []T, total *Stats) (T, bool) {
	switch len(items) {
	case 0:
		var zero T
		return zero, false
	case 1:
		return items[0], true
	}
	if par <= 1 {
		acc := items[0]
		for _, it := range items[1:] {
			acc = merge(acc, it)
			total.Merges++
		}
		return acc, true
	}
	buf := append([]T(nil), items...)
	for len(buf) > 1 {
		pairs := len(buf) / 2
		out := make([]T, (len(buf)+1)/2)
		parallelFor(par, pairs, total, func(i int, shard *Stats) {
			out[i] = merge(buf[2*i], buf[2*i+1])
			shard.Merges++
		})
		if len(buf)%2 == 1 {
			out[len(out)-1] = buf[len(buf)-1]
		}
		buf = out
	}
	return buf[0], true
}

// ReduceOrdered combines items left-to-right into one payload using
// merge, pairing adjacent elements in parallel rounds of at most par
// workers (par ≤ 1 folds sequentially). The merge must be associative —
// window order is preserved, but association is not — and must be pure
// and alias-free when par > 1. It reports false for an empty slice.
func ReduceOrdered[T any](par int, merge MergeFunc[T], items []T) (T, bool) {
	var st Stats
	return reduceOrdered(par, merge, items, &st)
}

// KMergeFunc combines any number of payloads in a single pass, preserving
// left-to-right window order. It must be equivalent to folding an
// associative binary merge over the items (the combiner's multi-argument
// associativity), and — like MergeFunc under parallel execution — pure
// and alias-free.
type KMergeFunc[T any] func(items []T) T

// kMergeLeafWidth is the number of items batched into one K-way merge at
// the leaf level of ReduceOrderedK. It is a fixed constant — never derived
// from the worker count — so batch boundaries, combiner-call counts, and
// value association are identical at any parallelism, preserving the
// engine's contract that outputs and work counters do not depend on how
// the work was scheduled.
const kMergeLeafWidth = 64

// ReduceOrderedK folds items into a single payload through K-way merges:
// the leaf level batches fixed-width runs of kMergeLeafWidth items into
// one kmerge call each (the batches run concurrently over at most par
// workers), and the surviving batch roots are folded the same way until
// one payload remains. For the common fold-up sizes (new splits of a
// slide, bucket widths) this is a single kmerge call — one pass, one
// output allocation — where the pairwise reduction allocated an
// intermediate payload per merge. It reports false for an empty slice; a
// single item is returned as-is, exactly as the pairwise reduction did.
func ReduceOrderedK[T any](par int, kmerge KMergeFunc[T], items []T) (T, bool) {
	switch len(items) {
	case 0:
		var zero T
		return zero, false
	case 1:
		return items[0], true
	}
	var scratch Stats // batch counts are not tree work; discarded
	for len(items) > kMergeLeafWidth {
		chunks := (len(items) + kMergeLeafWidth - 1) / kMergeLeafWidth
		out := make([]T, chunks)
		src := items
		parallelFor(par, chunks, &scratch, func(i int, _ *Stats) {
			lo := i * kMergeLeafWidth
			hi := lo + kMergeLeafWidth
			if hi > len(src) {
				hi = len(src)
			}
			if hi-lo == 1 {
				out[i] = src[lo]
			} else {
				out[i] = kmerge(src[lo:hi])
			}
		})
		items = out
	}
	return kmerge(items), true
}

// normalizeParallelism clamps a parallelism knob to ≥ 1.
func normalizeParallelism(par int) int {
	if par < 1 {
		return 1
	}
	return par
}
