package core

import (
	"math/rand"
	"reflect"
	"testing"
)

func checkFingerRoot(t *testing.T, f *FingerTree[[]int], live [][]int, step int) {
	t.Helper()
	want := dabaOracle(live)
	got, ok := f.Root()
	if len(live) == 0 {
		if ok {
			t.Fatalf("step %d: Root ok on empty tree, got %v", step, got)
		}
		return
	}
	if !ok {
		t.Fatalf("step %d: Root not ok with %d live buckets", step, len(live))
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("step %d: Root = %v, want %v (order-preserving left fold)", step, got, want)
	}
}

// fingerBound is the per-op combine budget asserted by the differential
// test: c·(K + log w) with no K·log w cross term.
func fingerBound(k, live int) int64 {
	h := 1
	if live > 1 {
		h = ceilLog2(live + 2)
	}
	return int64(8*k + 16*h + 16)
}

// TestFingerTreeDifferentialVsLeftFold drives random interleavings of
// slides, late inserts, bulk evictions, and bulk insertions against a
// naive left fold with a non-commutative combiner, checking the
// aggregate after every operation and the O(K + log w) combine bound.
func TestFingerTreeDifferentialVsLeftFold(t *testing.T) {
	for _, seed := range []int64{1, 2, 7919} {
		rng := rand.New(rand.NewSource(seed))
		f := NewFingerTree(concatMerge)
		var live [][]int
		next := 0
		take := func() []int {
			v := []int{next}
			next++
			return v
		}
		init := make([][]int, 4+rng.Intn(8))
		for i := range init {
			init[i] = take()
		}
		if err := f.Init(init); err != nil {
			t.Fatalf("seed %d: Init: %v", seed, err)
		}
		live = append(live, init...)
		for step := 0; step < 2000; step++ {
			before := f.Stats().Merges
			var k int
			switch op := rng.Intn(4); {
			case op == 0 && len(live) > 0: // slide
				k = 1
				v := take()
				if err := f.Slide(v); err != nil {
					t.Fatalf("seed %d step %d: Slide: %v", seed, step, err)
				}
				live = append(live[1:], v)
			case op == 1: // late insert at an interior position
				k = 1
				pos := rng.Intn(len(live) + 1)
				v := take()
				if err := f.InsertAt(pos, v); err != nil {
					t.Fatalf("seed %d step %d: InsertAt(%d): %v", seed, step, pos, err)
				}
				live = append(live[:pos], append([][]int{v}, live[pos:]...)...)
			case op == 2 && len(live) > 1: // bulk evict
				k = 1 + rng.Intn(len(live)-1)
				if err := f.BulkEvict(k); err != nil {
					t.Fatalf("seed %d step %d: BulkEvict(%d): %v", seed, step, k, err)
				}
				live = live[k:]
			default: // bulk insert
				k = 1 + rng.Intn(8)
				vs := make([][]int, k)
				for i := range vs {
					vs[i] = take()
				}
				if err := f.BulkInsert(vs); err != nil {
					t.Fatalf("seed %d step %d: BulkInsert(%d): %v", seed, step, k, err)
				}
				live = append(live, vs...)
			}
			if cost := f.Stats().Merges - before; cost > fingerBound(k, len(live)) {
				t.Fatalf("seed %d step %d: op cost %d merges for K=%d live=%d, bound %d",
					seed, step, cost, k, len(live), fingerBound(k, len(live)))
			}
			// Queries must be free: the root aggregate is cached.
			before = f.Stats().Merges
			checkFingerRoot(t, f, live, step)
			if cost := f.Stats().Merges - before; cost != 0 {
				t.Fatalf("seed %d step %d: query cost %d merges, want 0", seed, step, cost)
			}
			if f.Len() != len(live) {
				t.Fatalf("seed %d step %d: Len = %d, want %d", seed, step, f.Len(), len(live))
			}
		}
	}
}

// TestFingerTreeBulkEvictBeatsSequential pins the asymptotic win the
// bulk path exists for: evicting K buckets in one BulkEvict must cost
// no more than a root path, strictly less than K single-bucket
// evictions once K clears the tree height.
func TestFingerTreeBulkEvictBeatsSequential(t *testing.T) {
	const w = 512
	for _, k := range []int{32, 256} {
		mk := func() *FingerTree[[]int] {
			f := NewFingerTree(concatMerge)
			buckets := make([][]int, w)
			for i := range buckets {
				buckets[i] = []int{i}
			}
			if err := f.Init(buckets); err != nil {
				t.Fatal(err)
			}
			f.ResetStats()
			return f
		}
		bulk := mk()
		if err := bulk.BulkEvict(k); err != nil {
			t.Fatal(err)
		}
		seq := mk()
		for i := 0; i < k; i++ {
			if err := seq.BulkEvict(1); err != nil {
				t.Fatal(err)
			}
		}
		if bulk.Stats().Merges >= seq.Stats().Merges {
			t.Fatalf("K=%d: bulk evict cost %d merges, sequential %d — bulk must win",
				k, bulk.Stats().Merges, seq.Stats().Merges)
		}
		if bound := fingerBound(0, w); bulk.Stats().Merges > bound {
			t.Fatalf("K=%d: bulk evict cost %d merges, exceeds root-path bound %d",
				k, bulk.Stats().Merges, bound)
		}
	}
}

// TestFingerTreeDeterministicShape: two trees fed the same operation
// sequence fingerprint identically, and a restored tree matches a
// freshly restored one (shape, fingerprint, and stats).
func TestFingerTreeDeterministicShape(t *testing.T) {
	fp := func(v []int) uint64 {
		h := uint64(1469598103934665603)
		for _, x := range v {
			h = fpMix(h, uint64(x))
		}
		return h
	}
	run := func() *FingerTree[[]int] {
		f := NewFingerTree(concatMerge)
		init := [][]int{{0}, {1}, {2}, {3}, {4}, {5}}
		if err := f.Init(init); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			switch i % 4 {
			case 0:
				if err := f.Slide([]int{100 + i}); err != nil {
					t.Fatal(err)
				}
			case 1:
				if err := f.InsertAt(f.Len()/2, []int{200 + i}); err != nil {
					t.Fatal(err)
				}
			case 2:
				if err := f.BulkEvict(2); err != nil {
					t.Fatal(err)
				}
			default:
				if err := f.BulkInsert([][]int{{300 + i}, {400 + i}}); err != nil {
					t.Fatal(err)
				}
			}
		}
		return f
	}
	a, b := run(), run()
	if a.FingerprintWith(fp) != b.FingerprintWith(fp) {
		t.Fatal("same operation sequence produced different fingerprints")
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("same operation sequence produced different stats: %+v vs %+v", a.Stats(), b.Stats())
	}

	buckets, ok := a.BucketPayloads()
	if !ok {
		t.Fatal("BucketPayloads not ok on live tree")
	}
	if err := a.Restore(buckets); err != nil {
		t.Fatalf("in-place Restore: %v", err)
	}
	fresh := NewFingerTree(concatMerge)
	if err := fresh.Restore(buckets); err != nil {
		t.Fatalf("fresh Restore: %v", err)
	}
	if a.FingerprintWith(fp) != fresh.FingerprintWith(fp) {
		t.Fatal("in-place restore fingerprint differs from fresh restore")
	}
	if a.Stats() != fresh.Stats() {
		t.Fatalf("restored stats differ: %+v vs %+v", a.Stats(), fresh.Stats())
	}
	got, _ := a.Root()
	want, _ := fresh.Root()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restored roots differ: %v vs %v", got, want)
	}
}

// TestFingerTreeShape sanity-checks the observability snapshot.
func TestFingerTreeShape(t *testing.T) {
	f := NewFingerTree(concatMerge)
	buckets := make([][]int, 64)
	for i := range buckets {
		buckets[i] = []int{i}
	}
	if err := f.Init(buckets); err != nil {
		t.Fatal(err)
	}
	s := f.Shape()
	if s.Variant != "fingertree" {
		t.Fatalf("Variant = %q", s.Variant)
	}
	if s.Live != 64 || s.Nodes != 128 {
		t.Fatalf("Live = %d, Nodes = %d, want 64, 128", s.Live, s.Nodes)
	}
	// A deterministic treap over 64 nodes stays within a few multiples
	// of log2: a degenerate chain would mean broken priorities.
	if s.Height < 6 || s.Height > 30 {
		t.Fatalf("Height = %d, implausible for 64 nodes", s.Height)
	}
}

// TestFingerTreeBuggifyOffByOne: the injected bulk-evict off-by-one
// must leave a stale oldest bucket behind — and must stay inert when
// the mask is off.
func TestFingerTreeBuggifyOffByOne(t *testing.T) {
	mk := func(bug Buggify) *FingerTree[[]int] {
		f := NewFingerTree(concatMerge)
		f.SetBuggify(bug)
		if err := f.Init([][]int{{0}, {1}, {2}, {3}}); err != nil {
			t.Fatal(err)
		}
		return f
	}
	clean := mk(BuggifyNone)
	if err := clean.BulkEvict(2); err != nil {
		t.Fatal(err)
	}
	if got, _ := clean.Root(); !reflect.DeepEqual(got, []int{2, 3}) {
		t.Fatalf("clean BulkEvict(2): root %v, want [2 3]", got)
	}
	buggy := mk(BuggifyFingerBulkEvictOffByOne)
	if err := buggy.BulkEvict(2); err != nil {
		t.Fatal(err)
	}
	if got, _ := buggy.Root(); !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("buggy BulkEvict(2): root %v, want the off-by-one [1 2 3]", got)
	}
}
