package core

// CoalescingTree is the coalescing contraction tree for append-only
// windows (§4.2). The window only grows: each run appends new map outputs,
// already combined into a single payload C′. The tree degenerates into an
// accumulator: the new root combines the previous root with C′, so an
// incremental run costs a single combiner call regardless of history
// length.
//
// Split processing (§4): in foreground mode the final Reduce runs directly
// on the *union* of the previous root and C′ (no combine on the critical
// path); the background step then folds C′ into the root for the next run.
//
// CoalescingTree is not safe for concurrent use.
type CoalescingTree[T any] struct {
	merge   MergeFunc[T]
	root    T
	hasRoot bool
	pending T // C′ awaiting the background fold (split mode)
	hasPend bool
	stats   Stats
}

// NewCoalescing returns an empty coalescing tree.
func NewCoalescing[T any](merge MergeFunc[T]) *CoalescingTree[T] {
	return &CoalescingTree[T]{merge: merge}
}

// Append folds the combined new data c into the window and returns the new
// root payload (foreground-only mode, Figure 5a).
func (c *CoalescingTree[T]) Append(payload T) T {
	if c.hasPend {
		// A split-mode append was left un-backgrounded; fold it first
		// so the window stays correct.
		c.foldPending()
	}
	if !c.hasRoot {
		c.root = payload
		c.hasRoot = true
	} else {
		c.root = c.merge(c.root, payload)
		c.stats.Merges++
		c.stats.NodesRecomputed++
	}
	return c.root
}

// AppendSplit performs the foreground step of split mode: it records C′
// and returns the payload(s) the final Reduce should union — the previous
// root (if any) and C′. No combiner call happens on the critical path.
// Call Background afterwards to fold C′ into the root.
func (c *CoalescingTree[T]) AppendSplit(payload T) []T {
	if c.hasPend {
		c.foldPending()
	}
	c.pending = payload
	c.hasPend = true
	if !c.hasRoot {
		return []T{payload}
	}
	return []T{c.root, payload}
}

// Background folds the pending C′ into the root, preparing the next run
// (Figure 5b). It is a no-op when nothing is pending.
func (c *CoalescingTree[T]) Background() {
	c.foldPending()
}

func (c *CoalescingTree[T]) foldPending() {
	if !c.hasPend {
		return
	}
	if !c.hasRoot {
		c.root = c.pending
		c.hasRoot = true
	} else {
		c.root = c.merge(c.root, c.pending)
		c.stats.Merges++
		c.stats.NodesRecomputed++
	}
	var zero T
	c.pending = zero
	c.hasPend = false
}

// Root returns the combined payload of everything appended so far. When a
// split-mode append is pending, the returned payload excludes it (the
// union is what AppendSplit handed to the caller).
func (c *CoalescingTree[T]) Root() (T, bool) {
	if !c.hasRoot {
		var zero T
		return zero, false
	}
	return c.root, true
}

// Pending reports whether a split-mode append awaits its background fold.
func (c *CoalescingTree[T]) Pending() bool { return c.hasPend }

// Stats returns the accumulated work counters.
func (c *CoalescingTree[T]) Stats() Stats { return c.stats }

// ResetStats clears the work counters.
func (c *CoalescingTree[T]) ResetStats() { c.stats = Stats{} }

// NodeCount returns the number of materialized payloads (space accounting
// for Figure 13c): at most the root and one pending payload.
func (c *CoalescingTree[T]) NodeCount() int {
	n := 0
	if c.hasRoot {
		n++
	}
	if c.hasPend {
		n++
	}
	return n
}

// ForEachPayload visits every materialized payload (space accounting).
func (c *CoalescingTree[T]) ForEachPayload(fn func(T)) {
	if c.hasRoot {
		fn(c.root)
	}
	if c.hasPend {
		fn(c.pending)
	}
}

// PendingPayload returns the split-mode payload awaiting its background
// fold, if any (checkpointing support).
func (c *CoalescingTree[T]) PendingPayload() (T, bool) {
	if !c.hasPend {
		var zero T
		return zero, false
	}
	return c.pending, true
}

// Restore reinstates a checkpointed tree state. Work counters reset, so a
// restored tree's Stats (and NodeCount bookkeeping derived from the
// restored payloads) match a fresh tree restored from the same checkpoint
// — restoring mid-run must not carry over the pre-crash run's counters.
func (c *CoalescingTree[T]) Restore(root T, hasRoot bool, pending T, hasPend bool) {
	c.root, c.hasRoot = root, hasRoot
	c.pending, c.hasPend = pending, hasPend
	c.stats = Stats{}
}
