package core

// DabaLite is a worst-case O(1) in-order sliding-window aggregator
// (DABA Lite: "In-Order Sliding-Window Aggregation in Worst-Case
// Constant Time"). It is the sixth backend next to the five contraction
// trees: for fixed-width windows whose buckets arrive and expire in
// FIFO order it answers every slide with a small constant number of
// combiner calls — no tree, no ⌈log2 N⌉ root path — and, unlike the
// rotating tree, it never re-orders buckets relative to window age, so
// the merge function only needs to be associative, not commutative.
//
// The structure is the classic two-stack queue made amortization-free.
// A ring buffer q of capacity n holds one aggregate per live bucket,
// partitioned by five absolute cursors f ≤ l ≤ r ≤ a ≤ b ≤ e into
//
//	F = [f,l): q[i] = Σ[i, b)   — suffix aggregates to the flip boundary
//	L = [l,r): q[i] = Σ[i, m)   — partial suffixes; midSum = Σ[m, b)
//	R = [r,a): raw bucket values
//	A = [a,b): q[i] = Σ[i, b)   — already in F form, awaiting relabel
//	B = [b,e): raw bucket values; backSum = Σ[b, e)
//
// where m is the value of b at the last flip. The window aggregate is
// merge(q[f], backSum): one combiner call. Every insert or evict runs
// one fixup step that converts at most one R entry into A form and one
// L entry into F form, so by the time F drains (l reaches b) the back
// half is fully converted and the cursors flip in O(1) without touching
// any payload. Worst case: three combiner calls per insert, two per
// evict, one per query — independent of n.
//
// A parallel ring keeps the raw bucket payloads (the aggregate slots
// overwrite them), which serves checkpointing (BucketPayloads in window
// order) and restore.
//
// DabaLite is not safe for concurrent use.
type DabaLite[T any] struct {
	merge MergeFunc[T]
	n     int // window capacity in buckets
	q     []T // ring of aggregates, len n, slot(i) = i mod n
	raw   []T // ring of raw bucket payloads (checkpoint support)

	// Absolute cursors; the live range [f, e) never exceeds n entries,
	// so i mod n is injective over it.
	f, l, r, a, b, e uint64

	midSum  T // Σ[m, b) for the L region
	hasMid  bool
	backSum T // Σ[b, e) for the B region
	hasBack bool

	filled bool
	stats  Stats
}

// NewDaba returns a DABA Lite aggregator for a window of n buckets.
func NewDaba[T any](merge MergeFunc[T], n int) *DabaLite[T] {
	if n < 1 {
		n = 1
	}
	return &DabaLite[T]{
		merge: merge,
		n:     n,
		q:     make([]T, n),
		raw:   make([]T, n),
	}
}

// SetParallelism is a no-op: DABA Lite's per-op work is a handful of
// combiner calls with strict sequential dependencies. Present so the
// runtime can treat all backends uniformly.
func (t *DabaLite[T]) SetParallelism(par int) {}

func (t *DabaLite[T]) slot(i uint64) int { return int(i % uint64(t.n)) }

// Init performs the initial run: it installs the first full window of
// buckets (len(buckets) must equal n) in window order, oldest first.
func (t *DabaLite[T]) Init(buckets []T) error {
	if len(buckets) != t.n {
		return ErrWindowNotFull
	}
	var zero T
	for i := range t.q {
		t.q[i] = zero
		t.raw[i] = zero
	}
	t.f, t.l, t.r, t.a, t.b, t.e = 0, 0, 0, 0, 0, 0
	t.midSum, t.hasMid = zero, false
	t.backSum, t.hasBack = zero, false
	for _, b := range buckets {
		t.push(b)
	}
	t.filled = true
	return nil
}

// Slide evicts the oldest bucket and inserts bucket as the newest —
// one window slide of one bucket, worst-case five combiner calls.
func (t *DabaLite[T]) Slide(bucket T) error {
	if !t.filled {
		return ErrWindowNotFull
	}
	if err := t.evict(); err != nil {
		return err
	}
	t.push(bucket)
	return nil
}

// push appends a raw bucket at the back and runs one fixup step.
func (t *DabaLite[T]) push(v T) {
	s := t.slot(t.e)
	t.q[s] = v
	t.raw[s] = v
	t.e++
	if t.hasBack {
		t.backSum = t.merge(t.backSum, v)
		t.stats.Merges++
	} else {
		t.backSum = v
		t.hasBack = true
	}
	t.stats.NodesRecomputed++
	t.fixup()
}

// evict drops the oldest bucket and runs one fixup step.
func (t *DabaLite[T]) evict() error {
	if t.f == t.e {
		return ErrEmpty
	}
	var zero T
	s := t.slot(t.f)
	t.q[s] = zero
	t.raw[s] = zero
	t.f++
	t.fixup()
	return nil
}

// fixup is the constant-work maintenance step run after every push and
// evict: flip if the front drained, then convert at most one R entry to
// A form and grow F by one entry.
func (t *DabaLite[T]) fixup() {
	if t.l == t.b {
		t.flip()
	}
	if t.f == t.b {
		// Front part empty; with b == e after a flip this means the
		// whole queue is empty.
		return
	}
	// Shrink R: convert its rightmost raw value into A form Σ[i, b).
	// When the converted entry is the last before b, Σ[i, b) is the raw
	// value itself — no merge.
	if t.a != t.r {
		t.a--
		if t.a+1 != t.b {
			sa := t.slot(t.a)
			t.q[sa] = t.merge(t.q[sa], t.q[t.slot(t.a+1)])
			t.stats.Merges++
		}
		t.stats.NodesRecomputed++
	}
	// Grow F: complete L's leftmost partial suffix Σ[i, m) with
	// midSum = Σ[m, b), or — when L and R are both drained — relabel
	// the A region into F wholesale by advancing all three cursors
	// (A entries are already in F form).
	if t.l != t.r {
		if t.hasMid {
			sl := t.slot(t.l)
			t.q[sl] = t.merge(t.q[sl], t.midSum)
			t.stats.Merges++
		}
		t.stats.NodesRecomputed++
		t.l++
	} else {
		t.l++
		t.r++
		t.a++
		t.stats.NodesReused++
	}
}

// flip runs when F drains (l == b): by then L and R are empty and every
// entry of [f, b) holds Σ[i, b), so the old front becomes the new L,
// the old back raws become the new R, and backSum becomes midSum — a
// pure cursor relabeling, no payload work.
func (t *DabaLite[T]) flip() {
	t.l = t.f
	t.r = t.b
	t.a = t.e
	t.b = t.e
	t.midSum, t.hasMid = t.backSum, t.hasBack
	var zero T
	t.backSum, t.hasBack = zero, false
}

// Root returns the combined payload of the whole window: at most one
// combiner call (front suffix aggregate with the back running sum).
func (t *DabaLite[T]) Root() (T, bool) {
	if t.f == t.e {
		var zero T
		return zero, false
	}
	if t.f == t.b {
		// Defensive: whole window in the back region.
		return t.backSum, t.hasBack
	}
	front := t.q[t.slot(t.f)]
	if !t.hasBack {
		return front, true
	}
	t.stats.Merges++
	return t.merge(front, t.backSum), true
}

// Buckets returns the number of buckets in the window.
func (t *DabaLite[T]) Buckets() int { return t.n }

// Height returns 0: there is no tree.
func (t *DabaLite[T]) Height() int { return 0 }

// Len returns the number of live buckets.
func (t *DabaLite[T]) Len() int { return int(t.e - t.f) }

// Stats returns the accumulated work counters.
func (t *DabaLite[T]) Stats() Stats { return t.stats }

// ResetStats clears the work counters.
func (t *DabaLite[T]) ResetStats() { t.stats = Stats{} }

// NodeCount returns the number of materialized payloads: one aggregate
// and one raw value per live bucket, plus the two running sums.
func (t *DabaLite[T]) NodeCount() int {
	c := 2 * t.Len()
	if t.hasMid {
		c++
	}
	if t.hasBack {
		c++
	}
	return c
}

// ForEachPayload visits every materialized payload (space accounting):
// the aggregate and raw rings over the live range plus the running sums.
func (t *DabaLite[T]) ForEachPayload(fn func(T)) {
	for i := t.f; i != t.e; i++ {
		fn(t.q[t.slot(i)])
		fn(t.raw[t.slot(i)])
	}
	if t.hasMid {
		fn(t.midSum)
	}
	if t.hasBack {
		fn(t.backSum)
	}
}

// BucketPayloads returns the raw bucket payloads in window order,
// oldest first (checkpointing support). It returns nil before the
// window fills.
func (t *DabaLite[T]) BucketPayloads() ([]T, bool) {
	if !t.filled {
		return nil, false
	}
	out := make([]T, 0, t.Len())
	for i := t.f; i != t.e; i++ {
		out = append(out, t.raw[t.slot(i)])
	}
	return out, true
}

// Restore reinstates a checkpointed window from its raw buckets in
// window order, oldest first. Work counters restart from zero (plus the
// rebuild itself), so a restored aggregator's Stats match a fresh one
// restored from the same checkpoint.
func (t *DabaLite[T]) Restore(buckets []T) error {
	t.stats = Stats{}
	return t.Init(buckets)
}
