// Package memo implements Slider's memoization layer (§6): an in-memory
// distributed cache coordinated by a master index, a fault-tolerant
// replicated persistent store, a shim I/O layer that serves reads from
// memory when possible and falls back to persistent replicas, and a
// garbage collector that frees state falling out of the sliding window.
//
// The cluster is simulated: entries carry node placements and the shim
// layer charges a read-cost model (memory vs. disk vs. network), which is
// what Table 2 of the paper measures. Correctness never depends on the
// cache: a failed node only makes reads slower (replica fallback), exactly
// as in the paper's design.
package memo

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"slider/internal/metrics"
)

// Config describes the simulated memoization substrate.
type Config struct {
	// Nodes is the number of worker machines holding cache shards.
	Nodes int
	// Replicas is the number of persistent copies per entry (the paper
	// uses two).
	Replicas int
	// InMemory enables the in-memory cache layer; when false every
	// read is served from persistent storage (the ablation of Table 2).
	InMemory bool
	// MemReadNsPerKB, DiskReadNsPerKB and NetReadNsPerKB parameterize
	// the per-byte part of the simulated read-cost model.
	MemReadNsPerKB  int64
	DiskReadNsPerKB int64
	NetReadNsPerKB  int64
	// MemReadOverheadNs and DiskReadOverheadNs are the fixed per-read
	// latencies (RPC round trip vs. disk seek + RPC). They make the
	// caching benefit depend on an application's state sizes: small
	// payloads are latency-bound, large payloads bandwidth-bound.
	MemReadOverheadNs  int64
	DiskReadOverheadNs int64
	// MemWriteNsPerKB and DiskWriteNsPerKB parameterize memoization
	// write costs: every Put pays one in-memory write plus one
	// persistent write per replica. These writes are the initial-run
	// overhead the paper measures in Figure 13 ("I/O costs for
	// memoizing the intermediate results").
	MemWriteNsPerKB  int64
	DiskWriteNsPerKB int64
}

// DefaultConfig returns the memoization configuration used by the
// experiments: 24 nodes, 2 replicas, in-memory caching on, and a read
// cost model (RAM vs. disk vs. network hop) calibrated so that in-memory
// caching saves roughly the 50–68% of read time the paper reports in
// Table 2 — real deployments never see the raw RAM/disk gap because part
// of every read is protocol and network overhead.
func DefaultConfig() Config {
	return Config{
		Nodes:              24,
		Replicas:           2,
		InMemory:           true,
		MemReadNsPerKB:     4000,
		DiskReadNsPerKB:    9000,
		NetReadNsPerKB:     4500,
		MemReadOverheadNs:  300_000,
		DiskReadOverheadNs: 900_000,
		MemWriteNsPerKB:    300,
		DiskWriteNsPerKB:   1200,
	}
}

func (c *Config) normalize() {
	if c.Nodes <= 0 {
		c.Nodes = 1
	}
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.MemReadNsPerKB <= 0 {
		c.MemReadNsPerKB = 250
	}
	if c.DiskReadNsPerKB <= 0 {
		c.DiskReadNsPerKB = 10000
	}
	if c.NetReadNsPerKB <= 0 {
		c.NetReadNsPerKB = 8000
	}
	if c.MemReadOverheadNs < 0 {
		c.MemReadOverheadNs = 0
	}
	if c.DiskReadOverheadNs < 0 {
		c.DiskReadOverheadNs = 0
	}
	if c.MemWriteNsPerKB < 0 {
		c.MemWriteNsPerKB = 0
	}
	if c.DiskWriteNsPerKB < 0 {
		c.DiskWriteNsPerKB = 0
	}
}

// entry is one memoized object tracked by the master index. Its fields
// are guarded by the owning shard's mutex.
type entry struct {
	value    any
	size     int64
	memNode  int   // node whose RAM caches the object (-1 when evicted)
	replicas []int // nodes holding persistent copies
	lo, hi   uint64
}

// Stats summarizes the layer's activity.
type Stats struct {
	Hits        int64 // reads served from the in-memory cache
	Misses      int64 // reads served from persistent replicas
	ReadTimeNs  int64 // simulated time spent reading memoized state
	WriteTimeNs int64 // simulated time spent writing memoized state
	Bytes       int64 // bytes currently resident (cache + replicas counted once)
	Entries     int64 // live entries
	Evicted     int64 // entries garbage-collected so far
	Unavailable int64 // reads refused because every replica was down
}

// ErrNotFound is returned when a key is absent from the layer entirely.
var ErrNotFound = errors.New("memo: not found")

// ErrUnavailable is returned when a key is memoized but unreadable right
// now: its in-memory copy is gone (evicted, or the caching node failed)
// and every persistent replica is on a failed node. Unlike ErrNotFound
// the entry still exists and becomes readable again after RecoverNode;
// callers treat both as a miss and recompute the value, which is always
// safe because memoized nodes are deterministic functions of their
// inputs (the MapReduce fault model).
var ErrUnavailable = errors.New("memo: all replicas unavailable")

// numShards is the power-of-two number of index shards. 64 comfortably
// exceeds any worker count the contraction engine runs (partition workers
// × intra-tree workers), so two concurrent accesses rarely collide on a
// shard lock; the per-shard footprint (a map header and a mutex) keeps the
// empty store cheap.
const numShards = 64

// indexShard is one hash shard of the master index: a slice of the key
// space behind its own mutex, padded so neighbouring shards' locks do
// not share a cache line.
type indexShard struct {
	mu    sync.Mutex
	index map[string]*entry
	_     [48]byte
}

// Store is the fault-tolerant memoization layer. It is safe for concurrent
// use: the master index is split into power-of-two hash shards with
// per-shard mutexes, the activity counters are atomics, and the
// failed-node set is a copy-on-write snapshot — so concurrent tree
// workers reading, writing, and charging the cost model never serialize
// behind a single lock. The read- and write-cost models and GC semantics
// are identical to the single-mutex implementation.
type Store struct {
	cfg    Config
	shards [numShards]indexShard

	// down is a copy-on-write snapshot of the failed-node set, read on
	// every Get/Put/ChargeRead without locking. failMu serializes the
	// rare writers (FailNode/RecoverNode).
	down   atomic.Pointer[map[int]bool]
	failMu sync.Mutex

	hits     atomic.Int64
	misses   atomic.Int64
	readNs   atomic.Int64
	writeNs  atomic.Int64
	evicted  atomic.Int64
	entries  atomic.Int64
	resident atomic.Int64 // sum of live entry sizes
	// unavailable counts reads refused because the home node and every
	// replica were down (ErrUnavailable).
	unavailable atomic.Int64

	// readObs and writeObs, when set, receive one observation per charged
	// read/write — the simulated per-operation latency distribution the
	// flat readNs/writeNs totals cannot show (SetLatencyObservers).
	readObs  atomic.Pointer[metrics.Histogram]
	writeObs atomic.Pointer[metrics.Histogram]
}

// NewStore returns an empty memoization layer.
func NewStore(cfg Config) *Store {
	cfg.normalize()
	s := &Store{cfg: cfg}
	for i := range s.shards {
		s.shards[i].index = make(map[string]*entry)
	}
	return s
}

// SetLatencyObservers installs histograms receiving one observation per
// charged read and write (their simulated cost from the shim layer's
// model). Either may be nil to leave that side unobserved. Safe to call
// while the store is in use; the fast path is one atomic pointer load
// when unset.
func (s *Store) SetLatencyObservers(read, write *metrics.Histogram) {
	s.readObs.Store(read)
	s.writeObs.Store(write)
}

// observeRead/observeWrite report one charged cost (ns) to the installed
// observer, if any.
func (s *Store) observeRead(cost int64) {
	if h := s.readObs.Load(); h != nil {
		h.ObserveNs(cost)
	}
}

func (s *Store) observeWrite(cost int64) {
	if h := s.writeObs.Load(); h != nil {
		h.ObserveNs(cost)
	}
}

// shardFor returns the index shard owning key.
func (s *Store) shardFor(key string) *indexShard {
	return &s.shards[hashKey32(key)&(numShards-1)]
}

// hashKey32 is the allocation-free FNV-1a used for both node placement
// and shard selection (bit-identical to hash/fnv over the same bytes).
func hashKey32(key string) uint32 {
	const (
		offset32 uint32 = 2166136261
		prime32  uint32 = 16777619
	)
	h := offset32
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return h
}

// isDown reports whether node's RAM and replicas are currently
// unreachable, against the latest copy-on-write snapshot.
func (s *Store) isDown(node int) bool {
	m := s.down.Load()
	return m != nil && (*m)[node]
}

// HomeNode returns the node whose RAM would cache the given key. The
// scheduler uses it to co-locate contraction/reduce tasks with their
// memoized inputs.
func (s *Store) HomeNode(key string) int {
	nodes := s.cfg.Nodes
	if nodes <= 0 {
		// A Store built by NewStore always has Nodes ≥ 1 (normalize), but
		// a zero-value Store must not panic on uint32(0) modulo.
		nodes = 1
	}
	return int(hashKey32(key) % uint32(nodes))
}

// replicaNodes returns the persistent-replica placement for a key's home
// node — the single source of truth shared by Put (placement), Get
// (lookup), and ChargeRead (bulk accounting), so the locality rules of
// the read-cost model cannot drift between the indexed and bulk paths.
func (s *Store) replicaNodes(home int) []int {
	nodes := s.cfg.Nodes
	if nodes <= 0 {
		nodes = 1
	}
	reps := make([]int, 0, s.cfg.Replicas)
	for i := 1; i <= s.cfg.Replicas; i++ {
		reps = append(reps, (home+i)%nodes)
	}
	return reps
}

// Put memoizes value under key and returns the simulated write time (the
// in-memory insert plus one persistent write per replica). lo/hi describe
// the window interval (e.g. split sequence numbers) the value depends on,
// consumed by GC.
func (s *Store) Put(key string, value any, size int64, lo, hi uint64) int64 {
	home := s.HomeNode(key)
	replicas := s.replicaNodes(home)
	mem := home
	if !s.cfg.InMemory || s.isDown(home) {
		mem = -1
	}
	sh := s.shardFor(key)
	sh.mu.Lock()
	old, existed := sh.index[key]
	sh.index[key] = &entry{value: value, size: size, memNode: mem, replicas: replicas, lo: lo, hi: hi}
	sh.mu.Unlock()
	if existed {
		s.resident.Add(size - old.size)
	} else {
		s.entries.Add(1)
		s.resident.Add(size)
	}
	kb := (size + 1023) / 1024
	cost := kb * s.cfg.MemWriteNsPerKB
	cost += int64(len(replicas)) * kb * s.cfg.DiskWriteNsPerKB
	s.writeNs.Add(cost)
	s.observeWrite(cost)
	return cost
}

// ChargeWrite charges the write-cost model for memoizing size bytes of
// state without creating an index entry (bulk accounting of
// contraction-tree node writes). It touches only atomic counters, so
// concurrent partition workers never serialize here.
func (s *Store) ChargeWrite(size int64) int64 {
	kb := (size + 1023) / 1024
	cost := kb * s.cfg.MemWriteNsPerKB
	cost += int64(s.cfg.Replicas) * kb * s.cfg.DiskWriteNsPerKB
	s.writeNs.Add(cost)
	s.observeWrite(cost)
	return cost
}

// Get reads a memoized value through the shim I/O layer from the
// perspective of a task running on fromNode: an in-memory copy costs
// memory (+network if remote) time; otherwise the nearest live persistent
// replica costs disk (+network) time. It returns ErrNotFound when the key
// is unknown.
func (s *Store) Get(key string, fromNode int) (any, error) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	e, ok := sh.index[key]
	if !ok {
		sh.mu.Unlock()
		return nil, fmt.Errorf("memo: key %q: %w", key, ErrNotFound)
	}
	kb := (e.size + 1023) / 1024
	if e.memNode >= 0 && !s.isDown(e.memNode) {
		memNode := e.memNode
		value := e.value
		sh.mu.Unlock()
		cost := s.cfg.MemReadOverheadNs + kb*s.cfg.MemReadNsPerKB
		if fromNode >= 0 && fromNode != memNode {
			cost += kb * s.cfg.NetReadNsPerKB
		}
		s.hits.Add(1)
		s.readNs.Add(cost)
		s.observeRead(cost)
		return value, nil
	}
	// Fall back to a persistent replica; prefer a local one. If every
	// replica is on a failed node the value is temporarily unreadable —
	// report the typed miss so the caller recomputes instead of erroring.
	anyLive := false
	for _, r := range e.replicas {
		if !s.isDown(r) {
			anyLive = true
			break
		}
	}
	if !anyLive {
		sh.mu.Unlock()
		s.unavailable.Add(1)
		return nil, fmt.Errorf("memo: key %q: %w", key, ErrUnavailable)
	}
	cost := s.cfg.DiskReadOverheadNs + kb*s.cfg.DiskReadNsPerKB
	local := false
	for _, r := range e.replicas {
		if r == fromNode && !s.isDown(r) {
			local = true
			break
		}
	}
	if !local {
		cost += kb * s.cfg.NetReadNsPerKB
	}
	// Re-populate the in-memory cache on the home node (read-repair).
	home := s.HomeNode(key)
	if s.cfg.InMemory && !s.isDown(home) {
		e.memNode = home
	}
	value := e.value
	sh.mu.Unlock()
	s.misses.Add(1)
	s.readNs.Add(cost)
	s.observeRead(cost)
	return value, nil
}

// Contains reports whether key is memoized, without charging a read.
func (s *Store) Contains(key string) bool {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, ok := sh.index[key]
	return ok
}

// Delete removes a key outright.
func (s *Store) Delete(key string) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	e, ok := sh.index[key]
	if ok {
		delete(sh.index, key)
	}
	sh.mu.Unlock()
	if ok {
		s.entries.Add(-1)
		s.resident.Add(-e.size)
		s.evicted.Add(1)
	}
}

// GC frees every entry whose interval ended before windowLo — the
// automatic policy of §6 ("free the storage occupied by data items that
// fall out of the current window"). It returns the number of entries
// collected. Shards are swept one at a time, so concurrent readers of
// other shards proceed undisturbed.
func (s *Store) GC(windowLo uint64) int {
	return s.sweep(func(_ string, e *entry) bool { return e.hi < windowLo })
}

// GCFunc frees entries selected by a user-defined policy (the paper's
// "more aggressive user-defined policy").
func (s *Store) GCFunc(drop func(key string, lo, hi uint64, size int64) bool) int {
	return s.sweep(func(k string, e *entry) bool { return drop(k, e.lo, e.hi, e.size) })
}

// sweep removes every entry selected by drop, shard by shard.
func (s *Store) sweep(drop func(key string, e *entry) bool) int {
	collected := 0
	var bytes int64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for k, e := range sh.index {
			if drop(k, e) {
				delete(sh.index, k)
				collected++
				bytes += e.size
			}
		}
		sh.mu.Unlock()
	}
	if collected > 0 {
		s.entries.Add(int64(-collected))
		s.resident.Add(-bytes)
		s.evicted.Add(int64(collected))
	}
	return collected
}

// FailNode simulates the crash of a machine: its in-memory cache contents
// are lost and its persistent replicas become unreachable until
// RecoverNode. Reads transparently fall back to surviving replicas.
func (s *Store) FailNode(node int) {
	s.failMu.Lock()
	next := s.copyDown()
	next[node] = true
	s.down.Store(&next)
	s.failMu.Unlock()
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, e := range sh.index {
			if e.memNode == node {
				e.memNode = -1
			}
		}
		sh.mu.Unlock()
	}
}

// RecoverNode brings a failed machine back (with empty RAM).
func (s *Store) RecoverNode(node int) {
	s.failMu.Lock()
	next := s.copyDown()
	delete(next, node)
	s.down.Store(&next)
	s.failMu.Unlock()
}

// copyDown clones the current failed-node set; callers hold failMu.
func (s *Store) copyDown() map[int]bool {
	next := make(map[int]bool)
	if m := s.down.Load(); m != nil {
		for n, d := range *m {
			next[n] = d
		}
	}
	return next
}

// ChargeRead charges the read-cost model for size bytes of memoized state
// read by a task on fromNode whose data lives under key's placement,
// without an index lookup. It is used for bulk accounting of
// contraction-tree state reads. Its locality rules mirror Get exactly:
// an in-memory read is local only on the home node, and a persistent
// read is local when fromNode holds any live replica — not just the
// first one — so a read served from the second replica (Replicas ≥ 2)
// is no longer wrongly charged a network hop. The charge is lock-free
// (atomic counters only): it sits on every partition's critical path.
func (s *Store) ChargeRead(key string, size int64, fromNode int) {
	home := s.HomeNode(key)
	kb := (size + 1023) / 1024
	if s.cfg.InMemory && !s.isDown(home) {
		cost := s.cfg.MemReadOverheadNs + kb*s.cfg.MemReadNsPerKB
		if fromNode >= 0 && fromNode != home {
			cost += kb * s.cfg.NetReadNsPerKB
		}
		s.hits.Add(1)
		s.readNs.Add(cost)
		s.observeRead(cost)
		return
	}
	cost := s.cfg.DiskReadOverheadNs + kb*s.cfg.DiskReadNsPerKB
	local := false
	for _, r := range s.replicaNodes(home) {
		if r == fromNode && !s.isDown(r) {
			local = true
			break
		}
	}
	if !local {
		cost += kb * s.cfg.NetReadNsPerKB
	}
	s.misses.Add(1)
	s.readNs.Add(cost)
	s.observeRead(cost)
}

// Stats returns a snapshot of the layer's counters. Resident bytes and
// entry counts are maintained incrementally (Put/Delete/GC), so the
// snapshot is O(1) instead of a walk over the whole index.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		ReadTimeNs:  s.readNs.Load(),
		WriteTimeNs: s.writeNs.Load(),
		Bytes:       s.resident.Load(),
		Entries:     s.entries.Load(),
		Evicted:     s.evicted.Load(),
		Unavailable: s.unavailable.Load(),
	}
}

// ResetReadStats clears the read counters (between measured runs).
func (s *Store) ResetReadStats() {
	s.hits.Store(0)
	s.misses.Store(0)
	s.readNs.Store(0)
}
