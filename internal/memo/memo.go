// Package memo implements Slider's memoization layer (§6): an in-memory
// distributed cache coordinated by a master index, a fault-tolerant
// replicated persistent store, a shim I/O layer that serves reads from
// memory when possible and falls back to persistent replicas, and a
// garbage collector that frees state falling out of the sliding window.
//
// The cluster is simulated: entries carry node placements and the shim
// layer charges a read-cost model (memory vs. disk vs. network), which is
// what Table 2 of the paper measures. Correctness never depends on the
// cache: a failed node only makes reads slower (replica fallback), exactly
// as in the paper's design.
package memo

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
)

// Config describes the simulated memoization substrate.
type Config struct {
	// Nodes is the number of worker machines holding cache shards.
	Nodes int
	// Replicas is the number of persistent copies per entry (the paper
	// uses two).
	Replicas int
	// InMemory enables the in-memory cache layer; when false every
	// read is served from persistent storage (the ablation of Table 2).
	InMemory bool
	// MemReadNsPerKB, DiskReadNsPerKB and NetReadNsPerKB parameterize
	// the per-byte part of the simulated read-cost model.
	MemReadNsPerKB  int64
	DiskReadNsPerKB int64
	NetReadNsPerKB  int64
	// MemReadOverheadNs and DiskReadOverheadNs are the fixed per-read
	// latencies (RPC round trip vs. disk seek + RPC). They make the
	// caching benefit depend on an application's state sizes: small
	// payloads are latency-bound, large payloads bandwidth-bound.
	MemReadOverheadNs  int64
	DiskReadOverheadNs int64
	// MemWriteNsPerKB and DiskWriteNsPerKB parameterize memoization
	// write costs: every Put pays one in-memory write plus one
	// persistent write per replica. These writes are the initial-run
	// overhead the paper measures in Figure 13 ("I/O costs for
	// memoizing the intermediate results").
	MemWriteNsPerKB  int64
	DiskWriteNsPerKB int64
}

// DefaultConfig returns the memoization configuration used by the
// experiments: 24 nodes, 2 replicas, in-memory caching on, and a read
// cost model (RAM vs. disk vs. network hop) calibrated so that in-memory
// caching saves roughly the 50–68% of read time the paper reports in
// Table 2 — real deployments never see the raw RAM/disk gap because part
// of every read is protocol and network overhead.
func DefaultConfig() Config {
	return Config{
		Nodes:              24,
		Replicas:           2,
		InMemory:           true,
		MemReadNsPerKB:     4000,
		DiskReadNsPerKB:    9000,
		NetReadNsPerKB:     4500,
		MemReadOverheadNs:  300_000,
		DiskReadOverheadNs: 900_000,
		MemWriteNsPerKB:    300,
		DiskWriteNsPerKB:   1200,
	}
}

func (c *Config) normalize() {
	if c.Nodes <= 0 {
		c.Nodes = 1
	}
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.MemReadNsPerKB <= 0 {
		c.MemReadNsPerKB = 250
	}
	if c.DiskReadNsPerKB <= 0 {
		c.DiskReadNsPerKB = 10000
	}
	if c.NetReadNsPerKB <= 0 {
		c.NetReadNsPerKB = 8000
	}
	if c.MemReadOverheadNs < 0 {
		c.MemReadOverheadNs = 0
	}
	if c.DiskReadOverheadNs < 0 {
		c.DiskReadOverheadNs = 0
	}
	if c.MemWriteNsPerKB < 0 {
		c.MemWriteNsPerKB = 0
	}
	if c.DiskWriteNsPerKB < 0 {
		c.DiskWriteNsPerKB = 0
	}
}

// entry is one memoized object tracked by the master index.
type entry struct {
	value    any
	size     int64
	memNode  int   // node whose RAM caches the object (-1 when evicted)
	replicas []int // nodes holding persistent copies
	lo, hi   uint64
}

// Stats summarizes the layer's activity.
type Stats struct {
	Hits        int64 // reads served from the in-memory cache
	Misses      int64 // reads served from persistent replicas
	ReadTimeNs  int64 // simulated time spent reading memoized state
	WriteTimeNs int64 // simulated time spent writing memoized state
	Bytes       int64 // bytes currently resident (cache + replicas counted once)
	Entries     int64 // live entries
	Evicted     int64 // entries garbage-collected so far
}

// ErrNotFound is returned when a key is absent from the layer entirely.
var ErrNotFound = errors.New("memo: not found")

// Store is the fault-tolerant memoization layer. It is safe for
// concurrent use.
type Store struct {
	cfg Config

	mu      sync.Mutex
	index   map[string]*entry
	down    map[int]bool // nodes whose RAM contents were lost
	hits    int64
	misses  int64
	readNs  int64
	writeNs int64
	evicted int64
}

// NewStore returns an empty memoization layer.
func NewStore(cfg Config) *Store {
	cfg.normalize()
	return &Store{
		cfg:   cfg,
		index: make(map[string]*entry),
		down:  make(map[int]bool),
	}
}

// HomeNode returns the node whose RAM would cache the given key. The
// scheduler uses it to co-locate contraction/reduce tasks with their
// memoized inputs.
func (s *Store) HomeNode(key string) int {
	nodes := s.cfg.Nodes
	if nodes <= 0 {
		// A Store built by NewStore always has Nodes ≥ 1 (normalize), but
		// a zero-value Store must not panic on uint32(0) modulo.
		nodes = 1
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum32() % uint32(nodes))
}

// replicaNodes returns the persistent-replica placement for a key's home
// node — the single source of truth shared by Put (placement), Get
// (lookup), and ChargeRead (bulk accounting), so the locality rules of
// the read-cost model cannot drift between the indexed and bulk paths.
func (s *Store) replicaNodes(home int) []int {
	nodes := s.cfg.Nodes
	if nodes <= 0 {
		nodes = 1
	}
	reps := make([]int, 0, s.cfg.Replicas)
	for i := 1; i <= s.cfg.Replicas; i++ {
		reps = append(reps, (home+i)%nodes)
	}
	return reps
}

// Put memoizes value under key and returns the simulated write time (the
// in-memory insert plus one persistent write per replica). lo/hi describe
// the window interval (e.g. split sequence numbers) the value depends on,
// consumed by GC.
func (s *Store) Put(key string, value any, size int64, lo, hi uint64) int64 {
	home := s.HomeNode(key)
	replicas := s.replicaNodes(home)
	s.mu.Lock()
	defer s.mu.Unlock()
	mem := home
	if !s.cfg.InMemory || s.down[home] {
		mem = -1
	}
	s.index[key] = &entry{value: value, size: size, memNode: mem, replicas: replicas, lo: lo, hi: hi}
	kb := (size + 1023) / 1024
	cost := kb * s.cfg.MemWriteNsPerKB
	cost += int64(len(replicas)) * kb * s.cfg.DiskWriteNsPerKB
	s.writeNs += cost
	return cost
}

// ChargeWrite charges the write-cost model for memoizing size bytes of
// state without creating an index entry (bulk accounting of
// contraction-tree node writes).
func (s *Store) ChargeWrite(size int64) int64 {
	kb := (size + 1023) / 1024
	cost := kb * s.cfg.MemWriteNsPerKB
	cost += int64(s.cfg.Replicas) * kb * s.cfg.DiskWriteNsPerKB
	s.mu.Lock()
	defer s.mu.Unlock()
	s.writeNs += cost
	return cost
}

// Get reads a memoized value through the shim I/O layer from the
// perspective of a task running on fromNode: an in-memory copy costs
// memory (+network if remote) time; otherwise the nearest live persistent
// replica costs disk (+network) time. It returns ErrNotFound when the key
// is unknown.
func (s *Store) Get(key string, fromNode int) (any, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.index[key]
	if !ok {
		return nil, fmt.Errorf("memo: key %q: %w", key, ErrNotFound)
	}
	kb := (e.size + 1023) / 1024
	if e.memNode >= 0 && !s.down[e.memNode] {
		s.hits++
		cost := s.cfg.MemReadOverheadNs + kb*s.cfg.MemReadNsPerKB
		if fromNode >= 0 && fromNode != e.memNode {
			cost += kb * s.cfg.NetReadNsPerKB
		}
		s.readNs += cost
		return e.value, nil
	}
	// Fall back to a persistent replica; prefer a local one.
	s.misses++
	cost := s.cfg.DiskReadOverheadNs + kb*s.cfg.DiskReadNsPerKB
	local := false
	for _, r := range e.replicas {
		if r == fromNode && !s.down[r] {
			local = true
			break
		}
	}
	if !local {
		cost += kb * s.cfg.NetReadNsPerKB
	}
	s.readNs += cost
	// Re-populate the in-memory cache on the home node (read-repair).
	home := s.HomeNode(key)
	if s.cfg.InMemory && !s.down[home] {
		e.memNode = home
	}
	return e.value, nil
}

// Contains reports whether key is memoized, without charging a read.
func (s *Store) Contains(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[key]
	return ok
}

// Delete removes a key outright.
func (s *Store) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index[key]; ok {
		delete(s.index, key)
		s.evicted++
	}
}

// GC frees every entry whose interval ended before windowLo — the
// automatic policy of §6 ("free the storage occupied by data items that
// fall out of the current window"). It returns the number of entries
// collected.
func (s *Store) GC(windowLo uint64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	collected := 0
	for k, e := range s.index {
		if e.hi < windowLo {
			delete(s.index, k)
			collected++
		}
	}
	s.evicted += int64(collected)
	return collected
}

// GCFunc frees entries selected by a user-defined policy (the paper's
// "more aggressive user-defined policy").
func (s *Store) GCFunc(drop func(key string, lo, hi uint64, size int64) bool) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	collected := 0
	for k, e := range s.index {
		if drop(k, e.lo, e.hi, e.size) {
			delete(s.index, k)
			collected++
		}
	}
	s.evicted += int64(collected)
	return collected
}

// FailNode simulates the crash of a machine: its in-memory cache contents
// are lost and its persistent replicas become unreachable until
// RecoverNode. Reads transparently fall back to surviving replicas.
func (s *Store) FailNode(node int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.down[node] = true
	for _, e := range s.index {
		if e.memNode == node {
			e.memNode = -1
		}
	}
}

// RecoverNode brings a failed machine back (with empty RAM).
func (s *Store) RecoverNode(node int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.down, node)
}

// ChargeRead charges the read-cost model for size bytes of memoized state
// read by a task on fromNode whose data lives under key's placement,
// without an index lookup. It is used for bulk accounting of
// contraction-tree state reads. Its locality rules mirror Get exactly:
// an in-memory read is local only on the home node, and a persistent
// read is local when fromNode holds any live replica — not just the
// first one — so a read served from the second replica (Replicas ≥ 2)
// is no longer wrongly charged a network hop.
func (s *Store) ChargeRead(key string, size int64, fromNode int) {
	home := s.HomeNode(key)
	kb := (size + 1023) / 1024
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cfg.InMemory && !s.down[home] {
		s.hits++
		cost := s.cfg.MemReadOverheadNs + kb*s.cfg.MemReadNsPerKB
		if fromNode >= 0 && fromNode != home {
			cost += kb * s.cfg.NetReadNsPerKB
		}
		s.readNs += cost
		return
	}
	s.misses++
	cost := s.cfg.DiskReadOverheadNs + kb*s.cfg.DiskReadNsPerKB
	local := false
	for _, r := range s.replicaNodes(home) {
		if r == fromNode && !s.down[r] {
			local = true
			break
		}
	}
	if !local {
		cost += kb * s.cfg.NetReadNsPerKB
	}
	s.readNs += cost
}

// Stats returns a snapshot of the layer's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	var bytes int64
	for _, e := range s.index {
		bytes += e.size
	}
	return Stats{
		Hits:        s.hits,
		Misses:      s.misses,
		ReadTimeNs:  s.readNs,
		WriteTimeNs: s.writeNs,
		Bytes:       bytes,
		Entries:     int64(len(s.index)),
		Evicted:     s.evicted,
	}
}

// ResetReadStats clears the read counters (between measured runs).
func (s *Store) ResetReadStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hits, s.misses, s.readNs = 0, 0, 0
}
