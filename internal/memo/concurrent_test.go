package memo

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
)

// hammerOps drives one goroutine's deterministic slice of work against a
// store: puts of goroutine-private keys, gets and bulk charges over the
// shared key space. Every op's simulated cost depends only on the key and
// fromNode (no failures, in-memory cache on), so the Stats totals are
// interleaving-independent and must equal a sequential run's.
func hammerOps(s *Store, goroutine, rounds int) {
	for r := 0; r < rounds; r++ {
		key := fmt.Sprintf("g%d-r%d", goroutine, r)
		s.Put(key, r, int64(1024*(1+r%7)), uint64(r), uint64(r))
		if _, err := s.Get(key, s.HomeNode(key)); err != nil {
			panic(err)
		}
		shared := fmt.Sprintf("shared-%d", r%16)
		s.ChargeRead(shared, int64(2048+r%512), goroutine%s.cfg.Nodes)
		s.ChargeWrite(int64(512 * (1 + r%3)))
	}
}

// TestStoreConcurrentStatsMatchSequential is the contention satellite
// test: GOMAXPROCS goroutines hammer the sharded store concurrently
// (under -race in CI), and every Stats total must equal the sum a
// sequential execution of the same ops produces. Hits, misses, and
// read/write time are atomics; entries and resident bytes are maintained
// under shard locks — any lost update or double count diverges the
// totals.
func TestStoreConcurrentStatsMatchSequential(t *testing.T) {
	goroutines := runtime.GOMAXPROCS(0)
	if goroutines < 4 {
		goroutines = 4
	}
	const rounds = 200

	cfg := testConfig()
	cfg.Nodes = 8

	seq := NewStore(cfg)
	for g := 0; g < goroutines; g++ {
		hammerOps(seq, g, rounds)
	}
	want := seq.Stats()

	conc := NewStore(cfg)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			hammerOps(conc, g, rounds)
		}(g)
	}
	wg.Wait()
	got := conc.Stats()

	if got != want {
		t.Fatalf("concurrent stats diverge from sequential sum:\n got %+v\nwant %+v", got, want)
	}

	// Every goroutine-private key must be retrievable afterwards.
	for g := 0; g < goroutines; g++ {
		key := fmt.Sprintf("g%d-r%d", g, rounds-1)
		if !conc.Contains(key) {
			t.Fatalf("key %s lost under concurrency", key)
		}
	}
}

// TestStoreConcurrentGCAndReads interleaves GC sweeps, node failures, and
// reads; the test asserts only invariants that hold under any
// interleaving (no panics, non-negative stats, entries+evicted
// conservation) and runs under -race to flush locking bugs on the
// maintenance paths.
func TestStoreConcurrentGCAndReads(t *testing.T) {
	cfg := testConfig()
	cfg.Nodes = 8
	s := NewStore(cfg)
	const keys = 256
	for i := 0; i < keys; i++ {
		s.Put(fmt.Sprintf("k%d", i), i, 1024, uint64(i), uint64(i))
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				_, _ = s.Get(fmt.Sprintf("k%d", i), g)
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for lo := uint64(0); lo < keys; lo += 16 {
			s.GC(lo)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := 0; n < cfg.Nodes; n++ {
			s.FailNode(n)
			s.RecoverNode(n)
		}
	}()
	wg.Wait()
	st := s.Stats()
	if st.Entries < 0 || st.Bytes < 0 || st.ReadTimeNs < 0 {
		t.Fatalf("negative stats after concurrent maintenance: %+v", st)
	}
	if st.Entries+st.Evicted < keys {
		t.Fatalf("entries %d + evicted %d < %d puts", st.Entries, st.Evicted, keys)
	}
}
