package memo

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
)

// mutexStore replicates the pre-shard design for benchmarking: one mutex
// guarding the whole index AND every counter, so concurrent readers,
// writers, and cost-model charges all serialize. The cost arithmetic is
// identical to Store's; only the locking differs.
type mutexStore struct {
	cfg     Config
	mu      sync.Mutex
	index   map[string]*entry
	failed  map[int]bool
	hits    int64
	misses  int64
	readNs  int64
	writeNs int64
}

func newMutexStore(cfg Config) *mutexStore {
	cfg.normalize()
	return &mutexStore{cfg: cfg, index: make(map[string]*entry), failed: make(map[int]bool)}
}

func (s *mutexStore) homeNode(key string) int {
	return int(hashKey32(key) % uint32(s.cfg.Nodes))
}

func (s *mutexStore) put(key string, value any, size int64, lo, hi uint64) int64 {
	home := s.homeNode(key)
	reps := make([]int, 0, s.cfg.Replicas)
	for i := 1; i <= s.cfg.Replicas; i++ {
		reps = append(reps, (home+i)%s.cfg.Nodes)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	mem := home
	if !s.cfg.InMemory || s.failed[home] {
		mem = -1
	}
	s.index[key] = &entry{value: value, size: size, memNode: mem, replicas: reps, lo: lo, hi: hi}
	kb := (size + 1023) / 1024
	cost := kb*s.cfg.MemWriteNsPerKB + int64(len(reps))*kb*s.cfg.DiskWriteNsPerKB
	s.writeNs += cost
	return cost
}

func (s *mutexStore) get(key string, fromNode int) (any, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.index[key]
	if !ok {
		return nil, ErrNotFound
	}
	kb := (e.size + 1023) / 1024
	if e.memNode >= 0 && !s.failed[e.memNode] {
		cost := s.cfg.MemReadOverheadNs + kb*s.cfg.MemReadNsPerKB
		if fromNode >= 0 && fromNode != e.memNode {
			cost += kb * s.cfg.NetReadNsPerKB
		}
		s.hits++
		s.readNs += cost
		return e.value, nil
	}
	cost := s.cfg.DiskReadOverheadNs + kb*s.cfg.DiskReadNsPerKB
	local := false
	for _, r := range e.replicas {
		if r == fromNode && !s.failed[r] {
			local = true
			break
		}
	}
	if !local {
		cost += kb * s.cfg.NetReadNsPerKB
	}
	s.misses++
	s.readNs += cost
	return e.value, nil
}

func (s *mutexStore) chargeRead(key string, size int64, fromNode int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	home := s.homeNode(key)
	kb := (size + 1023) / 1024
	if s.cfg.InMemory && !s.failed[home] {
		cost := s.cfg.MemReadOverheadNs + kb*s.cfg.MemReadNsPerKB
		if fromNode >= 0 && fromNode != home {
			cost += kb * s.cfg.NetReadNsPerKB
		}
		s.hits++
		s.readNs += cost
		return
	}
	s.misses++
	s.readNs += s.cfg.DiskReadOverheadNs + kb*s.cfg.DiskReadNsPerKB + kb*s.cfg.NetReadNsPerKB
}

func (s *mutexStore) chargeWrite(size int64) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	kb := (size + 1023) / 1024
	cost := kb*s.cfg.MemWriteNsPerKB + int64(s.cfg.Replicas)*kb*s.cfg.DiskWriteNsPerKB
	s.writeNs += cost
	return cost
}

// stats replicates the pre-shard Stats: resident bytes and entry counts
// were not maintained incrementally, so the snapshot walked the whole
// index — under the same mutex every reader and charge serializes on.
func (s *mutexStore) stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{Hits: s.hits, Misses: s.misses, ReadTimeNs: s.readNs, WriteTimeNs: s.writeNs}
	for _, e := range s.index {
		st.Entries++
		st.Bytes += e.size
	}
	return st
}

// memoOps abstracts the hot read path shared by Store and mutexStore so
// one benchmark body drives both.
type memoOps interface {
	get(key string, fromNode int) (any, error)
	chargeRead(key string, size int64, fromNode int)
	chargeWrite(size int64) int64
	stats() Stats
}

// shardedOps adapts *Store to memoOps.
type shardedOps struct{ s *Store }

func (a shardedOps) get(key string, fromNode int) (any, error) { return a.s.Get(key, fromNode) }
func (a shardedOps) chargeRead(key string, size int64, fromNode int) {
	a.s.ChargeRead(key, size, fromNode)
}
func (a shardedOps) chargeWrite(size int64) int64 { return a.s.ChargeWrite(size) }
func (a shardedOps) stats() Stats                 { return a.s.Stats() }

// benchKeys is the resident window state: a few thousand memoized tree
// nodes, the steady state of a contraction tree over a window of a few
// hundred splits × partitions.
const benchKeys = 8192

// statsEvery is how often a worker snapshots stats relative to node
// charges: roughly one end-of-run metrics snapshot per ~hundred
// charged nodes, matching the runtime's per-run accounting cadence.
const statsEvery = 128

func benchKey(i int) string { return fmt.Sprintf("node-%d", i%benchKeys) }

// runMemoBench drives the contraction engine's per-node access pattern —
// an indexed Get, a bulk ChargeRead, a bulk ChargeWrite, and a stats
// snapshot every statsEvery nodes — from the given number of goroutines.
// GOMAXPROCS is raised to the goroutine count for the duration so
// contention is real even on a single-core runner (oversubscribed
// goroutines park on the contended mutex futex instead of merely
// time-slicing).
func runMemoBench(b *testing.B, ops memoOps, goroutines int) {
	prev := runtime.GOMAXPROCS(goroutines)
	defer runtime.GOMAXPROCS(prev)
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N / goroutines
	if b.N%goroutines != 0 {
		per++
	}
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := g * per
			for i := 0; i < per; i++ {
				key := benchKey(base + i)
				if _, err := ops.get(key, (base+i)%8); err != nil {
					panic(err)
				}
				ops.chargeRead(key, 4096, (base+i)%8)
				ops.chargeWrite(2048)
				if i%statsEvery == statsEvery-1 {
					if st := ops.stats(); st.Entries < benchKeys {
						panic("entries lost during benchmark")
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// BenchmarkMemoSharded measures the sharded store's per-node access
// pattern at 1 and 8 goroutines: shard locks only on Get, lock-free
// charges, O(1) stats from atomics.
func BenchmarkMemoSharded(b *testing.B) {
	for _, goroutines := range []int{1, 8} {
		b.Run(fmt.Sprintf("goroutines=%d", goroutines), func(b *testing.B) {
			s := NewStore(testConfig())
			for i := 0; i < benchKeys; i++ {
				s.Put(benchKey(i), i, 4096, uint64(i), uint64(i))
			}
			runMemoBench(b, shardedOps{s}, goroutines)
		})
	}
}

// BenchmarkMemoSingleMutex is the pre-shard baseline under the identical
// workload — every op and every O(entries) stats walk serializes on one
// mutex. The goroutines=8 comparison against BenchmarkMemoSharded is the
// contention win recorded in BENCH_merge.json.
func BenchmarkMemoSingleMutex(b *testing.B) {
	for _, goroutines := range []int{1, 8} {
		b.Run(fmt.Sprintf("goroutines=%d", goroutines), func(b *testing.B) {
			s := newMutexStore(testConfig())
			for i := 0; i < benchKeys; i++ {
				s.put(benchKey(i), i, 4096, uint64(i), uint64(i))
			}
			runMemoBench(b, s, goroutines)
		})
	}
}
