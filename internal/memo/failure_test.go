package memo

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestFailNodeDuringInFlightOps crashes and recovers nodes while puts,
// gets, and GC sweeps are in flight on other goroutines. Run under -race
// (CI does): the COW failed-node set and per-shard locks must keep every
// interleaving safe, and once the cluster heals every key must be
// readable again.
func TestFailNodeDuringInFlightOps(t *testing.T) {
	s := NewStore(testConfig())
	const (
		workers = 8
		keysPer = 64
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < keysPer; i++ {
				key := fmt.Sprintf("w%d-k%d", w, i)
				s.Put(key, i, 1024, uint64(i), uint64(i+1))
				// Reads during failures may miss to a replica or fail
				// outright when every holder is down — both are legal;
				// corruption and races are not.
				if v, err := s.Get(key, w%4); err == nil && v.(int) != i {
					t.Errorf("key %s: got %v, want %d", key, v, i)
				}
				s.Contains(key)
			}
		}()
	}
	// Fault injector: rolling crash/recover across all nodes, plus a GC
	// sweep in the middle of the storm.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 0; round < 20; round++ {
			node := round % 4
			s.FailNode(node)
			if round == 10 {
				s.GC(8) // evict intervals ending before 8 mid-failure
			}
			s.RecoverNode(node)
		}
	}()
	wg.Wait()

	// Cluster healed: every key written with hi >= 8 must be readable.
	for w := 0; w < workers; w++ {
		for i := 8; i < keysPer; i++ {
			key := fmt.Sprintf("w%d-k%d", w, i)
			if _, err := s.Get(key, 0); err != nil {
				t.Fatalf("after recovery, key %s: %v", key, err)
			}
		}
	}
}

// TestRecoverNodeThenImmediateGC recovers a node and immediately sweeps:
// the recovered (empty-RAM) node must not resurrect collected entries,
// and the store's entry/eviction accounting must stay consistent.
func TestRecoverNodeThenImmediateGC(t *testing.T) {
	s := NewStore(testConfig())
	for i := uint64(0); i < 10; i++ {
		s.Put(fmt.Sprintf("k%d", i), int(i), 2048, i, i+1)
	}
	home := s.HomeNode("k3")
	s.FailNode(home)
	s.RecoverNode(home)
	// Immediately GC everything whose interval ended before 5.
	collected := s.GC(5)
	if collected != 4 {
		t.Fatalf("collected %d entries, want 4 (hi in 1..4 < 5)", collected)
	}
	st := s.Stats()
	if st.Entries != 6 || st.Evicted != int64(collected) {
		t.Fatalf("stats = %+v, want 6 live / %d evicted", st, collected)
	}
	for i := uint64(0); i < 10; i++ {
		key := fmt.Sprintf("k%d", i)
		_, err := s.Get(key, 0)
		if i+1 < 5 {
			if !errors.Is(err, ErrNotFound) {
				t.Fatalf("collected key %s still readable (err=%v)", key, err)
			}
		} else if err != nil {
			t.Fatalf("surviving key %s: %v", key, err)
		}
	}
}

// TestDoubleFailSameNode fails the same node twice before recovering it:
// the failure set is a set, not a counter, so one RecoverNode heals it.
func TestDoubleFailSameNode(t *testing.T) {
	s := NewStore(testConfig())
	s.Put("k", "v", 2048, 0, 1)
	home := s.HomeNode("k")
	s.FailNode(home)
	s.FailNode(home) // double fail must be idempotent
	if _, err := s.Get("k", (home+1)%4); err != nil {
		t.Fatalf("replica fallback after double fail: %v", err)
	}
	s.RecoverNode(home)
	if _, err := s.Get("k", home); err != nil {
		t.Fatalf("read after single recover of a double-failed node: %v", err)
	}
	// Recovering an already-up node is a no-op, not a panic.
	s.RecoverNode(home)
	if _, err := s.Get("k", home); err != nil {
		t.Fatal(err)
	}
}
