package memo

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

func testConfig() Config {
	return Config{
		Nodes:           4,
		Replicas:        2,
		InMemory:        true,
		MemReadNsPerKB:  10,
		DiskReadNsPerKB: 1000,
		NetReadNsPerKB:  500,
	}
}

func TestPutGet(t *testing.T) {
	s := NewStore(testConfig())
	s.Put("a", 42, 2048, 0, 10)
	v, err := s.Get("a", s.HomeNode("a"))
	if err != nil {
		t.Fatal(err)
	}
	if v.(int) != 42 {
		t.Fatalf("got %v", v)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("stats = %+v, want 1 hit", st)
	}
	if st.Bytes != 2048 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGetMissing(t *testing.T) {
	s := NewStore(testConfig())
	_, err := s.Get("nope", 0)
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestLocalReadCheaperThanRemote(t *testing.T) {
	s := NewStore(testConfig())
	s.Put("k", "v", 10240, 0, 1)
	home := s.HomeNode("k")
	if _, err := s.Get("k", home); err != nil {
		t.Fatal(err)
	}
	localNs := s.Stats().ReadTimeNs
	s.ResetReadStats()
	if _, err := s.Get("k", (home+1)%4); err != nil {
		t.Fatal(err)
	}
	remoteNs := s.Stats().ReadTimeNs
	if remoteNs <= localNs {
		t.Fatalf("remote read (%d ns) should cost more than local (%d ns)", remoteNs, localNs)
	}
}

func TestInMemoryCheaperThanPersistent(t *testing.T) {
	mem := NewStore(testConfig())
	cfg := testConfig()
	cfg.InMemory = false
	disk := NewStore(cfg)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("k%d", i)
		mem.Put(key, i, 4096, 0, 1)
		disk.Put(key, i, 4096, 0, 1)
	}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("k%d", i)
		if _, err := mem.Get(key, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := disk.Get(key, 0); err != nil {
			t.Fatal(err)
		}
	}
	m, d := mem.Stats(), disk.Stats()
	if m.ReadTimeNs >= d.ReadTimeNs {
		t.Fatalf("in-memory reads (%d ns) should beat persistent reads (%d ns)", m.ReadTimeNs, d.ReadTimeNs)
	}
	if d.Hits != 0 {
		t.Fatalf("persistent-only store recorded %d cache hits", d.Hits)
	}
	// Table 2 reports 50–68%% savings; our cost model should land in a
	// broadly similar band.
	saving := 1 - float64(m.ReadTimeNs)/float64(d.ReadTimeNs)
	if saving < 0.3 {
		t.Fatalf("saving = %.2f, want substantial", saving)
	}
}

func TestNodeFailureFallsBackToReplicas(t *testing.T) {
	s := NewStore(testConfig())
	s.Put("k", "v", 2048, 0, 1)
	home := s.HomeNode("k")
	s.FailNode(home)
	v, err := s.Get("k", (home+1)%4)
	if err != nil {
		t.Fatalf("read after failure: %v", err)
	}
	if v.(string) != "v" {
		t.Fatalf("got %v", v)
	}
	st := s.Stats()
	if st.Misses != 1 {
		t.Fatalf("stats = %+v, want a miss (replica read)", st)
	}
}

func TestRecoveryRepopulatesCache(t *testing.T) {
	s := NewStore(testConfig())
	s.Put("k", "v", 2048, 0, 1)
	home := s.HomeNode("k")
	s.FailNode(home)
	s.RecoverNode(home)
	// First read is a replica read with read-repair…
	if _, err := s.Get("k", home); err != nil {
		t.Fatal(err)
	}
	s.ResetReadStats()
	// …second read hits the repopulated cache.
	if _, err := s.Get("k", home); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Hits != 1 {
		t.Fatalf("stats = %+v, want a cache hit after read-repair", st)
	}
}

func TestGCWindow(t *testing.T) {
	s := NewStore(testConfig())
	for i := uint64(0); i < 10; i++ {
		s.Put(fmt.Sprintf("k%d", i), i, 100, i, i)
	}
	if n := s.GC(5); n != 5 {
		t.Fatalf("collected %d, want 5", n)
	}
	if s.Contains("k3") {
		t.Fatal("k3 should be collected")
	}
	if !s.Contains("k7") {
		t.Fatal("k7 should survive")
	}
	if st := s.Stats(); st.Entries != 5 || st.Evicted != 5 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGCFuncPolicy(t *testing.T) {
	s := NewStore(testConfig())
	s.Put("big", 1, 1<<20, 0, 100)
	s.Put("small", 2, 16, 0, 100)
	n := s.GCFunc(func(_ string, _, _ uint64, size int64) bool { return size > 1024 })
	if n != 1 || s.Contains("big") || !s.Contains("small") {
		t.Fatalf("aggressive policy misfired: n=%d", n)
	}
}

func TestDelete(t *testing.T) {
	s := NewStore(testConfig())
	s.Put("k", 1, 10, 0, 1)
	s.Delete("k")
	if s.Contains("k") {
		t.Fatal("delete failed")
	}
	s.Delete("k") // idempotent
}

func TestChargeReadModes(t *testing.T) {
	s := NewStore(testConfig())
	s.ChargeRead("part-0", 10240, s.HomeNode("part-0"))
	local := s.Stats().ReadTimeNs
	s.ResetReadStats()
	s.ChargeRead("part-0", 10240, s.HomeNode("part-0")+1)
	remote := s.Stats().ReadTimeNs
	if remote <= local {
		t.Fatalf("remote charge (%d) should exceed local (%d)", remote, local)
	}
}

func TestHomeNodeDeterministic(t *testing.T) {
	s := NewStore(testConfig())
	property := func(key string) bool {
		n := s.HomeNode(key)
		return n >= 0 && n < 4 && n == s.HomeNode(key)
	}
	if err := quick.Check(property, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConfigNormalization(t *testing.T) {
	s := NewStore(Config{})
	s.Put("k", 1, 1, 0, 1)
	if _, err := s.Get("k", 0); err != nil {
		t.Fatal(err)
	}
}

// TestChargeReadReplicaLocality is the regression test for ChargeRead
// hardcoding the first replica in its disk-path locality check: with
// Replicas ≥ 2 a read served from any live replica must be charged local
// disk cost, exactly as Get charges it.
func TestChargeReadReplicaLocality(t *testing.T) {
	cfg := testConfig()
	cfg.Nodes = 8
	cfg.Replicas = 2
	cfg.InMemory = false // force the persistent-read path
	const size = 10240
	probe := NewStore(cfg)
	home := probe.HomeNode("part-0")
	firstReplica := (home + 1) % cfg.Nodes
	secondReplica := (home + 2) % cfg.Nodes
	cases := []struct {
		name     string
		fromNode int
		wantNet  bool
	}{
		{"first-replica", firstReplica, false},
		{"second-replica", secondReplica, false},
		{"home-not-a-replica", home, true},
		{"unrelated-node", (home + 3) % cfg.Nodes, true},
		{"no-locality", -1, true},
	}
	kb := int64(size / 1024)
	localCost := cfg.DiskReadOverheadNs + kb*cfg.DiskReadNsPerKB
	remoteCost := localCost + kb*cfg.NetReadNsPerKB
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := NewStore(cfg)
			s.ChargeRead("part-0", size, tc.fromNode)
			want := localCost
			if tc.wantNet {
				want = remoteCost
			}
			if got := s.Stats().ReadTimeNs; got != want {
				t.Fatalf("ChargeRead from node %d cost %d, want %d", tc.fromNode, got, want)
			}
			// The bulk path must agree with the indexed Get path.
			s.ResetReadStats()
			s.Put("part-0", "v", size, 0, 1)
			if _, err := s.Get("part-0", tc.fromNode); err != nil {
				t.Fatal(err)
			}
			if got := s.Stats().ReadTimeNs; got != want {
				t.Fatalf("Get from node %d cost %d, ChargeRead charged %d", tc.fromNode, got, want)
			}
		})
	}
}

// TestZeroValueStoreDoesNotPanic guards HomeNode against a zero divisor:
// a Store that skipped NewStore's normalization (zero-value Config fields)
// must not panic on uint32(0) modulo.
func TestZeroValueStoreDoesNotPanic(t *testing.T) {
	var s Store
	if n := s.HomeNode("k"); n != 0 {
		t.Fatalf("zero-value store home = %d, want 0", n)
	}
	ns := NewStore(Config{})
	if n := ns.HomeNode("k"); n < 0 || n >= 1 {
		t.Fatalf("normalized zero config home = %d, want 0", n)
	}
	ns.ChargeRead("k", 1024, 0) // must not panic either
}
