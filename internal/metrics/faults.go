package metrics

import (
	"fmt"
	"sync/atomic"
)

// FaultStats is a point-in-time snapshot of the fault-tolerance event
// counters (FaultRecorder.Snapshot). Every retry, hedge, breaker
// transition, and degradation event in the distributed runtime increments
// exactly one of these, so a run's failure handling is fully observable.
type FaultStats struct {
	// Retries counts splits re-queued for execution after a worker
	// failure (RPC error, deadline expiry, or corrupted response).
	Retries int64
	// DeadlinesExpired counts RPCs abandoned at their per-task deadline.
	DeadlinesExpired int64
	// Redials counts reconnect attempts to down workers (each one gated
	// by the breaker/backoff state, so this stays small against a dead
	// host).
	Redials int64
	// CorruptFrames counts responses discarded because a payload frame
	// failed its checksum.
	CorruptFrames int64
	// HedgesLaunched counts speculative duplicate batches issued for
	// slow in-flight work; HedgesWon counts hedges that delivered at
	// least one result before the original.
	HedgesLaunched int64
	HedgesWon      int64
	// BreakerOpened / BreakerHalfOpen / BreakerClosed count per-worker
	// circuit-breaker transitions (closed→open, open→half-open probe,
	// half-open→closed).
	BreakerOpened   int64
	BreakerHalfOpen int64
	BreakerClosed   int64
	// BudgetExhausted counts batches abandoned after the per-batch retry
	// budget ran out.
	BudgetExhausted int64
	// LocalFallbacks counts map batches that degraded from remote to
	// in-process execution after the pool gave up.
	LocalFallbacks int64
	// MemoRecomputes counts memoized nodes recomputed because their home
	// node and every replica were unreachable (or the entry was evicted).
	MemoRecomputes int64
}

// String renders the non-zero counters on one line (diagnostics).
func (s FaultStats) String() string {
	out := ""
	add := func(name string, v int64) {
		if v != 0 {
			if out != "" {
				out += " "
			}
			out += fmt.Sprintf("%s=%d", name, v)
		}
	}
	add("retries", s.Retries)
	add("deadlines", s.DeadlinesExpired)
	add("redials", s.Redials)
	add("corrupt", s.CorruptFrames)
	add("hedges", s.HedgesLaunched)
	add("hedge-wins", s.HedgesWon)
	add("breaker-open", s.BreakerOpened)
	add("breaker-half", s.BreakerHalfOpen)
	add("breaker-close", s.BreakerClosed)
	add("budget-exhausted", s.BudgetExhausted)
	add("local-fallbacks", s.LocalFallbacks)
	add("memo-recomputes", s.MemoRecomputes)
	if out == "" {
		return "no fault events"
	}
	return out
}

// FaultRecorder accumulates fault-tolerance events. All fields are
// atomics, so producers on any goroutine (pool senders, the health
// checker, partition workers) increment without locking. One recorder is
// typically shared between a dist.Pool and the sliderrt.Runtime driving
// it (sliderrt.Config.Faults), so the whole degradation ladder lands in a
// single snapshot. Use by pointer; the zero value is ready.
type FaultRecorder struct {
	Retries          atomic.Int64
	DeadlinesExpired atomic.Int64
	Redials          atomic.Int64
	CorruptFrames    atomic.Int64
	HedgesLaunched   atomic.Int64
	HedgesWon        atomic.Int64
	BreakerOpened    atomic.Int64
	BreakerHalfOpen  atomic.Int64
	BreakerClosed    atomic.Int64
	BudgetExhausted  atomic.Int64
	LocalFallbacks   atomic.Int64
	MemoRecomputes   atomic.Int64
}

// Snapshot returns the current counter values.
func (r *FaultRecorder) Snapshot() FaultStats {
	return FaultStats{
		Retries:          r.Retries.Load(),
		DeadlinesExpired: r.DeadlinesExpired.Load(),
		Redials:          r.Redials.Load(),
		CorruptFrames:    r.CorruptFrames.Load(),
		HedgesLaunched:   r.HedgesLaunched.Load(),
		HedgesWon:        r.HedgesWon.Load(),
		BreakerOpened:    r.BreakerOpened.Load(),
		BreakerHalfOpen:  r.BreakerHalfOpen.Load(),
		BreakerClosed:    r.BreakerClosed.Load(),
		BudgetExhausted:  r.BudgetExhausted.Load(),
		LocalFallbacks:   r.LocalFallbacks.Load(),
		MemoRecomputes:   r.MemoRecomputes.Load(),
	}
}
