package metrics

import (
	"fmt"
	"sync/atomic"
)

// FaultStats is a point-in-time snapshot of the fault-tolerance event
// counters (FaultRecorder.Snapshot). Every retry, hedge, breaker
// transition, and degradation event in the distributed runtime increments
// exactly one of these, so a run's failure handling is fully observable.
type FaultStats struct {
	// Retries counts splits re-queued for execution after a worker
	// failure (RPC error, deadline expiry, or corrupted response).
	Retries int64
	// DeadlinesExpired counts RPCs abandoned at their per-task deadline.
	DeadlinesExpired int64
	// Redials counts reconnect attempts to down workers (each one gated
	// by the breaker/backoff state, so this stays small against a dead
	// host).
	Redials int64
	// CorruptFrames counts responses discarded because a payload frame
	// failed its checksum.
	CorruptFrames int64
	// HedgesLaunched counts speculative duplicate batches issued for
	// slow in-flight work; HedgesWon counts hedges that delivered at
	// least one result before the original.
	HedgesLaunched int64
	HedgesWon      int64
	// BreakerOpened / BreakerHalfOpen / BreakerClosed count per-worker
	// circuit-breaker transitions (closed→open, open→half-open probe,
	// half-open→closed).
	BreakerOpened   int64
	BreakerHalfOpen int64
	BreakerClosed   int64
	// BudgetExhausted counts batches abandoned after the per-batch retry
	// budget ran out.
	BudgetExhausted int64
	// LocalFallbacks counts map batches that degraded from remote to
	// in-process execution after the pool gave up.
	LocalFallbacks int64
	// MemoRecomputes counts memoized nodes recomputed because their home
	// node and every replica were unreachable (or the entry was evicted).
	MemoRecomputes int64
	// RPCLatency is the distribution of successful batch RPC latencies —
	// the samples the pool's hedging quantile is computed from, exported
	// here instead of living as pool-private state.
	RPCLatency HistogramSnapshot
}

// EachCounter visits every fault-event counter with its stable name, in
// declaration order (shared by String and the Prometheus renderer, so
// names cannot drift between the two).
func (s FaultStats) EachCounter(fn func(name string, v int64)) {
	fn("retries", s.Retries)
	fn("deadlines", s.DeadlinesExpired)
	fn("redials", s.Redials)
	fn("corrupt", s.CorruptFrames)
	fn("hedges", s.HedgesLaunched)
	fn("hedge-wins", s.HedgesWon)
	fn("breaker-open", s.BreakerOpened)
	fn("breaker-half", s.BreakerHalfOpen)
	fn("breaker-close", s.BreakerClosed)
	fn("budget-exhausted", s.BudgetExhausted)
	fn("local-fallbacks", s.LocalFallbacks)
	fn("memo-recomputes", s.MemoRecomputes)
}

// Sub returns the event deltas s − o (the fault activity between two
// snapshots of the same recorder) — how a single slide's degradation
// events are attributed to its span trace.
func (s FaultStats) Sub(o FaultStats) FaultStats {
	return FaultStats{
		Retries:          s.Retries - o.Retries,
		DeadlinesExpired: s.DeadlinesExpired - o.DeadlinesExpired,
		Redials:          s.Redials - o.Redials,
		CorruptFrames:    s.CorruptFrames - o.CorruptFrames,
		HedgesLaunched:   s.HedgesLaunched - o.HedgesLaunched,
		HedgesWon:        s.HedgesWon - o.HedgesWon,
		BreakerOpened:    s.BreakerOpened - o.BreakerOpened,
		BreakerHalfOpen:  s.BreakerHalfOpen - o.BreakerHalfOpen,
		BreakerClosed:    s.BreakerClosed - o.BreakerClosed,
		BudgetExhausted:  s.BudgetExhausted - o.BudgetExhausted,
		LocalFallbacks:   s.LocalFallbacks - o.LocalFallbacks,
		MemoRecomputes:   s.MemoRecomputes - o.MemoRecomputes,
		RPCLatency:       s.RPCLatency.Sub(o.RPCLatency),
	}
}

// Degraded reports whether the snapshot records any event that degraded
// work (a retry, an expired deadline, a corrupt frame, an exhausted
// budget, a local fallback, or a memo recompute). Breaker transitions
// and hedge wins alone do not count — they are the machinery working.
func (s FaultStats) Degraded() bool {
	return s.Retries != 0 || s.DeadlinesExpired != 0 || s.CorruptFrames != 0 ||
		s.BudgetExhausted != 0 || s.LocalFallbacks != 0 || s.MemoRecomputes != 0 ||
		s.HedgesLaunched != 0
}

// String renders the non-zero counters (and the RPC latency quantiles,
// when any batches were recorded) on one line (diagnostics).
func (s FaultStats) String() string {
	out := ""
	add := func(name string, v int64) {
		if v != 0 {
			if out != "" {
				out += " "
			}
			out += fmt.Sprintf("%s=%d", name, v)
		}
	}
	s.EachCounter(add)
	if n := s.RPCLatency.total(); n > 0 {
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("rpc-batches=%d rpc-p50=%v rpc-p95=%v rpc-p99=%v",
			n, s.RPCLatency.Quantile(0.50), s.RPCLatency.Quantile(0.95), s.RPCLatency.Quantile(0.99))
	}
	if out == "" {
		return "no fault events"
	}
	return out
}

// FaultRecorder accumulates fault-tolerance events. All fields are
// atomics, so producers on any goroutine (pool senders, the health
// checker, partition workers) increment without locking. One recorder is
// typically shared between a dist.Pool and the sliderrt.Runtime driving
// it (sliderrt.Config.Faults), so the whole degradation ladder lands in a
// single snapshot. Use by pointer; the zero value is ready.
type FaultRecorder struct {
	Retries          atomic.Int64
	DeadlinesExpired atomic.Int64
	Redials          atomic.Int64
	CorruptFrames    atomic.Int64
	HedgesLaunched   atomic.Int64
	HedgesWon        atomic.Int64
	BreakerOpened    atomic.Int64
	BreakerHalfOpen  atomic.Int64
	BreakerClosed    atomic.Int64
	BudgetExhausted  atomic.Int64
	LocalFallbacks   atomic.Int64
	MemoRecomputes   atomic.Int64
	// RPCLatency records every successful batch RPC's latency; the pool's
	// hedging threshold is a quantile of it, and Snapshot exports it so
	// the hedging decision is never computed from numbers an operator
	// cannot see.
	RPCLatency Histogram
}

// Snapshot returns the current counter values.
func (r *FaultRecorder) Snapshot() FaultStats {
	return FaultStats{
		RPCLatency:       r.RPCLatency.Snapshot(),
		Retries:          r.Retries.Load(),
		DeadlinesExpired: r.DeadlinesExpired.Load(),
		Redials:          r.Redials.Load(),
		CorruptFrames:    r.CorruptFrames.Load(),
		HedgesLaunched:   r.HedgesLaunched.Load(),
		HedgesWon:        r.HedgesWon.Load(),
		BreakerOpened:    r.BreakerOpened.Load(),
		BreakerHalfOpen:  r.BreakerHalfOpen.Load(),
		BreakerClosed:    r.BreakerClosed.Load(),
		BudgetExhausted:  r.BudgetExhausted.Load(),
		LocalFallbacks:   r.LocalFallbacks.Load(),
		MemoRecomputes:   r.MemoRecomputes.Load(),
	}
}
