package metrics

import (
	"fmt"
	"math/bits"
	"strings"
	"sync/atomic"
	"time"
)

// HistBuckets is the number of latency buckets every Histogram carries.
// Bucket i covers durations in (1µs·2^(i−1), 1µs·2^i]; bucket 0 absorbs
// everything at or below 1µs and the last bucket absorbs the long tail
// (1µs·2^39 ≈ 152h, far beyond any slide). Fixed bounds make histograms
// from different components mergeable without negotiation and keep a
// snapshot a comparable value type (a plain array).
const HistBuckets = 40

// histBase is the upper bound of bucket 0, in nanoseconds (1µs).
const histBase = 1000

// histIndex returns the bucket for a duration of ns nanoseconds: the
// smallest i with 1µs·2^i ≥ ns.
func histIndex(ns int64) int {
	if ns <= histBase {
		return 0
	}
	i := bits.Len64(uint64((ns - 1) / histBase))
	if i >= HistBuckets {
		return HistBuckets - 1
	}
	return i
}

// HistogramUpperBound returns bucket i's inclusive upper bound.
func HistogramUpperBound(i int) time.Duration {
	return time.Duration(histBase << uint(i))
}

// Histogram is a fixed-bucket latency histogram designed for hot paths:
// recording is three atomic adds (no locks, no allocation), histograms
// merge bucket-by-bucket because every instance shares the same bounds,
// and quantiles are read without stopping writers. The zero value is
// ready to use; use by pointer and do not copy after first use.
//
// Quantiles are reported as the upper bound of the bucket holding the
// requested rank, so they overestimate by at most 2× — the right bias
// for latency SLOs (never report a latency better than reality).
type Histogram struct {
	counts [HistBuckets]atomic.Int64
	sum    atomic.Int64
	count  atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) { h.ObserveNs(int64(d)) }

// ObserveNs records one duration given in nanoseconds. Negative values
// are clamped to zero. The bucket and sum are updated before the total
// count, so a concurrent Snapshot never sees a count exceeding the sum
// of its buckets (counters are monotone, never torn).
func (h *Histogram) ObserveNs(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.counts[histIndex(ns)].Add(1)
	h.sum.Add(ns)
	h.count.Add(1)
}

// Count returns how many observations were recorded.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total of all recorded durations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Quantile returns the q-th latency quantile (0 ≤ q ≤ 1), or 0 with no
// observations.
func (h *Histogram) Quantile(q float64) time.Duration {
	return h.Snapshot().Quantile(q)
}

// Merge adds o's observations into h (both keep recording independently
// afterwards). Merging a histogram into itself is not supported.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o == h {
		return
	}
	var n int64
	for i := range o.counts {
		c := o.counts[i].Load()
		if c != 0 {
			h.counts[i].Add(c)
			n += c
		}
	}
	h.sum.Add(o.sum.Load())
	h.count.Add(n)
}

// Snapshot freezes the histogram into a value. It does not stop writers,
// so a snapshot taken mid-run is not a single point in time — but every
// counter in it is monotone (never exceeds a later snapshot) and the
// total count never exceeds the sum of the bucket counts.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.SumNs = h.sum.Load()
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistogramSnapshot is an immutable, comparable copy of a Histogram.
type HistogramSnapshot struct {
	// Count is the number of observations (may trail the bucket sum by
	// in-flight recordings; see Histogram.Snapshot).
	Count int64
	// SumNs is the total of all observed durations in nanoseconds.
	SumNs int64
	// Counts holds per-bucket observation counts; bucket bounds are
	// HistogramUpperBound(i).
	Counts [HistBuckets]int64
}

// total returns the bucket-count total, the self-consistent denominator
// for quantiles.
func (s HistogramSnapshot) total() int64 {
	var n int64
	for _, c := range s.Counts {
		n += c
	}
	return n
}

// Quantile returns the q-th quantile as the upper bound of the bucket
// holding that rank, or 0 with no observations.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	n := s.total()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(n-1))
	var seen int64
	for i, c := range s.Counts {
		seen += c
		if seen > rank {
			return HistogramUpperBound(i)
		}
	}
	return HistogramUpperBound(HistBuckets - 1)
}

// Mean returns the average observed duration, or 0 with no observations.
func (s HistogramSnapshot) Mean() time.Duration {
	n := s.total()
	if n == 0 {
		return 0
	}
	return time.Duration(s.SumNs / n)
}

// Sub returns the per-bucket difference s − o (the observations recorded
// between two snapshots of the same histogram).
func (s HistogramSnapshot) Sub(o HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{Count: s.Count - o.Count, SumNs: s.SumNs - o.SumNs}
	for i := range s.Counts {
		out.Counts[i] = s.Counts[i] - o.Counts[i]
	}
	return out
}

// String renders the count, mean, and the standard quantile trio.
func (s HistogramSnapshot) String() string {
	if s.total() == 0 {
		return "n=0"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%v p50=%v p95=%v p99=%v",
		s.total(), s.Mean(), s.Quantile(0.50), s.Quantile(0.95), s.Quantile(0.99))
	return b.String()
}
