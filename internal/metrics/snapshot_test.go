package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRecorderSnapshotMidRun freezes Reports while workers are still
// recording tasks and counters, asserting every snapshot is internally
// consistent (Work equals the phase-work sum; reused tasks contribute no
// work) and counters are monotone across successive snapshots.
func TestRecorderSnapshotMidRun(t *testing.T) {
	r := NewRecorder()
	const workers = 6
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			phase := []Phase{PhaseMap, PhaseContraction, PhaseReduce}[w%3]
			for i := 0; i < perWorker; i++ {
				r.RecordTask(Task{Phase: phase, Cost: time.Microsecond, Reused: i%4 == 0})
				r.Add(Counters{CacheHits: 1})
			}
		}(w)
	}

	var prev Report
	for i := 0; i < 500; i++ {
		rep := r.Snapshot()
		var phaseSum time.Duration
		for _, w := range rep.PhaseWork {
			phaseSum += w
		}
		if rep.Work != phaseSum {
			t.Fatalf("torn snapshot: Work %v != phase sum %v", rep.Work, phaseSum)
		}
		if rep.Counters.CacheHits < prev.Counters.CacheHits {
			t.Fatalf("counter regressed: %d after %d", rep.Counters.CacheHits, prev.Counters.CacheHits)
		}
		if len(rep.Tasks) < len(prev.Tasks) {
			t.Fatalf("task list shrank: %d after %d", len(rep.Tasks), len(prev.Tasks))
		}
		prev = rep
	}
	wg.Wait()

	final := r.Snapshot()
	if got, want := len(final.Tasks), workers*perWorker; got != want {
		t.Fatalf("final task count = %d, want %d", got, want)
	}
	if got, want := final.Counters.CacheHits, int64(workers*perWorker); got != want {
		t.Fatalf("final CacheHits = %d, want %d", got, want)
	}
	// 1 in 4 tasks was a reuse and must not have contributed work.
	want := time.Duration(workers*perWorker) * time.Microsecond * 3 / 4
	if final.Work != want {
		t.Fatalf("final Work = %v, want %v", final.Work, want)
	}
}

// TestFaultStatsRPCLatency covers the satellite that moved the pool's
// private latency tracker into FaultStats: quantiles survive Snapshot,
// show up in String, and Sub subtracts the histogram too.
func TestFaultStatsRPCLatency(t *testing.T) {
	var r FaultRecorder
	if got := r.Snapshot().String(); strings.Contains(got, "rpc-") {
		t.Fatalf("String with no RPC samples mentions rpc: %q", got)
	}
	for i := 0; i < 99; i++ {
		r.RPCLatency.Observe(time.Millisecond)
	}
	r.RPCLatency.Observe(100 * time.Millisecond)
	s := r.Snapshot()
	if got := s.RPCLatency.Quantile(0.50); got < time.Millisecond || got > 2*time.Millisecond {
		t.Errorf("rpc p50 = %v, want ~1ms (bucket upper bound)", got)
	}
	if got := s.RPCLatency.Quantile(1.0); got < 100*time.Millisecond {
		t.Errorf("rpc p100 = %v, want ≥ 100ms", got)
	}
	str := s.String()
	for _, want := range []string{"rpc-batches=100", "rpc-p50=", "rpc-p95=", "rpc-p99="} {
		if !strings.Contains(str, want) {
			t.Errorf("String %q missing %q", str, want)
		}
	}
	// FaultStats stays comparable (the dist tests rely on == against the
	// zero value) and Sub covers the histogram.
	if s == (FaultStats{}) {
		t.Fatalf("snapshot with RPC samples compares equal to zero")
	}
	d := s.Sub(s)
	if d.RPCLatency.total() != 0 || d != (FaultStats{}) {
		t.Fatalf("self-subtraction not zero: %+v", d)
	}
}

// TestFaultStatsDegraded pins which counters mark a slide degraded.
func TestFaultStatsDegraded(t *testing.T) {
	if (FaultStats{}).Degraded() {
		t.Fatalf("zero stats degraded")
	}
	degrading := []FaultStats{
		{Retries: 1}, {DeadlinesExpired: 1}, {CorruptFrames: 1},
		{BudgetExhausted: 1}, {LocalFallbacks: 1}, {MemoRecomputes: 1},
		{HedgesLaunched: 1},
	}
	for _, s := range degrading {
		if !s.Degraded() {
			t.Errorf("%+v not degraded", s)
		}
	}
	benign := []FaultStats{{HedgesWon: 1}, {BreakerOpened: 1}, {BreakerHalfOpen: 1}, {BreakerClosed: 1}}
	for _, s := range benign {
		if s.Degraded() {
			t.Errorf("%+v reported degraded", s)
		}
	}
}

// TestFaultStatsEachCounter checks every counter is visited exactly once
// with its value.
func TestFaultStatsEachCounter(t *testing.T) {
	s := FaultStats{Retries: 1, HedgesLaunched: 2, MemoRecomputes: 3}
	seen := map[string]int64{}
	s.EachCounter(func(name string, v int64) {
		if _, dup := seen[name]; dup {
			t.Fatalf("counter %q visited twice", name)
		}
		seen[name] = v
	})
	if len(seen) != 12 {
		t.Fatalf("visited %d counters, want 12", len(seen))
	}
	if seen["retries"] != 1 || seen["hedges"] != 2 || seen["memo-recomputes"] != 3 {
		t.Fatalf("wrong values: %v", seen)
	}
}
