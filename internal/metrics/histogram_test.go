package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0}, {1000, 0}, // ≤ 1µs → bucket 0
		{1001, 1}, {2000, 1}, // (1µs, 2µs]
		{2001, 2}, {4000, 2},
		{int64(time.Millisecond), 10},
		{1 << 62, HistBuckets - 1}, // long tail clamps to the last bucket
	}
	for _, c := range cases {
		var h Histogram
		h.ObserveNs(c.ns)
		s := h.Snapshot()
		if s.Counts[c.want] != 1 {
			t.Errorf("ObserveNs(%d): want bucket %d, snapshot %v", c.ns, c.want, s.Counts)
		}
	}
	// The documented invariant: a value lands in the first bucket whose
	// upper bound is ≥ it.
	for i := 0; i < HistBuckets-1; i++ {
		if HistogramUpperBound(i)*2 != HistogramUpperBound(i+1) {
			t.Fatalf("bucket bounds not doubling at %d", i)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram quantile: want 0")
	}
	// 100 observations at ~2µs, 1 at ~1s: p50 in the 2µs bucket, p99+
	// pulled up only at the extreme.
	for i := 0; i < 100; i++ {
		h.Observe(2 * time.Microsecond)
	}
	h.Observe(time.Second)
	if got := h.Quantile(0.5); got != 2*time.Microsecond {
		t.Errorf("p50 = %v, want 2µs", got)
	}
	if got := h.Quantile(0.99); got != 2*time.Microsecond {
		t.Errorf("p99 = %v, want 2µs (100/101 observations)", got)
	}
	if got := h.Quantile(1.0); got < time.Second {
		t.Errorf("p100 = %v, want ≥ 1s", got)
	}
	// Quantile never underestimates: the bucket upper bound is ≥ every
	// value in the bucket.
	if got := h.Quantile(0.5); got < 2*time.Microsecond {
		t.Errorf("quantile underestimates: %v", got)
	}
}

// TestHistogramConcurrentRecordMerge exercises the lock-free paths under
// the race detector: writers on two source histograms, a merger folding
// one into a sink, and snapshot readers, all concurrent.
func TestHistogramConcurrentRecordMerge(t *testing.T) {
	const writers = 8
	const perWriter = 5000
	var a, b Histogram
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := &a
			if w%2 == 1 {
				h = &b
			}
			for i := 0; i < perWriter; i++ {
				h.ObserveNs(int64(i%1000) * 1000)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { // concurrent snapshot reader
		defer close(done)
		for i := 0; i < 100; i++ {
			s := a.Snapshot()
			if s.Count > s.total() {
				t.Errorf("torn snapshot: count %d > bucket total %d", s.Count, s.total())
				return
			}
		}
	}()
	wg.Wait()
	<-done

	var sink Histogram
	sink.Merge(&a)
	sink.Merge(&b)
	if got, want := sink.Count(), int64(writers*perWriter); got != want {
		t.Fatalf("merged count = %d, want %d", got, want)
	}
	if got, want := sink.Sum(), a.Sum()+b.Sum(); got != want {
		t.Fatalf("merged sum = %v, want %v", got, want)
	}
	sink.Merge(&sink) // self-merge is a documented no-op
	if got, want := sink.Count(), int64(writers*perWriter); got != want {
		t.Fatalf("self-merge changed count: %d, want %d", got, want)
	}
}

// TestHistogramSnapshotMonotone takes snapshots mid-run while writers
// record and asserts no torn reads: every counter is monotone between
// successive snapshots and the total count never exceeds the bucket sum.
func TestHistogramSnapshotMonotone(t *testing.T) {
	var h Histogram
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
					h.ObserveNs(int64(i%100) * 10_000)
				}
			}
		}()
	}
	prev := h.Snapshot()
	for i := 0; i < 1000; i++ {
		s := h.Snapshot()
		if s.Count < prev.Count || s.SumNs < prev.SumNs {
			t.Fatalf("snapshot regressed: %+v after %+v", s, prev)
		}
		for b := range s.Counts {
			if s.Counts[b] < prev.Counts[b] {
				t.Fatalf("bucket %d regressed: %d after %d", b, s.Counts[b], prev.Counts[b])
			}
		}
		if s.Count > s.total() {
			t.Fatalf("count %d exceeds bucket total %d (torn read)", s.Count, s.total())
		}
		prev = s
	}
	close(stop)
	wg.Wait()
	final := h.Snapshot()
	if final.Count != final.total() {
		t.Fatalf("quiescent count %d != bucket total %d", final.Count, final.total())
	}
}

func TestHistogramSnapshotSub(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	before := h.Snapshot()
	h.Observe(time.Second)
	h.Observe(time.Second)
	d := h.Snapshot().Sub(before)
	if d.Count != 2 || d.total() != 2 {
		t.Fatalf("delta count = %d (total %d), want 2", d.Count, d.total())
	}
	if d.Quantile(0.5) < time.Second {
		t.Fatalf("delta p50 = %v, want ≥ 1s", d.Quantile(0.5))
	}
}

func TestHistogramSnapshotString(t *testing.T) {
	var h Histogram
	if got := h.Snapshot().String(); got != "n=0" {
		t.Fatalf("empty snapshot String = %q", got)
	}
	h.Observe(3 * time.Millisecond)
	s := h.Snapshot().String()
	for _, want := range []string{"n=1", "p50=", "p95=", "p99="} {
		if !strings.Contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
}

// TestHistogramClampsNonPositiveDurations is a regression test for
// negative and zero observations (monotonic-clock regressions, coarse
// clocks rounding to zero): they must land in bucket 0 — never misindex
// or wrap to the tail bucket — and must not drive Sum negative.
func TestHistogramClampsNonPositiveDurations(t *testing.T) {
	for _, ns := range []int64{0, -1, -histBase, -1 << 40, -9223372036854775808} {
		if got := histIndex(ns); got != 0 {
			t.Fatalf("histIndex(%d) = %d, want bucket 0", ns, got)
		}
	}
	var h Histogram
	h.Observe(-3 * time.Second)
	h.Observe(0)
	h.ObserveNs(-1)
	h.ObserveNs(1) // 1ns: also bucket 0
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("Count = %d, want 4", s.Count)
	}
	if s.Counts[0] != 4 {
		t.Fatalf("bucket 0 holds %d observations, want all 4 (buckets: %v)", s.Counts[0], s.Counts)
	}
	if h.Sum() < 0 {
		t.Fatalf("Sum = %v, negative after clamped observations", h.Sum())
	}
	if q := h.Quantile(1.0); q > HistogramUpperBound(0) {
		t.Fatalf("p100 = %v beyond bucket 0's bound %v", q, HistogramUpperBound(0))
	}
}
