package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func nodeWith(name string, served int64, faults FaultStats, hists ...NamedSnapshot) NodeStats {
	return NodeStats{Node: name, Served: served, Faults: faults, Hists: hists}
}

// TestClusterMergedExactTotals is the federation-math test the issue asks
// for: merged cluster histogram totals must exactly equal the sum of the
// per-worker totals — counts, sums, and every individual bucket.
func TestClusterMergedExactTotals(t *testing.T) {
	var h1, h2, h3 Histogram
	for i := 0; i < 100; i++ {
		h1.Observe(time.Duration(i) * time.Microsecond)
		h2.Observe(time.Duration(i*i) * time.Microsecond)
		h3.Observe(time.Duration(i) * time.Millisecond)
	}
	c := ClusterStats{Workers: []NodeStats{
		nodeWith("w1", 10, FaultStats{Retries: 2, RPCLatency: h1.Snapshot()},
			NamedSnapshot{Name: "batch", Snap: h1.Snapshot()},
			NamedSnapshot{Name: "decode", Snap: h2.Snapshot()}),
		nodeWith("w2", 20, FaultStats{HedgesLaunched: 1, RPCLatency: h2.Snapshot()},
			NamedSnapshot{Name: "batch", Snap: h2.Snapshot()}),
		nodeWith("w3", 30, FaultStats{CorruptFrames: 5, RPCLatency: h3.Snapshot()},
			NamedSnapshot{Name: "batch", Snap: h3.Snapshot()},
			NamedSnapshot{Name: "encode", Snap: h3.Snapshot()}),
	}}

	m := c.Merged()
	if m.Served != 60 {
		t.Fatalf("merged served = %d, want 60", m.Served)
	}
	if m.Faults.Retries != 2 || m.Faults.HedgesLaunched != 1 || m.Faults.CorruptFrames != 5 {
		t.Fatalf("merged faults = %+v", m.Faults)
	}

	batch, ok := m.Hist("batch")
	if !ok {
		t.Fatal("merged stats missing batch histogram")
	}
	var wantCount, wantSum int64
	var wantBuckets [HistBuckets]int64
	for _, w := range c.Workers {
		s, _ := w.Hist("batch")
		wantCount += s.Count
		wantSum += s.SumNs
		for i := range s.Counts {
			wantBuckets[i] += s.Counts[i]
		}
	}
	if batch.Count != wantCount || batch.SumNs != wantSum {
		t.Fatalf("merged batch count/sum = %d/%d, want %d/%d", batch.Count, batch.SumNs, wantCount, wantSum)
	}
	if batch.Counts != wantBuckets {
		t.Fatal("merged batch buckets differ from per-worker bucket sums")
	}

	// Name-disjoint histograms survive with their own totals intact.
	if dec, ok := m.Hist("decode"); !ok || dec.Count != h2.Count() {
		t.Fatalf("merged decode = %+v ok=%v", dec, ok)
	}
	if enc, ok := m.Hist("encode"); !ok || enc.Count != h3.Count() {
		t.Fatalf("merged encode = %+v ok=%v", enc, ok)
	}
	if _, ok := m.Hist("no-such"); ok {
		t.Fatal("Hist should report missing names")
	}
}

// TestConcurrentMergeObserve runs Merge and Observe concurrently (the
// -race half of the federation test): a pool folding worker histograms
// while those histograms keep recording must stay torn-free, and the
// final merged total must equal the sum of everything observed.
func TestConcurrentMergeObserve(t *testing.T) {
	const workers = 3
	const observations = 2000
	var sources [workers]Histogram
	var cluster Histogram

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Reader: keep folding mid-run snapshots into a scratch histogram
	// while writers are active, checking self-consistency of each fold.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var scratch Histogram
			for i := range sources {
				scratch.Merge(&sources[i])
			}
			s := scratch.Snapshot()
			if s.Count > s.total() {
				t.Errorf("torn fold: count %d > bucket total %d", s.Count, s.total())
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < observations; i++ {
				sources[w].Observe(time.Duration(w*observations+i) * time.Microsecond)
			}
		}(w)
	}
	for w := 0; w < workers; w++ {
		// Interleave final merges with still-running writers from other
		// workers (Merge itself must be race-free against Observe).
		cluster.Merge(&sources[w])
	}
	close(stop)
	wg.Wait()

	// Re-fold after quiescing: totals must now be exact.
	var final Histogram
	var wantCount, wantSum int64
	for w := 0; w < workers; w++ {
		final.Merge(&sources[w])
		wantCount += sources[w].Count()
		wantSum += int64(sources[w].Sum())
	}
	s := final.Snapshot()
	if s.Count != int64(workers*observations) || s.Count != wantCount {
		t.Fatalf("final merged count = %d, want %d", s.Count, wantCount)
	}
	if s.SumNs != wantSum {
		t.Fatalf("final merged sum = %d, want %d", s.SumNs, wantSum)
	}
	if s.total() != wantCount {
		t.Fatalf("final merged bucket total = %d, want %d", s.total(), wantCount)
	}
}

func TestFaultStatsMerge(t *testing.T) {
	a := FaultStats{Retries: 1, HedgesLaunched: 2, LocalFallbacks: 3}
	b := FaultStats{Retries: 10, BreakerOpened: 4, MemoRecomputes: 5}
	m := a.Merge(b)
	if m.Retries != 11 || m.HedgesLaunched != 2 || m.LocalFallbacks != 3 ||
		m.BreakerOpened != 4 || m.MemoRecomputes != 5 {
		t.Fatalf("merged = %+v", m)
	}
	// Merge must be the inverse of Sub: (a+b)−b == a.
	if got := m.Sub(b); got != a {
		t.Fatalf("(a+b)-b = %+v, want %+v", got, a)
	}
}

func TestClusterStatsString(t *testing.T) {
	empty := ClusterStats{}
	if !strings.Contains(empty.String(), "no worker stats") {
		t.Fatalf("empty cluster string = %q", empty.String())
	}
	var h Histogram
	h.Observe(time.Millisecond)
	c := ClusterStats{Workers: []NodeStats{
		nodeWith("w1", 4, FaultStats{Retries: 1}, NamedSnapshot{Name: "batch", Snap: h.Snapshot()}),
		nodeWith("w2", 6, FaultStats{}),
	}}
	s := c.String()
	for _, want := range []string{"2 workers", "served=10", "w1=4", "w2=6", "batch-p95", "retries=1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("cluster string missing %q: %s", want, s)
		}
	}
}
