package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the lightweight span tracer: each slide of the window is
// recorded as a tree of spans — slide → phases → partitions — with
// cross-cutting components (the dist pool, the degradation ladder)
// attaching events to the active slide through Tracer.Active. Completed
// slides land in a fixed ring buffer, so memory is bounded no matter how
// long the stream runs, and a slow or degraded slide can be dumped as a
// human-readable flame summary (Span.Format, served by /debug/slides).
//
// The tracer is sampling-capable and every Span method is nil-receiver
// safe: with tracing off (or a slide sampled out) StartSlide returns nil
// and the entire instrumentation path degenerates to nil-check no-ops —
// the property the off-path overhead benchmark pins down.

// TraceMode selects how many slides are recorded.
type TraceMode int32

// Trace modes.
const (
	// TraceFull records every slide.
	TraceFull TraceMode = iota
	// TraceSampled records every Nth slide (Tracer.SetMode's every).
	TraceSampled
	// TraceOff records nothing; StartSlide returns nil.
	TraceOff
)

// String returns the mode name.
func (m TraceMode) String() string {
	switch m {
	case TraceFull:
		return "full"
	case TraceSampled:
		return "sampled"
	case TraceOff:
		return "off"
	default:
		return fmt.Sprintf("TraceMode(%d)", int32(m))
	}
}

// Tracer records slide span trees into a bounded ring buffer. It is safe
// for concurrent use; recording methods never block on readers.
type Tracer struct {
	mode    atomic.Int32
	every   atomic.Int64  // sampling stride for TraceSampled
	seq     atomic.Int64  // slides offered to StartSlide (sampling counter)
	traceID atomic.Uint64 // last issued trace correlation ID
	active  atomic.Pointer[Span]

	mu        sync.Mutex
	ring      []*Span
	next      int
	committed int64
}

// DefaultTraceCapacity is the ring size used when NewTracer is given a
// non-positive capacity.
const DefaultTraceCapacity = 64

// NewTracer returns a tracer retaining the last capacity slides
// (DefaultTraceCapacity when capacity ≤ 0), recording every slide.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	t := &Tracer{ring: make([]*Span, capacity)}
	t.every.Store(1)
	// Trace IDs are unique within the process and very likely unique
	// across a cluster: a clock-derived base plus a per-tracer counter.
	t.traceID.Store(uint64(time.Now().UnixNano()) << 16)
	return t
}

// SetMode switches the recording mode. every is the sampling stride for
// TraceSampled (record one slide in every `every`; values < 1 mean 1) and
// is ignored by the other modes. Safe to call while slides run.
func (t *Tracer) SetMode(m TraceMode, every int) {
	if t == nil {
		return
	}
	if every < 1 {
		every = 1
	}
	t.every.Store(int64(every))
	t.mode.Store(int32(m))
}

// Mode returns the current recording mode.
func (t *Tracer) Mode() TraceMode {
	if t == nil {
		return TraceOff
	}
	return TraceMode(t.mode.Load())
}

// StartSlide begins the span tree for one slide. It returns nil when the
// tracer is nil, off, or sampling skipped this slide; all Span methods
// tolerate nil, so callers instrument unconditionally.
func (t *Tracer) StartSlide(id uint64, label string) *Span {
	if t == nil {
		return nil
	}
	n := t.seq.Add(1)
	switch TraceMode(t.mode.Load()) {
	case TraceOff:
		return nil
	case TraceSampled:
		if (n-1)%t.every.Load() != 0 {
			return nil
		}
	}
	return &Span{ID: id, Trace: t.traceID.Add(1), Name: label, Start: time.Now(), tracer: t}
}

// SetActive publishes the span cross-cutting components (the dist pool,
// the degradation ladder) attach their events to. Pass nil to clear.
func (t *Tracer) SetActive(s *Span) {
	if t == nil {
		return
	}
	t.active.Store(s)
}

// Active returns the currently active span, or nil.
func (t *Tracer) Active() *Span {
	if t == nil {
		return nil
	}
	return t.active.Load()
}

// commit stores a finished root span in the ring.
func (t *Tracer) commit(s *Span) {
	t.mu.Lock()
	t.ring[t.next] = s
	t.next = (t.next + 1) % len(t.ring)
	t.committed++
	t.mu.Unlock()
}

// Committed returns how many slides have been recorded (including those
// already evicted from the ring).
func (t *Tracer) Committed() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.committed
}

// Recent returns up to n of the most recently committed slides, newest
// first.
func (t *Tracer) Recent(n int) []*Span {
	if t == nil || n <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, 0, n)
	for i := 1; i <= len(t.ring) && len(out) < n; i++ {
		s := t.ring[(t.next-i+len(t.ring))%len(t.ring)]
		if s == nil {
			break
		}
		out = append(out, s)
	}
	return out
}

// Find returns the most recently committed slide with the given slide
// ID, or nil when it was never recorded or already evicted from the ring
// (the /debug/trace?slide=N lookup).
func (t *Tracer) Find(id uint64) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := 1; i <= len(t.ring); i++ {
		s := t.ring[(t.next-i+len(t.ring))%len(t.ring)]
		if s == nil {
			break
		}
		if s.ID == id {
			return s
		}
	}
	return nil
}

// Slowest returns up to n retained slides ordered by descending
// duration — the flame summaries worth reading first.
func (t *Tracer) Slowest(n int) []*Span {
	all := t.Recent(len(t.ring))
	sort.SliceStable(all, func(i, j int) bool { return all[i].Duration() > all[j].Duration() })
	if len(all) > n {
		all = all[:n]
	}
	return all
}

// SpanEvent is one timestamped annotation on a span.
type SpanEvent struct {
	// At is the event's offset from the span's start.
	At time.Duration
	// Msg is the annotation text.
	Msg string
}

// Span is one timed node of a slide's trace tree. Child and Event are
// safe for concurrent use (partitions record in parallel); the exported
// fields are written once at creation. All methods tolerate a nil
// receiver, so instrumentation needs no tracing-enabled checks.
type Span struct {
	// ID is the slide ID (meaningful on root spans).
	ID uint64
	// Trace is the trace correlation ID issued by StartSlide — unlike the
	// slide ID it is unique across restarts, so a cross-process trace
	// (the dist RPC's TraceID field) never collides between two runs that
	// both had a slide N.
	Trace uint64
	// Name labels the span ("map phase", "partition 3", …).
	Name string
	// Start is the span's wall-clock start time.
	Start time.Time

	mu       sync.Mutex
	dur      time.Duration
	done     bool
	degraded bool
	events   []SpanEvent
	children []*Span
	tracer   *Tracer // set on root spans; End commits to it
}

// Child starts a sub-span. Returns nil on a nil receiver.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{ID: s.ID, Trace: s.Trace, Name: name, Start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// SlideID returns the span's slide ID; 0 on a nil receiver (the nil-safe
// getter RPC request builders use when no slide is being traced).
func (s *Span) SlideID() uint64 {
	if s == nil {
		return 0
	}
	return s.ID
}

// TraceID returns the span's trace correlation ID; 0 on a nil receiver.
func (s *Span) TraceID() uint64 {
	if s == nil {
		return 0
	}
	return s.Trace
}

// Event appends a timestamped annotation.
func (s *Span) Event(format string, args ...any) {
	if s == nil {
		return
	}
	ev := SpanEvent{At: time.Since(s.Start), Msg: fmt.Sprintf(format, args...)}
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
}

// MarkDegraded flags the slide as having taken a degradation path
// (retry, hedge, local fallback, memo recompute). /debug/slides surfaces
// degraded slides prominently.
func (s *Span) MarkDegraded() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.degraded = true
	s.mu.Unlock()
}

// End stops the span's clock. Ending a root span commits the whole slide
// tree to its tracer's ring; End is idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	s.dur = time.Since(s.Start)
	tr := s.tracer
	s.mu.Unlock()
	if tr != nil {
		tr.commit(s)
	}
}

// Duration returns the span's recorded duration (elapsed time so far if
// the span has not ended).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.done {
		return time.Since(s.Start)
	}
	return s.dur
}

// Degraded reports whether the slide took a degradation path.
func (s *Span) Degraded() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degraded
}

// Format renders the span tree as an indented flame summary, one line
// per span, with events interleaved in time order.
func (s *Span) Format() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	s.format(&b, 0)
	return b.String()
}

func (s *Span) format(b *strings.Builder, depth int) {
	s.mu.Lock()
	dur := s.dur
	if !s.done {
		dur = time.Since(s.Start)
	}
	degraded := s.degraded
	events := append([]SpanEvent(nil), s.events...)
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()

	indent := strings.Repeat("  ", depth)
	mark := ""
	if degraded {
		mark = "  [DEGRADED]"
	}
	if depth == 0 {
		fmt.Fprintf(b, "%sslide %d %q %v%s\n", indent, s.ID, s.Name, dur.Round(time.Microsecond), mark)
	} else {
		fmt.Fprintf(b, "%s%-24s %v%s\n", indent, s.Name, dur.Round(time.Microsecond), mark)
	}
	for _, ev := range events {
		fmt.Fprintf(b, "%s  @%-10v %s\n", indent, ev.At.Round(time.Microsecond), ev.Msg)
	}
	for _, c := range children {
		c.format(b, depth+1)
	}
}
