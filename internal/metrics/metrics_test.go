package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecorderWork(t *testing.T) {
	r := NewRecorder()
	r.RecordTask(Task{Phase: PhaseMap, Cost: 100 * time.Millisecond})
	r.RecordTask(Task{Phase: PhaseMap, Cost: 50 * time.Millisecond})
	r.RecordTask(Task{Phase: PhaseReduce, Cost: 30 * time.Millisecond})
	r.RecordTask(Task{Phase: PhaseContraction, Cost: 20 * time.Millisecond})
	if got := r.Work(); got != 200*time.Millisecond {
		t.Fatalf("work = %v", got)
	}
	if got := r.PhaseWork(PhaseMap); got != 150*time.Millisecond {
		t.Fatalf("map work = %v", got)
	}
}

func TestReusedTasksExcludedFromWork(t *testing.T) {
	r := NewRecorder()
	r.RecordTask(Task{Phase: PhaseMap, Cost: time.Second, Reused: true})
	if r.Work() != 0 {
		t.Fatal("reused task counted as work")
	}
	if len(r.Tasks()) != 1 {
		t.Fatal("reused task not in task list")
	}
}

func TestZeroValueRecorder(t *testing.T) {
	var r Recorder
	r.RecordTask(Task{Phase: PhaseMap, Cost: time.Millisecond})
	r.Add(Counters{MapTasks: 1})
	if r.Work() != time.Millisecond || r.Counters().MapTasks != 1 {
		t.Fatal("zero-value recorder broken")
	}
}

func TestSnapshotIsolation(t *testing.T) {
	r := NewRecorder()
	r.RecordTask(Task{Phase: PhaseMap, Cost: time.Millisecond})
	snap := r.Snapshot()
	r.RecordTask(Task{Phase: PhaseMap, Cost: time.Millisecond})
	if snap.Work != time.Millisecond || len(snap.Tasks) != 1 {
		t.Fatal("snapshot reflects later mutations")
	}
}

func TestRecorderConcurrency(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.RecordTask(Task{Phase: PhaseMap, Cost: time.Millisecond})
			r.Add(Counters{CombineCalls: 1})
		}()
	}
	wg.Wait()
	if r.Work() != 50*time.Millisecond || r.Counters().CombineCalls != 50 {
		t.Fatalf("lost updates: work=%v counters=%+v", r.Work(), r.Counters())
	}
}

func TestCountersAccumulate(t *testing.T) {
	r := NewRecorder()
	r.Add(Counters{MapTasks: 1, CombineCalls: 2, ReadTime: 3})
	r.Add(Counters{MapTasks: 4, CacheHits: 5})
	c := r.Counters()
	if c.MapTasks != 5 || c.CombineCalls != 2 || c.CacheHits != 5 || c.ReadTime != 3 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestMergeReports(t *testing.T) {
	a := Report{
		Work:      time.Second,
		PhaseWork: map[Phase]time.Duration{PhaseMap: time.Second},
		Counters:  Counters{MapTasks: 1},
		Tasks:     []Task{{Phase: PhaseMap}},
	}
	b := Report{
		Work:      2 * time.Second,
		PhaseWork: map[Phase]time.Duration{PhaseMap: time.Second, PhaseReduce: time.Second},
		Counters:  Counters{MapTasks: 2, ReduceCalls: 3},
		Tasks:     []Task{{Phase: PhaseReduce}},
	}
	m := MergeReports(a, b)
	if m.Work != 3*time.Second {
		t.Fatalf("work = %v", m.Work)
	}
	if m.PhaseWork[PhaseMap] != 2*time.Second || m.PhaseWork[PhaseReduce] != time.Second {
		t.Fatalf("phase work = %v", m.PhaseWork)
	}
	if m.Counters.MapTasks != 3 || m.Counters.ReduceCalls != 3 {
		t.Fatalf("counters = %+v", m.Counters)
	}
	if len(m.Tasks) != 2 {
		t.Fatalf("tasks = %d", len(m.Tasks))
	}
}

func TestSpeedup(t *testing.T) {
	if s := Speedup(10*time.Second, 2*time.Second); s != 5 {
		t.Fatalf("speedup = %f", s)
	}
	if s := Speedup(time.Second, 0); s != 0 {
		t.Fatalf("zero-denominator speedup = %f", s)
	}
}

func TestPhaseString(t *testing.T) {
	if PhaseMap.String() != "map" || PhaseContraction.String() != "contraction" || PhaseReduce.String() != "reduce" {
		t.Fatal("phase names wrong")
	}
	if !strings.Contains(Phase(99).String(), "99") {
		t.Fatal("unknown phase formatting")
	}
}

func TestFormatBreakdown(t *testing.T) {
	base := Report{PhaseWork: map[Phase]time.Duration{PhaseMap: 100, PhaseReduce: 100}}
	run := Report{PhaseWork: map[Phase]time.Duration{PhaseMap: 25, PhaseReduce: 50}}
	got := FormatBreakdown(base, run)
	if !strings.Contains(got, "map=25.0%") || !strings.Contains(got, "reduce=50.0%") {
		t.Fatalf("breakdown = %q", got)
	}
}
