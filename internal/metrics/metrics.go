// Package metrics provides the work/time accounting used throughout the
// Slider reproduction.
//
// The paper (§7.1) distinguishes two measures:
//
//   - Work: the total amount of computation performed by all tasks (Map,
//     contraction, and Reduce), measured as the sum of the active time of
//     all tasks.
//   - Time: the end-to-end running time of the job.
//
// A Recorder accumulates per-phase work from real in-process execution and
// carries the task list that the cluster simulator turns into an
// end-to-end makespan ("time").
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Phase identifies which stage of a data-parallel job a task belongs to.
type Phase int

// Phases of a MapReduce job with a contraction phase interposed between
// shuffle and reduce (paper §6).
const (
	PhaseMap Phase = iota + 1
	PhaseContraction
	PhaseReduce
)

// String returns the phase name used in reports.
func (p Phase) String() string {
	switch p {
	case PhaseMap:
		return "map"
	case PhaseContraction:
		return "contraction"
	case PhaseReduce:
		return "reduce"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// Task records one executed (or reused) task: its phase, the real cost it
// incurred, and placement hints consumed by the scheduler.
type Task struct {
	// Phase is the job phase this task belongs to.
	Phase Phase
	// Cost is the active time of the task. For reused (memoized) tasks
	// the cost is zero and Reused is true.
	Cost time.Duration
	// InputBytes approximates the volume of data the task consumes; the
	// cluster simulator charges transfer time for non-local input.
	InputBytes int64
	// PreferredNode is the node holding this task's memoized inputs, or
	// -1 when the task has no locality preference.
	PreferredNode int
	// Reused marks tasks whose output was taken from the memoization
	// layer instead of being recomputed.
	Reused bool
}

// Counters holds the raw operation counts that complement wall-clock work.
type Counters struct {
	MapTasks       int64 // map tasks actually executed
	MapTasksReused int64 // map tasks whose output was memoized
	MapRecords     int64 // records processed by executed map tasks
	CombineCalls   int64 // pairwise combiner invocations
	CombineRecords int64 // values consumed by combiner invocations
	ReduceCalls    int64 // reduce invocations (one per key at the root)
	NodesReused    int64 // contraction-tree nodes reused from memo
	NodesComputed  int64 // contraction-tree nodes recomputed
	CacheHits      int64 // memoization cache hits
	CacheMisses    int64 // memoization cache misses
	MemoBytes      int64 // bytes resident in the memoization layer
	ReadTime       int64 // simulated ns spent reading memoized state
	WriteTime      int64 // simulated ns spent writing memoized state
}

// Add accumulates delta into c, field by field. It is the single
// definition of counter addition, shared by Recorder.Add and
// MergeReports so the two cannot drift when fields are added.
func (c *Counters) Add(delta Counters) {
	c.MapTasks += delta.MapTasks
	c.MapTasksReused += delta.MapTasksReused
	c.MapRecords += delta.MapRecords
	c.CombineCalls += delta.CombineCalls
	c.CombineRecords += delta.CombineRecords
	c.ReduceCalls += delta.ReduceCalls
	c.NodesReused += delta.NodesReused
	c.NodesComputed += delta.NodesComputed
	c.CacheHits += delta.CacheHits
	c.CacheMisses += delta.CacheMisses
	c.MemoBytes += delta.MemoBytes
	c.ReadTime += delta.ReadTime
	c.WriteTime += delta.WriteTime
}

// Recorder accumulates tasks and counters for one job run. The zero value
// is ready to use. Recorder is safe for concurrent use.
type Recorder struct {
	mu       sync.Mutex
	tasks    []Task
	counters Counters
	work     map[Phase]time.Duration
}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder {
	return &Recorder{work: make(map[Phase]time.Duration)}
}

// RecordTask adds a task to the run.
func (r *Recorder) RecordTask(t Task) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.work == nil {
		r.work = make(map[Phase]time.Duration)
	}
	r.tasks = append(r.tasks, t)
	if !t.Reused {
		r.work[t.Phase] += t.Cost
	}
}

// Add merges counter deltas into the recorder.
func (r *Recorder) Add(delta Counters) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters.Add(delta)
}

// Counters returns a snapshot of the accumulated counters.
func (r *Recorder) Counters() Counters {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters
}

// Tasks returns a copy of the recorded task list.
func (r *Recorder) Tasks() []Task {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Task, len(r.tasks))
	copy(out, r.tasks)
	return out
}

// Work returns the total work (sum of active task time) across all phases.
func (r *Recorder) Work() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	var total time.Duration
	for _, w := range r.work {
		total += w
	}
	return total
}

// PhaseWork returns the work attributed to one phase.
func (r *Recorder) PhaseWork(p Phase) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.work[p]
}

// Report is an immutable summary of one run, suitable for comparison.
type Report struct {
	Work      time.Duration
	PhaseWork map[Phase]time.Duration
	Counters  Counters
	Tasks     []Task
}

// Snapshot freezes the recorder into a Report.
func (r *Recorder) Snapshot() Report {
	r.mu.Lock()
	defer r.mu.Unlock()
	pw := make(map[Phase]time.Duration, len(r.work))
	var total time.Duration
	for p, w := range r.work {
		pw[p] = w
		total += w
	}
	tasks := make([]Task, len(r.tasks))
	copy(tasks, r.tasks)
	return Report{Work: total, PhaseWork: pw, Counters: r.counters, Tasks: tasks}
}

// MergeReports combines per-stage reports into one (work sums, task lists
// concatenate, counters add).
func MergeReports(reports ...Report) Report {
	out := Report{PhaseWork: make(map[Phase]time.Duration)}
	for _, r := range reports {
		out.Work += r.Work
		for p, w := range r.PhaseWork {
			out.PhaseWork[p] += w
		}
		out.Tasks = append(out.Tasks, r.Tasks...)
		out.Counters.Add(r.Counters)
	}
	return out
}

// Speedup returns how much faster "new" is than "base" in terms of work.
// It returns 0 when new work is zero (infinite speedup is reported as 0 by
// convention; callers guard against it).
func Speedup(base, new time.Duration) float64 {
	if new <= 0 {
		return 0
	}
	return float64(base) / float64(new)
}

// FormatBreakdown renders a per-phase percentage breakdown relative to a
// baseline report, as used in Figure 9.
func FormatBreakdown(base, run Report) string {
	var b strings.Builder
	phases := make([]Phase, 0, len(run.PhaseWork))
	for p := range run.PhaseWork {
		phases = append(phases, p)
	}
	sort.Slice(phases, func(i, j int) bool { return phases[i] < phases[j] })
	for _, p := range phases {
		bw := base.PhaseWork[p]
		if bw <= 0 {
			continue
		}
		pct := 100 * float64(run.PhaseWork[p]) / float64(bw)
		fmt.Fprintf(&b, "%s=%.1f%% ", p, pct)
	}
	return strings.TrimSpace(b.String())
}
