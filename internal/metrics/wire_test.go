package metrics

import (
	"strings"
	"testing"
	"time"
)

// buildRemoteTree makes a worker-shaped span tree: batch root with three
// phase children and an event, as the worker batch handler records it.
func buildRemoteTree() *Span {
	root := &Span{ID: 7, Name: "batch", Start: time.Now()}
	for _, name := range []string{"decode", "map+combine", "encode"} {
		c := root.Child(name)
		c.Event("split 0")
		c.End()
	}
	root.End()
	return root
}

func TestExportWireSpansShape(t *testing.T) {
	root := buildRemoteTree()
	spans := ExportWireSpans(root)
	if len(spans) != 4 {
		t.Fatalf("exported %d spans, want 4", len(spans))
	}
	if spans[0].Parent != -1 || spans[0].Name != "batch" {
		t.Fatalf("root span = %+v, want parent -1 name batch", spans[0])
	}
	for i := 1; i < 4; i++ {
		if spans[i].Parent != 0 {
			t.Fatalf("span %d parent = %d, want 0", i, spans[i].Parent)
		}
		if spans[i].OffsetNs < 0 {
			t.Fatalf("span %d offset = %d, want >= 0", i, spans[i].OffsetNs)
		}
		if len(spans[i].Events) != 1 || spans[i].Events[0].Msg != "split 0" {
			t.Fatalf("span %d events = %+v", i, spans[i].Events)
		}
	}
	if ExportWireSpans(nil) != nil {
		t.Fatal("nil root should export nil")
	}
}

// TestStitchClockSkewClamped is the skew test the issue asks for: worker
// spans with deliberately absurd clocks — offsets before the RPC was
// sent, durations longer than the RPC took — must land strictly inside
// the pool-observed [send, receive] anchor bounds after stitching.
func TestStitchClockSkewClamped(t *testing.T) {
	anchor := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	window := 10 * time.Millisecond

	spans := []WireSpan{
		// Root claims to have started 5s before the pool sent the RPC and
		// run for a minute.
		{Name: "batch", Parent: -1, OffsetNs: -int64(5 * time.Second), DurationNs: int64(time.Minute),
			Events: []WireEvent{{AtNs: -int64(time.Second), Msg: "early"}, {AtNs: int64(time.Hour), Msg: "late"}}},
		// Child starts far beyond the window.
		{Name: "map+combine", Parent: 0, OffsetNs: int64(time.Hour), DurationNs: int64(time.Second)},
		// Child with a plausible offset but an overlong duration.
		{Name: "encode", Parent: 0, OffsetNs: int64(4 * time.Millisecond), DurationNs: int64(time.Minute)},
	}

	parent := &Span{ID: 42, Trace: 99, Name: "rpc w1", Start: anchor}
	StitchWireSpans(parent, spans, anchor, window)

	parent.mu.Lock()
	kids := append([]*Span(nil), parent.children...)
	parent.mu.Unlock()
	if len(kids) != 1 {
		t.Fatalf("parent has %d direct children, want 1 (the remote root)", len(kids))
	}
	lo, hi := anchor, anchor.Add(window)
	var check func(s *Span)
	check = func(s *Span) {
		if s.ID != 42 || s.Trace != 99 {
			t.Fatalf("span %q ID/Trace = %d/%d, want 42/99", s.Name, s.ID, s.Trace)
		}
		if s.Start.Before(lo) || s.Start.After(hi) {
			t.Fatalf("span %q starts at %v, outside anchor bounds [%v, %v]", s.Name, s.Start, lo, hi)
		}
		s.mu.Lock()
		dur, events, children := s.dur, append([]SpanEvent(nil), s.events...), append([]*Span(nil), s.children...)
		s.mu.Unlock()
		if end := s.Start.Add(dur); end.After(hi) {
			t.Fatalf("span %q ends at %v, after anchor bound %v", s.Name, end, hi)
		}
		for _, ev := range events {
			if ev.At < 0 || ev.At > dur {
				t.Fatalf("span %q event %q at %v, outside [0, %v]", s.Name, ev.Msg, ev.At, dur)
			}
		}
		for _, c := range children {
			check(c)
		}
	}
	check(kids[0])

	// The remote structure must survive the clamping: batch has two
	// children with their original names.
	kids[0].mu.Lock()
	grand := append([]*Span(nil), kids[0].children...)
	kids[0].mu.Unlock()
	if len(grand) != 2 || grand[0].Name != "map+combine" || grand[1].Name != "encode" {
		t.Fatalf("remote tree structure lost: %+v", grand)
	}
}

func TestStitchRejectsForwardAndCyclicParents(t *testing.T) {
	anchor := time.Now()
	spans := []WireSpan{
		{Name: "a", Parent: 1, DurationNs: 100}, // forward link: invalid
		{Name: "b", Parent: 1, DurationNs: 100}, // self link: invalid
		{Name: "c", Parent: 0, DurationNs: 100}, // valid backward link
	}
	parent := &Span{ID: 1, Name: "rpc", Start: anchor}
	StitchWireSpans(parent, spans, anchor, time.Millisecond)
	parent.mu.Lock()
	defer parent.mu.Unlock()
	// a and b both attach to the local parent; c attaches under a.
	if len(parent.children) != 2 {
		t.Fatalf("parent has %d children, want 2 (invalid links fall back to local parent)", len(parent.children))
	}
}

func TestStitchNilSafe(t *testing.T) {
	StitchWireSpans(nil, []WireSpan{{Name: "x"}}, time.Now(), time.Second)
	StitchWireSpans(&Span{Name: "p", Start: time.Now()}, nil, time.Now(), time.Second)
}

func TestExportStitchRoundTripInFormat(t *testing.T) {
	remote := buildRemoteTree()
	wire := ExportWireSpans(remote)

	tr := NewTracer(4)
	slide := tr.StartSlide(3, "slide")
	rpc := slide.Child("rpc worker-1")
	StitchWireSpans(rpc, wire, rpc.Start, 5*time.Millisecond)
	rpc.End()
	slide.End()

	got := tr.Find(3)
	if got == nil {
		t.Fatal("Find(3) returned nil after commit")
	}
	text := got.Format()
	for _, want := range []string{"rpc worker-1", "batch", "decode", "map+combine", "encode"} {
		if !strings.Contains(text, want) {
			t.Fatalf("flame summary missing %q:\n%s", want, text)
		}
	}
}

func TestTracerFind(t *testing.T) {
	tr := NewTracer(2)
	for id := uint64(1); id <= 3; id++ {
		s := tr.StartSlide(id, "s")
		s.End()
	}
	if tr.Find(1) != nil {
		t.Fatal("slide 1 should have been evicted from a 2-slot ring")
	}
	if s := tr.Find(3); s == nil || s.ID != 3 {
		t.Fatalf("Find(3) = %v", s)
	}
	if (*Tracer)(nil).Find(3) != nil {
		t.Fatal("nil tracer Find should return nil")
	}
}

func TestSpanNilGetters(t *testing.T) {
	var s *Span
	if s.SlideID() != 0 || s.TraceID() != 0 {
		t.Fatal("nil span getters should return 0")
	}
	tr := NewTracer(1)
	a := tr.StartSlide(9, "a")
	if a.SlideID() != 9 || a.TraceID() == 0 {
		t.Fatalf("slide=%d trace=%d", a.SlideID(), a.TraceID())
	}
	if c := a.Child("c"); c.TraceID() != a.TraceID() {
		t.Fatal("child must inherit the trace ID")
	}
	b := tr.StartSlide(10, "b")
	if b.TraceID() == a.TraceID() {
		t.Fatal("distinct slides must get distinct trace IDs")
	}
}
