package metrics

import (
	"encoding/json"
	"errors"
	"io"
	"sort"
	"time"
)

// This file exports a slide's span tree as Chrome trace-event JSON — the
// {"traceEvents": [...]} format chrome://tracing and Perfetto load
// directly, so a cross-machine flame summary from /debug/slides becomes a
// zoomable flame graph in a browser. Every span is a "X" (complete)
// event; span events become "i" (instant) events; "M" (metadata) events
// name the process and tracks.
//
// Trace viewers render each (pid, tid) pair as one track and require the
// "X" events on a track to nest like a call stack. A span tree does not
// guarantee that — sibling spans overlap whenever partitions run in
// parallel — so the exporter assigns track IDs greedily: a child reuses
// its parent's track when it fits after everything already placed there,
// and overflows onto a fresh track otherwise. Parallel work therefore
// fans out vertically, exactly how a trace viewer shows real threads.

// chromeEvent is one entry of the traceEvents array. Field names are the
// trace-event format's, not ours.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant-event scope
	Args map[string]any `json:"args,omitempty"`
}

// chromeSpan is an immutable snapshot of one span with times resolved
// against the root, taken under the span's lock before layout.
type chromeSpan struct {
	name     string
	start    time.Duration // offset from root start
	dur      time.Duration
	degraded bool
	events   []SpanEvent
	children []*chromeSpan
}

func snapshotChromeSpan(s *Span, base time.Time) *chromeSpan {
	s.mu.Lock()
	dur := s.dur
	if !s.done {
		dur = time.Since(s.Start)
	}
	out := &chromeSpan{
		name:     s.Name,
		start:    s.Start.Sub(base),
		dur:      dur,
		degraded: s.degraded,
		events:   append([]SpanEvent(nil), s.events...),
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		out.children = append(out.children, snapshotChromeSpan(c, base))
	}
	return out
}

// errNilSpan is returned when exporting a nil span tree.
var errNilSpan = errors.New("metrics: no span to export")

// WriteChromeTrace writes root's span tree to w as Chrome trace-event
// JSON ({"traceEvents": [...]}, loadable by Perfetto and
// chrome://tracing). Timestamps are microsecond offsets from the root
// span's start. Returns an error on a nil root or a write failure.
func WriteChromeTrace(w io.Writer, root *Span) error {
	if root == nil {
		return errNilSpan
	}
	snap := snapshotChromeSpan(root, root.Start)
	slideID := root.SlideID()
	traceID := root.TraceID()

	const pid = 1
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

	var events []chromeEvent
	nextTid := 0
	newTrack := func() int { nextTid++; return nextTid - 1 }

	var layout func(s *chromeSpan, tid int)
	layout = func(s *chromeSpan, tid int) {
		dur := us(s.dur)
		args := map[string]any{}
		if s.degraded {
			args["degraded"] = true
		}
		events = append(events, chromeEvent{
			Name: s.name, Ph: "X", Ts: us(s.start), Dur: &dur,
			Pid: pid, Tid: tid, Args: args,
		})
		for _, ev := range s.events {
			events = append(events, chromeEvent{
				Name: ev.Msg, Ph: "i", Ts: us(s.start + ev.At),
				Pid: pid, Tid: tid, S: "t",
			})
		}

		// Clamp children into the parent's bounds (stitched worker spans
		// are already clamped into their RPC window; this keeps any local
		// measurement jitter from breaking the viewer's nesting too).
		end := s.start + s.dur
		children := append([]*chromeSpan(nil), s.children...)
		for _, c := range children {
			if c.start < s.start {
				c.start = s.start
			}
			if c.start > end {
				c.start = end
			}
			if c.start+c.dur > end {
				c.dur = end - c.start
			}
		}
		sort.SliceStable(children, func(i, j int) bool { return children[i].start < children[j].start })

		// Greedy track assignment: lane 0 is the parent's own track (a
		// child there nests inside the parent's "X" event); overlapping
		// siblings overflow onto fresh tracks.
		type lane struct {
			tid  int
			busy time.Duration // end of the last span placed on this lane
		}
		lanes := []lane{{tid: tid, busy: s.start}}
		for _, c := range children {
			placed := -1
			for i := range lanes {
				if lanes[i].busy <= c.start {
					placed = i
					break
				}
			}
			if placed < 0 {
				lanes = append(lanes, lane{tid: newTrack()})
				placed = len(lanes) - 1
			}
			lanes[placed].busy = c.start + c.dur
			layout(c, lanes[placed].tid)
		}
	}
	layout(snap, newTrack())

	meta := []chromeEvent{
		{Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]any{"name": "slider"}},
		{Name: "process_labels", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]any{"labels": snap.name}},
	}
	tids := map[int]bool{}
	for _, ev := range events {
		if !tids[ev.Tid] {
			tids[ev.Tid] = true
			name := "lane " + itoa(ev.Tid)
			if ev.Tid == 0 {
				name = "slide"
			}
			meta = append(meta, chromeEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: ev.Tid,
				Args: map[string]any{"name": name}})
		}
	}

	doc := struct {
		TraceEvents []chromeEvent  `json:"traceEvents"`
		Metadata    map[string]any `json:"metadata"`
	}{
		TraceEvents: append(meta, events...),
		Metadata: map[string]any{
			"slide":    slideID,
			"trace-id": traceID,
		},
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// itoa avoids importing strconv just for track names.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
