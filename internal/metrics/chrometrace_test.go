package metrics

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// decodeTrace parses exporter output the way the CI job does: a single
// JSON object with a traceEvents array of objects.
func decodeTrace(t *testing.T, data []byte) []map[string]any {
	t.Helper()
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, data)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace output has no traceEvents")
	}
	return doc.TraceEvents
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer(4)
	slide := tr.StartSlide(12, "slide 12")
	phase := slide.Child("map phase")
	// Two overlapping partitions: must land on distinct tracks.
	p0 := phase.Child("partition 0")
	p1 := phase.Child("partition 1")
	p0.Event("memo hit")
	time.Sleep(time.Millisecond)
	p0.End()
	p1.End()
	phase.End()
	rpc := slide.Child("rpc worker-1")
	rpc.MarkDegraded()
	StitchWireSpans(rpc, []WireSpan{{Name: "batch", Parent: -1, DurationNs: int64(time.Millisecond)}},
		rpc.Start, 2*time.Millisecond)
	rpc.End()
	slide.End()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Find(12)); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	events := decodeTrace(t, buf.Bytes())

	byName := map[string][]map[string]any{}
	for _, ev := range events {
		ph, _ := ev["ph"].(string)
		if ph != "X" && ph != "i" && ph != "M" {
			t.Fatalf("unexpected event phase %q in %v", ph, ev)
		}
		name, _ := ev["name"].(string)
		byName[name] = append(byName[name], ev)
	}
	for _, want := range []string{"slide 12", "map phase", "partition 0", "partition 1", "rpc worker-1", "batch", "memo hit", "process_name", "thread_name"} {
		if len(byName[want]) == 0 {
			t.Fatalf("trace missing event %q; have %v", want, buf.String())
		}
	}

	// Overlapping siblings must not share a track.
	tid0 := byName["partition 0"][0]["tid"]
	tid1 := byName["partition 1"][0]["tid"]
	if tid0 == tid1 {
		t.Fatalf("overlapping partitions share tid %v", tid0)
	}

	// Degradation must survive into args.
	if args, _ := byName["rpc worker-1"][0]["args"].(map[string]any); args["degraded"] != true {
		t.Fatalf("rpc span args = %v, want degraded", byName["rpc worker-1"][0]["args"])
	}

	// Every X event needs ts and dur; children stay inside the root.
	rootEv := byName["slide 12"][0]
	rootTs, rootDur := rootEv["ts"].(float64), *durOf(t, rootEv)
	for name, evs := range byName {
		for _, ev := range evs {
			if ev["ph"] != "X" {
				continue
			}
			ts := ev["ts"].(float64)
			dur := *durOf(t, ev)
			if ts < rootTs || ts+dur > rootTs+rootDur+0.001 {
				t.Fatalf("span %q [%v, %v] escapes root [%v, %v]", name, ts, ts+dur, rootTs, rootTs+rootDur)
			}
		}
	}
}

func durOf(t *testing.T, ev map[string]any) *float64 {
	t.Helper()
	d, ok := ev["dur"].(float64)
	if !ok {
		t.Fatalf("X event missing dur: %v", ev)
	}
	return &d
}

func TestWriteChromeTraceNil(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err == nil {
		t.Fatal("nil root should error")
	}
}
