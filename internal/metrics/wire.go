package metrics

import "time"

// This file is the cross-process half of the span tracer: a worker
// records its batch as an ordinary *Span tree, flattens it into WireSpans
// (ExportWireSpans), and ships those back inline in the RPC response; the
// pool reconstructs them as children of its own batch-attempt span
// (StitchWireSpans), so one slide's trace tree spans every machine that
// touched it.
//
// Wire spans deliberately carry no absolute timestamps — only offsets
// relative to the remote root's start and durations, both measured on the
// remote monotonic clock. Stitching anchors the remote tree at the
// pool-observed send time and clamps every span into the pool-observed
// [send, receive] interval, so arbitrary cross-machine clock skew cannot
// move a worker span outside the RPC that carried it.

// WireEvent is a SpanEvent in wire form.
type WireEvent struct {
	// AtNs is the event's offset from its span's start, in nanoseconds.
	AtNs int64
	// Msg is the annotation text.
	Msg string
}

// WireSpan is one span of a remote trace tree in wire form. Spans travel
// as a flat pre-order slice; Parent links them back into a tree.
type WireSpan struct {
	// Name labels the span.
	Name string
	// Parent is the index of the span's parent within the slice, or −1
	// for the remote root. Exported trees are pre-order, so a valid
	// parent index is always smaller than the span's own.
	Parent int
	// OffsetNs is the span's start offset from the remote root's start,
	// in nanoseconds on the remote clock.
	OffsetNs int64
	// DurationNs is the span's duration in nanoseconds.
	DurationNs int64
	// Degraded marks spans whose slide took a degradation path.
	Degraded bool
	// Events carries the span's annotations.
	Events []WireEvent
}

// ExportWireSpans flattens a span tree into wire form: a pre-order slice
// of WireSpans whose offsets are relative to root's own start. Returns
// nil on a nil root. Safe to call while descendants are still being
// appended (each span is copied under its lock), though callers normally
// export only finished trees.
func ExportWireSpans(root *Span) []WireSpan {
	if root == nil {
		return nil
	}
	var out []WireSpan
	base := root.Start
	var walk func(s *Span, parent int)
	walk = func(s *Span, parent int) {
		s.mu.Lock()
		dur := s.dur
		if !s.done {
			dur = time.Since(s.Start)
		}
		events := append([]SpanEvent(nil), s.events...)
		children := append([]*Span(nil), s.children...)
		degraded := s.degraded
		s.mu.Unlock()

		idx := len(out)
		ws := WireSpan{
			Name:       s.Name,
			Parent:     parent,
			OffsetNs:   s.Start.Sub(base).Nanoseconds(),
			DurationNs: int64(dur),
			Degraded:   degraded,
		}
		if len(events) > 0 {
			ws.Events = make([]WireEvent, 0, len(events))
			for _, ev := range events {
				ws.Events = append(ws.Events, WireEvent{AtNs: int64(ev.At), Msg: ev.Msg})
			}
		}
		out = append(out, ws)
		for _, c := range children {
			walk(c, idx)
		}
	}
	walk(root, -1)
	return out
}

// StitchWireSpans reconstructs a remote span tree as children of parent,
// anchored at the pool-observed send time with the pool-observed RPC
// window (receive − send). Every remote offset and duration is clamped
// into [0, window], so a skewed or lying remote clock can never place a
// span outside the RPC that carried it — the spans stay truthful about
// relative structure and the anchor stays truthful about wall time.
// No-op on a nil parent or empty spans (nil-safety mirrors Span methods).
func StitchWireSpans(parent *Span, spans []WireSpan, anchor time.Time, window time.Duration) {
	if parent == nil || len(spans) == 0 {
		return
	}
	if window < 0 {
		window = 0
	}
	nodes := make([]*Span, len(spans))
	for i, ws := range spans {
		off := time.Duration(ws.OffsetNs)
		if off < 0 {
			off = 0
		}
		if off > window {
			off = window
		}
		dur := time.Duration(ws.DurationNs)
		if dur < 0 {
			dur = 0
		}
		if off+dur > window {
			dur = window - off
		}
		s := &Span{
			ID:       parent.ID,
			Trace:    parent.Trace,
			Name:     ws.Name,
			Start:    anchor.Add(off),
			dur:      dur,
			done:     true,
			degraded: ws.Degraded,
		}
		if len(ws.Events) > 0 {
			s.events = make([]SpanEvent, 0, len(ws.Events))
			for _, ev := range ws.Events {
				at := time.Duration(ev.AtNs)
				if at < 0 {
					at = 0
				}
				if at > dur {
					at = dur
				}
				s.events = append(s.events, SpanEvent{At: at, Msg: ev.Msg})
			}
		}
		nodes[i] = s
	}
	for i, ws := range spans {
		// Only backward parent links are honored (exports are pre-order);
		// anything else — including a cycle a corrupted frame could smuggle
		// in — attaches to the local parent instead.
		p := parent
		if ws.Parent >= 0 && ws.Parent < i {
			p = nodes[ws.Parent]
		}
		p.mu.Lock()
		p.children = append(p.children, nodes[i])
		p.mu.Unlock()
	}
}
