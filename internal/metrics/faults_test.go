package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestFaultRecorderSnapshot(t *testing.T) {
	var r FaultRecorder
	if s := r.Snapshot(); s != (FaultStats{}) {
		t.Fatalf("zero recorder snapshot = %+v", s)
	}
	r.Retries.Add(3)
	r.HedgesLaunched.Add(2)
	r.HedgesWon.Add(1)
	r.BreakerOpened.Add(1)
	s := r.Snapshot()
	if s.Retries != 3 || s.HedgesLaunched != 2 || s.HedgesWon != 1 || s.BreakerOpened != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
	str := s.String()
	for _, want := range []string{"retries=3", "hedges=2", "hedge-wins=1", "breaker-open=1"} {
		if !strings.Contains(str, want) {
			t.Fatalf("String() = %q missing %q", str, want)
		}
	}
	if (FaultStats{}).String() != "no fault events" {
		t.Fatalf("empty String() = %q", (FaultStats{}).String())
	}
}

func TestFaultRecorderConcurrent(t *testing.T) {
	var r FaultRecorder
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Retries.Add(1)
				r.Redials.Add(1)
			}
		}()
	}
	wg.Wait()
	if s := r.Snapshot(); s.Retries != 8000 || s.Redials != 8000 {
		t.Fatalf("snapshot = %+v", s)
	}
}
