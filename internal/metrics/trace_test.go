package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestTracerRingWraparound(t *testing.T) {
	tr := NewTracer(4)
	for i := 1; i <= 10; i++ {
		sp := tr.StartSlide(uint64(i), "slide")
		if sp == nil {
			t.Fatalf("full mode returned nil span for slide %d", i)
		}
		sp.End()
	}
	if got := tr.Committed(); got != 10 {
		t.Fatalf("Committed = %d, want 10", got)
	}
	recent := tr.Recent(10)
	if len(recent) != 4 {
		t.Fatalf("Recent returned %d spans, want ring capacity 4", len(recent))
	}
	for i, sp := range recent { // newest first: 10, 9, 8, 7
		if want := uint64(10 - i); sp.ID != want {
			t.Errorf("recent[%d].ID = %d, want %d", i, sp.ID, want)
		}
	}
	if got := tr.Recent(2); len(got) != 2 || got[0].ID != 10 {
		t.Fatalf("Recent(2) = %v", got)
	}
}

func TestTracerSampling(t *testing.T) {
	tr := NewTracer(16)
	tr.SetMode(TraceSampled, 3)
	var recorded []uint64
	for i := 1; i <= 9; i++ {
		if sp := tr.StartSlide(uint64(i), "s"); sp != nil {
			recorded = append(recorded, sp.ID)
			sp.End()
		}
	}
	if len(recorded) != 3 {
		t.Fatalf("sampled 1-in-3 over 9 slides recorded %d, want 3 (%v)", len(recorded), recorded)
	}
	if recorded[0] != 1 || recorded[1] != 4 || recorded[2] != 7 {
		t.Fatalf("sampled slides %v, want [1 4 7]", recorded)
	}
}

func TestTracerOffAndNilSafety(t *testing.T) {
	tr := NewTracer(4)
	tr.SetMode(TraceOff, 0)
	sp := tr.StartSlide(1, "s")
	if sp != nil {
		t.Fatalf("TraceOff StartSlide returned non-nil span")
	}
	// The whole Span API must degenerate to no-ops on nil — this is the
	// contract the runtime's unconditional instrumentation relies on.
	child := sp.Child("phase")
	child.Event("ignored %d", 1)
	child.MarkDegraded()
	child.End()
	sp.End()
	if sp.Duration() != 0 || sp.Degraded() || sp.Format() != "" {
		t.Fatalf("nil span leaked state")
	}
	var nilTracer *Tracer
	if nilTracer.StartSlide(1, "s") != nil || nilTracer.Active() != nil {
		t.Fatalf("nil tracer not inert")
	}
	nilTracer.SetMode(TraceFull, 0)
	nilTracer.SetActive(nil)
	if nilTracer.Committed() != 0 || nilTracer.Recent(5) != nil {
		t.Fatalf("nil tracer reported data")
	}
	if tr.Committed() != 0 {
		t.Fatalf("TraceOff committed a slide")
	}
}

// TestSpanConcurrentChildren hammers one span tree from many goroutines —
// the partition-parallel contraction path — while a reader formats it.
func TestSpanConcurrentChildren(t *testing.T) {
	tr := NewTracer(4)
	root := tr.StartSlide(1, "slide")
	phase := root.Child("contract phase")
	var wg sync.WaitGroup
	for p := 0; p < 8; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			ps := phase.Child("partition")
			for i := 0; i < 100; i++ {
				ps.Event("event %d", i)
			}
			ps.End()
		}(p)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = root.Format() // must not race with writers
		}
	}()
	wg.Wait()
	<-done
	phase.End()
	root.MarkDegraded()
	root.End()
	root.End() // idempotent

	if tr.Committed() != 1 {
		t.Fatalf("Committed = %d, want 1", tr.Committed())
	}
	out := root.Format()
	if !strings.Contains(out, "[DEGRADED]") {
		t.Errorf("Format missing degraded mark:\n%s", out)
	}
	if got := strings.Count(out, "partition"); got != 8 {
		t.Errorf("Format shows %d partitions, want 8", got)
	}
}

func TestTracerSlowest(t *testing.T) {
	tr := NewTracer(8)
	for i := 1; i <= 5; i++ {
		sp := tr.StartSlide(uint64(i), "s")
		sp.End()
	}
	// Recorded durations are near-zero and unordered; Slowest must still
	// return the requested count without panicking and sorted descending.
	slow := tr.Slowest(3)
	if len(slow) != 3 {
		t.Fatalf("Slowest(3) returned %d", len(slow))
	}
	for i := 1; i < len(slow); i++ {
		if slow[i].Duration() > slow[i-1].Duration() {
			t.Fatalf("Slowest not descending at %d", i)
		}
	}
}

func TestTracerActiveSpan(t *testing.T) {
	tr := NewTracer(4)
	sp := tr.StartSlide(7, "s")
	tr.SetActive(sp)
	if got := tr.Active(); got != sp {
		t.Fatalf("Active = %v, want the started span", got)
	}
	tr.SetActive(nil)
	if tr.Active() != nil {
		t.Fatalf("Active not cleared")
	}
}
