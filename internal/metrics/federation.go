package metrics

import (
	"fmt"
	"strings"
)

// This file is the metrics-federation layer: every process exports its
// counters and histograms as a NodeStats snapshot (the dist Stats RPC's
// payload), the pool folds the per-worker snapshots into a ClusterStats,
// and because every Histogram shares the same fixed bucket bounds the
// cluster aggregate is an exact sum — Merged() loses nothing, and the
// invariant "merged totals == sum of per-worker totals" is testable to
// the last observation.

// NamedSnapshot pairs a histogram snapshot with its stable metric name
// ("batch", "decode", "map", "encode" for workers).
type NamedSnapshot struct {
	// Name is the metric family suffix (the obs server renders worker
	// family "batch" as slider_worker_batch_seconds).
	Name string
	// Snap is the snapshot itself.
	Snap HistogramSnapshot
}

// NodeStats is one process's exportable observability state: identity,
// work count, fault counters, and named latency histograms. It is the
// unit of metrics federation — what a worker returns from the Stats RPC
// and what the pool caches per worker.
type NodeStats struct {
	// Node is the process's self-reported name.
	Node string
	// Addr is the dial address the pool reached it on (filled by the
	// pool; empty in a worker's own snapshot).
	Addr string
	// Served counts map tasks the node has executed.
	Served int64
	// Faults is the node's fault-event snapshot.
	Faults FaultStats
	// Hists holds the node's named histograms in a stable order.
	Hists []NamedSnapshot
}

// Hist returns the named histogram snapshot and whether it exists.
func (n NodeStats) Hist(name string) (HistogramSnapshot, bool) {
	for _, h := range n.Hists {
		if h.Name == name {
			return h.Snap, true
		}
	}
	return HistogramSnapshot{}, false
}

// Add returns the bucket-wise sum of two snapshots — exact because every
// Histogram shares the same fixed bounds (the property Merge relies on,
// lifted to the value type so federation can fold snapshots that crossed
// the wire without reconstructing live histograms).
func (s HistogramSnapshot) Add(o HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{Count: s.Count + o.Count, SumNs: s.SumNs + o.SumNs}
	for i := range s.Counts {
		out.Counts[i] = s.Counts[i] + o.Counts[i]
	}
	return out
}

// Merge returns the counter-wise sum of two fault snapshots, including
// their RPC latency histograms — the cluster-level fold.
func (s FaultStats) Merge(o FaultStats) FaultStats {
	return FaultStats{
		Retries:          s.Retries + o.Retries,
		DeadlinesExpired: s.DeadlinesExpired + o.DeadlinesExpired,
		Redials:          s.Redials + o.Redials,
		CorruptFrames:    s.CorruptFrames + o.CorruptFrames,
		HedgesLaunched:   s.HedgesLaunched + o.HedgesLaunched,
		HedgesWon:        s.HedgesWon + o.HedgesWon,
		BreakerOpened:    s.BreakerOpened + o.BreakerOpened,
		BreakerHalfOpen:  s.BreakerHalfOpen + o.BreakerHalfOpen,
		BreakerClosed:    s.BreakerClosed + o.BreakerClosed,
		BudgetExhausted:  s.BudgetExhausted + o.BudgetExhausted,
		LocalFallbacks:   s.LocalFallbacks + o.LocalFallbacks,
		MemoRecomputes:   s.MemoRecomputes + o.MemoRecomputes,
		RPCLatency:       s.RPCLatency.Add(o.RPCLatency),
	}
}

// ClusterStats is the pool's federated view of its workers: one NodeStats
// per worker that has answered a Stats poll, ordered by address.
type ClusterStats struct {
	// Workers holds the latest snapshot from each worker.
	Workers []NodeStats
}

// Merged folds every worker snapshot into one cluster-level NodeStats:
// served counts and fault counters sum, and histograms with the same name
// merge bucket-by-bucket. Because the fold is exact (fixed shared bucket
// bounds), Merged's totals always equal the sum of the per-worker totals.
func (c ClusterStats) Merged() NodeStats {
	out := NodeStats{Node: "cluster"}
	idx := make(map[string]int)
	for _, w := range c.Workers {
		out.Served += w.Served
		out.Faults = out.Faults.Merge(w.Faults)
		for _, h := range w.Hists {
			if i, ok := idx[h.Name]; ok {
				out.Hists[i].Snap = out.Hists[i].Snap.Add(h.Snap)
			} else {
				idx[h.Name] = len(out.Hists)
				out.Hists = append(out.Hists, h)
			}
		}
	}
	return out
}

// String renders the cluster section of a stats line: worker count,
// total served tasks, the merged batch-latency quantiles, and the merged
// fault counters.
func (c ClusterStats) String() string {
	if len(c.Workers) == 0 {
		return "cluster: no worker stats federated yet"
	}
	m := c.Merged()
	var b strings.Builder
	fmt.Fprintf(&b, "cluster[%d workers served=%d", len(c.Workers), m.Served)
	if batch, ok := m.Hist("batch"); ok && batch.total() > 0 {
		fmt.Fprintf(&b, " batch-p50=%v batch-p95=%v", batch.Quantile(0.50), batch.Quantile(0.95))
	}
	b.WriteString("]")
	for _, w := range c.Workers {
		fmt.Fprintf(&b, " %s=%d", w.Node, w.Served)
	}
	fmt.Fprintf(&b, "; faults: %s", m.Faults)
	return b.String()
}
