package metrics

// SlideObs bundles the runtime's per-slide observability surfaces: the
// end-to-end and per-phase latency histograms plus the span tracer.
// Hand one to sliderrt.Config.Obs to instrument a runtime, and to
// obs.Config.Slide (or obs.StartForRuntime) to serve it over HTTP.
//
// The histograms are zero-value ready and always record when the bundle
// is installed (a few atomic adds per slide — the paper's §7 quantities,
// cheap enough to leave on). The tracer controls span recording
// separately via Tracer.SetMode: off, sampled, or full. A nil *SlideObs
// on the runtime config disables the entire instrumentation path.
type SlideObs struct {
	// Slide is the end-to-end latency of one slide (Initial or Advance).
	Slide Histogram
	// Map, Contract, and Reduce are the wall-clock latencies of the three
	// phases of each slide (map tasks incl. shuffle into partitions, the
	// contraction-tree update, and the final per-partition reduce).
	Map      Histogram
	Contract Histogram
	Reduce   Histogram
	// MemoRead and MemoWrite are the simulated memoization-layer I/O
	// latencies, one observation per charged read/write (the shim layer's
	// cost model, Table 2).
	MemoRead  Histogram
	MemoWrite Histogram
	// Tracer records slide span trees; nil disables tracing while the
	// histograms keep recording.
	Tracer *Tracer
}

// NewSlideObs returns a bundle with a full-recording tracer of the
// default ring capacity.
func NewSlideObs() *SlideObs {
	return &SlideObs{Tracer: NewTracer(0)}
}

// NamedHistogram pairs one of the bundle's histograms with its stable
// name (and phase label, for the per-phase family), consumed by the
// Prometheus renderer.
type NamedHistogram struct {
	// Name is the metric family: "slide", "phase", "memo_read",
	// "memo_write".
	Name string
	// Phase labels entries of the "phase" family ("map", "contract",
	// "reduce"); empty otherwise.
	Phase string
	// Hist is the histogram itself.
	Hist *Histogram
}

// All returns the bundle's histograms in a stable order.
func (o *SlideObs) All() []NamedHistogram {
	if o == nil {
		return nil
	}
	return []NamedHistogram{
		{Name: "slide", Hist: &o.Slide},
		{Name: "phase", Phase: "map", Hist: &o.Map},
		{Name: "phase", Phase: "contract", Hist: &o.Contract},
		{Name: "phase", Phase: "reduce", Hist: &o.Reduce},
		{Name: "memo_read", Hist: &o.MemoRead},
		{Name: "memo_write", Hist: &o.MemoWrite},
	}
}
