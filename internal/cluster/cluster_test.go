package cluster

import (
	"testing"
	"time"

	"slider/internal/metrics"
)

// earliest is a trivial policy: always the first-free node.
type earliest struct{}

func (earliest) Name() string                     { return "earliest" }
func (earliest) Place(_ metrics.Task, v View) int { return v.EarliestNode() }

// pinned always places on one node.
type pinned struct{ node int }

func (p pinned) Name() string                     { return "pinned" }
func (p pinned) Place(_ metrics.Task, _ View) int { return p.node }

func TestEmptyRun(t *testing.T) {
	sim := NewSimulator(Config{Nodes: 2, SlotsPerNode: 2})
	res := sim.Run(nil, earliest{})
	if res.Makespan != 0 {
		t.Fatalf("makespan = %v", res.Makespan)
	}
}

func TestSingleTask(t *testing.T) {
	sim := NewSimulator(Config{Nodes: 2, SlotsPerNode: 1})
	res := sim.Run([]metrics.Task{
		{Phase: metrics.PhaseMap, Cost: 42 * time.Millisecond},
	}, earliest{})
	if res.Makespan != 42*time.Millisecond {
		t.Fatalf("makespan = %v", res.Makespan)
	}
}

func TestPinnedQueues(t *testing.T) {
	sim := NewSimulator(Config{Nodes: 4, SlotsPerNode: 1})
	tasks := make([]metrics.Task, 4)
	for i := range tasks {
		tasks[i] = metrics.Task{Phase: metrics.PhaseMap, Cost: 10 * time.Millisecond}
	}
	res := sim.Run(tasks, pinned{node: 2})
	if res.Makespan != 40*time.Millisecond {
		t.Fatalf("makespan = %v, want serialized 40ms", res.Makespan)
	}
}

func TestTransferChargedOnMigration(t *testing.T) {
	cfg := Config{Nodes: 2, SlotsPerNode: 1, NetBytesPerSec: 1 << 20} // 1 MiB/s
	sim := NewSimulator(cfg)
	task := metrics.Task{
		Phase: metrics.PhaseReduce, Cost: 10 * time.Millisecond,
		PreferredNode: 0, InputBytes: 1 << 20, // 1 MiB → 1 s transfer
	}
	local := sim.Run([]metrics.Task{task}, pinned{node: 0})
	remote := sim.Run([]metrics.Task{task}, pinned{node: 1})
	if local.TransferTime != 0 || local.Migrations != 0 {
		t.Fatalf("local run charged transfer: %+v", local)
	}
	if remote.Migrations != 1 {
		t.Fatalf("migrations = %d", remote.Migrations)
	}
	wantTransfer := time.Second
	if remote.TransferTime != wantTransfer {
		t.Fatalf("transfer = %v, want %v", remote.TransferTime, wantTransfer)
	}
	if remote.Makespan != wantTransfer+10*time.Millisecond {
		t.Fatalf("makespan = %v", remote.Makespan)
	}
}

func TestOutOfRangePlacementFallsBack(t *testing.T) {
	sim := NewSimulator(Config{Nodes: 2, SlotsPerNode: 1})
	res := sim.Run([]metrics.Task{
		{Phase: metrics.PhaseMap, Cost: 5 * time.Millisecond},
	}, pinned{node: 99})
	if res.Makespan != 5*time.Millisecond {
		t.Fatalf("makespan = %v (bad node not tolerated)", res.Makespan)
	}
}

func TestPhaseOrdering(t *testing.T) {
	sim := NewSimulator(Config{Nodes: 8, SlotsPerNode: 2})
	tasks := []metrics.Task{
		{Phase: metrics.PhaseReduce, Cost: 10 * time.Millisecond},
		{Phase: metrics.PhaseContraction, Cost: 10 * time.Millisecond},
		{Phase: metrics.PhaseMap, Cost: 10 * time.Millisecond},
	}
	res := sim.Run(tasks, earliest{})
	// Map < contraction < reduce barriers: 30ms total despite idle slots.
	if res.Makespan != 30*time.Millisecond {
		t.Fatalf("makespan = %v, want 30ms (phase barriers)", res.Makespan)
	}
	if !(res.PhaseEnd[metrics.PhaseMap] < res.PhaseEnd[metrics.PhaseContraction] &&
		res.PhaseEnd[metrics.PhaseContraction] < res.PhaseEnd[metrics.PhaseReduce]) {
		t.Fatalf("phase ends out of order: %v", res.PhaseEnd)
	}
}

func TestLPTPacking(t *testing.T) {
	// One long task and three short ones on two slots: LPT puts the
	// long task first → makespan = max(long, 3×short) instead of
	// long + short.
	sim := NewSimulator(Config{Nodes: 2, SlotsPerNode: 1})
	tasks := []metrics.Task{
		{Phase: metrics.PhaseMap, Cost: 10 * time.Millisecond},
		{Phase: metrics.PhaseMap, Cost: 10 * time.Millisecond},
		{Phase: metrics.PhaseMap, Cost: 10 * time.Millisecond},
		{Phase: metrics.PhaseMap, Cost: 30 * time.Millisecond},
	}
	res := sim.Run(tasks, earliest{})
	if res.Makespan != 30*time.Millisecond {
		t.Fatalf("makespan = %v, want 30ms", res.Makespan)
	}
}

func TestNormalizeDefaults(t *testing.T) {
	sim := NewSimulator(Config{})
	res := sim.Run([]metrics.Task{{Phase: metrics.PhaseMap, Cost: time.Millisecond}}, earliest{})
	if res.Makespan != time.Millisecond {
		t.Fatalf("zero config misbehaved: %v", res.Makespan)
	}
}

func TestSpeedDefaultsToOne(t *testing.T) {
	sim := NewSimulator(Config{Nodes: 3, SlotsPerNode: 1, Speed: []float64{0.5}})
	// Node 0 is slow; nodes 1,2 default to speed 1.
	res := sim.Run([]metrics.Task{
		{Phase: metrics.PhaseMap, Cost: 10 * time.Millisecond},
	}, pinned{node: 1})
	if res.Makespan != 10*time.Millisecond {
		t.Fatalf("makespan = %v", res.Makespan)
	}
}
