// Package cluster provides a discrete-event simulator that turns the
// measured task costs of a job run into an end-to-end running time
// ("time" in the paper's terminology, §7.1) for a cluster of a given
// size, under a pluggable scheduling policy.
//
// The model mirrors the paper's testbed at the granularity that matters
// for the evaluation: machines with a fixed number of task slots and
// per-machine speed factors (stragglers are slow machines), phase
// barriers between map and contraction/reduce, and a network cost for
// reading non-local data (e.g. memoized state after a task migration).
package cluster

import (
	"fmt"
	"sort"
	"time"

	"slider/internal/metrics"
)

// Config describes the simulated cluster.
type Config struct {
	// Nodes is the number of worker machines.
	Nodes int
	// SlotsPerNode is the number of concurrent tasks per machine.
	SlotsPerNode int
	// Speed holds per-node speed factors (1.0 = nominal; a straggler
	// has a factor < 1). Missing entries default to 1.0.
	Speed []float64
	// NetBytesPerSec is the simulated network bandwidth used to charge
	// remote reads when a task runs away from its preferred node.
	NetBytesPerSec int64
}

// DefaultConfig mirrors the paper's testbed scale: 24 worker machines
// with 2 task slots each and a 1 Gb/s network.
func DefaultConfig() Config {
	return Config{Nodes: 24, SlotsPerNode: 2, NetBytesPerSec: 125 << 20}
}

func (c *Config) normalize() {
	if c.Nodes <= 0 {
		c.Nodes = 1
	}
	if c.SlotsPerNode <= 0 {
		c.SlotsPerNode = 1
	}
	if c.NetBytesPerSec <= 0 {
		c.NetBytesPerSec = 125 << 20
	}
}

// View exposes the scheduler-visible cluster state during placement.
type View interface {
	// Nodes returns the machine count.
	Nodes() int
	// EarliestFree returns the earliest time a slot frees up on node.
	EarliestFree(node int) time.Duration
	// EarliestNode returns the node with the globally earliest free slot.
	EarliestNode() int
	// Speed returns the node's speed factor.
	Speed(node int) float64
}

// Policy decides where each task runs. Implementations live in
// internal/scheduler.
type Policy interface {
	// Place returns the node the task should run on.
	Place(t metrics.Task, v View) int
	// Name identifies the policy in reports.
	Name() string
}

// Result summarizes one simulated execution.
type Result struct {
	// Makespan is the end-to-end running time.
	Makespan time.Duration
	// PhaseEnd records when each phase's last task finished.
	PhaseEnd map[metrics.Phase]time.Duration
	// Migrations counts tasks placed away from their preferred node.
	Migrations int
	// TransferTime is the total simulated network time paid by
	// migrated tasks.
	TransferTime time.Duration
}

// Simulator schedules measured tasks onto the simulated cluster.
type Simulator struct {
	cfg Config
}

// NewSimulator returns a simulator for the given cluster.
func NewSimulator(cfg Config) *Simulator {
	cfg.normalize()
	return &Simulator{cfg: cfg}
}

// state implements View during a simulation.
type state struct {
	cfg      Config
	slotFree [][]time.Duration // per node, per slot
}

func (s *state) Nodes() int { return s.cfg.Nodes }

func (s *state) EarliestFree(node int) time.Duration {
	best := s.slotFree[node][0]
	for _, f := range s.slotFree[node][1:] {
		if f < best {
			best = f
		}
	}
	return best
}

func (s *state) EarliestNode() int {
	best, bestT := 0, s.EarliestFree(0)
	for n := 1; n < s.cfg.Nodes; n++ {
		if f := s.EarliestFree(n); f < bestT {
			best, bestT = n, f
		}
	}
	return best
}

func (s *state) Speed(node int) float64 {
	if node < len(s.cfg.Speed) && s.cfg.Speed[node] > 0 {
		return s.cfg.Speed[node]
	}
	return 1.0
}

// assign runs a task on the chosen node's earliest slot, no earlier than
// notBefore, and returns its completion time and transfer delay.
func (s *state) assign(t metrics.Task, node int, notBefore time.Duration, netBPS int64) (time.Duration, time.Duration) {
	slot := 0
	for i, f := range s.slotFree[node] {
		if f < s.slotFree[node][slot] {
			slot = i
		}
	}
	start := s.slotFree[node][slot]
	if start < notBefore {
		start = notBefore
	}
	var transfer time.Duration
	if t.PreferredNode >= 0 && node != t.PreferredNode && t.InputBytes > 0 {
		transfer = time.Duration(float64(t.InputBytes) / float64(netBPS) * float64(time.Second))
	}
	dur := time.Duration(float64(t.Cost)/s.Speed(node)) + transfer
	end := start + dur
	s.slotFree[node][slot] = end
	return end, transfer
}

// Run simulates the execution of the recorded tasks under the policy.
// Phases are barriers: contraction/reduce tasks start only after every
// map task finished, matching the shuffle barrier of MapReduce.
func (s *Simulator) Run(tasks []metrics.Task, policy Policy) Result {
	st := &state{
		cfg:      s.cfg,
		slotFree: make([][]time.Duration, s.cfg.Nodes),
	}
	for n := range st.slotFree {
		st.slotFree[n] = make([]time.Duration, s.cfg.SlotsPerNode)
	}

	byPhase := map[metrics.Phase][]metrics.Task{}
	for _, t := range tasks {
		if t.Reused || t.Cost <= 0 {
			continue
		}
		byPhase[t.Phase] = append(byPhase[t.Phase], t)
	}
	res := Result{PhaseEnd: make(map[metrics.Phase]time.Duration)}
	var barrier time.Duration
	for _, phase := range []metrics.Phase{metrics.PhaseMap, metrics.PhaseContraction, metrics.PhaseReduce} {
		phaseTasks := byPhase[phase]
		if len(phaseTasks) == 0 {
			continue
		}
		// Longest-processing-time order approximates Hadoop's greedy
		// slot filling for uniform tasks while avoiding pathological
		// packings.
		sort.SliceStable(phaseTasks, func(i, j int) bool {
			return phaseTasks[i].Cost > phaseTasks[j].Cost
		})
		var phaseEnd time.Duration
		for _, t := range phaseTasks {
			node := policy.Place(t, st)
			if node < 0 || node >= s.cfg.Nodes {
				node = st.EarliestNode()
			}
			end, transfer := st.assign(t, node, barrier, s.cfg.NetBytesPerSec)
			if t.PreferredNode >= 0 && node != t.PreferredNode {
				res.Migrations++
				res.TransferTime += transfer
			}
			if end > phaseEnd {
				phaseEnd = end
			}
		}
		res.PhaseEnd[phase] = phaseEnd
		barrier = phaseEnd
	}
	res.Makespan = barrier
	return res
}

// Validate checks the configuration for obvious mistakes.
func (c Config) Validate() error {
	if c.Nodes < 0 || c.SlotsPerNode < 0 {
		return fmt.Errorf("cluster: negative nodes (%d) or slots (%d)", c.Nodes, c.SlotsPerNode)
	}
	for i, s := range c.Speed {
		if s < 0 {
			return fmt.Errorf("cluster: node %d has negative speed %f", i, s)
		}
	}
	return nil
}
