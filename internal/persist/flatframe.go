package persist

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync/atomic"

	"slider/internal/flatenc"
	"slider/internal/mapreduce"
)

// Flat frame layout: magic (4) | kind (1) | length (8) | crc32 (4) |
// flat body. The kind byte names the body shape so a frame is
// self-describing (a payload, a split, or a payload set) without decoding
// the body.
var frameMagicFlat = [4]byte{'s', 'l', 'd', '2'}

const flatHeaderLen = 4 + 1 + 8 + 4

// Flat frame kinds.
const (
	kindPayload    byte = 1
	kindSplit      byte = 2
	kindPayloadSet byte = 3
)

// Codec selects the wire codec for payload-shaped data (payload frames,
// split frames, payload sets). Checkpoint metadata and other arbitrary
// values always travel as gob (Encode/Decode).
type Codec int32

// Codecs.
const (
	// CodecFlat — the default — frames payloads with the flat columnar
	// encoding of internal/flatenc (frame version sld2).
	CodecFlat Codec = iota
	// CodecGob frames payloads as whole-value gob (frame version sld1),
	// the pre-flat format. It exists for the gob-vs-flat benchmark
	// baseline and for fabricating legacy frames in compatibility tests;
	// decoders accept both formats regardless of this setting.
	CodecGob
)

var payloadCodec atomic.Int32

// SetPayloadCodec switches the codec used by the payload-shaped encoders
// and returns the previous setting. Decoding is always version-negotiated
// per frame, so flipping the codec never invalidates existing frames.
func SetPayloadCodec(c Codec) Codec {
	return Codec(payloadCodec.Swap(int32(c)))
}

// PayloadCodec reports the current payload codec.
func PayloadCodec() Codec { return Codec(payloadCodec.Load()) }

// appendFlatFrame wraps body (already appended to dst after the header
// space) — helper used by the Append* encoders. It expects dst to hold
// everything up to the body and patches length + checksum.
func finishFlatFrame(dst []byte, bodyStart int) []byte {
	body := dst[bodyStart:]
	binary.LittleEndian.PutUint64(dst[bodyStart-12:], uint64(len(body)))
	binary.LittleEndian.PutUint32(dst[bodyStart-4:], crc32.ChecksumIEEE(body))
	return dst
}

// startFlatFrame appends the sld2 header with zeroed length/crc.
func startFlatFrame(dst []byte, kind byte) []byte {
	dst = append(dst, frameMagicFlat[:]...)
	dst = append(dst, kind)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // length
	dst = append(dst, 0, 0, 0, 0)             // crc
	return dst
}

// openFlatFrame validates an sld2 frame and returns its kind and body.
func openFlatFrame(frame []byte) (byte, []byte, error) {
	if len(frame) < flatHeaderLen {
		return 0, nil, fmt.Errorf("%w: flat frame too short", ErrCorrupt)
	}
	kind := frame[4]
	length := binary.LittleEndian.Uint64(frame[5:13])
	want := binary.LittleEndian.Uint32(frame[13:17])
	body := frame[flatHeaderLen:]
	if uint64(len(body)) != length {
		return 0, nil, fmt.Errorf("%w: length %d != %d", ErrCorrupt, len(body), length)
	}
	if crc32.ChecksumIEEE(body) != want {
		return 0, nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return kind, body, nil
}

// isFlatFrame reports whether frame starts with the sld2 magic.
func isFlatFrame(frame []byte) bool {
	return len(frame) >= 4 && bytes.Equal(frame[:4], frameMagicFlat[:])
}

// AppendPayload appends one framed payload to dst: a flat sld2 frame
// under CodecFlat (allocation-free with a pooled dst at steady state), a
// legacy gob sld1 frame under CodecGob.
func AppendPayload(dst []byte, p mapreduce.Payload) ([]byte, error) {
	if PayloadCodec() == CodecGob {
		frame, err := Encode(p)
		if err != nil {
			return nil, err
		}
		return append(dst, frame...), nil
	}
	start := len(dst)
	dst = startFlatFrame(dst, kindPayload)
	bodyStart := len(dst)
	out, err := flatenc.AppendPayload(dst, map[string]any(p))
	if err != nil {
		return dst[:start], fmt.Errorf("persist: encode payload: %w", err)
	}
	return finishFlatFrame(out, bodyStart), nil
}

// EncodePayload frames one payload in a fresh, exactly-sized slice.
func EncodePayload(p mapreduce.Payload) ([]byte, error) {
	buf := flatenc.GetBuffer()
	defer flatenc.PutBuffer(buf)
	out, err := AppendPayload(*buf, p)
	if err != nil {
		return nil, err
	}
	final := append(make([]byte, 0, len(out)), out...)
	*buf = out[:0]
	return final, nil
}

// DecodePayload decodes a payload frame of either version into a fresh
// Go map: sld2 flat frames materialize through a zero-copy view; sld1
// gob frames take the legacy path.
func DecodePayload(frame []byte) (mapreduce.Payload, error) {
	if !isFlatFrame(frame) {
		var p mapreduce.Payload
		if err := Decode(frame, &p); err != nil {
			return nil, err
		}
		return p, nil
	}
	view, err := DecodePayloadView(frame)
	if err != nil {
		return nil, err
	}
	m, err := view.Materialize()
	if err != nil {
		return nil, fmt.Errorf("persist: decode payload: %w", err)
	}
	return mapreduce.Payload(m), nil
}

// DecodePayloadView opens an sld2 payload frame as a zero-copy
// flatenc.View: keys and values are read directly off the frame bytes
// without materializing a map. The view is valid only while frame stays
// alive and unmodified. Legacy gob frames have no view form; use
// DecodePayload for version-negotiated decoding.
func DecodePayloadView(frame []byte) (flatenc.View, error) {
	kind, body, err := openFlatFrame(frame)
	if err != nil {
		return flatenc.View{}, err
	}
	if kind != kindPayload {
		return flatenc.View{}, fmt.Errorf("%w: frame kind %d, want payload", ErrCorrupt, kind)
	}
	view, err := flatenc.MakeView(body)
	if err != nil {
		return flatenc.View{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return view, nil
}

// AppendPayloadSet appends one framed payload set (a split's
// per-partition outputs, a checkpoint's buckets) to dst.
func AppendPayloadSet(dst []byte, ps []mapreduce.Payload) ([]byte, error) {
	if PayloadCodec() == CodecGob {
		frame, err := Encode(ps)
		if err != nil {
			return nil, err
		}
		return append(dst, frame...), nil
	}
	start := len(dst)
	dst = startFlatFrame(dst, kindPayloadSet)
	bodyStart := len(dst)
	out := dst
	var err error
	// []mapreduce.Payload and []map[string]any have identical layouts but
	// Go will not convert slice element types; the set encoder walks the
	// slice itself.
	out = appendU32(out, uint32(len(ps)))
	for _, p := range ps {
		lenOff := len(out)
		out = appendU32(out, 0)
		if out, err = flatenc.AppendPayload(out, map[string]any(p)); err != nil {
			return dst[:start], fmt.Errorf("persist: encode payload set: %w", err)
		}
		binary.LittleEndian.PutUint32(out[lenOff:], uint32(len(out)-lenOff-4))
	}
	return finishFlatFrame(out, bodyStart), nil
}

func appendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// EncodePayloadSet frames a payload set in a fresh, exactly-sized slice.
func EncodePayloadSet(ps []mapreduce.Payload) ([]byte, error) {
	buf := flatenc.GetBuffer()
	defer flatenc.PutBuffer(buf)
	out, err := AppendPayloadSet(*buf, ps)
	if err != nil {
		return nil, err
	}
	final := append(make([]byte, 0, len(out)), out...)
	*buf = out[:0]
	return final, nil
}

// DecodePayloadSet decodes a payload-set frame of either version into
// fresh Go maps.
func DecodePayloadSet(frame []byte) ([]mapreduce.Payload, error) {
	if !isFlatFrame(frame) {
		var ps []mapreduce.Payload
		if err := Decode(frame, &ps); err != nil {
			return nil, err
		}
		return ps, nil
	}
	kind, body, err := openFlatFrame(frame)
	if err != nil {
		return nil, err
	}
	if kind != kindPayloadSet {
		return nil, fmt.Errorf("%w: frame kind %d, want payload set", ErrCorrupt, kind)
	}
	ms, err := flatenc.MaterializePayloadSet(body)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	out := make([]mapreduce.Payload, len(ms))
	for i, m := range ms {
		out[i] = mapreduce.Payload(m)
	}
	return out, nil
}

// EncodeSplit frames one map-task split for the dist wire. Splits whose
// records are all native scalar types (text lines, byte blobs, numbers)
// take the flat value-list form; anything else — application record
// structs — falls back to a whole-split gob frame, where one gob type
// dictionary covers every record instead of one per record.
func EncodeSplit(s mapreduce.Split) ([]byte, error) {
	if PayloadCodec() == CodecGob || !recordsAreScalar(s.Records) {
		return Encode(s)
	}
	buf := flatenc.GetBuffer()
	defer flatenc.PutBuffer(buf)
	dst := startFlatFrame(*buf, kindSplit)
	bodyStart := len(dst)
	dst = appendU32(dst, uint32(len(s.ID)))
	dst = append(dst, s.ID...)
	out, err := flatenc.AppendValues(dst, s.Records)
	if err != nil {
		*buf = (*buf)[:0]
		return nil, fmt.Errorf("persist: encode split: %w", err)
	}
	out = finishFlatFrame(out, bodyStart)
	final := append(make([]byte, 0, len(out)), out...)
	*buf = out[:0]
	return final, nil
}

// recordsAreScalar reports whether every record encodes natively in the
// flat value columns.
func recordsAreScalar(records []mapreduce.Record) bool {
	for _, r := range records {
		switch r.(type) {
		case nil, bool, int, int64, uint64, float64, string, []byte:
		default:
			return false
		}
	}
	return true
}

// DecodeSplit decodes a split frame of either version. Flat-framed
// records are materialized into independent memory; the frame may be
// recycled afterwards.
func DecodeSplit(frame []byte) (mapreduce.Split, error) {
	return decodeSplit(frame, false)
}

// DecodeSplitZeroCopy decodes a split frame with zero-copy records:
// string and []byte records alias the frame bytes, so the split is valid
// only while frame stays alive and unmodified. The dist worker uses this
// to run map tasks straight off the wire — record strings are consumed by
// the map function and never outlive the RPC handler.
func DecodeSplitZeroCopy(frame []byte) (mapreduce.Split, error) {
	return decodeSplit(frame, true)
}

func decodeSplit(frame []byte, zeroCopy bool) (mapreduce.Split, error) {
	if !isFlatFrame(frame) {
		var s mapreduce.Split
		if err := Decode(frame, &s); err != nil {
			return mapreduce.Split{}, err
		}
		return s, nil
	}
	kind, body, err := openFlatFrame(frame)
	if err != nil {
		return mapreduce.Split{}, err
	}
	if kind != kindSplit {
		return mapreduce.Split{}, fmt.Errorf("%w: frame kind %d, want split", ErrCorrupt, kind)
	}
	if len(body) < 4 {
		return mapreduce.Split{}, fmt.Errorf("%w: split body too short", ErrCorrupt)
	}
	idLen := int(binary.LittleEndian.Uint32(body))
	if idLen < 0 || 4+idLen > len(body) {
		return mapreduce.Split{}, fmt.Errorf("%w: split id overruns", ErrCorrupt)
	}
	id := string(body[4 : 4+idLen])
	view, err := flatenc.MakeValuesView(body[4+idLen:])
	if err != nil {
		return mapreduce.Split{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	var records []any
	if zeroCopy {
		records, err = view.Values()
	} else {
		records, err = view.MaterializeValues()
	}
	if err != nil {
		return mapreduce.Split{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return mapreduce.Split{ID: id, Records: records}, nil
}
