// Package persist provides the serialization and durable-storage
// machinery behind Slider's fault-tolerant state handling: a gob-based
// codec with checksummed framing for memoized payloads and runtime
// checkpoints, and an atomic file store with corruption detection and
// replica fallback — the persistent half of the paper's memoization
// layer (§6), realized with real bytes on a real filesystem.
package persist

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
)

// ErrCorrupt is returned when a frame fails its checksum or is
// structurally invalid.
var ErrCorrupt = errors.New("persist: corrupt frame")

var (
	registerOnce sync.Once
	registerMu   sync.Mutex
)

// registerBuiltins registers the value types that appear inside payloads
// of the bundled applications and the query layer, so they can travel
// through interface-typed gob fields.
func registerBuiltins() {
	for _, v := range []any{
		int(0), int64(0), uint64(0), float64(0), false, "",
		[]byte(nil), []float64(nil), []int64(nil), []string(nil),
		[]any(nil), map[string]int64(nil), map[string]float64(nil),
		map[string]any(nil),
	} {
		gob.Register(v)
	}
}

// RegisterType makes a concrete application value type serializable when
// stored behind an interface (payload values, query rows). Call it once
// per custom Combine value type before checkpointing, e.g.
// persist.RegisterType(&MyAccumulator{}).
func RegisterType(v any) {
	registerMu.Lock()
	defer registerMu.Unlock()
	gob.Register(v)
}

// frame layout: magic (4) | length (8) | crc32 (4) | gob bytes.
var frameMagic = [4]byte{'s', 'l', 'd', '1'}

// Encode serializes v with gob inside a checksummed frame.
func Encode(v any) ([]byte, error) {
	registerOnce.Do(registerBuiltins)
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(v); err != nil {
		return nil, fmt.Errorf("persist: encode: %w", err)
	}
	data := payload.Bytes()
	out := make([]byte, 0, 16+len(data))
	out = append(out, frameMagic[:]...)
	var lenBuf [8]byte
	binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(data)))
	out = append(out, lenBuf[:]...)
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc32.ChecksumIEEE(data))
	out = append(out, crcBuf[:]...)
	return append(out, data...), nil
}

// Decode deserializes a frame produced by Encode into out (a pointer).
func Decode(frame []byte, out any) error {
	registerOnce.Do(registerBuiltins)
	if len(frame) < 16 || !bytes.Equal(frame[:4], frameMagic[:]) {
		return fmt.Errorf("%w: bad header", ErrCorrupt)
	}
	length := binary.LittleEndian.Uint64(frame[4:12])
	want := binary.LittleEndian.Uint32(frame[12:16])
	data := frame[16:]
	if uint64(len(data)) != length {
		return fmt.Errorf("%w: length %d != %d", ErrCorrupt, len(data), length)
	}
	if crc32.ChecksumIEEE(data) != want {
		return fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(out); err != nil {
		return fmt.Errorf("persist: decode: %w", err)
	}
	return nil
}
