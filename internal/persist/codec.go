// Package persist provides the serialization and durable-storage
// machinery behind Slider's fault-tolerant state handling: checksummed
// framing for memoized payloads, dist RPC bodies and runtime checkpoints
// — a gob codec for arbitrary values (frame version sld1) and the flat
// columnar payload codec of internal/flatenc (frame version sld2) — and
// an atomic file store with corruption detection and replica fallback,
// the persistent half of the paper's memoization layer (§6), realized
// with real bytes on a real filesystem.
//
// Version negotiation is per frame: encoders emit the configured codec's
// frames (flat by default for payload-shaped data); every decoder
// dispatches on the frame magic, so legacy gob frames written before the
// flat codec existed — checkpoints, persisted payloads, frames from an
// old worker across a mixed-version cluster — still decode.
package persist

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"slider/internal/flatenc"
)

// ErrCorrupt is returned when a frame fails its checksum or is
// structurally invalid.
var ErrCorrupt = errors.New("persist: corrupt frame")

var (
	registerOnce sync.Once
	registerMu   sync.Mutex
)

// registerBuiltins registers the value types that appear inside payloads
// of the bundled applications and the query layer, so they can travel
// through interface-typed gob fields. The list lives in flatenc (whose
// escape-hatch column shares the process-global gob registry).
func registerBuiltins() {
	flatenc.EnsureBuiltins()
}

// RegisterType makes a concrete application value type serializable when
// stored behind an interface (payload values, query rows) — both through
// legacy gob frames and through the flat codec's gob escape-hatch
// column. Call it once per custom Combine value type before
// checkpointing, e.g. persist.RegisterType(&MyAccumulator{}).
func RegisterType(v any) {
	registerMu.Lock()
	defer registerMu.Unlock()
	gob.Register(v)
}

// frame layout: magic (4) | length (8) | crc32 (4) | gob bytes.
var frameMagic = [4]byte{'s', 'l', 'd', '1'}

// Encode serializes v with gob inside a checksummed frame.
func Encode(v any) ([]byte, error) {
	registerOnce.Do(registerBuiltins)
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(v); err != nil {
		return nil, fmt.Errorf("persist: encode: %w", err)
	}
	data := payload.Bytes()
	out := make([]byte, 0, 16+len(data))
	out = append(out, frameMagic[:]...)
	var lenBuf [8]byte
	binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(data)))
	out = append(out, lenBuf[:]...)
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc32.ChecksumIEEE(data))
	out = append(out, crcBuf[:]...)
	return append(out, data...), nil
}

// Decode deserializes a frame produced by Encode into out (a pointer).
func Decode(frame []byte, out any) error {
	registerOnce.Do(registerBuiltins)
	if len(frame) < 16 || !bytes.Equal(frame[:4], frameMagic[:]) {
		return fmt.Errorf("%w: bad header", ErrCorrupt)
	}
	length := binary.LittleEndian.Uint64(frame[4:12])
	want := binary.LittleEndian.Uint32(frame[12:16])
	data := frame[16:]
	if uint64(len(data)) != length {
		return fmt.Errorf("%w: length %d != %d", ErrCorrupt, len(data), length)
	}
	if crc32.ChecksumIEEE(data) != want {
		return fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(out); err != nil {
		return fmt.Errorf("persist: decode: %w", err)
	}
	return nil
}
