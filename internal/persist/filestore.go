package persist

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// FileStore persists named checksummed frames under a directory with
// configurable replication: each object is written to Replicas
// subdirectories (standing in for distinct machines' disks). Writes are
// atomic (temp file + rename); reads verify the frame checksum and fall
// back to the next replica on corruption or absence — the behaviour the
// paper's fault-tolerant memoization layer guarantees.
type FileStore struct {
	dir      string
	replicas int
}

// NewFileStore opens (creating if needed) a store rooted at dir with the
// given replication factor (minimum 1).
func NewFileStore(dir string, replicas int) (*FileStore, error) {
	if replicas < 1 {
		replicas = 1
	}
	for r := 0; r < replicas; r++ {
		if err := os.MkdirAll(replicaDir(dir, r), 0o755); err != nil {
			return nil, fmt.Errorf("persist: create store: %w", err)
		}
	}
	return &FileStore{dir: dir, replicas: replicas}, nil
}

func replicaDir(dir string, r int) string {
	return filepath.Join(dir, fmt.Sprintf("replica-%d", r))
}

// sanitize converts an object name into a safe file name.
func sanitize(name string) string {
	replacer := strings.NewReplacer("/", "_", "\\", "_", ":", "_", "..", "_")
	return replacer.Replace(name) + ".obj"
}

// Save encodes v and writes it to every replica atomically.
func (s *FileStore) Save(name string, v any) error {
	frame, err := Encode(v)
	if err != nil {
		return err
	}
	var firstErr error
	written := 0
	for r := 0; r < s.replicas; r++ {
		path := filepath.Join(replicaDir(s.dir, r), sanitize(name))
		if err := atomicWrite(path, frame); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		written++
	}
	if written == 0 {
		return fmt.Errorf("persist: save %q: %w", name, firstErr)
	}
	return nil
}

func atomicWrite(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	return os.Rename(tmpName, path)
}

// Load reads an object, trying each replica until one passes checksum
// verification. It returns fs.ErrNotExist when no replica has the object
// and ErrCorrupt when every present replica is damaged.
func (s *FileStore) Load(name string, out any) error {
	var lastErr error
	found := false
	for r := 0; r < s.replicas; r++ {
		path := filepath.Join(replicaDir(s.dir, r), sanitize(name))
		frame, err := os.ReadFile(path)
		if err != nil {
			if !errors.Is(err, fs.ErrNotExist) {
				lastErr = err
			}
			continue
		}
		found = true
		if err := Decode(frame, out); err != nil {
			lastErr = err
			continue
		}
		return nil
	}
	if !found {
		if lastErr != nil {
			return lastErr
		}
		return fmt.Errorf("persist: load %q: %w", name, fs.ErrNotExist)
	}
	return fmt.Errorf("persist: load %q: %w", name, lastErr)
}

// Delete removes an object from every replica.
func (s *FileStore) Delete(name string) error {
	var firstErr error
	for r := 0; r < s.replicas; r++ {
		path := filepath.Join(replicaDir(s.dir, r), sanitize(name))
		if err := os.Remove(path); err != nil && !errors.Is(err, fs.ErrNotExist) && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// List returns the names present on at least one replica, sorted.
func (s *FileStore) List() ([]string, error) {
	seen := map[string]bool{}
	for r := 0; r < s.replicas; r++ {
		entries, err := os.ReadDir(replicaDir(s.dir, r))
		if err != nil {
			continue
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".obj") {
				seen[strings.TrimSuffix(e.Name(), ".obj")] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// CorruptReplica deliberately damages one replica's copy of an object
// (fault-injection support for tests).
func (s *FileStore) CorruptReplica(name string, replica int) error {
	path := filepath.Join(replicaDir(s.dir, replica), sanitize(name))
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(data) > 20 {
		data[20] ^= 0xff
	}
	return os.WriteFile(path, data, 0o644)
}

// DropReplica removes one replica's copy of an object (fault injection).
func (s *FileStore) DropReplica(name string, replica int) error {
	return os.Remove(filepath.Join(replicaDir(s.dir, replica), sanitize(name)))
}
