package persist

import (
	"reflect"
	"testing"

	"slider/internal/mapreduce"
)

func testPayload() mapreduce.Payload {
	return mapreduce.Payload{
		"count": int64(42),
		"word":  "hello",
		"ratio": 0.25,
		"blob":  []byte{1, 2, 3},
		"flag":  true,
		"list":  []int64{7, 8},
	}
}

func TestPayloadFrameRoundTrip(t *testing.T) {
	p := testPayload()
	frame, err := EncodePayload(p)
	if err != nil {
		t.Fatal(err)
	}
	if !isFlatFrame(frame) {
		t.Fatal("default codec should emit flat frames")
	}
	got, err := DecodePayload(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("round trip mismatch:\n got %#v\nwant %#v", got, p)
	}
}

func TestPayloadFrameGobCompat(t *testing.T) {
	// A legacy sld1 frame (whole-payload gob) must decode through the
	// same entry point.
	p := testPayload()
	prev := SetPayloadCodec(CodecGob)
	defer SetPayloadCodec(prev)
	frame, err := EncodePayload(p)
	if err != nil {
		t.Fatal(err)
	}
	if isFlatFrame(frame) {
		t.Fatal("CodecGob emitted a flat frame")
	}
	got, err := DecodePayload(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("gob frame mismatch:\n got %#v\nwant %#v", got, p)
	}
}

func TestPayloadViewZeroCopy(t *testing.T) {
	p := mapreduce.Payload{"k": "value", "n": int64(5)}
	frame, err := EncodePayload(p)
	if err != nil {
		t.Fatal(err)
	}
	view, err := DecodePayloadView(frame)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := view.Get("k"); !ok || v != "value" {
		t.Fatalf("view Get(k) = %v,%v", v, ok)
	}
	if view.Len() != 2 {
		t.Fatalf("view len %d", view.Len())
	}
}

func TestPayloadSetFrameRoundTrip(t *testing.T) {
	set := []mapreduce.Payload{
		{"a": int64(1)},
		nil,
		{"b": "two", "c": 2.5},
	}
	frame, err := EncodePayloadSet(set)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePayloadSet(frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(set) {
		t.Fatalf("set len %d, want %d", len(got), len(set))
	}
	for i := range set {
		if len(set[i]) == 0 {
			if len(got[i]) != 0 {
				t.Fatalf("payload %d: got %#v, want empty", i, got[i])
			}
			continue
		}
		if !reflect.DeepEqual(got[i], set[i]) {
			t.Fatalf("payload %d mismatch: %#v vs %#v", i, got[i], set[i])
		}
	}

	// Legacy gob-framed sets decode too.
	legacy, err := Encode(set)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := DecodePayloadSet(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != len(set) {
		t.Fatalf("legacy set len %d, want %d", len(got2), len(set))
	}
}

func TestSplitFrameRoundTrip(t *testing.T) {
	s := mapreduce.Split{
		ID:      "split-007",
		Records: []any{"line one", "line two", int64(9), []byte{4, 5}},
	}
	frame, err := EncodeSplit(s)
	if err != nil {
		t.Fatal(err)
	}
	if !isFlatFrame(frame) {
		t.Fatal("scalar-record split should frame flat")
	}
	got, err := DecodeSplit(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("split mismatch:\n got %#v\nwant %#v", got, s)
	}

	// Zero-copy decode agrees; its strings alias the frame.
	zc, err := DecodeSplitZeroCopy(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(zc, s) {
		t.Fatalf("zero-copy split mismatch: %#v", zc)
	}
}

type fancyRecord struct {
	A int64
	B string
}

func TestSplitFrameGobFallback(t *testing.T) {
	RegisterType(fancyRecord{})
	s := mapreduce.Split{
		ID:      "structured",
		Records: []any{fancyRecord{A: 1, B: "x"}, fancyRecord{A: 2, B: "y"}},
	}
	frame, err := EncodeSplit(s)
	if err != nil {
		t.Fatal(err)
	}
	if isFlatFrame(frame) {
		t.Fatal("struct-record split should fall back to gob framing")
	}
	got, err := DecodeSplit(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("fallback split mismatch:\n got %#v\nwant %#v", got, s)
	}
}

func TestSplitFrameLegacyGob(t *testing.T) {
	// A split framed wholesale as gob (what a pre-flat worker sends) must
	// decode through both entry points.
	s := mapreduce.Split{ID: "old", Records: []any{"legacy line"}}
	frame, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSplit(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("legacy split mismatch: %#v", got)
	}
	got2, err := DecodeSplitZeroCopy(frame)
	if err != nil || !reflect.DeepEqual(got2, s) {
		t.Fatalf("legacy split (zero-copy path): %#v %v", got2, err)
	}
}

func TestFlatFrameCorruption(t *testing.T) {
	frame, err := EncodePayload(testPayload())
	if err != nil {
		t.Fatal(err)
	}
	// Flip a body byte: checksum must catch it.
	bad := append([]byte(nil), frame...)
	bad[len(bad)-1] ^= 0xFF
	if _, err := DecodePayload(bad); err == nil {
		t.Fatal("corrupt flat frame accepted")
	}
	// Truncations must fail cleanly.
	for _, cut := range []int{0, 3, flatHeaderLen - 1, flatHeaderLen, len(frame) - 1} {
		if cut >= len(frame) {
			continue
		}
		if _, err := DecodePayload(frame[:cut]); err == nil {
			t.Fatalf("truncated frame at %d accepted", cut)
		}
	}
	// Wrong kind byte is rejected.
	wrongKind := append([]byte(nil), frame...)
	wrongKind[4] = kindSplit
	if _, err := DecodePayload(wrongKind); err == nil {
		t.Fatal("wrong-kind frame accepted")
	}
}

func TestAppendPayloadSteadyStateAllocs(t *testing.T) {
	p := testPayload()
	delete(p, "list") // keep to native scalars for the alloc bound
	buf := make([]byte, 0, 4096)
	out, err := AppendPayload(buf, p)
	if err != nil {
		t.Fatal(err)
	}
	buf = out[:0]
	allocs := testing.AllocsPerRun(100, func() {
		out, err := AppendPayload(buf, p)
		if err != nil {
			t.Fatal(err)
		}
		buf = out[:0]
	})
	if allocs > 2 {
		t.Fatalf("AppendPayload allocates %.1f/op at steady state, want ≤ 2", allocs)
	}
}

func TestSplitFrameIDEdgeCases(t *testing.T) {
	for _, s := range []mapreduce.Split{
		{ID: "", Records: []any{"r"}},
		{ID: "only-id", Records: nil},
		{ID: "empty-records", Records: []any{}},
	} {
		frame, err := EncodeSplit(s)
		if err != nil {
			t.Fatalf("%q: %v", s.ID, err)
		}
		got, err := DecodeSplit(frame)
		if err != nil {
			t.Fatalf("%q: %v", s.ID, err)
		}
		if got.ID != s.ID || len(got.Records) != len(s.Records) {
			t.Fatalf("%q: got %#v", s.ID, got)
		}
	}
}
