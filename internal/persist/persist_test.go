package persist

import (
	"errors"
	"io/fs"
	"testing"
)

type testValue struct {
	Name  string
	Count int64
	Inner map[string]any
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	v := testValue{
		Name:  "x",
		Count: 7,
		Inner: map[string]any{"a": int64(1), "b": "s", "c": []float64{1, 2}},
	}
	frame, err := Encode(v)
	if err != nil {
		t.Fatal(err)
	}
	var out testValue
	if err := Decode(frame, &out); err != nil {
		t.Fatal(err)
	}
	if out.Name != "x" || out.Count != 7 || out.Inner["a"].(int64) != 1 {
		t.Fatalf("out = %+v", out)
	}
	if out.Inner["c"].([]float64)[1] != 2 {
		t.Fatalf("nested slice lost: %+v", out.Inner)
	}
}

func TestDecodeCorruption(t *testing.T) {
	frame, err := Encode(testValue{Name: "x"})
	if err != nil {
		t.Fatal(err)
	}
	var out testValue

	short := frame[:8]
	if err := Decode(short, &out); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short frame: err = %v", err)
	}

	badMagic := append([]byte{}, frame...)
	badMagic[0] = 'X'
	if err := Decode(badMagic, &out); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: err = %v", err)
	}

	flipped := append([]byte{}, frame...)
	flipped[len(flipped)-1] ^= 0xff
	if err := Decode(flipped, &out); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped byte: err = %v", err)
	}

	truncated := frame[:len(frame)-3]
	if err := Decode(truncated, &out); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated: err = %v", err)
	}
}

type custom struct{ V int }

func TestRegisterType(t *testing.T) {
	RegisterType(&custom{})
	frame, err := Encode(map[string]any{"k": &custom{V: 3}})
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := Decode(frame, &out); err != nil {
		t.Fatal(err)
	}
	if out["k"].(*custom).V != 3 {
		t.Fatalf("out = %+v", out)
	}
}

func TestFileStoreSaveLoad(t *testing.T) {
	store, err := NewFileStore(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save("obj/one", testValue{Name: "a", Count: 1}); err != nil {
		t.Fatal(err)
	}
	var out testValue
	if err := store.Load("obj/one", &out); err != nil {
		t.Fatal(err)
	}
	if out.Name != "a" || out.Count != 1 {
		t.Fatalf("out = %+v", out)
	}
	names, err := store.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "obj_one" {
		t.Fatalf("names = %v", names)
	}
}

func TestFileStoreMissing(t *testing.T) {
	store, err := NewFileStore(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	var out testValue
	if err := store.Load("nope", &out); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("err = %v", err)
	}
}

func TestFileStoreReplicaFallback(t *testing.T) {
	store, err := NewFileStore(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save("k", testValue{Name: "v"}); err != nil {
		t.Fatal(err)
	}
	// Corrupt replica 0: the load must fall back to replica 1.
	if err := store.CorruptReplica("k", 0); err != nil {
		t.Fatal(err)
	}
	var out testValue
	if err := store.Load("k", &out); err != nil {
		t.Fatalf("load after single corruption: %v", err)
	}
	if out.Name != "v" {
		t.Fatalf("out = %+v", out)
	}
	// Drop replica 0 entirely: still loadable.
	if err := store.DropReplica("k", 0); err != nil {
		t.Fatal(err)
	}
	if err := store.Load("k", &out); err != nil {
		t.Fatalf("load after drop: %v", err)
	}
}

func TestFileStoreAllReplicasCorrupt(t *testing.T) {
	store, err := NewFileStore(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save("k", testValue{Name: "v"}); err != nil {
		t.Fatal(err)
	}
	if err := store.CorruptReplica("k", 0); err != nil {
		t.Fatal(err)
	}
	if err := store.CorruptReplica("k", 1); err != nil {
		t.Fatal(err)
	}
	var out testValue
	if err := store.Load("k", &out); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestFileStoreDelete(t *testing.T) {
	store, err := NewFileStore(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save("k", testValue{}); err != nil {
		t.Fatal(err)
	}
	if err := store.Delete("k"); err != nil {
		t.Fatal(err)
	}
	var out testValue
	if err := store.Load("k", &out); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("err = %v", err)
	}
	if err := store.Delete("k"); err != nil {
		t.Fatalf("double delete: %v", err)
	}
}

func TestFileStoreOverwrite(t *testing.T) {
	store, err := NewFileStore(t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Save("k", testValue{Count: 1}); err != nil {
		t.Fatal(err)
	}
	if err := store.Save("k", testValue{Count: 2}); err != nil {
		t.Fatal(err)
	}
	var out testValue
	if err := store.Load("k", &out); err != nil {
		t.Fatal(err)
	}
	if out.Count != 2 {
		t.Fatalf("count = %d, want latest write", out.Count)
	}
}
