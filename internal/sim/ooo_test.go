package sim

import (
	"reflect"
	"strings"
	"testing"

	"slider/internal/core"
)

// TestGenerateUnchangedByOutOfOrderOps pins Generate's output: adding
// the out-of-order generator must not perturb the existing seed matrix
// (replay lines from old CI logs stay valid), and Generate must never
// emit the new op kinds.
func TestGenerateUnchangedByOutOfOrderOps(t *testing.T) {
	for _, kind := range Kinds() {
		tr := Generate(kind, 42, 200)
		for i, op := range tr.Ops {
			switch op.Kind {
			case OpLateAppend, OpBulkEvict, OpBulkInsert:
				t.Fatalf("%v: Generate emitted out-of-order op %v at step %d", kind, op.Kind, i)
			}
			if op.Pos != 0 {
				t.Fatalf("%v: Generate set Pos=%d on %v at step %d", kind, op.Pos, op.Kind, i)
			}
		}
		if tr.OutOfOrder {
			t.Fatalf("%v: Generate marked its trace out-of-order", kind)
		}
	}
}

func TestGenerateOutOfOrderIsDeterministic(t *testing.T) {
	for _, kind := range Kinds() {
		a := GenerateOutOfOrder(kind, 42, 200)
		b := GenerateOutOfOrder(kind, 42, 200)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%v: GenerateOutOfOrder is not deterministic", kind)
		}
		if !a.OutOfOrder {
			t.Fatalf("%v: out-of-order trace not marked", kind)
		}
		c := GenerateOutOfOrder(kind, 43, 200)
		if reflect.DeepEqual(a.Ops, c.Ops) && a.Initial == c.Initial {
			t.Fatalf("%v: different seeds produced identical traces", kind)
		}
		if !reflect.DeepEqual(ReplayOutOfOrder(kind, 42, 200), a) {
			t.Fatalf("%v: ReplayOutOfOrder did not regenerate the trace", kind)
		}
	}
	line := ReplayLine(GenerateOutOfOrder(FingerTree, 42, 200))
	if !strings.Contains(line, "ReplayOutOfOrder") {
		t.Fatalf("replay line names the wrong generator: %s", line)
	}
}

// TestGenerateOutOfOrderOpsAreLegal replays the generator's live-bucket
// bookkeeping: late appends stay within the simLateness watermark
// budget, bulk evictions never drain the window, bulk insertions
// respect the cap — and the finger-tree kind actually gets all three.
func TestGenerateOutOfOrderOpsAreLegal(t *testing.T) {
	tr := GenerateOutOfOrder(FingerTree, 7, 500)
	live := tr.Initial
	var lates, evicts, inserts int
	for i, op := range tr.Ops {
		switch op.Kind {
		case OpSlide:
			if op.Drop != op.Add || op.Drop < 0 {
				t.Fatalf("op %d: illegal fixed-width slide %+v", i, op)
			}
		case OpLateAppend:
			lates++
			if op.Pos < 0 || op.Pos > simLateness || op.Pos > live {
				t.Fatalf("op %d: lateness %d out of range at live=%d", i, op.Pos, live)
			}
			live++
		case OpBulkEvict:
			evicts++
			if op.Drop < 1 || op.Drop > live-1 {
				t.Fatalf("op %d: bulk evict %d at live=%d", i, op.Drop, live)
			}
			live -= op.Drop
		case OpBulkInsert:
			inserts++
			if op.Add < 1 || live+op.Add > maxWindow {
				t.Fatalf("op %d: bulk insert %d at live=%d", i, op.Add, live)
			}
			live += op.Add
		}
		if live < 1 {
			t.Fatalf("op %d: window drained to %d buckets", i, live)
		}
	}
	if lates == 0 || evicts == 0 || inserts == 0 {
		t.Fatalf("out-of-order trace missing op coverage: %d late, %d evict, %d insert", lates, evicts, inserts)
	}
	// Non-out-of-order kinds degrade the ooo draws to plain slides.
	for _, op := range GenerateOutOfOrder(Daba, 7, 500).Ops {
		switch op.Kind {
		case OpLateAppend, OpBulkEvict, OpBulkInsert:
			t.Fatalf("Daba out-of-order trace emitted %v", op.Kind)
		}
	}
}

// TestOutOfOrderTreeSeedMatrix is the tentpole check at the tree layer:
// out-of-order traces over the finger tree, replicas at parallelism
// 1/4/8 compared after every step against each other and the
// non-commutative left-fold oracle, with the no-log-factor bulk bound
// c·(K + log w) asserted per bulk op and checkpoint round-trips
// enforced.
func TestOutOfOrderTreeSeedMatrix(t *testing.T) {
	steps := 250
	if testing.Short() {
		steps = 60
	}
	for _, seed := range simSeeds {
		if err := Run(GenerateOutOfOrder(FingerTree, seed, steps), Options{}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestOutOfOrderRuntimeSeedMatrix drives the same grammar through the
// full sliderrt runtime at parallelism 1/4/8: watermark-routed
// AdvanceLate calls, bulk Advance evictions and insertions against the
// variable-width bucket ledger, the from-scratch MapReduce oracle after
// every run, and checkpoint round-trips through the real persist codec.
func TestOutOfOrderRuntimeSeedMatrix(t *testing.T) {
	steps := 50
	if testing.Short() {
		steps = 20
	}
	for _, seed := range simSeeds {
		tr := GenerateOutOfOrder(FingerTree, seed, steps)
		if err := Run(tr, Options{Layer: LayerRuntime, Pars: []int{1, 4, 8}}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestInjectedBugBulkEvictOffByOne is the harness acceptance check for
// the out-of-order grammar: inject a known bug — BulkEvict dropping
// k−1 buckets instead of k via the BuggifyFingerBulkEvictOffByOne fault
// point — and demonstrate that
//
//  1. the harness catches it within 1000 trace steps,
//  2. the failing trace shrinks to a reproducer of ≤ 20 steps,
//  3. the reproducer prints as a copy-pasteable Go test, and
//  4. reverting the injection makes the same trace pass.
func TestInjectedBugBulkEvictOffByOne(t *testing.T) {
	buggy := Options{Buggify: core.BuggifyFingerBulkEvictOffByOne}

	var failing Trace
	var firstErr error
	for _, seed := range []uint64{1, 2, 3, 4, 5, 6, 7, 8} {
		tr := GenerateOutOfOrder(FingerTree, seed, 1000)
		if err := Run(tr, buggy); err != nil {
			failing, firstErr = tr, err
			break
		}
	}
	if firstErr == nil {
		t.Fatal("injected bug (bulk evict off by one) was not caught within 1000 steps on any seed")
	}
	ce, ok := firstErr.(*CheckError)
	if !ok {
		t.Fatalf("expected *CheckError, got %T: %v", firstErr, firstErr)
	}
	if ce.Step >= 1000 {
		t.Fatalf("bug caught only at step %d", ce.Step)
	}
	t.Logf("caught at step %d: %s check\n%s", ce.Step, ce.Check, ReplayLine(failing))

	min := Shrink(failing, buggy, 0)
	if err := Run(min, buggy); err == nil {
		t.Fatal("shrunken trace no longer fails")
	}
	if len(min.Ops) > 20 {
		t.Fatalf("shrunken reproducer has %d steps, want ≤ 20", len(min.Ops))
	}
	t.Logf("shrunk %d ops → %d ops", len(failing.Ops), len(min.Ops))

	repro := FormatRepro("FingerTreeBulkEvictOffByOneRepro", min, buggy)
	for _, want := range []string{"func Test", "sim.Trace{", "sim.Run(tr, opt)"} {
		if !strings.Contains(repro, want) {
			t.Fatalf("repro is not a pasteable Go test (missing %q):\n%s", want, repro)
		}
	}
	t.Logf("minimal reproducer:\n%s", repro)

	// Revert the injection: the exact same minimal trace must pass on
	// the unmodified tree.
	if err := Run(min, Options{}); err != nil {
		t.Fatalf("trace fails even without the injected bug — harness found a real bug?\n%v", err)
	}
}
