package sim

import (
	"fmt"
	"strings"
)

// FormatRepro renders a shrunken trace as a copy-pasteable Go test. Paste
// the output into any _test.go file under internal/sim (or adjust the
// import path) and the failure reproduces without the generator: the
// trace is spelled out literally, so it survives generator changes.
func FormatRepro(name string, tr Trace, opt Options) string {
	var b strings.Builder
	fmt.Fprintf(&b, "func Test%s(t *testing.T) {\n", name)
	fmt.Fprintf(&b, "\ttr := sim.Trace{\n")
	fmt.Fprintf(&b, "\t\tKind:    sim.%s,\n", tr.Kind)
	fmt.Fprintf(&b, "\t\tSeed:    %#x,\n", tr.Seed)
	fmt.Fprintf(&b, "\t\tInitial: %d,\n", tr.Initial)
	if len(tr.Ops) == 0 {
		fmt.Fprintf(&b, "\t\tOps:     nil,\n")
	} else {
		fmt.Fprintf(&b, "\t\tOps: []sim.Op{\n")
		for _, op := range tr.Ops {
			fmt.Fprintf(&b, "\t\t\t%s,\n", opLiteral(op))
		}
		fmt.Fprintf(&b, "\t\t},\n")
	}
	fmt.Fprintf(&b, "\t}\n")
	fmt.Fprintf(&b, "\topt := %s\n", optionsLiteral(opt))
	fmt.Fprintf(&b, "\tif err := sim.Run(tr, opt); err != nil {\n")
	fmt.Fprintf(&b, "\t\tt.Fatal(err)\n")
	fmt.Fprintf(&b, "\t}\n")
	fmt.Fprintf(&b, "}\n")
	return b.String()
}

// optionsLiteral renders the options as a Go composite literal. Buggify
// masks are named in core; anything set is rendered numerically with a
// comment since the repro should normally run with injection off.
func optionsLiteral(opt Options) string {
	var fields []string
	if opt.Layer != LayerTree {
		fields = append(fields, fmt.Sprintf("Layer: sim.%s", opt.Layer))
	}
	if len(opt.Pars) > 0 {
		parts := make([]string, len(opt.Pars))
		for i, p := range opt.Pars {
			parts[i] = fmt.Sprintf("%d", p)
		}
		fields = append(fields, fmt.Sprintf("Pars: []int{%s}", strings.Join(parts, ", ")))
	}
	if opt.Buggify != 0 {
		fields = append(fields, fmt.Sprintf("Buggify: %d /* core.Buggify mask used when the failure was found */", opt.Buggify))
	}
	if opt.NoBounds {
		fields = append(fields, "NoBounds: true")
	}
	if opt.DistFaults {
		fields = append(fields, "DistFaults: true")
	}
	if len(fields) == 0 {
		return "sim.Options{}"
	}
	return "sim.Options{" + strings.Join(fields, ", ") + "}"
}
