package sim

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"

	"slider/internal/mapreduce"
	"slider/internal/memo"
	"slider/internal/sliderrt"
)

// runtimeBucketSplits is w, the splits per bucket used by fixed-width
// runtime traces (trace slides count buckets; the runtime sees k·w
// splits).
const runtimeBucketSplits = 2

// simJob is the wordcount job the runtime layer drives: associative,
// commutative, and cheap, with a small vocabulary so keys collide across
// splits and every merge exercises the combiner.
func simJob() *mapreduce.Job {
	return &mapreduce.Job{
		Name:       "sim-wordcount",
		Partitions: 3,
		Map: func(rec mapreduce.Record, emit mapreduce.Emit) error {
			line, ok := rec.(string)
			if !ok {
				return fmt.Errorf("sim: record %T is not a string", rec)
			}
			for _, w := range strings.Fields(line) {
				emit(w, int64(1))
			}
			return nil
		},
		Combine: func(_ string, values []mapreduce.Value) mapreduce.Value {
			var sum int64
			for _, v := range values {
				sum += v.(int64)
			}
			return sum
		},
		Reduce: func(_ string, values []mapreduce.Value) mapreduce.Value {
			var sum int64
			for _, v := range values {
				sum += v.(int64)
			}
			return sum
		},
		Commutative: true,
	}
}

// mix64 is the split-content generator's avalanche hash.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// genSplit deterministically derives split #id's content from the trace
// seed: three lines of four words over an eight-word vocabulary.
func genSplit(seed, id uint64) mapreduce.Split {
	h := mix64(seed ^ mix64(id+1))
	records := make([]mapreduce.Record, 3)
	for r := range records {
		var sb strings.Builder
		for w := 0; w < 4; w++ {
			h = mix64(h)
			sb.WriteString("w")
			sb.WriteString(strconv.Itoa(int(h % 8)))
			sb.WriteByte(' ')
		}
		records[r] = sb.String()
	}
	return mapreduce.Split{ID: "sim-" + strconv.FormatUint(id, 10), Records: records}
}

// rtReplica is one runtime instance of the lockstep ensemble.
type rtReplica struct {
	rt    *sliderrt.Runtime
	cfg   sliderrt.Config
	gcAll *bool // toggled by OpGCPressure, read by the GC policy
}

// runtimeConfig maps a trace kind onto the equivalent runtime
// configuration at the given parallelism.
func runtimeConfig(tr Trace, par int, gcAll *bool) (sliderrt.Config, error) {
	cfg := sliderrt.Config{
		Parallelism: par,
		Seed:        tr.Seed | 1,
		Memo:        memoConfig(),
		GCPolicy: func(string, uint64, uint64, int64) bool {
			return *gcAll
		},
	}
	switch tr.Kind {
	case Folding:
		cfg.Mode = sliderrt.Variable
	case Randomized:
		cfg.Mode = sliderrt.Variable
		cfg.Randomized = true
	case Rotating, RotatingSplit:
		cfg.Mode = sliderrt.Fixed
		// Pin the rotating tree explicitly: backend auto-selection would
		// otherwise route a plain Fixed window onto the DABA queue and
		// these kinds would stop covering the rotating structure.
		cfg.Backend = sliderrt.BackendRotating
		cfg.BucketSplits = runtimeBucketSplits
		cfg.WindowBuckets = tr.Initial
		cfg.SplitProcessing = tr.Kind == RotatingSplit
	case Daba:
		cfg.Mode = sliderrt.Fixed
		cfg.Backend = sliderrt.BackendDaba
		cfg.BucketSplits = runtimeBucketSplits
		cfg.WindowBuckets = tr.Initial
	case FingerTree:
		cfg.Mode = sliderrt.Fixed
		cfg.BucketSplits = runtimeBucketSplits
		cfg.WindowBuckets = tr.Initial
		// AllowedLateness > 0 routes backend auto-selection onto the
		// finger tree (the sim deliberately leaves Backend at Auto to
		// cover that routing); simLateness matches the trace generator's
		// deepest OpLateAppend.
		cfg.AllowedLateness = simLateness
	case Coalescing, CoalescingSplit:
		cfg.Mode = sliderrt.Append
		cfg.SplitProcessing = tr.Kind == CoalescingSplit
	case Strawman:
		cfg.Mode = sliderrt.Variable
		cfg.Engine = sliderrt.Strawman
	default:
		return cfg, fmt.Errorf("sim: unknown kind %v", tr.Kind)
	}
	return cfg, nil
}

func memoConfig() memo.Config {
	cfg := memo.DefaultConfig()
	cfg.Nodes = simNodes
	return cfg
}

// runRuntime drives the trace through full sliderrt runtimes at each
// parallelism level, checking every run's output against a from-scratch
// MapReduce execution over the live window, cross-replica output and
// work-counter parity, delta-proportional work bounds, and checkpoint
// round-trips through the real persist codec — while memo nodes fail,
// recover, and the GC evicts under pressure.
func runRuntime(tr Trace, opt Options) error {
	job := simJob()
	pars := opt.pars()
	fail := func(step int, check, format string, args ...any) *CheckError {
		return &CheckError{Trace: tr, Step: step, Check: check, Msg: fmt.Sprintf(format, args...)}
	}

	// With DistFaults the map phase runs on a real worker cluster shared
	// by every replica; the trace's worker ops inject faults into it and
	// the pool plus the runtime's degradation ladder must absorb them —
	// the oracle checks below stay exactly as strict.
	var chaos *chaosCluster
	if opt.DistFaults {
		var err error
		chaos, err = newChaosCluster(chaosWorkers)
		if err != nil {
			return fail(-1, "config", "chaos cluster: %v", err)
		}
		defer chaos.Close()
	}

	reps := make([]*rtReplica, len(pars))
	for i, par := range pars {
		gcAll := new(bool)
		cfg, err := runtimeConfig(tr, par, gcAll)
		if err != nil {
			return fail(-1, "config", "%v", err)
		}
		if chaos != nil {
			cfg.MapRunner = chaos.pool
			cfg.Faults = chaos.rec
		}
		rt, err := sliderrt.New(simJob(), cfg)
		if err != nil {
			return fail(-1, "config", "par=%d: %v", par, err)
		}
		reps[i] = &rtReplica{rt: rt, cfg: cfg, gcAll: gcAll}
	}

	// splitWidth converts trace units (buckets for fixed kinds, splits
	// otherwise) into splits.
	splitWidth := 1
	if tr.Kind.fixedWidth() {
		splitWidth = runtimeBucketSplits
	}

	var window []mapreduce.Split
	var nextID uint64
	takeSplits := func(n int) []mapreduce.Split {
		out := make([]mapreduce.Split, n)
		for i := range out {
			out[i] = genSplit(tr.Seed, nextID)
			nextID++
		}
		return out
	}

	initial := takeSplits(tr.Initial * splitWidth)
	window = initial

	// sizes mirrors the finger-tree backend's bucket ledger: splits per
	// live bucket, oldest first. Late buckets are one split wide, so the
	// window's flat split count is not simply buckets·splitWidth for the
	// finger-tree kind.
	var sizes []int
	if tr.Kind == FingerTree {
		sizes = make([]int, tr.Initial)
		for i := range sizes {
			sizes[i] = splitWidth
		}
	}
	// splitsOf sums the flat split width of the first k ledger buckets.
	splitsOf := func(k int) int {
		n := 0
		for _, sz := range sizes[:k] {
			n += sz
		}
		return n
	}
	results := make([]*sliderrt.RunResult, len(reps))
	for i, rep := range reps {
		res, err := rep.rt.Initial(initial)
		if err != nil {
			return fail(-1, "initial", "par=%d: %v", pars[i], err)
		}
		results[i] = res
	}
	if err := checkRuntimeStep(tr, -1, job, pars, results, window); err != nil {
		return err
	}

	for step, op := range tr.Ops {
		switch op.Kind {
		case OpSlide:
			liveUnits := len(window) / splitWidth
			if tr.Kind == FingerTree {
				liveUnits = len(sizes)
			}
			drop, add := clampSlide(tr.Kind, op, liveUnits)
			if drop == 0 && add == 0 {
				continue
			}
			dropSplits, addSplits := drop*splitWidth, add*splitWidth
			if tr.Kind == FingerTree {
				// Ledger buckets vary in width, so the drop is the exact
				// flat width of the k oldest buckets.
				dropSplits = splitsOf(drop)
			}
			adds := takeSplits(addSplits)
			for i, rep := range reps {
				res, err := rep.rt.Advance(dropSplits, adds)
				if err != nil {
					return fail(step, "advance", "par=%d drop=%d add=%d: %v", pars[i], dropSplits, addSplits, err)
				}
				results[i] = res
				*rep.gcAll = false // GC pressure applies to one slide
			}
			window = append(window[dropSplits:], adds...)
			if tr.Kind == FingerTree {
				sizes = append(sizes[:0], sizes[drop:]...)
				for i := 0; i < add; i++ {
					sizes = append(sizes, splitWidth)
				}
			}
			if err := checkRuntimeStep(tr, step, job, pars, results, window); err != nil {
				return err
			}
			if !opt.NoBounds && tr.Kind != Strawman {
				liveAfter := len(window) / splitWidth
				if tr.Kind == FingerTree {
					liveAfter = len(sizes)
				}
				merges := results[0].TreeStats.Merges + results[0].TreeStatsBackground.Merges
				// TreeStats aggregates one contraction tree per reduce
				// partition, so the per-tree bound scales by Partitions.
				limit := int64(job.Partitions) * mergeBound(tr.Kind, drop, add, liveAfter)
				if merges > limit {
					return fail(step, "work-bound",
						"advance drop=%d add=%d window=%d performed %d merges, bound %d",
						drop, add, liveAfter, merges, limit)
				}
			}
		case OpCheckpoint:
			fps := make([]uint64, len(reps))
			for i, rep := range reps {
				before := rep.rt.StateFingerprint()
				var buf bytes.Buffer
				if err := rep.rt.Checkpoint(&buf); err != nil {
					return fail(step, "checkpoint", "par=%d: %v", pars[i], err)
				}
				restored, err := sliderrt.Restore(simJob(), rep.cfg, bytes.NewReader(buf.Bytes()))
				if err != nil {
					return fail(step, "restore", "par=%d: %v", pars[i], err)
				}
				if restored.Live() != rep.rt.Live() || restored.WindowLo() != rep.rt.WindowLo() {
					return fail(step, "restore", "par=%d window bookkeeping: live %d/%d lo %d/%d",
						pars[i], restored.Live(), rep.rt.Live(), restored.WindowLo(), rep.rt.WindowLo())
				}
				// The restored state must be logically identical to what was
				// checkpointed — the codec round trip (flat frames, arena
				// views, materialization) must not perturb a single payload.
				fps[i] = restored.StateFingerprint()
				if fps[i] != before {
					return fail(step, "restore-fingerprint",
						"par=%d restored fingerprint %#x != checkpointed %#x", pars[i], fps[i], before)
				}
				rep.rt = restored // continue from the restored state
			}
			// And identical across parallelism levels: the window state a
			// checkpoint captures may not depend on how many goroutines
			// computed it.
			for i := 1; i < len(fps); i++ {
				if fps[i] != fps[0] {
					return fail(step, "par-fingerprint",
						"par=%d checkpoint fingerprint %#x != par=%d fingerprint %#x",
						pars[i], fps[i], pars[0], fps[0])
				}
			}
		case OpLateAppend:
			if tr.Kind != FingerTree {
				break
			}
			late := clampLateness(op.Pos, len(sizes))
			pos := len(sizes) - late
			adds := takeSplits(1) // one late record: a one-split bucket
			for i, rep := range reps {
				res, err := rep.rt.AdvanceLate(late, adds)
				if err != nil {
					return fail(step, "advance-late", "par=%d lateness=%d: %v", pars[i], late, err)
				}
				results[i] = res
				*rep.gcAll = false
			}
			flat := splitsOf(pos)
			nw := make([]mapreduce.Split, 0, len(window)+1)
			nw = append(nw, window[:flat]...)
			nw = append(nw, adds...)
			nw = append(nw, window[flat:]...)
			window = nw
			sizes = append(sizes, 0)
			copy(sizes[pos+1:], sizes[pos:])
			sizes[pos] = 1
			if err := checkRuntimeStep(tr, step, job, pars, results, window); err != nil {
				return err
			}
			if !opt.NoBounds {
				merges := results[0].TreeStats.Merges + results[0].TreeStatsBackground.Merges
				limit := int64(job.Partitions) * bulkMergeBound(1, len(sizes))
				if merges > limit {
					return fail(step, "bulk-bound",
						"late append at %d buckets performed %d merges, bound %d", len(sizes), merges, limit)
				}
			}
		case OpBulkEvict:
			if tr.Kind != FingerTree {
				break
			}
			k := clampBulkEvict(op.Drop, len(sizes))
			if k == 0 {
				break
			}
			dropSplits := splitsOf(k)
			for i, rep := range reps {
				res, err := rep.rt.Advance(dropSplits, nil)
				if err != nil {
					return fail(step, "bulk-evict", "par=%d k=%d (drop %d splits): %v", pars[i], k, dropSplits, err)
				}
				results[i] = res
				*rep.gcAll = false
			}
			window = window[dropSplits:]
			sizes = append(sizes[:0], sizes[k:]...)
			if err := checkRuntimeStep(tr, step, job, pars, results, window); err != nil {
				return err
			}
			if !opt.NoBounds {
				merges := results[0].TreeStats.Merges + results[0].TreeStatsBackground.Merges
				limit := int64(job.Partitions) * bulkMergeBound(k, len(sizes))
				if merges > limit {
					return fail(step, "bulk-bound",
						"bulk evict k=%d at %d buckets performed %d merges, bound %d", k, len(sizes), merges, limit)
				}
			}
		case OpBulkInsert:
			if tr.Kind != FingerTree {
				break
			}
			k := clampBulkInsert(op.Add, len(sizes))
			if k == 0 {
				break
			}
			adds := takeSplits(k * splitWidth)
			for i, rep := range reps {
				res, err := rep.rt.Advance(0, adds)
				if err != nil {
					return fail(step, "bulk-insert", "par=%d k=%d: %v", pars[i], k, err)
				}
				results[i] = res
				*rep.gcAll = false
			}
			window = append(window, adds...)
			for i := 0; i < k; i++ {
				sizes = append(sizes, splitWidth)
			}
			if err := checkRuntimeStep(tr, step, job, pars, results, window); err != nil {
				return err
			}
			if !opt.NoBounds {
				merges := results[0].TreeStats.Merges + results[0].TreeStatsBackground.Merges
				// K buckets fold K·w split payloads before the O(K + log w)
				// treap build-and-join, so the linear term scales by the
				// bucket width — still no K·log w cross term.
				limit := int64(job.Partitions) * bulkMergeBound(k*splitWidth, len(sizes))
				if merges > limit {
					return fail(step, "bulk-bound",
						"bulk insert k=%d at %d buckets performed %d merges, bound %d", k, len(sizes), merges, limit)
				}
			}
		case OpFailNode:
			for _, rep := range reps {
				rep.rt.Store().FailNode(op.Node)
			}
		case OpRecoverNode:
			for _, rep := range reps {
				rep.rt.Store().RecoverNode(op.Node)
			}
		case OpGCPressure:
			for _, rep := range reps {
				*rep.gcAll = true
			}
		case OpWorkerCrash, OpWorkerRestart, OpWorkerDelay, OpWorkerDrop, OpWorkerCorrupt:
			if chaos != nil {
				if err := chaos.apply(op); err != nil {
					return fail(step, "chaos", "%v: %v", op.Kind, err)
				}
			}
		}
	}
	return nil
}

// checkRuntimeStep verifies one run's results: the output equals a
// from-scratch MapReduce execution over the live window (the paper's
// exact-answer claim), and outputs and contraction work counters agree
// across parallelism levels.
func checkRuntimeStep(tr Trace, step int, job *mapreduce.Job, pars []int, results []*sliderrt.RunResult, window []mapreduce.Split) error {
	want, err := mapreduce.RunScratch(job, window, 0, nil)
	if err != nil {
		return &CheckError{Trace: tr, Step: step, Check: "oracle", Msg: fmt.Sprintf("from-scratch run: %v", err)}
	}
	if msg := diffOutputs(results[0].Output, want); msg != "" {
		return &CheckError{Trace: tr, Step: step, Check: "oracle",
			Msg: fmt.Sprintf("par=%d output diverges from from-scratch oracle: %s", pars[0], msg)}
	}
	for i := 1; i < len(results); i++ {
		if msg := diffOutputs(results[i].Output, results[0].Output); msg != "" {
			return &CheckError{Trace: tr, Step: step, Check: "par-output",
				Msg: fmt.Sprintf("par=%d output != par=%d output: %s", pars[i], pars[0], msg)}
		}
		if results[i].TreeStats != results[0].TreeStats {
			return &CheckError{Trace: tr, Step: step, Check: "par-stats",
				Msg: fmt.Sprintf("par=%d TreeStats %+v != par=%d %+v",
					pars[i], results[i].TreeStats, pars[0], results[0].TreeStats)}
		}
		if results[i].TreeStatsBackground != results[0].TreeStatsBackground {
			return &CheckError{Trace: tr, Step: step, Check: "par-stats",
				Msg: fmt.Sprintf("par=%d TreeStatsBackground %+v != par=%d %+v",
					pars[i], results[i].TreeStatsBackground, pars[0], results[0].TreeStatsBackground)}
		}
	}
	return nil
}

// diffOutputs returns "" when the outputs are identical, else a
// description of the first difference.
func diffOutputs(got, want mapreduce.Output) string {
	if len(got) != len(want) {
		return fmt.Sprintf("%d keys, want %d", len(got), len(want))
	}
	for k, wv := range want {
		gv, ok := got[k]
		if !ok {
			return fmt.Sprintf("missing key %q", k)
		}
		if gv.(int64) != wv.(int64) {
			return fmt.Sprintf("key %q: got %d, want %d", k, gv.(int64), wv.(int64))
		}
	}
	return ""
}
