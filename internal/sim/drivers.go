package sim

import (
	"fmt"

	"slider/internal/core"
)

// pay is the tree-layer payload: the ordered sequence of leaf IDs below a
// node. Merging is concatenation into a fresh slice (pure and alias-free,
// as the parallel engine requires), so the root payload is the exact leaf
// sequence the tree believes is in the window — the strongest possible
// differential signal against the from-scratch oracle.
type pay []uint64

// pmerge concatenates two payloads into a fresh slice.
func pmerge(a, b pay) pay {
	out := make(pay, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

// pfp is an order-sensitive payload fingerprint.
func pfp(p pay) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for _, v := range p {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	return h
}

// singletons wraps ids into one payload each.
func singletons(ids []uint64) []pay {
	out := make([]pay, len(ids))
	for i, id := range ids {
		out[i] = pay{id}
	}
	return out
}

// items wraps ids into identity-carrying leaves.
func items(ids []uint64) []core.Item[pay] {
	out := make([]core.Item[pay], len(ids))
	for i, id := range ids {
		out[i] = core.Item[pay]{ID: id, Payload: pay{id}}
	}
	return out
}

// treeDriver adapts one contraction tree to the harness: a uniform init /
// slide / observe / checkpoint surface. Drivers are pure adapters — all
// window logic lives in the tree under test.
type treeDriver interface {
	// init performs the initial run over the given leaf IDs.
	init(ids []uint64) error
	// slide applies one OpSlide (drop/add semantics per kind).
	slide(drop int, ids []uint64) error
	// root returns the payload the job's final reduce would consume.
	root() (pay, bool)
	// stats returns the tree's cumulative work counters.
	stats() core.Stats
	// fingerprint hashes the materialized structure deterministically.
	fingerprint() uint64
	// checkpoint captures restorable state; restore reinstates it (on a
	// fresh driver, this is the crash-recovery path).
	checkpoint() any
	restore(snap any) error
}

// oooTreeDriver extends treeDriver with the out-of-order operations.
// Only kinds whose structure supports them (the finger tree) implement
// it; the harness skips out-of-order ops for everything else, the same
// way the tree layer skips memo- and worker-layer ops.
type oooTreeDriver interface {
	treeDriver
	// lateInsert lands one new bucket at window position pos (0 =
	// oldest, live = newest).
	lateInsert(pos int, id uint64) error
	// bulkEvict drops the k oldest buckets in one bulk operation.
	bulkEvict(k int) error
	// bulkInsert appends the ids as new buckets in one bulk operation.
	bulkInsert(ids []uint64) error
}

// newTreeDriver builds the driver for a kind at the given intra-tree
// parallelism, with optional fault injection.
func newTreeDriver(kind Kind, par int, bug core.Buggify) treeDriver {
	switch kind {
	case Folding:
		return &foldDriver{par: par}
	case Randomized:
		return &rndDriver{par: par}
	case Rotating, RotatingSplit:
		return &rotDriver{par: par, split: kind == RotatingSplit, bug: bug}
	case Coalescing, CoalescingSplit:
		return &coalDriver{split: kind == CoalescingSplit}
	case Strawman:
		return &strawDriver{par: par}
	case Daba:
		return &dabaDriver{}
	case FingerTree:
		return &fingerDriver{bug: bug}
	default:
		panic(fmt.Sprintf("sim: unknown kind %v", kind))
	}
}

// --- folding -----------------------------------------------------------

type foldDriver struct {
	t   *core.FoldingTree[pay]
	par int
}

func (d *foldDriver) newTree() *core.FoldingTree[pay] {
	return core.NewFolding(pmerge, core.WithParallelism[pay](d.par))
}

func (d *foldDriver) init(ids []uint64) error {
	d.t = d.newTree()
	d.t.Init(singletons(ids))
	return nil
}

func (d *foldDriver) slide(drop int, ids []uint64) error {
	return d.t.Slide(drop, singletons(ids))
}

func (d *foldDriver) root() (pay, bool)   { return d.t.Root() }
func (d *foldDriver) stats() core.Stats   { return d.t.Stats() }
func (d *foldDriver) fingerprint() uint64 { return d.t.FingerprintWith(pfp) }
func (d *foldDriver) checkpoint() any     { return d.t.Payloads() }
func (d *foldDriver) restore(snap any) error {
	// Folding trees restore by re-initializing a fresh tree from the
	// persisted leaf payloads, exactly as sliderrt's Restore does.
	d.t = d.newTree()
	d.t.Init(snap.([]pay))
	return nil
}

// --- randomized folding ------------------------------------------------

// rndSeed is the coin-flip seed every randomized driver uses: it must be
// identical across replicas and restores (in the runtime it is part of
// the checkpointed configuration), including fresh drivers restored from
// a checkpoint without ever seeing init.
const rndSeed = 0xc0ffee

type rndDriver struct {
	t   *core.RandomizedFoldingTree[pay]
	par int
}

func (d *rndDriver) newTree() *core.RandomizedFoldingTree[pay] {
	t := core.NewRandomizedFolding(pmerge, rndSeed)
	t.SetParallelism(d.par)
	return t
}

func (d *rndDriver) init(ids []uint64) error {
	d.t = d.newTree()
	d.t.Init(items(ids))
	return nil
}

func (d *rndDriver) slide(drop int, ids []uint64) error {
	return d.t.Slide(drop, items(ids))
}

func (d *rndDriver) root() (pay, bool)   { return d.t.Root() }
func (d *rndDriver) stats() core.Stats   { return d.t.Stats() }
func (d *rndDriver) fingerprint() uint64 { return d.t.FingerprintWith(pfp) }
func (d *rndDriver) checkpoint() any     { return d.t.Items() }
func (d *rndDriver) restore(snap any) error {
	d.t = d.newTree()
	d.t.Init(snap.([]core.Item[pay]))
	return nil
}

// --- rotating ----------------------------------------------------------

// rotSnap is a rotating checkpoint: buckets in leaf-position order plus
// the rotation cursor.
type rotSnap struct {
	buckets []pay
	victim  int
	n       int
}

type rotDriver struct {
	t     *core.RotatingTree[pay]
	n     int
	par   int
	split bool
	bug   core.Buggify
	// fgRoot is the foreground result of the last split-mode slide; the
	// oracle checks it because that is what the job would have emitted.
	fgRoot pay
	hasFg  bool
}

func (d *rotDriver) newTree(n int) *core.RotatingTree[pay] {
	t := core.NewRotating(pmerge, n)
	t.SetParallelism(d.par)
	t.SetBuggify(d.bug)
	return t
}

func (d *rotDriver) init(ids []uint64) error {
	d.n = len(ids)
	d.t = d.newTree(d.n)
	if err := d.t.Init(singletons(ids)); err != nil {
		return err
	}
	d.hasFg = false
	if d.split {
		return d.t.PrepareBackground()
	}
	return nil
}

func (d *rotDriver) slide(drop int, ids []uint64) error {
	if drop != len(ids) {
		return fmt.Errorf("sim: rotating slide needs drop == add (got %d, %d)", drop, len(ids))
	}
	buckets := singletons(ids)
	if d.split && len(buckets) == 1 {
		// Split processing: the foreground merge against the
		// pre-combined payload I is the run's output; the background
		// step installs the bucket and prepares the next slide.
		fg, err := d.t.RotateForeground(buckets[0])
		if err != nil {
			return err
		}
		d.fgRoot, d.hasFg = fg, true
		return d.t.Background(buckets[0])
	}
	d.hasFg = false
	for _, b := range buckets {
		if err := d.t.Rotate(b); err != nil {
			return err
		}
	}
	if d.split {
		// Multi-bucket slides fall back to in-place rotation; re-prepare
		// so the next single-bucket slide takes the foreground path.
		return d.t.PrepareBackground()
	}
	return nil
}

func (d *rotDriver) root() (pay, bool) {
	if d.hasFg {
		return d.fgRoot, true
	}
	return d.t.Root()
}

func (d *rotDriver) stats() core.Stats   { return d.t.Stats() }
func (d *rotDriver) fingerprint() uint64 { return d.t.FingerprintWith(pfp) }

func (d *rotDriver) checkpoint() any {
	buckets, _ := d.t.BucketPayloads()
	return rotSnap{buckets: buckets, victim: d.t.Victim(), n: d.n}
}

func (d *rotDriver) restore(snap any) error {
	s := snap.(rotSnap)
	if d.t == nil {
		d.n = s.n
		d.t = d.newTree(s.n)
	}
	if err := d.t.RestoreAt(s.buckets, s.victim); err != nil {
		return err
	}
	d.hasFg = false
	if d.split {
		return d.t.PrepareBackground()
	}
	return nil
}

// --- daba --------------------------------------------------------------

// dabaSnap is a DABA checkpoint: the raw bucket payloads in window order
// (the queue keeps no rotation cursor).
type dabaSnap struct {
	buckets []pay
	n       int
}

type dabaDriver struct {
	t *core.DabaLite[pay]
	n int
}

func (d *dabaDriver) init(ids []uint64) error {
	d.n = len(ids)
	d.t = core.NewDaba(pmerge, d.n)
	return d.t.Init(singletons(ids))
}

func (d *dabaDriver) slide(drop int, ids []uint64) error {
	if drop != len(ids) {
		return fmt.Errorf("sim: daba slide needs drop == add (got %d, %d)", drop, len(ids))
	}
	for _, b := range singletons(ids) {
		if err := d.t.Slide(b); err != nil {
			return err
		}
	}
	return nil
}

func (d *dabaDriver) root() (pay, bool)   { return d.t.Root() }
func (d *dabaDriver) stats() core.Stats   { return d.t.Stats() }
func (d *dabaDriver) fingerprint() uint64 { return d.t.FingerprintWith(pfp) }

func (d *dabaDriver) checkpoint() any {
	buckets, _ := d.t.BucketPayloads()
	return dabaSnap{buckets: buckets, n: d.n}
}

func (d *dabaDriver) restore(snap any) error {
	s := snap.(dabaSnap)
	if d.t == nil {
		d.n = s.n
		d.t = core.NewDaba(pmerge, s.n)
	}
	return d.t.Restore(s.buckets)
}

// --- finger tree -------------------------------------------------------

// fingerSnap is a finger-tree checkpoint: the raw bucket payloads in
// window order (the deterministic priority stream rebuilds the same
// shape on restore, so nothing else needs persisting).
type fingerSnap struct {
	buckets []pay
}

type fingerDriver struct {
	t   *core.FingerTree[pay]
	bug core.Buggify
}

func (d *fingerDriver) newTree() *core.FingerTree[pay] {
	t := core.NewFingerTree(pmerge)
	t.SetBuggify(d.bug)
	return t
}

func (d *fingerDriver) init(ids []uint64) error {
	d.t = d.newTree()
	return d.t.Init(singletons(ids))
}

func (d *fingerDriver) slide(drop int, ids []uint64) error {
	if drop != len(ids) {
		return fmt.Errorf("sim: finger slide needs drop == add (got %d, %d)", drop, len(ids))
	}
	for _, b := range singletons(ids) {
		if err := d.t.Slide(b); err != nil {
			return err
		}
	}
	return nil
}

func (d *fingerDriver) lateInsert(pos int, id uint64) error { return d.t.InsertAt(pos, pay{id}) }
func (d *fingerDriver) bulkEvict(k int) error               { return d.t.BulkEvict(k) }
func (d *fingerDriver) bulkInsert(ids []uint64) error       { return d.t.BulkInsert(singletons(ids)) }

func (d *fingerDriver) root() (pay, bool)   { return d.t.Root() }
func (d *fingerDriver) stats() core.Stats   { return d.t.Stats() }
func (d *fingerDriver) fingerprint() uint64 { return d.t.FingerprintWith(pfp) }

func (d *fingerDriver) checkpoint() any {
	buckets, _ := d.t.BucketPayloads()
	return fingerSnap{buckets: buckets}
}

func (d *fingerDriver) restore(snap any) error {
	if d.t == nil {
		d.t = d.newTree()
	}
	return d.t.Restore(snap.(fingerSnap).buckets)
}

// --- coalescing --------------------------------------------------------

// coalSnap is a coalescing checkpoint: the root and any pending payload.
type coalSnap struct {
	root, pending    pay
	hasRoot, hasPend bool
}

type coalDriver struct {
	t     *core.CoalescingTree[pay]
	split bool
	// union is the payload list the final reduce would consume after a
	// split-mode append (previous root + C′, uncombined).
	union []pay
}

func (d *coalDriver) init(ids []uint64) error {
	d.t = core.NewCoalescing(pmerge)
	d.union = nil
	d.slideInto(ids)
	return nil
}

// slideInto folds the new leaves into one C′ client-side (as the runtime
// does for newly mapped splits) and appends it.
func (d *coalDriver) slideInto(ids []uint64) {
	c := make(pay, len(ids))
	copy(c, ids)
	if d.split {
		d.union = d.t.AppendSplit(c)
		d.t.Background()
	} else {
		d.t.Append(c)
		d.union = nil
	}
}

func (d *coalDriver) slide(drop int, ids []uint64) error {
	if drop != 0 {
		return fmt.Errorf("sim: coalescing cannot drop (drop=%d)", drop)
	}
	d.slideInto(ids)
	return nil
}

func (d *coalDriver) root() (pay, bool) {
	if d.union != nil {
		// The reduce consumes the union of the previous root and C′;
		// concatenating reproduces the window sequence.
		var out pay
		for _, p := range d.union {
			out = append(out, p...)
		}
		return out, true
	}
	return d.t.Root()
}

func (d *coalDriver) stats() core.Stats   { return d.t.Stats() }
func (d *coalDriver) fingerprint() uint64 { return d.t.FingerprintWith(pfp) }

func (d *coalDriver) checkpoint() any {
	var s coalSnap
	s.root, s.hasRoot = d.t.Root()
	s.pending, s.hasPend = d.t.PendingPayload()
	return s
}

func (d *coalDriver) restore(snap any) error {
	s := snap.(coalSnap)
	if d.t == nil {
		d.t = core.NewCoalescing(pmerge)
	}
	d.t.Restore(s.root, s.hasRoot, s.pending, s.hasPend)
	d.union = nil
	return nil
}

// --- strawman ----------------------------------------------------------

type strawDriver struct {
	t      *core.StrawmanTree[pay]
	leaves []core.Item[pay]
	par    int
}

func (d *strawDriver) newTree() *core.StrawmanTree[pay] {
	t := core.NewStrawman(pmerge)
	t.SetParallelism(d.par)
	return t
}

func (d *strawDriver) init(ids []uint64) error {
	d.t = d.newTree()
	d.leaves = items(ids)
	d.t.Build(d.leaves)
	return nil
}

func (d *strawDriver) slide(drop int, ids []uint64) error {
	if drop > len(d.leaves) {
		return core.ErrUnderflow
	}
	d.leaves = append(d.leaves[drop:], items(ids)...)
	d.t.Build(d.leaves)
	return nil
}

func (d *strawDriver) root() (pay, bool) {
	p, ok := d.t.Root()
	if !ok && len(d.leaves) == 0 {
		return nil, false
	}
	return p, ok
}

func (d *strawDriver) stats() core.Stats   { return d.t.Stats() }
func (d *strawDriver) fingerprint() uint64 { return d.t.FingerprintWith(pfp) }

func (d *strawDriver) checkpoint() any {
	out := make([]core.Item[pay], len(d.leaves))
	copy(out, d.leaves)
	return out
}

func (d *strawDriver) restore(snap any) error {
	d.t = d.newTree()
	d.leaves = append([]core.Item[pay](nil), snap.([]core.Item[pay])...)
	d.t.Build(d.leaves)
	return nil
}
