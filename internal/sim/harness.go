// Package sim is a seeded, fully deterministic simulation harness for the
// contraction-tree family and the sliderrt runtime (FoundationDB-style
// simulation testing; see DESIGN.md §10).
//
// A Trace is a randomized but reproducible window schedule — appends,
// variable-width slides, wild width fluctuation, checkpoint/restore
// cycles, memo fail/recover events, and GC pressure. Run drives the trace
// through replicas at parallelism 1/4/8 and checks, after every step:
//
//   - the incremental root equals a from-scratch recomputation oracle,
//   - fingerprints and work counters are identical across parallelism
//     levels,
//   - delta-proportional work bounds hold (merge count ≤ c·(delta + log
//     window) with a generous constant),
//   - restored state matches a freshly restored copy (fingerprint and
//     Stats parity).
//
// Failures replay from a single seed (ReplayLine) and shrink to a minimal
// reproducer printed as a copy-pasteable Go test (Shrink, FormatRepro).
package sim

import (
	"fmt"
	"sort"

	"slider/internal/core"
)

// Layer selects which implementation stack a run drives.
type Layer int

// Harness layers.
const (
	// LayerTree drives the core contraction tree directly.
	LayerTree Layer = iota
	// LayerRuntime drives the full sliderrt runtime (map tasks, memo
	// store, checkpoint codec) under the equivalent configuration.
	LayerRuntime
)

// String returns the Go identifier of the layer (used by FormatRepro).
func (l Layer) String() string {
	if l == LayerRuntime {
		return "LayerRuntime"
	}
	return "LayerTree"
}

// Options tunes a run.
type Options struct {
	// Layer selects the tree layer (default) or the full runtime.
	Layer Layer
	// Pars are the parallelism levels run in lockstep and compared;
	// defaults to 1, 4, 8.
	Pars []int
	// Buggify enables fault-injection points in the trees under test
	// (the harness's own acceptance tests only).
	Buggify core.Buggify
	// NoBounds disables the delta-proportional work-bound checks.
	NoBounds bool
	// DistFaults runs the runtime layer's map phase on a real dist
	// worker cluster and lets the trace's worker ops (crash, restart,
	// delay, drop, corrupt — see GenerateChaos) inject faults into it.
	// The oracle checks are unchanged: every slide must still match the
	// from-scratch result, whatever the fault timing.
	DistFaults bool
}

func (o Options) pars() []int {
	if len(o.Pars) > 0 {
		return o.Pars
	}
	return []int{1, 4, 8}
}

// CheckError reports a failed check: which step of which trace, which
// check, and a replay recipe. Step −1 is the initial run.
type CheckError struct {
	Trace Trace
	Step  int
	Check string
	Msg   string
}

func (e *CheckError) Error() string {
	return fmt.Sprintf("sim: %s check failed at step %d of %s: %s\n%s",
		e.Check, e.Step, e.Trace, e.Msg, ReplayLine(e.Trace))
}

// Run executes the trace under the options and returns nil when every
// check passes, or a *CheckError naming the first failure.
func Run(tr Trace, opt Options) error {
	if opt.Layer == LayerRuntime {
		return runRuntime(tr, opt)
	}
	return runTree(tr, opt)
}

// runTree drives the trace through one tree driver per parallelism level.
func runTree(tr Trace, opt Options) error {
	pars := opt.pars()
	drivers := make([]treeDriver, len(pars))
	for i, par := range pars {
		drivers[i] = newTreeDriver(tr.Kind, par, opt.Buggify)
	}
	fail := func(step int, check, format string, args ...any) *CheckError {
		return &CheckError{Trace: tr, Step: step, Check: check, Msg: fmt.Sprintf(format, args...)}
	}

	var window []uint64
	var nextID uint64
	takeIDs := func(n int) []uint64 {
		ids := make([]uint64, n)
		for i := range ids {
			ids[i] = nextID
			nextID++
		}
		return ids
	}

	initIDs := takeIDs(tr.Initial)
	for _, d := range drivers {
		if err := d.init(initIDs); err != nil {
			return fail(-1, "init", "%v", err)
		}
	}
	window = initIDs
	if err := checkStep(tr, -1, drivers, pars, window); err != nil {
		return err
	}

	prevStats := drivers[0].stats()
	for step, op := range tr.Ops {
		switch op.Kind {
		case OpSlide:
			drop, add := clampSlide(tr.Kind, op, len(window))
			ids := takeIDs(add)
			for _, d := range drivers {
				if err := d.slide(drop, ids); err != nil {
					return fail(step, "slide", "drop=%d add=%d: %v", drop, add, err)
				}
			}
			window = append(window[drop:], ids...)
			if err := checkStep(tr, step, drivers, pars, window); err != nil {
				return err
			}
			if !opt.NoBounds {
				cur := drivers[0].stats()
				merges := cur.Merges - prevStats.Merges
				if limit := mergeBound(tr.Kind, drop, add, len(window)); merges > limit {
					return fail(step, "work-bound",
						"slide drop=%d add=%d window=%d performed %d merges, bound %d",
						drop, add, len(window), merges, limit)
				}
			}
		case OpCheckpoint:
			for i, d := range drivers {
				snap := d.checkpoint()
				if err := d.restore(snap); err != nil {
					return fail(step, "restore", "in-place: %v", err)
				}
				fresh := newTreeDriver(tr.Kind, pars[i], opt.Buggify)
				if err := fresh.restore(snap); err != nil {
					return fail(step, "restore", "fresh: %v", err)
				}
				// A restored tree must be indistinguishable from a tree
				// freshly restored from the same checkpoint: same
				// structure, same work counters.
				if got, want := d.fingerprint(), fresh.fingerprint(); got != want {
					return fail(step, "restore-fingerprint",
						"par=%d in-place restore fingerprint %#x != fresh restore %#x", pars[i], got, want)
				}
				if got, want := d.stats(), fresh.stats(); got != want {
					return fail(step, "restore-stats",
						"par=%d in-place restore stats %+v != fresh restore %+v", pars[i], got, want)
				}
			}
			if err := checkStep(tr, step, drivers, pars, window); err != nil {
				return err
			}
		case OpLateAppend:
			if !tr.Kind.outOfOrder() {
				break
			}
			late := clampLateness(op.Pos, len(window))
			pos := len(window) - late
			id := takeIDs(1)[0]
			for _, d := range drivers {
				if err := d.(oooTreeDriver).lateInsert(pos, id); err != nil {
					return fail(step, "late-append", "pos=%d (lateness %d): %v", pos, late, err)
				}
			}
			nw := make([]uint64, 0, len(window)+1)
			nw = append(nw, window[:pos]...)
			nw = append(nw, id)
			nw = append(nw, window[pos:]...)
			window = nw
			if err := checkStep(tr, step, drivers, pars, window); err != nil {
				return err
			}
			if !opt.NoBounds {
				merges := drivers[0].stats().Merges - prevStats.Merges
				if limit := bulkMergeBound(1, len(window)); merges > limit {
					return fail(step, "bulk-bound",
						"late append at window=%d performed %d merges, bound %d", len(window), merges, limit)
				}
			}
		case OpBulkEvict:
			if !tr.Kind.outOfOrder() {
				break
			}
			k := clampBulkEvict(op.Drop, len(window))
			if k == 0 {
				break
			}
			for _, d := range drivers {
				if err := d.(oooTreeDriver).bulkEvict(k); err != nil {
					return fail(step, "bulk-evict", "k=%d: %v", k, err)
				}
			}
			window = window[k:]
			if err := checkStep(tr, step, drivers, pars, window); err != nil {
				return err
			}
			if !opt.NoBounds {
				merges := drivers[0].stats().Merges - prevStats.Merges
				if limit := bulkMergeBound(k, len(window)); merges > limit {
					return fail(step, "bulk-bound",
						"bulk evict k=%d window=%d performed %d merges, bound %d", k, len(window), merges, limit)
				}
			}
		case OpBulkInsert:
			if !tr.Kind.outOfOrder() {
				break
			}
			k := clampBulkInsert(op.Add, len(window))
			if k == 0 {
				break
			}
			ids := takeIDs(k)
			for _, d := range drivers {
				if err := d.(oooTreeDriver).bulkInsert(ids); err != nil {
					return fail(step, "bulk-insert", "k=%d: %v", k, err)
				}
			}
			window = append(window, ids...)
			if err := checkStep(tr, step, drivers, pars, window); err != nil {
				return err
			}
			if !opt.NoBounds {
				merges := drivers[0].stats().Merges - prevStats.Merges
				if limit := bulkMergeBound(k, len(window)); merges > limit {
					return fail(step, "bulk-bound",
						"bulk insert k=%d window=%d performed %d merges, bound %d", k, len(window), merges, limit)
				}
			}
		case OpFailNode, OpRecoverNode, OpGCPressure,
			OpWorkerCrash, OpWorkerRestart, OpWorkerDelay, OpWorkerDrop, OpWorkerCorrupt:
			// Memo- and dist-layer events; nothing to do at the tree layer.
		}
		prevStats = drivers[0].stats()
	}
	return nil
}

// clampSlide normalizes a slide against the current model window so that
// shrunken traces (whose preceding ops were removed) stay legal.
func clampSlide(kind Kind, op Op, live int) (drop, add int) {
	drop, add = op.Drop, op.Add
	switch {
	case kind.fixedWidth():
		if drop > live {
			drop = live
		}
		add = drop // fixed-width: drop == add always
	case kind.appendOnly():
		drop = 0
		if add < 1 {
			add = 1
		}
	default:
		if drop > live {
			drop = live
		}
		if drop < 0 {
			drop = 0
		}
		if add < 0 {
			add = 0
		}
		if drop == 0 && add == 0 {
			add = 1
		}
	}
	return drop, add
}

// clampLateness normalizes a late-append's lateness against the live
// window (shrunken traces may have lost the ops that grew it) and the
// simLateness watermark budget the runtime layer enforces.
func clampLateness(pos, live int) int {
	if pos < 0 {
		pos = 0
	}
	if pos > live {
		pos = live
	}
	if pos > simLateness {
		pos = simLateness
	}
	return pos
}

// clampBulkEvict keeps a bulk eviction inside the live window, always
// leaving at least one bucket; 0 means skip the op.
func clampBulkEvict(k, live int) int {
	if k > live-1 {
		k = live - 1
	}
	if k < 1 {
		return 0
	}
	return k
}

// clampBulkInsert caps a bulk insertion at the window cap; 0 means skip.
func clampBulkInsert(k, live int) int {
	if k < 1 {
		k = 1
	}
	if live+k > maxWindow {
		k = maxWindow - live
	}
	if k < 1 {
		return 0
	}
	return k
}

// checkStep verifies the root against the from-scratch oracle and the
// cross-parallelism parity of fingerprints and work counters.
func checkStep(tr Trace, step int, drivers []treeDriver, pars []int, window []uint64) error {
	if err := checkOracle(tr, step, drivers[0], window); err != nil {
		return err
	}
	// Query every replica's root before comparing counters: some
	// structures do work at query time (DABA combines the front with the
	// back sum), and checkOracle only queried replica 0.
	for i := 1; i < len(drivers); i++ {
		drivers[i].root()
	}
	fp0 := drivers[0].fingerprint()
	st0 := drivers[0].stats()
	for i := 1; i < len(drivers); i++ {
		if fp := drivers[i].fingerprint(); fp != fp0 {
			return &CheckError{Trace: tr, Step: step, Check: "par-fingerprint",
				Msg: fmt.Sprintf("par=%d fingerprint %#x != par=%d fingerprint %#x", pars[i], fp, pars[0], fp0)}
		}
		if st := drivers[i].stats(); st != st0 {
			return &CheckError{Trace: tr, Step: step, Check: "par-stats",
				Msg: fmt.Sprintf("par=%d stats %+v != par=%d stats %+v", pars[i], st, pars[0], st0)}
		}
	}
	return nil
}

// oracleRoot recomputes the window's combined payload from scratch — an
// independent left fold over singleton leaf payloads, sharing no code
// with the incremental trees.
func oracleRoot(window []uint64) pay {
	if len(window) == 0 {
		return nil
	}
	acc := pay{window[0]}
	for _, id := range window[1:] {
		acc = pmerge(acc, pay{id})
	}
	return acc
}

// checkOracle compares the driver's root against the from-scratch oracle.
// Rotating trees reorder bucket age relative to tree position (their
// merge must be commutative), so their root is compared as a multiset;
// every other tree must reproduce the window sequence exactly.
func checkOracle(tr Trace, step int, d treeDriver, window []uint64) error {
	want := oracleRoot(window)
	got, ok := d.root()
	if len(window) == 0 {
		if ok {
			return &CheckError{Trace: tr, Step: step, Check: "oracle",
				Msg: fmt.Sprintf("window is empty but root is %v", got)}
		}
		return nil
	}
	if !ok {
		return &CheckError{Trace: tr, Step: step, Check: "oracle",
			Msg: fmt.Sprintf("window has %d items but tree reports no root", len(window))}
	}
	g, w := got, want
	if tr.Kind.reorders() {
		g = append(pay(nil), got...)
		w = append(pay(nil), want...)
		sort.Slice(g, func(i, j int) bool { return g[i] < g[j] })
		sort.Slice(w, func(i, j int) bool { return w[i] < w[j] })
	}
	if len(g) != len(w) {
		return &CheckError{Trace: tr, Step: step, Check: "oracle",
			Msg: fmt.Sprintf("root has %d items, from-scratch oracle has %d", len(g), len(w))}
	}
	for i := range g {
		if g[i] != w[i] {
			return &CheckError{Trace: tr, Step: step, Check: "oracle",
				Msg: fmt.Sprintf("root diverges from from-scratch oracle at position %d: got %d, want %d", i, g[i], w[i])}
		}
	}
	return nil
}

// mergeBound returns the maximum merges one slide may perform: the
// paper's delta-proportional work claim, c·(delta + log window) with a
// generous constant. The strawman baseline is exempt (its work is
// Θ(window) by design — that is what Figure 8 measures).
func mergeBound(kind Kind, drop, add, liveAfter int) int64 {
	delta := int64(drop + add)
	h := int64(ceilLog2(liveAfter+2) + 2)
	switch kind {
	case Coalescing, CoalescingSplit:
		// One append (plus at most one pending fold) per slide.
		return 8
	case Rotating, RotatingSplit:
		// One root path per rotated bucket, plus split pre-processing.
		return 8 * (delta + 1) * h
	case Daba:
		// Worst-case constant per bucket: ≤5 combines per single-bucket
		// slide plus one root query — no log factor at all.
		return 8 * (delta + 1)
	case FingerTree:
		// One treap root path per in-order evict/insert pair: the driver
		// slides bucket-by-bucket, so delta single O(log w) slides. (The
		// bulk ops get the tighter no-log-factor bulkMergeBound instead.)
		return 8*(delta+1)*h + 32
	case Randomized:
		// Expected O(log) per changed path; generous constant for the
		// probabilistic grouping.
		return 8*(delta+1)*h + 32
	case Folding:
		bound := 8*(delta+1)*h + 16
		if 2*drop >= liveAfter+drop-add {
			// Drastic shrink: the §3.2 fallback may rebuild from
			// scratch, costing O(live).
			bound += int64(2 * (liveAfter + 1))
		}
		return bound
	default: // Strawman
		return 1 << 62
	}
}

// bulkMergeBound is the budget for one out-of-order bulk operation over
// K buckets: c·(K + log w) combines with NO K·log w cross term — K may
// not pick up a log factor, which is the whole point of the FiBA bulk
// algorithms (one split for a bulk evict, one O(K) build plus one join
// for a bulk insert, one root path for a late append).
func bulkMergeBound(k, liveAfter int) int64 {
	return int64(8*k + 32*ceilLog2(liveAfter+2) + 64)
}

// ceilLog2 mirrors core's helper (kept local; core does not export it).
func ceilLog2(n int) int {
	if n <= 1 {
		return 0
	}
	h := 0
	for size := 1; size < n; size <<= 1 {
		h++
	}
	return h
}
