package sim

import (
	"strings"
	"testing"

	"slider/internal/core"
)

// TestInjectedBugIsCaughtAndShrinks is the harness's acceptance test
// (ISSUE acceptance criterion): inject a known bug — drop one pairwise
// merge in rotating split processing via the BuggifyRotatingDropSibling
// fault point — and demonstrate that
//
//  1. the harness catches it within 1000 trace steps,
//  2. the failing trace shrinks to a reproducer of ≤ 20 steps,
//  3. the reproducer prints as a copy-pasteable Go test, and
//  4. reverting the injection makes the same trace pass.
func TestInjectedBugIsCaughtAndShrinks(t *testing.T) {
	buggy := Options{Buggify: core.BuggifyRotatingDropSibling}

	var failing Trace
	var firstErr error
	for _, seed := range []uint64{1, 2, 3, 4, 5, 6, 7, 8} {
		tr := Generate(RotatingSplit, seed, 1000)
		if err := Run(tr, buggy); err != nil {
			failing, firstErr = tr, err
			break
		}
	}
	if firstErr == nil {
		t.Fatal("injected bug (dropped pairwise merge in rotating split processing) was not caught within 1000 steps on any seed")
	}
	ce, ok := firstErr.(*CheckError)
	if !ok {
		t.Fatalf("expected *CheckError, got %T: %v", firstErr, firstErr)
	}
	if ce.Step >= 1000 {
		t.Fatalf("bug caught only at step %d", ce.Step)
	}
	t.Logf("caught at step %d: %s check\n%s", ce.Step, ce.Check, ReplayLine(failing))

	min := Shrink(failing, buggy, 0)
	if err := Run(min, buggy); err == nil {
		t.Fatal("shrunken trace no longer fails")
	}
	if len(min.Ops) > 20 {
		t.Fatalf("shrunken reproducer has %d steps, want ≤ 20", len(min.Ops))
	}
	t.Logf("shrunk %d ops → %d ops", len(failing.Ops), len(min.Ops))

	repro := FormatRepro("RotatingSplitDroppedMergeRepro", min, buggy)
	for _, want := range []string{"func Test", "sim.Trace{", "sim.Run(tr, opt)"} {
		if !strings.Contains(repro, want) {
			t.Fatalf("repro is not a pasteable Go test (missing %q):\n%s", want, repro)
		}
	}
	t.Logf("minimal reproducer:\n%s", repro)

	// Revert the injection: the exact same minimal trace must pass on the
	// unmodified tree.
	if err := Run(min, Options{}); err != nil {
		t.Fatalf("trace fails even without the injected bug — harness found a real bug?\n%v", err)
	}
}

// TestBuggifyOffByDefault: the fault point must be inert unless armed.
func TestBuggifyOffByDefault(t *testing.T) {
	tr := Generate(RotatingSplit, 11, 300)
	if err := Run(tr, Options{}); err != nil {
		t.Fatal(err)
	}
}
