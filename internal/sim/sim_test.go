package sim

import (
	"reflect"
	"testing"
)

// simSeeds is the fixed CI seed matrix. Failures print a replay line;
// paste the seed here (or into Replay) to reproduce locally.
var simSeeds = []uint64{1, 2, 3, 0xdecaf}

func TestGenerateIsDeterministic(t *testing.T) {
	for _, kind := range Kinds() {
		a := Generate(kind, 42, 200)
		b := Generate(kind, 42, 200)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%v: Generate is not deterministic", kind)
		}
		c := Generate(kind, 43, 200)
		if reflect.DeepEqual(a.Ops, c.Ops) && a.Initial == c.Initial {
			t.Fatalf("%v: different seeds produced identical traces", kind)
		}
	}
}

func TestGenerateSlidesAreLegal(t *testing.T) {
	for _, kind := range Kinds() {
		tr := Generate(kind, 7, 500)
		live := tr.Initial
		for i, op := range tr.Ops {
			if op.Kind != OpSlide {
				continue
			}
			switch {
			case kind.fixedWidth():
				if op.Drop != op.Add || op.Drop < 1 {
					t.Fatalf("%v op %d: fixed-width slide %+v", kind, i, op)
				}
			case kind.appendOnly():
				if op.Drop != 0 || op.Add < 1 {
					t.Fatalf("%v op %d: append slide %+v", kind, i, op)
				}
			default:
				if op.Drop > live || (op.Drop == 0 && op.Add == 0) {
					t.Fatalf("%v op %d: illegal slide %+v at live=%d", kind, i, op, live)
				}
			}
			live += op.Add - op.Drop
			// Append-only windows can only grow, so the cap is soft for
			// them (growth throttles to +1 per slide past the cap).
			if !kind.appendOnly() && live > maxWindow+4 {
				t.Fatalf("%v op %d: window %d exceeds cap", kind, i, live)
			}
		}
	}
}

// TestTreeSeedMatrix is the tentpole check at the tree layer: every kind,
// several seeds, a few hundred steps each, replicas at parallelism 1/4/8
// compared after every step against each other and the from-scratch
// oracle, with work bounds and checkpoint round-trips enforced.
func TestTreeSeedMatrix(t *testing.T) {
	steps := 250
	if testing.Short() {
		steps = 60
	}
	for _, kind := range Kinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			for _, seed := range simSeeds {
				if err := Run(Generate(kind, seed, steps), Options{}); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestRuntimeSeedMatrix drives the same trace grammar through the full
// sliderrt runtime: real map tasks, the distributed memo store (with
// node failures and GC pressure), and the gob checkpoint codec.
func TestRuntimeSeedMatrix(t *testing.T) {
	steps := 60
	if testing.Short() {
		steps = 25
	}
	for _, kind := range Kinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			for _, seed := range simSeeds[:2] {
				tr := Generate(kind, seed, steps)
				if err := Run(tr, Options{Layer: LayerRuntime, Pars: []int{1, 4}}); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestShrinkPreservesPassingTrace: shrinking a passing trace is a no-op.
func TestShrinkPreservesPassingTrace(t *testing.T) {
	tr := Generate(Folding, 5, 40)
	got := Shrink(tr, Options{}, 50)
	if !reflect.DeepEqual(got, tr) {
		t.Fatalf("Shrink modified a passing trace")
	}
}

func TestReplayLineRoundTrip(t *testing.T) {
	tr := Generate(Rotating, 9, 30)
	if Replay(Rotating, 9, 30).String() != tr.String() {
		t.Fatal("Replay did not regenerate the trace")
	}
	line := ReplayLine(tr)
	if line == "" {
		t.Fatal("empty replay line")
	}
	t.Logf("%s", line)
}

// TestDabaRuntimeParallelismMatrix pins the new DABA backend against the
// from-scratch MapReduce oracle at parallelism 1, 4, and 8 — including the
// trace's checkpoint/restore round-trips through the real persist codec —
// at a longer horizon than the all-kinds runtime matrix.
func TestDabaRuntimeParallelismMatrix(t *testing.T) {
	steps := 80
	if testing.Short() {
		steps = 30
	}
	for _, seed := range simSeeds {
		tr := Generate(Daba, seed, steps)
		if err := Run(tr, Options{Layer: LayerRuntime, Pars: []int{1, 4, 8}}); err != nil {
			t.Fatal(err)
		}
	}
}
