package sim

import (
	"fmt"
	"strconv"
	"time"

	"slider/internal/dist"
	"slider/internal/metrics"
)

// chaosTaskTimeout and chaosDelay are tuned together: an injected delay
// overshoots the pool's per-task deadline, so one OpWorkerDelay exercises
// the whole slow-worker path — hedge fires first (threshold is far below
// the delay), then the original RPC is abandoned at its deadline and the
// worker breaker trips.
const (
	chaosTaskTimeout = 250 * time.Millisecond
	chaosDelay       = 400 * time.Millisecond
)

// chaosCluster is the distributed execution fabric chaos traces run
// against: real TCP workers plus one pool with aggressive
// fault-tolerance tuning, shared by every replica of the lockstep
// ensemble (RunMap calls are sequential across replicas). A one-shot
// fault armed by a worker op fires on whichever replica's batch reaches
// that worker next — the differential oracle then proves the outcome is
// identical either way, which is the whole point: timing is real, but
// every check is timing-independent.
type chaosCluster struct {
	reg     *dist.Registry
	workers []*dist.Worker
	addrs   []string
	pool    *dist.Pool
	rec     *metrics.FaultRecorder
}

// newChaosCluster starts the workers and the pool.
func newChaosCluster(n int) (*chaosCluster, error) {
	c := &chaosCluster{reg: &dist.Registry{}, rec: &metrics.FaultRecorder{}}
	if err := c.reg.Register("sim-wordcount", simJob); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		w, err := dist.NewWorker("chaos-w"+strconv.Itoa(i), "127.0.0.1:0", c.reg)
		if err != nil {
			c.Close()
			return nil, err
		}
		w.SetObs(dist.NewWorkerObs())
		c.workers = append(c.workers, w)
		c.addrs = append(c.addrs, w.Addr())
	}
	pool, err := dist.NewPoolConfig("sim-wordcount", c.addrs, dist.PoolConfig{
		TaskTimeout:     chaosTaskTimeout,
		BackoffBase:     2 * time.Millisecond,
		BackoffMax:      50 * time.Millisecond,
		BreakerCooldown: 5 * time.Millisecond,
		HealthInterval:  5 * time.Millisecond,
		StatsInterval:   5 * time.Millisecond,
		Hedge:           true,
		HedgeMin:        20 * time.Millisecond,
		Faults:          c.rec,
		Seed:            1, // deterministic backoff jitter
	})
	if err != nil {
		c.Close()
		return nil, err
	}
	c.pool = pool
	return c, nil
}

// worker maps a trace op's Node onto a worker index.
func (c *chaosCluster) worker(node int) *dist.Worker {
	return c.workers[node%len(c.workers)]
}

// apply arms (or performs) one worker fault op.
func (c *chaosCluster) apply(op Op) error {
	switch op.Kind {
	case OpWorkerCrash:
		c.worker(op.Node).Faults().InjectCrash()
	case OpWorkerRestart:
		return c.restart(op.Node)
	case OpWorkerDelay:
		c.worker(op.Node).Faults().InjectDelay(chaosDelay)
	case OpWorkerDrop:
		c.worker(op.Node).Faults().InjectDrop()
	case OpWorkerCorrupt:
		c.worker(op.Node).Faults().InjectCorrupt()
	}
	return nil
}

// restart replaces worker node with a fresh one on the same address, so
// the pool's breaker-gated redial and health probes can revive it. A
// still-running worker is killed first, which also clears any armed
// faults.
func (c *chaosCluster) restart(node int) error {
	i := node % len(c.workers)
	c.workers[i].Kill()
	w, err := dist.NewWorker("chaos-w"+strconv.Itoa(i), c.addrs[i], c.reg)
	if err != nil {
		// The OS may not hand the port back immediately; a failed
		// restart just leaves the worker down, which the trace and the
		// degradation ladder already tolerate.
		return nil
	}
	w.SetObs(dist.NewWorkerObs())
	c.workers[i] = w
	return nil
}

// Close tears the cluster down.
func (c *chaosCluster) Close() {
	if c.pool != nil {
		c.pool.Close()
	}
	for _, w := range c.workers {
		w.Close()
	}
}

// faultLine renders the cluster's fault counters (test logs).
func (c *chaosCluster) faultLine() string {
	return fmt.Sprintf("dist faults: %s", c.rec.Snapshot())
}
