package sim

import (
	"testing"

	"slider/internal/core"
)

// Native go-fuzz targets over the three surfaces the ISSUE names. CI runs
// each with a short -fuzztime as a smoke test; locally:
//
//	go test ./internal/sim -fuzz FuzzRandomizedRebuild -fuzztime 30s
//
// Any crasher is a (seed, steps) pair — the corpus entry itself is the
// replay recipe.

// FuzzRandomizedRebuild drives randomized-tree level rebuilds: the
// skip-list-style tree re-draws levels on every slide, so width
// fluctuation exercises its probabilistic regrouping against the oracle.
func FuzzRandomizedRebuild(f *testing.F) {
	f.Add(uint64(1), uint16(40))
	f.Add(uint64(0xdecaf), uint16(80))
	f.Fuzz(func(t *testing.T, seed uint64, steps uint16) {
		n := int(steps)%80 + 1
		if err := Run(Generate(Randomized, seed, n), Options{Pars: []int{1, 4}}); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzRotatingSplit drives rotating split processing: foreground merges
// against the pre-combined payload, background re-preparation, and
// multi-bucket fallback rotation.
func FuzzRotatingSplit(f *testing.F) {
	f.Add(uint64(2), uint16(40))
	f.Add(uint64(99), uint16(120))
	f.Fuzz(func(t *testing.T, seed uint64, steps uint16) {
		n := int(steps)%120 + 1
		if err := Run(Generate(RotatingSplit, seed, n), Options{Pars: []int{1, 4}}); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzFingerTreeOutOfOrder drives random interleavings of late appends,
// bulk evictions, and bulk insertions through the finger tree against
// the non-commutative left-fold oracle: payload concatenation preserves
// arrival order, so any misplaced late record or off-by-one bulk
// boundary shows up as a sequence mismatch, and every bulk op is held
// to the no-log-factor c·(K + log w) combine budget.
func FuzzFingerTreeOutOfOrder(f *testing.F) {
	f.Add(uint64(1), uint16(40))
	f.Add(uint64(0xdecaf), uint16(90))
	f.Fuzz(func(t *testing.T, seed uint64, steps uint16) {
		n := int(steps)%90 + 1
		if err := Run(GenerateOutOfOrder(FingerTree, seed, n), Options{Pars: []int{1, 4}}); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzKMergeVsPairwise checks MergeOrderedK-style K-way folds against the
// reference pairwise fold: for any payload sequence (including ones long
// enough to trigger leaf batching) the K-way result must be the exact
// pairwise fold, at every parallelism.
func FuzzKMergeVsPairwise(f *testing.F) {
	f.Add(uint64(3), uint16(5))
	f.Add(uint64(7), uint16(200)) // > kMergeLeafWidth: exercises batching
	f.Fuzz(func(t *testing.T, seed uint64, count uint16) {
		n := int(count) % 300
		items := make([]pay, n)
		h := seed
		for i := range items {
			h = h*6364136223846793005 + 1442695040888963407
			items[i] = pay{h}
		}
		kmerge := func(ps []pay) pay {
			var out pay
			for _, p := range ps {
				out = append(out, p...)
			}
			return out
		}
		var want pay
		var wantOK bool
		for i, p := range items {
			if i == 0 {
				want, wantOK = append(pay(nil), p...), true
				continue
			}
			want = pmerge(want, p)
		}
		for _, par := range []int{1, 4, 8} {
			got, ok := core.ReduceOrderedK(par, kmerge, items)
			if ok != wantOK {
				t.Fatalf("par=%d: ok=%v, want %v (n=%d)", par, ok, wantOK, n)
			}
			if !ok {
				continue
			}
			if pfp(got) != pfp(want) || len(got) != len(want) {
				t.Fatalf("par=%d n=%d: K-way fold diverges from pairwise fold", par, n)
			}
		}
	})
}
