package sim

import (
	"reflect"
	"testing"

	"slider/internal/mapreduce"
	"slider/internal/sliderrt"
)

func TestGenerateChaosIsDeterministic(t *testing.T) {
	for _, kind := range Kinds() {
		a := GenerateChaos(kind, 42, 200)
		b := GenerateChaos(kind, 42, 200)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%v: GenerateChaos is not deterministic", kind)
		}
		if !a.Chaos {
			t.Fatalf("%v: chaos trace not marked", kind)
		}
		workerOps := 0
		for _, op := range a.Ops {
			switch op.Kind {
			case OpWorkerCrash, OpWorkerRestart, OpWorkerDelay, OpWorkerDrop, OpWorkerCorrupt:
				workerOps++
				if op.Node < 0 || op.Node >= chaosWorkers {
					t.Fatalf("%v: worker op targets node %d", kind, op.Node)
				}
			}
		}
		if workerOps == 0 {
			t.Fatalf("%v: chaos trace has no worker fault ops", kind)
		}
	}
}

// TestGenerateUnchangedByChaosOps pins Generate's output: adding the
// chaos generator must not perturb the existing seed matrix (replay
// lines from old CI logs stay valid).
func TestGenerateUnchangedByChaosOps(t *testing.T) {
	tr := Generate(Folding, 42, 100)
	for _, op := range tr.Ops {
		switch op.Kind {
		case OpWorkerCrash, OpWorkerRestart, OpWorkerDelay, OpWorkerDrop, OpWorkerCorrupt:
			t.Fatalf("Generate emitted dist fault op %v", op.Kind)
		}
	}
	if tr.Chaos {
		t.Fatal("Generate marked its trace as chaos")
	}
}

// TestChaosSeedMatrix is the acceptance check for the fault-tolerance
// layer: every trace kind, driven through the full runtime with its map
// phase on a real dist worker cluster, while the trace crashes and
// restarts workers, delays, drops, and corrupts responses, and fails
// memo replica sets — and every slide must still match the from-scratch
// differential oracle at parallelism 1, 4, and 8, with no slide ever
// returning an error (the degradation ladder absorbs everything).
func TestChaosSeedMatrix(t *testing.T) {
	steps := 35
	if testing.Short() {
		steps = 12
	}
	for _, kind := range Kinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			for _, seed := range simSeeds[:2] {
				tr := GenerateChaos(kind, seed, steps)
				opts := Options{Layer: LayerRuntime, Pars: []int{1, 4, 8}, DistFaults: true}
				if err := Run(tr, opts); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestChaosClusterCountsFaults drives the runtime over the chaos
// cluster with faults armed by hand and checks the accounting: every
// injected fault class shows up in the shared FaultRecorder, and the
// window result still matches the from-scratch oracle.
func TestChaosClusterCountsFaults(t *testing.T) {
	chaos, err := newChaosCluster(chaosWorkers)
	if err != nil {
		t.Fatal(err)
	}
	defer chaos.Close()

	gcAll := new(bool)
	cfg, err := runtimeConfig(Trace{Kind: Folding, Seed: 7, Initial: 6}, 4, gcAll)
	if err != nil {
		t.Fatal(err)
	}
	cfg.MapRunner = chaos.pool
	cfg.Faults = chaos.rec
	rt, err := sliderrt.New(simJob(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	var window []mapreduce.Split
	var nextID uint64
	take := func(n int) []mapreduce.Split {
		out := make([]mapreduce.Split, n)
		for i := range out {
			out[i] = genSplit(7, nextID)
			nextID++
		}
		return out
	}
	window = take(6)
	if _, err := rt.Initial(window); err != nil {
		t.Fatal(err)
	}

	advance := func() {
		t.Helper()
		adds := take(2)
		res, err := rt.Advance(2, adds)
		if err != nil {
			t.Fatalf("advance: %v", err)
		}
		window = append(window[2:], adds...)
		want, err := mapreduce.RunScratch(simJob(), window, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if msg := diffOutputs(res.Output, want); msg != "" {
			t.Fatalf("output diverges from oracle: %s", msg)
		}
	}

	for i := 0; i < chaosWorkers; i++ {
		chaos.worker(i).Faults().InjectDrop()
	}
	advance()
	for i := 0; i < chaosWorkers; i++ {
		chaos.worker(i).Faults().InjectCorrupt()
	}
	advance()
	// Arm every worker: round-robin assignment means a single armed
	// worker may simply never receive a task in a two-split batch.
	for i := 0; i < chaosWorkers; i++ {
		chaos.worker(i).Faults().InjectDelay(chaosDelay)
	}
	advance()

	st := chaos.rec.Snapshot()
	t.Logf("%s", chaos.faultLine())
	if st.Retries == 0 {
		t.Error("dropped responses caused no retries")
	}
	if st.CorruptFrames == 0 {
		t.Error("corrupted responses were not detected")
	}
	if st.HedgesLaunched == 0 && st.DeadlinesExpired == 0 {
		t.Error("delayed worker triggered neither a hedge nor a deadline")
	}
}

// TestChaosOpsIgnoredWithoutDistFaults: the same chaos trace must be
// runnable at the runtime layer without a worker cluster (worker ops are
// no-ops), which keeps shrunken reproducers portable.
func TestChaosOpsIgnoredWithoutDistFaults(t *testing.T) {
	tr := GenerateChaos(Folding, 3, 25)
	if err := Run(tr, Options{Layer: LayerRuntime, Pars: []int{1}}); err != nil {
		t.Fatal(err)
	}
	if err := Run(tr, Options{}); err != nil { // tree layer too
		t.Fatal(err)
	}
}
