package sim

import (
	"fmt"
	"math/rand"
	"strings"
)

// Kind selects the contraction structure a trace drives. Tree-layer runs
// drive the core tree directly; runtime-layer runs map the same kind onto
// the equivalent sliderrt configuration (mode, engine, split processing).
type Kind int

// Trace kinds, one per contraction tree (split-processing variants drive
// the same tree through its background/foreground API).
const (
	Folding Kind = iota + 1
	Randomized
	Rotating
	RotatingSplit
	Coalescing
	CoalescingSplit
	Strawman
	Daba
	FingerTree
)

// String returns the Go identifier of the kind (used by FormatRepro).
func (k Kind) String() string {
	switch k {
	case Folding:
		return "Folding"
	case Randomized:
		return "Randomized"
	case Rotating:
		return "Rotating"
	case RotatingSplit:
		return "RotatingSplit"
	case Coalescing:
		return "Coalescing"
	case CoalescingSplit:
		return "CoalescingSplit"
	case Strawman:
		return "Strawman"
	case Daba:
		return "Daba"
	case FingerTree:
		return "FingerTree"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// fixedWidth reports whether the kind slides in fixed-width bucket units
// (rotating trees, the DABA queue, and the finger tree — though the
// finger tree's window additionally drifts under out-of-order ops).
func (k Kind) fixedWidth() bool {
	return k == Rotating || k == RotatingSplit || k == Daba || k == FingerTree
}

// outOfOrder reports whether the kind supports the out-of-order
// operations (late appends, bulk evictions, bulk insertions). Only the
// finger tree does; every other kind skips those ops, which keeps a
// single trace replayable across the whole family.
func (k Kind) outOfOrder() bool { return k == FingerTree }

// reorders reports whether the kind's root may permute bucket age relative
// to window order (rotating trees, whose merge must therefore be
// commutative). Order-preserving fixed-width kinds like Daba are checked
// against the exact window sequence.
func (k Kind) reorders() bool { return k == Rotating || k == RotatingSplit }

// appendOnly reports whether the kind's window only grows.
func (k Kind) appendOnly() bool { return k == Coalescing || k == CoalescingSplit }

// Kinds lists every trace kind (the full tree family).
func Kinds() []Kind {
	return []Kind{Folding, Randomized, Rotating, RotatingSplit, Coalescing, CoalescingSplit, Strawman, Daba, FingerTree}
}

// OpKind tags one trace operation.
type OpKind int

// Trace operations. Memo-layer ops (fail/recover/GC) only have an effect
// at the runtime layer; the tree layer skips them, which keeps a single
// trace replayable through both layers.
const (
	// OpSlide moves the window: Drop oldest items, Add new ones. For
	// fixed-width kinds Drop == Add counts buckets; for append-only
	// kinds Drop is 0.
	OpSlide OpKind = iota + 1
	// OpCheckpoint round-trips the structure through its checkpoint /
	// restore path and checks the restored state (fingerprint and work
	// counters) against a freshly restored copy.
	OpCheckpoint
	// OpFailNode crashes memo node Node (runtime layer).
	OpFailNode
	// OpRecoverNode brings memo node Node back (runtime layer).
	OpRecoverNode
	// OpGCPressure evicts every memoized entry after the next slide
	// (runtime layer): correctness must never depend on the cache.
	OpGCPressure
	// OpWorkerCrash arms a mid-batch crash on dist worker Node: it dies
	// after computing the first split of its next batch, before replying
	// (runtime layer with Options.DistFaults).
	OpWorkerCrash
	// OpWorkerRestart restarts dist worker Node on its original address
	// (runtime layer with Options.DistFaults).
	OpWorkerRestart
	// OpWorkerDelay arms a delayed response on dist worker Node, long
	// enough to trip the pool's hedging and per-task deadline (runtime
	// layer with Options.DistFaults).
	OpWorkerDelay
	// OpWorkerDrop arms a dropped response on dist worker Node: the batch
	// is computed but the connection closes before the reply (runtime
	// layer with Options.DistFaults).
	OpWorkerDrop
	// OpWorkerCorrupt arms a corrupted frame in dist worker Node's next
	// response; the pool's checksummed codec must catch it and re-execute
	// (runtime layer with Options.DistFaults).
	OpWorkerCorrupt
	// OpLateAppend lands one new bucket Pos buckets behind the newest
	// live bucket (Pos 0 appends at the window's edge) — the out-of-order
	// arrival path. Kinds without out-of-order support skip it.
	OpLateAppend
	// OpBulkEvict drops the Drop oldest buckets in one bulk eviction
	// (out-of-order kinds only).
	OpBulkEvict
	// OpBulkInsert appends Add new buckets in one bulk insertion
	// (out-of-order kinds only).
	OpBulkInsert
)

// String returns the Go identifier of the op kind (used by FormatRepro).
func (k OpKind) String() string {
	switch k {
	case OpSlide:
		return "OpSlide"
	case OpCheckpoint:
		return "OpCheckpoint"
	case OpFailNode:
		return "OpFailNode"
	case OpRecoverNode:
		return "OpRecoverNode"
	case OpGCPressure:
		return "OpGCPressure"
	case OpWorkerCrash:
		return "OpWorkerCrash"
	case OpWorkerRestart:
		return "OpWorkerRestart"
	case OpWorkerDelay:
		return "OpWorkerDelay"
	case OpWorkerDrop:
		return "OpWorkerDrop"
	case OpWorkerCorrupt:
		return "OpWorkerCorrupt"
	case OpLateAppend:
		return "OpLateAppend"
	case OpBulkEvict:
		return "OpBulkEvict"
	case OpBulkInsert:
		return "OpBulkInsert"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is one step of a trace.
type Op struct {
	Kind OpKind
	// Drop and Add describe an OpSlide (items for variable kinds,
	// buckets for fixed-width kinds).
	Drop, Add int
	// Node is the memo node of an OpFailNode / OpRecoverNode.
	Node int
	// Pos is an OpLateAppend's lateness in buckets behind the newest
	// live bucket (0 = the window's newest edge).
	Pos int
}

// Trace is a deterministic window schedule: everything a run does is a
// pure function of the trace, so any failure replays from (Kind, Seed,
// step count) alone.
type Trace struct {
	Kind    Kind
	Seed    uint64
	Initial int // initial window: items (variable/append) or buckets (fixed)
	Ops     []Op
	// Chaos marks a GenerateChaos trace, so ReplayLine names the right
	// generator.
	Chaos bool
	// OutOfOrder marks a GenerateOutOfOrder trace (ReplayLine naming,
	// like Chaos).
	OutOfOrder bool
}

// String summarizes a trace for log lines.
func (tr Trace) String() string {
	var slides, cps, fails, gcs, chaos, ooo int
	for _, op := range tr.Ops {
		switch op.Kind {
		case OpSlide:
			slides++
		case OpCheckpoint:
			cps++
		case OpFailNode, OpRecoverNode:
			fails++
		case OpGCPressure:
			gcs++
		case OpWorkerCrash, OpWorkerRestart, OpWorkerDelay, OpWorkerDrop, OpWorkerCorrupt:
			chaos++
		case OpLateAppend, OpBulkEvict, OpBulkInsert:
			ooo++
		}
	}
	return fmt.Sprintf("sim.Trace{Kind: %s, Seed: %#x, Initial: %d, Ops: %d (%d slides, %d checkpoints, %d fail/recover, %d gc, %d worker-faults, %d ooo)}",
		tr.Kind, tr.Seed, tr.Initial, len(tr.Ops), slides, cps, fails, gcs, chaos, ooo)
}

// maxWindow caps the model window so wild growth stays cheap enough to
// oracle-check after every step.
const maxWindow = 384

// simNodes is the memo cluster size used by the runtime layer; fail and
// recover ops target nodes in [0, simNodes).
const simNodes = 4

// chaosWorkers is the dist worker count chaos traces run against; worker
// fault ops target workers in [0, chaosWorkers).
const chaosWorkers = 3

// simLateness is the deepest lateness (in buckets) out-of-order traces
// draw; the runtime layer configures Config.AllowedLateness to match, so
// every generated OpLateAppend is inside the watermark budget.
const simLateness = 6

// Generate builds a randomized trace for the kind: a seeded mix of
// appends, variable-width slides, wild width fluctuation, checkpoint /
// restore cycles, memo fail/recover events, and GC pressure. The same
// (kind, seed, steps) always yields the same trace.
func Generate(kind Kind, seed uint64, steps int) Trace {
	rng := rand.New(rand.NewSource(int64(seed*0x9e3779b97f4a7c15 + uint64(kind))))
	tr := Trace{Kind: kind, Seed: seed}
	switch {
	case kind.fixedWidth():
		tr.Initial = 2 + rng.Intn(11) // window of N buckets, fixed forever
	case kind.appendOnly():
		tr.Initial = 1 + rng.Intn(6)
	default:
		tr.Initial = 1 + rng.Intn(24)
	}
	live := tr.Initial
	for len(tr.Ops) < steps {
		r := rng.Intn(100)
		switch {
		case r < 68:
			tr.Ops = append(tr.Ops, genSlide(kind, rng, &live))
		case r < 80:
			tr.Ops = append(tr.Ops, Op{Kind: OpCheckpoint})
		case r < 87:
			tr.Ops = append(tr.Ops, Op{Kind: OpFailNode, Node: rng.Intn(simNodes)})
		case r < 94:
			tr.Ops = append(tr.Ops, Op{Kind: OpRecoverNode, Node: rng.Intn(simNodes)})
		default:
			tr.Ops = append(tr.Ops, Op{Kind: OpGCPressure})
		}
	}
	return tr
}

// genSlide draws one legal slide for the kind, tracking the live window.
func genSlide(kind Kind, rng *rand.Rand, live *int) Op {
	switch {
	case kind.fixedWidth():
		k := 1
		if rng.Intn(4) == 0 {
			k = 1 + rng.Intn(3)
			if k > *live {
				k = *live
			}
		}
		return Op{Kind: OpSlide, Drop: k, Add: k}
	case kind.appendOnly():
		add := 1 + rng.Intn(4)
		if *live+add > maxWindow {
			add = 1
		}
		*live += add
		return Op{Kind: OpSlide, Add: add}
	default:
		var drop, add int
		if rng.Intn(8) == 0 { // wild width fluctuation
			if rng.Intn(2) == 0 && *live > 1 {
				// Shrink drastically — sometimes draining the window.
				drop = *live - rng.Intn(2)
			} else {
				// Grow past the current size.
				add = *live + rng.Intn(*live+8)
			}
		} else {
			maxDrop := *live
			if maxDrop > 4 {
				maxDrop = 4
			}
			drop = rng.Intn(maxDrop + 1)
			add = rng.Intn(5)
		}
		if *live-drop+add > maxWindow {
			add = maxWindow - (*live - drop)
			if add < 0 {
				add = 0
			}
		}
		if drop == 0 && add == 0 {
			add = 1
		}
		*live += add - drop
		return Op{Kind: OpSlide, Drop: drop, Add: add}
	}
}

// GenerateChaos builds a randomized trace like Generate with dist-layer
// fault injections mixed in: worker crashes and restarts, delayed,
// dropped, and corrupted responses. It is a separate generator so
// Generate's output stays byte-identical for existing seeds. Run chaos
// traces at the runtime layer with Options.DistFaults; without it (and
// at the tree layer) the worker ops are ignored, so one trace stays
// replayable everywhere. Restarts outweigh crashes slightly so the
// cluster tends to recover rather than drain.
func GenerateChaos(kind Kind, seed uint64, steps int) Trace {
	rng := rand.New(rand.NewSource(int64(seed*0x9e3779b97f4a7c15 + uint64(kind) + 0xc4a05)))
	tr := Trace{Kind: kind, Seed: seed, Chaos: true}
	switch {
	case kind.fixedWidth():
		tr.Initial = 2 + rng.Intn(11)
	case kind.appendOnly():
		tr.Initial = 1 + rng.Intn(6)
	default:
		tr.Initial = 1 + rng.Intn(24)
	}
	live := tr.Initial
	for len(tr.Ops) < steps {
		r := rng.Intn(100)
		switch {
		case r < 55:
			tr.Ops = append(tr.Ops, genSlide(kind, rng, &live))
		case r < 62:
			tr.Ops = append(tr.Ops, Op{Kind: OpCheckpoint})
		case r < 68:
			tr.Ops = append(tr.Ops, Op{Kind: OpFailNode, Node: rng.Intn(simNodes)})
		case r < 74:
			tr.Ops = append(tr.Ops, Op{Kind: OpRecoverNode, Node: rng.Intn(simNodes)})
		case r < 78:
			tr.Ops = append(tr.Ops, Op{Kind: OpGCPressure})
		case r < 84:
			tr.Ops = append(tr.Ops, Op{Kind: OpWorkerCrash, Node: rng.Intn(chaosWorkers)})
		case r < 92:
			tr.Ops = append(tr.Ops, Op{Kind: OpWorkerRestart, Node: rng.Intn(chaosWorkers)})
		case r < 95:
			tr.Ops = append(tr.Ops, Op{Kind: OpWorkerDelay, Node: rng.Intn(chaosWorkers)})
		case r < 98:
			tr.Ops = append(tr.Ops, Op{Kind: OpWorkerDrop, Node: rng.Intn(chaosWorkers)})
		default:
			tr.Ops = append(tr.Ops, Op{Kind: OpWorkerCorrupt, Node: rng.Intn(chaosWorkers)})
		}
	}
	return tr
}

// GenerateOutOfOrder builds a randomized trace like Generate with
// out-of-order window operations mixed in: late appends at a bounded
// lateness, bulk evictions of many oldest buckets at once, and bulk
// insertions of many new ones. It is a separate generator so Generate's
// output stays byte-identical for existing seeds. For kinds without
// out-of-order support the ooo draws degrade to ordinary slides, so the
// trace stays legal for the whole family; only the finger-tree kind
// actually exercises the new operations.
func GenerateOutOfOrder(kind Kind, seed uint64, steps int) Trace {
	rng := rand.New(rand.NewSource(int64(seed*0x9e3779b97f4a7c15 + uint64(kind) + 0x1a7e0)))
	tr := Trace{Kind: kind, Seed: seed, OutOfOrder: true}
	switch {
	case kind.fixedWidth():
		tr.Initial = 2 + rng.Intn(11)
	case kind.appendOnly():
		tr.Initial = 1 + rng.Intn(6)
	default:
		tr.Initial = 1 + rng.Intn(24)
	}
	live := tr.Initial
	for len(tr.Ops) < steps {
		r := rng.Intn(100)
		switch {
		case r < 40:
			tr.Ops = append(tr.Ops, genSlide(kind, rng, &live))
		case r < 55:
			tr.Ops = append(tr.Ops, genOutOfOrder(kind, OpLateAppend, rng, &live))
		case r < 65:
			tr.Ops = append(tr.Ops, genOutOfOrder(kind, OpBulkEvict, rng, &live))
		case r < 75:
			tr.Ops = append(tr.Ops, genOutOfOrder(kind, OpBulkInsert, rng, &live))
		case r < 85:
			tr.Ops = append(tr.Ops, Op{Kind: OpCheckpoint})
		case r < 90:
			tr.Ops = append(tr.Ops, Op{Kind: OpFailNode, Node: rng.Intn(simNodes)})
		case r < 95:
			tr.Ops = append(tr.Ops, Op{Kind: OpRecoverNode, Node: rng.Intn(simNodes)})
		default:
			tr.Ops = append(tr.Ops, Op{Kind: OpGCPressure})
		}
	}
	return tr
}

// genOutOfOrder draws one legal out-of-order op, tracking the live
// bucket count: late appends stay within simLateness, bulk evictions
// always leave at least one bucket, bulk insertions respect the window
// cap. Kinds without out-of-order support get a plain slide instead.
func genOutOfOrder(kind Kind, op OpKind, rng *rand.Rand, live *int) Op {
	if !kind.outOfOrder() {
		return genSlide(kind, rng, live)
	}
	switch op {
	case OpLateAppend:
		deepest := *live
		if deepest > simLateness {
			deepest = simLateness
		}
		*live++
		return Op{Kind: OpLateAppend, Pos: rng.Intn(deepest + 1)}
	case OpBulkEvict:
		if *live < 2 {
			return genSlide(kind, rng, live)
		}
		max := *live - 1
		if max > 48 {
			max = 48
		}
		k := 1 + rng.Intn(max)
		*live -= k
		return Op{Kind: OpBulkEvict, Drop: k}
	default: // OpBulkInsert
		k := 1 + rng.Intn(12)
		if *live+k > maxWindow {
			k = 1
		}
		*live += k
		return Op{Kind: OpBulkInsert, Add: k}
	}
}

// Replay regenerates the exact trace a CI failure log names: paste the
// kind, seed, and step count from the "replay:" line.
func Replay(kind Kind, seed uint64, steps int) Trace { return Generate(kind, seed, steps) }

// ReplayChaos is Replay for GenerateChaos traces.
func ReplayChaos(kind Kind, seed uint64, steps int) Trace { return GenerateChaos(kind, seed, steps) }

// ReplayOutOfOrder is Replay for GenerateOutOfOrder traces.
func ReplayOutOfOrder(kind Kind, seed uint64, steps int) Trace {
	return GenerateOutOfOrder(kind, seed, steps)
}

// ReplayLine renders the one-line replay recipe printed on failures.
func ReplayLine(tr Trace) string {
	fn := "Replay"
	switch {
	case tr.Chaos:
		fn = "ReplayChaos"
	case tr.OutOfOrder:
		fn = "ReplayOutOfOrder"
	}
	return fmt.Sprintf("replay: sim.Run(sim.%s(sim.%s, %#x, %d), opts)", fn, tr.Kind, tr.Seed, len(tr.Ops))
}

// opLiteral renders one op as a Go composite literal.
func opLiteral(op Op) string {
	var b strings.Builder
	fmt.Fprintf(&b, "{Kind: sim.%s", op.Kind)
	if op.Drop != 0 {
		fmt.Fprintf(&b, ", Drop: %d", op.Drop)
	}
	if op.Add != 0 {
		fmt.Fprintf(&b, ", Add: %d", op.Add)
	}
	if op.Node != 0 {
		fmt.Fprintf(&b, ", Node: %d", op.Node)
	}
	if op.Pos != 0 {
		fmt.Fprintf(&b, ", Pos: %d", op.Pos)
	}
	b.WriteString("}")
	return b.String()
}
