package sim

// Shrink minimizes a failing trace while preserving the failure: classic
// delta-debugging (ddmin) over the op list, then value-level
// simplification of the surviving ops and the initial window. Each
// candidate is re-run under the same options; only candidates that still
// fail are kept, so the result always reproduces the original bug class.
//
// The search is bounded by maxEvals harness executions (a deterministic
// budget — shrinking is itself replayable). Pass 0 for the default.
func Shrink(tr Trace, opt Options, maxEvals int) Trace {
	if maxEvals <= 0 {
		maxEvals = 400
	}
	evals := 0
	fails := func(t Trace) bool {
		if evals >= maxEvals {
			return false
		}
		evals++
		return Run(t, opt) != nil
	}

	if err := Run(tr, opt); err == nil {
		return tr // nothing to shrink
	} else if ce, ok := err.(*CheckError); ok && ce.Step >= 0 && ce.Step+1 < len(tr.Ops) {
		// Ops past the failing step cannot matter; cut them first.
		tr.Ops = append([]Op(nil), tr.Ops[:ce.Step+1]...)
	}

	// Phase 1: ddmin — remove chunks of ops, halving the chunk size.
	for chunk := (len(tr.Ops) + 1) / 2; chunk >= 1; chunk /= 2 {
		for lo := 0; lo < len(tr.Ops); {
			hi := lo + chunk
			if hi > len(tr.Ops) {
				hi = len(tr.Ops)
			}
			cand := tr
			cand.Ops = make([]Op, 0, len(tr.Ops)-(hi-lo))
			cand.Ops = append(cand.Ops, tr.Ops[:lo]...)
			cand.Ops = append(cand.Ops, tr.Ops[hi:]...)
			if len(cand.Ops) > 0 && fails(cand) {
				tr = cand // chunk was irrelevant; keep it removed
			} else {
				lo = hi
			}
		}
	}

	// Phase 2: shrink the initial window toward 1.
	for tr.Initial > 1 {
		cand := tr
		cand.Initial = tr.Initial / 2
		if cand.Initial < 1 {
			cand.Initial = 1
		}
		if !fails(cand) {
			cand.Initial = tr.Initial - 1
			if !fails(cand) {
				break
			}
		}
		tr = cand
	}

	// Phase 3: shrink op magnitudes (Drop/Add/Node/Pos toward 0).
	for i := range tr.Ops {
		tr = shrinkOpField(tr, i, fails, func(op *Op, v int) { op.Drop = v }, tr.Ops[i].Drop)
		tr = shrinkOpField(tr, i, fails, func(op *Op, v int) { op.Add = v }, tr.Ops[i].Add)
		tr = shrinkOpField(tr, i, fails, func(op *Op, v int) { op.Node = v }, tr.Ops[i].Node)
		tr = shrinkOpField(tr, i, fails, func(op *Op, v int) { op.Pos = v }, tr.Ops[i].Pos)
	}
	return tr
}

// shrinkOpField lowers one numeric field of op i as far as the failure
// allows, trying 0, then successive halvings of the current value.
func shrinkOpField(tr Trace, i int, fails func(Trace) bool, set func(*Op, int), cur int) Trace {
	try := func(v int) bool {
		cand := tr
		cand.Ops = append([]Op(nil), tr.Ops...)
		set(&cand.Ops[i], v)
		if fails(cand) {
			tr = cand
			return true
		}
		return false
	}
	if cur <= 0 {
		return tr
	}
	if try(0) {
		return tr
	}
	for v := cur / 2; v >= 1; v /= 2 {
		if try(v) {
			break
		}
	}
	return tr
}
