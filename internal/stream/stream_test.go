package stream

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"slider/internal/mapreduce"
	"slider/internal/memo"
	"slider/internal/sliderrt"
)

func sumJob() *mapreduce.Job {
	sum := func(_ string, values []mapreduce.Value) mapreduce.Value {
		var total int64
		for _, v := range values {
			total += v.(int64)
		}
		return total
	}
	return &mapreduce.Job{
		Name:       "wordcount",
		Partitions: 2,
		Map: func(rec mapreduce.Record, emit mapreduce.Emit) error {
			for _, w := range strings.Fields(rec.(string)) {
				emit(w, int64(1))
			}
			return nil
		},
		Combine:     sum,
		Reduce:      sum,
		Commutative: true,
	}
}

func smallMemo() sliderrt.Config {
	cfg := memo.DefaultConfig()
	cfg.Nodes = 4
	return sliderrt.Config{Memo: cfg}
}

func TestCountWindowFixed(t *testing.T) {
	var outputs []Output
	w, err := NewCountWindow(CountConfig{
		Job:             sumJob(),
		RecordsPerSplit: 2,
		WindowSplits:    4,
		SlideSplits:     2,
		Config:          smallMemo(),
	}, func(o Output) error { outputs = append(outputs, o); return nil })
	if err != nil {
		t.Fatal(err)
	}
	// 8 records = 4 splits = the initial window.
	for i := 0; i < 8; i++ {
		if err := w.Push(fmt.Sprintf("w%d common", i)); err != nil {
			t.Fatal(err)
		}
	}
	if len(outputs) != 1 {
		t.Fatalf("outputs after initial window = %d, want 1", len(outputs))
	}
	if got := outputs[0].Result.Output["common"].(int64); got != 8 {
		t.Fatalf("common = %d, want 8", got)
	}
	// 4 more records = 2 splits = one slide.
	for i := 8; i < 12; i++ {
		if err := w.Push(fmt.Sprintf("w%d common", i)); err != nil {
			t.Fatal(err)
		}
	}
	if len(outputs) != 2 {
		t.Fatalf("outputs after slide = %d, want 2", len(outputs))
	}
	// Window still holds 8 records: w0..w3 slid out.
	out := outputs[1].Result.Output
	if out["common"].(int64) != 8 {
		t.Fatalf("common = %d after slide", out["common"])
	}
	if _, ok := out["w0"]; ok {
		t.Fatal("w0 should have slid out")
	}
	if _, ok := out["w11"]; !ok {
		t.Fatal("w11 should be in the window")
	}
}

func TestCountWindowAppend(t *testing.T) {
	var outputs []Output
	w, err := NewCountWindow(CountConfig{
		Job:             sumJob(),
		RecordsPerSplit: 1,
		WindowSplits:    2,
		SlideSplits:     0, // append-only
		Config:          smallMemo(),
	}, func(o Output) error { outputs = append(outputs, o); return nil })
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.Push("x"); err != nil {
			t.Fatal(err)
		}
	}
	// Initial at 2 splits, then one run per appended split: 1 + 3.
	if len(outputs) != 4 {
		t.Fatalf("outputs = %d, want 4", len(outputs))
	}
	final := outputs[len(outputs)-1].Result.Output
	if final["x"].(int64) != 5 {
		t.Fatalf("x = %d, want 5 (append-only grows)", final["x"])
	}
}

func TestCountWindowValidation(t *testing.T) {
	sink := func(Output) error { return nil }
	if _, err := NewCountWindow(CountConfig{Job: sumJob(), RecordsPerSplit: 0, WindowSplits: 2}, sink); err == nil {
		t.Fatal("zero split size accepted")
	}
	if _, err := NewCountWindow(CountConfig{Job: sumJob(), RecordsPerSplit: 1, WindowSplits: 3, SlideSplits: 2}, sink); err == nil {
		t.Fatal("non-divisible slide accepted")
	}
	if _, err := NewCountWindow(CountConfig{Job: sumJob(), RecordsPerSplit: 1, WindowSplits: 2, SlideSplits: 3}, sink); err == nil {
		t.Fatal("slide > window accepted")
	}
}

func TestCountWindowStop(t *testing.T) {
	w, err := NewCountWindow(CountConfig{
		Job: sumJob(), RecordsPerSplit: 1, WindowSplits: 1, SlideSplits: 1,
		Config: smallMemo(),
	}, func(Output) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if err := w.Push("x"); err != ErrStopped {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
}

func TestTimeWindowSlides(t *testing.T) {
	var outputs []Output
	w, err := NewTimeWindow(TimeConfig{
		Job:             sumJob(),
		Window:          3 * time.Minute,
		Slide:           time.Minute,
		RecordsPerSplit: 2,
		Config:          smallMemo(),
	}, func(o Output) error { outputs = append(outputs, o); return nil })
	if err != nil {
		t.Fatal(err)
	}
	epoch := time.Date(2026, 7, 1, 12, 0, 0, 0, time.UTC)
	// Minute 0: 3 records; minute 1: 1 record; minute 2: 4 records;
	// minute 3: 2 records; minute 4: 2 records.
	perMinute := []int{3, 1, 4, 2, 2}
	for minute, n := range perMinute {
		for i := 0; i < n; i++ {
			rec := TimedRecord{
				At:     epoch.Add(time.Duration(minute)*time.Minute + time.Duration(i)*time.Second),
				Record: fmt.Sprintf("m%d common", minute),
			}
			if err := w.Push(rec); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Windows: [0,3) fires when minute 3 opens; [1,4) when minute 4
	// opens; [2,5) on Flush.
	if len(outputs) != 3 {
		t.Fatalf("outputs = %d, want 3", len(outputs))
	}
	first := outputs[0].Result.Output
	if first["common"].(int64) != 8 {
		t.Fatalf("window[0,3) common = %d, want 8", first["common"])
	}
	second := outputs[1].Result.Output
	if second["common"].(int64) != 7 {
		t.Fatalf("window[1,4) common = %d, want 7", second["common"])
	}
	if _, ok := second["m0"]; ok {
		t.Fatal("minute 0 should have slid out")
	}
	third := outputs[2].Result.Output
	if third["common"].(int64) != 8 {
		t.Fatalf("window[2,5) common = %d, want 8", third["common"])
	}
}

func TestTimeWindowEmptyPeriods(t *testing.T) {
	var outputs []Output
	w, err := NewTimeWindow(TimeConfig{
		Job:             sumJob(),
		Window:          2 * time.Minute,
		Slide:           time.Minute,
		RecordsPerSplit: 2,
		Config:          smallMemo(),
	}, func(o Output) error { outputs = append(outputs, o); return nil })
	if err != nil {
		t.Fatal(err)
	}
	epoch := time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)
	// Records in minute 0, then a gap (minutes 1–2 empty), then minute 3.
	if err := w.Push(TimedRecord{At: epoch, Record: "a a"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Push(TimedRecord{At: epoch.Add(3 * time.Minute), Record: "b"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(outputs) == 0 {
		t.Fatal("no outputs across the gap")
	}
	last := outputs[len(outputs)-1].Result.Output
	if _, ok := last["a"]; ok {
		t.Fatal("minute-0 records survived past the window")
	}
	if last["b"].(int64) != 1 {
		t.Fatalf("b = %v", last["b"])
	}
}

func TestTimeWindowValidation(t *testing.T) {
	sink := func(Output) error { return nil }
	if _, err := NewTimeWindow(TimeConfig{Job: sumJob(), Window: time.Minute, Slide: 0, RecordsPerSplit: 1}, sink); err == nil {
		t.Fatal("zero slide accepted")
	}
	if _, err := NewTimeWindow(TimeConfig{Job: sumJob(), Window: 90 * time.Second, Slide: time.Minute, RecordsPerSplit: 1}, sink); err == nil {
		t.Fatal("non-multiple window accepted")
	}
}

func TestCountWindowCheckpointResume(t *testing.T) {
	// The stream driver exposes its runtime for checkpointing; a resumed
	// runtime continues the same window.
	var outputs []Output
	cfg := CountConfig{
		Job:             sumJob(),
		RecordsPerSplit: 1,
		WindowSplits:    4,
		SlideSplits:     2,
		Config:          smallMemo(),
	}
	w, err := NewCountWindow(cfg, func(o Output) error {
		outputs = append(outputs, o)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := w.Push("x"); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := w.Runtime().Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	rc := cfg.Config
	rc.Mode = sliderrt.Fixed
	rc.BucketSplits = cfg.SlideSplits
	rc.WindowBuckets = cfg.WindowSplits / cfg.SlideSplits
	restored, err := sliderrt.Restore(sumJob(), rc, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := restored.Advance(2, []mapreduce.Split{
		{ID: "r0", Records: []mapreduce.Record{"x"}},
		{ID: "r1", Records: []mapreduce.Record{"x"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output["x"].(int64) != 4 {
		t.Fatalf("x = %v after resume, want 4", res.Output["x"])
	}
}
