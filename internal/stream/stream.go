// Package stream provides a record-oriented driver on top of the Slider
// runtime: callers push individual records (optionally timestamped) and
// the driver forms splits, fills the initial window, and slides it
// automatically, delivering each run's output through a callback.
//
// Two windowing policies are provided:
//
//   - CountWindow: the window holds a fixed number of splits and slides
//     by a fixed number of splits (Fixed mode underneath — or Append
//     mode when SlideSplits is 0).
//   - TimeWindow: records carry timestamps; the window covers a fixed
//     duration and slides by a fixed period. Data volume per period
//     varies, so Variable mode (folding trees) runs underneath.
package stream

import (
	"errors"
	"fmt"
	"strconv"
	"time"

	"slider/internal/mapreduce"
	"slider/internal/sliderrt"
)

// Output delivers one run's results.
type Output struct {
	// Result is the runtime's run result (output, work reports).
	Result *sliderrt.RunResult
	// SlideID is the run's 1-based sequence number — the correlation key
	// for span traces and tree snapshots (Result.SlideID, hoisted here
	// for sinks that only look at the envelope).
	SlideID uint64
	// WindowStart/WindowEnd describe the window: split indexes for
	// count windows, timestamps for time windows.
	WindowStart int64
	WindowEnd   int64
}

// Sink consumes run outputs.
type Sink func(Output) error

// ErrStopped is returned by Push after the stream is closed.
var ErrStopped = errors.New("stream: stopped")

// CountConfig configures a count-based sliding window.
type CountConfig struct {
	// Job is the non-incremental computation.
	Job *mapreduce.Job
	// RecordsPerSplit is the split granularity.
	RecordsPerSplit int
	// WindowSplits is the window length in splits.
	WindowSplits int
	// SlideSplits is the slide width in splits; 0 means append-only
	// (the window grows without bound).
	SlideSplits int
	// Runtime tweaks forwarded to the Slider runtime.
	SplitProcessing bool
	Config          sliderrt.Config // optional extra knobs (Memo etc.)
}

// CountWindow is the count-based driver.
type CountWindow struct {
	cfg     CountConfig
	rt      *sliderrt.Runtime
	sink    Sink
	buf     []mapreduce.Record
	pending []mapreduce.Split
	splits  int // total splits formed so far
	started bool
	stopped bool
}

// NewCountWindow returns a driver delivering each run's output to sink.
func NewCountWindow(cfg CountConfig, sink Sink) (*CountWindow, error) {
	if cfg.RecordsPerSplit <= 0 {
		return nil, fmt.Errorf("stream: RecordsPerSplit must be positive")
	}
	if cfg.WindowSplits <= 0 {
		return nil, fmt.Errorf("stream: WindowSplits must be positive")
	}
	if cfg.SlideSplits < 0 || cfg.SlideSplits > cfg.WindowSplits {
		return nil, fmt.Errorf("stream: SlideSplits %d out of range", cfg.SlideSplits)
	}
	rc := cfg.Config
	if cfg.SlideSplits == 0 {
		rc.Mode = sliderrt.Append
	} else {
		rc.Mode = sliderrt.Fixed
		rc.BucketSplits = cfg.SlideSplits
		rc.WindowBuckets = cfg.WindowSplits / cfg.SlideSplits
		if cfg.WindowSplits%cfg.SlideSplits != 0 {
			return nil, fmt.Errorf("stream: WindowSplits must be a multiple of SlideSplits")
		}
	}
	rc.SplitProcessing = cfg.SplitProcessing
	rt, err := sliderrt.New(cfg.Job, rc)
	if err != nil {
		return nil, err
	}
	return &CountWindow{cfg: cfg, rt: rt, sink: sink}, nil
}

// Push appends records to the stream; full splits and full slides fire
// runs synchronously.
func (w *CountWindow) Push(records ...mapreduce.Record) error {
	if w.stopped {
		return ErrStopped
	}
	w.buf = append(w.buf, records...)
	for len(w.buf) >= w.cfg.RecordsPerSplit {
		split := mapreduce.Split{
			ID:      "stream-" + strconv.Itoa(w.splits),
			Records: append([]mapreduce.Record{}, w.buf[:w.cfg.RecordsPerSplit]...),
		}
		w.buf = w.buf[w.cfg.RecordsPerSplit:]
		w.splits++
		w.pending = append(w.pending, split)
		if err := w.maybeRun(); err != nil {
			return err
		}
	}
	return nil
}

// maybeRun fires the initial run or a slide when enough splits queued.
func (w *CountWindow) maybeRun() error {
	if !w.started {
		if len(w.pending) < w.cfg.WindowSplits {
			return nil
		}
		res, err := w.rt.Initial(w.pending)
		if err != nil {
			return err
		}
		w.pending = nil
		w.started = true
		return w.deliver(res)
	}
	slide := w.cfg.SlideSplits
	if slide == 0 {
		// Append-only: every split is a run.
		for len(w.pending) > 0 {
			res, err := w.rt.Advance(0, w.pending[:1])
			if err != nil {
				return err
			}
			w.pending = w.pending[1:]
			if err := w.deliver(res); err != nil {
				return err
			}
		}
		return nil
	}
	for len(w.pending) >= slide {
		res, err := w.rt.Advance(slide, w.pending[:slide])
		if err != nil {
			return err
		}
		w.pending = w.pending[slide:]
		if err := w.deliver(res); err != nil {
			return err
		}
	}
	return nil
}

func (w *CountWindow) deliver(res *sliderrt.RunResult) error {
	end := int64(w.splits - len(w.pending) - len(w.buf)/w.cfg.RecordsPerSplit)
	start := int64(w.rt.WindowLo())
	return w.sink(Output{Result: res, SlideID: res.SlideID, WindowStart: start, WindowEnd: end})
}

// Runtime exposes the underlying runtime (e.g. for checkpointing).
func (w *CountWindow) Runtime() *sliderrt.Runtime { return w.rt }

// Close stops the stream; buffered records short of a split are dropped.
func (w *CountWindow) Close() { w.stopped = true }

// TimedRecord is one timestamped record of a time window.
type TimedRecord struct {
	// At is the record's event time. Records must arrive in
	// non-decreasing time order.
	At time.Time
	// Record is the payload handed to the job's Map.
	Record mapreduce.Record
}

// TimeConfig configures a time-based sliding window.
type TimeConfig struct {
	// Job is the non-incremental computation.
	Job *mapreduce.Job
	// Window is the window length; Slide is the slide period.
	Window time.Duration
	Slide  time.Duration
	// RecordsPerSplit bounds split sizes within a slide period.
	RecordsPerSplit int
	// Config carries extra runtime knobs.
	Config sliderrt.Config
}

// TimeWindow is the time-based driver: a window of Window duration
// slides every Slide, with whatever data volume each period carried
// (Variable mode underneath).
type TimeWindow struct {
	cfg     TimeConfig
	rt      *sliderrt.Runtime
	sink    Sink
	splits  int
	started bool

	periodStart time.Time
	hasEpoch    bool
	buf         []mapreduce.Record
	// periods/periodTimes hold the split counts and start times of each
	// period currently in the window; pending/pendCnt/pendTimes hold
	// completed periods not yet run.
	periods     []int
	periodTimes []time.Time
	pending     []mapreduce.Split
	pendCnt     []int
	pendTimes   []time.Time
}

// NewTimeWindow returns a time-based driver delivering to sink.
func NewTimeWindow(cfg TimeConfig, sink Sink) (*TimeWindow, error) {
	if cfg.Window <= 0 || cfg.Slide <= 0 || cfg.Window%cfg.Slide != 0 {
		return nil, fmt.Errorf("stream: Window must be a positive multiple of Slide")
	}
	if cfg.RecordsPerSplit <= 0 {
		return nil, fmt.Errorf("stream: RecordsPerSplit must be positive")
	}
	rc := cfg.Config
	rc.Mode = sliderrt.Variable
	rt, err := sliderrt.New(cfg.Job, rc)
	if err != nil {
		return nil, err
	}
	return &TimeWindow{cfg: cfg, rt: rt, sink: sink}, nil
}

// Push adds a timestamped record. Crossing a slide boundary closes the
// current period and may fire a run.
func (t *TimeWindow) Push(rec TimedRecord) error {
	if !t.hasEpoch {
		t.periodStart = rec.At.Truncate(t.cfg.Slide)
		t.hasEpoch = true
	}
	for rec.At.Sub(t.periodStart) >= t.cfg.Slide {
		if err := t.closePeriod(); err != nil {
			return err
		}
		t.periodStart = t.periodStart.Add(t.cfg.Slide)
	}
	t.buf = append(t.buf, rec.Record)
	return nil
}

// Flush closes the in-progress period and fires any due runs (e.g. at
// end of stream).
func (t *TimeWindow) Flush() error {
	return t.closePeriod()
}

// closePeriod converts the buffered records into splits for one period
// and runs the window forward if enough periods accumulated.
func (t *TimeWindow) closePeriod() error {
	count := 0
	for len(t.buf) > 0 {
		n := t.cfg.RecordsPerSplit
		if n > len(t.buf) {
			n = len(t.buf)
		}
		t.pending = append(t.pending, mapreduce.Split{
			ID:      "tstream-" + strconv.Itoa(t.splits),
			Records: append([]mapreduce.Record{}, t.buf[:n]...),
		})
		t.buf = t.buf[n:]
		t.splits++
		count++
	}
	t.pendCnt = append(t.pendCnt, count)
	t.pendTimes = append(t.pendTimes, t.periodStart)
	return t.maybeRun()
}

func (t *TimeWindow) maybeRun() error {
	periodsPerWindow := int(t.cfg.Window / t.cfg.Slide)
	for {
		if !t.started {
			if len(t.pendCnt) < periodsPerWindow {
				return nil
			}
			var take int
			for _, c := range t.pendCnt[:periodsPerWindow] {
				take += c
			}
			if take == 0 {
				// A window of entirely empty periods: skip forward.
				t.pendCnt = t.pendCnt[1:]
				t.pendTimes = t.pendTimes[1:]
				continue
			}
			res, err := t.rt.Initial(t.pending[:take])
			if err != nil {
				return err
			}
			t.periods = append([]int{}, t.pendCnt[:periodsPerWindow]...)
			t.periodTimes = append([]time.Time{}, t.pendTimes[:periodsPerWindow]...)
			t.pending = t.pending[take:]
			t.pendCnt = t.pendCnt[periodsPerWindow:]
			t.pendTimes = t.pendTimes[periodsPerWindow:]
			if err := t.deliver(res); err != nil {
				return err
			}
			t.started = true
			continue
		}
		if len(t.pendCnt) == 0 {
			return nil
		}
		add := t.pendCnt[0]
		drop := t.periods[0]
		res, err := t.rt.Advance(drop, t.pending[:add])
		if err != nil {
			return err
		}
		t.pending = t.pending[add:]
		t.periods = append(t.periods[1:], add)
		t.periodTimes = append(t.periodTimes[1:], t.pendTimes[0])
		t.pendCnt = t.pendCnt[1:]
		t.pendTimes = t.pendTimes[1:]
		if err := t.deliver(res); err != nil {
			return err
		}
	}
}

func (t *TimeWindow) deliver(res *sliderrt.RunResult) error {
	end := t.periodTimes[len(t.periodTimes)-1].Add(t.cfg.Slide)
	return t.sink(Output{
		Result:      res,
		SlideID:     res.SlideID,
		WindowStart: end.Add(-t.cfg.Window).UnixNano(),
		WindowEnd:   end.UnixNano(),
	})
}

// Runtime exposes the underlying runtime.
func (t *TimeWindow) Runtime() *sliderrt.Runtime { return t.rt }
