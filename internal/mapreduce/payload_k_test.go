package mapreduce

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPartitionMatchesFNVReference pins the inlined FNV-1a loop to the
// allocating hash/fnv implementation it replaced: identical partition
// assignment for every key, so memoized placements survive the rewrite.
func TestPartitionMatchesFNVReference(t *testing.T) {
	reference := func(key string, n int) int {
		if n <= 1 {
			return 0
		}
		h := fnv.New32a()
		_, _ = h.Write([]byte(key))
		return int(h.Sum32() % uint32(n))
	}
	fixed := []string{"", "a", "ab", "alpha", "part:0", "map:s17", "日本語", "\x00\xff"}
	for _, key := range fixed {
		for _, n := range []int{1, 2, 3, 7, 16, 24} {
			if got, want := Partition(key, n), reference(key, n); got != want {
				t.Fatalf("Partition(%q, %d) = %d, reference %d", key, n, got, want)
			}
		}
	}
	property := func(key string, n uint8) bool {
		parts := int(n%32) + 1
		return Partition(key, parts) == reference(key, parts)
	}
	if err := quick.Check(property, nil); err != nil {
		t.Fatal(err)
	}
	if got, want := HashKey32("slider"), fnv.New32a(); true {
		_, _ = want.Write([]byte("slider"))
		if got != want.Sum32() {
			t.Fatalf("HashKey32 = %#x, fnv reference %#x", got, want.Sum32())
		}
	}
}

// TestPartitionNoAllocs pins the whole point of the inlined hash: zero
// allocations per call on the map-side emit path.
func TestPartitionNoAllocs(t *testing.T) {
	keys := []string{"alpha", "beta", "a-much-longer-key-with-structure:42"}
	allocs := testing.AllocsPerRun(100, func() {
		for _, k := range keys {
			if Partition(k, 8) < 0 {
				t.Fatal("negative partition")
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("Partition allocates %.1f per run, want 0", allocs)
	}
}

// orderTracingJob returns a job whose Combine records, per key, the
// concatenation order of the values it sees. Values are strings; the
// combined value is their in-order concatenation, so both the final
// output AND the window ordering of every combiner argument are visible
// in the result. Concatenation is associative but not commutative —
// exactly the contract MergeOrderedK must preserve.
func orderTracingJob() *Job {
	cat := func(_ string, values []Value) Value {
		var s string
		for _, v := range values {
			s += v.(string)
		}
		return s
	}
	return &Job{
		Name:    "concat",
		Map:     func(Record, Emit) error { return nil },
		Combine: cat,
		Reduce:  cat,
	}
}

// randomPayloadList generates n payloads over a small key space so keys
// collide across payloads, with some payloads empty or nil.
func randomPayloadList(rng *rand.Rand, n int) []Payload {
	keys := []string{"k0", "k1", "k2", "k3", "k4", "k5"}
	out := make([]Payload, n)
	for i := range out {
		switch rng.Intn(5) {
		case 0:
			out[i] = nil
		case 1:
			out[i] = Payload{}
		default:
			p := Payload{}
			for _, k := range keys {
				if rng.Intn(2) == 0 {
					p[k] = fmt.Sprintf("<%d:%s>", i, k)
				}
			}
			out[i] = p
		}
	}
	return out
}

// TestMergeOrderedKEquivalentToPairwiseFold is the satellite property
// test: over random payload lists — including empty and nil sides and
// single-payload fast paths — MergeOrderedK produces combine-for-combine
// the same output values and window ordering as a left fold of binary
// MergeOrdered. The tracing combiner concatenates values in argument
// order, so any ordering or association error shows up in the output.
func TestMergeOrderedKEquivalentToPairwiseFold(t *testing.T) {
	job := orderTracingJob()
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		ps := randomPayloadList(rng, rng.Intn(12))
		// Reference: strict left fold of binary merges.
		var want Payload
		if len(ps) == 0 {
			want = Payload{}
		} else {
			want = ps[0]
			for _, p := range ps[1:] {
				want, _ = MergeOrdered(job, want, p)
			}
		}
		got, combines := MergeOrderedK(job, ps...)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d keys, want %d", trial, len(got), len(want))
		}
		for k, wv := range want {
			gv, ok := got[k]
			if !ok {
				t.Fatalf("trial %d: missing key %q", trial, k)
			}
			if gv.(string) != wv.(string) {
				t.Fatalf("trial %d key %q: got %q, want %q (window order violated)", trial, k, gv, wv)
			}
		}
		// Combine count: exactly one multi-argument call per key that
		// occurs in ≥ 2 non-empty payloads (never more than the pairwise
		// fold's count).
		occurrences := map[string]int{}
		for _, p := range ps {
			for k := range p {
				occurrences[k]++
			}
		}
		var wantCombines int64
		nonEmpty := 0
		for _, p := range ps {
			if len(p) > 0 {
				nonEmpty++
			}
		}
		if nonEmpty >= 2 {
			for _, n := range occurrences {
				if n >= 2 {
					wantCombines++
				}
			}
		}
		if combines != wantCombines {
			t.Fatalf("trial %d: %d combines, want %d", trial, combines, wantCombines)
		}
	}
}

// TestMergeOrderedKFastPaths pins the no-combine fast paths: all-empty
// input returns the shared sentinel, and a single live payload is cloned
// without combining.
func TestMergeOrderedKFastPaths(t *testing.T) {
	job := orderTracingJob()
	if out, c := MergeOrderedK(job); c != 0 || len(out) != 0 {
		t.Fatalf("zero payloads: out=%v combines=%d", out, c)
	}
	if out, _ := MergeOrderedK(job, nil, Payload{}, nil); len(out) != 0 {
		t.Fatalf("all-empty: out=%v", out)
	}
	p := Payload{"k": "v"}
	out, c := MergeOrderedK(job, nil, p, Payload{})
	if c != 0 || len(out) != 1 || out["k"] != "v" {
		t.Fatalf("single live payload: out=%v combines=%d", out, c)
	}
	out["smash"] = "x"
	if len(p) != 1 {
		t.Fatal("single-payload fast path aliased its input")
	}
}

// TestMergeOrderedKNeverAliasesInputs extends the binary no-aliasing
// regression to the K-way path: mutating a non-empty result must not
// corrupt any input.
func TestMergeOrderedKNeverAliasesInputs(t *testing.T) {
	job := sumJob(1)
	inputs := []Payload{
		{"a": int64(1)},
		nil,
		{"a": int64(2), "b": int64(3)},
		{},
		{"c": int64(4)},
	}
	fps := make([]uint64, len(inputs))
	for i, p := range inputs {
		fps[i] = FingerprintPayload(p)
	}
	out, _ := MergeOrderedK(job, inputs...)
	out["smashed"] = int64(99)
	delete(out, "a")
	for i, p := range inputs {
		if FingerprintPayload(p) != fps[i] {
			t.Fatalf("mutating the K-way result corrupted input %d", i)
		}
	}
}

// TestEmptyPayloadSentinel pins the shared empty-payload sentinel: empty
// merge and clone results reuse one allocation-free map.
func TestEmptyPayloadSentinel(t *testing.T) {
	job := sumJob(1)
	if len(EmptyPayload()) != 0 {
		t.Fatal("sentinel is not empty")
	}
	if c := ClonePayload(nil); len(c) != 0 {
		t.Fatal("clone of nil is not empty")
	}
	allocs := testing.AllocsPerRun(100, func() {
		if out, _ := MergeOrdered(job, Payload{}, nil); len(out) != 0 {
			t.Fatal("empty merge produced keys")
		}
		if out := ClonePayload(Payload{}); len(out) != 0 {
			t.Fatal("empty clone produced keys")
		}
		if out, _ := MergeOrderedK(job, nil, Payload{}); len(out) != 0 {
			t.Fatal("empty K-way merge produced keys")
		}
	})
	if allocs != 0 {
		t.Fatalf("empty-side paths allocate %.1f per run, want 0", allocs)
	}
}
