package mapreduce

import (
	"fmt"
	"testing"
)

// benchPayloads builds n payloads over an overlapping key space — the
// shape of a fold-up over a window's per-split payloads, where hot keys
// recur in most splits and cold keys in few.
func benchPayloads(n, keysPer int) []Payload {
	out := make([]Payload, n)
	for i := range out {
		p := make(Payload, keysPer)
		for k := 0; k < keysPer; k++ {
			// Half the keys are shared across all payloads, half are
			// striped so they recur in every fourth payload.
			if k < keysPer/2 {
				p[fmt.Sprintf("hot-%d", k)] = int64(i + k)
			} else {
				p[fmt.Sprintf("cold-%d-%d", i%4, k)] = int64(i + k)
			}
		}
		out[i] = p
	}
	return out
}

// BenchmarkFoldPairwise is the old hot path: a left fold of binary
// merges, allocating one intermediate output map per step.
func BenchmarkFoldPairwise(b *testing.B) {
	for _, n := range []int{2, 8, 32, 128} {
		b.Run(fmt.Sprintf("payloads=%d", n), func(b *testing.B) {
			job := sumJob(1)
			ps := benchPayloads(n, 32)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				acc := ps[0]
				for _, p := range ps[1:] {
					acc, _ = MergeOrdered(job, acc, p)
				}
				if len(acc) == 0 {
					b.Fatal("empty fold result")
				}
			}
		})
	}
}

// BenchmarkFoldKWay is the new hot path: one MergeOrderedK pass with a
// single output-map allocation and one multi-argument Combine per key.
func BenchmarkFoldKWay(b *testing.B) {
	for _, n := range []int{2, 8, 32, 128} {
		b.Run(fmt.Sprintf("payloads=%d", n), func(b *testing.B) {
			job := sumJob(1)
			ps := benchPayloads(n, 32)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				acc, _ := MergeOrderedK(job, ps...)
				if len(acc) == 0 {
					b.Fatal("empty fold result")
				}
			}
		})
	}
}

// BenchmarkPartition measures the map-side emit partitioner; the inlined
// FNV-1a loop must stay allocation-free.
func BenchmarkPartition(b *testing.B) {
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("word-%d-with-some-length", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if Partition(keys[i%len(keys)], 16) < 0 {
			b.Fatal("negative partition")
		}
	}
}
