package mapreduce

import (
	"errors"
	"fmt"
	"math"
	"reflect"
)

// Contract violations reported by CheckJob.
var (
	// ErrNotAssociative means Combine((a,b),c) ≠ Combine(a,(b,c)).
	ErrNotAssociative = errors.New("mapreduce: combiner is not associative")
	// ErrNotCommutative means Combine(a,b) ≠ Combine(b,a) although the
	// job declares Commutative (required for Fixed windows, §4.1).
	ErrNotCommutative = errors.New("mapreduce: combiner is not commutative")
	// ErrMutatesInput means Combine changed one of its arguments;
	// payloads are shared between contraction-tree nodes across runs,
	// so mutation corrupts memoized state.
	ErrMutatesInput = errors.New("mapreduce: combiner mutates its inputs")
	// ErrAliasesInput means Combine returned a value sharing mutable
	// state (the same map, slice, or pointer) with one of its inputs.
	// The parallel contraction engine may combine a payload in two
	// concurrent merges; an aliased result turns later non-mutating use
	// into a data race and corrupts memoized state.
	ErrAliasesInput = errors.New("mapreduce: combiner returns a value aliasing an input")
)

// CheckJob property-tests a job's combiner contract against real sample
// data: it maps the sample splits and then checks, on every key with at
// least three values, that Combine is associative, commutative (when the
// job declares it), does not mutate its inputs, and does not return a
// value aliasing an input. Values are compared by Fingerprint with a
// relative tolerance for floats (contraction trees re-associate float
// arithmetic by design).
//
// Run it once in a test against representative inputs before trusting a
// new job to the incremental runtime:
//
//	if err := mapreduce.CheckJob(job, sampleSplits); err != nil {
//	    t.Fatal(err)
//	}
func CheckJob(job *Job, samples []Split) error {
	if err := job.Validate(); err != nil {
		return err
	}
	// Gather per-key value sequences from real map output.
	values := make(map[string][]Value)
	emit := func(key string, value Value) {
		if len(values[key]) < 8 {
			values[key] = append(values[key], value)
		}
	}
	for _, split := range samples {
		for _, rec := range split.Records {
			if err := job.Map(rec, emit); err != nil {
				return fmt.Errorf("map on sample split %s: %w", split.ID, err)
			}
		}
	}
	checked := 0
	for key, vs := range values {
		if len(vs) < 3 {
			continue
		}
		checked++
		a, b, c := pickDistinct(vs)

		// Non-mutation: fingerprints before and after.
		fpA, fpB := Fingerprint(a), Fingerprint(b)
		ab := job.Combine(key, []Value{a, b})
		if Fingerprint(a) != fpA || Fingerprint(b) != fpB {
			return fmt.Errorf("%w (key %q)", ErrMutatesInput, key)
		}

		// Alias-freedom: the result must not share storage with an input.
		if aliases(ab, a) || aliases(ab, b) {
			return fmt.Errorf("%w (key %q)", ErrAliasesInput, key)
		}

		// Associativity: (a⊕b)⊕c == a⊕(b⊕c).
		left := job.Combine(key, []Value{ab, c})
		right := job.Combine(key, []Value{a, job.Combine(key, []Value{b, c})})
		if !valuesEquivalent(left, right) {
			return fmt.Errorf("%w (key %q)", ErrNotAssociative, key)
		}

		// Commutativity, when declared.
		if job.Commutative {
			ba := job.Combine(key, []Value{b, a})
			if !valuesEquivalent(ab, ba) {
				return fmt.Errorf("%w (key %q)", ErrNotCommutative, key)
			}
		}
	}
	if checked == 0 {
		return fmt.Errorf("mapreduce: samples produced no key with ≥3 values; provide more data")
	}
	return nil
}

// aliases reports whether two values share mutable storage: the same
// map, the same pointer, or slices over the same backing array. Scalar
// kinds (numbers, strings, booleans) are copied by value and can never
// alias.
func aliases(out, in Value) bool {
	ov, iv := reflect.ValueOf(out), reflect.ValueOf(in)
	if !ov.IsValid() || !iv.IsValid() || ov.Kind() != iv.Kind() {
		return false
	}
	switch ov.Kind() {
	case reflect.Map, reflect.Pointer, reflect.Chan, reflect.UnsafePointer:
		return ov.Pointer() == iv.Pointer()
	case reflect.Slice:
		// Same backing array (element 0 address) counts as aliasing even
		// if lengths differ; empty slices share no storage.
		return ov.Len() > 0 && iv.Len() > 0 && ov.Pointer() == iv.Pointer()
	default:
		return false
	}
}

// pickDistinct selects three values preferring pairwise-distinct ones
// (identical values trivially commute, hiding violations).
func pickDistinct(vs []Value) (Value, Value, Value) {
	picked := []Value{vs[0]}
	seen := map[uint64]bool{Fingerprint(vs[0]): true}
	for _, v := range vs[1:] {
		if len(picked) == 3 {
			break
		}
		if fp := Fingerprint(v); !seen[fp] {
			seen[fp] = true
			picked = append(picked, v)
		}
	}
	for i := 1; len(picked) < 3; i++ {
		picked = append(picked, vs[i])
	}
	return picked[0], picked[1], picked[2]
}

// valuesEquivalent compares combiner outputs, tolerating float
// re-association error.
func valuesEquivalent(a, b Value) bool {
	switch x := a.(type) {
	case float64:
		y, ok := b.(float64)
		return ok && floatsClose(x, y)
	case []float64:
		y, ok := b.([]float64)
		if !ok || len(x) != len(y) {
			return false
		}
		for i := range x {
			if !floatsClose(x[i], y[i]) {
				return false
			}
		}
		return true
	default:
		return Fingerprint(a) == Fingerprint(b)
	}
}

func floatsClose(x, y float64) bool {
	scale := math.Max(1, math.Max(math.Abs(x), math.Abs(y)))
	return math.Abs(x-y) <= 1e-9*scale
}
