package mapreduce

import (
	"errors"
	"strings"
	"testing"
)

func checkSamples() []Split {
	return []Split{
		{ID: "c0", Records: []Record{"a a a b b c", "a b c c c"}},
	}
}

func TestCheckJobAcceptsLawfulJob(t *testing.T) {
	if err := CheckJob(sumJob(2), checkSamples()); err != nil {
		t.Fatal(err)
	}
}

func TestCheckJobDetectsNonAssociativity(t *testing.T) {
	job := sumJob(1)
	// Subtraction: associativity fails.
	job.Combine = func(_ string, values []Value) Value {
		acc := values[0].(int64)
		for _, v := range values[1:] {
			acc -= v.(int64)
		}
		return acc
	}
	if err := CheckJob(job, checkSamples()); !errors.Is(err, ErrNotAssociative) {
		t.Fatalf("err = %v, want ErrNotAssociative", err)
	}
}

func TestCheckJobDetectsNonCommutativity(t *testing.T) {
	job := &Job{
		Name: "concat",
		Map: func(rec Record, emit Emit) error {
			for _, w := range strings.Fields(rec.(string)) {
				emit("k", w)
			}
			return nil
		},
		// String concatenation: associative but not commutative.
		Combine: func(_ string, values []Value) Value {
			var sb strings.Builder
			for _, v := range values {
				sb.WriteString(v.(string))
			}
			return sb.String()
		},
		Reduce:      func(_ string, values []Value) Value { return values[0] },
		Commutative: true, // falsely declared
	}
	if err := CheckJob(job, checkSamples()); !errors.Is(err, ErrNotCommutative) {
		t.Fatalf("err = %v, want ErrNotCommutative", err)
	}
	// Without the false declaration the job is acceptable.
	job.Commutative = false
	if err := CheckJob(job, checkSamples()); err != nil {
		t.Fatal(err)
	}
}

func TestCheckJobDetectsMutation(t *testing.T) {
	job := &Job{
		Name: "mutator",
		Map: func(rec Record, emit Emit) error {
			for range strings.Fields(rec.(string)) {
				emit("k", []int64{1})
			}
			return nil
		},
		Combine: func(_ string, values []Value) Value {
			// Mutates its first argument — forbidden.
			acc := values[0].([]int64)
			for _, v := range values[1:] {
				acc[0] += v.([]int64)[0]
			}
			return acc
		},
		Reduce: func(_ string, values []Value) Value { return values[0] },
	}
	if err := CheckJob(job, checkSamples()); !errors.Is(err, ErrMutatesInput) {
		t.Fatalf("err = %v, want ErrMutatesInput", err)
	}
}

func TestCheckJobToleratesFloatReassociation(t *testing.T) {
	job := &Job{
		Name: "fsum",
		Map: func(rec Record, emit Emit) error {
			for i, w := range strings.Fields(rec.(string)) {
				emit("k", float64(len(w))+float64(i)*0.1)
			}
			return nil
		},
		Combine: func(_ string, values []Value) Value {
			var sum float64
			for _, v := range values {
				sum += v.(float64)
			}
			return sum
		},
		Reduce:      func(_ string, values []Value) Value { return values[0] },
		Commutative: true,
	}
	if err := CheckJob(job, checkSamples()); err != nil {
		t.Fatalf("float sum rejected: %v", err)
	}
}

func TestCheckJobNeedsData(t *testing.T) {
	if err := CheckJob(sumJob(1), nil); err == nil {
		t.Fatal("no-sample check passed")
	}
	if err := CheckJob(sumJob(1), []Split{{ID: "x", Records: []Record{"solo"}}}); err == nil {
		t.Fatal("insufficient-values check passed")
	}
}

func TestCheckJobDetectsAliasing(t *testing.T) {
	job := &Job{
		Name: "aliaser",
		Map: func(rec Record, emit Emit) error {
			for i := range strings.Fields(rec.(string)) {
				emit("k", []int64{int64(i)})
			}
			return nil
		},
		Combine: func(_ string, values []Value) Value {
			// Returns its first argument unchanged — pure, but the result
			// aliases the input, which the parallel engine forbids.
			return values[0]
		},
		Reduce: func(_ string, values []Value) Value { return values[0] },
	}
	if err := CheckJob(job, checkSamples()); !errors.Is(err, ErrAliasesInput) {
		t.Fatalf("err = %v, want ErrAliasesInput", err)
	}
}
