package mapreduce

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"slider/internal/metrics"
)

func sumJob(partitions int) *Job {
	sum := func(_ string, values []Value) Value {
		var total int64
		for _, v := range values {
			total += v.(int64)
		}
		return total
	}
	return &Job{
		Name:       "sum",
		Partitions: partitions,
		Map: func(rec Record, emit Emit) error {
			for _, w := range strings.Fields(rec.(string)) {
				emit(w, int64(1))
			}
			return nil
		},
		Combine:     sum,
		Reduce:      sum,
		Commutative: true,
	}
}

func TestValidate(t *testing.T) {
	if err := (*Job)(nil).Validate(); err == nil {
		t.Fatal("nil job validated")
	}
	job := sumJob(2)
	if err := job.Validate(); err != nil {
		t.Fatal(err)
	}
	broken := *job
	broken.Map = nil
	if err := broken.Validate(); err == nil {
		t.Fatal("job without Map validated")
	}
	broken = *job
	broken.Combine = nil
	if err := broken.Validate(); err == nil {
		t.Fatal("job without Combine validated")
	}
	broken = *job
	broken.Reduce = nil
	if err := broken.Validate(); err == nil {
		t.Fatal("job without Reduce validated")
	}
	broken = *job
	broken.Partitions = -1
	if err := broken.Validate(); err == nil {
		t.Fatal("negative partitions validated")
	}
}

func TestNumPartitionsDefault(t *testing.T) {
	job := sumJob(0)
	if job.NumPartitions() != 1 {
		t.Fatalf("default partitions = %d", job.NumPartitions())
	}
}

func TestPartitionProperties(t *testing.T) {
	property := func(key string, n uint8) bool {
		parts := int(n%16) + 1
		p := Partition(key, parts)
		return p >= 0 && p < parts && p == Partition(key, parts)
	}
	if err := quick.Check(property, nil); err != nil {
		t.Fatal(err)
	}
	if Partition("anything", 1) != 0 {
		t.Fatal("single partition must be 0")
	}
}

func TestMergeOrderedPreservesOrderAndInputs(t *testing.T) {
	job := &Job{
		Name: "concat",
		Map:  func(Record, Emit) error { return nil },
		Combine: func(_ string, values []Value) Value {
			return values[0].(string) + values[1].(string)
		},
		Reduce: func(_ string, values []Value) Value { return values[0] },
	}
	left := Payload{"k": "L", "only-left": "l"}
	right := Payload{"k": "R", "only-right": "r"}
	out, combines := MergeOrdered(job, left, right)
	if combines != 1 {
		t.Fatalf("combines = %d, want 1", combines)
	}
	if out["k"] != "LR" {
		t.Fatalf("k = %v, want LR (window order)", out["k"])
	}
	if out["only-left"] != "l" || out["only-right"] != "r" {
		t.Fatal("non-overlapping keys lost")
	}
	// Inputs untouched.
	if left["k"] != "L" || right["k"] != "R" || len(left) != 2 || len(right) != 2 {
		t.Fatal("MergeOrdered mutated an input")
	}
}

func TestMergeOrderedEmptySides(t *testing.T) {
	job := sumJob(1)
	p := Payload{"a": int64(1)}
	if out, c := MergeOrdered(job, nil, p); c != 0 || len(out) != 1 {
		t.Fatal("nil left mishandled")
	}
	if out, c := MergeOrdered(job, p, nil); c != 0 || len(out) != 1 {
		t.Fatal("nil right mishandled")
	}
}

// TestMergeOrderedNeverAliasesInputs is the regression test for the
// empty-side fast path returning a caller-owned map by reference: a
// memoized tree node holding such a result would be corrupted by any
// later mutation of the merge output (and is a data race under the
// parallel contraction engine). The merged result must be mutable
// without affecting either input, on every input shape.
func TestMergeOrderedNeverAliasesInputs(t *testing.T) {
	job := sumJob(1)
	cases := []struct {
		name        string
		left, right Payload
	}{
		{"empty-left", Payload{}, Payload{"a": int64(1)}},
		{"empty-right", Payload{"a": int64(1)}, Payload{}},
		{"nil-left", nil, Payload{"a": int64(1)}},
		{"both-live", Payload{"a": int64(1)}, Payload{"b": int64(2)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			leftFP := FingerprintPayload(tc.left)
			rightFP := FingerprintPayload(tc.right)
			out, _ := MergeOrdered(job, tc.left, tc.right)
			out["smashed"] = int64(99)
			delete(out, "a")
			if FingerprintPayload(tc.left) != leftFP {
				t.Fatal("mutating the merged result corrupted the left input")
			}
			if FingerprintPayload(tc.right) != rightFP {
				t.Fatal("mutating the merged result corrupted the right input")
			}
		})
	}
}

func TestClonePayload(t *testing.T) {
	p := Payload{"a": int64(1), "b": int64(2)}
	c := ClonePayload(p)
	c["a"] = int64(7)
	c["c"] = int64(3)
	if p["a"] != int64(1) || len(p) != 2 {
		t.Fatal("ClonePayload shares the underlying map")
	}
}

func TestRunMapTaskCombinesPerKey(t *testing.T) {
	job := sumJob(2)
	split := Split{ID: "s0", Records: []Record{"a a b", "a c"}}
	res, err := RunMapTask(job, split)
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 2 {
		t.Fatalf("records = %d", res.Records)
	}
	total := map[string]int64{}
	for _, p := range res.Parts {
		for k, v := range p {
			total[k] = v.(int64)
		}
	}
	if total["a"] != 3 || total["b"] != 1 || total["c"] != 1 {
		t.Fatalf("totals = %v", total)
	}
	// Each key must live in exactly its hash partition.
	for pi, p := range res.Parts {
		for k := range p {
			if Partition(k, 2) != pi {
				t.Fatalf("key %q in wrong partition %d", k, pi)
			}
		}
	}
}

func TestRunMapTaskError(t *testing.T) {
	job := sumJob(1)
	boom := errors.New("boom")
	job.Map = func(Record, Emit) error { return boom }
	_, err := RunMapTask(job, Split{ID: "s0", Records: []Record{"x"}})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunMapTasksParallelOrderAndRecording(t *testing.T) {
	job := sumJob(2)
	splits := []Split{
		{ID: "s0", Records: []Record{"a"}},
		{ID: "s1", Records: []Record{"b"}},
		{ID: "s2", Records: []Record{"c"}},
	}
	rec := metrics.NewRecorder()
	exec := Executor{Parallelism: 2, NodeOf: func(i int) int { return i }}
	results, err := exec.RunMapTasks(job, splits, rec)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.SplitID != splits[i].ID {
			t.Fatalf("result %d out of order: %s", i, r.SplitID)
		}
	}
	tasks := rec.Tasks()
	if len(tasks) != 3 {
		t.Fatalf("recorded %d tasks", len(tasks))
	}
	for i, task := range tasks {
		if task.PreferredNode != i {
			t.Fatalf("task %d preferred node %d", i, task.PreferredNode)
		}
		if task.Phase != metrics.PhaseMap {
			t.Fatalf("task %d phase %v", i, task.Phase)
		}
	}
	if c := rec.Counters(); c.MapTasks != 3 || c.MapRecords != 3 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestRunScratch(t *testing.T) {
	job := sumJob(3)
	splits := []Split{
		{ID: "s0", Records: []Record{"x y", "x"}},
		{ID: "s1", Records: []Record{"y z"}},
	}
	rec := metrics.NewRecorder()
	out, err := RunScratch(job, splits, 2, rec)
	if err != nil {
		t.Fatal(err)
	}
	if out["x"].(int64) != 2 || out["y"].(int64) != 2 || out["z"].(int64) != 1 {
		t.Fatalf("out = %v", out)
	}
	if rec.PhaseWork(metrics.PhaseReduce) <= 0 {
		t.Fatal("no reduce work recorded")
	}
}

func TestReducePayloadUnion(t *testing.T) {
	job := sumJob(1)
	out, calls := ReducePayload(job, []Payload{
		{"a": int64(1), "b": int64(2)},
		{"a": int64(3)},
	})
	if calls != 2 {
		t.Fatalf("reduce calls = %d", calls)
	}
	if out["a"].(int64) != 4 || out["b"].(int64) != 2 {
		t.Fatalf("out = %v", out)
	}
}

func TestPayloadBytes(t *testing.T) {
	job := sumJob(1)
	empty := PayloadBytes(job, Payload{})
	small := PayloadBytes(job, Payload{"k": int64(1)})
	big := PayloadBytes(job, Payload{"k": int64(1), "longerkey": "some string value"})
	if !(empty < small && small < big) {
		t.Fatalf("sizes not monotone: %d %d %d", empty, small, big)
	}
	withOverride := &Job{SizeOf: func(Value) int64 { return 1000 }}
	if PayloadBytes(withOverride, Payload{"k": int64(1)}) < 1000 {
		t.Fatal("SizeOf override ignored")
	}
}

type fpValue uint64

func (f fpValue) Fingerprint() uint64 { return uint64(f) }

func TestFingerprint(t *testing.T) {
	// Distinct values → (almost surely) distinct fingerprints; equal
	// values → equal fingerprints.
	cases := []Value{
		nil, true, false, int(1), int64(1), uint64(1), 1.5, "s",
		[]byte{1}, []float64{1, 2}, []int64{3}, []string{"a", "b"},
		[]Value{int64(1), "x"}, map[string]int64{"a": 1},
		map[string]float64{"a": 1}, fpValue(7),
	}
	seen := map[uint64][]int{}
	for i, v := range cases {
		fp := Fingerprint(v)
		if fp != Fingerprint(v) {
			t.Fatalf("case %d: unstable fingerprint", i)
		}
		seen[fp] = append(seen[fp], i)
	}
	for fp, idx := range seen {
		if len(idx) > 1 {
			t.Fatalf("fingerprint collision %x across cases %v", fp, idx)
		}
	}
	// Map fingerprints are order-independent.
	a := map[string]int64{"x": 1, "y": 2, "z": 3}
	b := map[string]int64{"z": 3, "y": 2, "x": 1}
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("map fingerprint depends on iteration order")
	}
}

func TestFingerprintPayload(t *testing.T) {
	a := Payload{"k1": int64(1), "k2": "v"}
	b := Payload{"k2": "v", "k1": int64(1)}
	if FingerprintPayload(a) != FingerprintPayload(b) {
		t.Fatal("payload fingerprint depends on map order")
	}
	c := Payload{"k1": int64(2), "k2": "v"}
	if FingerprintPayload(a) == FingerprintPayload(c) {
		t.Fatal("payload fingerprint ignores values")
	}
}
