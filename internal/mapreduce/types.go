// Package mapreduce implements the data-parallel substrate that Slider
// builds on: jobs expressed as Map / Combine / Reduce functions over input
// splits, a hash partitioner, and a parallel in-process executor that
// measures real per-task costs.
//
// The programming model follows the paper (§2): a job is an ordinary,
// non-incremental MapReduce program whose Combiner is associative (and,
// for fixed-width windows, commutative). Slider interposes a contraction
// phase between shuffle and reduce; the payloads flowing through that
// phase are the per-partition key→value maps produced by map tasks.
package mapreduce

import (
	"errors"
	"fmt"
)

// Record is one input record of a split. Applications choose the concrete
// type (a text line, a point, a log entry, ...).
type Record = any

// Value is an intermediate or final value associated with a key.
type Value = any

// Emit is the callback map functions use to produce key/value pairs.
type Emit func(key string, value Value)

// Sizer lets application value types report their approximate in-memory
// size so the memoization layer can account for space (Figure 13c).
type Sizer interface {
	SizeBytes() int64
}

// Fingerprinter lets application value types provide a content fingerprint
// used by multi-level change detection (§5). Types that do not implement
// it are fingerprinted structurally by Fingerprint.
type Fingerprinter interface {
	Fingerprint() uint64
}

// Job describes a non-incremental data-parallel computation.
//
// Combine must be associative: Combine(k, [a, Combine(k, [b, c])]) must
// equal Combine(k, [Combine(k, [a, b]), c]). Jobs used with fixed-width
// (rotating) windows must additionally set Commutative and guarantee
// order-insensitivity, as required by §4.1.
type Job struct {
	// Name identifies the job in reports.
	Name string
	// Partitions is the number of reduce partitions (R). Defaults to 1.
	Partitions int
	// Map processes one record, emitting intermediate key/value pairs.
	Map func(rec Record, emit Emit) error
	// Combine folds two or more values for a key into one. It must not
	// mutate its inputs: payloads are shared between contraction-tree
	// nodes across runs.
	Combine func(key string, values []Value) Value
	// Reduce produces the final per-key output from the combined
	// value(s) at the contraction-tree root.
	Reduce func(key string, values []Value) Value
	// SizeOf overrides the default value size estimate (optional).
	SizeOf func(v Value) int64
	// Commutative declares that Combine is order-insensitive.
	Commutative bool
}

// Validate checks that the job is well formed.
func (j *Job) Validate() error {
	switch {
	case j == nil:
		return errors.New("mapreduce: nil job")
	case j.Map == nil:
		return fmt.Errorf("mapreduce: job %q has no Map", j.Name)
	case j.Combine == nil:
		return fmt.Errorf("mapreduce: job %q has no Combine", j.Name)
	case j.Reduce == nil:
		return fmt.Errorf("mapreduce: job %q has no Reduce", j.Name)
	case j.Partitions < 0:
		return fmt.Errorf("mapreduce: job %q has negative partitions", j.Name)
	}
	return nil
}

// NumPartitions returns the effective reduce partition count.
func (j *Job) NumPartitions() int {
	if j.Partitions <= 0 {
		return 1
	}
	return j.Partitions
}

// Split is one unit of map-side work. Splits carry a stable identity: the
// memoization layer reuses a map task's output whenever a split with the
// same ID reappears in the window (paper §2: "reuse the results of Map
// tasks operating on old but live data").
type Split struct {
	// ID is the split's stable, globally unique identity.
	ID string
	// Records are the input records handled by one map task.
	Records []Record
}

// Output is the final result of a job: key → reduced value.
type Output map[string]Value
