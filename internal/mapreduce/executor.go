package mapreduce

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"slider/internal/metrics"
)

// MapResult is the measured output of one map task: one payload per reduce
// partition, plus the task's real cost.
type MapResult struct {
	// SplitID is the identity of the split the task processed.
	SplitID string
	// Parts holds one payload per reduce partition.
	Parts []Payload
	// Cost is the measured active time of the task.
	Cost time.Duration
	// Bytes estimates the total output size across partitions.
	Bytes int64
	// Records is the number of input records processed.
	Records int64
}

// MapRunner abstracts where map tasks execute: in-process (Executor) or
// on remote workers (internal/dist.Pool). Implementations return results
// in split order.
type MapRunner interface {
	// RunMap executes the job's map function over every split.
	RunMap(job *Job, splits []Split) ([]MapResult, error)
}

// Executor runs map tasks in parallel and measures their costs.
type Executor struct {
	// Parallelism bounds concurrent map tasks; 0 means GOMAXPROCS.
	Parallelism int
	// NodeOf, when set, supplies the input-locality node of each split
	// (by index), recorded as the map task's preferred node.
	NodeOf func(splitIndex int) int
}

var _ MapRunner = Executor{}

// RunMap implements MapRunner.
func (e Executor) RunMap(job *Job, splits []Split) ([]MapResult, error) {
	return e.RunMapTasks(job, splits, nil)
}

// RunMapTask executes the job's map function over one split and combines
// the emitted values per key per partition (the standard map-side
// combiner, which Slider keeps: §2 uses Combiners *additionally* at the
// reduce side to form the contraction tree).
func RunMapTask(job *Job, split Split) (MapResult, error) {
	if err := job.Validate(); err != nil {
		return MapResult{}, err
	}
	start := time.Now()
	n := job.NumPartitions()
	parts := make([]Payload, n)
	for i := range parts {
		parts[i] = make(Payload)
	}
	var mapErr error
	emit := func(key string, value Value) {
		p := parts[Partition(key, n)]
		if existing, ok := p[key]; ok {
			p[key] = job.Combine(key, []Value{existing, value})
		} else {
			p[key] = value
		}
	}
	for _, rec := range split.Records {
		if err := job.Map(rec, emit); err != nil {
			mapErr = fmt.Errorf("map task %s: %w", split.ID, err)
			break
		}
	}
	if mapErr != nil {
		return MapResult{}, mapErr
	}
	var bytes int64
	for _, p := range parts {
		bytes += PayloadBytes(job, p)
	}
	return MapResult{
		SplitID: split.ID,
		Parts:   parts,
		Cost:    time.Since(start),
		Bytes:   bytes,
		Records: int64(len(split.Records)),
	}, nil
}

// RunMapTasks executes the map phase over the given splits in parallel,
// recording one task per split into rec (when rec is non-nil). Results are
// returned in split order.
func (e Executor) RunMapTasks(job *Job, splits []Split, rec *metrics.Recorder) ([]MapResult, error) {
	par := e.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	results := make([]MapResult, len(splits))
	errs := make([]error, len(splits))
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for i, split := range splits {
		wg.Add(1)
		go func(i int, split Split) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = RunMapTask(job, split)
		}(i, split)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if rec != nil {
		for i, r := range results {
			node := -1
			if e.NodeOf != nil {
				node = e.NodeOf(i)
			}
			rec.RecordTask(metrics.Task{
				Phase:         metrics.PhaseMap,
				Cost:          r.Cost,
				InputBytes:    r.Bytes,
				PreferredNode: node,
			})
		}
		var c metrics.Counters
		c.MapTasks = int64(len(results))
		for _, r := range results {
			c.MapRecords += r.Records
		}
		rec.Add(c)
	}
	return results, nil
}

// ReducePayload applies the job's Reduce to every key of the root
// payload(s) and returns the final output. Multiple payloads for the same
// key are passed to Reduce together (the "union" reduction of §4.2's
// foreground step).
func ReducePayload(job *Job, roots []Payload) (Output, int64) {
	out := make(Output)
	grouped := make(map[string][]Value)
	for _, p := range roots {
		for k, v := range p {
			grouped[k] = append(grouped[k], v)
		}
	}
	for k, vs := range grouped {
		out[k] = job.Reduce(k, vs)
	}
	return out, int64(len(grouped))
}

// RunScratch executes the whole job non-incrementally: map over every
// split, then one reduce task per partition that — like vanilla Hadoop —
// groups the (map-side combined) values per key and applies Reduce once
// to each group. This is the "recompute from scratch" baseline of §7.2.
func RunScratch(job *Job, splits []Split, par int, rec *metrics.Recorder) (Output, error) {
	results, err := Executor{Parallelism: par}.RunMapTasks(job, splits, rec)
	if err != nil {
		return nil, err
	}
	n := job.NumPartitions()
	out := make(Output)
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, maxInt(1, par))
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now()
			payloads := make([]Payload, 0, len(results))
			var bytes int64
			for _, r := range results {
				payloads = append(payloads, r.Parts[p])
				bytes += PayloadBytes(job, r.Parts[p])
			}
			partOut, reduceCalls := ReducePayload(job, payloads)
			cost := time.Since(start)
			mu.Lock()
			for k, v := range partOut {
				out[k] = v
			}
			mu.Unlock()
			if rec != nil {
				rec.RecordTask(metrics.Task{
					Phase:         metrics.PhaseReduce,
					Cost:          cost,
					InputBytes:    bytes,
					PreferredNode: -1,
				})
				rec.Add(metrics.Counters{ReduceCalls: reduceCalls})
			}
		}(p)
	}
	wg.Wait()
	return out, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
