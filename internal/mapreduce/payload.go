package mapreduce

import (
	"hash/fnv"
	"math"
	"sort"
)

// Payload is the unit of data flowing through the contraction phase: the
// combined key→value map a map task (or contraction-tree node) contributes
// to one reduce partition.
type Payload map[string]Value

// Partition assigns a key to one of n reduce partitions using FNV-1a,
// mirroring Hadoop's hash partitioner. n ≤ 1 (including the zero value
// of an unconfigured job) short-circuits to partition 0 so the uint32
// modulo below can never divide by zero.
func Partition(key string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}

// MergeOrdered combines two payloads preserving left-to-right window
// order: values from `left` precede values from `right` in combiner
// argument order. Neither input is mutated, and the result never aliases
// either input map: contraction trees memoize merged payloads across runs,
// so handing back a caller-owned map would let later mutations (or
// concurrent merges) silently corrupt tree-node state.
func MergeOrdered(job *Job, left, right Payload) (Payload, int64) {
	if len(left) == 0 {
		return ClonePayload(right), 0
	}
	if len(right) == 0 {
		return ClonePayload(left), 0
	}
	out := make(Payload, len(left)+len(right))
	for k, v := range left {
		out[k] = v
	}
	var combines int64
	for k, v := range right {
		if existing, ok := out[k]; ok {
			out[k] = job.Combine(k, []Value{existing, v})
			combines++
		} else {
			out[k] = v
		}
	}
	return out, combines
}

// ClonePayload returns a shallow copy of p: a fresh map sharing p's
// values. Values themselves are never mutated by conforming combiners
// (see CheckJob), so a shallow copy is enough to decouple map ownership.
func ClonePayload(p Payload) Payload {
	out := make(Payload, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// PayloadBytes estimates the in-memory size of a payload, using the job's
// SizeOf override, the Sizer interface, or per-type defaults.
func PayloadBytes(job *Job, p Payload) int64 {
	var total int64
	for k, v := range p {
		total += int64(len(k)) + valueBytes(job, v)
	}
	return total
}

func valueBytes(job *Job, v Value) int64 {
	if job != nil && job.SizeOf != nil {
		return job.SizeOf(v)
	}
	switch x := v.(type) {
	case Sizer:
		return x.SizeBytes()
	case nil:
		return 0
	case bool, int8, uint8:
		return 1
	case int, int64, uint64, float64:
		return 8
	case int32, uint32, float32:
		return 4
	case string:
		return int64(len(x)) + 16
	case []byte:
		return int64(len(x)) + 24
	case []float64:
		return int64(8*len(x)) + 24
	case []int64:
		return int64(8*len(x)) + 24
	case []string:
		var n int64 = 24
		for _, s := range x {
			n += int64(len(s)) + 16
		}
		return n
	case []Value:
		var n int64 = 24
		for _, e := range x {
			n += valueBytes(job, e)
		}
		return n
	case map[string]int64:
		var n int64 = 48
		for k := range x {
			n += int64(len(k)) + 24
		}
		return n
	case map[string]float64:
		var n int64 = 48
		for k := range x {
			n += int64(len(k)) + 24
		}
		return n
	default:
		return 32
	}
}

// Fingerprint computes a structural content hash of a value, used by
// multi-level change detection (§5) to decide whether a downstream stage's
// input changed. Values may implement Fingerprinter to override.
func Fingerprint(v Value) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime64
			x >>= 8
		}
	}
	mixString := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
	}
	switch x := v.(type) {
	case Fingerprinter:
		mix(1)
		mix(x.Fingerprint())
	case nil:
		mix(2)
	case bool:
		mix(3)
		if x {
			mix(1)
		}
	case int:
		mix(4)
		mix(uint64(int64(x)))
	case int64:
		mix(5)
		mix(uint64(x))
	case uint64:
		mix(6)
		mix(x)
	case float64:
		mix(7)
		mix(math.Float64bits(x))
	case string:
		mix(8)
		mixString(x)
	case []byte:
		mix(9)
		mixString(string(x))
	case []float64:
		mix(10)
		for _, f := range x {
			mix(math.Float64bits(f))
		}
	case []int64:
		mix(11)
		for _, i := range x {
			mix(uint64(i))
		}
	case []string:
		mix(12)
		for _, s := range x {
			mixString(s)
			mix(0x1f)
		}
	case []Value:
		mix(13)
		for _, e := range x {
			mix(Fingerprint(e))
		}
	case map[string]int64:
		mix(14)
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			mixString(k)
			mix(uint64(x[k]))
		}
	case map[string]float64:
		mix(15)
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			mixString(k)
			mix(math.Float64bits(x[k]))
		}
	default:
		mix(0xdeadbeefcafebabe)
	}
	return h
}

// FingerprintPayload hashes a whole payload deterministically.
func FingerprintPayload(p Payload) uint64 {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	for _, k := range keys {
		for i := 0; i < len(k); i++ {
			h ^= uint64(k[i])
			h *= prime64
		}
		fp := Fingerprint(p[k])
		for i := 0; i < 8; i++ {
			h ^= fp & 0xff
			h *= prime64
			fp >>= 8
		}
	}
	return h
}
