package mapreduce

import (
	"math"
	"sort"
)

// Payload is the unit of data flowing through the contraction phase: the
// combined key→value map a map task (or contraction-tree node) contributes
// to one reduce partition.
type Payload map[string]Value

// FNV-1a constants (32-bit), matching hash/fnv.
const (
	fnvOffset32 uint32 = 2166136261
	fnvPrime32  uint32 = 16777619
)

// HashKey32 is the FNV-1a hash of key, computed without allocating: the
// loop runs directly over the string bytes instead of copying them into a
// []byte for a hash.Hash32. It produces bit-identical results to
// fnv.New32a over the same bytes (pinned by tests), so partition and
// placement assignments are unchanged from the allocating implementation.
func HashKey32(key string) uint32 {
	h := fnvOffset32
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= fnvPrime32
	}
	return h
}

// Partition assigns a key to one of n reduce partitions using FNV-1a,
// mirroring Hadoop's hash partitioner. n ≤ 1 (including the zero value
// of an unconfigured job) short-circuits to partition 0 so the uint32
// modulo below can never divide by zero. It performs no allocations: it
// sits on the map-side emit path, where a per-call hasher and []byte(key)
// copy dominated the partitioning cost.
func Partition(key string, n int) int {
	if n <= 1 {
		return 0
	}
	return int(HashKey32(key) % uint32(n))
}

// emptyPayload is the shared empty-payload sentinel. Empty payloads are
// extremely common on the hot combine path — a partition that received no
// keys from a split, a sparse slide's empty delta — and every one used to
// cost a fresh zero-length map allocation through the ClonePayload fast
// paths. The sentinel is immutable by contract: it is returned only where
// the result is empty, and conforming callers (contraction trees, the
// reduce phase) never mutate payloads they did not allocate.
var emptyPayload = Payload{}

// EmptyPayload returns the shared immutable empty payload. Callers must
// treat it as read-only; writing to it would corrupt every holder of an
// empty merge result.
func EmptyPayload() Payload { return emptyPayload }

// MergeOrdered combines two payloads preserving left-to-right window
// order: values from `left` precede values from `right` in combiner
// argument order. Neither input is mutated, and a non-empty result never
// aliases either input map: contraction trees memoize merged payloads
// across runs, so handing back a caller-owned map would let later
// mutations (or concurrent merges) silently corrupt tree-node state. An
// empty result is the shared EmptyPayload sentinel (no allocation).
func MergeOrdered(job *Job, left, right Payload) (Payload, int64) {
	if len(left) == 0 {
		return ClonePayload(right), 0
	}
	if len(right) == 0 {
		return ClonePayload(left), 0
	}
	out := make(Payload, len(left)+len(right))
	for k, v := range left {
		out[k] = v
	}
	var combines int64
	for k, v := range right {
		if existing, ok := out[k]; ok {
			out[k] = job.Combine(k, []Value{existing, v})
			combines++
		} else {
			out[k] = v
		}
	}
	return out, combines
}

// runLoc tracks one duplicated key's reserved block in the K-way merge's
// shared value arena: start is the block offset, n how many values have
// been written so far (n reaches the key's occurrence count by the end of
// the gather pass).
type runLoc struct {
	start, n int
}

// MergeOrderedK merges any number of payloads in window order with a
// single output-map allocation, replacing a fold of binary MergeOrdered
// calls (which allocates len(payloads)−1 intermediate maps and combines
// each duplicated key once per adjacent pair). Values for the same key are
// gathered left-to-right across the inputs and handed to one
// multi-argument Combine call per key — the combiner is declared
// associative over value slices (see Job.Combine), so the result equals
// the pairwise fold. The returned combine count is the number of Combine
// invocations (one per key with ≥ 2 occurrences); it is deterministic and
// independent of any worker count.
//
// Allocation shape: a counting pass sizes everything up front, so the
// merge makes O(1) bulk allocations — the occurrence-count map, the output
// map, one shared value arena holding every duplicated key's run, and the
// run-location map — instead of a fresh slice (and growth reallocations)
// per duplicated key. Each Combine receives a sub-slice of the arena;
// conforming combiners (CheckJob) do not mutate or retain their argument
// slice, and the arena is dropped when the merge returns.
//
// Like MergeOrdered, inputs are never mutated and a non-empty result
// never aliases any input; an empty result is the EmptyPayload sentinel.
func MergeOrderedK(job *Job, payloads ...Payload) (Payload, int64) {
	nonEmpty, last, total := 0, -1, 0
	for i, p := range payloads {
		if len(p) > 0 {
			nonEmpty++
			last = i
			total += len(p)
		}
	}
	switch nonEmpty {
	case 0:
		return emptyPayload, 0
	case 1:
		return ClonePayload(payloads[last]), 0
	case 2:
		// The binary path avoids the run bookkeeping below.
		first := -1
		for i, p := range payloads {
			if len(p) > 0 {
				first = i
				break
			}
		}
		return MergeOrdered(job, payloads[first], payloads[last])
	}
	// Counting pass: per-key occurrence counts size the output map, the
	// value arena, and the run-location map exactly.
	counts := make(map[string]int, total)
	for _, p := range payloads {
		for k := range p {
			counts[k]++
		}
	}
	out := make(Payload, len(counts))
	arenaLen, dupKeys := 0, 0
	for _, c := range counts {
		if c > 1 {
			arenaLen += c
			dupKeys++
		}
	}
	if dupKeys == 0 {
		// Disjoint key spaces: a straight copy, no combines.
		for _, p := range payloads {
			for k, v := range p {
				out[k] = v
			}
		}
		return out, 0
	}
	// Gather pass: singleton keys go to out directly; each duplicated
	// key's values land in its reserved arena block, in window order
	// (payloads are walked left to right, and a key occurs at most once
	// per payload).
	arena := make([]Value, arenaLen)
	locs := make(map[string]runLoc, dupKeys)
	next := 0
	for _, p := range payloads {
		for k, v := range p {
			c := counts[k]
			if c == 1 {
				out[k] = v
				continue
			}
			loc, ok := locs[k]
			if !ok {
				loc = runLoc{start: next}
				next += c
			}
			arena[loc.start+loc.n] = v
			loc.n++
			locs[k] = loc
		}
	}
	// Combine pass: one multi-argument Combine per duplicated key.
	var combines int64
	for k, loc := range locs {
		out[k] = job.Combine(k, arena[loc.start:loc.start+loc.n])
		combines++
	}
	return out, combines
}

// ClonePayload returns a shallow copy of p: a fresh map sharing p's
// values. Values themselves are never mutated by conforming combiners
// (see CheckJob), so a shallow copy is enough to decouple map ownership.
// Cloning an empty payload returns the shared EmptyPayload sentinel
// instead of allocating; empty results must be treated as read-only.
func ClonePayload(p Payload) Payload {
	if len(p) == 0 {
		return emptyPayload
	}
	out := make(Payload, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// PayloadBytes estimates the in-memory size of a payload, using the job's
// SizeOf override, the Sizer interface, or per-type defaults.
func PayloadBytes(job *Job, p Payload) int64 {
	var total int64
	for k, v := range p {
		total += int64(len(k)) + valueBytes(job, v)
	}
	return total
}

func valueBytes(job *Job, v Value) int64 {
	if job != nil && job.SizeOf != nil {
		return job.SizeOf(v)
	}
	switch x := v.(type) {
	case Sizer:
		return x.SizeBytes()
	case nil:
		return 0
	case bool, int8, uint8:
		return 1
	case int, int64, uint64, float64:
		return 8
	case int32, uint32, float32:
		return 4
	case string:
		return int64(len(x)) + 16
	case []byte:
		return int64(len(x)) + 24
	case []float64:
		return int64(8*len(x)) + 24
	case []int64:
		return int64(8*len(x)) + 24
	case []string:
		var n int64 = 24
		for _, s := range x {
			n += int64(len(s)) + 16
		}
		return n
	case []Value:
		var n int64 = 24
		for _, e := range x {
			n += valueBytes(job, e)
		}
		return n
	case map[string]int64:
		var n int64 = 48
		for k := range x {
			n += int64(len(k)) + 24
		}
		return n
	case map[string]float64:
		var n int64 = 48
		for k := range x {
			n += int64(len(k)) + 24
		}
		return n
	default:
		return 32
	}
}

// Fingerprint computes a structural content hash of a value, used by
// multi-level change detection (§5) to decide whether a downstream stage's
// input changed. Values may implement Fingerprinter to override.
func Fingerprint(v Value) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime64
			x >>= 8
		}
	}
	mixString := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
	}
	switch x := v.(type) {
	case Fingerprinter:
		mix(1)
		mix(x.Fingerprint())
	case nil:
		mix(2)
	case bool:
		mix(3)
		if x {
			mix(1)
		}
	case int:
		mix(4)
		mix(uint64(int64(x)))
	case int64:
		mix(5)
		mix(uint64(x))
	case uint64:
		mix(6)
		mix(x)
	case float64:
		mix(7)
		mix(math.Float64bits(x))
	case string:
		mix(8)
		mixString(x)
	case []byte:
		mix(9)
		mixString(string(x))
	case []float64:
		mix(10)
		for _, f := range x {
			mix(math.Float64bits(f))
		}
	case []int64:
		mix(11)
		for _, i := range x {
			mix(uint64(i))
		}
	case []string:
		mix(12)
		for _, s := range x {
			mixString(s)
			mix(0x1f)
		}
	case []Value:
		mix(13)
		for _, e := range x {
			mix(Fingerprint(e))
		}
	case map[string]int64:
		mix(14)
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			mixString(k)
			mix(uint64(x[k]))
		}
	case map[string]float64:
		mix(15)
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			mixString(k)
			mix(math.Float64bits(x[k]))
		}
	default:
		mix(0xdeadbeefcafebabe)
	}
	return h
}

// FingerprintPayload hashes a whole payload deterministically.
func FingerprintPayload(p Payload) uint64 {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	for _, k := range keys {
		for i := 0; i < len(k); i++ {
			h ^= uint64(k[i])
			h *= prime64
		}
		fp := Fingerprint(p[k])
		for i := 0; i < 8; i++ {
			h ^= fp & 0xff
			h *= prime64
			fp >>= 8
		}
	}
	return h
}
