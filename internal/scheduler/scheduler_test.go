package scheduler

import (
	"testing"
	"time"

	"slider/internal/cluster"
	"slider/internal/metrics"
)

// mkTasks builds n identical tasks of the given phase preferring node p.
func mkTasks(n int, phase metrics.Phase, cost time.Duration, pref int, bytes int64) []metrics.Task {
	tasks := make([]metrics.Task, n)
	for i := range tasks {
		tasks[i] = metrics.Task{Phase: phase, Cost: cost, PreferredNode: pref, InputBytes: bytes}
	}
	return tasks
}

func TestPhaseBarrier(t *testing.T) {
	sim := cluster.NewSimulator(cluster.Config{Nodes: 4, SlotsPerNode: 1, NetBytesPerSec: 1 << 30})
	tasks := append(
		mkTasks(4, metrics.PhaseMap, 100*time.Millisecond, -1, 0),
		mkTasks(4, metrics.PhaseReduce, 50*time.Millisecond, -1, 0)...,
	)
	res := sim.Run(tasks, Baseline{})
	// 4 maps on 4 nodes: 100ms; then 4 reduces: +50ms.
	if res.Makespan != 150*time.Millisecond {
		t.Fatalf("makespan = %v, want 150ms", res.Makespan)
	}
	if res.PhaseEnd[metrics.PhaseMap] != 100*time.Millisecond {
		t.Fatalf("map phase end = %v", res.PhaseEnd[metrics.PhaseMap])
	}
}

func TestSlotsLimitParallelism(t *testing.T) {
	sim := cluster.NewSimulator(cluster.Config{Nodes: 2, SlotsPerNode: 2, NetBytesPerSec: 1 << 30})
	res := sim.Run(mkTasks(8, metrics.PhaseMap, 100*time.Millisecond, -1, 0), Baseline{})
	// 8 tasks on 4 slots → 2 waves.
	if res.Makespan != 200*time.Millisecond {
		t.Fatalf("makespan = %v, want 200ms", res.Makespan)
	}
}

func TestReusedTasksAreFree(t *testing.T) {
	sim := cluster.NewSimulator(cluster.Config{Nodes: 2, SlotsPerNode: 1, NetBytesPerSec: 1 << 30})
	tasks := mkTasks(2, metrics.PhaseMap, 100*time.Millisecond, -1, 0)
	tasks[1].Reused = true
	res := sim.Run(tasks, Baseline{})
	if res.Makespan != 100*time.Millisecond {
		t.Fatalf("makespan = %v, want 100ms", res.Makespan)
	}
}

func TestBaselineIgnoresReduceLocality(t *testing.T) {
	// All reduce tasks prefer node 0; the baseline spreads them anyway.
	sim := cluster.NewSimulator(cluster.Config{Nodes: 4, SlotsPerNode: 1, NetBytesPerSec: 1 << 40})
	res := sim.Run(mkTasks(4, metrics.PhaseReduce, 100*time.Millisecond, 0, 1024), Baseline{})
	if res.Makespan != 100*time.Millisecond {
		t.Fatalf("makespan = %v, want 100ms (spread across nodes)", res.Makespan)
	}
	if res.Migrations != 3 {
		t.Fatalf("migrations = %d, want 3", res.Migrations)
	}
}

func TestMemoAwareSerializesOnPreferredNode(t *testing.T) {
	sim := cluster.NewSimulator(cluster.Config{Nodes: 4, SlotsPerNode: 1, NetBytesPerSec: 1 << 40})
	res := sim.Run(mkTasks(4, metrics.PhaseReduce, 100*time.Millisecond, 0, 1024), MemoAware{})
	// Strict locality queues all four tasks on node 0.
	if res.Makespan != 400*time.Millisecond {
		t.Fatalf("makespan = %v, want 400ms", res.Makespan)
	}
	if res.Migrations != 0 {
		t.Fatalf("migrations = %d, want 0", res.Migrations)
	}
}

func TestMemoAwareBeatsBaselineWhenTransfersDominate(t *testing.T) {
	// One reduce task per node's memoized state, slow network: baseline
	// random placement pays transfers, memo-aware doesn't.
	cfg := cluster.Config{Nodes: 4, SlotsPerNode: 1, NetBytesPerSec: 1 << 20} // 1 MiB/s
	sim := cluster.NewSimulator(cfg)
	var tasks []metrics.Task
	for n := 0; n < 4; n++ {
		tasks = append(tasks, metrics.Task{
			Phase: metrics.PhaseReduce, Cost: 10 * time.Millisecond,
			// Preferences reversed relative to the simulator's node
			// fill order, so locality-blind placement pays transfers.
			PreferredNode: 3 - n, InputBytes: 1 << 20,
		})
	}
	base := sim.Run(tasks, Baseline{})
	aware := sim.Run(tasks, MemoAware{})
	if aware.Makespan >= base.Makespan {
		t.Fatalf("memo-aware (%v) should beat baseline (%v) when transfers dominate", aware.Makespan, base.Makespan)
	}
}

func TestHybridAvoidsStraggler(t *testing.T) {
	// Node 0 is a straggler; all tasks prefer it.
	cfg := cluster.Config{
		Nodes: 4, SlotsPerNode: 1,
		Speed:          []float64{0.2, 1, 1, 1},
		NetBytesPerSec: 1 << 30,
	}
	sim := cluster.NewSimulator(cfg)
	tasks := mkTasks(4, metrics.PhaseReduce, 100*time.Millisecond, 0, 1024)
	aware := sim.Run(tasks, MemoAware{})
	hybrid := sim.Run(tasks, Hybrid{})
	if hybrid.Makespan >= aware.Makespan {
		t.Fatalf("hybrid (%v) should beat memo-aware (%v) under a straggler", hybrid.Makespan, aware.Makespan)
	}
	if hybrid.Migrations == 0 {
		t.Fatal("hybrid never migrated off the straggler")
	}
}

func TestHybridKeepsLocalityWhenHealthy(t *testing.T) {
	cfg := cluster.Config{Nodes: 4, SlotsPerNode: 1, NetBytesPerSec: 1 << 30}
	sim := cluster.NewSimulator(cfg)
	var tasks []metrics.Task
	for n := 0; n < 4; n++ {
		tasks = append(tasks, metrics.Task{
			Phase: metrics.PhaseContraction, Cost: 100 * time.Millisecond,
			PreferredNode: n, InputBytes: 1 << 20,
		})
	}
	res := sim.Run(tasks, Hybrid{})
	if res.Migrations != 0 {
		t.Fatalf("hybrid migrated %d tasks on a healthy balanced cluster", res.Migrations)
	}
}

func TestHybridSlackTolerance(t *testing.T) {
	// Two tasks prefer node 0; with one slot each, the second would wait
	// one full task length — within the default slack (its own cost), so
	// it stays local.
	cfg := cluster.Config{Nodes: 2, SlotsPerNode: 1, NetBytesPerSec: 1 << 30}
	sim := cluster.NewSimulator(cfg)
	tasks := mkTasks(2, metrics.PhaseReduce, 100*time.Millisecond, 0, 1024)
	res := sim.Run(tasks, Hybrid{})
	if res.Migrations != 0 {
		t.Fatalf("migrations = %d, want 0 within slack", res.Migrations)
	}
	// With three tasks the last one exceeds the slack and migrates.
	tasks = mkTasks(3, metrics.PhaseReduce, 100*time.Millisecond, 0, 1024)
	res = sim.Run(tasks, Hybrid{})
	if res.Migrations == 0 {
		t.Fatal("expected a migration beyond the slack")
	}
}

func TestStragglerSlowsExecution(t *testing.T) {
	fast := cluster.NewSimulator(cluster.Config{Nodes: 1, SlotsPerNode: 1})
	slow := cluster.NewSimulator(cluster.Config{Nodes: 1, SlotsPerNode: 1, Speed: []float64{0.5}})
	tasks := mkTasks(1, metrics.PhaseMap, 100*time.Millisecond, -1, 0)
	f := fast.Run(tasks, Baseline{})
	s := slow.Run(tasks, Baseline{})
	if s.Makespan != 2*f.Makespan {
		t.Fatalf("slow makespan = %v, want 2× fast (%v)", s.Makespan, f.Makespan)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (cluster.Config{Nodes: -1}).Validate(); err == nil {
		t.Fatal("negative nodes should fail validation")
	}
	if err := (cluster.Config{Speed: []float64{-1}}).Validate(); err == nil {
		t.Fatal("negative speed should fail validation")
	}
	if err := cluster.DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyNames(t *testing.T) {
	if (Baseline{}).Name() != "baseline" || (MemoAware{}).Name() != "memo-aware" || (Hybrid{}).Name() != "hybrid" {
		t.Fatal("policy names changed")
	}
}

func TestHybridExplicitKnobs(t *testing.T) {
	// An explicit tiny slack forces migration as soon as the preferred
	// node has any queue at all.
	cfg := cluster.Config{Nodes: 2, SlotsPerNode: 1, NetBytesPerSec: 1 << 30}
	sim := cluster.NewSimulator(cfg)
	tasks := mkTasks(2, metrics.PhaseReduce, 100*time.Millisecond, 0, 16)
	res := sim.Run(tasks, Hybrid{Slack: time.Nanosecond})
	if res.Migrations != 1 {
		t.Fatalf("migrations = %d, want 1 under nanosecond slack", res.Migrations)
	}
	// A custom straggler threshold above the preferred node's speed
	// avoids it even when idle (preferred node 1, so the fallback to the
	// first-free node is an observable migration).
	cfg.Nodes = 3
	cfg.Speed = []float64{1, 0.9, 1}
	sim = cluster.NewSimulator(cfg)
	res = sim.Run(mkTasks(1, metrics.PhaseReduce, 100*time.Millisecond, 1, 16),
		Hybrid{StragglerSpeed: 0.95})
	if res.Migrations != 1 {
		t.Fatalf("migrations = %d, want 1 with straggler threshold 0.95", res.Migrations)
	}
}

func TestMapTasksWithoutPreference(t *testing.T) {
	sim := cluster.NewSimulator(cluster.Config{Nodes: 2, SlotsPerNode: 1})
	tasks := mkTasks(2, metrics.PhaseMap, 10*time.Millisecond, -1, 0)
	for _, p := range []cluster.Policy{Baseline{}, MemoAware{}, Hybrid{}} {
		res := sim.Run(tasks, p)
		if res.Makespan != 10*time.Millisecond {
			t.Fatalf("%s: makespan = %v", p.Name(), res.Makespan)
		}
	}
}
