// Package scheduler implements the three scheduling policies the paper
// evaluates (§6, Table 1):
//
//   - Baseline: Hadoop's stock scheduler — input locality for map tasks,
//     first-available machine for reduce/contraction tasks.
//   - MemoAware: places contraction/reduce tasks on the machine holding
//     their memoized state, waiting for it if necessary.
//   - Hybrid: memoization-aware placement with straggler mitigation — a
//     task migrates to the first available machine (paying a network
//     fetch of its memoized state) when its preferred machine is too far
//     behind.
package scheduler

import (
	"time"

	"slider/internal/cluster"
	"slider/internal/metrics"
)

// Baseline is the stock Hadoop scheduling policy: map tasks honor data
// locality; reduce-side tasks go to the first available machine without
// considering where memoized state lives.
type Baseline struct{}

var _ cluster.Policy = Baseline{}

// Name implements cluster.Policy.
func (Baseline) Name() string { return "baseline" }

// Place implements cluster.Policy.
func (Baseline) Place(t metrics.Task, v cluster.View) int {
	if t.Phase == metrics.PhaseMap && t.PreferredNode >= 0 {
		return t.PreferredNode
	}
	return v.EarliestNode()
}

// MemoAware is the strict memoization-aware policy: every task with a
// preferred node runs there, even if the machine is busy or slow.
type MemoAware struct{}

var _ cluster.Policy = MemoAware{}

// Name implements cluster.Policy.
func (MemoAware) Name() string { return "memo-aware" }

// Place implements cluster.Policy.
func (MemoAware) Place(t metrics.Task, v cluster.View) int {
	if t.PreferredNode >= 0 {
		return t.PreferredNode
	}
	return v.EarliestNode()
}

// Hybrid is the paper's scheduler: it first tries to exploit the locality
// of memoized data, and migrates the task when the preferred machine is
// detected to be slow — i.e. when waiting for it would delay the task by
// more than Slack compared to the first available machine, or when the
// machine's speed factor marks it as a straggler.
type Hybrid struct {
	// Slack is the extra queueing delay tolerated to keep locality.
	// Zero means "tolerate up to the task's own cost".
	Slack time.Duration
	// StragglerSpeed marks nodes at or below this speed factor as
	// stragglers to avoid. Zero defaults to 0.5.
	StragglerSpeed float64
}

var _ cluster.Policy = Hybrid{}

// Name implements cluster.Policy.
func (Hybrid) Name() string { return "hybrid" }

// Place implements cluster.Policy.
func (h Hybrid) Place(t metrics.Task, v cluster.View) int {
	if t.PreferredNode < 0 {
		return v.EarliestNode()
	}
	slack := h.Slack
	if slack <= 0 {
		slack = t.Cost
	}
	straggler := h.StragglerSpeed
	if straggler <= 0 {
		straggler = 0.5
	}
	pref := t.PreferredNode
	if v.Speed(pref) <= straggler {
		return v.EarliestNode()
	}
	best := v.EarliestNode()
	if v.EarliestFree(pref)-v.EarliestFree(best) > slack {
		return best
	}
	return pref
}
