// Package flatenc implements the flat, length-prefixed columnar encoding
// behind Slider's byte-shaped payload paths: memo persistence, dist RPC
// framing, and runtime checkpoints. It replaces per-value gob encoding
// (reflection, interface boxing, a type dictionary per stream) with a
// single-pass arena layout that encodes a payload with zero steady-state
// allocations (pooled buffers) and decodes into a zero-copy View that
// exposes keys and values directly off the wire bytes — no Go map is
// materialized until a caller actually needs one to mutate.
//
// # Wire layout (little-endian)
//
//	u8  version (currently 1)
//	u32 count        — number of key/value entries
//	u32 keyArenaLen  — total bytes of all keys
//	u32 numCount     — number of 8-byte numeric values
//	u32 byteCount    — number of byte-column values (string/[]byte/gob)
//	u32 byteArenaLen — total bytes of the byte column
//	tags      [count]u8     — one type tag per entry, in entry order
//	keyLens   [count]u32    — per-entry key length
//	numCol    [numCount]u64 — numeric values (raw bits), in entry order
//	byteLens  [byteCount]u32
//	keyArena  [keyArenaLen]u8  — concatenated keys
//	byteArena [byteArenaLen]u8 — concatenated string/[]byte/gob values
//
// The common scalar types carried by payloads — int, int64, uint64,
// float64, bool, string, []byte, nil — encode natively into the numeric
// or byte column. Anything else (slices, maps, application accumulator
// types registered via persist.RegisterType) rides the gob escape-hatch
// column: the value is gob-encoded individually into the byte arena under
// tagGob, preserving exact round-trip types through the process-global
// gob registry.
//
// The same column machinery also encodes bare value lists (split records
// on the dist wire — AppendValues) and payload sets (a split's
// per-partition outputs, a checkpoint's buckets — AppendPayloadSet).
package flatenc

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"sync"
)

// Payload is the structural payload type this package encodes. It is the
// underlying type of mapreduce.Payload; call sites convert with a plain
// type conversion (the package deliberately does not import mapreduce so
// that mapreduce could consume Views without an import cycle).
type Payload = map[string]any

// ErrMalformed is returned when flat bytes fail structural validation.
var ErrMalformed = errors.New("flatenc: malformed encoding")

// Version is the current body-format version byte.
const Version = 1

// Value type tags. The bool value is folded into the tag so true/false
// consume no column space.
const (
	tagNil uint8 = iota
	tagFalse
	tagTrue
	tagInt
	tagInt64
	tagUint64
	tagFloat64
	tagString
	tagBytes
	tagGob
)

const headerLen = 1 + 5*4

var registerOnce sync.Once

// EnsureBuiltins registers the value types that appear inside payloads of
// the bundled applications and the query layer, so they can travel
// through the gob escape-hatch column (and through legacy gob frames).
// It is idempotent and called by every encode/decode entry point.
func EnsureBuiltins() {
	registerOnce.Do(func() {
		for _, v := range []any{
			int(0), int64(0), uint64(0), float64(0), false, "",
			[]byte(nil), []float64(nil), []int64(nil), []string(nil),
			[]any(nil), map[string]int64(nil), map[string]float64(nil),
			map[string]any(nil),
		} {
			gob.Register(v)
		}
	})
}

// gobValue wraps an escape-hatch value so gob records its concrete type
// (decoding into an interface field requires a registered concrete type).
type gobValue struct{ V any }

// scalarTag classifies v into a native column tag, or tagGob.
func scalarTag(v any) uint8 {
	switch x := v.(type) {
	case nil:
		return tagNil
	case bool:
		if x {
			return tagTrue
		}
		return tagFalse
	case int:
		return tagInt
	case int64:
		return tagInt64
	case uint64:
		return tagUint64
	case float64:
		return tagFloat64
	case string:
		return tagString
	case []byte:
		return tagBytes
	default:
		return tagGob
	}
}

// numBits returns the numeric-column bits for a native numeric value.
func numBits(tag uint8, v any) uint64 {
	switch tag {
	case tagInt:
		return uint64(int64(v.(int)))
	case tagInt64:
		return uint64(v.(int64))
	case tagUint64:
		return v.(uint64)
	default: // tagFloat64
		return math.Float64bits(v.(float64))
	}
}

// bufPool recycles encode buffers across slides. Buffers returned by
// GetBuffer start empty with whatever capacity their previous life grew,
// so a streaming workload's steady state encodes every payload into
// already-warm capacity, allocation-free.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// GetBuffer returns a pooled, empty encode buffer. Pass *b as the dst of
// AppendPayload and hand the pointer back with PutBuffer when the encoded
// bytes have been copied out (or are no longer needed).
func GetBuffer() *[]byte {
	return bufPool.Get().(*[]byte)
}

// PutBuffer recycles a buffer obtained from GetBuffer. The caller must
// not retain any slice of it afterwards.
func PutBuffer(b *[]byte) {
	if b == nil || cap(*b) > 1<<22 {
		return // don't pin pathological giants in the pool
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}

// gobEncPool recycles the bytes.Buffer used for escape-hatch values.
var gobEncPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

type entry struct {
	k string
	v any
}

// entsPool recycles the per-encode entry capture that pins one map
// iteration order across the encoder's section passes (a second range
// over a Go map visits entries in a different order).
var entsPool = sync.Pool{
	New: func() any {
		s := make([]entry, 0, 64)
		return &s
	},
}

func appendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(dst []byte, v uint64) []byte {
	return append(dst,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// AppendPayload appends the flat encoding of p to dst and returns the
// extended slice. With a pooled dst (GetBuffer) the append is
// allocation-free at steady state for payloads of native scalar values;
// escape-hatch values cost one pooled gob encoder pass each. On error dst
// is returned truncated to its original length.
func AppendPayload(dst []byte, p Payload) ([]byte, error) {
	ents := entsPool.Get().(*[]entry)
	for k, v := range p {
		*ents = append(*ents, entry{k, v})
	}
	out, err := appendEntries(dst, *ents, true)
	*ents = (*ents)[:0]
	entsPool.Put(ents)
	return out, err
}

// AppendValues appends the flat encoding of a bare value list (no keys)
// to dst: the same layout as a payload with count entries, zero-length
// keys, and an empty key arena. Used for split records on the dist wire.
func AppendValues(dst []byte, vals []any) ([]byte, error) {
	ents := entsPool.Get().(*[]entry)
	for _, v := range vals {
		*ents = append(*ents, entry{"", v})
	}
	out, err := appendEntries(dst, *ents, false)
	*ents = (*ents)[:0]
	entsPool.Put(ents)
	return out, err
}

// appendEntries lays out one flat body from a pinned entry order. keyed
// controls whether the keyLens section and key arena are emitted (value
// lists omit both; count alone describes them).
func appendEntries(dst []byte, ents []entry, keyed bool) ([]byte, error) {
	EnsureBuiltins()
	start := len(dst)
	n := len(ents)
	dst = append(dst, Version)
	dst = appendU32(dst, uint32(n))
	hdrOff := len(dst)
	dst = appendU32(dst, 0) // keyArenaLen, patched below
	dst = appendU32(dst, 0) // numCount
	dst = appendU32(dst, 0) // byteCount
	dst = appendU32(dst, 0) // byteArenaLen

	// Tags and key lengths, and the column counts they imply.
	numCount, byteCount, keyArenaLen := 0, 0, 0
	for i := range ents {
		tag := scalarTag(ents[i].v)
		dst = append(dst, tag)
		switch tag {
		case tagInt, tagInt64, tagUint64, tagFloat64:
			numCount++
		case tagString, tagBytes, tagGob:
			byteCount++
		}
		keyArenaLen += len(ents[i].k)
	}
	if keyed {
		for i := range ents {
			dst = appendU32(dst, uint32(len(ents[i].k)))
		}
	} else if keyArenaLen != 0 {
		return dst[:start], fmt.Errorf("flatenc: value list with non-empty keys")
	}

	// Numeric column.
	for i := range ents {
		switch tag := scalarTag(ents[i].v); tag {
		case tagInt, tagInt64, tagUint64, tagFloat64:
			dst = appendU64(dst, numBits(tag, ents[i].v))
		}
	}

	// Byte-column lengths are back-patched as the arena is written.
	byteLensOff := len(dst)
	for range byteCount {
		dst = appendU32(dst, 0)
	}
	if keyed {
		for i := range ents {
			dst = append(dst, ents[i].k...)
		}
	}
	bi := 0
	byteArenaStart := len(dst)
	for i := range ents {
		var vb []byte
		switch scalarTag(ents[i].v) {
		case tagString:
			s := ents[i].v.(string)
			binary.LittleEndian.PutUint32(dst[byteLensOff+4*bi:], uint32(len(s)))
			dst = append(dst, s...)
			bi++
			continue
		case tagBytes:
			vb = ents[i].v.([]byte)
		case tagGob:
			var err error
			if vb, err = encodeGobValue(ents[i].v); err != nil {
				return dst[:start], fmt.Errorf("flatenc: key %q: %w", ents[i].k, err)
			}
		default:
			continue
		}
		binary.LittleEndian.PutUint32(dst[byteLensOff+4*bi:], uint32(len(vb)))
		dst = append(dst, vb...)
		bi++
	}
	binary.LittleEndian.PutUint32(dst[hdrOff:], uint32(keyArenaLen))
	binary.LittleEndian.PutUint32(dst[hdrOff+4:], uint32(numCount))
	binary.LittleEndian.PutUint32(dst[hdrOff+8:], uint32(byteCount))
	binary.LittleEndian.PutUint32(dst[hdrOff+12:], uint32(len(dst)-byteArenaStart))
	return dst, nil
}

// encodeGobValue gob-encodes one escape-hatch value through a pooled
// buffer, returning a fresh copy of the encoded bytes.
func encodeGobValue(v any) ([]byte, error) {
	buf := gobEncPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer gobEncPool.Put(buf)
	if err := gob.NewEncoder(buf).Encode(gobValue{V: v}); err != nil {
		return nil, err
	}
	return append([]byte(nil), buf.Bytes()...), nil
}

// EncodePayload returns the flat encoding of p in a fresh, exactly-sized
// slice. Hot paths that can recycle buffers should prefer
// AppendPayload(*GetBuffer(), p).
func EncodePayload(p Payload) ([]byte, error) {
	buf := GetBuffer()
	defer PutBuffer(buf)
	out, err := AppendPayload(*buf, p)
	if err != nil {
		return nil, err
	}
	final := append(make([]byte, 0, len(out)), out...)
	*buf = out[:0]
	return final, nil
}

// AppendPayloadSet appends a length-prefixed sequence of flat payload
// bodies: u32 count, then per payload u32 bodyLen + body. It carries a
// split's per-partition outputs or a checkpoint's bucket list in one
// blob.
func AppendPayloadSet(dst []byte, ps []Payload) ([]byte, error) {
	start := len(dst)
	dst = appendU32(dst, uint32(len(ps)))
	for _, p := range ps {
		lenOff := len(dst)
		dst = appendU32(dst, 0)
		var err error
		dst, err = AppendPayload(dst, p)
		if err != nil {
			return dst[:start], err
		}
		binary.LittleEndian.PutUint32(dst[lenOff:], uint32(len(dst)-lenOff-4))
	}
	return dst, nil
}

// EncodePayloadSet returns a fresh, exactly-sized payload-set blob.
func EncodePayloadSet(ps []Payload) ([]byte, error) {
	buf := GetBuffer()
	defer PutBuffer(buf)
	out, err := AppendPayloadSet(*buf, ps)
	if err != nil {
		return nil, err
	}
	final := append(make([]byte, 0, len(out)), out...)
	*buf = out[:0]
	return final, nil
}

// DecodePayloadSet splits a payload-set blob into its per-payload Views.
// The Views alias data; see View for the lifetime contract.
func DecodePayloadSet(data []byte) ([]View, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("%w: payload set too short", ErrMalformed)
	}
	n := int(binary.LittleEndian.Uint32(data))
	if n < 0 || n > len(data) {
		return nil, fmt.Errorf("%w: payload set count %d", ErrMalformed, n)
	}
	views := make([]View, 0, n)
	rest := data[4:]
	for i := 0; i < n; i++ {
		if len(rest) < 4 {
			return nil, fmt.Errorf("%w: payload set truncated at %d", ErrMalformed, i)
		}
		bodyLen := int(binary.LittleEndian.Uint32(rest))
		rest = rest[4:]
		if bodyLen < 0 || bodyLen > len(rest) {
			return nil, fmt.Errorf("%w: payload set body %d overruns", ErrMalformed, i)
		}
		v, err := MakeView(rest[:bodyLen])
		if err != nil {
			return nil, fmt.Errorf("payload set body %d: %w", i, err)
		}
		views = append(views, v)
		rest = rest[bodyLen:]
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after payload set", ErrMalformed, len(rest))
	}
	return views, nil
}

// MaterializePayloadSet decodes a payload-set blob into fresh Go maps.
func MaterializePayloadSet(data []byte) ([]Payload, error) {
	views, err := DecodePayloadSet(data)
	if err != nil {
		return nil, err
	}
	out := make([]Payload, len(views))
	for i := range views {
		if out[i], err = views[i].Materialize(); err != nil {
			return nil, err
		}
	}
	return out, nil
}
