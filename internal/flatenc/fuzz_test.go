package flatenc

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"
	"reflect"
	"testing"
)

// valueFromBytes deterministically builds one payload value from the fuzz
// byte stream, covering every registerBuiltins type plus the custom
// registered accumulator type. It consumes bytes from *off.
func valueFromBytes(data []byte, off *int) any {
	next := func() byte {
		if *off >= len(data) {
			return 0
		}
		b := data[*off]
		*off++
		return b
	}
	u64 := func() uint64 {
		var raw [8]byte
		for i := range raw {
			raw[i] = next()
		}
		return binary.LittleEndian.Uint64(raw[:])
	}
	str := func() string {
		n := int(next()) % 16
		b := make([]byte, n)
		for i := range b {
			b[i] = 'a' + next()%26
		}
		return string(b)
	}
	switch next() % 18 {
	case 0:
		return nil
	case 1:
		return next()%2 == 0
	case 2:
		return int(int64(u64()))
	case 3:
		return int64(u64())
	case 4:
		return u64()
	case 5:
		// NaN breaks DeepEqual; keep floats comparable.
		f := math.Float64frombits(u64())
		if math.IsNaN(f) {
			f = 0.5
		}
		return f
	case 6:
		return str()
	case 7:
		b := []byte(str())
		if len(b) == 0 {
			b = []byte{}
		}
		return b
	case 8:
		return []float64{float64(next()), float64(next()) / 2}
	case 9:
		return []int64{int64(next()), -int64(next())}
	case 10:
		return []string{str(), str()}
	case 11:
		return []any{int64(next()), str()}
	case 12:
		return map[string]int64{str(): int64(next())}
	case 13:
		return map[string]float64{str(): float64(next())}
	case 14:
		return map[string]any{str(): int64(next())}
	case 15:
		return customValue{N: int64(u64()), S: str()}
	case 16:
		return ""
	default:
		return int64(-1)
	}
}

// gobRoundTrip pushes p through the legacy gob path (the sld1 codec's
// core): one encoder, one decoder, payload as a whole.
func gobRoundTrip(t *testing.T, p Payload) Payload {
	t.Helper()
	EnsureBuiltins()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(p); err != nil {
		t.Fatalf("gob encode: %v", err)
	}
	var out Payload
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&out); err != nil {
		t.Fatalf("gob decode: %v", err)
	}
	return out
}

// FuzzFlatCodec asserts flat encode→decode ≡ gob encode→decode on
// payloads mixing every builtin value type plus a custom registered type:
// the two codecs must agree value-for-value (same keys, same concrete
// types, same contents), so swapping frame versions can never change what
// a restore or a worker sees.
func FuzzFlatCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17})
	f.Add(bytes.Repeat([]byte{0xFF, 0x00, 0x7E}, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		off := 0
		n := 0
		if len(data) > 0 {
			n = int(data[0]) % 32
			off = 1
		}
		p := make(Payload, n)
		for i := 0; i < n; i++ {
			key := fmt.Sprintf("k%d-%c", i, 'a'+byte(i)%26)
			p[key] = valueFromBytes(data, &off)
		}

		frame, err := EncodePayload(p)
		if err != nil {
			t.Fatalf("flat encode: %v", err)
		}
		view, err := MakeView(frame)
		if err != nil {
			t.Fatalf("flat view: %v", err)
		}
		flat, err := view.Materialize()
		if err != nil {
			t.Fatalf("flat materialize: %v", err)
		}
		viaGob := gobRoundTrip(t, p)
		if len(p) == 0 {
			// gob decodes an empty map to nil; both must be empty.
			if len(flat) != 0 || len(viaGob) != 0 {
				t.Fatalf("empty payload mismatch: flat=%v gob=%v", flat, viaGob)
			}
			return
		}
		if !reflect.DeepEqual(flat, viaGob) {
			t.Fatalf("codec divergence:\nflat %#v\ngob  %#v", flat, viaGob)
		}
		for k, v := range viaGob {
			if v == nil {
				continue
			}
			if reflect.TypeOf(flat[k]) != reflect.TypeOf(v) {
				t.Fatalf("key %q: flat type %T, gob type %T", k, flat[k], v)
			}
		}
	})
}
