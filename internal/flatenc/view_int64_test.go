package flatenc

import (
	"fmt"
	"testing"
)

func TestForEachInt64(t *testing.T) {
	p := Payload{
		"a": int64(1), "b": int(2), "c": "text", "d": uint64(3),
		"e": 4.5, "f": nil, "g": true, "h": []byte{9},
	}
	frame, err := EncodePayload(p)
	if err != nil {
		t.Fatal(err)
	}
	view, err := MakeView(frame)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int64{}
	skipped, err := view.ForEachInt64(func(k string, v int64) bool {
		got[k] = v
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got["a"] != 1 || got["b"] != 2 {
		t.Fatalf("integer entries = %v", got)
	}
	if skipped != len(p)-2 {
		t.Fatalf("skipped %d entries, want %d", skipped, len(p)-2)
	}

	// Early stop.
	calls := 0
	if _, err := view.ForEachInt64(func(string, int64) bool { calls++; return false }); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("early stop made %d calls", calls)
	}
}

func TestForEachInt64Allocs(t *testing.T) {
	p := make(Payload, 512)
	for i := 0; i < 512; i++ {
		p[fmt.Sprintf("key-%03d", i)] = int64(i * 1000)
	}
	frame, err := EncodePayload(p)
	if err != nil {
		t.Fatal(err)
	}
	var sink int64
	allocs := testing.AllocsPerRun(50, func() {
		view, err := MakeView(frame)
		if err != nil {
			panic(err)
		}
		if _, err := view.ForEachInt64(func(_ string, v int64) bool {
			sink += v
			return true
		}); err != nil {
			panic(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ForEachInt64 walk allocated %.1f/op, want 0", allocs)
	}
	_ = sink
}
