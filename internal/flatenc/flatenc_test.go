package flatenc

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"reflect"
	"testing"
)

// customValue is an application accumulator type exercising the gob
// escape hatch (registered like persist.RegisterType would).
type customValue struct {
	N int64
	S string
}

func init() { gob.Register(customValue{}) }

// samplePayload mixes every native column type plus escape-hatch values.
func samplePayload() Payload {
	return Payload{
		"int":     int(-42),
		"int64":   int64(1 << 40),
		"uint64":  uint64(1<<63 + 7),
		"float":   3.14159,
		"negzero": math_NegZero(),
		"true":    true,
		"false":   false,
		"nil":     nil,
		"string":  "hello world",
		"empty":   "",
		"bytes":   []byte{0, 1, 2, 255},
		"floats":  []float64{1.5, 2.5},
		"ints":    []int64{3, 4, 5},
		"strs":    []string{"a", "b"},
		"anys":    []any{int64(1), "x"},
		"m64":     map[string]int64{"k": 9},
		"mf":      map[string]float64{"q": 0.5},
		"custom":  customValue{N: 11, S: "acc"},
	}
}

func math_NegZero() float64 {
	z := 0.0
	return -z
}

func TestPayloadRoundTrip(t *testing.T) {
	p := samplePayload()
	frame, err := EncodePayload(p)
	if err != nil {
		t.Fatal(err)
	}
	v, err := MakeView(frame)
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != len(p) {
		t.Fatalf("view len %d, want %d", v.Len(), len(p))
	}
	got, err := v.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Fatalf("round trip mismatch:\n got %#v\nwant %#v", got, p)
	}
	// Concrete types must survive exactly (int vs int64 matters for
	// fingerprints).
	for k, want := range p {
		if want == nil {
			continue
		}
		if reflect.TypeOf(got[k]) != reflect.TypeOf(want) {
			t.Errorf("key %q: type %T, want %T", k, got[k], want)
		}
	}
}

func TestEmptyPayload(t *testing.T) {
	frame, err := EncodePayload(Payload{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := MakeView(frame)
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 0 {
		t.Fatalf("empty payload view len %d", v.Len())
	}
	got, err := v.Materialize()
	if err != nil || len(got) != 0 {
		t.Fatalf("empty materialize: %v %v", got, err)
	}
}

func TestViewGetAndForEachOrder(t *testing.T) {
	p := Payload{"a": int64(1), "b": "two", "c": nil}
	frame, err := EncodePayload(p)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := MakeView(frame)
	for k, want := range p {
		got, ok := v.Get(k)
		if !ok || !reflect.DeepEqual(got, want) {
			t.Fatalf("Get(%q) = %v,%v want %v", k, got, ok, want)
		}
	}
	if _, ok := v.Get("missing"); ok {
		t.Fatal("Get(missing) found something")
	}
	// ForEach must visit every entry exactly once.
	seen := map[string]int{}
	if err := v.ForEach(func(k string, _ any) bool { seen[k]++; return true }); err != nil {
		t.Fatal(err)
	}
	for k := range p {
		if seen[k] != 1 {
			t.Fatalf("key %q visited %d times", k, seen[k])
		}
	}
}

func TestValueListRoundTrip(t *testing.T) {
	vals := []any{"line one", "line two", int64(7), nil, true, []byte{9}, customValue{N: 1}}
	body, err := AppendValues(nil, vals)
	if err != nil {
		t.Fatal(err)
	}
	v, err := MakeValuesView(body)
	if err != nil {
		t.Fatal(err)
	}
	got, err := v.MaterializeValues()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, vals) {
		t.Fatalf("value list mismatch:\n got %#v\nwant %#v", got, vals)
	}
	// Zero-copy Values must agree too (strings alias the frame).
	zc, err := v.Values()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(zc, vals) {
		t.Fatalf("zero-copy values mismatch: %#v", zc)
	}
}

func TestPayloadSetRoundTrip(t *testing.T) {
	set := []Payload{
		{"a": int64(1)},
		{},
		{"b": "x", "c": 2.5},
	}
	blob, err := EncodePayloadSet(set)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MaterializePayloadSet(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(set) {
		t.Fatalf("set len %d, want %d", len(got), len(set))
	}
	for i := range set {
		if !reflect.DeepEqual(got[i], set[i]) {
			t.Fatalf("payload %d mismatch: %#v vs %#v", i, got[i], set[i])
		}
	}
}

func TestCorruptionDetected(t *testing.T) {
	frame, err := EncodePayload(Payload{"key": "value", "n": int64(7)})
	if err != nil {
		t.Fatal(err)
	}
	// Truncations at every boundary must fail cleanly, never panic.
	for cut := 0; cut < len(frame); cut++ {
		if v, err := MakeView(frame[:cut]); err == nil {
			// A shorter valid prefix is impossible: sections must sum to
			// the exact length.
			t.Fatalf("truncated frame at %d accepted: %+v", cut, v)
		}
	}
	// A bad version byte is rejected.
	bad := append([]byte(nil), frame...)
	bad[0] = 99
	if _, err := MakeView(bad); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestPooledEncodeIsAllocationFree(t *testing.T) {
	p := Payload{}
	for i := 0; i < 64; i++ {
		p[fmt.Sprintf("key-%d", i)] = int64(i)
	}
	buf := GetBuffer()
	defer PutBuffer(buf)
	// Warm the buffer and the entry pool.
	out, err := AppendPayload(*buf, p)
	if err != nil {
		t.Fatal(err)
	}
	*buf = out[:0]
	allocs := testing.AllocsPerRun(100, func() {
		out, err := AppendPayload(*buf, p)
		if err != nil {
			t.Fatal(err)
		}
		*buf = out[:0]
	})
	// The steady state re-uses the pooled buffer and entry capture; a
	// fraction of an alloc per run can appear from pool churn under GC.
	if allocs > 2 {
		t.Fatalf("pooled encode allocates %.1f/op, want ≤ 2", allocs)
	}
}

func TestMaterializeDetachesFromFrame(t *testing.T) {
	p := Payload{"word": "payload", "blob": []byte("abc")}
	frame, err := EncodePayload(p)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := MakeView(frame)
	got, err := v.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	// Scribbling over the frame must not affect the materialized map.
	for i := range frame {
		frame[i] = 0xAA
	}
	if got["word"] != "payload" || !bytes.Equal(got["blob"].([]byte), []byte("abc")) {
		t.Fatalf("materialized map aliases the frame: %#v", got)
	}
}
